package ftdse_test

import (
	"bytes"
	"context"
	"testing"

	"repro/ftdse"
	"repro/ftdse/bench"
)

// The I/O formats promise canonical serialization: the service cache
// keys solves by a fingerprint of the problem document, so two ways of
// writing the same problem must produce the same bytes. The fuzz
// targets pin the operational form of that promise — parse, re-write,
// re-parse, re-write: any document the reader accepts must reach a
// byte-identical fixed point after one normalizing write. Seed corpora
// come from the deterministic benchmark corpus, so the fuzzer starts
// from realistic documents of every size class and graph shape.

// fuzzProblemSeeds serializes the short benchmark corpus's problems.
func fuzzProblemSeeds(f *testing.F) [][]byte {
	f.Helper()
	seen := make(map[ftdse.GenSpec]bool)
	var out [][]byte
	for _, c := range bench.Corpus(1, true) {
		if seen[c.Spec] {
			continue // engines share specs; one seed per instance
		}
		seen[c.Spec] = true
		var buf bytes.Buffer
		if err := ftdse.WriteProblem(&buf, c.Problem()); err != nil {
			f.Fatalf("serializing corpus problem %s: %v", c.Name, err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

func FuzzReadProblem(f *testing.F) {
	for _, seed := range fuzzProblemSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"application":{},"architecture":[],"wcet_ms":{},"faults":{"k":0,"mu_ms":0}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ftdse.ReadProblem(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var first bytes.Buffer
		if err := ftdse.WriteProblem(&first, p); err != nil {
			t.Fatalf("accepted problem does not serialize: %v\ninput:\n%s", err, data)
		}
		p2, err := ftdse.ReadProblem(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanonical:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := ftdse.WriteProblem(&second, p2); err != nil {
			t.Fatalf("re-parsed problem does not serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("problem round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}

func FuzzReadCheckpoint(f *testing.F) {
	// Seed with real checkpoints: each distinct corpus problem's naive
	// single-node re-execution design snapshotted as an improvement (no
	// search — seeding must be fast and deterministic).
	for _, seed := range fuzzProblemSeeds(f) {
		p, err := ftdse.ReadProblem(bytes.NewReader(seed))
		if err != nil {
			f.Fatalf("re-reading corpus seed: %v", err)
		}
		d := ftdse.Design{}
		for _, proc := range p.Processes() {
			d[proc.ID] = ftdse.Reexecution(0, p.Faults().K)
		}
		s, err := p.Evaluate(d)
		if err != nil {
			f.Fatalf("evaluating naive design: %v", err)
		}
		c, err := ftdse.NewCheckpoint(p, "seed", ftdse.Improvement{
			Phase:       "initial",
			Cost:        ftdse.Cost{Tardiness: s.Tardiness, Makespan: s.Makespan},
			Design:      d,
			Schedulable: s.Schedulable(),
		})
		if err != nil {
			f.Fatalf("building checkpoint: %v", err)
		}
		var buf bytes.Buffer
		if err := ftdse.WriteCheckpoint(&buf, c); err != nil {
			f.Fatalf("serializing checkpoint: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P":[{"node":"N1"}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ftdse.ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var first bytes.Buffer
		if err := ftdse.WriteCheckpoint(&first, c); err != nil {
			t.Fatalf("accepted checkpoint does not serialize: %v\ninput:\n%s", err, data)
		}
		c2, err := ftdse.ReadCheckpoint(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanonical:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := ftdse.WriteCheckpoint(&second, c2); err != nil {
			t.Fatalf("re-parsed checkpoint does not serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("checkpoint round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}

func FuzzReadTrace(f *testing.F) {
	// Seed with real flight-recorder captures: a tiny deterministic
	// solve per distinct corpus problem (one tabu iteration, one
	// worker), so the fuzzer starts from traces with every event kind.
	for _, seed := range fuzzProblemSeeds(f) {
		p, err := ftdse.ReadProblem(bytes.NewReader(seed))
		if err != nil {
			f.Fatalf("re-reading corpus seed: %v", err)
		}
		res, err := ftdse.NewSolver(
			ftdse.WithMaxIterations(1),
			ftdse.WithWorkers(1),
			ftdse.WithFlightRecorder(512),
		).Solve(context.Background(), p)
		if err != nil {
			f.Fatalf("solving corpus seed: %v", err)
		}
		var buf bytes.Buffer
		if err := ftdse.WriteTrace(&buf, res.Trace); err != nil {
			f.Fatalf("serializing trace: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("{\"version\":1,\"dropped\":0}\n"))
	f.Add([]byte("{\"version\":1,\"dropped\":3}\n{\"seq\":4,\"elapsed_ms\":0.5,\"kind\":\"run_start\",\"strategy\":\"MXR\",\"engine\":\"default\"}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ftdse.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var first bytes.Buffer
		if err := ftdse.WriteTrace(&first, tr); err != nil {
			t.Fatalf("accepted trace does not serialize: %v\ninput:\n%s", err, data)
		}
		tr2, err := ftdse.ReadTrace(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanonical:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := ftdse.WriteTrace(&second, tr2); err != nil {
			t.Fatalf("re-parsed trace does not serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trace round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}

func FuzzReadSchedule(f *testing.F) {
	// Seed with real exports: each distinct corpus problem scheduled
	// under a naive single-node re-execution design (no search — seeding
	// must be fast and deterministic).
	for _, seed := range fuzzProblemSeeds(f) {
		p, err := ftdse.ReadProblem(bytes.NewReader(seed))
		if err != nil {
			f.Fatalf("re-reading corpus seed: %v", err)
		}
		d := ftdse.Design{}
		for _, proc := range p.Processes() {
			d[proc.ID] = ftdse.Reexecution(0, p.Faults().K)
		}
		s, err := p.Evaluate(d)
		if err != nil {
			f.Fatalf("evaluating naive design: %v", err)
		}
		var buf bytes.Buffer
		if err := ftdse.WriteSchedule(&buf, s); err != nil {
			f.Fatalf("serializing schedule: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"schedulable":true,"makespan_ms":0,"fault_model":{"k":0,"mu_ms":0},"nodes":null,"medl":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ftdse.ReadSchedule(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var first bytes.Buffer
		if err := ftdse.WriteScheduleDoc(&first, doc); err != nil {
			t.Fatalf("accepted schedule does not serialize: %v\ninput:\n%s", err, data)
		}
		doc2, err := ftdse.ReadSchedule(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanonical:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := ftdse.WriteScheduleDoc(&second, doc2); err != nil {
			t.Fatalf("re-parsed schedule does not serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("schedule round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}
