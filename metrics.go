package ftdse

import "repro/ftdse/internal/core"

// EvaluatorMetrics is a snapshot of the process-wide counters of the
// solver's candidate-move evaluation hot path: scheduling passes
// executed, memo-cache hits and misses, and the allocation behaviour of
// the per-worker scratch arenas (arenas created vs. pool reuses — a
// healthy hot path reuses orders of magnitude more than it allocates).
type EvaluatorMetrics = core.EvaluatorMetrics

// ReadEvaluatorMetrics returns the cumulative evaluator counters of
// this process. The counters cover every Solve run (they are global,
// not per-solver), only grow, and are safe to read concurrently; the
// service exposes them on its /metrics page and ftbench records them
// alongside wall-clock numbers.
func ReadEvaluatorMetrics() EvaluatorMetrics { return core.ReadEvaluatorMetrics() }
