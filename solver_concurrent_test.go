package ftdse_test

import (
	"context"
	"sync"
	"testing"

	"repro/ftdse"
)

// TestSolverConcurrentSolve hammers one shared Solver from many
// goroutines (run under -race in CI): concurrent Solve calls must not
// interfere, and untimed runs of the same problem must stay bit-for-bit
// deterministic no matter how many run at once.
func TestSolverConcurrentSolve(t *testing.T) {
	shared := ftdse.NewSolver(ftdse.WithMaxIterations(6), ftdse.WithWorkers(1))
	probs := make([]ftdse.Problem, 4)
	for i := range probs {
		probs[i] = ftdse.GenerateProblem(
			ftdse.GenSpec{Procs: 6, Nodes: 2, Seed: int64(i + 1)},
			ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
	}
	// Reference results from sequential runs.
	want := make([]ftdse.Cost, len(probs))
	for i, p := range probs {
		res, err := shared.Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("sequential Solve(%d): %v", i, err)
		}
		want[i] = res.Cost
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, p := range probs {
				// Derive a per-call observer to prove With does not
				// mutate the shared base solver.
				var seen int
				s := shared.With(ftdse.WithProgress(func(ftdse.Improvement) { seen++ }))
				res, err := s.Solve(context.Background(), p)
				if err != nil {
					errs <- err
					return
				}
				if res.Cost != want[i] {
					t.Errorf("goroutine %d problem %d: cost %v, want %v", g, i, res.Cost, want[i])
				}
				if seen == 0 {
					t.Errorf("goroutine %d problem %d: observer never called", g, i)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Solve: %v", err)
	}
}

// TestSolverWithDoesNotMutateBase pins the clone semantics of With.
func TestSolverWithDoesNotMutateBase(t *testing.T) {
	base := ftdse.NewSolver(ftdse.WithMaxIterations(5), ftdse.WithWorkers(1))
	derived := base.With(ftdse.WithStrategy(ftdse.NFT))
	if derived == base {
		t.Fatal("With returned the receiver instead of a copy")
	}
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 5, Nodes: 2, Seed: 9},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
	res, err := base.Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("base Solve: %v", err)
	}
	if res.Strategy != ftdse.MXR {
		t.Errorf("base solver strategy changed to %v after With", res.Strategy)
	}
	dres, err := derived.Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("derived Solve: %v", err)
	}
	if dres.Strategy != ftdse.NFT {
		t.Errorf("derived solver strategy = %v, want NFT", dres.Strategy)
	}
}
