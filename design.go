package ftdse

import (
	"repro/ftdse/internal/policy"
)

// Reexecution is the pure time-redundancy policy: one replica on node
// n, re-executed up to k times after faults (Figure 2a).
func Reexecution(n NodeID, k int) Policy { return policy.Reexecution(n, k) }

// Replication is the pure space-redundancy policy: one active replica
// on each of the given nodes, none re-executed (Figure 2b). Tolerating
// k faults requires k+1 replicas.
func Replication(nodes ...NodeID) Policy { return policy.Replication(nodes...) }

// ReplicatedReexecution combines both redundancies: one replica per
// node with the k re-executions distributed over them (Figure 2c).
func ReplicatedReexecution(nodes []NodeID, k int) Policy { return policy.Distribute(nodes, k) }

// Checkpointed is re-execution with the given number of checkpoints
// per execution (the reproduction's extension): a fault re-executes
// only the segment it hit, at χ state-saving cost per checkpoint.
func Checkpointed(n NodeID, k, checkpoints int) Policy { return policy.Checkpointed(n, k, checkpoints) }
