package ftdse

import (
	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// Time is the discrete time base of the model (microsecond resolution).
type Time = model.Time

// Millisecond is one millisecond in the model's time base.
const Millisecond = model.Millisecond

// Ms converts milliseconds to model time.
func Ms(ms int64) Time { return model.Ms(ms) }

// Us converts microseconds to model time.
func Us(us int64) Time { return model.Us(us) }

// ProcID identifies a process within an application.
type ProcID = model.ProcID

// NodeID identifies a computation node of the architecture.
type NodeID = arch.NodeID

// FaultModel is the fault hypothesis: at most K transient faults per
// operation cycle, each with recovery overhead Mu (and, for the
// checkpointing extension, state-saving cost Chi per checkpoint).
type FaultModel = fault.Model

// Policy is the fault-tolerance policy of one process: its replicas,
// their nodes, and the re-executions and checkpoints of each replica.
type Policy = policy.Policy

// Design is a complete design alternative: the policy (and thereby the
// mapping) of every process. It is the decision variable of the
// optimization and the first half of a Result.
type Design = policy.Assignment

// Schedule is a fully built design implementation: the static schedule
// tables of every node, the bus MEDL, and the worst-case completion
// analysis under the fault hypothesis. Key methods include Schedulable,
// MEDL, Items, CriticalPath and Violations; the exported fields
// Makespan and Tardiness carry the worst-case metrics.
type Schedule = sched.Schedule

// Tables is the compiled dispatch-table representation of a Schedule
// (per-node rows plus the MEDL), as a TTP runtime would store it.
type Tables = sched.Tables

// Cost orders design alternatives: first by tardiness (the sum of
// worst-case deadline violations), then by the worst-case schedule
// length δ (Makespan).
type Cost = core.Cost

// Improvement is one incumbent solution streamed to a WithProgress
// observer: the phase that found it, the iteration, its cost and
// schedulability, and the elapsed wall-clock time.
type Improvement = core.Improvement

// StopCause reports why a Solve run ended.
type StopCause = core.StopCause

// Stop causes recorded in Result.Stopped.
const (
	// StopCompleted: the search exhausted its budget or converged.
	StopCompleted = core.StopCompleted
	// StopTimeLimit: WithTimeLimit or the context deadline expired.
	StopTimeLimit = core.StopTimeLimit
	// StopCanceled: the caller canceled the context.
	StopCanceled = core.StopCanceled
)

// CompileTables compiles a schedule into its dispatch-table
// representation.
func CompileTables(s *Schedule) Tables { return sched.CompileTables(s) }

// ValidateSchedule cross-checks a built schedule against the structural
// and timing invariants of the model (precedences, bus slots, fault
// slack). It is a defense-in-depth check for synthesized designs.
func ValidateSchedule(s *Schedule) error { return sched.ValidateSchedule(s) }
