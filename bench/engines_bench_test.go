package bench

import (
	"context"
	"testing"

	"repro/ftdse"
)

// engineProblems are the generated instances the engine comparison
// runs on: one per graph shape, at the smallest paper dimension so a
// full bench pass stays in CI budget.
func engineProblems() []ftdse.Problem {
	d := Dimension{Procs: 20, Nodes: 2, K: 3, Mu: ftdse.Ms(5)}
	out := make([]ftdse.Problem, 0, 3)
	for seed := 0; seed < 3; seed++ {
		out = append(out, d.Problem(seed))
	}
	return out
}

// BenchmarkEngines compares the built-in search engines — the paper's
// tabu pipeline, simulated annealing, and the racing portfolio — on the
// same generated instances. Besides wall-clock time per full solve, it
// reports the summed makespan (µs) of the designs found, so engine
// quality regressions show up next to engine speed regressions:
//
//	go test -bench BenchmarkEngines -benchtime 1x ./bench
func BenchmarkEngines(b *testing.B) {
	probs := engineProblems()
	for _, name := range []string{"default", "greedy", "tabu", "sa", "portfolio"} {
		eng, err := ftdse.ParseEngine(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			// Allocation counts are part of the engine contract: the
			// evaluator's scratch arenas keep the move-sweep hot path
			// allocation-free, and ftbench gates allocs_per_op in CI.
			b.ReportAllocs()
			solver := ftdse.NewSolver(
				ftdse.WithEngine(eng),
				ftdse.WithMaxIterations(40),
			)
			var makespan ftdse.Time
			for i := 0; i < b.N; i++ {
				makespan = 0
				for _, p := range probs {
					res, err := solver.Solve(context.Background(), p)
					if err != nil {
						b.Fatal(err)
					}
					makespan += res.Cost.Makespan
				}
			}
			b.ReportMetric(float64(makespan), "makespan_us")
		})
	}
}

// BenchmarkPortfolioVsSingles pins the portfolio acceptance property on
// the bench suite: racing tabu against simulated annealing returns a
// design at least as good as the better of the two run alone.
func BenchmarkPortfolioVsSingles(b *testing.B) {
	probs := engineProblems()
	solve := func(name string, p ftdse.Problem) ftdse.Cost {
		eng, err := ftdse.ParseEngine(name)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ftdse.NewSolver(
			ftdse.WithEngine(eng),
			ftdse.WithMaxIterations(40),
		).Solve(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		return res.Cost
	}
	for i := 0; i < b.N; i++ {
		for pi, p := range probs {
			tabu := solve("tabu", p)
			sa := solve("sa", p)
			port := solve("portfolio", p)
			single := tabu
			if sa.Less(single) {
				single = sa
			}
			if single.Less(port) {
				b.Fatalf("problem %d: portfolio %v worse than best single engine %v", pi, port, single)
			}
		}
	}
	b.ReportMetric(float64(len(probs)), "problems")
}
