package bench

import "io"

// The CSV and JSON emitters render the column schemas of columns.go;
// header and row logic live there, once, so the machine-readable
// formats cannot drift apart.

// WriteOverheadsCSV emits an overhead table as CSV with the columns
// procs, nodes, k, mu_ms, overhead max/avg/min, n.
func WriteOverheadsCSV(w io.Writer, rows []OverheadRow) error {
	return writeCSV(w, overheadColumns(), rows)
}

// WriteOverheadsJSON emits an overhead table as a JSON array of
// objects with the same columns as the CSV.
func WriteOverheadsJSON(w io.Writer, rows []OverheadRow) error {
	return writeJSONTable(w, overheadColumns(), rows)
}

// WriteDeviationsCSV emits Figure 10 data as CSV with the columns
// procs, dev_mr/sfx/mx_avg_pct, n.
func WriteDeviationsCSV(w io.Writer, rows []DeviationRow) error {
	return writeCSV(w, deviationColumns(), rows)
}

// WriteDeviationsJSON emits Figure 10 data as a JSON array of objects
// with the same columns as the CSV.
func WriteDeviationsJSON(w io.Writer, rows []DeviationRow) error {
	return writeJSONTable(w, deviationColumns(), rows)
}

// WriteCCCSV emits the cruise-controller comparison as CSV.
func WriteCCCSV(w io.Writer, rows []CCRow) error {
	return writeCSV(w, ccColumns(), rows)
}

// WriteCCJSON emits the cruise-controller comparison as a JSON array of
// objects with the same columns as the CSV.
func WriteCCJSON(w io.Writer, rows []CCRow) error {
	return writeJSONTable(w, ccColumns(), rows)
}
