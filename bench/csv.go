package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/ftdse"
)

// WriteOverheadsCSV emits an overhead table as CSV with the columns
// procs, nodes, k, mu_ms, max, avg, min, n.
func WriteOverheadsCSV(w io.Writer, rows []OverheadRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"procs", "nodes", "k", "mu_ms", "overhead_max_pct", "overhead_avg_pct", "overhead_min_pct", "n"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.Dim.Procs),
			strconv.Itoa(r.Dim.Nodes),
			strconv.Itoa(r.Dim.K),
			fmt.Sprintf("%g", r.Dim.Mu.Milliseconds()),
			fmt.Sprintf("%.2f", r.Stat.Max),
			fmt.Sprintf("%.2f", r.Stat.Avg()),
			fmt.Sprintf("%.2f", r.Stat.Min),
			strconv.Itoa(r.Stat.N),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDeviationsCSV emits Figure 10 data as CSV with the columns
// procs, dev_mr_pct, dev_sfx_pct, dev_mx_pct.
func WriteDeviationsCSV(w io.Writer, rows []DeviationRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"procs", "dev_mr_avg_pct", "dev_sfx_avg_pct", "dev_mx_avg_pct", "n"}); err != nil {
		return err
	}
	for _, r := range rows {
		mr, sfx, mx := r.Dev[ftdse.MR], r.Dev[ftdse.SFX], r.Dev[ftdse.MX]
		rec := []string{
			strconv.Itoa(r.Dim.Procs),
			fmt.Sprintf("%.2f", mr.Avg()),
			fmt.Sprintf("%.2f", sfx.Avg()),
			fmt.Sprintf("%.2f", mx.Avg()),
			strconv.Itoa(mr.N),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCCCSV emits the cruise-controller comparison as CSV.
func WriteCCCSV(w io.Writer, rows []CCRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "makespan_ms", "schedulable", "overhead_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Strategy.String(),
			fmt.Sprintf("%g", r.Makespan.Milliseconds()),
			strconv.FormatBool(r.Schedulable),
			fmt.Sprintf("%.1f", r.OverheadPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
