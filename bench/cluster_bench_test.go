package bench

// Load-generation benchmarks for the ftclusterd coordinator tier: they
// drive the full cluster path — coordinator admission, shard placement,
// dispatch to a node pool, per-job status polling, result collection —
// through the same typed client as the single-node benchmarks, so the
// coordination overhead on top of BenchmarkServiceThroughput is
// directly readable. Run with:
//
//	go test ./bench -bench BenchmarkCluster -run '^$'

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/cluster"
	"repro/ftdse/service"
)

// benchCluster starts n solver nodes plus a coordinator and returns a
// client against the coordinator.
func benchCluster(b *testing.B, n int, nodeCfg service.Config) *client.Client {
	b.Helper()
	cfg := cluster.Config{
		// Snappy loops: the benchmark measures coordination overhead, not
		// the production polling cadence.
		HealthInterval: 100 * time.Millisecond,
		PollInterval:   2 * time.Millisecond,
	}
	for i := 0; i < n; i++ {
		svc := service.New(nodeCfg)
		srv := httptest.NewServer(svc.Handler())
		cfg.Nodes = append(cfg.Nodes, cluster.Node{Name: fmt.Sprintf("n%d", i+1), URL: srv.URL})
		b.Cleanup(func() {
			srv.Close()
			if err := svc.Close(context.Background()); err != nil {
				b.Errorf("node Close: %v", err)
			}
		})
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	if err := coord.Start(srv.URL); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := coord.Close(ctx); err != nil {
			b.Errorf("coordinator Close: %v", err)
		}
		srv.Close()
	})
	return client.New(srv.URL, srv.Client())
}

// BenchmarkClusterThroughput measures sustained jobs/sec through a
// coordinator sharding over two nodes with node caches off: every
// submission re-solves on its owning shard. Compare against
// BenchmarkServiceThroughput to read the cluster tier's overhead
// (journal-less: admission, placement, dispatch, polling).
func BenchmarkClusterThroughput(b *testing.B) {
	c := benchCluster(b, 2, service.Config{QueueSize: 1024, CacheSize: -1})
	probs := make([]ftdse.Problem, 16)
	for i := range probs {
		probs[i] = benchProblem(int64(200 + i))
	}
	opts := service.SolveOptions{MaxIterations: 4, Workers: 1}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := probs[int(next.Add(1))%len(probs)]
			st, err := c.SubmitWait(context.Background(), p, opts)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != service.StateDone {
				b.Fatalf("job ended %s (%s)", st.State, st.Error)
			}
		}
	})
}

// BenchmarkClusterAffinityCacheHit measures the sharded cache-hit path:
// one primed fingerprint, answered over and over by its owning node's
// result cache through the coordinator. The delta against
// BenchmarkServiceCacheHit is the price of the extra hop.
func BenchmarkClusterAffinityCacheHit(b *testing.B) {
	c := benchCluster(b, 2, service.Config{})
	prob := benchProblem(9)
	opts := service.SolveOptions{MaxIterations: 4, Workers: 1}
	first, err := c.SubmitWait(context.Background(), prob, opts)
	if err != nil || first.State != service.StateDone {
		b.Fatalf("priming solve: %+v, %v", first, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			st, err := c.SubmitWait(context.Background(), prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != service.StateDone {
				b.Fatalf("job ended %s (%s)", st.State, st.Error)
			}
		}
	})
	b.StopTimer()
	m, err := c.Metrics(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	// Affinity keeps re-solves away: every post-priming submission must
	// have been answered by the owning shard's cache.
	if m["node_cache_hits"] < float64(b.N) {
		b.Fatalf("node_cache_hits = %v over %d submissions — affinity broke", m["node_cache_hits"], b.N)
	}
}
