package bench

import "fmt"

// The text formatters render the same column schemas (columns.go) as
// the CSV/JSON emitters — only the dimension labelling and a few
// human-friendly cell renderings (MET/MISSED, "-") differ, and those
// are part of the schema too.

// FormatOverheads renders an overhead table in the paper's layout
// (%max / %avg / %min columns), with the dimension column adapted to
// what varies.
func FormatOverheads(title, dimHeader string, dimLabel func(Dimension) string, rows []OverheadRow) string {
	cols := append([]column[OverheadRow]{
		{name: "dim", head: dimHeader, value: func(r OverheadRow) string { return dimLabel(r.Dim) }},
	}, overheadStatColumns()...)
	return formatTable(title, cols, rows)
}

// Table1aLabel labels rows by process count (the paper's first column).
func Table1aLabel(d Dimension) string { return fmt.Sprintf("%d procs", d.Procs) }

// Table1bLabel labels rows by fault count.
func Table1bLabel(d Dimension) string { return fmt.Sprintf("k=%d", d.K) }

// Table1cLabel labels rows by fault duration.
func Table1cLabel(d Dimension) string { return fmt.Sprintf("µ=%v", d.Mu) }

// FormatDeviations renders Figure 10 as a table: average % deviation
// from MXR per application size and strategy.
func FormatDeviations(rows []DeviationRow) string {
	return formatTable("Figure 10: average % deviation from MXR", deviationColumns(), rows)
}

// FormatCC renders the cruise-controller comparison.
func FormatCC(rows []CCRow) string {
	return formatTable(
		"Cruise controller (32 processes, 3 nodes, deadline 250ms, k=2, µ=2ms)",
		ccColumns(), rows)
}
