package bench

import (
	"fmt"
	"strings"

	"repro/ftdse"
)

// FormatOverheads renders an overhead table in the paper's layout
// (%max / %avg / %min columns), with the dimension column adapted to
// what varies.
func FormatOverheads(title, dimHeader string, dimLabel func(Dimension) string, rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %4s\n", dimHeader, "%max", "%avg", "%min", "n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f %4d\n",
			dimLabel(r.Dim), r.Stat.Max, r.Stat.Avg(), r.Stat.Min, r.Stat.N)
	}
	return b.String()
}

// Table1aLabel labels rows by process count (the paper's first column).
func Table1aLabel(d Dimension) string { return fmt.Sprintf("%d procs", d.Procs) }

// Table1bLabel labels rows by fault count.
func Table1bLabel(d Dimension) string { return fmt.Sprintf("k=%d", d.K) }

// Table1cLabel labels rows by fault duration.
func Table1cLabel(d Dimension) string { return fmt.Sprintf("µ=%v", d.Mu) }

// FormatDeviations renders Figure 10 as a table: average % deviation
// from MXR per application size and strategy.
func FormatDeviations(rows []DeviationRow) string {
	var b strings.Builder
	b.WriteString("Figure 10: average % deviation from MXR\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "processes", "MR", "SFX", "MX")
	for _, r := range rows {
		mr, sfx, mx := r.Dev[ftdse.MR], r.Dev[ftdse.SFX], r.Dev[ftdse.MX]
		fmt.Fprintf(&b, "%-10d %10.2f %10.2f %10.2f\n", r.Dim.Procs, mr.Avg(), sfx.Avg(), mx.Avg())
	}
	return b.String()
}

// FormatCC renders the cruise-controller comparison.
func FormatCC(rows []CCRow) string {
	var b strings.Builder
	b.WriteString("Cruise controller (32 processes, 3 nodes, deadline 250ms, k=2, µ=2ms)\n")
	fmt.Fprintf(&b, "%-6s %12s %14s %12s\n", "strat", "δ", "deadline", "overhead")
	for _, r := range rows {
		verdict := "MET"
		if !r.Schedulable {
			verdict = "MISSED"
		}
		ovh := "-"
		if r.Strategy != ftdse.NFT {
			ovh = fmt.Sprintf("%.1f%%", r.OverheadPct)
		}
		fmt.Fprintf(&b, "%-6v %12v %14s %12s\n", r.Strategy, r.Makespan, verdict, ovh)
	}
	return b.String()
}
