package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/ftdse"
)

// TestCorpusDeterministic: the corpus is a pure function of (seed,
// short) — case lists are identical across calls, and the generated
// problems serialize to byte-identical documents, which is the
// reproducibility contract BENCH report comparison rests on.
func TestCorpusDeterministic(t *testing.T) {
	for _, short := range []bool{true, false} {
		a := Corpus(42, short)
		b := Corpus(42, short)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("short=%v: corpus not deterministic", short)
		}
		for i := range a {
			var ba, bb bytes.Buffer
			if err := ftdse.WriteProblem(&ba, a[i].Problem()); err != nil {
				t.Fatal(err)
			}
			if err := ftdse.WriteProblem(&bb, b[i].Problem()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
				t.Errorf("short=%v case %s: problem files differ between generations", short, a[i].Name)
			}
		}
	}
}

// TestCorpusSeedMatters: different seeds generate different corpora
// (otherwise the -seed flag would be a lie).
func TestCorpusSeedMatters(t *testing.T) {
	a, b := Corpus(1, true), Corpus(2, true)
	var ba, bb bytes.Buffer
	if err := ftdse.WriteProblem(&ba, a[0].Problem()); err != nil {
		t.Fatal(err)
	}
	if err := ftdse.WriteProblem(&bb, b[0].Problem()); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("seeds 1 and 2 generate the same problem")
	}
}

// TestCorpusShape: every case parses (engine names, solver
// construction), names are unique and well-formed, and the short corpus
// is a strict subset of sizes×engines of the full one.
func TestCorpusShape(t *testing.T) {
	full := Corpus(1, false)
	short := Corpus(1, true)
	if len(short) >= len(full) {
		t.Fatalf("short corpus (%d) not smaller than full (%d)", len(short), len(full))
	}
	seen := map[string]bool{}
	for _, c := range full {
		if seen[c.Name] {
			t.Errorf("duplicate case name %s", c.Name)
		}
		seen[c.Name] = true
		parts := strings.Split(c.Name, "/")
		if len(parts) != 3 || parts[0] != c.Size || parts[2] != c.Engine {
			t.Errorf("malformed case name %s", c.Name)
		}
		if _, err := c.Solver(); err != nil {
			t.Errorf("case %s: %v", c.Name, err)
		}
		if c.MaxIterations <= 0 || c.Spec.Procs <= 0 || c.Faults.K <= 0 {
			t.Errorf("case %s has degenerate parameters: %+v", c.Name, c)
		}
	}
	for _, c := range short {
		if !seen[c.Name] {
			t.Errorf("short-corpus case %s missing from the full corpus", c.Name)
		}
	}
}

// TestFilterCases: substring filtering, and the empty filter keeps all.
func TestFilterCases(t *testing.T) {
	all := Corpus(1, true)
	if got := FilterCases(all, ""); len(got) != len(all) {
		t.Errorf("empty filter kept %d of %d", len(got), len(all))
	}
	for _, c := range FilterCases(all, "/sa") {
		if c.Engine != "sa" {
			t.Errorf("filter \"/sa\" kept %s", c.Name)
		}
	}
	if got := FilterCases(all, "nope"); len(got) != 0 {
		t.Errorf("bogus filter kept %d cases", len(got))
	}
}
