package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/ftdse"
)

// RunCorpus executes the cases sequentially and returns the measured
// report (Rev/Seed/Short are the caller's to set — they describe where
// the corpus came from, not what was measured). Each case is timed
// wall-clock and bracketed by runtime.MemStats reads, so allocs_per_op
// and bytes_per_op are the heap traffic of that solve; corpus solvers
// are single-worker, making both numbers reproducible. A fired context
// aborts the run and returns the error — a truncated report must never
// be mistaken for a measurement.
func RunCorpus(ctx context.Context, cases []CorpusCase, progress io.Writer) (*Report, error) {
	r := &Report{GoVersion: runtime.Version()}
	for _, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := runCase(ctx, c)
		if err != nil {
			return nil, err
		}
		r.Cases = append(r.Cases, res)
		if progress != nil {
			fmt.Fprintf(progress, "%-26s %8.1fms %9d allocs %v\n",
				c.Name, res.WallMS, res.AllocsPerOp, costString(res))
		}
	}
	r.ComputeSummary()
	return r, nil
}

// runCase measures one corpus case.
func runCase(ctx context.Context, c CorpusCase) (CaseResult, error) {
	prob := c.Problem()
	solver, err := c.Solver()
	if err != nil {
		return CaseResult{}, err
	}

	// Settle the heap so the MemStats bracket sees (almost) only the
	// solve's own allocations.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	evBefore := ftdse.ReadEvaluatorMetrics()
	start := time.Now()
	res, err := solver.Solve(ctx, prob)
	wall := time.Since(start)
	evAfter := ftdse.ReadEvaluatorMetrics()
	runtime.ReadMemStats(&after)
	if err != nil {
		return CaseResult{}, fmt.Errorf("bench: case %s: %w", c.Name, err)
	}
	if res.Stopped != ftdse.StopCompleted {
		return CaseResult{}, fmt.Errorf("bench: case %s interrupted (%v)", c.Name, res.Stopped)
	}

	// The evaluator counters are process-global; corpus cases run
	// sequentially, so the bracket delta is this solve's own traffic.
	hits := evAfter.CacheHits - evBefore.CacheHits
	misses := evAfter.CacheMisses - evBefore.CacheMisses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return CaseResult{
		Name:        c.Name,
		Size:        c.Size,
		Shape:       strings.ToLower(c.Spec.Shape.String()),
		Engine:      c.Engine,
		Procs:       c.Spec.Procs,
		Nodes:       c.Spec.Nodes,
		K:           c.Faults.K,
		Iterations:  res.Iterations,
		WallMS:      float64(wall) / float64(time.Millisecond),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		MakespanUS:  int64(res.Cost.Makespan),
		TardinessUS: int64(res.Cost.Tardiness),
		Schedulable: res.Cost.Schedulable(),

		SchedulingPasses: evAfter.SchedulingPasses - evBefore.SchedulingPasses,
		EvalCacheHits:    hits,
		EvalCacheMisses:  misses,
		EvalCacheHitRate: hitRate,
		ScratchAllocs:    evAfter.ScratchAllocs - evBefore.ScratchAllocs,
		ScratchReuses:    evAfter.ScratchReuses - evBefore.ScratchReuses,
	}, nil
}

func costString(r CaseResult) string {
	if r.Schedulable {
		return fmt.Sprintf("δ=%dµs", r.MakespanUS)
	}
	return fmt.Sprintf("δ=%dµs tardy=%dµs", r.MakespanUS, r.TardinessUS)
}
