// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 6) on top of the public
// ftdse API:
//
//   - Table 1a: fault-tolerance overhead of MXR vs NFT over application
//     size (20..100 processes on 2..6 nodes, k = 3..7, µ = 5 ms);
//   - Table 1b: overhead over the number of faults (60 processes,
//     4 nodes, k ∈ {2,4,6,8,10}, µ = 5 ms);
//   - Table 1c: overhead over the fault duration (20 processes, 2 nodes,
//     k = 3, µ ∈ {1,5,10,15,20} ms);
//   - Figure 10: average % deviation of MX, MR and SFX from MXR;
//   - the cruise-controller example (32 processes, 3 nodes, 250 ms
//     deadline, k = 2, µ = 2 ms).
//
// The paper evaluates 15 random applications per dimension with per-
// instance time limits of 10 minutes to 5.5 hours on Sun Fire V250
// machines; the harness makes both the instance count and the search
// budget configurable so the experiments scale from smoke tests to
// paper-protocol runs. Applications rotate through random, tree and
// chain-group structures and uniform/exponential execution-time
// distributions, as in the paper.
//
// Every experiment takes a context and stops early — returning the
// rows accumulated so far alongside ctx.Err() — when it fires, so long
// sweeps can be interrupted cleanly.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/ftdse"
)

// Config tunes an experiment run.
type Config struct {
	// Seeds is the number of random applications per dimension
	// (the paper uses 15).
	Seeds int
	// MaxIterations bounds each optimization's tabu search.
	MaxIterations int
	// TimeLimit bounds each optimization run (0 = none).
	TimeLimit time.Duration
	// Workers bounds the concurrent move evaluations inside each
	// optimization run (ftdse.WithWorkers); 0 uses all CPUs.
	Workers int
	// Engine selects the search engine of every run (ftdse.WithEngine);
	// nil uses the paper's default greedy→tabu pipeline.
	Engine ftdse.Engine
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// DefaultConfig returns a configuration that finishes the full suite in
// minutes on a laptop while preserving the paper's qualitative shapes.
func DefaultConfig() Config {
	return Config{Seeds: 5, MaxIterations: 200, TimeLimit: 20 * time.Second}
}

// SmokeConfig is a minimal configuration for tests.
func SmokeConfig() Config {
	return Config{Seeds: 1, MaxIterations: 12, TimeLimit: 10 * time.Second}
}

// PaperConfig mirrors the paper's protocol (15 seeds; budget per run
// still bounded by iterations rather than hours).
func PaperConfig() Config {
	return Config{Seeds: 15, MaxIterations: 1000, TimeLimit: 2 * time.Minute}
}

// solver builds the configured solver for one strategy.
func (c Config) solver(s ftdse.Strategy) *ftdse.Solver {
	opts := []ftdse.Option{
		ftdse.WithStrategy(s),
		ftdse.WithMaxIterations(c.MaxIterations),
		ftdse.WithTimeLimit(c.TimeLimit),
		ftdse.WithWorkers(c.Workers),
	}
	if c.Engine != nil {
		opts = append(opts, ftdse.WithEngine(c.Engine))
	}
	return ftdse.NewSolver(opts...)
}

// Dimension is one evaluation point.
type Dimension struct {
	Procs int
	Nodes int
	K     int
	Mu    ftdse.Time
}

func (d Dimension) String() string {
	return fmt.Sprintf("%dp/%dn k=%d µ=%v", d.Procs, d.Nodes, d.K, d.Mu)
}

// Table1aDims are the application-size dimensions of Table 1a and
// Figure 10.
func Table1aDims() []Dimension {
	return []Dimension{
		{Procs: 20, Nodes: 2, K: 3, Mu: ftdse.Ms(5)},
		{Procs: 40, Nodes: 3, K: 4, Mu: ftdse.Ms(5)},
		{Procs: 60, Nodes: 4, K: 5, Mu: ftdse.Ms(5)},
		{Procs: 80, Nodes: 5, K: 6, Mu: ftdse.Ms(5)},
		{Procs: 100, Nodes: 6, K: 7, Mu: ftdse.Ms(5)},
	}
}

// Table1bDims vary the number of faults for 60 processes on 4 nodes.
func Table1bDims() []Dimension {
	var out []Dimension
	for _, k := range []int{2, 4, 6, 8, 10} {
		out = append(out, Dimension{Procs: 60, Nodes: 4, K: k, Mu: ftdse.Ms(5)})
	}
	return out
}

// Table1cDims vary the fault duration for 20 processes on 2 nodes.
func Table1cDims() []Dimension {
	var out []Dimension
	for _, mu := range []int64{1, 5, 10, 15, 20} {
		out = append(out, Dimension{Procs: 20, Nodes: 2, K: 3, Mu: ftdse.Ms(mu)})
	}
	return out
}

// spec builds the generator specification of one instance of a
// dimension, rotating graph shapes and WCET distributions as the paper
// does.
func (d Dimension) spec(seed int) ftdse.GenSpec {
	shapes := []ftdse.GraphShape{ftdse.ShapeRandom, ftdse.ShapeTree, ftdse.ShapeChains}
	dists := []ftdse.WCETDist{ftdse.DistUniform, ftdse.DistExponential}
	return ftdse.GenSpec{
		Procs:    d.Procs,
		Nodes:    d.Nodes,
		Shape:    shapes[seed%len(shapes)],
		WCETDist: dists[seed%len(dists)],
		Seed:     int64(1000*d.Procs + 10*d.K + seed),
	}
}

// Problem generates the application instance of one (dimension, seed)
// evaluation point.
func (d Dimension) Problem(seed int) ftdse.Problem {
	return ftdse.GenerateProblem(d.spec(seed), ftdse.FaultModel{K: d.K, Mu: d.Mu})
}

// RunPoint optimizes one generated instance with each strategy and
// returns the resulting costs.
func (c Config) RunPoint(ctx context.Context, d Dimension, seed int, strategies []ftdse.Strategy) (map[ftdse.Strategy]ftdse.Cost, error) {
	prob := d.Problem(seed)
	out := make(map[ftdse.Strategy]ftdse.Cost, len(strategies))
	for _, s := range strategies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := c.solver(s).Solve(ctx, prob)
		if err != nil {
			return nil, fmt.Errorf("bench: %v seed %d strategy %v: %w", d, seed, s, err)
		}
		if res.Stopped == ftdse.StopCanceled {
			// Canceled mid-solve: the cost is a half-optimized artifact,
			// not a data point. (A configured TimeLimit expiring is the
			// protocol's budget and stays a valid observation.)
			return nil, ctx.Err()
		}
		out[s] = res.Cost
		if c.Progress != nil {
			fmt.Fprintf(c.Progress, "%v seed %d %-4v: %v (%v)\n",
				d, seed, s, res.Cost, time.Since(start).Round(time.Millisecond))
		}
	}
	return out, nil
}

// Stat accumulates min/avg/max of a series.
type Stat struct {
	Min, Max, Sum float64
	N             int
}

// Add records one observation.
func (s *Stat) Add(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.Sum += v
	s.N++
}

// Avg returns the mean (0 when empty).
func (s *Stat) Avg() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// OverheadRow is one row of Table 1: the fault-tolerance overhead
// 100·(δ_MXR − δ_NFT)/δ_NFT over the instances of a dimension.
type OverheadRow struct {
	Dim  Dimension
	Stat Stat
}

// overheadTable runs MXR and NFT over the dimensions and accumulates
// overheads.
func (c Config) overheadTable(ctx context.Context, dims []Dimension) ([]OverheadRow, error) {
	rows := make([]OverheadRow, 0, len(dims))
	for _, d := range dims {
		row := OverheadRow{Dim: d}
		for seed := 0; seed < c.Seeds; seed++ {
			costs, err := c.RunPoint(ctx, d, seed, []ftdse.Strategy{ftdse.NFT, ftdse.MXR})
			if err != nil {
				return rows, err
			}
			nft := float64(costs[ftdse.NFT].Makespan)
			mxr := float64(costs[ftdse.MXR].Makespan)
			if nft <= 0 {
				continue
			}
			row.Stat.Add(100 * (mxr - nft) / nft)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1a reproduces Table 1a (overhead vs application size).
func (c Config) Table1a(ctx context.Context) ([]OverheadRow, error) {
	return c.overheadTable(ctx, Table1aDims())
}

// Table1b reproduces Table 1b (overhead vs number of faults).
func (c Config) Table1b(ctx context.Context) ([]OverheadRow, error) {
	return c.overheadTable(ctx, Table1bDims())
}

// Table1c reproduces Table 1c (overhead vs fault duration).
func (c Config) Table1c(ctx context.Context) ([]OverheadRow, error) {
	return c.overheadTable(ctx, Table1cDims())
}

// DeviationRow is one point of Figure 10: the average percentage
// deviation of MR, SFX and MX from MXR for one application size.
type DeviationRow struct {
	Dim Dimension
	Dev map[ftdse.Strategy]Stat
}

// Figure10 reproduces Figure 10 over the Table 1a dimensions.
func (c Config) Figure10(ctx context.Context) ([]DeviationRow, error) {
	strategies := []ftdse.Strategy{ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX}
	var rows []DeviationRow
	for _, d := range Table1aDims() {
		row := DeviationRow{Dim: d, Dev: map[ftdse.Strategy]Stat{}}
		for seed := 0; seed < c.Seeds; seed++ {
			costs, err := c.RunPoint(ctx, d, seed, strategies)
			if err != nil {
				return rows, err
			}
			mxr := float64(costs[ftdse.MXR].Makespan)
			if mxr <= 0 {
				continue
			}
			for _, s := range []ftdse.Strategy{ftdse.MR, ftdse.SFX, ftdse.MX} {
				st := row.Dev[s]
				st.Add(100 * (float64(costs[s].Makespan) - mxr) / mxr)
				row.Dev[s] = st
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CCRow is one strategy's outcome on the cruise controller.
type CCRow struct {
	Strategy    ftdse.Strategy
	Makespan    ftdse.Time
	Schedulable bool
	OverheadPct float64 // vs NFT
}

// CruiseController reproduces the paper's real-life example. The search
// budget comes from the configuration; the paper's protocol needs on
// the order of 1500 iterations.
func (c Config) CruiseController(ctx context.Context) ([]CCRow, error) {
	prob := ftdse.CruiseControl()
	strategies := []ftdse.Strategy{ftdse.NFT, ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX}
	var nft float64
	var rows []CCRow
	for _, s := range strategies {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		res, err := c.solver(s).Solve(ctx, prob)
		if err != nil {
			return rows, err
		}
		if res.Stopped == ftdse.StopCanceled {
			// Drop the half-optimized observation, keep completed rows.
			return rows, ctx.Err()
		}
		row := CCRow{Strategy: s, Makespan: res.Cost.Makespan, Schedulable: res.Cost.Schedulable()}
		if s == ftdse.NFT {
			nft = float64(res.Cost.Makespan)
		}
		if nft > 0 {
			row.OverheadPct = 100 * (float64(res.Cost.Makespan) - nft) / nft
		}
		rows = append(rows, row)
		if c.Progress != nil {
			fmt.Fprintf(c.Progress, "CC %-4v: δ=%v schedulable=%v\n", s, row.Makespan, row.Schedulable)
		}
	}
	return rows, nil
}
