package bench

import (
	"context"
	"strings"
	"testing"

	"repro/ftdse"
)

func TestDimensionsMatchPaper(t *testing.T) {
	a := Table1aDims()
	if len(a) != 5 {
		t.Fatalf("Table 1a has %d dimensions, want 5", len(a))
	}
	wantProcs := []int{20, 40, 60, 80, 100}
	wantNodes := []int{2, 3, 4, 5, 6}
	wantK := []int{3, 4, 5, 6, 7}
	for i, d := range a {
		if d.Procs != wantProcs[i] || d.Nodes != wantNodes[i] || d.K != wantK[i] || d.Mu != ftdse.Ms(5) {
			t.Errorf("Table1a dim %d = %v", i, d)
		}
	}
	b := Table1bDims()
	for i, k := range []int{2, 4, 6, 8, 10} {
		if b[i].Procs != 60 || b[i].Nodes != 4 || b[i].K != k {
			t.Errorf("Table1b dim %d = %v", i, b[i])
		}
	}
	c := Table1cDims()
	for i, mu := range []int64{1, 5, 10, 15, 20} {
		if c[i].Procs != 20 || c[i].Nodes != 2 || c[i].K != 3 || c[i].Mu != ftdse.Ms(mu) {
			t.Errorf("Table1c dim %d = %v", i, c[i])
		}
	}
}

func TestStat(t *testing.T) {
	var s Stat
	if s.Avg() != 0 {
		t.Error("empty stat should average 0")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Min != 1 || s.Max != 3 || s.Avg() != 2 || s.N != 3 {
		t.Errorf("stat = %+v", s)
	}
}

func TestRunPointSmoke(t *testing.T) {
	cfg := SmokeConfig()
	d := Dimension{Procs: 10, Nodes: 2, K: 2, Mu: ftdse.Ms(5)}
	costs, err := cfg.RunPoint(context.Background(), d, 0, []ftdse.Strategy{ftdse.NFT, ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX})
	if err != nil {
		t.Fatal(err)
	}
	nft := costs[ftdse.NFT].Makespan
	if nft <= 0 {
		t.Fatal("NFT makespan must be positive")
	}
	for _, s := range []ftdse.Strategy{ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX} {
		if costs[s].Makespan < nft {
			t.Errorf("%v makespan %v below NFT %v", s, costs[s].Makespan, nft)
		}
	}
}

func TestOverheadTableSmoke(t *testing.T) {
	cfg := SmokeConfig()
	rows, err := cfg.overheadTable(context.Background(), []Dimension{{Procs: 8, Nodes: 2, K: 1, Mu: ftdse.Ms(5)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Stat.N != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Stat.Avg() < 0 {
		t.Errorf("fault tolerance should not shorten the schedule: %+v", rows[0].Stat)
	}
	out := FormatOverheads("t", "dim", Table1aLabel, rows)
	if !strings.Contains(out, "8 procs") {
		t.Errorf("formatting missing label: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	rows := []DeviationRow{{
		Dim: Dimension{Procs: 20},
		Dev: map[ftdse.Strategy]Stat{
			ftdse.MR:  {Min: 1, Max: 3, Sum: 4, N: 2},
			ftdse.SFX: {Min: 1, Max: 2, Sum: 3, N: 2},
			ftdse.MX:  {Min: 0, Max: 1, Sum: 1, N: 2},
		},
	}}
	out := FormatDeviations(rows)
	if !strings.Contains(out, "MR") || !strings.Contains(out, "20") {
		t.Errorf("deviation table: %q", out)
	}
	cc := FormatCC([]CCRow{
		{Strategy: ftdse.NFT, Makespan: ftdse.Ms(172), Schedulable: true},
		{Strategy: ftdse.MXR, Makespan: ftdse.Ms(244), Schedulable: true, OverheadPct: 41.9},
		{Strategy: ftdse.MX, Makespan: ftdse.Ms(274), Schedulable: false, OverheadPct: 59.3},
	})
	if !strings.Contains(cc, "MISSED") || !strings.Contains(cc, "MET") {
		t.Errorf("cc table: %q", cc)
	}
	if !strings.Contains(cc, "41.9%") {
		t.Errorf("cc table missing overhead: %q", cc)
	}
}

func TestLabels(t *testing.T) {
	d := Dimension{Procs: 60, Nodes: 4, K: 6, Mu: ftdse.Ms(15)}
	if Table1aLabel(d) != "60 procs" || Table1bLabel(d) != "k=6" || Table1cLabel(d) != "µ=15ms" {
		t.Error("labels wrong")
	}
	if d.String() != "60p/4n k=6 µ=15ms" {
		t.Errorf("Dimension.String = %q", d.String())
	}
}

func TestCSVWriters(t *testing.T) {
	var buf strings.Builder
	rows := []OverheadRow{{
		Dim:  Dimension{Procs: 20, Nodes: 2, K: 3, Mu: ftdse.Ms(5)},
		Stat: Stat{Min: 60, Max: 100, Sum: 240, N: 3},
	}}
	if err := WriteOverheadsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "procs,nodes,k,mu_ms") || !strings.Contains(out, "20,2,3,5,100.00,80.00,60.00,3") {
		t.Errorf("overheads csv:\n%s", out)
	}

	buf.Reset()
	dev := []DeviationRow{{
		Dim: Dimension{Procs: 40},
		Dev: map[ftdse.Strategy]Stat{
			ftdse.MR:  {Min: 100, Max: 150, Sum: 250, N: 2},
			ftdse.SFX: {Min: 30, Max: 50, Sum: 80, N: 2},
			ftdse.MX:  {Min: 1, Max: 3, Sum: 4, N: 2},
		},
	}}
	if err := WriteDeviationsCSV(&buf, dev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "40,125.00,40.00,2.00,2") {
		t.Errorf("deviations csv:\n%s", buf.String())
	}

	buf.Reset()
	cc := []CCRow{{Strategy: ftdse.MXR, Makespan: ftdse.Ms(244), Schedulable: true, OverheadPct: 41.9}}
	if err := WriteCCCSV(&buf, cc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MXR,244,true,41.9") {
		t.Errorf("cc csv:\n%s", buf.String())
	}
}
