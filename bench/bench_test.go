package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/ftdse"
)

func TestDimensionsMatchPaper(t *testing.T) {
	a := Table1aDims()
	if len(a) != 5 {
		t.Fatalf("Table 1a has %d dimensions, want 5", len(a))
	}
	wantProcs := []int{20, 40, 60, 80, 100}
	wantNodes := []int{2, 3, 4, 5, 6}
	wantK := []int{3, 4, 5, 6, 7}
	for i, d := range a {
		if d.Procs != wantProcs[i] || d.Nodes != wantNodes[i] || d.K != wantK[i] || d.Mu != ftdse.Ms(5) {
			t.Errorf("Table1a dim %d = %v", i, d)
		}
	}
	b := Table1bDims()
	for i, k := range []int{2, 4, 6, 8, 10} {
		if b[i].Procs != 60 || b[i].Nodes != 4 || b[i].K != k {
			t.Errorf("Table1b dim %d = %v", i, b[i])
		}
	}
	c := Table1cDims()
	for i, mu := range []int64{1, 5, 10, 15, 20} {
		if c[i].Procs != 20 || c[i].Nodes != 2 || c[i].K != 3 || c[i].Mu != ftdse.Ms(mu) {
			t.Errorf("Table1c dim %d = %v", i, c[i])
		}
	}
}

func TestStat(t *testing.T) {
	var s Stat
	if s.Avg() != 0 {
		t.Error("empty stat should average 0")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Min != 1 || s.Max != 3 || s.Avg() != 2 || s.N != 3 {
		t.Errorf("stat = %+v", s)
	}
}

func TestRunPointSmoke(t *testing.T) {
	cfg := SmokeConfig()
	d := Dimension{Procs: 10, Nodes: 2, K: 2, Mu: ftdse.Ms(5)}
	costs, err := cfg.RunPoint(context.Background(), d, 0, []ftdse.Strategy{ftdse.NFT, ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX})
	if err != nil {
		t.Fatal(err)
	}
	nft := costs[ftdse.NFT].Makespan
	if nft <= 0 {
		t.Fatal("NFT makespan must be positive")
	}
	for _, s := range []ftdse.Strategy{ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX} {
		if costs[s].Makespan < nft {
			t.Errorf("%v makespan %v below NFT %v", s, costs[s].Makespan, nft)
		}
	}
}

func TestOverheadTableSmoke(t *testing.T) {
	cfg := SmokeConfig()
	rows, err := cfg.overheadTable(context.Background(), []Dimension{{Procs: 8, Nodes: 2, K: 1, Mu: ftdse.Ms(5)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Stat.N != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Stat.Avg() < 0 {
		t.Errorf("fault tolerance should not shorten the schedule: %+v", rows[0].Stat)
	}
	out := FormatOverheads("t", "dim", Table1aLabel, rows)
	if !strings.Contains(out, "8 procs") {
		t.Errorf("formatting missing label: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	rows := []DeviationRow{{
		Dim: Dimension{Procs: 20},
		Dev: map[ftdse.Strategy]Stat{
			ftdse.MR:  {Min: 1, Max: 3, Sum: 4, N: 2},
			ftdse.SFX: {Min: 1, Max: 2, Sum: 3, N: 2},
			ftdse.MX:  {Min: 0, Max: 1, Sum: 1, N: 2},
		},
	}}
	out := FormatDeviations(rows)
	if !strings.Contains(out, "MR") || !strings.Contains(out, "20") {
		t.Errorf("deviation table: %q", out)
	}
	cc := FormatCC([]CCRow{
		{Strategy: ftdse.NFT, Makespan: ftdse.Ms(172), Schedulable: true},
		{Strategy: ftdse.MXR, Makespan: ftdse.Ms(244), Schedulable: true, OverheadPct: 41.9},
		{Strategy: ftdse.MX, Makespan: ftdse.Ms(274), Schedulable: false, OverheadPct: 59.3},
	})
	if !strings.Contains(cc, "MISSED") || !strings.Contains(cc, "MET") {
		t.Errorf("cc table: %q", cc)
	}
	if !strings.Contains(cc, "41.9%") {
		t.Errorf("cc table missing overhead: %q", cc)
	}
}

func TestLabels(t *testing.T) {
	d := Dimension{Procs: 60, Nodes: 4, K: 6, Mu: ftdse.Ms(15)}
	if Table1aLabel(d) != "60 procs" || Table1bLabel(d) != "k=6" || Table1cLabel(d) != "µ=15ms" {
		t.Error("labels wrong")
	}
	if d.String() != "60p/4n k=6 µ=15ms" {
		t.Errorf("Dimension.String = %q", d.String())
	}
}

func TestCSVWriters(t *testing.T) {
	var buf strings.Builder
	rows := []OverheadRow{{
		Dim:  Dimension{Procs: 20, Nodes: 2, K: 3, Mu: ftdse.Ms(5)},
		Stat: Stat{Min: 60, Max: 100, Sum: 240, N: 3},
	}}
	if err := WriteOverheadsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "procs,nodes,k,mu_ms") || !strings.Contains(out, "20,2,3,5,100.00,80.00,60.00,3") {
		t.Errorf("overheads csv:\n%s", out)
	}

	buf.Reset()
	dev := []DeviationRow{{
		Dim: Dimension{Procs: 40},
		Dev: map[ftdse.Strategy]Stat{
			ftdse.MR:  {Min: 100, Max: 150, Sum: 250, N: 2},
			ftdse.SFX: {Min: 30, Max: 50, Sum: 80, N: 2},
			ftdse.MX:  {Min: 1, Max: 3, Sum: 4, N: 2},
		},
	}}
	if err := WriteDeviationsCSV(&buf, dev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "40,125.00,40.00,2.00,2") {
		t.Errorf("deviations csv:\n%s", buf.String())
	}

	buf.Reset()
	cc := []CCRow{{Strategy: ftdse.MXR, Makespan: ftdse.Ms(244), Schedulable: true, OverheadPct: 41.9}}
	if err := WriteCCCSV(&buf, cc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MXR,244,true,41.9") {
		t.Errorf("cc csv:\n%s", buf.String())
	}
}

// TestJSONWritersShareCSVSchema: the JSON table emitters are valid JSON
// and carry exactly the CSV's columns — same names, same values — since
// both render the single schema of columns.go.
func TestJSONWritersShareCSVSchema(t *testing.T) {
	rows := []OverheadRow{{
		Dim:  Dimension{Procs: 20, Nodes: 2, K: 3, Mu: ftdse.Ms(5)},
		Stat: Stat{Min: 60, Max: 100, Sum: 240, N: 3},
	}}
	var jbuf, cbuf strings.Builder
	if err := WriteOverheadsJSON(&jbuf, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteOverheadsCSV(&cbuf, rows); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(jbuf.String()), &parsed); err != nil {
		t.Fatalf("overheads JSON invalid: %v\n%s", err, jbuf.String())
	}
	if len(parsed) != 1 {
		t.Fatalf("parsed %d rows, want 1", len(parsed))
	}
	lines := strings.Split(strings.TrimSpace(cbuf.String()), "\n")
	headers := strings.Split(lines[0], ",")
	cells := strings.Split(lines[1], ",")
	if len(parsed[0]) != len(headers) {
		t.Errorf("JSON has %d columns, CSV %d", len(parsed[0]), len(headers))
	}
	for i, h := range headers {
		v, ok := parsed[0][h]
		if !ok {
			t.Errorf("CSV column %q missing from JSON", h)
			continue
		}
		var csvNum float64
		if _, err := fmt.Sscanf(cells[i], "%g", &csvNum); err == nil {
			if num, ok := v.(float64); !ok || num != csvNum {
				t.Errorf("column %q: JSON %v != CSV %v", h, v, cells[i])
			}
		}
	}

	var ccJSON strings.Builder
	cc := []CCRow{{Strategy: ftdse.MXR, Makespan: ftdse.Ms(244), Schedulable: true, OverheadPct: 41.9}}
	if err := WriteCCJSON(&ccJSON, cc); err != nil {
		t.Fatal(err)
	}
	var ccParsed []struct {
		Strategy    string  `json:"strategy"`
		MakespanMS  float64 `json:"makespan_ms"`
		Schedulable bool    `json:"schedulable"`
		OverheadPct float64 `json:"overhead_pct"`
	}
	if err := json.Unmarshal([]byte(ccJSON.String()), &ccParsed); err != nil {
		t.Fatalf("cc JSON invalid: %v\n%s", err, ccJSON.String())
	}
	if ccParsed[0].Strategy != "MXR" || ccParsed[0].MakespanMS != 244 ||
		!ccParsed[0].Schedulable || ccParsed[0].OverheadPct != 41.9 {
		t.Errorf("cc JSON row = %+v", ccParsed[0])
	}

	var devJSON strings.Builder
	dev := []DeviationRow{{
		Dim: Dimension{Procs: 40},
		Dev: map[ftdse.Strategy]Stat{
			ftdse.MR: {Sum: 250, N: 2}, ftdse.SFX: {Sum: 80, N: 2}, ftdse.MX: {Sum: 4, N: 2},
		},
	}}
	if err := WriteDeviationsJSON(&devJSON, dev); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(devJSON.String())) {
		t.Errorf("deviations JSON invalid:\n%s", devJSON.String())
	}
}
