package bench

import (
	"fmt"
	"strings"

	"repro/ftdse"
)

// CorpusCase is one point of the benchmark corpus: a seeded synthetic
// application (size class × graph shape) optimized by one engine under
// a fixed iteration budget. The case is fully determined by its fields
// — Problem and Solver derive everything from them — so a corpus is
// reproducible from its master seed alone.
type CorpusCase struct {
	// Name identifies the case in reports: "size/shape/engine".
	Name string `json:"name"`
	// Size is the class name (small/medium/large).
	Size string `json:"size"`
	// Spec generates the application (seeded).
	Spec ftdse.GenSpec `json:"spec"`
	// Faults is the fault hypothesis of the case.
	Faults ftdse.FaultModel `json:"faults"`
	// Engine names the search engine (ftdse.ParseEngine).
	Engine string `json:"engine"`
	// MaxIterations bounds the search, keeping case cost predictable.
	MaxIterations int `json:"max_iterations"`
	// Seed seeds stochastic engines (ftdse.WithSeed).
	Seed int64 `json:"seed"`
}

// Problem generates the case's application instance.
func (c CorpusCase) Problem() ftdse.Problem {
	return ftdse.GenerateProblem(c.Spec, c.Faults)
}

// Solver builds the case's configured solver. Workers is pinned to 1:
// corpus runs measure the evaluator's sequential hot path, so wall
// times are comparable across machines with different core counts and
// allocation counts are reproducible to within a few background-
// runtime allocations (the final costs are exactly reproducible).
func (c CorpusCase) Solver() (*ftdse.Solver, error) {
	eng, err := ftdse.ParseEngine(c.Engine)
	if err != nil {
		return nil, fmt.Errorf("bench: case %s: %w", c.Name, err)
	}
	return ftdse.NewSolver(
		ftdse.WithEngine(eng),
		ftdse.WithMaxIterations(c.MaxIterations),
		ftdse.WithSeed(c.Seed),
		ftdse.WithWorkers(1),
	), nil
}

// corpusSize is one size class of the corpus.
type corpusSize struct {
	name  string
	procs int
	nodes int
	k     int
	iters int
}

// corpusSizes are the corpus size classes. Iteration budgets shrink as
// instances grow so every class contributes comparable wall time.
func corpusSizes(short bool) []corpusSize {
	sizes := []corpusSize{
		{name: "small", procs: 10, nodes: 2, k: 2, iters: 40},
		{name: "medium", procs: 20, nodes: 3, k: 3, iters: 30},
		{name: "large", procs: 40, nodes: 4, k: 4, iters: 20},
	}
	if short {
		return sizes[:2]
	}
	return sizes
}

// corpusEngines are the engines a corpus sweeps. Short mode keeps the
// paper pipeline and the seeded stochastic engine; the full corpus adds
// the individual pipeline stages. The portfolio engine is excluded: it
// races goroutines, which makes wall time machine-dependent — exactly
// the noise a regression corpus must avoid.
func corpusEngines(short bool) []string {
	if short {
		return []string{"default", "sa"}
	}
	return []string{"default", "greedy", "tabu", "sa"}
}

// corpusShapes are the graph structures of the paper's evaluation.
var corpusShapes = []ftdse.GraphShape{ftdse.ShapeRandom, ftdse.ShapeTree, ftdse.ShapeChains}

// Corpus builds the deterministic benchmark corpus of a master seed:
// size classes × graph shapes × engines, each case's generator seeded
// by a stable function of the master seed and the case position. Equal
// (seed, short) always produce the identical corpus — case order
// included — which is what makes BENCH reports comparable across
// revisions.
func Corpus(seed int64, short bool) []CorpusCase {
	var out []CorpusCase
	for _, size := range corpusSizes(short) {
		for si, shape := range corpusShapes {
			spec := ftdse.GenSpec{
				Procs: size.procs,
				Nodes: size.nodes,
				Shape: shape,
				// Alternate WCET distributions across shapes, as the
				// paper's evaluation does.
				WCETDist: []ftdse.WCETDist{ftdse.DistUniform, ftdse.DistExponential}[si%2],
				Seed:     seed + int64(1009*size.procs) + int64(101*si),
			}
			fm := ftdse.FaultModel{K: size.k, Mu: ftdse.Ms(5)}
			for _, engine := range corpusEngines(short) {
				out = append(out, CorpusCase{
					Name:          strings.Join([]string{size.name, strings.ToLower(shape.String()), engine}, "/"),
					Size:          size.name,
					Spec:          spec,
					Faults:        fm,
					Engine:        engine,
					MaxIterations: size.iters,
					Seed:          seed,
				})
			}
		}
	}
	return out
}

// FilterCases keeps the cases whose name contains the substring (all
// cases when the filter is empty) — the ftbench -run flag.
func FilterCases(cases []CorpusCase, substr string) []CorpusCase {
	if substr == "" {
		return cases
	}
	var out []CorpusCase
	for _, c := range cases {
		if strings.Contains(c.Name, substr) {
			out = append(out, c)
		}
	}
	return out
}
