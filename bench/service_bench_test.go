package bench

// Load-generation benchmarks for the ftdsed solve service: they drive
// the full HTTP path (queue admission, worker pool, solve, JSON
// encoding) through the typed client, measuring end-to-end submission
// throughput and the cache-hit fast path. Run with:
//
//	go test ./bench -bench BenchmarkService -run '^$'

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/service"
)

// benchService starts a service + HTTP server and a client against it.
func benchService(b *testing.B, cfg service.Config) *client.Client {
	b.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	b.Cleanup(func() {
		srv.Close()
		if err := svc.Close(context.Background()); err != nil {
			b.Errorf("Close: %v", err)
		}
	})
	return client.New(srv.URL, srv.Client())
}

func benchProblem(seed int64) ftdse.Problem {
	return ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: 6, Nodes: 2, Seed: seed},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
}

// BenchmarkServiceThroughput measures sustained end-to-end throughput
// under concurrent clients with the result cache disabled: the number
// reported is full-stack jobs/sec as the service actually behaves —
// completed submissions re-solve (no cache), while concurrent identical
// submissions may still coalesce onto one in-flight solve — the
// service-level counterpart of BenchmarkParallelSearch.
func BenchmarkServiceThroughput(b *testing.B) {
	c := benchService(b, service.Config{QueueSize: 1024, CacheSize: -1})
	// A pool of pre-generated distinct problems keeps generation out of
	// the hot loop.
	probs := make([]ftdse.Problem, 16)
	for i := range probs {
		probs[i] = benchProblem(int64(100 + i))
	}
	opts := service.SolveOptions{MaxIterations: 4, Workers: 1}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := probs[int(next.Add(1))%len(probs)]
			st, err := c.SubmitWait(context.Background(), p, opts)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != service.StateDone {
				b.Fatalf("job ended %s (%s)", st.State, st.Error)
			}
		}
	})
}

// BenchmarkServiceCacheHit measures the cache-hit fast path: one primed
// fingerprint answered over and over without touching the solver.
func BenchmarkServiceCacheHit(b *testing.B) {
	c := benchService(b, service.Config{})
	prob := benchProblem(7)
	opts := service.SolveOptions{MaxIterations: 4, Workers: 1}
	first, err := c.SubmitWait(context.Background(), prob, opts)
	if err != nil || first.State != service.StateDone {
		b.Fatalf("priming solve: %+v, %v", first, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			st, err := c.Submit(context.Background(), prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !st.Cached {
				b.Fatal("submission missed the cache")
			}
		}
	})
	b.StopTimer()
	m, err := c.Metrics(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if m["solves_total"] != 1 {
		b.Fatalf("cache-hit benchmark re-solved: solves_total = %v", m["solves_total"])
	}
}
