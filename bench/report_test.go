package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleReport builds a small deterministic report for the round-trip
// and comparison tests.
func sampleReport() *Report {
	r := &Report{
		Rev:       "abc1234",
		Seed:      1,
		Short:     true,
		GoVersion: "go1.22",
		Cases: []CaseResult{
			{Name: "small/random/default", Size: "small", Shape: "random", Engine: "default",
				Procs: 10, Nodes: 2, K: 2, Iterations: 44, WallMS: 105.0,
				AllocsPerOp: 12000, BytesPerOp: 1_000_000, MakespanUS: 522000, Schedulable: true},
			{Name: "small/random/sa", Size: "small", Shape: "random", Engine: "sa",
				Procs: 10, Nodes: 2, K: 2, Iterations: 320, WallMS: 62.5,
				AllocsPerOp: 27000, BytesPerOp: 2_000_000, MakespanUS: 531000, Schedulable: true},
			{Name: "medium/tree/default", Size: "medium", Shape: "tree", Engine: "default",
				Procs: 20, Nodes: 3, K: 3, Iterations: 35, WallMS: 400.0,
				AllocsPerOp: 18000, BytesPerOp: 3_000_000, MakespanUS: 438000, Schedulable: true},
		},
	}
	r.ComputeSummary()
	return r
}

// TestReportRoundTrip: emit → parse → emit is lossless and
// byte-stable, so reports can be diffed and compared across revisions.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	var first bytes.Buffer
	if err := WriteReport(&first, r); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadReport(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, parsed) {
		t.Fatalf("round trip lost data:\nwant %+v\ngot  %+v", r, parsed)
	}
	var second bytes.Buffer
	if err := WriteReport(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("re-emitted report is not byte-identical")
	}
	if !json.Valid(first.Bytes()) {
		t.Error("report is not valid JSON")
	}
	if len(regressionsOf(t, r, r, 0.10)) != 0 {
		t.Error("a report regresses against itself")
	}
}

func regressionsOf(t *testing.T, old, new *Report, th float64) []Regression {
	t.Helper()
	return Compare(old, new, th)
}

// TestCompareDetectsSlowdown: an injected 2× wall-time slowdown on one
// case must surface as a regression at the 10% threshold, on the right
// case and metric, and the corpus p95 must trip too when the slow case
// dominates the tail.
func TestCompareDetectsSlowdown(t *testing.T) {
	old := sampleReport()
	slowed := sampleReport()
	slowed.Cases[2].WallMS *= 2
	slowed.ComputeSummary()

	regs := Compare(old, slowed, 0.10)
	if len(regs) == 0 {
		t.Fatal("2x slowdown not detected")
	}
	var hit bool
	for _, r := range regs {
		if r.Case == "medium/tree/default" && r.Metric == "wall_ms" {
			hit = true
			if r.DeltaPct < 99 || r.DeltaPct > 101 {
				t.Errorf("delta = %.1f%%, want ~100%%", r.DeltaPct)
			}
		}
	}
	if !hit {
		t.Errorf("regressions %v miss medium/tree/default wall_ms", regs)
	}
	// The slowed case is the p95 of this small corpus.
	var p95Hit bool
	for _, r := range regs {
		if r.Case == "summary" && r.Metric == "p95_wall_ms" {
			p95Hit = true
		}
	}
	if !p95Hit {
		t.Errorf("regressions %v miss the summary p95", regs)
	}
	// The reverse direction — a speedup — is not a regression.
	if regs := Compare(slowed, old, 0.10); len(regs) != 0 {
		t.Errorf("speedup reported as regression: %v", regs)
	}
}

// TestCompareQualityAndSchedulability: deterministic search-quality
// metrics regress too — a worse makespan beyond the threshold and any
// schedulable→unschedulable flip.
func TestCompareQualityAndSchedulability(t *testing.T) {
	old := sampleReport()
	worse := sampleReport()
	worse.Cases[0].MakespanUS = worse.Cases[0].MakespanUS * 3 / 2
	worse.Cases[1].Schedulable = false
	worse.Cases[1].TardinessUS = 1000

	metrics := map[string]bool{}
	for _, r := range Compare(old, worse, 0.10) {
		metrics[r.Case+"/"+r.Metric] = true
	}
	if !metrics["small/random/default/makespan_us"] {
		t.Error("makespan regression not detected")
	}
	if !metrics["small/random/sa/schedulable"] {
		t.Error("schedulability flip not detected")
	}
}

// TestCompareSkipsUnmatchedCases: corpora evolve; cases present in only
// one report are not findings, and the summary is only compared when
// the case sets match.
func TestCompareSkipsUnmatchedCases(t *testing.T) {
	old := sampleReport()
	new := sampleReport()
	new.Cases = new.Cases[:2]
	new.Cases = append(new.Cases, CaseResult{Name: "large/chains/sa", WallMS: 1000})
	new.ComputeSummary()
	if regs := Compare(old, new, 0.10); len(regs) != 0 {
		t.Errorf("unmatched cases produced regressions: %v", regs)
	}
}

// TestCompareNoiseFloor: a relative worsening that stays under the
// absolute noise floor (jitter on a very fast case, a couple of stray
// runtime allocations) is not a finding.
func TestCompareNoiseFloor(t *testing.T) {
	old := sampleReport()
	old.Cases[0].WallMS = 3.0
	old.Cases[1].AllocsPerOp = 100
	old.ComputeSummary()
	noisy := sampleReport()
	noisy.Cases[0].WallMS = 4.0      // +33% relative, but only 1ms absolute
	noisy.Cases[1].AllocsPerOp = 130 // +30% relative, but under the floor
	noisy.ComputeSummary()
	for _, r := range Compare(old, noisy, 0.10) {
		if r.Case == noisy.Cases[0].Name && r.Metric == "wall_ms" {
			t.Errorf("1ms jitter reported as regression: %v", r)
		}
		if r.Case == noisy.Cases[1].Name && r.Metric == "allocs_per_op" {
			t.Errorf("8-alloc jitter reported as regression: %v", r)
		}
	}
}

// TestRunCorpusMeasures runs two real corpus cases end to end and
// checks the report invariants: positive measurements, correct summary
// aggregation, and a deterministic final cost.
func TestRunCorpusMeasures(t *testing.T) {
	cases := FilterCases(Corpus(1, true), "small/chains")
	if len(cases) != 2 {
		t.Fatalf("filter matched %d cases, want 2", len(cases))
	}
	report, err := RunCorpus(context.Background(), cases, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Summary.Cases != 2 || len(report.Cases) != 2 {
		t.Fatalf("summary = %+v", report.Summary)
	}
	for _, c := range report.Cases {
		if c.WallMS <= 0 || c.AllocsPerOp == 0 || c.BytesPerOp == 0 {
			t.Errorf("case %s has empty measurements: %+v", c.Name, c)
		}
		if c.Iterations <= 0 || c.MakespanUS <= 0 {
			t.Errorf("case %s has empty search outcome: %+v", c.Name, c)
		}
	}
	if report.Summary.P95WallMS < report.Summary.MedianWallMS {
		t.Errorf("p95 %.2f below median %.2f", report.Summary.P95WallMS, report.Summary.MedianWallMS)
	}
	// Costs are deterministic: a rerun of the same corpus finds the
	// same designs (wall time and allocations may differ).
	again, err := RunCorpus(context.Background(), cases, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range report.Cases {
		if report.Cases[i].MakespanUS != again.Cases[i].MakespanUS ||
			report.Cases[i].TardinessUS != again.Cases[i].TardinessUS ||
			report.Cases[i].Iterations != again.Cases[i].Iterations {
			t.Errorf("case %s not deterministic across runs", report.Cases[i].Name)
		}
	}
}

// TestRunCorpusHonorsContext: a canceled context aborts the run with an
// error instead of returning a truncated report.
func TestRunCorpusHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCorpus(ctx, Corpus(1, true), nil); err == nil {
		t.Fatal("canceled corpus run returned a report")
	}
}

// TestThresholdBoundary: a worsening exactly at the threshold does not
// trip the gate; just beyond it does.
func TestThresholdBoundary(t *testing.T) {
	old := sampleReport()
	at := sampleReport()
	at.Cases[0].WallMS = old.Cases[0].WallMS * 1.10
	at.ComputeSummary()
	for _, r := range Compare(old, at, 0.10) {
		if r.Case == at.Cases[0].Name && r.Metric == "wall_ms" {
			t.Errorf("exactly-at-threshold change tripped the gate: %v", r)
		}
	}
	over := sampleReport()
	over.Cases[0].WallMS = old.Cases[0].WallMS * 1.12
	over.ComputeSummary()
	found := false
	for _, r := range Compare(old, over, 0.10) {
		if r.Case == over.Cases[0].Name && r.Metric == "wall_ms" {
			found = true
		}
	}
	if !found {
		t.Error("12% worsening passed a 10% gate")
	}
	if !strings.Contains(Regression{Case: "c", Metric: "wall_ms", Old: 1, New: 2, DeltaPct: 100}.String(), "wall_ms") {
		t.Error("Regression.String misses the metric")
	}
}
