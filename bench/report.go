package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// CaseResult is the measured outcome of one corpus case: search
// behaviour (iterations, final cost, schedulability) plus performance
// (wall time, allocations). Costs are deterministic for a fixed corpus
// — corpus solvers run untimed with one worker — so any cost change
// between two reports of the same corpus is a genuine search-quality
// change, not noise.
type CaseResult struct {
	Name        string  `json:"name"`
	Size        string  `json:"size"`
	Shape       string  `json:"shape"`
	Engine      string  `json:"engine"`
	Procs       int     `json:"procs"`
	Nodes       int     `json:"nodes"`
	K           int     `json:"k"`
	Iterations  int     `json:"iterations"`
	WallMS      float64 `json:"wall_ms"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	MakespanUS  int64   `json:"makespan_us"`
	TardinessUS int64   `json:"tardiness_us"`
	Schedulable bool    `json:"schedulable"`

	// Evaluator hot-path deltas, bracketed around this case's solve: how
	// many scheduling passes the search paid for, how often the move memo
	// cache answered instead, and how the evaluation scratch arenas were
	// recycled. Deterministic for a fixed corpus (single-worker solves),
	// so a pass-count increase between reports is a genuine search-cost
	// change. Zero-valued in reports written before these fields existed.
	SchedulingPasses int64   `json:"scheduling_passes"`
	EvalCacheHits    int64   `json:"eval_cache_hits"`
	EvalCacheMisses  int64   `json:"eval_cache_misses"`
	EvalCacheHitRate float64 `json:"eval_cache_hit_rate"`
	ScratchAllocs    int64   `json:"scratch_allocs"`
	ScratchReuses    int64   `json:"scratch_reuses"`
}

// Summary aggregates a report corpus-wide.
type Summary struct {
	Cases        int     `json:"cases"`
	TotalWallMS  float64 `json:"total_wall_ms"`
	MedianWallMS float64 `json:"median_wall_ms"`
	P95WallMS    float64 `json:"p95_wall_ms"`
	TotalAllocs  uint64  `json:"total_allocs"`
}

// Report is the machine-readable result of one corpus run — the
// BENCH_<rev>.json files the CI regression gate compares.
type Report struct {
	Rev       string       `json:"rev"`
	Seed      int64        `json:"seed"`
	Short     bool         `json:"short"`
	GoVersion string       `json:"go_version"`
	Cases     []CaseResult `json:"cases"`
	Summary   Summary      `json:"summary"`
}

// ComputeSummary (re)derives the corpus-wide aggregates from the cases.
func (r *Report) ComputeSummary() {
	s := Summary{Cases: len(r.Cases)}
	walls := make([]float64, 0, len(r.Cases))
	for _, c := range r.Cases {
		s.TotalWallMS += c.WallMS
		s.TotalAllocs += c.AllocsPerOp
		walls = append(walls, c.WallMS)
	}
	sort.Float64s(walls)
	s.MedianWallMS = quantileNearestRank(walls, 0.50)
	s.P95WallMS = quantileNearestRank(walls, 0.95)
	r.Summary = s
}

// quantileNearestRank is the ceiling nearest-rank quantile of a sorted
// sample (0 when empty) — the same estimator the service metrics use,
// honest on small samples.
func quantileNearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteReport serializes a report as indented JSON. The rendering is
// deterministic (fixed field order, trailing newline), so equal reports
// are byte-identical — which is what lets tests and CI diff them.
func WriteReport(w io.Writer, r *Report) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadReport parses a report written by WriteReport.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	return &r, nil
}

// Regression is one comparison finding: metric of a case (or the
// corpus summary) that worsened beyond the threshold.
type Regression struct {
	Case   string  `json:"case"` // "summary" for corpus-level findings
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// DeltaPct is the relative worsening in percent (new vs old).
	DeltaPct float64 `json:"delta_pct"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.2f -> %.2f (+%.1f%%)", r.Case, r.Metric, r.Old, r.New, r.DeltaPct)
}

// Noise floors of the measured metrics: a relative threshold alone
// over-triggers on very fast cases (10% of a 3 ms case is scheduler
// jitter; back-to-back identical runs differ by a couple of runtime
// background allocations), so measured regressions must also clear an
// absolute delta. The deterministic quality metrics (makespan,
// tardiness, schedulability) have no floor — equal inputs reproduce
// them exactly.
const (
	wallNoiseFloorMS = 2.0
	allocNoiseFloor  = 64
)

// Compare diffs two reports of the same corpus and returns the
// regressions in new relative to old. threshold is the relative
// worsening tolerated (0.10 = 10%): it absorbs machine variance on the
// timing and allocation metrics (which must also exceed their absolute
// noise floors), and guards the deterministic quality metrics
// (makespan, tardiness), where any increase is real but small drifts
// may be acceptable trade-offs. A design going from schedulable to
// unschedulable is always a regression. Cases present in only one
// report are skipped — corpora evolve — as is the summary when the
// case sets differ.
func Compare(old, new *Report, threshold float64) []Regression {
	var out []Regression
	oldCases := make(map[string]CaseResult, len(old.Cases))
	for _, c := range old.Cases {
		oldCases[c.Name] = c
	}
	worse := func(name, metric string, o, n, floor float64) {
		if o > 0 && n > o*(1+threshold) && n-o > floor {
			out = append(out, Regression{
				Case: name, Metric: metric, Old: o, New: n,
				DeltaPct: 100 * (n - o) / o,
			})
		}
	}
	matched := 0
	for _, n := range new.Cases {
		o, ok := oldCases[n.Name]
		if !ok {
			continue
		}
		matched++
		worse(n.Name, "wall_ms", o.WallMS, n.WallMS, wallNoiseFloorMS)
		worse(n.Name, "allocs_per_op", float64(o.AllocsPerOp), float64(n.AllocsPerOp), allocNoiseFloor)
		worse(n.Name, "makespan_us", float64(o.MakespanUS), float64(n.MakespanUS), 0)
		worse(n.Name, "tardiness_us", float64(o.TardinessUS), float64(n.TardinessUS), 0)
		worse(n.Name, "scheduling_passes", float64(o.SchedulingPasses), float64(n.SchedulingPasses), 0)
		if o.Schedulable && !n.Schedulable {
			out = append(out, Regression{Case: n.Name, Metric: "schedulable", Old: 1, New: 0, DeltaPct: 100})
		}
	}
	if matched == len(old.Cases) && matched == len(new.Cases) {
		worse("summary", "median_wall_ms", old.Summary.MedianWallMS, new.Summary.MedianWallMS, wallNoiseFloorMS)
		worse("summary", "p95_wall_ms", old.Summary.P95WallMS, new.Summary.P95WallMS, wallNoiseFloorMS)
	}
	return out
}
