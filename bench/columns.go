package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/ftdse"
)

// column is one column of a report table, defined once and consumed by
// every emitter: name is the machine-readable identifier (CSV header,
// JSON key), head the text-table heading (name when empty), value the
// machine rendering (CSV cell; JSON value, emitted raw — unquoted — for
// numbers and booleans) and display the optional human rendering for
// text tables (value when nil). Defining the schema in one place is
// what keeps the CSV, JSON and text reports from diverging.
type column[T any] struct {
	name    string
	head    string
	raw     bool // value is a JSON number/boolean, emit unquoted
	value   func(T) string
	display func(T) string
}

func (c column[T]) heading() string {
	if c.head != "" {
		return c.head
	}
	return c.name
}

func (c column[T]) text(row T) string {
	if c.display != nil {
		return c.display(row)
	}
	return c.value(row)
}

// writeCSV renders the schema as CSV: one header record of column
// names, one record per row.
func writeCSV[T any](w io.Writer, cols []column[T], rows []T) error {
	cw := csv.NewWriter(w)
	rec := make([]string, len(cols))
	for i, c := range cols {
		rec[i] = c.name
	}
	if err := cw.Write(rec); err != nil {
		return err
	}
	for _, r := range rows {
		for i, c := range cols {
			rec[i] = c.value(r)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeJSONTable renders the schema as a JSON array of objects with the
// columns in schema order, terminated by a newline.
func writeJSONTable[T any](w io.Writer, cols []column[T], rows []T) error {
	var b strings.Builder
	b.WriteString("[")
	for i, r := range rows {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  {")
		for j, c := range cols {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Quote(c.name))
			b.WriteString(": ")
			if c.raw {
				b.WriteString(c.value(r))
			} else {
				b.WriteString(strconv.Quote(c.value(r)))
			}
		}
		b.WriteString("}")
	}
	if len(rows) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// formatTable renders the schema as an aligned text table under a
// title: the first column left-aligned, the rest right-aligned, widths
// derived from the content.
func formatTable[T any](title string, cols []column[T], rows []T) string {
	widths := make([]int, len(cols))
	cells := make([][]string, len(rows))
	for i, c := range cols {
		widths[i] = len([]rune(c.heading()))
	}
	for ri, r := range rows {
		cells[ri] = make([]string, len(cols))
		for i, c := range cols {
			cells[ri][i] = c.text(r)
			if n := len([]rune(cells[ri][i])); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(get func(i int) string) {
		for i := range cols {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], get(i))
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], get(i))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(func(i int) string { return cols[i].heading() })
	for _, row := range cells {
		r := row
		writeRow(func(i int) string { return r[i] })
	}
	return b.String()
}

// overheadColumns is the single source of the overhead-table schema
// (Tables 1a/1b/1c): dimension columns plus the min/avg/max overhead
// statistics.
func overheadColumns() []column[OverheadRow] {
	return []column[OverheadRow]{
		{name: "procs", raw: true, value: func(r OverheadRow) string { return strconv.Itoa(r.Dim.Procs) }},
		{name: "nodes", raw: true, value: func(r OverheadRow) string { return strconv.Itoa(r.Dim.Nodes) }},
		{name: "k", raw: true, value: func(r OverheadRow) string { return strconv.Itoa(r.Dim.K) }},
		{name: "mu_ms", raw: true, value: func(r OverheadRow) string { return fmt.Sprintf("%g", r.Dim.Mu.Milliseconds()) }},
		{name: "overhead_max_pct", head: "%max", raw: true, value: func(r OverheadRow) string { return fmt.Sprintf("%.2f", r.Stat.Max) }},
		{name: "overhead_avg_pct", head: "%avg", raw: true, value: func(r OverheadRow) string { return fmt.Sprintf("%.2f", r.Stat.Avg()) }},
		{name: "overhead_min_pct", head: "%min", raw: true, value: func(r OverheadRow) string { return fmt.Sprintf("%.2f", r.Stat.Min) }},
		{name: "n", raw: true, value: func(r OverheadRow) string { return strconv.Itoa(r.Stat.N) }},
	}
}

// overheadStatColumns is the statistics part of the schema, shared by
// the text tables (which replace the dimension columns with a single
// caller-labelled column).
func overheadStatColumns() []column[OverheadRow] { return overheadColumns()[4:] }

// deviationColumns is the single source of the Figure 10 schema.
func deviationColumns() []column[DeviationRow] {
	dev := func(s ftdse.Strategy) func(DeviationRow) string {
		return func(r DeviationRow) string {
			st := r.Dev[s]
			return fmt.Sprintf("%.2f", st.Avg())
		}
	}
	return []column[DeviationRow]{
		{name: "procs", head: "processes", raw: true, value: func(r DeviationRow) string { return strconv.Itoa(r.Dim.Procs) }},
		{name: "dev_mr_avg_pct", head: "MR", raw: true, value: dev(ftdse.MR)},
		{name: "dev_sfx_avg_pct", head: "SFX", raw: true, value: dev(ftdse.SFX)},
		{name: "dev_mx_avg_pct", head: "MX", raw: true, value: dev(ftdse.MX)},
		{name: "n", raw: true, value: func(r DeviationRow) string { return strconv.Itoa(r.Dev[ftdse.MR].N) }},
	}
}

// ccColumns is the single source of the cruise-controller schema; the
// text table renders schedulability as the paper's MET/MISSED verdict
// and hides the meaningless overhead of the NFT baseline.
func ccColumns() []column[CCRow] {
	return []column[CCRow]{
		{name: "strategy", head: "strat", value: func(r CCRow) string { return r.Strategy.String() }},
		{name: "makespan_ms", head: "δ", raw: true,
			value:   func(r CCRow) string { return fmt.Sprintf("%g", r.Makespan.Milliseconds()) },
			display: func(r CCRow) string { return r.Makespan.String() }},
		{name: "schedulable", head: "deadline", raw: true,
			value: func(r CCRow) string { return strconv.FormatBool(r.Schedulable) },
			display: func(r CCRow) string {
				if r.Schedulable {
					return "MET"
				}
				return "MISSED"
			}},
		{name: "overhead_pct", head: "overhead", raw: true,
			value: func(r CCRow) string { return fmt.Sprintf("%.1f", r.OverheadPct) },
			display: func(r CCRow) string {
				if r.Strategy == ftdse.NFT {
					return "-"
				}
				return fmt.Sprintf("%.1f%%", r.OverheadPct)
			}},
	}
}
