package ftdse

import (
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

// Proc is a lightweight handle to a process of a problem, returned by
// the builder and by Problem.Processes. It is used to reference
// processes in WCET entries, constraints and designs.
type Proc struct {
	ID   ProcID
	Name string
}

func (p Proc) String() string { return p.Name }

// Problem is a complete design-optimization instance: the application,
// the architecture with its WCET table, the fault hypothesis, and the
// designer-imposed constraints (the paper's sets P_X, P_R and P_M).
// Problems are built with a ProblemBuilder, loaded with ReadProblem,
// generated with GenerateProblem, or obtained from CruiseControl.
type Problem struct {
	core core.Problem
}

// Name returns the application name.
func (p Problem) Name() string {
	if p.core.App == nil {
		return ""
	}
	return p.core.App.Name
}

// Processes lists the application's processes in ID order.
func (p Problem) Processes() []Proc {
	if p.core.App == nil {
		return nil
	}
	procs := p.core.App.Processes()
	out := make([]Proc, 0, len(procs))
	for _, pr := range procs {
		out = append(out, Proc{ID: pr.ID, Name: pr.Name})
	}
	return out
}

// NumProcesses returns the number of processes in the application.
func (p Problem) NumProcesses() int {
	if p.core.App == nil {
		return 0
	}
	return p.core.App.NumProcesses()
}

// NumNodes returns the number of computation nodes.
func (p Problem) NumNodes() int {
	if p.core.Arch == nil {
		return 0
	}
	return p.core.Arch.NumNodes()
}

// Faults returns the fault hypothesis.
func (p Problem) Faults() FaultModel { return p.core.Faults }

// Validate checks the problem for consistency.
func (p Problem) Validate() error { return p.core.Validate() }

// Evaluate builds the worst-case schedule of a fixed design — an
// explicit policy assignment for every process — without running any
// optimization. The bus uses the default initial slot configuration.
// Use it to study hand-crafted designs; the Solver constructs designs
// automatically.
func (p Problem) Evaluate(d Design) (*Schedule, error) {
	if err := p.core.Validate(); err != nil {
		return nil, err
	}
	merged, err := p.core.App.Merge()
	if err != nil {
		return nil, err
	}
	return sched.Build(sched.Input{
		Graph:      merged,
		Arch:       p.core.Arch,
		WCET:       p.core.WCET,
		Faults:     p.core.Faults,
		Assignment: d,
		Bus:        ttp.InitialConfig(p.core.Arch, merged.MaxMessageBytes(), ttp.DefaultPerByte),
		Options:    sched.DefaultOptions(),
	})
}
