package ftdse_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBoundaryAnalyzer enforces the facade boundary by running the
// repository's own static analyzer: tools/ftlint's boundary pass checks
// that repro/ftdse/internal/... is imported only by internal packages
// and the facade's non-test sources, that contexts come first and are
// never parked in struct fields, and that no-copy values (including the
// facade Solver) are never copied. This replaces an earlier ad-hoc AST
// walk that covered only the import rule.
//
// The test builds the vettool from ./tools/ftlint (a separate module,
// stdlib-only) and runs `go vet -vettool=... -boundary` over the main
// module, exactly as CI's lint job does.
func TestBoundaryAnalyzer(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a vettool and re-typechecks the module; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "ftlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ftlint")
	build.Dir = "tools/ftlint"
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ftlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "-boundary", "./...")
	vet.Env = os.Environ()
	out, err := vet.CombinedOutput()
	if err != nil {
		t.Fatalf("boundary violations:\n%s", out)
	}
	// go vet prints nothing on success; anything else is a finding that
	// somehow did not set the exit code.
	if s := strings.TrimSpace(string(out)); s != "" {
		t.Fatalf("unexpected vet output:\n%s", s)
	}
}
