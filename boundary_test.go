package ftdse_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoInternalImportsOutsideInternal enforces the facade boundary:
// the command-line tools, the examples, the public bench harness, and
// the module-root sources (the facade itself aside) must consume the
// public ftdse API only — never repro/ftdse/internal/... paths. The
// facade's own non-test sources are the single sanctioned bridge.
func TestNoInternalImportsOutsideInternal(t *testing.T) {
	var files []string
	for _, dir := range []string{"cmd", "examples", "bench"} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
	// Module-root test files (this package) must stay on the facade too.
	rootGo, err := filepath.Glob("*_test.go")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, rootGo...)

	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Errorf("parsing %s: %v", path, err)
			continue
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if strings.Contains(p, "/internal/") {
				t.Errorf("%s imports %s: only the ftdse facade may import internal packages", path, p)
			}
		}
	}
	if len(files) < 10 {
		t.Fatalf("boundary check only saw %d files; the walk is broken", len(files))
	}
}
