package ftdse

import (
	"context"
	"time"

	"repro/ftdse/internal/core"
)

// Solver runs the paper's optimization strategy (initial mapping →
// greedy improvement → tabu search, Figure 6) over a Problem. A Solver
// is configured once with functional options and is immutable
// afterwards: Solve never mutates the solver, every call works on a
// private copy of the configuration, so one Solver is safe for any
// number of concurrent Solve calls from multiple goroutines. Derive
// per-call variants (for example a per-job progress observer) with
// With. The zero configuration (NewSolver with no options) runs MXR
// with the paper's defaults.
type Solver struct {
	opts core.Options
}

// Option configures a Solver.
type Option func(*Solver)

// NewSolver returns a solver with the paper's default configuration
// for MXR, adjusted by the given options.
func NewSolver(opts ...Option) *Solver {
	s := &Solver{opts: core.DefaultOptions(core.MXR)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// With returns a copy of the solver with the given options applied on
// top of the receiver's configuration; the receiver is unchanged. It is
// the concurrency-friendly way to derive per-call configuration — e.g.
// a per-job WithProgress observer — from a shared base solver.
func (s *Solver) With(opts ...Option) *Solver {
	d := &Solver{opts: s.opts}
	for _, o := range opts {
		o(d)
	}
	return d
}

// WithStrategy selects the optimization strategy (default MXR).
func WithStrategy(strat Strategy) Option {
	return func(s *Solver) { s.opts.Strategy = strat }
}

// WithEngine selects the search engine that explores the design space
// after the initial solution; nil (the default) selects DefaultEngine,
// the paper's greedy→tabu pipeline. Built-in engines are available by
// name through ParseEngine; any Engine implementation — including a
// caller-supplied one — composes with every strategy and option.
func WithEngine(e Engine) Option {
	return func(s *Solver) { s.opts.Engine = e }
}

// WithSeed seeds stochastic engines (simulated annealing, and any
// custom engine that reads Options.Seed); 0 (the default) selects the
// fixed seed 1, so runs are deterministic either way. Deterministic
// engines ignore it.
func WithSeed(n int64) Option {
	return func(s *Solver) { s.opts.Seed = n }
}

// WithTimeLimit bounds each Solve call; it is merged into the Solve
// context as a deadline relative to the start of the run. A limit <= 0
// (the default) means no time limit. Timed runs are best-effort anytime
// results; see WithWorkers for the determinism contract.
func WithTimeLimit(d time.Duration) Option {
	return func(s *Solver) { s.opts.TimeLimit = d }
}

// WithMaxIterations bounds the tabu-search iterations; <= 0 selects a
// problem-size-dependent default.
func WithMaxIterations(n int) Option {
	return func(s *Solver) { s.opts.MaxIterations = n }
}

// WithWorkers bounds the concurrent scheduling passes used to evaluate
// candidate moves; 0 (the default) uses all CPUs, 1 evaluates
// sequentially. Uninterrupted runs return bit-identical designs for
// every worker count; only a time limit or cancellation striking
// mid-run makes the outcome speed-dependent.
func WithWorkers(n int) Option {
	return func(s *Solver) { s.opts.Workers = n }
}

// WithBusOptimization toggles the final bus-access optimization step
// (TDMA slot-order hill climbing) after the search.
func WithBusOptimization(on bool) Option {
	return func(s *Solver) { s.opts.OptimizeBusAccess = on }
}

// WithCheckpointing toggles checkpoint-count moves, the reproduction's
// documented extension beyond the paper: re-executed replicas may save
// state at up to WithMaxCheckpoints points (cost χ each, from
// ProblemBuilder.CheckpointCost) so a fault re-executes only the hit
// segment.
func WithCheckpointing(on bool) Option {
	return func(s *Solver) { s.opts.EnableCheckpointing = on }
}

// WithMaxCheckpoints caps the checkpoints per replica considered by
// WithCheckpointing; <= 0 selects 4.
func WithMaxCheckpoints(n int) Option {
	return func(s *Solver) { s.opts.MaxCheckpoints = n }
}

// WithStopWhenSchedulable stops at the first design meeting all
// deadlines (the synthesis goal) instead of minimizing the schedule
// length with the full budget (the evaluation protocol; the default).
func WithStopWhenSchedulable(on bool) Option {
	return func(s *Solver) { s.opts.StopWhenSchedulable = on }
}

// WithSlackSharing toggles the shared re-execution slack of the
// schedule analysis (on by default; disable for ablations).
func WithSlackSharing(on bool) Option {
	return func(s *Solver) { s.opts.SlackSharing = on }
}

// WithTabuTenure sets the number of iterations a moved process stays
// tabu; <= 0 selects a problem-size-dependent default.
func WithTabuTenure(n int) Option {
	return func(s *Solver) { s.opts.TabuTenure = n }
}

// WithProgress registers an observer that is called synchronously from
// the search goroutine for every new incumbent solution, including the
// initial one — the solver's anytime interface. The callback must be
// fast and must not mutate the problem; it never influences the search
// trajectory, so observed runs stay deterministic.
func WithProgress(fn func(Improvement)) Option {
	return func(s *Solver) { s.opts.OnImprovement = fn }
}

// WithWarmStart seeds the search with a previously found design: it is
// evaluated right after the initial solution and adopted as the
// incumbent (and the engines' starting point) when it costs less, so
// the result never costs more than a valid warm start. A design that
// does not fit the problem (unknown processes or nodes, missing
// processes) is skipped silently — the solve degrades to a cold start
// rather than failing. The warm start never influences anything but
// the starting point, so solves stay deterministic given the same
// problem, options and warm-start design. SFX ignores it (its design
// is derived structurally, not searched). An empty or nil design is a
// no-op.
func WithWarmStart(d Design) Option {
	return func(s *Solver) { s.opts.WarmStart = d.Clone() }
}

// Solve runs the optimization strategy on the problem under the given
// context. Solve is read-only on the Solver: the configuration is
// copied into the run, so concurrent Solve calls on one Solver (even on
// the same Problem) are safe and independent.
//
// The context is honored end-to-end: the search polls it before every
// scheduling pass (its unit of work), so cancellation or an expired
// deadline takes effect within one pass. Interruption is not an error —
// once an initial design exists, Solve returns the best design found so
// far with Result.Stopped set to StopCanceled or StopTimeLimit. An
// error is returned only for invalid problems.
//
// With context.Background() and no WithTimeLimit, Solve is bit-for-bit
// deterministic and independent of WithWorkers.
func (s *Solver) Solve(ctx context.Context, p Problem) (*Result, error) {
	res, err := core.OptimizeContext(ctx, p.core, s.opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Strategy:   res.Strategy,
		Engine:     res.Engine,
		Design:     res.Assignment,
		Schedule:   res.Schedule,
		Cost:       res.Cost,
		Iterations: res.Iterations,
		Elapsed:    res.Elapsed,
		Stopped:    res.Stopped,
		Trace:      res.Trace,
	}, nil
}

// Result is the outcome of one Solve run.
type Result struct {
	// Strategy that produced the design.
	Strategy Strategy
	// Engine is the name of the search engine that produced the design
	// ("default" for the paper pipeline).
	Engine string
	// Design is the synthesized mapping and fault-tolerance policy
	// assignment — the best found within the budget.
	Design Design
	// Schedule is the design's implementation: static schedule tables,
	// bus MEDL, and the worst-case analysis.
	Schedule *Schedule
	// Cost is the design's cost (tardiness, then schedule length).
	Cost Cost
	// Iterations is the number of improvement-loop iterations run.
	Iterations int
	// Elapsed is the wall-clock optimization time.
	Elapsed time.Duration
	// Stopped records why the run ended (completed, time limit, or
	// canceled).
	Stopped StopCause
	// Trace is the flight-recorder capture of the run; nil unless
	// WithFlightRecorder enabled it.
	Trace *Trace
}

// Schedulable reports whether the synthesized design meets all
// deadlines in the worst case.
func (r *Result) Schedulable() bool { return r.Cost.Schedulable() }
