package ftdse_test

import (
	"bytes"
	"testing"

	"repro/ftdse"
)

// TestWriteProblemCanonical pins the canonical-encoding guarantee that
// the service's result cache relies on: WriteProblem → ReadProblem →
// WriteProblem is byte-identical, so the serialized document is a
// stable fingerprint key for a problem no matter how many round trips
// it has been through.
func TestWriteProblemCanonical(t *testing.T) {
	problems := map[string]ftdse.Problem{
		"generated": ftdse.GenerateProblem(
			ftdse.GenSpec{Procs: 12, Nodes: 3, Seed: 42},
			ftdse.FaultModel{K: 2, Mu: ftdse.Ms(5)}),
		"cruise-control": ftdse.CruiseControl(),
	}
	// A built problem exercising every constraint section (P_M, P_X,
	// P_R), whose map-backed encodings must serialize in a stable order.
	b := ftdse.NewProblem("constrained").Nodes(3)
	g := b.Graph("G", ftdse.Ms(1000), ftdse.Ms(500))
	p1 := g.Process("P1", ftdse.Ms(10), ftdse.Ms(11), ftdse.Ms(12))
	p2 := g.Process("P2", ftdse.Ms(20), ftdse.Ms(21), ftdse.Ms(22))
	p3 := g.Process("P3", ftdse.Ms(30), ftdse.Ms(31), ftdse.Ms(32))
	g.Edge(p1, p2, 4).Edge(p2, p3, 4)
	built, err := b.Faults(1, ftdse.Ms(5)).
		Pin(p1, 2).
		ForceReexecution(p2).
		ForceReplication(p3).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	problems["constrained"] = built

	for name, prob := range problems {
		var first bytes.Buffer
		if err := ftdse.WriteProblem(&first, prob); err != nil {
			t.Fatalf("%s: WriteProblem: %v", name, err)
		}
		back, err := ftdse.ReadProblem(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadProblem: %v", name, err)
		}
		var second bytes.Buffer
		if err := ftdse.WriteProblem(&second, back); err != nil {
			t.Fatalf("%s: re-WriteProblem: %v", name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: encoding is not canonical: round trip changed the bytes\nfirst:\n%s\nsecond:\n%s",
				name, first.String(), second.String())
		}
		// And a second round trip stays fixed too (the encoding is a
		// fixed point, not merely a 2-cycle).
		back2, err := ftdse.ReadProblem(bytes.NewReader(second.Bytes()))
		if err != nil {
			t.Fatalf("%s: second ReadProblem: %v", name, err)
		}
		var third bytes.Buffer
		if err := ftdse.WriteProblem(&third, back2); err != nil {
			t.Fatalf("%s: third WriteProblem: %v", name, err)
		}
		if !bytes.Equal(second.Bytes(), third.Bytes()) {
			t.Errorf("%s: second round trip changed the bytes", name)
		}
	}
}
