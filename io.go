package ftdse

import (
	"io"

	"repro/ftdse/internal/dot"
	"repro/ftdse/internal/sysio"
)

// ReadProblem parses a problem from its JSON document: application
// graphs, architecture, WCET table, fault hypothesis and designer
// constraints. The format is written by WriteProblem and by the ftgen
// tool.
func ReadProblem(r io.Reader) (Problem, error) {
	p, err := sysio.ReadProblem(r)
	if err != nil {
		return Problem{}, err
	}
	return Problem{core: p}, nil
}

// WriteProblem serializes a problem as a human-editable JSON document.
// Process names must be unique across the application (they key the
// WCET table).
func WriteProblem(w io.Writer, p Problem) error {
	return sysio.WriteProblem(w, p.core)
}

// WriteSchedule serializes a built schedule — the per-node schedule
// tables, the bus MEDL and the worst-case analysis — as JSON.
func WriteSchedule(w io.Writer, s *Schedule) error {
	return sysio.WriteSchedule(w, s)
}

// ScheduleDoc is the parsed form of the schedule export: the document
// WriteSchedule produces, field by field. ReadSchedule returns one;
// WriteScheduleDoc re-serializes it to the identical canonical bytes.
type ScheduleDoc = sysio.ScheduleDoc

// ScheduleFault is the fault hypothesis recorded in a schedule export.
type ScheduleFault = sysio.ScheduleFault

// NodeTable is the static schedule table of one node in a schedule
// export.
type NodeTable = sysio.NodeTable

// TableEntry is one activation in a node's exported schedule table.
type TableEntry = sysio.TableEntry

// MEDLEntry is one message occurrence of the exported bus MEDL.
type MEDLEntry = sysio.MEDLEntry

// ReadSchedule parses a schedule export written by WriteSchedule. The
// parse is strict — unknown fields, trailing content and structurally
// invalid documents are rejected — so an accepted document round-trips
// bit-identically through WriteScheduleDoc.
func ReadSchedule(r io.Reader) (ScheduleDoc, error) {
	return sysio.ReadSchedule(r)
}

// WriteScheduleDoc serializes a schedule document in the canonical
// export form.
func WriteScheduleDoc(w io.Writer, d ScheduleDoc) error {
	return sysio.WriteScheduleDoc(w, d)
}

// WriteDesignDOT renders a synthesized design (mapping, policies and
// messages) as a Graphviz DOT document.
func WriteDesignDOT(w io.Writer, s *Schedule) error {
	return dot.WriteDesign(w, s)
}
