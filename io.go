package ftdse

import (
	"io"

	"repro/ftdse/internal/dot"
	"repro/ftdse/internal/sysio"
)

// ReadProblem parses a problem from its JSON document: application
// graphs, architecture, WCET table, fault hypothesis and designer
// constraints. The format is written by WriteProblem and by the ftgen
// tool.
func ReadProblem(r io.Reader) (Problem, error) {
	p, err := sysio.ReadProblem(r)
	if err != nil {
		return Problem{}, err
	}
	return Problem{core: p}, nil
}

// WriteProblem serializes a problem as a human-editable JSON document.
// Process names must be unique across the application (they key the
// WCET table).
func WriteProblem(w io.Writer, p Problem) error {
	return sysio.WriteProblem(w, p.core)
}

// WriteSchedule serializes a built schedule — the per-node schedule
// tables, the bus MEDL and the worst-case analysis — as JSON.
func WriteSchedule(w io.Writer, s *Schedule) error {
	return sysio.WriteSchedule(w, s)
}

// WriteDesignDOT renders a synthesized design (mapping, policies and
// messages) as a Graphviz DOT document.
func WriteDesignDOT(w io.Writer, s *Schedule) error {
	return dot.WriteDesign(w, s)
}
