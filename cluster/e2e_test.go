package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/ftdse/cluster"
	"repro/ftdse/service"
)

// The e2e crash/resume test runs real ftdsed processes and kills one
// with SIGKILL — no drain, no goodbye — mid-solve. It is the strongest
// form of the failover contract: the in-test integration suite can only
// sever HTTP; a killed process also takes the solve itself down, so the
// surviving node genuinely resumes from the last pushed checkpoint.

// freePort reserves a listen address and frees it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// buildFtdsed compiles the solver daemon once per test run.
func buildFtdsed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ftdsed")
	cmd := exec.Command("go", "build", "-o", bin, "repro/ftdse/cmd/ftdsed")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ftdsed: %v\n%s", err, out)
	}
	return bin
}

// startFtdsed launches one solver daemon process and waits for it to
// answer its liveness probe.
func startFtdsed(t *testing.T, bin, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-pool", "1")
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting ftdsed: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("ftdsed on %s never became healthy: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestE2ESIGKILLFailoverResumesFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("process-spawning e2e test")
	}
	bin := buildFtdsed(t)
	addrs := []string{freePort(t), freePort(t)}
	procs := make([]*exec.Cmd, 2)
	for i, addr := range addrs {
		procs[i] = startFtdsed(t, bin, addr)
	}

	cfg := cluster.Config{
		Nodes: []cluster.Node{
			{Name: "n1", URL: "http://" + addrs[0]},
			{Name: "n2", URL: "http://" + addrs[1]},
		},
		Journal:            filepath.Join(t.TempDir(), "jobs.wal"),
		CheckpointInterval: 25 * time.Millisecond,
		HealthInterval:     50 * time.Millisecond,
		PollInterval:       20 * time.Millisecond,
		FailAfter:          2,
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	if err := coord.Start(srv.URL); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		coord.Close(ctx)
		srv.Close()
	})

	// A slow-but-bounded solve: huge iteration budget, 4s time limit.
	// The limit restarts on the survivor, bounding the test either way.
	body := submitBody(t, genProblem(14, 42),
		service.SolveOptions{MaxIterations: 1_000_000, Workers: 1, TimeLimitMs: 4000})
	st := postSolve(t, srv.URL, body, http.StatusAccepted)

	// Wait for a checkpoint to land, then SIGKILL the owning process.
	deadline := time.Now().Add(15 * time.Second)
	for coord.LatestCheckpoint(st.Fingerprint) == nil {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint arrived")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ckT, ckM := ckCost(t, coord.LatestCheckpoint(st.Fingerprint))
	var owner string
	for _, sh := range shards(t, srv.URL) {
		if sh.OpenJobs > 0 {
			owner = sh.Node
		}
	}
	if owner == "" {
		t.Fatal("no shard owns the open job")
	}
	var victim *exec.Cmd
	for i, name := range []string{"n1", "n2"} {
		if name == owner {
			victim = procs[i]
		}
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatalf("SIGKILL: %v", err)
	}
	victim.Wait()

	final := waitState(t, srv.URL, st.ID, 30*time.Second, func(s service.JobStatus) bool {
		return service.TerminalState(s.State)
	})
	if final.State != service.StateDone {
		t.Fatalf("job after SIGKILL = %+v", final)
	}
	var res service.JobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.TardinessMs > ckT || (res.TardinessMs == ckT && res.MakespanMs > ckM) {
		t.Fatalf("final cost (%v, %v) regressed past the checkpointed incumbent (%v, %v)",
			res.TardinessMs, res.MakespanMs, ckT, ckM)
	}
	if got := metric(t, srv.URL, "ftcluster_redispatches_total"); got < 1 {
		t.Fatalf("redispatches = %v, want >= 1", got)
	}
	if got := metric(t, srv.URL, "ftcluster_warm_dispatches_total"); got < 1 {
		t.Fatalf("warm_dispatches = %v, want >= 1", got)
	}

	// An identical resubmission after the failover is answered by the
	// surviving shard's result cache: same bytes, no re-solve.
	before := metric(t, srv.URL, "ftcluster_node_cache_hits_total")
	dup := postSolve(t, srv.URL, body, http.StatusOK, "wait")
	if dup.State != service.StateDone {
		t.Fatalf("post-failover duplicate = %+v", dup)
	}
	if !bytes.Equal(dup.Result, final.Result) {
		t.Fatal("post-failover duplicate returned a different result document")
	}
	if got := metric(t, srv.URL, "ftcluster_node_cache_hits_total"); got != before+1 {
		t.Fatalf("node_cache_hits went %v -> %v, want a cache hit on the surviving shard", before, got)
	}
}
