package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/ftdse"
	"repro/ftdse/cluster"
	"repro/ftdse/obs"
	"repro/ftdse/service"
)

// testNode is one in-process solver node behind an httptest server.
type testNode struct {
	svc *service.Service
	srv *httptest.Server
}

// kill severs the node's HTTP surface abruptly — from the coordinator's
// point of view the node is dead (transport errors), even though the
// in-process solve goroutines wind down in the background.
func (n *testNode) kill() {
	n.srv.CloseClientConnections()
	n.srv.Close()
}

// startNodes brings up n solver nodes.
func startNodes(t *testing.T, n int, cfg service.Config) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		svc := service.New(cfg)
		srv := httptest.NewServer(svc.Handler())
		nodes[i] = &testNode{svc: svc, srv: srv}
		t.Cleanup(func() {
			srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			svc.Close(ctx)
		})
	}
	return nodes
}

// fastCfg makes the coordinator's loops test-speed.
func fastCfg(nodes []*testNode) cluster.Config {
	cfg := cluster.Config{
		CheckpointInterval: 25 * time.Millisecond,
		HealthInterval:     50 * time.Millisecond,
		PollInterval:       20 * time.Millisecond,
		FailAfter:          2,
	}
	for i, n := range nodes {
		cfg.Nodes = append(cfg.Nodes, cluster.Node{Name: fmt.Sprintf("n%d", i+1), URL: n.srv.URL})
	}
	return cfg
}

// startCoordinator brings up a coordinator over the nodes.
func startCoordinator(t *testing.T, cfg cluster.Config) (*cluster.Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	if err := coord.Start(srv.URL); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		coord.Close(ctx)
		srv.Close()
	})
	return coord, srv
}

func genProblem(procs int, seed int64) ftdse.Problem {
	return ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: procs, Nodes: 2, Seed: seed},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
}

func submitBody(t *testing.T, p ftdse.Problem, opts service.SolveOptions) []byte {
	t.Helper()
	var doc bytes.Buffer
	if err := ftdse.WriteProblem(&doc, p); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	body, err := json.Marshal(service.SubmitRequest{Problem: doc.Bytes(), Options: opts})
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	return body
}

func postSolve(t *testing.T, url string, body []byte, wantCode int, wait ...string) service.JobStatus {
	t.Helper()
	path := "/solve"
	if len(wait) > 0 {
		path = "/solve?wait=1"
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, wantCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func getJob(t *testing.T, url, id string) service.JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func waitState(t *testing.T, url, id string, timeout time.Duration, ok func(service.JobStatus) bool) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getJob(t, url, id)
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%d improvements)", id, st.State, st.Improvements)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metric reads one sample from the coordinator's Prometheus text
// exposition at GET /metrics, validating the format on every scrape.
func metric(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("GET /metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	m, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	f, ok := m[name]
	if !ok {
		t.Fatalf("metric %q absent from /metrics", name)
	}
	return f
}

func shards(t *testing.T, url string) []cluster.ShardStat {
	t.Helper()
	resp, err := http.Get(url + "/cluster/shards")
	if err != nil {
		t.Fatalf("GET /cluster/shards: %v", err)
	}
	defer resp.Body.Close()
	var sr cluster.ShardsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding shards: %v", err)
	}
	return sr.Nodes
}

// slowBody keeps a solve running until canceled or killed: a huge
// iteration budget, one worker.
func slowBody(t *testing.T, seed int64) []byte {
	return submitBody(t, genProblem(14, seed),
		service.SolveOptions{MaxIterations: 1_000_000, Workers: 1})
}

func TestClusterSolveAndNodeCacheAffinity(t *testing.T) {
	nodes := startNodes(t, 2, service.Config{})
	_, srv := startCoordinator(t, fastCfg(nodes))

	body := submitBody(t, genProblem(6, 1), service.SolveOptions{})
	st := postSolve(t, srv.URL, body, http.StatusOK, "wait")
	if st.State != service.StateDone || len(st.Result) == 0 {
		t.Fatalf("first solve = %+v", st)
	}
	// An identical resubmission is a new coordinator job, but the owning
	// node answers it from its result cache without re-solving.
	st2 := postSolve(t, srv.URL, body, http.StatusOK, "wait")
	if st2.State != service.StateDone {
		t.Fatalf("resubmission = %+v", st2)
	}
	if st2.ID == st.ID {
		t.Fatalf("terminal job reused for a fresh submission")
	}
	if !bytes.Equal(st.Result, st2.Result) {
		t.Fatalf("cache hit returned a different result document")
	}
	if got := metric(t, srv.URL, "ftcluster_node_cache_hits_total"); got < 1 {
		t.Fatalf("node_cache_hits = %v, want >= 1 (affinity should route to the same shard)", got)
	}
}

func TestClusterCoalescesDuplicateSubmissions(t *testing.T) {
	nodes := startNodes(t, 2, service.Config{})
	_, srv := startCoordinator(t, fastCfg(nodes))

	body := slowBody(t, 2)
	st1 := postSolve(t, srv.URL, body, http.StatusAccepted)
	st2 := postSolve(t, srv.URL, body, http.StatusAccepted)
	if st1.ID != st2.ID {
		t.Fatalf("duplicate submissions got distinct jobs %s / %s", st1.ID, st2.ID)
	}
	if got := metric(t, srv.URL, "ftcluster_jobs_coalesced_total"); got != 1 {
		t.Fatalf("jobs_coalesced = %v, want 1", got)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st1.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	waitState(t, srv.URL, st1.ID, 15*time.Second, func(st service.JobStatus) bool {
		return service.TerminalState(st.State)
	})
}

func TestClusterValidationAndAdmission(t *testing.T) {
	nodes := startNodes(t, 1, service.Config{})
	cfg := fastCfg(nodes)
	cfg.MaxPending = 1
	_, srv := startCoordinator(t, cfg)

	// Garbage problems never reach the journal or a node.
	resp, err := http.Post(srv.URL+"/solve", "application/json",
		bytes.NewReader([]byte(`{"problem":{"nonsense":true}}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed problem = %d, want 400", resp.StatusCode)
	}

	st := postSolve(t, srv.URL, slowBody(t, 3), http.StatusAccepted)
	// The admission cap is full: a second distinct problem bounces with a
	// retry hint, while a duplicate of the open job still coalesces.
	resp, err = http.Post(srv.URL+"/solve", "application/json",
		bytes.NewReader(slowBody(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	dup := postSolve(t, srv.URL, slowBody(t, 3), http.StatusAccepted)
	if dup.ID != st.ID {
		t.Fatalf("duplicate rejected by the admission cap instead of coalescing")
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// ckCost extracts the (tardiness, makespan) incumbent cost of a stored
// checkpoint document.
func ckCost(t *testing.T, doc json.RawMessage) (float64, float64) {
	t.Helper()
	ck, err := ftdse.ReadCheckpoint(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("stored checkpoint does not parse: %v", err)
	}
	return ck.TardinessMs, ck.MakespanMs
}

// TestClusterFailoverResumesFromCheckpoint is the heart of the
// subsystem: kill the node that owns an in-flight solve and the job
// must finish on the survivor, warm-started from the last pushed
// checkpoint, with a final cost no worse than the checkpointed
// incumbent.
func TestClusterFailoverResumesFromCheckpoint(t *testing.T) {
	nodes := startNodes(t, 2, service.Config{})
	coord, srv := startCoordinator(t, fastCfg(nodes))

	// A bounded-but-slow solve: the time limit restarts on the surviving
	// node, so the job finishes a few seconds after failover at worst.
	body := submitBody(t, genProblem(14, 5),
		service.SolveOptions{MaxIterations: 1_000_000, Workers: 1, TimeLimitMs: 4000})
	st := postSolve(t, srv.URL, body, http.StatusAccepted)

	// Wait for the first checkpoint to land, then find the owning shard.
	deadline := time.Now().Add(15 * time.Second)
	for coord.LatestCheckpoint(st.Fingerprint) == nil {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint arrived")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ckT, ckM := ckCost(t, coord.LatestCheckpoint(st.Fingerprint))
	var owner string
	for _, sh := range shards(t, srv.URL) {
		if sh.OpenJobs > 0 {
			owner = sh.Node
		}
	}
	if owner == "" {
		t.Fatal("no shard owns the open job")
	}
	for i, n := range nodes {
		if fmt.Sprintf("n%d", i+1) == owner {
			n.kill()
		}
	}

	final := waitState(t, srv.URL, st.ID, 30*time.Second, func(st service.JobStatus) bool {
		return service.TerminalState(st.State)
	})
	if final.State != service.StateDone {
		t.Fatalf("job after failover = %+v", final)
	}
	var res service.JobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	// The warm start makes regression impossible: the resumed search
	// adopts the checkpointed incumbent before improving on it.
	if res.TardinessMs > ckT || (res.TardinessMs == ckT && res.MakespanMs > ckM) {
		t.Fatalf("final cost (%v, %v) regressed past checkpoint (%v, %v)",
			res.TardinessMs, res.MakespanMs, ckT, ckM)
	}
	if got := metric(t, srv.URL, "ftcluster_redispatches_total"); got < 1 {
		t.Fatalf("redispatches = %v, want >= 1", got)
	}
	if got := metric(t, srv.URL, "ftcluster_warm_dispatches_total"); got < 1 {
		t.Fatalf("warm_dispatches = %v, want >= 1", got)
	}
	// A duplicate arriving after the failover still coalesces onto the
	// finished job's fingerprint via the node result cache (new job, same
	// bytes back).
	dup := postSolve(t, srv.URL, body, http.StatusOK, "wait")
	if dup.State != service.StateDone {
		t.Fatalf("post-failover duplicate = %+v", dup)
	}
}

// TestClusterJournalSurvivesCoordinatorRestart pins durability: jobs
// acknowledged by one coordinator incarnation are adopted and finished
// by the next.
func TestClusterJournalSurvivesCoordinatorRestart(t *testing.T) {
	nodes := startNodes(t, 1, service.Config{})
	cfg := fastCfg(nodes)
	cfg.Journal = filepath.Join(t.TempDir(), "jobs.wal")

	coordA, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(coordA.Handler())
	if err := coordA.Start(srvA.URL); err != nil {
		t.Fatal(err)
	}

	// One finished job and one still in flight when the coordinator dies.
	doneSt := postSolve(t, srvA.URL, submitBody(t, genProblem(6, 11), service.SolveOptions{}),
		http.StatusOK, "wait")
	openSt := postSolve(t, srvA.URL, slowBody(t, 12), http.StatusAccepted)
	waitState(t, srvA.URL, openSt.ID, 15*time.Second, func(st service.JobStatus) bool {
		return st.State == service.StateRunning
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	coordA.Close(ctx)
	cancel()
	srvA.Close()

	coordB, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(coordB.Handler())
	if err := coordB.Start(srvB.URL); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		coordB.Close(ctx)
		srvB.Close()
	})

	// The finished job still answers, result and all, from the journal.
	if st := getJob(t, srvB.URL, doneSt.ID); st.State != service.StateDone || len(st.Result) == 0 {
		t.Fatalf("replayed terminal job = %+v", st)
	}
	// The open job was re-adopted (same ID) and is dispatchable: cancel
	// it through the new coordinator and it concludes.
	if st := getJob(t, srvB.URL, openSt.ID); service.TerminalState(st.State) {
		t.Fatalf("replayed open job already terminal: %+v", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, srvB.URL+"/jobs/"+openSt.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitState(t, srvB.URL, openSt.ID, 15*time.Second, func(st service.JobStatus) bool {
		return service.TerminalState(st.State)
	})
}

func TestClusterEventsProxyStaysMonotone(t *testing.T) {
	nodes := startNodes(t, 2, service.Config{})
	_, srv := startCoordinator(t, fastCfg(nodes))

	st := postSolve(t, srv.URL, slowBody(t, 21), http.StatusAccepted)
	waitState(t, srv.URL, st.ID, 15*time.Second, func(s service.JobStatus) bool {
		return s.Improvements >= 2
	})

	type ev = service.ProgressEvent
	events := make(chan ev, 256)
	streamDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
		if err != nil {
			streamDone <- err
			return
		}
		defer resp.Body.Close()
		var event string
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event:"):
				event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
			case strings.HasPrefix(line, "data:"):
				data := strings.TrimSpace(strings.TrimPrefix(line, "data:"))
				if event == "done" {
					streamDone <- nil
					return
				}
				var e ev
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					streamDone <- err
					return
				}
				events <- e
			}
		}
		streamDone <- sc.Err()
	}()

	// Give the stream a moment to replay, then cancel the job so the
	// stream terminates.
	time.Sleep(300 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("stream never terminated after cancel")
	}
	close(events)
	var got []ev
	for e := range events {
		got = append(got, e)
	}
	if len(got) == 0 {
		t.Fatal("proxy delivered no improvement events")
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.TardinessMs > a.TardinessMs ||
			(b.TardinessMs == a.TardinessMs && b.MakespanMs >= a.MakespanMs) {
			t.Fatalf("event %d (%v, %v) does not improve on (%v, %v)",
				i, b.TardinessMs, b.MakespanMs, a.TardinessMs, a.MakespanMs)
		}
	}
}
