package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// The job journal is the coordinator's write-ahead log: one JSON record
// per line, appended and fsynced before the action it describes is
// acknowledged. Replaying the journal after a restart reconstructs the
// open jobs (submitted but not yet terminal) and the freshest
// checkpoint per fingerprint, so no acknowledged job is ever lost and a
// resumed solve starts from its last incumbent. A truncated final line
// — the tell-tale of dying mid-append — is tolerated and dropped; its
// action was never acknowledged.

// Journal record types.
//
//ftdse:wire journal-records
const (
	recSubmit     = "submit"     // a job was admitted
	recDone       = "done"       // a job reached a terminal state
	recCheckpoint = "checkpoint" // a node pushed a search checkpoint
)

// journalRecord is one WAL line.
//
//ftdse:wire
type journalRecord struct {
	Type string `json:"type"`
	// ID is the coordinator-side job id (submit, done).
	ID string `json:"id,omitempty"`
	// Fingerprint keys checkpoints and lets replay coalesce.
	Fingerprint string `json:"fingerprint,omitempty"`
	// TraceID carries the job's request identity on done records, so one
	// solve is greppable end to end in the journal (submit records carry
	// it inside Request as trace_id).
	TraceID string `json:"trace_id,omitempty"`
	// Request is the full SubmitRequest document of a submit record —
	// everything needed to redispatch the job after a restart.
	Request json.RawMessage `json:"request,omitempty"`
	// State is the terminal state of a done record.
	State string `json:"state,omitempty"`
	// Result is the terminal result document of a done record, kept so
	// a restarted coordinator still answers GET /jobs/{id}.
	Result json.RawMessage `json:"result,omitempty"`
	// Checkpoint is the checkpoint document of a checkpoint record.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// journal is an append-only JSONL file, fsynced per record.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal replays path (which need not exist yet) and opens it for
// appending. The returned records are every complete line, in order.
func openJournal(path string) (*journal, []journalRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: opening journal: %w", err)
	}
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	valid := int64(0)
	for sc.Scan() {
		line := sc.Bytes()
		var r journalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			// A malformed line can only be the torn tail of a crashed
			// append: everything after it was never acknowledged either,
			// so replay stops here and the append position rewinds over
			// it.
			break
		}
		recs = append(recs, r)
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: replaying journal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: seeking journal: %w", err)
	}
	return &journal{f: f}, recs, nil
}

// append writes one record and fsyncs before returning: when append
// returns nil the record survives a crash of this process.
func (j *journal) append(r journalRecord) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("cluster: encoding journal record: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(data) + 1)
	buf.Write(data)
	buf.WriteByte('\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("cluster: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
