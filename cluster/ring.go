// Package cluster is the sharded coordinator tier on top of ftdsed: a
// stdlib-only coordinator (cmd/ftclusterd) that consistent-hashes job
// fingerprints across solver nodes for cache affinity, health-checks
// the nodes, re-maps shards when one dies, steals work from hot shards,
// journals every job to a write-ahead log, and ingests periodic search
// checkpoints so an in-flight solve killed with its node resumes on a
// survivor from the last incumbent instead of restarting. DESIGN.md §13
// documents the architecture.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes. Placement depends
// only on the member names and the vnode count, never on insertion
// order, so every coordinator (and every restart) computes the same
// shard map. A job key's owner is the first member clockwise of the
// key's hash; failover order is the continued clockwise walk, which is
// what makes re-mapping automatic — when the owner is dead, the next
// member in Order takes the shard, and only keys owned by the dead
// member move.
type ring struct {
	vnodes  []vnode
	members []string // distinct, sorted
}

type vnode struct {
	hash uint64
	name string
}

// defaultVNodes balances shard evenness against lookup cost; at 128
// vnodes per member the heaviest member of a small cluster stays within
// a few percent of fair share.
const defaultVNodes = 128

// newRing builds a ring of the given members (duplicates are an error;
// order is immaterial).
func newRing(members []string, vnodesPer int) (*ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodesPer <= 0 {
		vnodesPer = defaultVNodes
	}
	r := &ring{}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		r.members = append(r.members, m)
		for i := 0; i < vnodesPer; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", m, i)), name: m})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// Hash ties (vanishingly rare) break by name so placement stays
		// insertion-order independent.
		return r.vnodes[i].name < r.vnodes[j].name
	})
	return r, nil
}

// hash64 is FNV-1a finished with a splitmix64 mix. FNV alone disperses
// short, similar strings ("n1#0", "n1#1", …) poorly, which skews the
// shard shares; the finalizer fixes that. Both steps are fixed
// arithmetic — stable across processes and Go versions, which the shard
// map needs (a restarted coordinator must re-derive the same placement
// that journal records were written under).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// owner returns the member owning key ("" on an empty ring).
func (r *ring) owner(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	return r.vnodes[r.at(key)].name
}

// at returns the index of the first vnode clockwise of key's hash.
func (r *ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// order returns every member in the ring's failover order for key: the
// owner first, then each further member in clockwise order. Dispatch
// walks this list skipping dead nodes, which is exactly the automatic
// re-mapping contract — keys of a dead member land on its clockwise
// successor, everything else stays put.
func (r *ring) order(key string) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i, start := 0, r.at(key); i < len(r.vnodes) && len(out) < len(r.members); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.name] {
			seen[v.name] = true
			out = append(out, v.name)
		}
	}
	return out
}
