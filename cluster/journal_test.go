package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []journalRecord{
		{Type: recSubmit, ID: "c000001", Fingerprint: "fp1", Request: json.RawMessage(`{"problem":{}}`)},
		{Type: recCheckpoint, Fingerprint: "fp1", Checkpoint: json.RawMessage(`{"version":1}`)},
		{Type: recDone, ID: "c000001", Fingerprint: "fp1", State: "done", Result: json.RawMessage(`{"ok":true}`)},
	}
	for _, r := range want {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// A crash mid-append leaves a torn final line; replay must drop it and
// a subsequent append must not interleave with the garbage.
func TestJournalTornTailIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: recSubmit, ID: "c000001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate dying mid-write: a partial second record without newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"done","id":"c0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "c000001" {
		t.Fatalf("replay after torn tail = %+v, want just the first record", recs)
	}
	// The torn bytes were truncated away: a new append starts cleanly.
	if err := j2.append(journalRecord{Type: recDone, ID: "c000001", State: "done"}); err != nil {
		t.Fatal(err)
	}
	j2.close()
	j3, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if len(recs) != 2 || recs[1].Type != recDone || recs[1].State != "done" {
		t.Fatalf("post-truncation journal = %+v, want clean submit+done", recs)
	}
}
