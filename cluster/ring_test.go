package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingPlacementIgnoresInsertionOrder(t *testing.T) {
	a, err := newRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sha256:%04d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %s: owner %q vs %q across insertion orders", key, a.owner(key), b.owner(key))
		}
		if !reflect.DeepEqual(a.order(key), b.order(key)) {
			t.Fatalf("key %s: failover order differs across insertion orders", key)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := newRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := newRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty member name accepted")
	}
	if _, err := newRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestRingOrderCoversAllMembersOwnerFirst(t *testing.T) {
	r, err := newRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("job-%d", i)
		order := r.order(key)
		if len(order) != 4 {
			t.Fatalf("key %s: order has %d members, want 4", key, len(order))
		}
		if order[0] != r.owner(key) {
			t.Fatalf("key %s: order starts with %q, owner is %q", key, order[0], r.owner(key))
		}
		seen := make(map[string]bool)
		for _, m := range order {
			if seen[m] {
				t.Fatalf("key %s: member %q repeats in order %v", key, m, order)
			}
			seen[m] = true
		}
	}
}

// Removing a member may move only that member's keys: everyone else's
// placement is untouched. This is the property that makes node death
// cheap — survivors keep their caches warm.
func TestRingOnlyDeadMembersKeysMove(t *testing.T) {
	full, err := newRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	without, err := newRing([]string{"n1", "n2", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("sha256:%05d", i)
		before := full.owner(key)
		after := without.owner(key)
		if before != "n3" {
			if after != before {
				t.Fatalf("key %s moved %q -> %q though its owner survived", key, before, after)
			}
			kept++
			continue
		}
		// n3's keys must land on its failover successor in the full ring.
		order := full.order(key)
		if after != order[1] {
			t.Fatalf("key %s: moved to %q, want clockwise successor %q", key, after, order[1])
		}
		moved++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingBalance(t *testing.T) {
	r, err := newRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("sha256:%05d", i))]++
	}
	for m, n := range counts {
		// Fair share is 1000; 128 vnodes keeps every member within ~2x.
		if n < keys/6 || n > keys/2+keys/10 {
			t.Errorf("member %s owns %d of %d keys — badly unbalanced", m, n, keys)
		}
	}
}
