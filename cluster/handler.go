package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/obs"
	"repro/ftdse/service"
)

// The coordinator speaks the ftdsed wire protocol on its job surface —
// POST /solve, POST /solve/batch, GET/DELETE /jobs/{id},
// GET /jobs/{id}/events — so the typed client package works against it
// unchanged; jobs just run on whichever node the shard map picks. On
// top of that it serves the cluster surface: POST /cluster/checkpoints
// (nodes push incumbents here), GET /cluster/checkpoints/{fp} (clients
// fetch a prior incumbent to warm-start a similar problem), and
// GET /cluster/shards (the shard map report).

// maxBody bounds request bodies, matching the node's limit.
const maxBody = 16 << 20

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", c.handleSolve)
	mux.HandleFunc("POST /solve/batch", c.handleBatch)
	mux.HandleFunc("GET /jobs/{id}", c.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("POST /cluster/checkpoints", c.handleCheckpointPush)
	mux.HandleFunc("GET /cluster/checkpoints/{fp}", c.handleCheckpointGet)
	mux.HandleFunc("GET /cluster/shards", c.handleShards)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /readyz", c.handleReady)
	return mux
}

// writeJSON emits a compact response (compactness keeps RawMessage
// results byte-identical with what the nodes produced).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeBadRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, service.ErrorResponse{Error: err.Error()})
}

// validate checks a submission the way a node would — the problem
// document parses, the options normalize, a warm start (if any) is a
// well-formed checkpoint — and returns its fingerprint. Validating at
// the edge keeps garbage out of the journal: every journaled submit
// record is dispatchable.
func (c *Coordinator) validate(req service.SubmitRequest) (string, error) {
	if len(req.Problem) == 0 {
		return "", errors.New("missing problem document")
	}
	if req.TraceID != "" && !obs.ValidTraceID(req.TraceID) {
		return "", fmt.Errorf("invalid trace id %q", req.TraceID)
	}
	prob, err := ftdse.ReadProblem(bytes.NewReader(req.Problem))
	if err != nil {
		return "", err
	}
	fp, err := service.Fingerprint(prob, req.Options)
	if err != nil {
		return "", err
	}
	if len(req.WarmStart) > 0 {
		if _, err := ftdse.ReadCheckpoint(bytes.NewReader(req.WarmStart)); err != nil {
			return "", fmt.Errorf("warm start: %w", err)
		}
	}
	return fp, nil
}

// admit journals and registers a set of validated submissions
// atomically: duplicates of an open fingerprint coalesce onto the
// existing job, and either every genuinely new job fits under
// MaxPending or the whole set is rejected (all-or-nothing, like the
// node's queue). The journal append happens under the admission lock —
// a submit record must hit disk before its 202 — which serializes
// fsyncs; submission is a control-plane operation, the solves are the
// work, so the ceiling is acceptable.
func (c *Coordinator) admit(reqs []service.SubmitRequest, fps []string) ([]*cjob, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("coordinator closed")
	}
	fresh := make(map[string]bool, len(reqs))
	need := 0
	for i := range reqs {
		if c.open[fps[i]] == nil && !fresh[fps[i]] {
			fresh[fps[i]] = true
			need++
		}
	}
	if len(c.open)+need > c.cfg.MaxPending {
		c.met.rejected.Add(int64(need))
		c.log.Warn("admission cap reached, rejecting batch",
			"rejected", need, "open_jobs", len(c.open), "max_pending", c.cfg.MaxPending)
		return nil, errTooManyJobs
	}
	jobs := make([]*cjob, len(reqs))
	var started []*cjob
	for i, req := range reqs {
		if j := c.open[fps[i]]; j != nil {
			// Coalesced submissions adopt the open job's trace ID (first
			// submission wins), matching the node's contract.
			c.met.coalesced.Inc()
			jobs[i] = j
			continue
		}
		// Mint the trace identity before journaling so the submit record —
		// and every re-dispatch after a restart — carries it.
		if req.TraceID == "" {
			req.TraceID = obs.NewTraceID()
		}
		c.nextID++
		j := &cjob{
			id: fmt.Sprintf("c%06d", c.nextID), fp: fps[i], req: req,
			traceID:   req.TraceID,
			submitted: time.Now(),
			state:     service.StateQueued,
			done:      make(chan struct{}),
		}
		if c.wal != nil {
			body, err := json.Marshal(req)
			if err == nil {
				err = c.wal.append(journalRecord{Type: recSubmit, ID: j.id, Fingerprint: j.fp, Request: body})
			}
			if err != nil {
				// Never acknowledge a job that would not survive a restart.
				return nil, fmt.Errorf("journaling submission: %w", err)
			}
		}
		c.met.submitted.Inc()
		c.log.Info("job admitted", obs.TraceIDKey, j.traceID,
			"job", j.id, "fingerprint", j.fp)
		c.jobs[j.id] = j
		c.open[j.fp] = j
		jobs[i] = j
		started = append(started, j)
	}
	for _, j := range started {
		c.spawnMonitor(j)
	}
	return jobs, nil
}

// errTooManyJobs is the admission-cap rejection.
var errTooManyJobs = errors.New("too many pending jobs")

func (c *Coordinator) writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, errTooManyJobs) {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests,
			service.ErrorResponse{Error: err.Error(), RetryAfterS: 5})
		return
	}
	writeBadRequest(w, err)
}

func (c *Coordinator) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req service.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeBadRequest(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.TraceID == "" {
		req.TraceID = r.Header.Get(obs.TraceHeader)
	}
	fp, err := c.validate(req)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	jobs, err := c.admit([]service.SubmitRequest{req}, []string{fp})
	if err != nil {
		c.writeSubmitError(w, err)
		return
	}
	j := jobs[0]
	w.Header().Set(obs.TraceHeader, j.traceID)
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// The submission stands — the cluster's contract is zero lost
			// jobs, so a disconnected waiter does not cancel anything.
			return
		}
	}
	st := j.status()
	code := http.StatusAccepted
	if service.TerminalState(st.State) {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req service.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeBadRequest(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeBadRequest(w, errors.New("empty batch"))
		return
	}
	fps := make([]string, len(req.Jobs))
	for i, jr := range req.Jobs {
		fp, err := c.validate(jr)
		if err != nil {
			writeBadRequest(w, fmt.Errorf("batch job %d: %w", i, err))
			return
		}
		fps[i] = fp
	}
	jobs, err := c.admit(req.Jobs, fps)
	if err != nil {
		c.writeSubmitError(w, err)
		return
	}
	resp := service.BatchResponse{Jobs: make([]service.JobStatus, len(jobs))}
	for i, j := range jobs {
		resp.Jobs[i] = j.status()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// lookup resolves {id}, answering 404 itself when absent.
func (c *Coordinator) lookup(w http.ResponseWriter, r *http.Request) *cjob {
	c.mu.Lock()
	j := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound,
			service.ErrorResponse{Error: "unknown job " + r.PathValue("id")})
	}
	return j
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := c.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := c.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	j.cancelReq = true
	node, remoteID := j.node, j.remoteID
	j.mu.Unlock()
	if node != "" {
		// Forward the cancel; the monitor's poll observes the remote
		// terminal state and concludes the job (cancelReq set, so the
		// remote cancellation is final rather than a failover signal).
		if m := c.members[node]; m != nil {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete,
				m.url+"/jobs/"+remoteID, nil)
			if err == nil {
				if resp, err := c.hc.Do(req); err == nil {
					resp.Body.Close()
				}
			}
		}
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents re-serves a job's improvement stream from whichever node
// currently runs it, surviving failover: when the solve moves, the
// proxy re-subscribes on the new node. A resumed attempt replays its
// own history (starting from the warm-started incumbent), so the proxy
// applies the same monotone gate the solver applies internally —
// only events that improve on the best cost already delivered are
// forwarded — and the merged stream stays monotone like a node's own.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := c.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, service.ErrorResponse{Error: "streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	gate := newMonotoneGate()
	for {
		j.mu.Lock()
		terminal := service.TerminalState(j.state)
		node, remoteID := j.node, j.remoteID
		j.mu.Unlock()
		if terminal {
			writeSSE(w, "done", j.status())
			fl.Flush()
			return
		}
		if node != "" {
			if m := c.members[node]; m != nil {
				nc := client.New(m.url, c.hc)
				// Stream one attempt; errors (node died, job re-mapped) fall
				// through to the outer loop, which waits and re-subscribes.
				nc.Stream(r.Context(), remoteID, func(ev service.ProgressEvent) {
					if gate.admit(ev) {
						writeSSE(w, "improvement", ev)
						fl.Flush()
					}
				})
			}
		}
		// The attempt ended (or the job is unassigned): wait for the
		// coordinator's conclusion or the next assignment.
		select {
		case <-j.done:
		case <-time.After(c.cfg.PollInterval):
		case <-r.Context().Done():
			return
		}
	}
}

// monotoneGate admits only strictly improving costs, in the solver's
// cost order (tardiness first, then makespan).
type monotoneGate struct {
	has  bool
	tard float64
	mksp float64
}

func newMonotoneGate() *monotoneGate { return &monotoneGate{} }

func (g *monotoneGate) admit(ev service.ProgressEvent) bool {
	if g.has && (ev.TardinessMs > g.tard ||
		(ev.TardinessMs == g.tard && ev.MakespanMs >= g.mksp)) {
		return false
	}
	g.has, g.tard, g.mksp = true, ev.TardinessMs, ev.MakespanMs
	return true
}

// writeSSE emits one event, data marshaled compactly.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"encoding event"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleCheckpointPush ingests one search checkpoint from a node. The
// freshest-and-best document per fingerprint is journaled and kept; a
// push that would regress the stored incumbent (a cold re-solve racing
// a warm one) is dropped, so warm starts never get worse.
func (c *Coordinator) handleCheckpointPush(w http.ResponseWriter, r *http.Request) {
	var push service.CheckpointPush
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&push); err != nil {
		writeBadRequest(w, fmt.Errorf("decoding checkpoint push: %w", err))
		return
	}
	if push.Fingerprint == "" {
		writeBadRequest(w, errors.New("checkpoint push without fingerprint"))
		return
	}
	ck, err := ftdse.ReadCheckpoint(bytes.NewReader(push.Checkpoint))
	if err != nil {
		writeBadRequest(w, fmt.Errorf("checkpoint document: %w", err))
		return
	}
	c.mu.Lock()
	stored, ok := c.ckpts[push.Fingerprint]
	c.mu.Unlock()
	if ok {
		if old, err := ftdse.ReadCheckpoint(bytes.NewReader(stored)); err == nil && !asGoodAs(ck, old) {
			writeJSON(w, http.StatusOK, struct{}{})
			return
		}
	}
	if c.wal != nil {
		if err := c.wal.append(journalRecord{
			Type: recCheckpoint, Fingerprint: push.Fingerprint, Checkpoint: push.Checkpoint,
		}); err != nil {
			writeJSON(w, http.StatusInternalServerError, service.ErrorResponse{Error: err.Error()})
			return
		}
	}
	c.mu.Lock()
	c.ckpts[push.Fingerprint] = push.Checkpoint
	c.mu.Unlock()
	c.met.ckptsReceived.Inc()
	c.log.Info("checkpoint received", obs.TraceIDKey, r.Header.Get(obs.TraceHeader),
		"node", push.Node, "remote_job", push.JobID, "fingerprint", push.Fingerprint)
	writeJSON(w, http.StatusOK, struct{}{})
}

// asGoodAs reports whether checkpoint a's incumbent is at least as good
// as b's, in the solver's cost order. Ties admit a (fresher wins: a
// later checkpoint of the same fingerprint carries more elapsed search).
func asGoodAs(a, b ftdse.Checkpoint) bool {
	if a.TardinessMs != b.TardinessMs {
		return a.TardinessMs < b.TardinessMs
	}
	return a.MakespanMs <= b.MakespanMs
}

// handleCheckpointGet serves the freshest stored checkpoint for a
// fingerprint — the warm-start hook for similar problems: fetch the
// incumbent of a solved variant, submit the new problem with it as
// WarmStart, and the search starts from that design when it fits.
func (c *Coordinator) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	ck := c.LatestCheckpoint(fp)
	if ck == nil {
		writeJSON(w, http.StatusNotFound,
			service.ErrorResponse{Error: "no checkpoint for " + fp})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(ck)
}

// ShardsResponse is the body of GET /cluster/shards.
type ShardsResponse struct {
	Nodes []ShardStat `json:"nodes"`
}

func (c *Coordinator) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ShardsResponse{Nodes: c.shardStats()})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	c.met.reg.WriteText(w)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady answers the coordinator's own readiness: started, below
// the admission cap, and at least one live node to dispatch to.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	alive := 0
	for _, name := range c.ring.members {
		if ok, _, _ := c.members[name].snapshot(); ok {
			alive++
		}
	}
	c.mu.Lock()
	st := service.ReadyStatus{
		Ready:         c.started && !c.closed && alive > 0 && len(c.open) < c.cfg.MaxPending,
		QueueDepth:    len(c.open),
		QueueCapacity: c.cfg.MaxPending,
	}
	c.mu.Unlock()
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}
