package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/ftdse/obs"
	"repro/ftdse/service"
)

// Node names one solver (ftdsed) member of the cluster.
type Node struct {
	// Name is the member's stable cluster identity (shard placement
	// hashes it, so renaming a node moves its shards).
	Name string
	// URL is the node's base URL, e.g. "http://10.0.0.7:8385".
	URL string
}

// Config tunes a Coordinator. Nodes is required; everything else has
// defaults.
type Config struct {
	// Nodes are the solver members. Names must be unique and non-empty.
	Nodes []Node
	// Journal is the write-ahead log path; "" keeps the journal in
	// memory only (acknowledged jobs then do not survive a coordinator
	// restart — fine for tests, not for production).
	Journal string
	// CheckpointInterval is the cadence nodes are asked to push search
	// checkpoints at (default 1s).
	CheckpointInterval time.Duration
	// HealthInterval is the readiness-probe cadence (default 1s).
	HealthInterval time.Duration
	// FailAfter marks a node dead after this many consecutive probe
	// failures (default 3); its in-flight jobs re-map to survivors.
	FailAfter int
	// PollInterval is the per-job status poll cadence (default 250ms).
	PollInterval time.Duration
	// MaxPending bounds the open (non-terminal) jobs; submissions beyond
	// it are rejected with 429 (default 1024).
	MaxPending int
	// MaxJobs bounds the terminal jobs retained for status queries
	// (default 4096).
	MaxJobs int
	// VNodes is the virtual-node count per member (default 128).
	VNodes int
	// StealMargin is the queue-depth advantage (owner depth minus the
	// lightest ready node's depth) that triggers work stealing when the
	// shard owner is busy (default 2).
	StealMargin int
	// HTTPTimeout bounds each HTTP exchange with a node (default 15s).
	HTTPTimeout time.Duration
	// Logger receives the coordinator's structured log lines (dispatches,
	// failovers, steals, node deaths), each tagged with the job's trace
	// ID when one applies. nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.StealMargin <= 0 {
		c.StealMargin = 2
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 15 * time.Second
	}
	return c
}

// member is the coordinator's live view of one node.
type member struct {
	name, url string

	mu    sync.Mutex
	alive bool // reachable (dead nodes' shards re-map)
	ready bool // accepting new work (queue not full, not draining)
	fails int  // consecutive probe failures
	depth int  // queue depth from the last probe
}

func (m *member) snapshot() (alive, ready bool, depth int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive, m.ready, m.depth
}

// cjob is one job owned by the coordinator. The coordinator assigns its
// own IDs and maps them to (node, remote job id); the mapping changes
// on failover, the ID never does.
type cjob struct {
	id  string
	fp  string
	req service.SubmitRequest
	// traceID is the request identity minted (or accepted) at the submit
	// edge; it never changes across failover re-dispatches, so one solve
	// is one trace ID in the journal, every node's logs, the SSE stream
	// and the final result. Coalesced submissions share the first one.
	traceID   string
	submitted time.Time

	mu           sync.Mutex
	state        string
	node         string // owning member name ("" while unassigned)
	remoteID     string // job id on the owning node
	attempts     int    // dispatch attempts (for backoff/diagnostics)
	improvements int
	cancelReq    bool
	result       json.RawMessage
	errMsg       string
	done         chan struct{}
}

// Coordinator shards solve jobs across ftdsed nodes. Create with New,
// mount Handler, call Start, and Close to stop.
type Coordinator struct {
	cfg     Config
	ring    *ring
	wal     *journal // nil without Config.Journal
	hc      *http.Client
	members map[string]*member // immutable map, mutable members

	mu      sync.Mutex
	self    string // advertised coordinator URL (set by Start)
	jobs    map[string]*cjob
	open    map[string]*cjob           // fingerprint → non-terminal job
	ckpts   map[string]json.RawMessage // fingerprint → freshest checkpoint doc
	retired []string
	nextID  uint64
	started bool
	closed  bool

	met  *coordMetrics
	vars *expvar.Map
	log  *slog.Logger
	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a coordinator: the shard map is derived from the node
// names, and the journal (when configured) is replayed — open jobs
// resume dispatching once Start is called. Nothing contacts the nodes
// until Start.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	names := make([]string, len(cfg.Nodes))
	members := make(map[string]*member, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		if n.URL == "" {
			return nil, fmt.Errorf("cluster: node %q has no URL", n.Name)
		}
		names[i] = n.Name
		if _, dup := members[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", n.Name)
		}
		members[n.Name] = &member{name: n.Name, url: n.URL}
	}
	r, err := newRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    r,
		hc:      &http.Client{Timeout: cfg.HTTPTimeout},
		members: members,
		jobs:    make(map[string]*cjob),
		open:    make(map[string]*cjob),
		ckpts:   make(map[string]json.RawMessage),
		stop:    make(chan struct{}),
	}
	c.met = newCoordMetrics(c)
	c.vars = c.met.expvarMap(c)
	c.log = cfg.Logger
	if c.log == nil {
		c.log = obs.Discard()
	}
	if cfg.Journal != "" {
		wal, recs, err := openJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		c.wal = wal
		c.replay(recs)
	}
	return c, nil
}

// replay reconstructs coordinator state from journal records.
func (c *Coordinator) replay(recs []journalRecord) {
	for _, r := range recs {
		switch r.Type {
		case recSubmit:
			var req service.SubmitRequest
			if json.Unmarshal(r.Request, &req) != nil || r.ID == "" {
				continue
			}
			j := &cjob{
				id: r.ID, fp: r.Fingerprint, req: req,
				traceID:   req.TraceID,
				submitted: time.Now(),
				state:     service.StateQueued,
				done:      make(chan struct{}),
			}
			if j.traceID == "" {
				// A journal written before trace propagation: the resumed
				// solve still gets an identity.
				j.traceID = obs.NewTraceID()
				j.req.TraceID = j.traceID
			}
			c.jobs[j.id] = j
			c.open[j.fp] = j
			var n uint64
			if _, err := fmt.Sscanf(r.ID, "c%06d", &n); err == nil && n > c.nextID {
				c.nextID = n
			}
		case recDone:
			j := c.jobs[r.ID]
			if j == nil {
				continue
			}
			j.state = r.State
			j.result = r.Result
			close(j.done)
			if c.open[j.fp] == j {
				delete(c.open, j.fp)
			}
		case recCheckpoint:
			if r.Fingerprint != "" && len(r.Checkpoint) > 0 {
				c.ckpts[r.Fingerprint] = r.Checkpoint
			}
		}
	}
}

// Start begins the health loop and the monitors of journal-replayed
// jobs. selfURL is the address nodes push checkpoints to (this
// coordinator's own base URL as the nodes reach it).
func (c *Coordinator) Start(selfURL string) error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return errors.New("cluster: coordinator already started")
	}
	c.started = true
	c.self = selfURL
	var resumed []*cjob
	for _, j := range c.open {
		resumed = append(resumed, j) //ftlint:allow determinism monitors are independent goroutines; launch order is immaterial
	}
	c.mu.Unlock()

	// Probe synchronously once so the first submissions after Start see
	// live membership instead of racing the first health tick.
	c.healthPass()
	c.wg.Add(1)
	go c.healthLoop()
	for _, j := range resumed {
		c.met.redispatches.Inc()
		c.log.Info("resuming journaled job", obs.TraceIDKey, j.traceID, "job", j.id)
		c.spawnMonitor(j)
	}
	return nil
}

// Close stops the loops and closes the journal. Jobs in flight on the
// nodes keep running there; a restarted coordinator re-adopts them via
// the journal.
//
//ftdse:shutdown
func (c *Coordinator) Close(ctx context.Context) error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
	}
	c.mu.Unlock()
	done := make(chan struct{})
	go func() { c.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if c.wal != nil {
		if cerr := c.wal.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Vars returns the coordinator's metrics map.
func (c *Coordinator) Vars() *expvar.Map { return c.vars }

// LatestCheckpoint returns the freshest checkpoint document stored for
// a fingerprint (nil when none). Exposed for warm-starting similar
// problems and for tests asserting the failover contract.
func (c *Coordinator) LatestCheckpoint(fp string) json.RawMessage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ckpts[fp]
}

// ---- health checking ----

func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.healthPass()
		}
	}
}

// healthPass probes every member once, in name order (determinism of
// the probe sequence keeps logs and tests reproducible).
func (c *Coordinator) healthPass() {
	for _, name := range c.ring.members {
		m := c.members[name]
		st, err := c.probe(m)
		m.mu.Lock()
		if err != nil {
			m.fails++
			wasAlive := m.alive
			if m.fails >= c.cfg.FailAfter && m.alive {
				m.alive, m.ready = false, false
			}
			died := wasAlive && !m.alive
			fails := m.fails
			m.mu.Unlock()
			if died {
				c.met.nodeDeaths.Inc()
				c.log.Warn("node died", "node", name, "fails", fails, "error", err.Error())
				c.failoverNode(name)
			}
			continue
		}
		m.fails = 0
		m.alive = true
		m.ready = st.Ready
		m.depth = st.QueueDepth
		m.mu.Unlock()
		// A node answering under a different (or no) identity restarted
		// or never met us: (re-)register so checkpoint pushes flow.
		if st.Node != name {
			c.register(m)
		}
	}
}

// probe fetches a node's readiness. A 503 with a parseable body is a
// healthy answer ("alive but busy/draining"), only transport failures
// count toward death.
func (c *Coordinator) probe(m *member) (service.ReadyStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/readyz", nil)
	if err != nil {
		return service.ReadyStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.ReadyStatus{}, err
	}
	defer resp.Body.Close()
	var st service.ReadyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.ReadyStatus{}, err
	}
	return st, nil
}

// register introduces the coordinator to a node (idempotent).
func (c *Coordinator) register(m *member) {
	c.mu.Lock()
	self := c.self
	c.mu.Unlock()
	if self == "" {
		return
	}
	body, _ := json.Marshal(service.RegisterRequest{
		Node:         m.name,
		Coordinator:  self,
		CheckpointMs: float64(c.cfg.CheckpointInterval) / float64(time.Millisecond),
	})
	resp, err := c.hc.Post(m.url+"/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	resp.Body.Close()
}

// failoverNode re-maps every open job owned by a dead node: the job
// goes back to unassigned and its monitor re-dispatches it (to the next
// live member in ring order) from the freshest checkpoint.
func (c *Coordinator) failoverNode(name string) {
	c.mu.Lock()
	var hit []*cjob
	for _, j := range c.open {
		hit = append(hit, j) //ftlint:allow determinism re-dispatch order across independent jobs is immaterial
	}
	c.mu.Unlock()
	for _, j := range hit {
		j.mu.Lock()
		owned := j.node == name && !service.TerminalState(j.state)
		if owned {
			j.node, j.remoteID = "", ""
		}
		j.mu.Unlock()
		if owned {
			c.met.redispatches.Inc()
			c.log.Warn("failing over job", obs.TraceIDKey, j.traceID,
				"job", j.id, "from_node", name)
		}
	}
}

// ---- dispatch and monitoring ----

// pickNode selects the dispatch target for a fingerprint: the first
// live member in the ring's failover order — cache affinity, automatic
// re-mapping around dead nodes — unless that owner is hot (not ready,
// or backed up by more than StealMargin over the lightest ready
// member), in which case the lightest ready member steals the job.
func (c *Coordinator) pickNode(fp string) (m *member, stole bool) {
	order := c.ring.order(fp)
	var owner *member
	for _, name := range order {
		cand := c.members[name]
		if alive, _, _ := cand.snapshot(); alive {
			owner = cand
			break
		}
	}
	if owner == nil {
		return nil, false
	}
	_, ownerReady, ownerDepth := owner.snapshot()
	// The lightest ready member (by probe depth, ties in ring order).
	var lightest *member
	lightDepth := 0
	for _, name := range order {
		cand := c.members[name]
		if alive, ready, depth := cand.snapshot(); alive && ready {
			if lightest == nil || depth < lightDepth {
				lightest, lightDepth = cand, depth
			}
		}
	}
	switch {
	case ownerReady && (lightest == nil || ownerDepth-lightDepth <= c.cfg.StealMargin):
		return owner, false
	case lightest != nil && lightest != owner:
		return lightest, true
	default:
		return owner, false
	}
}

// spawnMonitor starts the goroutine that owns a job's remote lifecycle:
// dispatching (and re-dispatching after failover), polling status, and
// concluding. One monitor per job, so redispatch is single-flight by
// construction.
func (c *Coordinator) spawnMonitor(j *cjob) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.monitor(j)
	}()
}

func (c *Coordinator) monitor(j *cjob) {
	tick := time.NewTicker(c.cfg.PollInterval)
	defer tick.Stop()
	for {
		j.mu.Lock()
		terminal := service.TerminalState(j.state)
		node, remoteID, canceled := j.node, j.remoteID, j.cancelReq
		j.mu.Unlock()
		if terminal {
			return
		}
		switch {
		case canceled && node == "":
			c.conclude(j, service.StateCanceled, nil, "canceled before dispatch")
			return
		case node == "":
			c.dispatch(j)
		default:
			c.poll(j, node, remoteID)
		}
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
	}
}

// dispatch sends the job to the picked node, carrying the freshest
// checkpoint as warm start so a resumed solve continues from the last
// incumbent.
func (c *Coordinator) dispatch(j *cjob) {
	m, stole := c.pickNode(j.fp)
	if m == nil {
		return // no live node; the monitor retries next tick
	}
	req := j.req
	req.TraceID = j.traceID
	warm := false
	if ck := c.LatestCheckpoint(j.fp); ck != nil {
		req.WarmStart = ck
		warm = true
		c.met.warmDispatches.Inc()
	}
	body, err := json.Marshal(req)
	if err != nil {
		c.conclude(j, service.StateFailed, nil, "encoding dispatch: "+err.Error())
		return
	}
	hreq, err := http.NewRequest(http.MethodPost, m.url+"/solve", bytes.NewReader(body))
	if err != nil {
		c.conclude(j, service.StateFailed, nil, "building dispatch: "+err.Error())
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, j.traceID)
	start := time.Now()
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return // transport failure; health loop judges the node, monitor retries
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Backpressure: mark the member un-ready immediately (the probe
		// would only notice next pass) and let the monitor re-pick.
		m.mu.Lock()
		m.ready = false
		m.mu.Unlock()
		return
	case resp.StatusCode == http.StatusServiceUnavailable:
		return // draining; the health pass will re-map
	case resp.StatusCode/100 != 2:
		var e service.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		c.conclude(j, service.StateFailed, nil, fmt.Sprintf("node %s rejected job: %s", m.name, e.Error))
		return
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return
	}
	if stole {
		c.met.steals.Inc()
	}
	c.met.dispatches.Inc()
	c.met.byNode.With(m.name).Inc()
	j.mu.Lock()
	j.attempts++
	attempt := j.attempts
	j.node, j.remoteID = m.name, st.ID
	if !service.TerminalState(j.state) {
		j.state = service.StateRunning
	}
	j.mu.Unlock()
	if attempt == 1 {
		// Time from admission to the first node accepting the job — the
		// cluster-level analogue of the node's queue wait.
		c.met.queueWait.Observe(time.Since(j.submitted).Seconds())
	}
	c.log.Info("job dispatched", obs.TraceIDKey, j.traceID,
		"job", j.id, "node", m.name, "remote_id", st.ID, "attempt", attempt,
		"stolen", stole, "warm", warm,
		"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
	if service.TerminalState(st.State) {
		// Answered in place (result-cache hit on the node).
		c.met.cacheHits.Inc()
		c.conclude(j, st.State, st.Result, st.Error)
	}
}

// poll refreshes a dispatched job's state from its node. Losing the
// remote job (404 after a node restart) or its node re-maps the job;
// a remote cancellation the coordinator did not ask for (a draining
// node) does too — zero lost jobs is the contract.
func (c *Coordinator) poll(j *cjob, node, remoteID string) {
	m := c.members[node]
	if alive, _, _ := m.snapshot(); !alive {
		return // failoverNode already unassigned it (or is about to)
	}
	resp, err := c.hc.Get(m.url + "/jobs/" + remoteID)
	if err != nil {
		return // transport failure: the health loop decides the node's fate
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		c.unassign(j, node)
		return
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return
	}
	j.mu.Lock()
	if j.node != node || j.remoteID != remoteID || service.TerminalState(j.state) {
		j.mu.Unlock()
		return // reassigned or concluded while the poll was in flight
	}
	j.improvements = st.Improvements
	canceled := j.cancelReq
	j.mu.Unlock()
	if !service.TerminalState(st.State) {
		return
	}
	if st.State == service.StateCanceled && !canceled {
		// The node gave the job up (drain); keep the search alive
		// elsewhere from the last checkpoint.
		c.unassign(j, node)
		return
	}
	c.conclude(j, st.State, st.Result, st.Error)
}

// unassign drops a job's node binding so its monitor re-dispatches.
func (c *Coordinator) unassign(j *cjob, from string) {
	j.mu.Lock()
	if j.node == from {
		j.node, j.remoteID = "", ""
	}
	j.mu.Unlock()
	c.met.redispatches.Inc()
	c.log.Warn("job lost by node, re-dispatching", obs.TraceIDKey, j.traceID,
		"job", j.id, "node", from)
}

// conclude moves a job to a terminal state exactly once: journal first
// (a crash between the two re-runs an already-finished solve, which
// coalescing and the result cache absorb), then in-memory state.
func (c *Coordinator) conclude(j *cjob, state string, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	if service.TerminalState(j.state) {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	if c.wal != nil {
		c.wal.append(journalRecord{Type: recDone, ID: j.id, Fingerprint: j.fp,
			TraceID: j.traceID, State: state, Result: result})
	}
	j.mu.Lock()
	j.state = state
	j.result = result
	j.errMsg = errMsg
	close(j.done)
	j.mu.Unlock()
	c.mu.Lock()
	if c.open[j.fp] == j {
		delete(c.open, j.fp)
	}
	c.retired = append(c.retired, j.id)
	for len(c.jobs) > c.cfg.MaxJobs && len(c.retired) > 0 {
		delete(c.jobs, c.retired[0])
		c.retired = c.retired[1:]
	}
	c.mu.Unlock()
	c.met.jobDuration.Observe(time.Since(j.submitted).Seconds())
	switch state {
	case service.StateDone:
		c.met.completed.Inc()
	case service.StateFailed:
		c.met.failed.Inc()
	case service.StateCanceled:
		c.met.canceled.Inc()
	}
	c.log.Info("job concluded", obs.TraceIDKey, j.traceID,
		"job", j.id, "state", state, "error", errMsg)
}

// status snapshots a job's public view in the service wire shape, so
// the ftdsed client works unchanged against the coordinator.
func (j *cjob) status() service.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return service.JobStatus{
		ID:           j.id,
		State:        j.state,
		Fingerprint:  j.fp,
		TraceID:      j.traceID,
		Improvements: j.improvements,
		SubmittedAt:  j.submitted,
		Error:        j.errMsg,
		Result:       j.result,
	}
}

// ---- metrics ----

// coordMetrics aggregates the coordinator's counters on an obs.Registry
// (one per coordinator, nothing process-global), exposed twice: GET
// /metrics renders the Prometheus text format under ftcluster_* names,
// and expvarMap keeps the legacy JSON view with its historical keys.
type coordMetrics struct {
	reg *obs.Registry

	submitted      *obs.Counter
	coalesced      *obs.Counter
	rejected       *obs.Counter
	dispatches     *obs.Counter
	byNode         *obs.CounterVec // dispatches per node name
	redispatches   *obs.Counter
	steals         *obs.Counter
	cacheHits      *obs.Counter
	warmDispatches *obs.Counter
	completed      *obs.Counter
	failed         *obs.Counter
	canceled       *obs.Counter
	ckptsReceived  *obs.Counter
	nodeDeaths     *obs.Counter
	queueWait      *obs.Histogram // admission → first successful dispatch
	jobDuration    *obs.Histogram // admission → terminal state
}

func newCoordMetrics(c *Coordinator) *coordMetrics {
	r := obs.NewRegistry()
	buckets := obs.ExponentialBuckets(0.001, 2, 21)
	m := &coordMetrics{
		reg:            r,
		submitted:      r.NewCounter("ftcluster_jobs_submitted_total", "Jobs admitted by the coordinator."),
		coalesced:      r.NewCounter("ftcluster_jobs_coalesced_total", "Submissions coalesced onto an open job with the same fingerprint."),
		rejected:       r.NewCounter("ftcluster_jobs_rejected_total", "Submissions rejected by the admission cap (429)."),
		dispatches:     r.NewCounter("ftcluster_dispatches_total", "Successful job dispatches to nodes."),
		byNode:         r.NewCounterVec("ftcluster_dispatches_by_node_total", "Successful job dispatches per node.", "node"),
		redispatches:   r.NewCounter("ftcluster_redispatches_total", "Jobs re-dispatched after failover, drain, or restart."),
		steals:         r.NewCounter("ftcluster_steals_total", "Dispatches stolen from a busy shard owner by a lighter node."),
		cacheHits:      r.NewCounter("ftcluster_node_cache_hits_total", "Dispatches answered terminally in place by a node's result cache."),
		warmDispatches: r.NewCounter("ftcluster_warm_dispatches_total", "Dispatches seeded with a stored checkpoint."),
		completed:      r.NewCounter("ftcluster_jobs_completed_total", "Jobs that reached the done state."),
		failed:         r.NewCounter("ftcluster_jobs_failed_total", "Jobs that reached the failed state."),
		canceled:       r.NewCounter("ftcluster_jobs_canceled_total", "Jobs that reached the canceled state."),
		ckptsReceived:  r.NewCounter("ftcluster_checkpoints_received_total", "Checkpoint documents accepted from nodes."),
		nodeDeaths:     r.NewCounter("ftcluster_node_deaths_total", "Nodes declared dead after consecutive probe failures."),
		queueWait: r.NewHistogram("ftcluster_queue_wait_seconds",
			"Time from job admission to the first node accepting it.", buckets),
		jobDuration: r.NewHistogram("ftcluster_job_duration_seconds",
			"Time from job admission to its terminal state.", buckets),
	}
	r.NewGaugeFunc("ftcluster_open_jobs", "Admitted jobs not yet terminal.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.open))
		})
	r.NewGaugeFunc("ftcluster_nodes_alive", "Members currently passing health probes.",
		func() float64 { return float64(c.aliveNodes()) })
	return m
}

// aliveNodes counts members currently considered reachable.
func (c *Coordinator) aliveNodes() int {
	n := 0
	for _, name := range c.ring.members {
		if alive, _, _ := c.members[name].snapshot(); alive {
			n++
		}
	}
	return n
}

// expvarMap builds the legacy exported view with the historical key
// names, rendering from the same registry state.
func (m *coordMetrics) expvarMap(c *Coordinator) *expvar.Map {
	out := new(expvar.Map).Init()
	intVar := func(name string, read func() int64) {
		out.Set(name, expvar.Func(func() any { return read() }))
	}
	intVar("jobs_submitted", m.submitted.Value)
	intVar("jobs_coalesced", m.coalesced.Value)
	intVar("jobs_rejected", m.rejected.Value)
	intVar("jobs_completed", m.completed.Value)
	intVar("jobs_failed", m.failed.Value)
	intVar("jobs_canceled", m.canceled.Value)
	intVar("dispatches", m.dispatches.Value)
	out.Set("dispatches_by_node", expvar.Func(func() any { return m.byNode.Values() }))
	intVar("redispatches", m.redispatches.Value)
	intVar("steals", m.steals.Value)
	intVar("node_cache_hits", m.cacheHits.Value)
	intVar("warm_dispatches", m.warmDispatches.Value)
	intVar("checkpoints_received", m.ckptsReceived.Value)
	intVar("node_deaths", m.nodeDeaths.Value)
	out.Set("open_jobs", expvar.Func(func() any {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.open)
	}))
	out.Set("nodes_alive", expvar.Func(func() any { return c.aliveNodes() }))
	return out
}

// ShardStat is one node's row in the shard map report.
type ShardStat struct {
	Node       string `json:"node"`
	URL        string `json:"url"`
	Alive      bool   `json:"alive"`
	Ready      bool   `json:"ready"`
	QueueDepth int    `json:"queue_depth"`
	// OpenJobs counts this coordinator's non-terminal jobs currently
	// assigned to the node.
	OpenJobs int `json:"open_jobs"`
}

// shardStats renders the current shard map, sorted by node name.
func (c *Coordinator) shardStats() []ShardStat {
	owned := make(map[string]int)
	c.mu.Lock()
	for _, j := range c.open {
		j.mu.Lock()
		if j.node != "" {
			owned[j.node]++
		}
		j.mu.Unlock()
	}
	c.mu.Unlock()
	out := make([]ShardStat, 0, len(c.ring.members))
	for _, name := range c.ring.members {
		m := c.members[name]
		alive, ready, depth := m.snapshot()
		out = append(out, ShardStat{
			Node: name, URL: m.url,
			Alive: alive, Ready: ready, QueueDepth: depth,
			OpenJobs: owned[name],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
