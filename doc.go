// Package ftdse synthesizes fault-tolerant implementations of hard
// real-time applications on TTP-based distributed architectures. It is
// a Go reproduction of Izosimov, Pop, Eles, Peng: "Design Optimization
// of Time- and Cost-Constrained Fault-Tolerant Distributed Embedded
// Systems" (DATE 2005), packaged as an embeddable library.
//
// Given an application (process graphs with data dependencies), an
// architecture (nodes on a TTP bus with per-node worst-case execution
// times) and a fault hypothesis (k transient faults per operation
// cycle, recovery overhead µ), the solver decides the mapping of
// processes to nodes and the assignment of fault-tolerance policies —
// re-execution, active replication, and combinations of the two — and
// builds static schedule tables plus the bus MEDL such that all
// deadlines hold in the worst case.
//
// # Building a problem
//
// Problems are assembled with a ProblemBuilder or loaded from JSON with
// ReadProblem. Designer-imposed constraints map to the paper's sets:
// ForceReexecution is P_X, ForceReplication is P_R and Pin is P_M.
//
//	b := ftdse.NewProblem("demo").Nodes(2).Faults(1, ftdse.Ms(5))
//	g := b.Graph("loop", ftdse.Ms(200), ftdse.Ms(150))
//	sensor := g.Process("Sensor", ftdse.Ms(8), ftdse.Ms(10))
//	actuate := g.Process("Actuate", ftdse.Ms(8), ftdse.Ms(10))
//	g.Edge(sensor, actuate, 2)
//	prob, err := b.Build()
//
// # Solving
//
// A Solver is configured once with functional options and can then
// solve any number of problems:
//
//	solver := ftdse.NewSolver(
//		ftdse.WithStrategy(ftdse.MXR),
//		ftdse.WithMaxIterations(300),
//		ftdse.WithProgress(func(imp ftdse.Improvement) {
//			log.Printf("iter %d: %v", imp.Iteration, imp.Cost)
//		}),
//	)
//	res, err := solver.Solve(ctx, prob)
//
// Solve honors context cancellation and deadlines end-to-end: the
// search polls the context before every scheduling pass (its unit of
// work), so cancellation takes effect within one pass and returns the
// best design found so far, with Result.Stopped recording the cause.
// WithProgress streams every incumbent solution as it is found, making
// the solver usable as an anytime optimizer.
//
// # Search engines
//
// The algorithm that explores the design space is pluggable: WithEngine
// selects among the paper's greedy→tabu pipeline (the default), its
// phases alone, seeded simulated annealing, and a portfolio that races
// engines concurrently and keeps the best design — or any
// caller-supplied Engine written against the Search handle. ParseEngine
// and Engines map the canonical names used by flags and the service
// wire format.
//
//	eng, _ := ftdse.ParseEngine("portfolio") // Portfolio(tabu, sa)
//	res, err := ftdse.NewSolver(ftdse.WithEngine(eng)).Solve(ctx, prob)
//
// # Determinism
//
// An uninterrupted run — context.Background() and no WithTimeLimit —
// is bit-for-bit deterministic: the same problem and options produce
// the same design regardless of WithWorkers, because candidate moves
// are ranked by (cost, move index) rather than by completion order.
// This holds for every engine: stochastic engines derive all
// randomness from WithSeed, and a portfolio selects its winner by
// (cost, racer order) after the race. Timed or canceled runs are
// best-effort anytime results.
//
// Fixed designs can be evaluated without searching via
// Problem.Evaluate, simulated under fault scenarios with RunScenario
// or a Campaign, rendered with the Gantt helpers, and exported with
// WriteSchedule and WriteDesignDOT. The repro/ftdse/bench package
// regenerates the paper's evaluation tables on top of this API.
package ftdse
