// Package repro is a Go reproduction of Izosimov, Pop, Eles, Peng:
// "Design Optimization of Time- and Cost-Constrained Fault-Tolerant
// Distributed Embedded Systems" (DATE 2005).
//
// The library synthesizes fault-tolerant implementations of hard
// real-time applications on TTP-based distributed architectures: it
// decides the mapping of processes to nodes and the assignment of
// fault-tolerance policies (re-execution, active replication, and
// combinations of the two), and builds static schedule tables plus the
// bus MEDL such that k transient faults per operation cycle are
// tolerated and all deadlines hold in the worst case.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation. The root-level
// bench_test.go regenerates every table and figure of the paper.
package repro
