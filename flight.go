package ftdse

import (
	"io"

	"repro/ftdse/internal/core"
	"repro/ftdse/internal/sysio"
)

// Trace is the flight-recorder capture of one Solve run: the structured
// search events (phase transitions, incumbents, evaluator sweeps,
// warm-start adoption, stop cause) in emission order, plus the count of
// events the bounded ring overwrote. Enable capture with
// WithFlightRecorder; the trace arrives on Result.Trace and exports as
// canonical JSONL through WriteTrace (rendered by cmd/fttrace).
type Trace = core.Trace

// SearchEvent is one flight-recorder entry; Kind selects which of the
// optional fields are meaningful.
type SearchEvent = core.SearchEvent

// Flight-recorder event kinds (SearchEvent.Kind).
const (
	EventRunStart   = core.EventRunStart
	EventPhaseEnter = core.EventPhaseEnter
	EventPhaseExit  = core.EventPhaseExit
	EventIncumbent  = core.EventIncumbent
	EventWarmStart  = core.EventWarmStart
	EventSweep      = core.EventSweep
	EventRunEnd     = core.EventRunEnd
)

// ValidEventKind reports whether kind is a known flight-recorder event
// kind (the set ReadTrace accepts).
func ValidEventKind(kind string) bool { return core.ValidEventKind(kind) }

// DefaultFlightRecorderEvents is the ring capacity WithFlightRecorder
// selects when given a non-positive size.
const DefaultFlightRecorderEvents = core.DefaultFlightRecorderEvents

// TraceVersion is the current trace document version of WriteTrace.
const TraceVersion = sysio.TraceVersion

// WithFlightRecorder enables the search flight recorder with a ring of
// the given capacity (events <= 0 selects DefaultFlightRecorderEvents).
// Once the ring is full the oldest events are overwritten and counted
// in Trace.Dropped, so a runaway search bounds its own telemetry. The
// recorder is pure observability: it never influences the search, and
// a solver without it pays only a nil check per emission site.
func WithFlightRecorder(events int) Option {
	return func(s *Solver) {
		if events <= 0 {
			events = DefaultFlightRecorderEvents
		}
		s.opts.FlightRecorder = events
	}
}

// ReadTrace parses a trace document written by WriteTrace. The parse is
// strict — unknown fields, unknown event kinds, non-monotone sequence
// or elapsed stamps, and trailing content are rejected — so an accepted
// document re-serializes to identical bytes.
func ReadTrace(r io.Reader) (*Trace, error) {
	return sysio.ReadTrace(r)
}

// WriteTrace serializes a trace in the canonical JSON-Lines form: a
// header line carrying the version and dropped-event count, then one
// event object per line in emission order.
func WriteTrace(w io.Writer, t *Trace) error {
	return sysio.WriteTrace(w, t)
}
