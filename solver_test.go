package ftdse_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/ftdse"
)

// testProblem generates a deterministic synthetic instance large enough
// that a full solve takes many scheduling passes.
func testProblem(procs, nodes, k int) ftdse.Problem {
	return ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: procs, Nodes: nodes, Seed: 42},
		ftdse.FaultModel{K: k, Mu: ftdse.Ms(5)})
}

// cancelReturnBudget bounds how long Solve may take to return after the
// context fires: the contract is "within one scheduling pass", which
// for these instances is far below the budget. Kept well above the
// ~100ms target to absorb CI scheduling noise.
const cancelReturnBudget = 250 * time.Millisecond

// assertPromptCancel verifies the anytime contract after a cancellation:
// Solve returned quickly, with a best-so-far design, marked canceled.
func assertPromptCancel(t *testing.T, res *ftdse.Result, err error, canceledAt time.Time) {
	t.Helper()
	took := time.Since(canceledAt)
	if took > cancelReturnBudget {
		t.Fatalf("Solve returned %v after cancellation, want < %v", took, cancelReturnBudget)
	}
	if err != nil {
		t.Fatalf("canceled Solve returned error %v, want best-so-far result", err)
	}
	if res == nil || res.Schedule == nil || len(res.Design) == 0 {
		t.Fatalf("canceled Solve returned no design: %+v", res)
	}
	if res.Stopped != ftdse.StopCanceled {
		t.Errorf("Stopped = %v, want %v", res.Stopped, ftdse.StopCanceled)
	}
	if err := ftdse.ValidateSchedule(res.Schedule); err != nil {
		t.Errorf("best-so-far schedule invalid: %v", err)
	}
}

// TestCancelMidGreedy cancels as soon as the greedy phase reports its
// first incumbent, so the cancellation strikes inside the greedy
// improvement loop.
func TestCancelMidGreedy(t *testing.T) {
	prob := testProblem(60, 4, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var canceledAt time.Time
	solver := ftdse.NewSolver(
		ftdse.WithMaxIterations(10000),
		ftdse.WithProgress(func(imp ftdse.Improvement) {
			if imp.Phase == "greedy" && canceledAt.IsZero() {
				canceledAt = time.Now()
				cancel()
			}
		}),
	)
	res, err := solver.Solve(ctx, prob)
	if canceledAt.IsZero() {
		t.Skip("greedy phase produced no improvement to cancel on")
	}
	assertPromptCancel(t, res, err, canceledAt)
}

// TestCancelMidTabu drives the search into the tabu phase and cancels
// on its first improvement; if the instance yields none, it cancels on
// a timer that lands mid-search.
func TestCancelMidTabu(t *testing.T) {
	prob := testProblem(40, 3, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var canceledAt time.Time
	sawTabu := false
	solver := ftdse.NewSolver(
		ftdse.WithMaxIterations(10000),
		ftdse.WithProgress(func(imp ftdse.Improvement) {
			if imp.Phase == "tabu" && canceledAt.IsZero() {
				sawTabu = true
				canceledAt = time.Now()
				cancel()
			}
		}),
	)
	done := make(chan struct{})
	var res *ftdse.Result
	var err error
	go func() {
		res, err = solver.Solve(ctx, prob)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		// No tabu improvement surfaced: cancel anyway, mid-search.
		canceledAt = time.Now()
		cancel()
		<-done
	}
	if !sawTabu {
		t.Log("cancellation fired on the fallback timer, not a tabu improvement")
	}
	assertPromptCancel(t, res, err, canceledAt)
}

// TestCancelMidEvaluatorFanOut cancels while the parallel evaluator has
// a sweep of candidate moves in flight across workers.
func TestCancelMidEvaluatorFanOut(t *testing.T) {
	prob := testProblem(100, 6, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	solver := ftdse.NewSolver(
		ftdse.WithMaxIterations(10000),
		ftdse.WithWorkers(8),
	)
	done := make(chan struct{})
	var res *ftdse.Result
	var err error
	go func() {
		res, err = solver.Solve(ctx, prob)
		close(done)
	}()
	// A 100-process MXR search runs for seconds; 50ms lands inside the
	// first move sweeps.
	time.Sleep(50 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	<-done
	assertPromptCancel(t, res, err, canceledAt)
}

// TestCancelBeforeStart still yields the initial design: cancellation
// is an anytime interruption, never a failure, once a design exists.
func TestCancelBeforeStart(t *testing.T) {
	prob := testProblem(12, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ftdse.NewSolver().Solve(ctx, prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Stopped != ftdse.StopCanceled {
		t.Errorf("Stopped = %v, want %v", res.Stopped, ftdse.StopCanceled)
	}
	if res.Iterations != 0 {
		t.Errorf("pre-canceled run iterated %d times", res.Iterations)
	}
	if len(res.Design) != prob.NumProcesses() {
		t.Errorf("initial design covers %d of %d processes", len(res.Design), prob.NumProcesses())
	}
}

// TestTimeLimitStopCause distinguishes deadline expiry from
// cancellation in Result.Stopped.
func TestTimeLimitStopCause(t *testing.T) {
	prob := testProblem(60, 4, 5)
	res, err := ftdse.NewSolver(
		ftdse.WithMaxIterations(10000),
		ftdse.WithTimeLimit(30*time.Millisecond),
	).Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Stopped != ftdse.StopTimeLimit {
		t.Errorf("Stopped = %v, want %v", res.Stopped, ftdse.StopTimeLimit)
	}
}

// TestSolveDeterministicAcrossWorkers is the facade-level determinism
// regression: an uninterrupted Solve(context.Background(), …) must be
// bit-for-bit identical for every worker count (the legacy untimed
// path).
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	prob := testProblem(20, 3, 2)
	var ref *ftdse.Result
	for _, workers := range []int{1, 2, 8} {
		res, err := ftdse.NewSolver(
			ftdse.WithMaxIterations(40),
			ftdse.WithWorkers(workers),
		).Solve(context.Background(), prob)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stopped != ftdse.StopCompleted {
			t.Fatalf("workers=%d: Stopped = %v, want %v", workers, res.Stopped, ftdse.StopCompleted)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Cost != ref.Cost {
			t.Errorf("workers=%d: cost %v != reference %v", workers, res.Cost, ref.Cost)
		}
		if res.Iterations != ref.Iterations {
			t.Errorf("workers=%d: iterations %d != reference %d", workers, res.Iterations, ref.Iterations)
		}
		if !reflect.DeepEqual(res.Design, ref.Design) {
			t.Errorf("workers=%d: design differs from reference", workers)
		}
	}
}

// TestProgressStreamsIncumbents checks the observer contract: the
// initial solution is always reported, costs never regress, elapsed
// never decreases, and the last incumbent is the returned design.
func TestProgressStreamsIncumbents(t *testing.T) {
	prob := testProblem(20, 3, 2)
	var imps []ftdse.Improvement
	res, err := ftdse.NewSolver(
		ftdse.WithMaxIterations(40),
		ftdse.WithProgress(func(imp ftdse.Improvement) { imps = append(imps, imp) }),
	).Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(imps) == 0 {
		t.Fatal("no improvements observed")
	}
	if imps[0].Phase != "initial" || imps[0].Iteration != 0 {
		t.Errorf("first improvement = %+v, want the initial solution", imps[0])
	}
	for i := 1; i < len(imps); i++ {
		if imps[i].Cost.Less(imps[i-1].Cost) == false {
			t.Errorf("improvement %d (%v) does not improve on %v", i, imps[i].Cost, imps[i-1].Cost)
		}
		if imps[i].Elapsed < imps[i-1].Elapsed {
			t.Errorf("improvement %d: elapsed went backwards", i)
		}
		if imps[i].Schedulable != imps[i].Cost.Schedulable() {
			t.Errorf("improvement %d: schedulable flag inconsistent with cost", i)
		}
	}
	if last := imps[len(imps)-1]; last.Cost != res.Cost {
		t.Errorf("last incumbent %v != final cost %v", last.Cost, res.Cost)
	}

	// The observer must not change the outcome.
	unobserved, err := ftdse.NewSolver(ftdse.WithMaxIterations(40)).
		Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if unobserved.Cost != res.Cost || !reflect.DeepEqual(unobserved.Design, res.Design) {
		t.Error("observed and unobserved runs diverge")
	}
}
