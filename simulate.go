package ftdse

import (
	"math/rand"

	"repro/ftdse/internal/sim"
)

// Scenario assigns a number of transient faults to schedule items; the
// total never exceeds the fault hypothesis' k. The zero scenario is
// fault-free.
type Scenario = sim.Scenario

// SimResult is the outcome of executing a schedule under one fault
// scenario: observed completion times and any deadline violations.
type SimResult = sim.Result

// Campaign is a fault-injection campaign over a synthesized schedule:
// every scenario of the hypothesis when enumerable, otherwise all
// adversarial scenarios plus Samples random ones.
type Campaign = sim.Campaign

// CampaignResult aggregates a campaign: scenarios run, worst observed
// completion, and violations of the analysis bound.
type CampaignResult = sim.CampaignResult

// RunScenario executes the schedule tables under one fault scenario,
// reproducing the runtime behavior (contingency switches, re-execution
// slack) and checking the observed completions against the worst-case
// analysis.
func RunScenario(s *Schedule, sc Scenario) *SimResult { return sim.Run(s, sc) }

// ForEachScenario enumerates every fault scenario of the hypothesis in
// deterministic order until yield returns false. The scenario passed to
// yield is reused across calls; copy it to retain it.
func ForEachScenario(s *Schedule, yield func(Scenario) bool) { sim.ForEachScenario(s, yield) }

// ScenarioCount returns the number of distinct fault scenarios of the
// hypothesis for this schedule.
func ScenarioCount(s *Schedule) int64 { return sim.ScenarioCount(s) }

// RandomScenario draws a random scenario of exactly k faults.
func RandomScenario(rng *rand.Rand, s *Schedule) Scenario { return sim.RandomScenario(rng, s) }

// AdversarialScenarios returns the heuristically worst scenarios
// (fault mass concentrated on critical items).
func AdversarialScenarios(s *Schedule) []Scenario { return sim.AdversarialScenarios(s) }
