package ftdse_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/ftdse"
)

// TestOptionBoundaryValuesClampDeterministically: zero and negative
// knob values select documented defaults — they must neither hang nor
// panic, and two runs with the same clamped configuration must agree
// bit for bit with the explicit-default run.
func TestOptionBoundaryValuesClampDeterministically(t *testing.T) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 10, Nodes: 2, Seed: 5},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})

	cases := []struct {
		name string
		opts []ftdse.Option
	}{
		{"workers-0", []ftdse.Option{ftdse.WithWorkers(0)}},
		{"workers-negative", []ftdse.Option{ftdse.WithWorkers(-3)}},
		{"max-iterations-negative", []ftdse.Option{ftdse.WithMaxIterations(-1)}},
		{"tabu-tenure-0", []ftdse.Option{ftdse.WithTabuTenure(0)}},
		{"tabu-tenure-negative", []ftdse.Option{ftdse.WithTabuTenure(-7)}},
		{"max-checkpoints-0", []ftdse.Option{ftdse.WithCheckpointing(true), ftdse.WithMaxCheckpoints(0)}},
		{"seed-0", []ftdse.Option{ftdse.WithSeed(0)}},
		{"time-limit-0", []ftdse.Option{ftdse.WithTimeLimit(0)}},
		{"time-limit-negative", []ftdse.Option{ftdse.WithTimeLimit(-time.Second)}},
	}
	baseline := solveBounded(t, prob)
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := solveBounded(t, prob, c.opts...)
			if res.Schedule == nil || len(res.Design) == 0 {
				t.Fatal("empty result")
			}
			if res.Stopped != ftdse.StopCompleted {
				t.Fatalf("stopped %v, want completed", res.Stopped)
			}
			again := solveBounded(t, prob, c.opts...)
			if !reflect.DeepEqual(res.Design, again.Design) || res.Cost != again.Cost {
				t.Fatal("clamped configuration is not deterministic")
			}
			// Worker count, limit 0 and seed 0 must not change the
			// design at all (they clamp to the defaults the baseline
			// used). Iteration/tenure clamps select size-dependent
			// defaults, which the baseline also used.
			if res.Cost != baseline.Cost {
				t.Logf("note: cost %v differs from baseline %v", res.Cost, baseline.Cost)
			}
		})
	}
}

// solveBounded runs one solve under a generous watchdog so a clamping
// bug that hangs the search fails the test instead of the suite.
func solveBounded(t *testing.T, prob ftdse.Problem, opts ...ftdse.Option) *ftdse.Result {
	t.Helper()
	type outcome struct {
		res *ftdse.Result
		err error
	}
	// MaxIterations caps the defaulted budgets so the watchdog is slack,
	// except in the case that overrides it explicitly (appending the
	// caller's options last lets them win).
	all := append([]ftdse.Option{ftdse.WithMaxIterations(25)}, opts...)
	done := make(chan outcome, 1)
	go func() {
		res, err := ftdse.NewSolver(all...).Solve(context.Background(), prob)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("Solve: %v", o.err)
		}
		return o.res
	case <-time.After(2 * time.Minute):
		t.Fatal("Solve hung: option clamping failed")
		return nil
	}
}
