package ftdse

import (
	"repro/ftdse/internal/gantt"
)

// GanttTable lists every scheduled item of a schedule — start, node,
// worst-case windows — as an aligned text table.
func GanttTable(s *Schedule) string { return gantt.Table(s) }

// GanttChart renders the schedule as an ASCII Gantt chart of the given
// character width: one lane per node plus the bus.
func GanttChart(s *Schedule, width int) string { return gantt.Render(s, width) }

// GanttSummary condenses the schedule's worst-case metrics (makespan,
// tardiness, utilization) into a few lines.
func GanttSummary(s *Schedule) string { return gantt.Summary(s) }
