package sched

import (
	"fmt"
	"sort"

	"repro/ftdse/internal/model"
)

// ValidateSchedule re-checks the structural and timing invariants of a
// built schedule. Build always produces schedules satisfying these; the
// checker exists for downstream consumers (tools loading schedules,
// tests, and the CLI) and as executable documentation of what a
// synthesized design guarantees:
//
//   - per-node tables are sequential: nominal windows are disjoint and
//     ordered, positions are consistent;
//   - per-item sanity: nominal window length equals the execution time
//     (WCET plus checkpoint overhead), worst cases dominate nominals,
//     analysis rows are monotone in the fault budget;
//   - transmissions obey the transparency rule (slot at or after the
//     sender's SendReady) and use the sender's own TDMA slot;
//   - nominal data flow: every instance starts only after, per incoming
//     edge, at least one input is available in the fault-free run;
//   - bookkeeping: makespan is the latest guaranteed completion,
//     tardiness matches the per-process deadline violations.
func ValidateSchedule(s *Schedule) error {
	in := s.In
	k := in.Faults.K

	for _, n := range in.Arch.Nodes() {
		var prev *Item
		for pos, it := range s.NodeSequence(n.ID) {
			if it.NodePos != pos {
				return fmt.Errorf("sched: node %v: item %v at position %d has NodePos %d",
					n, it.Inst, pos, it.NodePos)
			}
			if it.Inst.Node != n.ID {
				return fmt.Errorf("sched: node %v: item %v mapped to node %d", n, it.Inst, it.Inst.Node)
			}
			if prev != nil && it.NominalStart < prev.NominalFinish {
				return fmt.Errorf("sched: node %v: %v overlaps %v", n, it.Inst, prev.Inst)
			}
			prev = it
		}
	}

	for _, it := range s.Items() {
		p := it.Inst.Proc
		if it.NominalStart < p.Release {
			return fmt.Errorf("sched: %v starts %v before release %v", it.Inst, it.NominalStart, p.Release)
		}
		if it.NominalFinish != it.NominalStart+it.Inst.ExecTime(in.Faults.Chi) {
			return fmt.Errorf("sched: %v nominal window inconsistent", it.Inst)
		}
		if it.WCFinish < it.NominalFinish {
			return fmt.Errorf("sched: %v worst case %v before nominal %v", it.Inst, it.WCFinish, it.NominalFinish)
		}
		if it.SendReady > it.WCFinish {
			return fmt.Errorf("sched: %v send ready %v after worst case %v", it.Inst, it.SendReady, it.WCFinish)
		}
		for f := 1; f <= k; f++ {
			if it.WCRow(f) < it.WCRow(f-1) {
				return fmt.Errorf("sched: %v analysis row not monotone at budget %d", it.Inst, f)
			}
		}
		msgIdxs := make([]int, 0, len(it.Msgs))
		for idx := range it.Msgs {
			msgIdxs = append(msgIdxs, idx)
		}
		sort.Ints(msgIdxs)
		for _, idx := range msgIdxs {
			tr := it.Msgs[idx]
			if tr.Start < it.SendReady {
				return fmt.Errorf("sched: %v message %v precedes send ready %v", it.Inst, tr, it.SendReady)
			}
			if in.Bus.Slots[tr.Slot].Node != it.Inst.Node {
				return fmt.Errorf("sched: %v message %v uses a foreign slot", it.Inst, tr)
			}
		}
	}

	edgeIdx := make(map[[2]model.ProcID]int, len(in.Graph.Edges()))
	for i, e := range in.Graph.Edges() {
		edgeIdx[[2]model.ProcID{e.Src, e.Dst}] = i
	}
	for _, p := range in.Graph.Processes() {
		for _, e := range in.Graph.Predecessors(p.ID) {
			idx := edgeIdx[[2]model.ProcID{e.Src, e.Dst}]
			for _, d := range s.Ex.Of(p.ID) {
				dit := s.Item(d.ID)
				earliest := model.Infinity
				for _, src := range s.Ex.Of(e.Src) {
					sit := s.Item(src.ID)
					if src.Node == d.Node {
						earliest = model.MinTime(earliest, sit.NominalFinish)
					} else if tr, ok := sit.Msgs[idx]; ok {
						earliest = model.MinTime(earliest, tr.Arrival)
					}
				}
				if dit.NominalStart < earliest {
					return fmt.Errorf("sched: %v starts %v before its first nominal input %v",
						d, dit.NominalStart, earliest)
				}
			}
		}
	}

	var maxDone, tardiness model.Time
	for _, p := range in.Graph.Processes() {
		r, ok := s.procDone[p.ID]
		if !ok {
			return fmt.Errorf("sched: process %v has no completion record", p)
		}
		if r.guaranteed < r.nominal {
			return fmt.Errorf("sched: process %v guaranteed %v before nominal %v", p, r.guaranteed, r.nominal)
		}
		maxDone = model.MaxTime(maxDone, r.guaranteed)
		if r.deadline > 0 && r.guaranteed > r.deadline {
			tardiness += r.guaranteed - r.deadline
		}
	}
	if s.Makespan != maxDone {
		return fmt.Errorf("sched: makespan %v, latest completion %v", s.Makespan, maxDone)
	}
	if s.Tardiness != tardiness {
		return fmt.Errorf("sched: tardiness %v, recomputed %v", s.Tardiness, tardiness)
	}
	if s.Schedulable() != (tardiness == 0) {
		return fmt.Errorf("sched: schedulability flag inconsistent with tardiness %v", tardiness)
	}
	return nil
}
