package sched

import (
	"strings"
	"testing"

	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

func TestBindKindString(t *testing.T) {
	cases := map[BindKind]string{
		BindRelease:    "release",
		BindPrevOnNode: "prev-on-node",
		BindInput:      "input",
		BindKind(9):    "BindKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestViolations(t *testing.T) {
	// A system that misses its deadline must report ordered violations.
	s := newSys(t, 1, model.Ms(1000), model.Ms(50))
	a := s.proc(t, "A", 40)
	b := s.proc(t, "B", 30)
	s.edge(t, "A", "B", 1)
	fm := fault.Model{K: 1, Mu: model.Ms(10)}
	sch := mustBuild(t, s.input(t, fm, policy.Assignment{
		a.ID: policy.Reexecution(0, 1),
		b.ID: policy.Reexecution(0, 1),
	}))
	if sch.Schedulable() {
		t.Fatal("design should miss the 50ms deadline")
	}
	vs := sch.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2", vs)
	}
	// Ordered by decreasing violation: B (finishes later) first.
	if vs[0].WCFinish < vs[1].WCFinish {
		t.Errorf("violations not ordered: %v", vs)
	}
	if !strings.Contains(vs[0].String(), "deadline") {
		t.Errorf("violation string = %q", vs[0].String())
	}
	// Critical path starts from the worst violator and is non-empty.
	if cp := sch.CriticalPath(); len(cp) == 0 {
		t.Error("no critical path for unschedulable design")
	}
	// Tardiness is the sum of both misses.
	want := (sch.ProcCompletion(s.mergedID(t, "A")) - model.Ms(50)) +
		(sch.ProcCompletion(s.mergedID(t, "B")) - model.Ms(50))
	if sch.Tardiness != want {
		t.Errorf("tardiness = %v, want %v", sch.Tardiness, want)
	}
}

func TestIndividualProcessDeadline(t *testing.T) {
	// A process deadline tighter than the graph deadline is what binds.
	s := newSys(t, 1, model.Ms(1000), model.Ms(500))
	a := s.proc(t, "A", 40)
	a.Deadline = model.Ms(60)
	fm := fault.Model{K: 1, Mu: model.Ms(10)}
	sch := mustBuild(t, s.input(t, fm, policy.Assignment{a.ID: policy.Reexecution(0, 1)}))
	// WC completion 90ms > 60ms individual deadline.
	if sch.Schedulable() {
		t.Fatalf("60ms individual deadline should be missed (WC %v)", sch.Makespan)
	}
	if got := sch.Tardiness; got != model.Ms(30) {
		t.Errorf("tardiness = %v, want 30ms", got)
	}
}

func TestReleaseTimeRespected(t *testing.T) {
	s := newSys(t, 1, model.Ms(1000), model.Ms(1000))
	a := s.proc(t, "A", 40)
	a.Release = model.Ms(25)
	fm := fault.Model{K: 1, Mu: model.Ms(5)}
	sch := mustBuild(t, s.input(t, fm, policy.Assignment{a.ID: policy.Reexecution(0, 1)}))
	it := itemOf(t, sch, s, "A", 0)
	if it.NominalStart != model.Ms(25) {
		t.Errorf("nominal start = %v, want release 25ms", it.NominalStart)
	}
	if it.WCFinish != model.Ms(110) {
		t.Errorf("wc finish = %v, want 25+40+45 = 110ms", it.WCFinish)
	}
}
