package sched

import (
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/ttp"
)

// BottomLevels computes the modified partial-critical-path priority of
// [6] used by the list scheduler: the length of the longest path from a
// process to any sink, where process cost is the mapping-independent
// average WCET and edge cost is an estimate of the bus delay (payload
// transmission plus half a TDMA round of expected waiting). Higher
// values mean more urgent. The optimizer reuses it for utilization-
// balanced initial mapping.
func BottomLevels(in Input) map[model.ProcID]model.Time {
	g := in.Graph
	order, err := g.TopologicalOrder()
	if err != nil {
		// Input.Validate rejects cyclic graphs before we get here.
		panic("sched: bottomLevels on cyclic graph")
	}
	half := in.Bus.RoundLength() / 2
	bl := make(map[model.ProcID]model.Time, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		p := order[i]
		avg, ok := in.WCET.Average(p.Origin)
		if !ok {
			avg = 0
		}
		best := model.Time(0)
		for _, e := range g.Successors(p.ID) {
			est := model.Time(e.Bytes)*in.Bus.PerByte + half + bl[e.Dst]
			if est > best {
				best = est
			}
		}
		bl[p.ID] = avg + best
	}
	return bl
}

// msgEstimate is the mapping-independent bus-delay estimate used by the
// priority function, exported within the package for tests.
func msgEstimate(bytes int, bus ttp.Config) model.Time {
	return model.Time(bytes)*bus.PerByte + bus.RoundLength()/2
}
