package sched

import (
	"fmt"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// Build runs the list scheduler (Section 5.1 of the paper) and returns
// the synthesized schedule with its worst-case analysis. The caller owns
// the policy assignment; Build never mutates the input.
func Build(in Input) (*Schedule, error) { return BuildInto(nil, in) }

// BuildInto is Build with an optional reusable arena: with a non-nil
// scratch the construction allocates (in steady state) nothing, reusing
// the scratch's buffers for the expansion, items, analysis rows, bus
// and index maps. The untimed analysis results are bit-identical to
// Build's — the arena only changes where the bytes live — except that
// bus transmissions carry empty display labels (cost-only callers never
// read them; keepers are rebuilt with Build).
//
// The returned Schedule is owned by the scratch and valid only until
// the next BuildInto with the same scratch; see Scratch.
//
//ftdse:hotpath
func BuildInto(sc *Scratch, in Input) (*Schedule, error) {
	st := in.Static
	if st == nil {
		if err := in.Validate(); err != nil {
			return nil, err
		}
		var err error
		st, err = NewStatic(in)
		if err != nil {
			return nil, err
		}
	}
	var (
		ex  *policy.Expansion
		err error
	)
	if sc != nil {
		ex, err = sc.exp.Expand(in.Graph, in.Assignment, in.WCET)
	} else {
		ex, err = policy.Expand(in.Graph, in.Assignment, in.WCET)
	}
	if err != nil {
		return nil, err
	}
	var b *builder
	if sc != nil {
		b = sc.prepare(in, ex, st)
	} else {
		b = newFreshBuilder(in, ex, st)
	}
	if err := b.run(); err != nil {
		return nil, err
	}
	return b.s, nil
}

// newFreshBuilder is the cold (scratch-less) construction path of
// Build: every buffer a scratch would recycle is allocated here.
func newFreshBuilder(in Input, ex *policy.Expansion, st *Static) *builder {
	b := &builder{
		s: &Schedule{
			In:       in,
			Ex:       ex,
			items:    make([]*Item, ex.NumInstances()),
			nodeSeq:  make(map[arch.NodeID][]*Item, in.Arch.NumNodes()),
			bus:      ttp.NewBus(in.Bus),
			procDone: make(map[model.ProcID]procResult, in.Graph.NumProcesses()),
		},
		timelines: make([]*nodeTimeline, in.Arch.NumNodes()),
		edgeIdx:   st.edgeIdx,
		prio:      st.prio,
	}
	for _, n := range in.Arch.Nodes() {
		b.timelines[n.ID] = newNodeTimeline(in.Faults.K, in.Faults.Mu, in.Options.SlackSharing)
	}
	return b
}

type builder struct {
	s         *Schedule
	timelines []*nodeTimeline // indexed by NodeID
	edgeIdx   map[[2]model.ProcID]int
	prio      map[model.ProcID]model.Time

	// Arena mode (scratch builds): item values and analysis rows come
	// from these backings instead of per-placement allocations, and
	// transmission labels are skipped (noLabels). nil/false in fresh
	// builds.
	itemArena []Item
	rowArena  []model.Time
	noLabels  bool

	// ready-list state reused across builds via the scratch
	indeg map[model.ProcID]int
	ready []*model.Process

	// scratch buffers reused across placements
	grBuf     []model.Time
	remoteBuf []candidate
	complBuf  []completionCand
}

// itemFor returns the Item storage of an instance: an arena slot in
// scratch builds (its recycled Msgs map, emptied, survives for reuse),
// a fresh allocation otherwise.
//
//ftdse:hotpath
func (b *builder) itemFor(id policy.InstID) *Item {
	if b.itemArena != nil {
		it := &b.itemArena[id]
		msgs := it.Msgs
		clear(msgs)
		*it = Item{Msgs: msgs}
		return it
	}
	return new(Item) //ftlint:allow hotpath cold branch: fresh (scratch-less) builds allocate per item
}

// rowFor returns the survRow backing of an instance (len k+1).
//
//ftdse:hotpath
func (b *builder) rowFor(id policy.InstID, k int) []model.Time {
	if b.rowArena != nil {
		i := int(id) * (k + 1)
		return b.rowArena[i : i+k+1 : i+k+1]
	}
	return make([]model.Time, k+1) //ftlint:allow hotpath cold branch: fresh (scratch-less) builds allocate per row
}

// run drives the ready-list loop: in every iteration the ready process
// with the highest partial-critical-path priority is extracted and all
// its replica instances are placed; its outbound broadcast messages are
// then reserved on the bus at the transparent (worst-case surviving)
// send times.
//
//ftdse:hotpath
func (b *builder) run() error {
	in := b.s.In
	g := in.Graph

	if b.indeg == nil {
		b.indeg = make(map[model.ProcID]int, g.NumProcesses()) //ftlint:allow hotpath first build with a scratch; recycled (cleared) afterwards
	} else {
		clear(b.indeg)
	}
	indeg := b.indeg
	ready := b.ready[:0]
	for _, p := range g.Processes() {
		indeg[p.ID] = len(g.Predecessors(p.ID))
		if indeg[p.ID] == 0 {
			ready = append(ready, p) //ftlint:allow hotpath amortized growth: capacity persists in the scratch across builds
		}
	}
	scheduled := 0
	for len(ready) > 0 {
		// Extract the highest-priority ready process (ties: smaller ID).
		best := 0
		for i := 1; i < len(ready); i++ {
			pi, pb := b.prio[ready[i].ID], b.prio[ready[best].ID]
			if pi > pb || (pi == pb && ready[i].ID < ready[best].ID) {
				best = i
			}
		}
		p := ready[best]
		ready = append(ready[:best], ready[best+1:]...) //ftlint:allow hotpath removal within capacity; never grows

		if err := b.placeProcess(p); err != nil {
			return err
		}
		scheduled++

		for _, e := range g.Successors(p.ID) {
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				ready = append(ready, g.Process(e.Dst)) //ftlint:allow hotpath amortized growth: capacity persists in the scratch across builds
			}
		}
	}
	b.ready = ready[:0] // persist grown capacity into the scratch
	if scheduled != g.NumProcesses() {
		return fmt.Errorf("sched: scheduled %d of %d processes (cycle?)", scheduled, g.NumProcesses())
	}
	b.finalize()
	return nil
}

// placeProcess places every replica instance of p, runs the per-process
// completion analysis, and reserves the broadcast messages of p.
//
//ftdse:hotpath
func (b *builder) placeProcess(p *model.Process) error {
	in := b.s.In
	ex := b.s.Ex
	k := in.Faults.K

	for _, inst := range ex.Of(p.ID) {
		gr, nr, bindOn, bindKind, err := b.readiness(p, inst)
		if err != nil {
			return err
		}
		nt := b.timelines[inst.Node]
		pl := nt.placeRow(inst.ID, gr, nr,
			inst.ExecTime(in.Faults.Chi), inst.RecoverTime(in.Faults.Mu), inst.Reexec,
			b.rowFor(inst.ID, k))
		item := b.itemFor(inst.ID)
		item.Inst = inst
		item.NodePos = len(b.s.nodeSeq[inst.Node])
		item.NominalStart = pl.nominalStart
		item.NominalFinish = pl.nominalFinish
		item.GuaranteedReady = gr[k]
		item.WCFinish = pl.wcFinish
		item.SendReady = pl.sendReady
		item.Bind = bindKind
		item.BindOn = bindOn
		item.wcRow = pl.survRow
		if pl.boundByPrev {
			item.Bind = BindPrevOnNode
			item.BindOn = pl.prevInst
		}
		b.s.items[inst.ID] = item
		b.s.nodeSeq[inst.Node] = append(b.s.nodeSeq[inst.Node], item) //ftlint:allow hotpath amortized growth: per-node slices keep their capacity in the scratch
	}

	// Per-process worst-case completion: the adversarial first-valid
	// completion over the replicas of p.
	cands := b.complBuf[:0]
	nominal := model.Infinity
	for _, inst := range ex.Of(p.ID) {
		it := b.s.items[inst.ID]
		cands = append(cands, completionCand{row: it.wcRow, cost: inst.Reexec + 1, inst: inst.ID}) //ftlint:allow hotpath amortized growth: complBuf capacity persists in the scratch
		nominal = model.MinTime(nominal, it.NominalFinish)
	}
	b.complBuf = cands
	done, bindOn, ok := guaranteedCompletion(cands, k)
	if !ok {
		return fmt.Errorf("sched: policy of process %s does not tolerate %d faults", p, k)
	}
	b.s.procDone[p.ID] = procResult{
		guaranteed: done,
		nominal:    nominal,
		bindOn:     bindOn,
		deadline:   p.Deadline,
	}

	// Broadcast messages: one transmission per (sender instance,
	// outgoing edge) pair that has at least one remote receiver. The
	// send slot starts at or after the sender's worst-case surviving
	// completion, which makes faults of the sender's node invisible to
	// the receivers (transparent re-execution, Figure 4a).
	for _, e := range in.Graph.Successors(p.ID) {
		idx := b.edgeIdx[[2]model.ProcID{e.Src, e.Dst}]
		receivers := ex.Of(e.Dst)
		for _, sender := range ex.Of(p.ID) {
			remote := false
			for _, r := range receivers {
				if r.Node != sender.Node {
					remote = true
					break
				}
			}
			if !remote {
				continue
			}
			it := b.s.items[sender.ID]
			var label string
			if !b.noLabels {
				// Labels are display-only; cost-only scratch builds skip
				// the formatting (an allocation per message).
				label = fmt.Sprintf("m%d:%s", idx, sender.Name()) //ftlint:allow hotpath display labels are formatted in fresh builds only (noLabels gates scratch builds)
			}
			tr, err := b.s.bus.Reserve(sender.Node, it.SendReady, e.Bytes, label)
			if err != nil {
				return err
			}
			if it.Msgs == nil {
				it.Msgs = make(map[int]ttp.Transmission, 1) //ftlint:allow hotpath first build with a scratch; the msgs map is recycled by itemFor afterwards
			}
			it.Msgs[idx] = tr
		}
	}
	return nil
}

// readiness computes the guaranteed (worst-case) and nominal input-ready
// times of one replica instance, together with the binding constraint of
// the guaranteed time.
//
// Per incoming edge, the predecessor has at most one replica on the
// instance's own node (replicas live on distinct nodes) plus remote
// replicas delivering over the bus. When the local replica survives, its
// output is available the moment it finishes, which the per-node
// timeline DP already accounts for — it must NOT additionally constrain
// the guaranteed ready time, or the shared re-execution slack of [11]
// would be double-counted (Figure 3b2). Only two things constrain gr:
//
//   - edges with no local replica: the adversarial first-valid arrival
//     over the remote broadcasts (fixed MEDL times), and
//   - edges whose local replica the adversary can kill (kill cost ≤ k):
//     the first-valid arrival over the remote broadcasts with the
//     remaining budget — this is exactly the contingency start of
//     Figure 7 (P3 waits for m2 from the replica of P2).
//
//ftdse:hotpath
func (b *builder) readiness(p *model.Process, inst *policy.Instance) (gr []model.Time, nr model.Time, bindOn policy.InstID, bindKind BindKind, err error) {
	in := b.s.In
	ex := b.s.Ex
	k := in.Faults.K

	if cap(b.grBuf) < k+1 {
		b.grBuf = make([]model.Time, k+1) //ftlint:allow hotpath grow-once: k is fixed per problem, so this runs on the first build only
	}
	gr = b.grBuf[:k+1]
	for f := range gr {
		gr[f] = p.Release
	}
	nr = p.Release
	bindOn, bindKind = NoInst, BindRelease

	for _, e := range in.Graph.Predecessors(p.ID) {
		idx := b.edgeIdx[[2]model.ProcID{e.Src, e.Dst}]
		remotes := b.remoteBuf[:0]
		localCost := -1 // kill cost of the local replica, -1 when absent
		nomBest := model.Infinity
		for _, src := range ex.Of(e.Src) {
			it := b.s.items[src.ID]
			if it == nil {
				return nil, 0, NoInst, BindRelease,
					fmt.Errorf("sched: predecessor %s placed after successor %s", src, inst)
			}
			if src.Node == inst.Node {
				localCost = src.Reexec + 1
				nomBest = model.MinTime(nomBest, it.NominalFinish)
				continue
			}
			tr, ok := it.Msgs[idx]
			if !ok {
				return nil, 0, NoInst, BindRelease,
					fmt.Errorf("sched: missing broadcast of %s for edge %v", src, e)
			}
			remotes = append(remotes, candidate{avail: tr.Arrival, killCost: src.Reexec + 1, inst: src.ID}) //ftlint:allow hotpath amortized growth: remoteBuf capacity persists in the scratch
			nomBest = model.MinTime(nomBest, tr.Arrival)
		}
		b.remoteBuf = remotes
		nr = model.MaxTime(nr, nomBest)

		// gr[f]: the worst-case first-valid arrival when the adversary
		// may spend at most f faults on this edge's deliveries. A
		// surviving local replica is subsumed by the node timeline (it
		// finishes before the node is free again), so the edge only
		// constrains gr in scenarios where the local replica is killed —
		// or always, when there is no local replica.
		for f := 0; f <= k; f++ {
			budget := f
			if localCost >= 0 {
				if localCost > f {
					continue // local replica survives under f faults
				}
				budget = f - localCost
			}
			t, first, ok := guaranteedFirstValid(remotes, budget)
			if !ok {
				return nil, 0, NoInst, BindRelease,
					fmt.Errorf("sched: inputs of %s over edge %v not guaranteed under %d faults", inst, e, f)
			}
			if t > gr[f] {
				gr[f] = t
				if f == k {
					bindOn, bindKind = first, BindInput
				}
			}
		}
	}
	return gr, nr, bindOn, bindKind, nil
}

// finalize computes makespan, tardiness and the worst process.
//
//ftdse:hotpath
func (b *builder) finalize() {
	s := b.s
	var worstViol model.Time = -1
	var worstViolProc model.ProcID
	var lastProc model.ProcID
	var last model.Time = -1
	for _, p := range s.In.Graph.Processes() {
		r := s.procDone[p.ID]
		if r.guaranteed > s.Makespan {
			s.Makespan = r.guaranteed
		}
		if r.guaranteed > last {
			last, lastProc = r.guaranteed, p.ID
		}
		if r.deadline > 0 && r.guaranteed > r.deadline {
			v := r.guaranteed - r.deadline
			s.Tardiness += v
			if v > worstViol {
				worstViol, worstViolProc = v, p.ID
			}
		}
	}
	if worstViol >= 0 {
		s.worstProc = worstViolProc
	} else {
		s.worstProc = lastProc
	}
}
