package sched

import (
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// sys bundles a single-graph test system.
type sys struct {
	app    *model.Application
	g      *model.Graph
	merged *model.Graph
	a      *arch.Architecture
	w      *arch.WCET
	byName map[string]*model.Process // original processes by name
}

// newSys builds a single-graph application on n nodes with the given
// period/deadline.
func newSys(t *testing.T, nodes int, period, deadline model.Time) *sys {
	t.Helper()
	s := &sys{
		app:    model.NewApplication("test"),
		a:      arch.New(nodes),
		w:      arch.NewWCET(),
		byName: make(map[string]*model.Process),
	}
	s.g = s.app.AddGraph("G", period, deadline)
	return s
}

// proc adds a process with per-node WCETs in milliseconds; a value <= 0
// means the process cannot run on that node.
func (s *sys) proc(t *testing.T, name string, wcetMs ...int64) *model.Process {
	t.Helper()
	p := s.app.AddProcess(s.g, name)
	for n, ms := range wcetMs {
		if ms > 0 {
			s.w.Set(p.ID, arch.NodeID(n), model.Ms(ms))
		}
	}
	s.byName[name] = p
	return p
}

// edge connects two processes with a message of the given size.
func (s *sys) edge(t *testing.T, src, dst string, bytes int) {
	t.Helper()
	s.g.AddEdge(s.byName[src], s.byName[dst], bytes)
}

// input builds a scheduler input with the default bus (slot length for
// 4-byte messages: 10 ms slots as in the paper's figures).
func (s *sys) input(t *testing.T, fm fault.Model, asgn policy.Assignment) Input {
	t.Helper()
	merged, err := s.app.Merge()
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	s.merged = merged
	return Input{
		Graph:      merged,
		Arch:       s.a,
		WCET:       s.w,
		Faults:     fm,
		Assignment: asgn,
		Bus:        ttp.InitialConfig(s.a, 4, ttp.DefaultPerByte),
		Options:    DefaultOptions(),
	}
}

// mergedID returns the merged-graph ProcID of the named original process
// (single-instance graphs only).
func (s *sys) mergedID(t *testing.T, name string) model.ProcID {
	t.Helper()
	orig := s.byName[name]
	for _, p := range s.merged.Processes() {
		if p.Origin == orig.ID && p.Instance == 0 {
			return p.ID
		}
	}
	t.Fatalf("no merged instance of %q", name)
	return model.NoProc
}

// mustBuild builds the schedule or fails the test.
func mustBuild(t *testing.T, in Input) *Schedule {
	t.Helper()
	s, err := Build(in)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

// itemOf returns the scheduled item of the given replica of a process.
func itemOf(t *testing.T, s *Schedule, sy *sys, name string, replica int) *Item {
	t.Helper()
	insts := s.Ex.Of(sy.mergedID(t, name))
	if replica >= len(insts) {
		t.Fatalf("process %q has %d replicas, want index %d", name, len(insts), replica)
	}
	return s.Item(insts[replica].ID)
}
