package sched

import (
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

// TestFigure2 reproduces the worst-case fault scenarios of the paper's
// Figure 2: process P1 with C = 30 ms under k = 2 faults of µ = 10 ms.
//
//	(a) re-execution:        P1, P1/2, P1/3 back to back  → 110 ms
//	(b) replication (3 way): two replicas killed, third at → 30 ms
//	(c) re-executed replicas (2 replicas, one re-execution):
//	    replica 2 killed, replica 1 re-executed once       → 70 ms
func TestFigure2(t *testing.T) {
	fm := fault.Model{K: 2, Mu: model.Ms(10)}

	build := func(pol policy.Policy) (*Schedule, *sys) {
		s := newSys(t, 3, model.Ms(1000), model.Ms(1000))
		p1 := s.proc(t, "P1", 30, 30, 30)
		in := s.input(t, fm, policy.Assignment{p1.ID: pol})
		return mustBuild(t, in), s
	}

	t.Run("re-execution", func(t *testing.T) {
		sch, s := build(policy.Reexecution(0, 2))
		if got := sch.ProcCompletion(s.mergedID(t, "P1")); got != model.Ms(110) {
			t.Errorf("completion = %v, want 110ms (C + 2(C+µ))", got)
		}
	})
	t.Run("replication", func(t *testing.T) {
		sch, s := build(policy.Replication(0, 1, 2))
		if got := sch.ProcCompletion(s.mergedID(t, "P1")); got != model.Ms(30) {
			t.Errorf("completion = %v, want 30ms (one replica survives)", got)
		}
	})
	t.Run("re-executed replicas", func(t *testing.T) {
		sch, s := build(policy.Distribute([]arch.NodeID{0, 1}, 2))
		if got := sch.ProcCompletion(s.mergedID(t, "P1")); got != model.Ms(70) {
			t.Errorf("completion = %v, want 70ms (replica 1 re-executed once)", got)
		}
	})
}

// figure3 builds the two applications of the paper's Figure 3 on two
// nodes with the paper's WCETs (P1: 40/50, P2: 40/60, P3: 50/70),
// k = 1, µ = 10 ms, deadline 160 ms and 10 ms TDMA slots.
func figure3(t *testing.T, chain bool) *sys {
	s := newSys(t, 2, model.Ms(1000), model.Ms(160))
	s.proc(t, "P1", 40, 50)
	s.proc(t, "P2", 40, 60)
	s.proc(t, "P3", 50, 70)
	s.edge(t, "P1", "P2", 4)
	if chain {
		// A2: P3 is data dependent on P2.
		s.edge(t, "P2", "P3", 4)
	}
	return s
}

var fig3Faults = fault.Model{K: 1, Mu: model.Ms(10)}

// TestFigure3A1 checks the paper's claim for application A1 (P1→P2, P3
// independent): re-execution meets the 160 ms deadline, replication
// misses it.
func TestFigure3A1(t *testing.T) {
	t.Run("re-execution meets", func(t *testing.T) {
		s := figure3(t, false)
		asgn := policy.Assignment{
			s.byName["P1"].ID: policy.Reexecution(0, 1),
			s.byName["P2"].ID: policy.Reexecution(0, 1),
			s.byName["P3"].ID: policy.Reexecution(1, 1),
		}
		sch := mustBuild(t, s.input(t, fig3Faults, asgn))
		if !sch.Schedulable() {
			t.Fatalf("re-execution should be schedulable; violations: %v", sch.Violations())
		}
		// P1 and P2 share the re-execution slack on N1 (Figure 3b1): P2
		// completes by 130 ms in the worst case, not 40+40+2·(40+10).
		if got := sch.ProcCompletion(s.mergedID(t, "P2")); got != model.Ms(130) {
			t.Errorf("P2 completion = %v, want 130ms (shared slack)", got)
		}
		// P3 runs on N2 (C=70) with its own slack: 2·70+10 = 150 ms is
		// the makespan.
		if sch.Makespan != model.Ms(150) {
			t.Errorf("makespan = %v, want 150ms", sch.Makespan)
		}
	})
	t.Run("replication misses", func(t *testing.T) {
		s := figure3(t, false)
		asgn := policy.Assignment{
			s.byName["P1"].ID: policy.Replication(0, 1),
			s.byName["P2"].ID: policy.Replication(0, 1),
			s.byName["P3"].ID: policy.Replication(0, 1),
		}
		sch := mustBuild(t, s.input(t, fig3Faults, asgn))
		if sch.Schedulable() {
			t.Fatalf("replication should miss the 160ms deadline, makespan %v", sch.Makespan)
		}
	})
}

// TestFigure3A2 checks the flip side for application A2 (chain
// P1→P2→P3): pure re-execution misses the deadline, and replication is
// strictly better than re-execution (the paper's qualitative point that
// the preferred policy depends on the application structure).
func TestFigure3A2(t *testing.T) {
	s := figure3(t, true)
	mx := policy.Assignment{
		s.byName["P1"].ID: policy.Reexecution(0, 1),
		s.byName["P2"].ID: policy.Reexecution(0, 1),
		s.byName["P3"].ID: policy.Reexecution(0, 1),
	}
	schMX := mustBuild(t, s.input(t, fig3Faults, mx))
	if schMX.Schedulable() {
		t.Errorf("re-execution should miss the 160ms deadline on A2, makespan %v", schMX.Makespan)
	}
	if schMX.Makespan != model.Ms(190) {
		t.Errorf("re-execution makespan = %v, want 190ms (one shared slack of C3+µ after the chain)", schMX.Makespan)
	}

	s2 := figure3(t, true)
	mr := policy.Assignment{
		s2.byName["P1"].ID: policy.Replication(0, 1),
		s2.byName["P2"].ID: policy.Replication(0, 1),
		s2.byName["P3"].ID: policy.Replication(0, 1),
	}
	schMR := mustBuild(t, s2.input(t, fig3Faults, mr))
	// On the chain A2 replication strictly beats re-execution — together
	// with A1 this is the paper's point that the policy ranking flips
	// with the application structure.
	if schMR.Makespan >= schMX.Makespan {
		t.Errorf("replication (%v) should beat re-execution (%v) on the chain A2",
			schMR.Makespan, schMX.Makespan)
	}
}

// TestFigure7 reproduces the scheduling of replica descendants
// (Figure 7): P1→P2→P3 with P2 replicated on both nodes, P1 and P3
// re-executed on N1. WCETs: P1 40/40, P2 80/80, P3 50/50; k=1, µ=10ms.
//
// The two properties of the contingency schedule the paper calls out:
//  1. P3 is placed immediately after P2/1 on N1 (nominal start 120 ms),
//     not at the guaranteed arrival of m2 from the replica.
//  2. The worst case covers the contingency switch: if P2/1 fails, P3
//     starts at the arrival of m2 from P2's replica on N2 (200 ms) and —
//     because the fault budget is then exhausted — runs WITHOUT its own
//     re-execution slack: worst case 250 ms, not 200 + 2·50 + 10.
func TestFigure7(t *testing.T) {
	s := newSys(t, 2, model.Ms(1000), model.Ms(1000))
	s.proc(t, "P1", 40, 40)
	s.proc(t, "P2", 80, 80)
	s.proc(t, "P3", 50, 50)
	s.edge(t, "P1", "P2", 4)
	s.edge(t, "P2", "P3", 4)
	asgn := policy.Assignment{
		s.byName["P1"].ID: policy.Reexecution(0, 1),
		s.byName["P2"].ID: policy.Replication(0, 1),
		s.byName["P3"].ID: policy.Reexecution(0, 1),
	}
	sch := mustBuild(t, s.input(t, fault.Model{K: 1, Mu: model.Ms(10)}, asgn))

	p3 := itemOf(t, sch, s, "P3", 0)
	if p3.NominalStart != model.Ms(120) {
		t.Errorf("P3 nominal start = %v, want 120ms (immediately after P2/1)", p3.NominalStart)
	}
	// m2 from P2/2 on N2: P2/2 finishes at 190 in the worst case it
	// survives; the next S2 slot is [190,200), so m2 arrives at 200.
	if p3.GuaranteedReady != model.Ms(200) {
		t.Errorf("P3 guaranteed ready = %v, want 200ms (m2 arrival from the replica)", p3.GuaranteedReady)
	}
	if p3.WCFinish != model.Ms(250) {
		t.Errorf("P3 worst-case finish = %v, want 250ms (contingency without extra slack)", p3.WCFinish)
	}
	// Property 1 of the paper: the nominal schedule is NOT delayed to
	// the guaranteed arrival.
	if p3.NominalStart >= p3.GuaranteedReady {
		t.Error("P3 should be scheduled before the replica message arrival (transparent contingency)")
	}
}

// TestFigure4TransparentMessage checks the transparency rule of
// Figure 4a: the message of a re-executed process is scheduled only
// after its full potential re-execution (C1 + µ after its nominal
// completion), so a fault of the sender is invisible to the receiver.
func TestFigure4TransparentMessage(t *testing.T) {
	s := newSys(t, 2, model.Ms(1000), model.Ms(1000))
	s.proc(t, "P1", 40, 50)
	s.proc(t, "P3", 60, 60)
	s.edge(t, "P1", "P3", 4)
	asgn := policy.Assignment{
		s.byName["P1"].ID: policy.Reexecution(0, 1),
		s.byName["P3"].ID: policy.Reexecution(1, 1),
	}
	sch := mustBuild(t, s.input(t, fault.Model{K: 1, Mu: model.Ms(10)}, asgn))

	p1 := itemOf(t, sch, s, "P1", 0)
	// Worst-case surviving completion: 40 + (40+10) = 90.
	if p1.SendReady != model.Ms(90) {
		t.Fatalf("P1 send ready = %v, want 90ms (C1 + (C1+µ))", p1.SendReady)
	}
	if len(p1.Msgs) != 1 {
		t.Fatalf("P1 should send exactly one broadcast, got %d", len(p1.Msgs))
	}
	for _, tr := range p1.Msgs {
		if tr.Start < p1.SendReady {
			t.Errorf("m2 scheduled at %v, before the potential re-execution ends (%v)", tr.Start, p1.SendReady)
		}
		// N1 owns slot S1 = [0,10) every 20ms round; first slot at or
		// after 90 is [100,110).
		if tr.Start != model.Ms(100) || tr.Arrival != model.Ms(110) {
			t.Errorf("m2 transmission = %v, want slot [100,110)", tr)
		}
	}
}
