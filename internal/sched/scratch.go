package sched

import (
	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// Scratch holds every buffer a Build call needs, so repeated schedule
// constructions over the same static context — the optimizer costs
// thousands of candidate assignments per search — reuse one arena
// instead of allocating a schedule's worth of garbage per candidate.
//
// Ownership contract: the Schedule returned by BuildInto, and everything
// reachable from it (items, analysis rows, the expansion, the bus), is
// owned by the scratch and valid only until the next BuildInto with the
// same scratch. Callers extract what they need (costs: Makespan,
// Tardiness) before reusing the scratch, and rebuild keepers with the
// allocating Build. A Scratch is confined to one goroutine; concurrent
// builders take one scratch each.
type Scratch struct {
	exp policy.ExpandScratch

	sched Schedule
	b     builder

	items    []Item       // value arena indexed by InstID
	itemPtrs []*Item      // Schedule.items backing
	rows     []model.Time // survRow arena: NumInstances × (k+1)

	timelines []*nodeTimeline // indexed by NodeID, reset per build
	bus       *ttp.Bus
	nodeSeq   map[arch.NodeID][]*Item
	procDone  map[model.ProcID]procResult
}

// NewScratch returns an empty scratch; buffers grow on first use and
// stabilize after one build of the largest assignment shape.
func NewScratch() *Scratch { return &Scratch{} }

// prepare resets the arena for one build and assembles the builder over
// it. Every container is either fully overwritten during the build
// (item values, analysis rows) or explicitly emptied here, which is what
// keeps scratch builds bit-identical to fresh ones.
func (sc *Scratch) prepare(in Input, ex *policy.Expansion, st *Static) *builder {
	k := in.Faults.K
	n := ex.NumInstances()

	if cap(sc.items) < n {
		sc.items = make([]Item, n)
	}
	sc.items = sc.items[:n]
	if cap(sc.itemPtrs) < n {
		sc.itemPtrs = make([]*Item, n)
	}
	sc.itemPtrs = sc.itemPtrs[:n]
	for i := range sc.itemPtrs {
		sc.itemPtrs[i] = nil // readiness() detects ordering bugs by nil
	}
	need := n * (k + 1)
	if cap(sc.rows) < need {
		sc.rows = make([]model.Time, need)
	}
	sc.rows = sc.rows[:need]

	nodes := in.Arch.NumNodes()
	if cap(sc.timelines) < nodes {
		sc.timelines = make([]*nodeTimeline, nodes)
	}
	sc.timelines = sc.timelines[:nodes]
	for _, nd := range in.Arch.Nodes() {
		if tl := sc.timelines[nd.ID]; tl == nil || tl.k != k {
			sc.timelines[nd.ID] = newNodeTimeline(k, in.Faults.Mu, in.Options.SlackSharing)
		} else {
			tl.reset(in.Faults.Mu, in.Options.SlackSharing)
		}
	}

	if sc.nodeSeq == nil {
		sc.nodeSeq = make(map[arch.NodeID][]*Item, nodes)
	} else {
		for id := range sc.nodeSeq {
			sc.nodeSeq[id] = sc.nodeSeq[id][:0]
		}
	}
	if sc.procDone == nil {
		sc.procDone = make(map[model.ProcID]procResult, in.Graph.NumProcesses())
	} else {
		clear(sc.procDone)
	}
	if sc.bus == nil {
		sc.bus = ttp.NewBus(in.Bus)
	} else {
		sc.bus.Reset(in.Bus)
	}

	sc.sched = Schedule{
		In:       in,
		Ex:       ex,
		items:    sc.itemPtrs,
		nodeSeq:  sc.nodeSeq,
		bus:      sc.bus,
		procDone: sc.procDone,
	}
	sc.b = builder{
		s:         &sc.sched,
		timelines: sc.timelines,
		edgeIdx:   st.edgeIdx,
		prio:      st.prio,
		itemArena: sc.items,
		rowArena:  sc.rows,
		noLabels:  true,
		indeg:     sc.b.indeg,
		ready:     sc.b.ready,
		grBuf:     sc.b.grBuf,
		remoteBuf: sc.b.remoteBuf,
		complBuf:  sc.b.complBuf,
	}
	return &sc.b
}
