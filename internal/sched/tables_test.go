package sched

import (
	"strings"
	"testing"

	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

func buildTableSystem(t *testing.T, k int) (*Schedule, *sys) {
	s := newSys(t, 2, model.Ms(1000), model.Ms(1000))
	a := s.proc(t, "A", 40, 40)
	b := s.proc(t, "B", 30, 30)
	s.edge(t, "A", "B", 2)
	fm := fault.Model{K: k, Mu: model.Ms(10)}
	sch := mustBuild(t, s.input(t, fm, policy.Assignment{
		a.ID: policy.Reexecution(0, k),
		b.ID: policy.Reexecution(0, k),
	}))
	return sch, s
}

func TestCompileTablesContingencyRows(t *testing.T) {
	sch, _ := buildTableSystem(t, 2)
	tables := CompileTables(sch)
	if len(tables.Nodes) != 2 {
		t.Fatalf("tables for %d nodes, want 2", len(tables.Nodes))
	}
	n0 := tables.Nodes[0]
	// A: nominal @0 plus contingency rows after its own faults never
	// shift A (it is first: WCRow includes only its own re-executions,
	// start stays 0). B: nominal @40, after 1 fault @90, after 2 @140.
	var starts []model.Time
	var conts []int
	for _, e := range n0.Entries {
		if e.Inst.Proc.Name == "B" {
			starts = append(starts, e.Start)
			conts = append(conts, e.Contingency)
		}
	}
	if len(starts) != 3 {
		t.Fatalf("B has %d rows, want 3 (nominal + 2 contingency): %v", len(starts), n0.Entries)
	}
	want := []model.Time{model.Ms(40), model.Ms(90), model.Ms(140)}
	for i := range starts {
		if starts[i] != want[i] || conts[i] != i {
			t.Errorf("B row %d = (%v, f=%d), want (%v, f=%d)", i, starts[i], conts[i], want[i], i)
		}
	}
	// A's contingency rows are its own re-start points after each fault.
	wantA := []model.Time{0, model.Ms(50), model.Ms(100)}
	i := 0
	for _, e := range n0.Entries {
		if e.Inst.Proc.Name != "A" {
			continue
		}
		if i >= len(wantA) || e.Start != wantA[i] || e.Contingency != i {
			t.Errorf("A row %d = %+v, want start %v f=%d", i, e, wantA[i], i)
		}
		i++
	}
	if i != 3 {
		t.Errorf("A has %d rows, want 3", i)
	}
	if tables.TotalRows() <= 0 {
		t.Error("non-positive table size")
	}
	out := tables.Format(sch)
	if !strings.Contains(out, "contingency after 1 fault") {
		t.Errorf("format missing contingency rows:\n%s", out)
	}
}

// TestTableSizePolicyTradeoff reproduces the paper's Section 4 remark:
// the policy assignment influences the schedule-table sizes. Replicating
// a producer adds instance rows on other nodes and extra MEDL entries,
// while re-execution concentrates the rows (instance + contingencies) on
// one node.
func TestTableSizePolicyTradeoff(t *testing.T) {
	fm := fault.Model{K: 2, Mu: model.Ms(10)}

	build := func(pol func(*sys) policy.Assignment) Tables {
		s := newSys(t, 3, model.Ms(1000), model.Ms(1000))
		s.proc(t, "A", 40, 40, 40)
		s.proc(t, "B", 20, 20, 20)
		s.edge(t, "A", "B", 2)
		asgn := pol(s)
		asgn[s.byName["B"].ID] = policy.Reexecution(2, 2)
		sch := mustBuild(t, s.input(t, fm, asgn))
		return CompileTables(sch)
	}

	rex := build(func(s *sys) policy.Assignment {
		return policy.Assignment{s.byName["A"].ID: policy.Reexecution(0, 2)}
	})
	repl := build(func(s *sys) policy.Assignment {
		return policy.Assignment{s.byName["A"].ID: policy.Replication(0, 1, 2)}
	})
	rexRows, replRows := rex.TotalRows(), repl.TotalRows()
	// Re-execution: A rows (1+2 contingency) on N1, one broadcast, B
	// rows on N3. Replication: one A row per node plus two broadcasts
	// (the replica on B's node delivers locally) — more rows in total.
	if replRows <= rexRows {
		t.Errorf("replicating the producer should need more rows (%d) than re-execution (%d)",
			replRows, rexRows)
	}
	// Exact counts keep the accounting honest.
	if rexRows != 7 {
		t.Errorf("re-execution design has %d rows, want 7 (3 A + 3 B + 1 MEDL)", rexRows)
	}
	if replRows != 8 {
		t.Errorf("replication design has %d rows, want 8 (3 A + 3 B + 2 MEDL)", replRows)
	}
}
