package sched

import (
	"fmt"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// NoInst is the sentinel instance ID used in bindings.
const NoInst = policy.InstID(-1)

// BindKind says which constraint determined the worst-case start of an
// item; the critical-path extraction follows these bindings backwards.
type BindKind uint8

const (
	// BindRelease: the item starts at its release time (path source).
	BindRelease BindKind = iota
	// BindPrevOnNode: the previous instance on the same node binds it.
	BindPrevOnNode
	// BindInput: the guaranteed arrival of an input (local predecessor
	// completion or bus message) binds it.
	BindInput
)

func (b BindKind) String() string {
	switch b {
	case BindRelease:
		return "release"
	case BindPrevOnNode:
		return "prev-on-node"
	case BindInput:
		return "input"
	}
	return fmt.Sprintf("BindKind(%d)", uint8(b))
}

// Item is one scheduled replica instance with its timing analysis.
type Item struct {
	Inst *policy.Instance

	// NodePos is the position within the node's static schedule table.
	NodePos int

	// NominalStart/NominalFinish is the fault-free execution window that
	// goes into the node's schedule table.
	NominalStart, NominalFinish model.Time

	// GuaranteedReady is the worst-case time by which all inputs of the
	// instance are certainly valid under any ≤k-fault scenario.
	GuaranteedReady model.Time

	// WCFinish is the worst-case completion over all scenarios in which
	// the instance survives (produces valid output).
	WCFinish model.Time

	// SendReady is the worst-case completion over scenarios with at most
	// Reexec faults on the node; outbound messages are scheduled at or
	// after this time (the transparency rule — see analysis.go).
	SendReady model.Time

	// Bind/BindOn record the constraint that determined the worst case,
	// for critical-path extraction.
	Bind   BindKind
	BindOn policy.InstID

	// Msgs holds the broadcast transmission per outgoing edge index (in
	// merged-graph edge order); only edges with at least one remote
	// receiver are present.
	Msgs map[int]ttp.Transmission

	// wcRow[f] is the worst-case surviving completion under at most f
	// faults on the instance's node timeline (f = 0..k).
	wcRow []model.Time
}

// WCRow returns the worst-case surviving completion of the item under at
// most f faults on its node's timeline. f is clamped to [0, k].
func (it *Item) WCRow(f int) model.Time {
	if f < 0 {
		f = 0
	}
	if f >= len(it.wcRow) {
		f = len(it.wcRow) - 1
	}
	return it.wcRow[f]
}

// procResult is the per-process completion analysis.
type procResult struct {
	guaranteed model.Time // worst-case first-valid completion over replicas
	nominal    model.Time // fault-free first completion
	bindOn     policy.InstID
	deadline   model.Time // effective deadline, <=0 when unconstrained
}

// Schedule is the synthesized system configuration: per-node schedule
// tables, the bus MEDL, and the worst-case analysis results.
type Schedule struct {
	In Input
	Ex *policy.Expansion

	items   []*Item // indexed by InstID
	nodeSeq map[arch.NodeID][]*Item
	bus     *ttp.Bus

	procDone map[model.ProcID]procResult // keyed by merged ProcID

	// Makespan is the worst-case schedule length δ: the latest
	// guaranteed completion over all processes.
	Makespan model.Time

	// Tardiness is the degree of unschedulability: the sum of worst-case
	// deadline violations. Zero means schedulable.
	Tardiness model.Time

	// worstProc starts the critical-path walk: the process with the
	// largest deadline violation, or the one completing last.
	worstProc model.ProcID
}

// Schedulable reports whether every deadline is met in the worst case.
func (s *Schedule) Schedulable() bool { return s.Tardiness == 0 }

// Item returns the scheduled item of an instance.
func (s *Schedule) Item(id policy.InstID) *Item { return s.items[id] }

// Items returns all items ordered by instance ID.
func (s *Schedule) Items() []*Item { return s.items }

// NodeSequence returns the static schedule table of node n, in execution
// order.
func (s *Schedule) NodeSequence(n arch.NodeID) []*Item { return s.nodeSeq[n] }

// MEDL returns the synthesized message descriptor list.
func (s *Schedule) MEDL() []ttp.Transmission { return s.bus.MEDL() }

// Bus returns the bus allocator (for inspection).
func (s *Schedule) Bus() *ttp.Bus { return s.bus }

// ProcCompletion returns the worst-case guaranteed completion time of a
// merged-graph process: the time by which, in every ≤k-fault scenario,
// at least one replica has certainly produced the result.
func (s *Schedule) ProcCompletion(id model.ProcID) model.Time {
	return s.procDone[id].guaranteed
}

// ProcNominalCompletion returns the fault-free first completion time.
func (s *Schedule) ProcNominalCompletion(id model.ProcID) model.Time {
	return s.procDone[id].nominal
}

// CriticalPath returns the origin ProcIDs of the processes on the
// critical path of the schedule: the chain of binding constraints from
// the worst process back to a source. The first element is the path
// start (earliest), the last the worst process. Duplicated origins
// (through replicas or node bindings) appear once.
func (s *Schedule) CriticalPath() []model.ProcID {
	if len(s.items) == 0 {
		return nil
	}
	var chain []model.ProcID
	seenInst := make(map[policy.InstID]bool)
	cur := s.procDone[s.worstProc].bindOn
	for cur != NoInst && !seenInst[cur] {
		seenInst[cur] = true
		it := s.items[cur]
		chain = append(chain, it.Inst.Proc.Origin)
		switch it.Bind {
		case BindPrevOnNode, BindInput:
			cur = it.BindOn
		default:
			cur = NoInst
		}
	}
	// Reverse into path order and deduplicate origins keeping the first
	// occurrence.
	out := make([]model.ProcID, 0, len(chain))
	seen := make(map[model.ProcID]bool, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		if !seen[chain[i]] {
			seen[chain[i]] = true
			out = append(out, chain[i])
		}
	}
	return out
}

// Violations lists the processes whose worst-case completion exceeds
// their effective deadline, ordered by decreasing violation.
func (s *Schedule) Violations() []Violation {
	var out []Violation
	for id, r := range s.procDone {
		if r.deadline > 0 && r.guaranteed > r.deadline {
			out = append(out, Violation{
				Proc:     id,
				Deadline: r.deadline,
				WCFinish: r.guaranteed,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi := out[i].WCFinish - out[i].Deadline
		vj := out[j].WCFinish - out[j].Deadline
		if vi != vj {
			return vi > vj
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Violation is one worst-case deadline miss.
type Violation struct {
	Proc     model.ProcID // merged-graph process
	Deadline model.Time
	WCFinish model.Time
}

func (v Violation) String() string {
	return fmt.Sprintf("proc %d finishes at %v, deadline %v", v.Proc, v.WCFinish, v.Deadline)
}
