package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

func TestGuaranteedFirstValid(t *testing.T) {
	c := func(avail int64, cost int, id int) candidate {
		return candidate{avail: model.Ms(avail), killCost: cost, inst: policy.InstID(id)}
	}
	t.Run("no candidates", func(t *testing.T) {
		if _, _, ok := guaranteedFirstValid(nil, 3); ok {
			t.Error("empty candidate set should not be guaranteed")
		}
	})
	t.Run("budget zero returns earliest", func(t *testing.T) {
		got, first, ok := guaranteedFirstValid([]candidate{c(50, 1, 0), c(30, 1, 1)}, 0)
		if !ok || got != model.Ms(30) || first != 1 {
			t.Errorf("got %v/%d/%v, want 30ms/1/true", got, first, ok)
		}
	})
	t.Run("kills earliest first", func(t *testing.T) {
		got, first, ok := guaranteedFirstValid([]candidate{c(30, 1, 0), c(50, 1, 1), c(70, 1, 2)}, 2)
		if !ok || got != model.Ms(70) || first != 2 {
			t.Errorf("got %v/%d/%v, want 70ms/2/true", got, first, ok)
		}
	})
	t.Run("expensive candidate blocks", func(t *testing.T) {
		got, _, ok := guaranteedFirstValid([]candidate{c(30, 3, 0), c(50, 1, 1)}, 2)
		if !ok || got != model.Ms(30) {
			t.Errorf("got %v, want 30ms (cost 3 exceeds budget 2)", got)
		}
	})
	t.Run("all killable", func(t *testing.T) {
		if _, _, ok := guaranteedFirstValid([]candidate{c(30, 1, 0), c(50, 1, 1)}, 2); ok {
			t.Error("fully killable set should report !ok")
		}
	})
	t.Run("tie broken by instance id", func(t *testing.T) {
		_, first, _ := guaranteedFirstValid([]candidate{c(30, 1, 5), c(30, 1, 2)}, 0)
		if first != 2 {
			t.Errorf("tie should pick smaller instance id, got %d", first)
		}
	})
}

func TestGuaranteedCompletion(t *testing.T) {
	row := func(ms ...int64) []model.Time {
		out := make([]model.Time, len(ms))
		for i, v := range ms {
			out[i] = model.Ms(v)
		}
		return out
	}
	t.Run("single replica uses full budget", func(t *testing.T) {
		got, first, ok := guaranteedCompletion([]completionCand{
			{row: row(30, 70, 110), cost: 3, inst: 0},
		}, 2)
		if !ok || got != model.Ms(110) || first != 0 {
			t.Errorf("got %v/%d/%v, want 110ms", got, first, ok)
		}
	})
	t.Run("kill does not double spend", func(t *testing.T) {
		// Two replicas, k=1: killing replica 0 (cost 1) leaves no budget
		// to slow replica 1, so the answer is row1[0], not row1[1].
		got, first, ok := guaranteedCompletion([]completionCand{
			{row: row(30, 100), cost: 1, inst: 0},
			{row: row(40, 200), cost: 1, inst: 1},
		}, 1)
		if !ok || got != model.Ms(100) {
			t.Errorf("got %v/%d/%v, want 100ms (slow replica 0: min(100,40)=40; kill 0: 40; kill 1: 30; max is slowing both? "+
				"mask ∅ rem1: min(100,200)=100)", got, first, ok)
		}
	})
	t.Run("intolerant set", func(t *testing.T) {
		if _, _, ok := guaranteedCompletion([]completionCand{
			{row: row(30, 30, 30), cost: 1, inst: 0},
			{row: row(40, 40, 40), cost: 1, inst: 1},
		}, 2); ok {
			t.Error("both replicas killable within budget: should report !ok")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, _, ok := guaranteedCompletion(nil, 1); ok {
			t.Error("empty set should report !ok")
		}
	})
	t.Run("fallback is conservative", func(t *testing.T) {
		// More than maxExactCompletionCands replicas: falls back to the
		// greedy prefix kill over row[k] constants. Verify it is an
		// upper bound of the exact value on a mirrored small instance.
		var big []completionCand
		for i := 0; i < maxExactCompletionCands+2; i++ {
			big = append(big, completionCand{row: row(int64(30+i), int64(60+i)), cost: 1, inst: policy.InstID(i)})
		}
		gotBig, _, ok := guaranteedCompletion(big, 1)
		if !ok {
			t.Fatal("large set should be tolerable")
		}
		exact, _, _ := guaranteedCompletion(big[:4], 1)
		if gotBig < exact {
			t.Errorf("fallback %v must be >= exact-on-subset %v", gotBig, exact)
		}
	})
}

// TestGuaranteedCompletionFallbackSound property: the conservative
// fallback always dominates the exact subset analysis.
func TestGuaranteedCompletionFallbackSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		n := 2 + rng.Intn(4)
		cands := make([]completionCand, n)
		for i := range cands {
			base := model.Ms(int64(10 + rng.Intn(90)))
			r := make([]model.Time, k+1)
			r[0] = base
			for f := 1; f <= k; f++ {
				r[f] = r[f-1] + model.Ms(int64(rng.Intn(50)))
			}
			cands[i] = completionCand{row: r, cost: 1 + rng.Intn(k+1), inst: policy.InstID(i)}
		}
		exact, _, okE := guaranteedCompletion(cands, k)
		flat := make([]candidate, n)
		for i, c := range cands {
			flat[i] = candidate{avail: c.row[k], killCost: c.cost, inst: c.inst}
		}
		cons, _, okC := guaranteedFirstValid(flat, k)
		if okE != okC {
			return false
		}
		if !okE {
			return true
		}
		return cons >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeTimelineSharedSlack(t *testing.T) {
	// Two 40ms processes with one re-execution each under k=1, µ=10:
	// the second completes by 130ms worst case (shared slack), and the
	// node-busy row reflects the same bound.
	nt := newNodeTimeline(1, model.Ms(10), true)
	gr := []model.Time{0, 0}
	p1 := nt.place(0, gr, 0, model.Ms(40), model.Ms(50), 1)
	if p1.wcFinish != model.Ms(90) {
		t.Errorf("P1 wcFinish = %v, want 90ms", p1.wcFinish)
	}
	p2 := nt.place(1, gr, p1.nominalFinish, model.Ms(40), model.Ms(50), 1)
	if p2.wcFinish != model.Ms(130) {
		t.Errorf("P2 wcFinish = %v, want 130ms (shared slack)", p2.wcFinish)
	}
	if p2.nominalStart != model.Ms(40) || p2.nominalFinish != model.Ms(80) {
		t.Errorf("P2 nominal window = [%v,%v], want [40,80]", p2.nominalStart, p2.nominalFinish)
	}
	if !p2.boundByPrev {
		t.Error("P2 should be bound by P1 on the node")
	}
}

func TestNodeTimelinePrivateSlack(t *testing.T) {
	// Without sharing, each process reserves its own (C+µ): the second
	// finishes at 40+50 + 40+50 = 180 in the analysis.
	nt := newNodeTimeline(1, model.Ms(10), false)
	gr := []model.Time{0, 0}
	nt.place(0, gr, 0, model.Ms(40), model.Ms(50), 1)
	p2 := nt.place(1, gr, model.Ms(40), model.Ms(40), model.Ms(50), 1)
	if p2.wcFinish != model.Ms(180) {
		t.Errorf("P2 wcFinish = %v, want 180ms (private slack)", p2.wcFinish)
	}
}

func TestNodeTimelineDieCase(t *testing.T) {
	// A replica with no re-executions that dies still occupies the node
	// for C+µ; a following process sees that in the busy row.
	nt := newNodeTimeline(1, model.Ms(10), true)
	gr := []model.Time{0, 0}
	r := nt.place(0, gr, 0, model.Ms(40), model.Ms(50), 0)
	if r.wcFinish != model.Ms(40) {
		t.Errorf("replica wcFinish = %v, want 40ms", r.wcFinish)
	}
	// busy[1] must include the die case 40+10 = 50.
	p2 := nt.place(1, gr, model.Ms(40), model.Ms(20), model.Ms(30), 0)
	if p2.wcFinish != model.Ms(70) {
		t.Errorf("successor wcFinish = %v, want 70ms (50 busy + 20)", p2.wcFinish)
	}
}

func TestNodeTimelineSendReady(t *testing.T) {
	// For a re-executed process (x = k) the transmission rule is the
	// plain transparency rule: send after the full potential
	// re-execution (Figure 4a).
	nt := newNodeTimeline(2, model.Ms(10), true)
	gr := []model.Time{0, 0, 0}
	first := nt.place(0, gr, 0, model.Ms(30), model.Ms(40), 2)
	if first.sendReady != first.wcFinish || first.sendReady != model.Ms(110) {
		t.Errorf("re-executed process sendReady = %v, want 110ms = wcFinish", first.sendReady)
	}
	// A replica (x=0) following it transmits after its zero-node-fault
	// window (30+20 = 50), NOT after the full-budget worst case 130:
	// its delivery is covered by charging the adversary one fault.
	rep := nt.place(1, gr, model.Ms(30), model.Ms(20), model.Ms(30), 0)
	if rep.sendReady != model.Ms(50) {
		t.Errorf("replica sendReady = %v, want 50ms", rep.sendReady)
	}
	if rep.wcFinish != model.Ms(130) {
		t.Errorf("replica wcFinish = %v, want 130ms", rep.wcFinish)
	}
}

// Property: survRow and busy are monotone in the fault budget, and
// wcFinish never precedes nominalFinish.
func TestNodeTimelineMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(4)
		nt := newNodeTimeline(k, model.Ms(int64(rng.Intn(20))), rng.Intn(2) == 0)
		ready := model.Time(0)
		for i := 0; i < 8; i++ {
			gr := make([]model.Time, k+1)
			for f := range gr {
				gr[f] = ready
				if f > 0 {
					gr[f] = gr[f-1] + model.Ms(int64(rng.Intn(10)))
				}
			}
			c := model.Ms(int64(10 + rng.Intn(50)))
			x := rng.Intn(k + 1)
			pl := nt.place(policy.InstID(i), gr, ready, c, c+nt.mu, x)
			for f := 1; f <= k; f++ {
				if pl.survRow[f] < pl.survRow[f-1] {
					return false
				}
				if nt.busy[f] < nt.busy[f-1] {
					return false
				}
			}
			if pl.wcFinish < pl.nominalFinish {
				return false
			}
			if pl.sendReady > pl.wcFinish {
				return false
			}
			ready = pl.nominalFinish
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
