package sched

import (
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

// candidate is one source that can deliver a datum at a fixed time (a
// replica's broadcast message in the MEDL). killCost is the number of
// faults an adversary must spend to prevent the delivery entirely: the
// replica's re-executions plus one (see the transparency rule in
// placed.sendReady for why delaying the message past its slot costs the
// same as killing the replica).
type candidate struct {
	avail    model.Time
	killCost int
	inst     policy.InstID
}

// sortCandidates orders candidates by (avail, inst) with an in-place
// insertion sort; candidate sets are tiny (one per replica).
func sortCandidates(c []candidate) {
	for i := 1; i < len(c); i++ {
		x := c[i]
		j := i - 1
		for j >= 0 && (c[j].avail > x.avail || (c[j].avail == x.avail && c[j].inst > x.inst)) {
			c[j+1] = c[j]
			j--
		}
		c[j+1] = x
	}
}

// guaranteedFirstValid returns the worst-case time at which at least one
// of the candidates has certainly delivered, over every adversarial
// distribution of at most budget faults, together with the candidate
// realizing it (the first survivor). The slice is reordered in place.
//
// The adversary maximizes the first valid delivery. Since the earliest
// surviving candidate determines it, the optimal attack kills a prefix
// of the candidates ordered by delivery time; killing anything after the
// first survivor is wasted. The function therefore sorts candidates by
// availability and kills greedily while the budget allows. ok is false
// when the whole candidate set can be killed within the budget, i.e. the
// policy does not tolerate the fault hypothesis.
func guaranteedFirstValid(cands []candidate, budget int) (t model.Time, first policy.InstID, ok bool) {
	if len(cands) == 0 {
		return 0, NoInst, false
	}
	sortCandidates(cands)
	for _, c := range cands {
		if c.killCost > budget {
			return c.avail, c.inst, true
		}
		budget -= c.killCost
	}
	return 0, NoInst, false
}

// completionCand describes one replica of a process for the worst-case
// completion analysis: its survive-row (worst-case completion under f
// node-local faults, f = 0..k) and its kill cost.
type completionCand struct {
	row  []model.Time
	cost int
	inst policy.InstID
}

// maxExactCompletionCands bounds the exact subset enumeration; beyond it
// the sound conservative fallback is used.
const maxExactCompletionCands = 10

// guaranteedCompletion returns the worst-case time by which, under every
// distribution of at most k faults, at least one replica has certainly
// completed, together with the replica realizing it.
//
// Exact form (small replica counts): the adversary picks a subset S of
// replicas to kill (Σ cost ≤ k) and uses the remaining budget to delay
// the survivors; each survivor is then bounded by its row at the
// remaining budget, and the first completion is their minimum. The
// result maximizes over all affordable S.
//
// For large replica counts the fallback treats every replica's full-
// budget completion row[k] as a fixed availability and runs the greedy
// prefix-kill of guaranteedFirstValid, which is provably an upper bound
// of the exact form. ok is false when all replicas can be killed.
func guaranteedCompletion(cands []completionCand, k int) (t model.Time, first policy.InstID, ok bool) {
	n := len(cands)
	if n == 0 {
		return 0, NoInst, false
	}
	if n > maxExactCompletionCands {
		flat := make([]candidate, n)
		for i, c := range cands {
			flat[i] = candidate{avail: c.row[k], killCost: c.cost, inst: c.inst}
		}
		return guaranteedFirstValid(flat, k)
	}
	best := model.Time(-1)
	bestInst := NoInst
	for mask := 0; mask < 1<<n; mask++ {
		cost := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cost += cands[i].cost
			}
		}
		if cost > k {
			continue
		}
		if mask == 1<<n-1 {
			// The whole replica set is affordable to kill: the policy
			// does not tolerate k faults.
			return 0, NoInst, false
		}
		rem := k - cost
		mn := model.Infinity
		mi := NoInst
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			if v := cands[i].row[rem]; v < mn || (v == mn && cands[i].inst < mi) {
				mn, mi = v, cands[i].inst
			}
		}
		if mn > best {
			best, bestInst = mn, mi
		}
	}
	return best, bestInst, true
}

// nodeTimeline is the incremental worst-case analysis of one node: for
// the sequence of instances placed on the node so far, busy[f] is the
// worst-case time until the node is idle again under at most f local
// faults (counting both surviving and dying executions of every placed
// instance). A fresh timeline has busy ≡ 0.
type nodeTimeline struct {
	k    int
	mu   model.Time
	busy []model.Time
	// busyFull[h] is the worst-case node-free time under at most h
	// faults ON THIS NODE while the rest of the budget (up to k faults)
	// may hit the rest of the system (every placed instance's inputs
	// taken at their full-budget guarantee gr[k]). It upper-bounds the
	// node timeline in scenarios where the adversary attacks this node
	// with a limited share of the budget, and underpins the sound
	// transmission rule for replicas (see placed.sendReady).
	busyFull []model.Time
	// spare/spareFull are the double buffers the DP writes into before
	// swapping, so placements allocate no busy rows.
	spare, spareFull []model.Time
	// nominal is the fault-free completion of the last placed instance.
	nominal model.Time
	// last is the most recently placed instance, for critical-path
	// binding; -1 when the node is still empty.
	last policy.InstID
	// sharing selects the shared-slack DP; when false every instance
	// reserves its own private worst-case re-execution slack.
	sharing bool
}

func newNodeTimeline(k int, mu model.Time, sharing bool) *nodeTimeline {
	backing := make([]model.Time, 4*(k+1))
	return &nodeTimeline{
		k:         k,
		mu:        mu,
		busy:      backing[0 : k+1 : k+1],
		busyFull:  backing[k+1 : 2*(k+1) : 2*(k+1)],
		spare:     backing[2*(k+1) : 3*(k+1) : 3*(k+1)],
		spareFull: backing[3*(k+1):],
		last:      NoInst,
		sharing:   sharing,
	}
}

// placed is the analysis result for one instance appended to a node.
type placed struct {
	// nominalStart / nominalFinish is the fault-free execution window.
	nominalStart, nominalFinish model.Time
	// survRow[f] is the worst-case completion among scenarios with at
	// most f faults on this node's timeline in which the instance still
	// produces valid output.
	survRow []model.Time
	// wcFinish is survRow[k]: the overall worst-case surviving
	// completion.
	wcFinish model.Time
	// sendReady is the transmission rule: outbound messages go into the
	// first MEDL slot at or after this time, and the receivers' analysis
	// charges the adversary x+1 faults (x = the sender's re-execution
	// count) for invalidating the delivery. Two sound bounds are
	// combined by taking their minimum:
	//
	//   - F(k) = survRow[k]: under any in-hypothesis scenario the
	//     surviving sender finishes by F(k), so the delivery can only be
	//     invalidated by killing the sender outright (x+1 self faults).
	//     This is the plain transparency rule of [11] / Figure 4a and is
	//     exact for single-replica (re-executed) processes, where x = k.
	//
	//   - S = max over g ≤ x of max(gr[k], busyFull[x-g]) + (g+1)c + gµ:
	//     inputs are taken at their FULL-budget guarantee (so upstream
	//     fault cascades can never delay the sender past S), and only
	//     x node-local faults are budgeted. A delivery scheduled at or
	//     after S can therefore only be invalidated by MORE than x
	//     faults on the sender's own node — and replicas of one process
	//     live on distinct nodes, so the kill costs of the deliveries of
	//     an edge stay additive. This bound lets replicas transmit much
	//     earlier than F(k) when the rest of the node's budget-induced
	//     delay does not concern them.
	//
	// A naive aggressive rule — sending at the completion under only the
	// replica's own fault count with inputs at the same small budget —
	// is unsound: upstream faults cascade through message chains and a
	// single fault can invalidate several deliveries at once.
	sendReady model.Time
	// boundByPrev reports whether, at full budget, the worst-case start
	// was determined by the node's previous instance rather than by the
	// instance's guaranteed input readiness.
	boundByPrev bool
	prevInst    policy.InstID
}

// place appends an instance with guaranteed input-ready vector gr
// (gr[f] = worst-case input readiness under at most f faults, len k+1),
// nominal input-ready time nr, fault-free execution time b (the WCET
// plus any checkpointing overhead), per-fault recovery cost d (plain
// re-execution: d = C+µ, the whole process is redone; n checkpoints:
// d = ⌈C/(n+1)⌉+µ, only the hit segment) and x recoverable faults, and
// advances the timeline. The DP is
//
//	survive(f) = max over g = 0..min(f,x) of
//	             max(gr[f-g], busy[f-g]) + b + g·d
//	die(f)     = max(gr[f-x-1], busy[f-x-1]) + b + x·d + µ   (when f > x)
//	busy'(f)   = max(survive(f), die(f))
//
// (the die case completes all but the last segment and the fatal fault
// chain hits that segment: b − seg + (x+1)·d = b + x·d + µ),
//
// realizing the shared re-execution slack of [11]: the f faults are
// distributed adversarially between delaying the inputs (via gr),
// delaying or killing earlier instances on the node (via busy) and
// re-executing the instance itself (g). Taking max(gr[h], busy[h])
// rather than a sum is sound because both are monotone: any split
// h1+h2 = h satisfies max(gr[h1], busy[h2]) ≤ max(gr[h], busy[h]).
func (nt *nodeTimeline) place(id policy.InstID, gr []model.Time, nr, b, d model.Time, x int) placed {
	return nt.placeRow(id, gr, nr, b, d, x, nil)
}

// placeRow is place with a caller-supplied survRow backing (len k+1,
// fully overwritten); nil allocates one. Scratch builds pass arena rows
// so placements allocate nothing.
func (nt *nodeTimeline) placeRow(id policy.InstID, gr []model.Time, nr, b, d model.Time, x int, row []model.Time) placed {
	k, mu := nt.k, nt.mu
	if x > k {
		x = k
	}
	if row == nil {
		row = make([]model.Time, k+1)
	}
	res := placed{prevInst: nt.last, survRow: row}
	res.nominalStart = model.MaxTime(nr, nt.nominal)
	res.nominalFinish = res.nominalStart + b
	base := func(h int) model.Time {
		return model.MaxTime(gr[h], nt.busy[h])
	}
	// baseFull bounds the start under h node-local faults with the full
	// budget on the inputs (for busyFull and the transmission rule S).
	baseFull := func(h int) model.Time {
		return model.MaxTime(gr[k], nt.busyFull[h])
	}
	newBusy := nt.spare
	newBusyFull := nt.spareFull
	var send model.Time
	if nt.sharing {
		for f := 0; f <= k; f++ {
			best := base(f) + b
			bestFull := baseFull(f) + b
			for g := 1; g <= f && g <= x; g++ {
				cand := base(f-g) + b + model.Time(g)*d
				if cand > best {
					best = cand
				}
				candFull := baseFull(f-g) + b + model.Time(g)*d
				if candFull > bestFull {
					bestFull = candFull
				}
			}
			res.survRow[f] = best
			newBusy[f] = best
			newBusyFull[f] = bestFull
			if f == x {
				send = bestFull
			}
			if f > x {
				die := base(f-x-1) + b + model.Time(x)*d + mu
				if die > newBusy[f] {
					newBusy[f] = die
				}
				dieFull := baseFull(f-x-1) + b + model.Time(x)*d + mu
				if dieFull > newBusyFull[f] {
					newBusyFull[f] = dieFull
				}
			}
		}
	} else {
		// Private slack: the instance always reserves its own full
		// worst-case re-execution window, independent of the budget
		// spent elsewhere (naive baseline without slack sharing).
		fin := base(k) + b + model.Time(x)*d
		finFull := baseFull(k) + b + model.Time(x)*d
		for f := 0; f <= k; f++ {
			res.survRow[f] = fin
			newBusy[f] = fin
			newBusyFull[f] = finFull
		}
		send = finFull
	}
	res.wcFinish = res.survRow[k]
	// Both bounds are sound; use the earlier one (see sendReady).
	res.sendReady = model.MinTime(send, res.wcFinish)
	res.boundByPrev = nt.last >= 0 && nt.busy[k] >= gr[k]
	nt.busy, nt.spare = newBusy, nt.busy
	nt.busyFull, nt.spareFull = newBusyFull, nt.busyFull
	nt.nominal = res.nominalFinish
	nt.last = id
	return res
}

// reset returns the timeline to its initial (empty) state for a new
// schedule construction, keeping the row backings. The fault budget k
// is baked into the backing sizes, so a timeline is only reusable for
// the same k; callers needing another k build a fresh one.
func (nt *nodeTimeline) reset(mu model.Time, sharing bool) {
	for i := range nt.busy {
		nt.busy[i] = 0
	}
	for i := range nt.busyFull {
		nt.busyFull[i] = 0
	}
	nt.mu = mu
	nt.nominal = 0
	nt.last = NoInst
	nt.sharing = sharing
}

// nominalCursor returns the fault-free completion time of the last
// instance placed on the node (0 when empty).
func (nt *nodeTimeline) nominalCursor() model.Time { return nt.nominal }
