// Package sched implements the fault-tolerant list scheduler of the
// paper's Section 5.1. Given a merged application graph Γ, an
// architecture, a fault model (k, µ), a fault-tolerance policy
// assignment (which folds in the mapping) and a bus-access
// configuration, it builds the static schedule tables for the nodes and
// the MEDL for the TTP bus, together with a worst-case response-time
// analysis covering every distribution of the k transient faults.
//
// The scheduler realizes the paper's transparent re-execution
// ([11]-style recovery with slack sharing): outbound messages are placed
// in the MEDL at the sender's worst-case surviving completion time, so
// faults on one node are never observed by other nodes, and re-execution
// slack on a node is shared among the processes mapped to it.
// Descendants of replicated processes are scheduled at their nominal
// (fault-free) position, with the contingency behaviour (Figure 7 of the
// paper) covered by the worst-case analysis.
package sched

import (
	"fmt"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// Options tune scheduler behaviour; the zero value is NOT the default,
// use DefaultOptions.
type Options struct {
	// SlackSharing enables the shared re-execution slack of [11]
	// (Figure 3b2 of the paper). When disabled, every process reserves
	// its own private worst-case re-execution slack, which is the naive
	// pre-Kandasamy baseline used by the ablation benchmarks.
	SlackSharing bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{SlackSharing: true} }

// Input bundles everything the scheduler needs.
type Input struct {
	Graph      *model.Graph // merged application graph Γ
	Arch       *arch.Architecture
	WCET       *arch.WCET
	Faults     fault.Model
	Assignment policy.Assignment
	Bus        ttp.Config
	Options    Options

	// Static, when non-nil, supplies assignment-independent data
	// precomputed with NewStatic. Optimizers that schedule thousands of
	// assignment variants over the same graph and bus use it to avoid
	// recomputing priorities per call. It also implies that graph, WCET
	// and bus were validated once up front, so Build skips revalidation
	// (assignment-dependent errors are still caught during placement).
	//
	// A non-nil Static additionally licenses concurrent Build calls
	// over the same input: NewStatic freezes the graph's lazy adjacency
	// caches, Static itself is never written after construction, and
	// Build allocates all mutable state (builder, timelines, bus
	// allocator, schedule) per call. Callers must treat Graph, Arch,
	// WCET, Bus and Static as strictly read-only for the duration of
	// any concurrent builds; each concurrent call needs its own
	// Assignment (the built Schedule retains it).
	Static *Static
}

// Static is the assignment-independent part of a scheduling context.
type Static struct {
	prio    map[model.ProcID]model.Time
	edgeIdx map[[2]model.ProcID]int
}

// NewStatic validates the assignment-independent inputs and precomputes
// the priorities and edge index for repeated Build calls.
func NewStatic(in Input) (*Static, error) {
	probe := in
	probe.Static = nil
	probe.Assignment = nil
	if err := probe.validateStatic(); err != nil {
		return nil, err
	}
	// Freeze the graph so concurrent Build calls sharing this Static
	// only ever read it (the lazy adjacency caches are built once here,
	// not under the fan-out).
	in.Graph.Freeze()
	st := &Static{
		prio:    BottomLevels(in),
		edgeIdx: make(map[[2]model.ProcID]int, len(in.Graph.Edges())),
	}
	for i, e := range in.Graph.Edges() {
		st.edgeIdx[[2]model.ProcID{e.Src, e.Dst}] = i
	}
	return st, nil
}

// validateStatic checks the assignment-independent invariants.
func (in Input) validateStatic() error {
	if in.Graph == nil {
		return fmt.Errorf("sched: nil graph")
	}
	if in.Arch == nil || in.WCET == nil {
		return fmt.Errorf("sched: nil architecture or WCET table")
	}
	if err := in.Arch.Validate(); err != nil {
		return err
	}
	if err := in.Faults.Validate(); err != nil {
		return err
	}
	if _, err := in.Graph.TopologicalOrder(); err != nil {
		return err
	}
	if err := in.WCET.Validate(in.Graph, in.Arch); err != nil {
		return err
	}
	return in.Bus.Validate(in.Arch)
}

// Validate checks the consistency of the whole input.
func (in Input) Validate() error {
	if err := in.validateStatic(); err != nil {
		return err
	}
	return in.Assignment.Validate(in.Graph, in.WCET, in.Faults.K)
}
