package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// scratchSystem builds a random layered system for the scratch
// differential tests: procs processes on nodes nodes with random forward
// edges and WCETs, all driven by rng.
func scratchSystem(t *testing.T, rng *rand.Rand, procs, nodes int) (Input, []model.ProcID) {
	t.Helper()
	app := model.NewApplication("scratch")
	g := app.AddGraph("G", model.Ms(100000), model.Ms(100000))
	a := arch.New(nodes)
	w := arch.NewWCET()
	ps := make([]*model.Process, procs)
	for i := range ps {
		ps[i] = app.AddProcess(g, fmt.Sprintf("P%d", i+1))
		for n := 0; n < nodes; n++ {
			w.Set(ps[i].ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(90))))
		}
	}
	for i := 1; i < procs; i++ {
		// Every process gets one random predecessor (connected DAG) plus
		// occasionally a second, distinct one.
		first := rng.Intn(i)
		g.AddEdge(ps[first], ps[i], 1+rng.Intn(4))
		if rng.Intn(3) == 0 && i > 1 {
			if second := rng.Intn(i - 1); second != first {
				g.AddEdge(ps[second], ps[i], 1+rng.Intn(4))
			}
		}
	}
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]model.ProcID, procs)
	for i, p := range ps {
		ids[i] = p.ID
	}
	return Input{
		Graph:  merged,
		Arch:   a,
		WCET:   w,
		Faults: fault.Model{K: 2, Mu: model.Ms(5), Chi: model.Ms(1)},
		Bus:    ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options: Options{
			SlackSharing: true,
		},
	}, ids
}

// randomAssignment draws one valid policy per process, varying replica
// counts so consecutive builds change the instance count (exercising the
// arena resizing paths).
func randomAssignment(rng *rand.Rand, ids []model.ProcID, nodes, k int) policy.Assignment {
	asgn := policy.Assignment{}
	for _, id := range ids {
		switch rng.Intn(4) {
		case 0:
			asgn[id] = policy.Reexecution(arch.NodeID(rng.Intn(nodes)), k)
		case 1:
			asgn[id] = policy.Checkpointed(arch.NodeID(rng.Intn(nodes)), k, 1+rng.Intn(2))
		default:
			perm := rng.Perm(nodes)
			r := 2 + rng.Intn(nodes-1)
			if r > k+1 {
				r = k + 1
			}
			sel := make([]arch.NodeID, r)
			for i := range sel {
				sel[i] = arch.NodeID(perm[i])
			}
			asgn[id] = policy.Distribute(sel, k)
		}
	}
	return asgn
}

// TestBuildIntoMatchesBuild is the bit-identical guarantee of the
// scratch arena: over a stream of random assignments, a single reused
// Scratch must reproduce every analysis number of the allocating Build —
// makespan, tardiness, per-process completions and every per-item field
// including the full survive rows. Only transmission labels may differ
// (scratch builds skip them).
func TestBuildIntoMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, shape := range []struct{ procs, nodes int }{{6, 2}, {10, 3}, {14, 4}} {
		in, ids := scratchSystem(t, rng, shape.procs, shape.nodes)
		st, err := NewStatic(in)
		if err != nil {
			t.Fatal(err)
		}
		in.Static = st
		sc := NewScratch()
		for round := 0; round < 25; round++ {
			in.Assignment = randomAssignment(rng, ids, shape.nodes, in.Faults.K)
			fresh, err := Build(in)
			if err != nil {
				t.Fatalf("Build round %d: %v", round, err)
			}
			reused, err := BuildInto(sc, in)
			if err != nil {
				t.Fatalf("BuildInto round %d: %v", round, err)
			}
			if fresh.Makespan != reused.Makespan || fresh.Tardiness != reused.Tardiness {
				t.Fatalf("round %d: scratch cost (δ=%v tardy=%v) != fresh (δ=%v tardy=%v)",
					round, reused.Makespan, reused.Tardiness, fresh.Makespan, fresh.Tardiness)
			}
			if fresh.Ex.NumInstances() != reused.Ex.NumInstances() {
				t.Fatalf("round %d: instance counts differ", round)
			}
			for i, fit := range fresh.Items() {
				rit := reused.Items()[i]
				if fit.NominalStart != rit.NominalStart || fit.NominalFinish != rit.NominalFinish ||
					fit.WCFinish != rit.WCFinish || fit.SendReady != rit.SendReady ||
					fit.GuaranteedReady != rit.GuaranteedReady || fit.NodePos != rit.NodePos ||
					fit.Bind != rit.Bind || fit.BindOn != rit.BindOn {
					t.Fatalf("round %d item %d: scratch %+v != fresh %+v", round, i, rit, fit)
				}
				for f := 0; f <= in.Faults.K; f++ {
					if fit.WCRow(f) != rit.WCRow(f) {
						t.Fatalf("round %d item %d: survive row differs at f=%d", round, i, f)
					}
				}
				if len(fit.Msgs) != len(rit.Msgs) {
					t.Fatalf("round %d item %d: %d msgs vs %d", round, i, len(rit.Msgs), len(fit.Msgs))
				}
				for idx, ftr := range fit.Msgs {
					rtr := rit.Msgs[idx]
					if ftr.Round != rtr.Round || ftr.Slot != rtr.Slot ||
						ftr.Start != rtr.Start || ftr.Arrival != rtr.Arrival || ftr.Bytes != rtr.Bytes {
						t.Fatalf("round %d item %d msg %d: scratch %v != fresh %v", round, i, idx, rtr, ftr)
					}
				}
			}
			for _, p := range in.Graph.Processes() {
				if fresh.ProcCompletion(p.ID) != reused.ProcCompletion(p.ID) ||
					fresh.ProcNominalCompletion(p.ID) != reused.ProcNominalCompletion(p.ID) {
					t.Fatalf("round %d: completion of %v differs", round, p)
				}
			}
		}
	}
}

// TestBuildIntoSteadyStateAllocs pins the point of the arena: after
// warm-up, a scratch build allocates (nearly) nothing, and in any case
// far less than the allocating Build of the same assignment.
func TestBuildIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in, ids := scratchSystem(t, rng, 12, 3)
	st, err := NewStatic(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Static = st
	in.Assignment = randomAssignment(rng, ids, 3, in.Faults.K)

	sc := NewScratch()
	for i := 0; i < 3; i++ { // warm the arena
		if _, err := BuildInto(sc, in); err != nil {
			t.Fatal(err)
		}
	}
	scratchAllocs := testing.AllocsPerRun(50, func() {
		if _, err := BuildInto(sc, in); err != nil {
			t.Fatal(err)
		}
	})
	freshAllocs := testing.AllocsPerRun(50, func() {
		if _, err := Build(in); err != nil {
			t.Fatal(err)
		}
	})
	if scratchAllocs > freshAllocs/10 {
		t.Errorf("scratch build allocates %.1f/op, fresh %.1f/op — arena not effective", scratchAllocs, freshAllocs)
	}
	t.Logf("allocs/op: scratch %.1f vs fresh %.1f", scratchAllocs, freshAllocs)
}
