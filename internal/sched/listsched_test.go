package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// randomSystem builds a random DAG application with a random valid
// policy assignment for property tests.
func randomSystem(rng *rand.Rand, nProcs, nNodes, k int) (Input, *model.Application) {
	app := model.NewApplication("rand")
	g := app.AddGraph("G", model.Ms(100000), model.Ms(100000))
	procs := make([]*model.Process, nProcs)
	for i := range procs {
		procs[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < nProcs; i++ {
		for j := i + 1; j < nProcs; j++ {
			if rng.Intn(3) == 0 {
				g.AddEdge(procs[i], procs[j], 1+rng.Intn(4))
			}
		}
	}
	a := arch.New(nNodes)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < nNodes; n++ {
			w.Set(p.ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(91))))
		}
	}
	asgn := policy.Assignment{}
	for _, p := range procs {
		r := 1 + rng.Intn(minInt(k+1, nNodes))
		perm := rng.Perm(nNodes)[:r]
		nodes := make([]arch.NodeID, r)
		for i, n := range perm {
			nodes[i] = arch.NodeID(n)
		}
		asgn[p.ID] = policy.Distribute(nodes, k)
	}
	merged, err := app.Merge()
	if err != nil {
		panic(err)
	}
	return Input{
		Graph:      merged,
		Arch:       a,
		WCET:       w,
		Faults:     fault.Model{K: k, Mu: model.Ms(5)},
		Assignment: asgn,
		Bus:        ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options:    DefaultOptions(),
	}, app
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBuildInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, _ := randomSystem(rng, 3+rng.Intn(10), 2+rng.Intn(3), rng.Intn(3))
		s, err := Build(in)
		if err != nil {
			t.Logf("Build: %v", err)
			return false
		}
		return checkScheduleInvariants(t, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// checkScheduleInvariants verifies the structural soundness of a built
// schedule; shared with other test files.
func checkScheduleInvariants(t *testing.T, s *Schedule) bool {
	t.Helper()
	in := s.In
	k := in.Faults.K
	// Per-node tables: positions consistent, nominal windows disjoint.
	for _, n := range in.Arch.Nodes() {
		seq := s.NodeSequence(n.ID)
		var prev *Item
		for pos, it := range seq {
			if it.NodePos != pos {
				t.Logf("node %v: item %v at pos %d has NodePos %d", n, it.Inst, pos, it.NodePos)
				return false
			}
			if it.Inst.Node != n.ID {
				t.Logf("node %v: item %v mapped elsewhere", n, it.Inst)
				return false
			}
			if prev != nil && it.NominalStart < prev.NominalFinish {
				t.Logf("node %v: nominal overlap %v after %v", n, it.Inst, prev.Inst)
				return false
			}
			prev = it
		}
	}
	// Per-item timing invariants.
	for _, it := range s.Items() {
		p := it.Inst.Proc
		if it.NominalStart < p.Release {
			t.Logf("%v nominal start %v before release %v", it.Inst, it.NominalStart, p.Release)
			return false
		}
		if it.NominalFinish != it.NominalStart+it.Inst.ExecTime(in.Faults.Chi) {
			t.Logf("%v nominal window inconsistent", it.Inst)
			return false
		}
		if it.WCFinish < it.NominalFinish {
			t.Logf("%v worst case %v before nominal %v", it.Inst, it.WCFinish, it.NominalFinish)
			return false
		}
		if it.SendReady > it.WCFinish {
			t.Logf("%v send ready %v after wc finish %v", it.Inst, it.SendReady, it.WCFinish)
			return false
		}
		for f := 1; f <= k; f++ {
			if it.WCRow(f) < it.WCRow(f-1) {
				t.Logf("%v wc row not monotone", it.Inst)
				return false
			}
		}
		for _, tr := range it.Msgs {
			if tr.Start < it.SendReady {
				t.Logf("%v message %v before send ready %v", it.Inst, tr, it.SendReady)
				return false
			}
			if in.Bus.Slots[tr.Slot].Node != it.Inst.Node {
				t.Logf("%v message %v in foreign slot", it.Inst, tr)
				return false
			}
		}
	}
	// Nominal precedence: every instance starts after at least one valid
	// nominal input per incoming edge.
	for _, p := range in.Graph.Processes() {
		for _, e := range in.Graph.Predecessors(p.ID) {
			idx := -1
			for i, ge := range in.Graph.Edges() {
				if ge == e {
					idx = i
					break
				}
			}
			for _, d := range s.Ex.Of(p.ID) {
				dit := s.Item(d.ID)
				earliest := model.Infinity
				for _, src := range s.Ex.Of(e.Src) {
					sit := s.Item(src.ID)
					if src.Node == d.Node {
						earliest = model.MinTime(earliest, sit.NominalFinish)
					} else if tr, ok := sit.Msgs[idx]; ok {
						earliest = model.MinTime(earliest, tr.Arrival)
					}
				}
				if dit.NominalStart < earliest {
					t.Logf("%v starts %v before first nominal input %v", d, dit.NominalStart, earliest)
					return false
				}
			}
		}
	}
	// Process completions and makespan.
	var maxDone model.Time
	for _, p := range in.Graph.Processes() {
		done := s.ProcCompletion(p.ID)
		nom := s.ProcNominalCompletion(p.ID)
		if done < nom {
			t.Logf("proc %v guaranteed %v before nominal %v", p, done, nom)
			return false
		}
		maxDone = model.MaxTime(maxDone, done)
	}
	if s.Makespan != maxDone {
		t.Logf("makespan %v != max completion %v", s.Makespan, maxDone)
		return false
	}
	if s.Schedulable() != (len(s.Violations()) == 0) {
		t.Log("Schedulable inconsistent with Violations")
		return false
	}
	// Critical path sanity.
	cp := s.CriticalPath()
	if len(cp) == 0 {
		t.Log("empty critical path")
		return false
	}
	seen := map[model.ProcID]bool{}
	for _, id := range cp {
		if seen[id] {
			t.Log("duplicate origin on critical path")
			return false
		}
		seen[id] = true
	}
	return true
}

func TestBuildDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in, _ := randomSystem(rng, 12, 3, 2)
	s1 := mustBuild(t, in)
	s2 := mustBuild(t, in)
	if s1.Makespan != s2.Makespan || s1.Tardiness != s2.Tardiness {
		t.Fatalf("non-deterministic build: %v/%v vs %v/%v",
			s1.Makespan, s1.Tardiness, s2.Makespan, s2.Tardiness)
	}
	for i := range s1.Items() {
		a, b := s1.Items()[i], s2.Items()[i]
		if a.NominalStart != b.NominalStart || a.WCFinish != b.WCFinish {
			t.Fatalf("item %d differs between builds", i)
		}
	}
	cp1, cp2 := s1.CriticalPath(), s2.CriticalPath()
	if len(cp1) != len(cp2) {
		t.Fatal("critical paths differ between builds")
	}
	for i := range cp1 {
		if cp1[i] != cp2[i] {
			t.Fatal("critical paths differ between builds")
		}
	}
}

func TestBuildNFTDegenerate(t *testing.T) {
	// With k=0 the analysis degenerates: worst case == nominal.
	rng := rand.New(rand.NewSource(7))
	in, _ := randomSystem(rng, 10, 3, 0)
	s := mustBuild(t, in)
	for _, it := range s.Items() {
		if it.WCFinish != it.NominalFinish {
			t.Errorf("%v: k=0 but WCFinish %v != NominalFinish %v", it.Inst, it.WCFinish, it.NominalFinish)
		}
	}
}

func TestBuildRejectsInvalidInput(t *testing.T) {
	s := newSys(t, 2, model.Ms(100), model.Ms(100))
	p := s.proc(t, "P", 10, 10)
	fm := fault.Model{K: 1, Mu: model.Ms(5)}

	t.Run("missing policy", func(t *testing.T) {
		in := s.input(t, fm, policy.Assignment{})
		if _, err := Build(in); err == nil {
			t.Error("Build accepted missing policy")
		}
	})
	t.Run("insufficient redundancy", func(t *testing.T) {
		in := s.input(t, fm, policy.Assignment{p.ID: policy.Reexecution(0, 0)})
		if _, err := Build(in); err == nil {
			t.Error("Build accepted 1 execution for k=1")
		}
	})
	t.Run("bad bus", func(t *testing.T) {
		in := s.input(t, fm, policy.Assignment{p.ID: policy.Reexecution(0, 1)})
		in.Bus.Slots = in.Bus.Slots[:1]
		if _, err := Build(in); err == nil {
			t.Error("Build accepted bus config with missing slot")
		}
	})
	t.Run("negative k", func(t *testing.T) {
		in := s.input(t, fm, policy.Assignment{p.ID: policy.Reexecution(0, 1)})
		in.Faults.K = -1
		if _, err := Build(in); err == nil {
			t.Error("Build accepted negative fault count")
		}
	})
	t.Run("nil graph", func(t *testing.T) {
		in := s.input(t, fm, policy.Assignment{p.ID: policy.Reexecution(0, 1)})
		in.Graph = nil
		if _, err := Build(in); err == nil {
			t.Error("Build accepted nil graph")
		}
	})
}

func TestSlackSharingAblation(t *testing.T) {
	// Slack sharing must never lengthen the schedule, and on a chain of
	// re-executed processes it must strictly shorten it.
	s := newSys(t, 2, model.Ms(10000), model.Ms(10000))
	s.proc(t, "A", 40, 40)
	s.proc(t, "B", 40, 40)
	s.proc(t, "C", 40, 40)
	s.edge(t, "A", "B", 1)
	s.edge(t, "B", "C", 1)
	fm := fault.Model{K: 2, Mu: model.Ms(10)}
	asgn := policy.Assignment{
		s.byName["A"].ID: policy.Reexecution(0, 2),
		s.byName["B"].ID: policy.Reexecution(0, 2),
		s.byName["C"].ID: policy.Reexecution(0, 2),
	}
	in := s.input(t, fm, asgn)
	shared := mustBuild(t, in)
	in2 := in
	in2.Options.SlackSharing = false
	private := mustBuild(t, in2)
	if shared.Makespan >= private.Makespan {
		t.Errorf("shared slack %v should beat private slack %v", shared.Makespan, private.Makespan)
	}
	// Shared: 3·40 + 2·(40+10) = 220; private: 3·(40 + 2·50) = 420.
	if shared.Makespan != model.Ms(220) {
		t.Errorf("shared slack makespan = %v, want 220ms", shared.Makespan)
	}
	if private.Makespan != model.Ms(420) {
		t.Errorf("private slack makespan = %v, want 420ms", private.Makespan)
	}
}

func TestPriorityFunction(t *testing.T) {
	s := newSys(t, 2, model.Ms(10000), model.Ms(10000))
	s.proc(t, "A", 40, 40)
	s.proc(t, "B", 10, 10)
	s.proc(t, "C", 20, 20)
	s.edge(t, "A", "B", 2)
	in := s.input(t, fault.None, policy.Assignment{
		s.byName["A"].ID: policy.Reexecution(0, 0),
		s.byName["B"].ID: policy.Reexecution(0, 0),
		s.byName["C"].ID: policy.Reexecution(0, 0),
	})
	bl := BottomLevels(in)
	aID := s.merged.Processes()[0].ID
	bID := s.merged.Processes()[1].ID
	cID := s.merged.Processes()[2].ID
	// bl(B) = 10, bl(C) = 20, bl(A) = 40 + msgEst(2B) + 10.
	if bl[bID] != model.Ms(10) || bl[cID] != model.Ms(20) {
		t.Errorf("sink bottom levels = %v/%v, want 10/20", bl[bID], bl[cID])
	}
	want := model.Ms(40) + msgEstimate(2, in.Bus) + model.Ms(10)
	if bl[aID] != want {
		t.Errorf("bl(A) = %v, want %v", bl[aID], want)
	}
}
