package sched

import (
	"fmt"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/ttp"
)

// TestExhaustiveTinySystems systematically sweeps small systems: three
// topologies (chain, fork, join) × every policy combination on two
// nodes × k ∈ {1, 2}, building each schedule and checking the full
// invariant suite via ValidateSchedule. This complements the randomized
// property tests with complete coverage of the tiny design space.
func TestExhaustiveTinySystems(t *testing.T) {
	topologies := map[string][][2]int{
		"chain": {{0, 1}, {1, 2}},
		"fork":  {{0, 1}, {0, 2}},
		"join":  {{0, 2}, {1, 2}},
	}
	for name, edges := range topologies {
		for _, k := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				// Policy options per process for this k on 2 nodes.
				var options []policy.Policy
				options = append(options,
					policy.Reexecution(0, k),
					policy.Reexecution(1, k),
					policy.Distribute([]arch.NodeID{0, 1}, k),
					policy.Distribute([]arch.NodeID{1, 0}, k),
					policy.Checkpointed(0, k, 1),
				)
				counted := 0
				forAllCombos(options, 3, func(combo []policy.Policy) {
					counted++
					app := model.NewApplication("tiny")
					g := app.AddGraph("G", model.Ms(5000), model.Ms(5000))
					ps := []*model.Process{
						app.AddProcess(g, "A"),
						app.AddProcess(g, "B"),
						app.AddProcess(g, "C"),
					}
					for _, e := range edges {
						g.AddEdge(ps[e[0]], ps[e[1]], 2)
					}
					a := arch.New(2)
					w := arch.NewWCET()
					for i, p := range ps {
						w.Set(p.ID, 0, model.Ms(int64(20+10*i)))
						w.Set(p.ID, 1, model.Ms(int64(25+10*i)))
					}
					asgn := policy.Assignment{}
					for i, p := range ps {
						asgn[p.ID] = combo[i]
					}
					merged, err := app.Merge()
					if err != nil {
						t.Fatal(err)
					}
					s, err := Build(Input{
						Graph:      merged,
						Arch:       a,
						WCET:       w,
						Faults:     fault.Model{K: k, Mu: model.Ms(7), Chi: model.Ms(2)},
						Assignment: asgn,
						Bus:        ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
						Options:    DefaultOptions(),
					})
					if err != nil {
						t.Fatalf("combo %v: %v", combo, err)
					}
					if err := ValidateSchedule(s); err != nil {
						t.Fatalf("combo %v: %v", combo, err)
					}
				})
				if want := 5 * 5 * 5; counted != want {
					t.Fatalf("swept %d combos, want %d", counted, want)
				}
			})
		}
	}
}

// forAllCombos enumerates every assignment of one option per slot.
func forAllCombos(options []policy.Policy, slots int, visit func([]policy.Policy)) {
	combo := make([]policy.Policy, slots)
	var rec func(int)
	rec = func(i int) {
		if i == slots {
			visit(combo)
			return
		}
		for _, o := range options {
			combo[i] = o
			rec(i + 1)
		}
	}
	rec(0)
}

// TestValidateScheduleCatchesCorruption: the validator must reject
// schedules whose invariants are broken after the fact.
func TestValidateScheduleCatchesCorruption(t *testing.T) {
	s := newSys(t, 2, model.Ms(1000), model.Ms(1000))
	a := s.proc(t, "A", 30, 30)
	b := s.proc(t, "B", 20, 20)
	s.edge(t, "A", "B", 2)
	fm := fault.Model{K: 1, Mu: model.Ms(5)}
	sch := mustBuild(t, s.input(t, fm, policy.Assignment{
		a.ID: policy.Reexecution(0, 1),
		b.ID: policy.Reexecution(0, 1),
	}))
	if err := ValidateSchedule(sch); err != nil {
		t.Fatalf("fresh schedule invalid: %v", err)
	}
	t.Run("nominal window", func(t *testing.T) {
		it := sch.Items()[0]
		saved := it.NominalFinish
		it.NominalFinish += model.Ms(1)
		if err := ValidateSchedule(sch); err == nil {
			t.Error("validator accepted corrupted nominal window")
		}
		it.NominalFinish = saved
	})
	t.Run("makespan", func(t *testing.T) {
		saved := sch.Makespan
		sch.Makespan += model.Ms(1)
		if err := ValidateSchedule(sch); err == nil {
			t.Error("validator accepted corrupted makespan")
		}
		sch.Makespan = saved
	})
	t.Run("wc before nominal", func(t *testing.T) {
		it := sch.Items()[0]
		saved := it.WCFinish
		it.WCFinish = it.NominalFinish - model.Ms(1)
		if err := ValidateSchedule(sch); err == nil {
			t.Error("validator accepted worst case before nominal")
		}
		it.WCFinish = saved
	})
	if err := ValidateSchedule(sch); err != nil {
		t.Fatalf("schedule not restored: %v", err)
	}
}
