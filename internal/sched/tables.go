package sched

import (
	"fmt"
	"strings"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

// The paper's Section 4 lists "the size of the schedule tables" among
// the trade-offs the policy assignment influences: re-execution requires
// contingency schedules on the affected node, replication enlarges the
// tables of other nodes instead. CompileTables makes that cost explicit:
// it derives, per node, the nominal dispatch table plus one contingency
// entry per (instance, recoverable fault count) — the rows the paper's
// kernel switches between when a local fault occurs — and reports the
// resulting table sizes.

// DispatchEntry is one row of a node's dispatch table.
type DispatchEntry struct {
	Inst  *policy.Instance
	Start model.Time
	// Contingency is 0 for the nominal row; f > 0 gives the start used
	// after f local faults have already delayed this node's timeline
	// (the worst-case switch time: the instance may start earlier when
	// the actual delays are smaller, but never later).
	Contingency int
}

// NodeTable is the compiled dispatch table of one node.
type NodeTable struct {
	Node    arch.NodeID
	Entries []DispatchEntry
}

// Rows returns the number of table rows (nominal + contingency).
func (nt NodeTable) Rows() int { return len(nt.Entries) }

// Tables is the compiled schedule-table set of a design.
type Tables struct {
	Nodes []NodeTable
	// MEDLRows is the number of message descriptor entries.
	MEDLRows int
}

// TotalRows returns the total number of dispatch rows over all nodes —
// the memory footprint metric of the design.
func (t Tables) TotalRows() int {
	n := t.MEDLRows
	for _, nt := range t.Nodes {
		n += nt.Rows()
	}
	return n
}

// CompileTables derives the explicit dispatch tables of a synthesized
// schedule: per instance the nominal start plus one contingency row per
// fault count the node may have absorbed before it (bounded by k). Rows
// whose contingency start equals the previous row are deduplicated —
// that is the table-size saving of shared slack.
func CompileTables(s *Schedule) Tables {
	k := s.In.Faults.K
	out := Tables{MEDLRows: len(s.MEDL())}
	for _, n := range s.In.Arch.Nodes() {
		nt := NodeTable{Node: n.ID}
		for _, it := range s.NodeSequence(n.ID) {
			nt.Entries = append(nt.Entries, DispatchEntry{
				Inst:  it.Inst,
				Start: it.NominalStart,
			})
			prev := it.NominalStart
			for f := 1; f <= k; f++ {
				// Worst-case start after f faults on this node: the
				// completion row at budget f minus the fault-free
				// execution of the instance itself.
				start := it.WCRow(f) - it.Inst.ExecTime(s.In.Faults.Chi)
				if start <= prev {
					continue // same row as before: shared slack absorbed it
				}
				nt.Entries = append(nt.Entries, DispatchEntry{
					Inst:        it.Inst,
					Start:       start,
					Contingency: f,
				})
				prev = start
			}
		}
		out.Nodes = append(out.Nodes, nt)
	}
	return out
}

// Format renders the compiled tables.
func (t Tables) Format(s *Schedule) string {
	var b strings.Builder
	for _, nt := range t.Nodes {
		fmt.Fprintf(&b, "node %s: %d rows\n", s.In.Arch.Node(nt.Node).Name, nt.Rows())
		for _, e := range nt.Entries {
			if e.Contingency == 0 {
				fmt.Fprintf(&b, "  %-18s @ %8s\n", e.Inst.Name(), e.Start)
			} else {
				fmt.Fprintf(&b, "  %-18s @ %8s  (contingency after %d fault(s))\n",
					e.Inst.Name(), e.Start, e.Contingency)
			}
		}
	}
	fmt.Fprintf(&b, "MEDL: %d rows\ntotal: %d rows\n", t.MEDLRows, t.TotalRows())
	return b.String()
}
