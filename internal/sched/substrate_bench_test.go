// Micro-benchmarks of the scheduling substrate: the throughput of one
// fault-tolerant list scheduling + worst-case analysis pass, the inner
// loop of the optimization. The experiment-level benchmarks that
// regenerate the paper's tables live at the module root against the
// public ftdse API.
package sched_test

import (
	"fmt"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/gen"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

// schedulerInput builds one representative scheduling input per size for
// the micro-benchmarks: a deterministic mixed policy assignment (every
// third process replicated over min(k+1, nodes) nodes, the rest
// re-executed) on a generated application.
func schedulerInput(b *testing.B, procs, nodes, k int) sched.Input {
	b.Helper()
	prob := gen.Problem(gen.Spec{Procs: procs, Nodes: nodes, Seed: 5},
		fault.Model{K: k, Mu: model.Ms(5)})
	merged, err := prob.App.Merge()
	if err != nil {
		b.Fatal(err)
	}
	asgn := policy.Assignment{}
	for i, p := range prob.App.Processes() {
		if i%3 == 0 {
			r := k + 1
			if nodes < r {
				r = nodes
			}
			replicaNodes := make([]arch.NodeID, r)
			for j := range replicaNodes {
				replicaNodes[j] = arch.NodeID((i + j) % nodes)
			}
			asgn[p.ID] = policy.Distribute(replicaNodes, k)
		} else {
			asgn[p.ID] = policy.Reexecution(arch.NodeID(i%nodes), k)
		}
	}
	in := sched.Input{
		Graph:      merged,
		Arch:       prob.Arch,
		WCET:       prob.WCET,
		Faults:     prob.Faults,
		Assignment: asgn,
		Bus:        ttp.InitialConfig(prob.Arch, merged.MaxMessageBytes(), ttp.DefaultPerByte),
		Options:    sched.DefaultOptions(),
	}
	st, err := sched.NewStatic(in)
	if err != nil {
		b.Fatal(err)
	}
	in.Static = st
	return in
}

// BenchmarkScheduler measures the throughput of one fault-tolerant list
// scheduling + worst-case analysis pass.
func BenchmarkScheduler(b *testing.B) {
	for _, dim := range []struct{ procs, nodes, k int }{
		{20, 2, 3}, {60, 4, 5}, {100, 6, 7},
	} {
		in := schedulerInput(b, dim.procs, dim.nodes, dim.k)
		b.Run(fmt.Sprintf("%dprocs", dim.procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Build(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
