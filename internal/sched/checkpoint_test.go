package sched

import (
	"testing"

	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

// TestCheckpointedAnalysis checks the exact worst-case arithmetic of the
// checkpointing extension: C=40ms, k=2, µ=5ms, χ=1ms with 3 checkpoints
// splits the process into four 10ms segments, so each fault re-executes
// one segment (10+5) instead of the whole process (40+5).
func TestCheckpointedAnalysis(t *testing.T) {
	fm := fault.Model{K: 2, Mu: model.Ms(5), Chi: model.Ms(1)}

	build := func(pol policy.Policy) (*Schedule, *sys) {
		s := newSys(t, 2, model.Ms(1000), model.Ms(1000))
		p := s.proc(t, "P", 40, 40)
		in := s.input(t, fm, policy.Assignment{p.ID: pol})
		return mustBuild(t, in), s
	}

	t.Run("plain re-execution", func(t *testing.T) {
		sch, s := build(policy.Reexecution(0, 2))
		// 40 + 2·(40+5) = 130.
		if got := sch.ProcCompletion(s.mergedID(t, "P")); got != model.Ms(130) {
			t.Errorf("completion = %v, want 130ms", got)
		}
	})
	t.Run("checkpointed", func(t *testing.T) {
		sch, s := build(policy.Checkpointed(0, 2, 3))
		// Execution 40 + 3·1 = 43, recovery per fault 10+5 = 15:
		// 43 + 2·15 = 73.
		if got := sch.ProcCompletion(s.mergedID(t, "P")); got != model.Ms(73) {
			t.Errorf("completion = %v, want 73ms", got)
		}
		it := itemOf(t, sch, s, "P", 0)
		if it.NominalFinish != model.Ms(43) {
			t.Errorf("nominal finish = %v, want 43ms (checkpoint overhead included)", it.NominalFinish)
		}
	})
	t.Run("checkpoint overhead can outweigh savings", func(t *testing.T) {
		// With a huge χ the checkpointed variant loses.
		heavy := fault.Model{K: 1, Mu: model.Ms(5), Chi: model.Ms(30)}
		s := newSys(t, 2, model.Ms(1000), model.Ms(1000))
		p := s.proc(t, "P", 40, 40)
		in := s.input(t, heavy, policy.Assignment{p.ID: policy.Checkpointed(0, 1, 2)})
		sch := mustBuild(t, in)
		// b = 40 + 2·30 = 100ms, seg = ⌈40000µs/3⌉ = 13334µs,
		// d = 18334µs: 100ms + 18.334ms vs plain 40 + 45 = 85ms.
		if got := sch.ProcCompletion(s.mergedID(t, "P")); got != model.Us(118_334) {
			t.Errorf("completion = %v, want 118.334ms", got)
		}
	})
}

// TestCheckpointedSlackSharing: checkpointed processes share slack like
// re-executed ones; the recovery term uses each instance's own d.
func TestCheckpointedSlackSharing(t *testing.T) {
	fm := fault.Model{K: 1, Mu: model.Ms(5), Chi: model.Ms(1)}
	s := newSys(t, 1, model.Ms(1000), model.Ms(1000))
	a := s.proc(t, "A", 40)
	b := s.proc(t, "B", 60)
	s.edge(t, "A", "B", 1)
	in := s.input(t, fm, policy.Assignment{
		a.ID: policy.Checkpointed(0, 1, 1), // segments of 20, d = 25
		b.ID: policy.Checkpointed(0, 1, 2), // segments of 20, d = 25
	})
	sch := mustBuild(t, in)
	// Nominal: A = 41, B = 41+62 = 103. One fault: the worst single
	// fault adds max(d_A, d_B) = 25 → 128.
	if got := sch.ProcCompletion(s.mergedID(t, "B")); got != model.Ms(128) {
		t.Errorf("B completion = %v, want 128ms (shared checkpointed slack)", got)
	}
}

// TestCheckpointedTransmission: the transparent send time of a
// checkpointed sender covers segment recoveries only.
func TestCheckpointedTransmission(t *testing.T) {
	fm := fault.Model{K: 1, Mu: model.Ms(5), Chi: model.Ms(1)}
	s := newSys(t, 2, model.Ms(1000), model.Ms(1000))
	a := s.proc(t, "A", 40, 40)
	b := s.proc(t, "B", 20, 20)
	s.edge(t, "A", "B", 4)
	in := s.input(t, fm, policy.Assignment{
		a.ID: policy.Checkpointed(0, 1, 3), // b = 43, d = 15
		b.ID: policy.Reexecution(1, 1),
	})
	sch := mustBuild(t, in)
	it := itemOf(t, sch, s, "A", 0)
	if it.SendReady != model.Ms(58) {
		t.Errorf("send ready = %v, want 58ms (43 + one segment recovery)", it.SendReady)
	}
}
