package model

import "fmt"

// Merge combines all graphs of the application into the single merged
// graph Γ used for scheduling and optimization (Section 5.1 of the
// paper). The merged graph's period is the hyper-period (LCM of all
// graph periods); each graph Gi is instantiated LCM/Ti times with its
// j-th instance released at j·Ti.
//
// Deadlines are folded into the instantiated processes: a process copy
// inherits the tighter of its individual deadline and its graph-instance
// deadline, both expressed as absolute times within the hyper-period.
// Process copies carry Origin (the source ProcID) and Instance (the
// hyper-period instance index), so WCET tables, mappings and policies of
// the source application apply to every copy.
func (a *Application) Merge() (*Graph, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	hp := a.HyperPeriod()
	merged := NewGraph(a.Name+"/merged", hp, hp)

	var next ProcID
	for _, g := range a.graphs {
		n := int(hp / g.Period)
		if Time(n)*g.Period != hp {
			return nil, fmt.Errorf("model: period %v of graph %q does not divide hyper-period %v", g.Period, g.Name, hp)
		}
		for inst := 0; inst < n; inst++ {
			offset := Time(inst) * g.Period
			idMap := make(map[ProcID]ProcID, g.NumProcesses())
			for _, p := range g.Processes() {
				dl := Time(0)
				if g.Deadline > 0 {
					dl = offset + g.Deadline
				}
				if p.Deadline > 0 {
					pd := offset + p.Deadline
					if dl <= 0 || pd < dl {
						dl = pd
					}
				}
				cp := &Process{
					ID:       next,
					Name:     instanceName(p.Name, inst, n),
					Release:  offset + p.Release,
					Deadline: dl,
					Origin:   p.ID,
					Instance: inst,
				}
				idMap[p.ID] = next
				next++
				merged.addProcess(cp)
			}
			for _, e := range g.Edges() {
				merged.edges = append(merged.edges, Edge{
					Src:   idMap[e.Src],
					Dst:   idMap[e.Dst],
					Bytes: e.Bytes,
				})
			}
		}
	}
	merged.invalidate()
	if _, err := merged.TopologicalOrder(); err != nil {
		return nil, err
	}
	return merged, nil
}

func instanceName(base string, inst, total int) string {
	if total == 1 {
		return base
	}
	return fmt.Sprintf("%s[%d]", base, inst)
}
