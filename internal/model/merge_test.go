package model

import (
	"testing"
	"testing/quick"
)

func TestHyperPeriod(t *testing.T) {
	app := NewApplication("hp")
	g1 := app.AddGraph("G1", Ms(20), Ms(20))
	g2 := app.AddGraph("G2", Ms(30), Ms(30))
	app.AddProcess(g1, "A")
	app.AddProcess(g2, "B")
	if hp := app.HyperPeriod(); hp != Ms(60) {
		t.Fatalf("HyperPeriod = %v, want 60ms", hp)
	}
}

func TestMergeSingleGraphIsCopy(t *testing.T) {
	app, g, _ := buildDiamond(t)
	merged, err := app.Merge()
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if merged.NumProcesses() != g.NumProcesses() {
		t.Fatalf("merged has %d processes, want %d", merged.NumProcesses(), g.NumProcesses())
	}
	if len(merged.Edges()) != len(g.Edges()) {
		t.Fatalf("merged has %d edges, want %d", len(merged.Edges()), len(g.Edges()))
	}
	for i, p := range merged.Processes() {
		orig := g.Processes()[i]
		if p.Origin != orig.ID {
			t.Errorf("process %d origin = %d, want %d", i, p.Origin, orig.ID)
		}
		if p.Instance != 0 {
			t.Errorf("process %d instance = %d, want 0", i, p.Instance)
		}
		if p.Deadline != Ms(100) {
			t.Errorf("process %d deadline = %v, want graph deadline 100ms", i, p.Deadline)
		}
	}
}

func TestMergeMultiRate(t *testing.T) {
	app := NewApplication("mr")
	g1 := app.AddGraph("fast", Ms(20), Ms(15))
	g2 := app.AddGraph("slow", Ms(60), Ms(60))
	a := app.AddProcess(g1, "A")
	b := app.AddProcess(g1, "B")
	g1.AddEdge(a, b, 1)
	c := app.AddProcess(g2, "C")
	_ = c
	merged, err := app.Merge()
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// fast graph has 3 instances (2 procs each), slow has 1 instance.
	if merged.NumProcesses() != 3*2+1 {
		t.Fatalf("merged has %d processes, want 7", merged.NumProcesses())
	}
	if len(merged.Edges()) != 3 {
		t.Fatalf("merged has %d edges, want 3", len(merged.Edges()))
	}
	if merged.Period != Ms(60) {
		t.Fatalf("merged period = %v, want 60ms", merged.Period)
	}
	// check releases and deadlines of the fast instances
	var fast []*Process
	for _, p := range merged.Processes() {
		if p.Origin == a.ID {
			fast = append(fast, p)
		}
	}
	if len(fast) != 3 {
		t.Fatalf("found %d instances of A, want 3", len(fast))
	}
	for j, p := range fast {
		wantRel := Ms(int64(20 * j))
		wantDl := Ms(int64(20*j + 15))
		if p.Release != wantRel {
			t.Errorf("A[%d] release = %v, want %v", j, p.Release, wantRel)
		}
		if p.Deadline != wantDl {
			t.Errorf("A[%d] deadline = %v, want %v", j, p.Deadline, wantDl)
		}
		if p.Instance != j {
			t.Errorf("A[%d] instance = %d", j, p.Instance)
		}
	}
	if err := checkAcyclicNaming(merged); err != nil {
		t.Error(err)
	}
}

func checkAcyclicNaming(g *Graph) error {
	_, err := g.TopologicalOrder()
	return err
}

func TestMergeFoldsIndividualDeadlines(t *testing.T) {
	app := NewApplication("dl")
	g := app.AddGraph("G", Ms(100), Ms(90))
	p := app.AddProcess(g, "P")
	p.Deadline = Ms(50)
	q := app.AddProcess(g, "Q")
	g.AddEdge(p, q, 1)
	merged, err := app.Merge()
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	procs := merged.Processes()
	if procs[0].Deadline != Ms(50) {
		t.Errorf("P deadline = %v, want 50ms (tighter individual deadline)", procs[0].Deadline)
	}
	if procs[1].Deadline != Ms(90) {
		t.Errorf("Q deadline = %v, want 90ms (graph deadline)", procs[1].Deadline)
	}
}

// Property: the merged graph always has Σ (HP/Ti)·|Vi| processes and is
// acyclic, for arbitrary divisor-friendly period combinations.
func TestMergeSizeProperty(t *testing.T) {
	periods := []Time{Ms(10), Ms(20), Ms(30), Ms(60)}
	f := func(sel []uint8) bool {
		if len(sel) == 0 || len(sel) > 5 {
			return true // skip degenerate shapes
		}
		app := NewApplication("prop")
		want := 0
		hp := Time(1)
		var chosen []Time
		for _, s := range sel {
			chosen = append(chosen, periods[int(s)%len(periods)])
		}
		for _, p := range chosen {
			hp = lcmTime(hp, p)
		}
		for i, p := range chosen {
			g := app.AddGraph("G", p, p)
			a := app.AddProcess(g, "A")
			b := app.AddProcess(g, "B")
			g.AddEdge(a, b, 1)
			want += int(hp/p) * 2
			_ = i
		}
		merged, err := app.Merge()
		if err != nil {
			return false
		}
		if merged.NumProcesses() != want {
			return false
		}
		_, err = merged.TopologicalOrder()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
