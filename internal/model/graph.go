package model

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is one directed, acyclic process graph G(V, E) of an application.
// All processes and messages of a graph share the graph's period; a
// deadline D <= T is imposed on the completion of the whole graph.
type Graph struct {
	Name     string
	Period   Time
	Deadline Time // <= 0 means no graph deadline

	procs []*Process
	edges []Edge

	// adjacency caches, rebuilt lazily after mutation
	succs map[ProcID][]Edge
	preds map[ProcID][]Edge
	byID  map[ProcID]*Process
}

// NewGraph returns an empty graph with the given period and deadline.
// Processes must be added through an Application so that IDs stay unique
// application-wide; see Application.AddGraph and Graph.addProcess.
func NewGraph(name string, period, deadline Time) *Graph {
	return &Graph{Name: name, Period: period, Deadline: deadline}
}

// addProcess appends p; used by Application which owns ID allocation.
func (g *Graph) addProcess(p *Process) *Process {
	g.procs = append(g.procs, p)
	g.invalidate()
	return p
}

// AddEdge adds a data dependency from src to dst carrying bytes of
// message payload. Both processes must belong to this graph.
func (g *Graph) AddEdge(src, dst *Process, bytes int) Edge {
	if src == nil || dst == nil {
		panic("model: AddEdge with nil process")
	}
	e := Edge{Src: src.ID, Dst: dst.ID, Bytes: bytes}
	g.edges = append(g.edges, e)
	g.invalidate()
	return e
}

func (g *Graph) invalidate() {
	g.succs = nil
	g.preds = nil
	g.byID = nil
}

// Freeze eagerly builds the adjacency caches so that subsequent
// read-only accessors (Process, Successors, Predecessors, Sources,
// Sinks, …) never mutate the graph. Callers that share a graph across
// goroutines — such as concurrent schedule builds over the same merged
// graph — must call Freeze (or any cache-building accessor) before the
// fan-out and must not add processes or edges afterwards.
func (g *Graph) Freeze() {
	g.buildAdjacency()
}

// Processes returns the processes of the graph in creation order.
// The returned slice must not be modified.
func (g *Graph) Processes() []*Process { return g.procs }

// Edges returns the edges of the graph in creation order.
// The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// NumProcesses returns |V|.
func (g *Graph) NumProcesses() int { return len(g.procs) }

// Process returns the process with the given ID, or nil if it does not
// belong to this graph.
func (g *Graph) Process(id ProcID) *Process {
	g.buildAdjacency()
	return g.byID[id]
}

func (g *Graph) buildAdjacency() {
	if g.succs != nil {
		return
	}
	g.succs = make(map[ProcID][]Edge, len(g.procs))
	g.preds = make(map[ProcID][]Edge, len(g.procs))
	g.byID = make(map[ProcID]*Process, len(g.procs))
	for _, p := range g.procs {
		g.byID[p.ID] = p
	}
	for _, e := range g.edges {
		g.succs[e.Src] = append(g.succs[e.Src], e)
		g.preds[e.Dst] = append(g.preds[e.Dst], e)
	}
}

// Successors returns the outgoing edges of p.
func (g *Graph) Successors(p ProcID) []Edge {
	g.buildAdjacency()
	return g.succs[p]
}

// Predecessors returns the incoming edges of p.
func (g *Graph) Predecessors(p ProcID) []Edge {
	g.buildAdjacency()
	return g.preds[p]
}

// Sources returns the processes without predecessors, ordered by ID.
func (g *Graph) Sources() []*Process {
	g.buildAdjacency()
	var out []*Process
	for _, p := range g.procs {
		if len(g.preds[p.ID]) == 0 {
			out = append(out, p)
		}
	}
	sortProcs(out)
	return out
}

// Sinks returns the processes without successors, ordered by ID.
func (g *Graph) Sinks() []*Process {
	g.buildAdjacency()
	var out []*Process
	for _, p := range g.procs {
		if len(g.succs[p.ID]) == 0 {
			out = append(out, p)
		}
	}
	sortProcs(out)
	return out
}

func sortProcs(ps []*Process) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}

// TopologicalOrder returns the processes in a deterministic topological
// order (Kahn's algorithm with smallest-ID-first tie breaking). It
// returns an error if the graph contains a cycle.
func (g *Graph) TopologicalOrder() ([]*Process, error) {
	g.buildAdjacency()
	indeg := make(map[ProcID]int, len(g.procs))
	byID := make(map[ProcID]*Process, len(g.procs))
	for _, p := range g.procs {
		indeg[p.ID] = len(g.preds[p.ID])
		byID[p.ID] = p
	}
	var ready []ProcID
	for _, p := range g.procs {
		if indeg[p.ID] == 0 {
			ready = append(ready, p.ID)
		}
	}
	var order []*Process
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, byID[id])
		for _, e := range g.succs[id] {
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				ready = append(ready, e.Dst)
			}
		}
	}
	if len(order) != len(g.procs) {
		return nil, fmt.Errorf("model: graph %q contains a cycle", g.Name)
	}
	return order, nil
}

// Validate checks the structural invariants of the graph: positive
// period, deadline within the period, edges connecting existing
// processes, no self-loops, no duplicate edges, and acyclicity.
func (g *Graph) Validate() error {
	if g.Period <= 0 {
		return fmt.Errorf("model: graph %q has non-positive period %v", g.Name, g.Period)
	}
	if g.Deadline > g.Period {
		return fmt.Errorf("model: graph %q deadline %v exceeds period %v", g.Name, g.Deadline, g.Period)
	}
	if len(g.procs) == 0 {
		return fmt.Errorf("model: graph %q has no processes", g.Name)
	}
	ids := make(map[ProcID]bool, len(g.procs))
	for _, p := range g.procs {
		if ids[p.ID] {
			return fmt.Errorf("model: graph %q has duplicate process id %d", g.Name, p.ID)
		}
		ids[p.ID] = true
		if p.Release < 0 {
			return fmt.Errorf("model: process %s has negative release time", p)
		}
		if p.Deadline > 0 && p.Deadline < p.Release {
			return fmt.Errorf("model: process %s has deadline before release", p)
		}
	}
	seen := make(map[[2]ProcID]bool, len(g.edges))
	for _, e := range g.edges {
		if !ids[e.Src] || !ids[e.Dst] {
			return fmt.Errorf("model: graph %q edge %v references unknown process", g.Name, e)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("model: graph %q has self-loop on process %d", g.Name, e.Src)
		}
		if e.Bytes <= 0 {
			return fmt.Errorf("model: graph %q edge %v has non-positive size", g.Name, e)
		}
		key := [2]ProcID{e.Src, e.Dst}
		if seen[key] {
			return fmt.Errorf("model: graph %q has duplicate edge %v", g.Name, e)
		}
		seen[key] = true
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// MaxMessageBytes returns the size of the largest message in the graph,
// or 0 when the graph has no edges. The initial bus-access configuration
// sets the slot length to this value (Section 5, step 1 of the paper).
func (g *Graph) MaxMessageBytes() int {
	maxB := 0
	for _, e := range g.edges {
		if e.Bytes > maxB {
			maxB = e.Bytes
		}
	}
	return maxB
}

// ErrNotDAG is returned by validation helpers when a cycle is detected.
var ErrNotDAG = errors.New("model: graph is not acyclic")
