package model

import "fmt"

// ProcID identifies a process uniquely within an Application (and within
// the merged graph derived from it). IDs are dense, starting at 0, in
// creation order.
type ProcID int

// NoProc is the zero-value sentinel for "no process".
const NoProc ProcID = -1

// Process is one vertex of a process graph. A process is activated after
// all of its inputs have arrived and issues its outputs when it
// terminates (Section 3 of the paper). Worst-case execution times are
// architecture-dependent and therefore live in the arch package's WCET
// table, not here.
type Process struct {
	ID   ProcID
	Name string

	// Release is the earliest activation time relative to the start of
	// the period instance (0 = released immediately).
	Release Time

	// Deadline is the absolute latest completion time relative to the
	// start of the period instance. Deadline <= 0 means the process has
	// no individual deadline (the graph deadline still applies).
	Deadline Time

	// Origin identifies, for a process instance inside a merged graph,
	// the process of the source application it was instantiated from.
	// For processes of an un-merged application, Origin == ID.
	Origin ProcID

	// Instance is the hyper-period instance index (0-based) for merged
	// graphs; 0 for un-merged applications.
	Instance int
}

func (p *Process) String() string {
	if p == nil {
		return "<nil process>"
	}
	return fmt.Sprintf("%s(#%d)", p.Name, p.ID)
}

// Edge is a directed data dependency between two processes. When source
// and destination are mapped to different nodes the edge becomes a
// message of Bytes bytes on the bus; when they share a node the
// communication time is part of the sender's WCET and the edge only
// imposes precedence (Section 3 of the paper).
type Edge struct {
	Src, Dst ProcID
	// Bytes is the message payload size used for bus scheduling.
	Bytes int
}

func (e Edge) String() string {
	return fmt.Sprintf("e(%d->%d,%dB)", e.Src, e.Dst, e.Bytes)
}
