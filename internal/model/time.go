// Package model defines the application model of the fault-tolerant
// design-optimization framework: directed, acyclic, polar process graphs
// with message-passing edges, periods, deadlines and release times, plus
// the hyper-period merge that combines all graphs of an application into
// the single merged graph Γ used by the scheduler and the optimizer.
//
// The model follows Section 3 of Izosimov et al., "Design Optimization of
// Time- and Cost-Constrained Fault-Tolerant Distributed Embedded Systems"
// (DATE 2005).
package model

import "fmt"

// Time is a point or duration on the discrete global time line.
// The unit is one microsecond; all paper values (given in milliseconds)
// are exact multiples. Using integers keeps the scheduler and the
// worst-case analysis free of rounding artefacts.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond

	// Infinity is a sentinel larger than any schedulable horizon.
	// Arithmetic on Infinity is not meaningful; compare only.
	Infinity Time = 1<<62 - 1
)

// Ms converts a duration expressed in milliseconds to a Time.
func Ms(ms int64) Time { return Time(ms) * Millisecond }

// Us converts a duration expressed in microseconds to a Time.
func Us(us int64) Time { return Time(us) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time in milliseconds, trimming trailing zeros,
// e.g. "40ms" or "12.5ms".
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	if t%Millisecond == 0 {
		return fmt.Sprintf("%dms", int64(t/Millisecond))
	}
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
