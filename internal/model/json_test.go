package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	app, _, _ := buildDiamond(t)
	var buf bytes.Buffer
	if err := app.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.Name != app.Name {
		t.Errorf("name = %q, want %q", back.Name, app.Name)
	}
	if back.NumProcesses() != app.NumProcesses() {
		t.Errorf("processes = %d, want %d", back.NumProcesses(), app.NumProcesses())
	}
	bg := back.Graphs()[0]
	ag := app.Graphs()[0]
	if bg.Period != ag.Period || bg.Deadline != ag.Deadline {
		t.Errorf("graph timing mismatch: %v/%v vs %v/%v", bg.Period, bg.Deadline, ag.Period, ag.Deadline)
	}
	if len(bg.Edges()) != len(ag.Edges()) {
		t.Fatalf("edges = %d, want %d", len(bg.Edges()), len(ag.Edges()))
	}
	for i, e := range bg.Edges() {
		if e.Bytes != ag.Edges()[i].Bytes {
			t.Errorf("edge %d bytes = %d, want %d", i, e.Bytes, ag.Edges()[i].Bytes)
		}
	}
}

func TestJSONFractionalMs(t *testing.T) {
	const doc = `{
	  "name": "frac",
	  "graphs": [{
	    "name": "G", "period_ms": 10.5,
	    "processes": [{"name": "P", "release_ms": 0.25}],
	    "edges": []
	  }]
	}`
	app, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	g := app.Graphs()[0]
	if g.Period != Us(10500) {
		t.Errorf("period = %v, want 10.5ms", g.Period)
	}
	if g.Processes()[0].Release != Us(250) {
		t.Errorf("release = %v, want 0.25ms", g.Processes()[0].Release)
	}
}

func TestJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad edge ref": `{"name":"x","graphs":[{"name":"G","period_ms":10,
			"processes":[{"name":"P"}],
			"edges":[{"src":"P","dst":"Q","bytes":1}]}]}`,
		"duplicate name": `{"name":"x","graphs":[{"name":"G","period_ms":10,
			"processes":[{"name":"P"},{"name":"P"}],"edges":[]}]}`,
		"unknown field": `{"name":"x","bogus":1,"graphs":[]}`,
		"cycle": `{"name":"x","graphs":[{"name":"G","period_ms":10,
			"processes":[{"name":"P"},{"name":"Q"}],
			"edges":[{"src":"P","dst":"Q","bytes":1},{"src":"Q","dst":"P","bytes":1}]}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadJSON accepted invalid document", name)
		}
	}
}
