package model

import (
	"fmt"
	"sort"
)

// Application is a set of process graphs. Process IDs are unique across
// the whole application, which lets WCET tables, mappings and policy
// assignments be keyed by ProcID regardless of the owning graph.
type Application struct {
	Name   string
	graphs []*Graph
	nextID ProcID
}

// NewApplication returns an empty application.
func NewApplication(name string) *Application {
	return &Application{Name: name}
}

// AddGraph creates a new process graph with the given period and
// deadline and attaches it to the application.
func (a *Application) AddGraph(name string, period, deadline Time) *Graph {
	g := NewGraph(name, period, deadline)
	a.graphs = append(a.graphs, g)
	return g
}

// AddProcess creates a new process in graph g with an application-unique
// ID. The graph must belong to this application.
func (a *Application) AddProcess(g *Graph, name string) *Process {
	if !a.owns(g) {
		panic("model: AddProcess on a graph not owned by the application")
	}
	p := &Process{ID: a.nextID, Name: name, Origin: a.nextID}
	a.nextID++
	return g.addProcess(p)
}

func (a *Application) owns(g *Graph) bool {
	for _, og := range a.graphs {
		if og == g {
			return true
		}
	}
	return false
}

// Graphs returns the graphs of the application in creation order.
func (a *Application) Graphs() []*Graph { return a.graphs }

// NumProcesses returns the total number of processes over all graphs.
func (a *Application) NumProcesses() int {
	n := 0
	for _, g := range a.graphs {
		n += g.NumProcesses()
	}
	return n
}

// Processes returns all processes of the application ordered by ID.
func (a *Application) Processes() []*Process {
	var out []*Process
	for _, g := range a.graphs {
		out = append(out, g.Processes()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Process returns the process with the given ID or nil.
func (a *Application) Process(id ProcID) *Process {
	for _, g := range a.graphs {
		if p := g.Process(id); p != nil {
			return p
		}
	}
	return nil
}

// GraphOf returns the graph owning the given process, or nil.
func (a *Application) GraphOf(id ProcID) *Graph {
	for _, g := range a.graphs {
		if g.Process(id) != nil {
			return g
		}
	}
	return nil
}

// Validate checks every graph and the cross-graph ID uniqueness.
func (a *Application) Validate() error {
	if len(a.graphs) == 0 {
		return fmt.Errorf("model: application %q has no graphs", a.Name)
	}
	seen := make(map[ProcID]bool)
	for _, g := range a.graphs {
		if err := g.Validate(); err != nil {
			return err
		}
		for _, p := range g.Processes() {
			if seen[p.ID] {
				return fmt.Errorf("model: duplicate process id %d across graphs", p.ID)
			}
			seen[p.ID] = true
		}
	}
	return nil
}

// HyperPeriod returns the least common multiple of all graph periods.
func (a *Application) HyperPeriod() Time {
	lcm := Time(1)
	for _, g := range a.graphs {
		lcm = lcmTime(lcm, g.Period)
	}
	return lcm
}

func gcdTime(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcmTime(a, b Time) Time {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcdTime(a, b) * b
}
