package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T) (*Application, *Graph, []*Process) {
	t.Helper()
	app := NewApplication("diamond")
	g := app.AddGraph("G", Ms(100), Ms(100))
	p1 := app.AddProcess(g, "P1")
	p2 := app.AddProcess(g, "P2")
	p3 := app.AddProcess(g, "P3")
	p4 := app.AddProcess(g, "P4")
	g.AddEdge(p1, p2, 1)
	g.AddEdge(p1, p3, 2)
	g.AddEdge(p2, p4, 3)
	g.AddEdge(p3, p4, 4)
	return app, g, []*Process{p1, p2, p3, p4}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{Ms(40), "40ms"},
		{Us(12500), "12.500ms"},
		{0, "0ms"},
		{Infinity, "inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestGraphBasics(t *testing.T) {
	app, g, ps := buildDiamond(t)
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n := g.NumProcesses(); n != 4 {
		t.Fatalf("NumProcesses = %d, want 4", n)
	}
	if got := len(g.Successors(ps[0].ID)); got != 2 {
		t.Errorf("P1 successors = %d, want 2", got)
	}
	if got := len(g.Predecessors(ps[3].ID)); got != 2 {
		t.Errorf("P4 predecessors = %d, want 2", got)
	}
	src := g.Sources()
	if len(src) != 1 || src[0] != ps[0] {
		t.Errorf("Sources = %v, want [P1]", src)
	}
	snk := g.Sinks()
	if len(snk) != 1 || snk[0] != ps[3] {
		t.Errorf("Sinks = %v, want [P4]", snk)
	}
	if g.MaxMessageBytes() != 4 {
		t.Errorf("MaxMessageBytes = %d, want 4", g.MaxMessageBytes())
	}
}

func TestTopologicalOrder(t *testing.T) {
	_, g, ps := buildDiamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatalf("TopologicalOrder: %v", err)
	}
	pos := make(map[ProcID]int)
	for i, p := range order {
		pos[p.ID] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Src] >= pos[e.Dst] {
			t.Errorf("edge %v violates topological order", e)
		}
	}
	_ = ps
}

func TestCycleDetection(t *testing.T) {
	app := NewApplication("cyclic")
	g := app.AddGraph("G", Ms(10), Ms(10))
	a := app.AddProcess(g, "A")
	b := app.AddProcess(g, "B")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a cyclic graph")
	}
	if _, err := g.TopologicalOrder(); err == nil {
		t.Fatal("TopologicalOrder accepted a cyclic graph")
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("non-positive period", func(t *testing.T) {
		app := NewApplication("x")
		g := app.AddGraph("G", 0, 0)
		app.AddProcess(g, "P")
		if err := g.Validate(); err == nil {
			t.Fatal("accepted zero period")
		}
	})
	t.Run("deadline exceeds period", func(t *testing.T) {
		app := NewApplication("x")
		g := app.AddGraph("G", Ms(10), Ms(20))
		app.AddProcess(g, "P")
		if err := g.Validate(); err == nil {
			t.Fatal("accepted deadline > period")
		}
	})
	t.Run("empty graph", func(t *testing.T) {
		app := NewApplication("x")
		g := app.AddGraph("G", Ms(10), Ms(10))
		if err := g.Validate(); err == nil {
			t.Fatal("accepted empty graph")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		app := NewApplication("x")
		g := app.AddGraph("G", Ms(10), Ms(10))
		p := app.AddProcess(g, "P")
		g.AddEdge(p, p, 1)
		if err := g.Validate(); err == nil {
			t.Fatal("accepted self loop")
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		app := NewApplication("x")
		g := app.AddGraph("G", Ms(10), Ms(10))
		p := app.AddProcess(g, "P")
		q := app.AddProcess(g, "Q")
		g.AddEdge(p, q, 1)
		g.AddEdge(p, q, 2)
		if err := g.Validate(); err == nil {
			t.Fatal("accepted duplicate edge")
		}
	})
	t.Run("zero byte message", func(t *testing.T) {
		app := NewApplication("x")
		g := app.AddGraph("G", Ms(10), Ms(10))
		p := app.AddProcess(g, "P")
		q := app.AddProcess(g, "Q")
		g.AddEdge(p, q, 0)
		if err := g.Validate(); err == nil {
			t.Fatal("accepted zero-byte message")
		}
	})
}

// randomDAG builds a random acyclic graph by only adding forward edges
// over a random permutation.
func randomDAG(rng *rand.Rand, n int) (*Application, *Graph) {
	app := NewApplication("rand")
	g := app.AddGraph("G", Ms(1000), Ms(1000))
	ps := make([]*Process, n)
	for i := range ps {
		ps[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				g.AddEdge(ps[i], ps[j], 1+rng.Intn(4))
			}
		}
	}
	return app, g
}

func TestTopologicalOrderProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 1
		rng := rand.New(rand.NewSource(seed))
		_, g := randomDAG(rng, n)
		order, err := g.TopologicalOrder()
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		pos := make(map[ProcID]int)
		for i, p := range order {
			pos[p.ID] = i
		}
		for _, e := range g.Edges() {
			if pos[e.Src] >= pos[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinTime(t *testing.T) {
	if MaxTime(Ms(3), Ms(5)) != Ms(5) || MaxTime(Ms(5), Ms(3)) != Ms(5) {
		t.Error("MaxTime wrong")
	}
	if MinTime(Ms(3), Ms(5)) != Ms(3) || MinTime(Ms(5), Ms(3)) != Ms(3) {
		t.Error("MinTime wrong")
	}
}
