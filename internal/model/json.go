package model

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// The JSON schema references processes by name within their graph, which
// keeps files human-editable; IDs are (re)assigned on load. All times are
// given in milliseconds and may be fractional down to one microsecond.

type appJSON struct {
	Name   string      `json:"name"`
	Graphs []graphJSON `json:"graphs"`
}

type graphJSON struct {
	Name       string     `json:"name"`
	PeriodMs   float64    `json:"period_ms"`
	DeadlineMs float64    `json:"deadline_ms,omitempty"`
	Processes  []procJSON `json:"processes"`
	Edges      []edgeJSON `json:"edges"`
}

type procJSON struct {
	Name       string  `json:"name"`
	ReleaseMs  float64 `json:"release_ms,omitempty"`
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

type edgeJSON struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Bytes int    `json:"bytes"`
}

func msToTime(ms float64) Time {
	return Time(math.Round(ms * float64(Millisecond)))
}

// WriteJSON serializes the application to w.
func (a *Application) WriteJSON(w io.Writer) error {
	out := appJSON{Name: a.Name}
	for _, g := range a.graphs {
		gj := graphJSON{
			Name:       g.Name,
			PeriodMs:   g.Period.Milliseconds(),
			DeadlineMs: g.Deadline.Milliseconds(),
		}
		for _, p := range g.Processes() {
			gj.Processes = append(gj.Processes, procJSON{
				Name:       p.Name,
				ReleaseMs:  p.Release.Milliseconds(),
				DeadlineMs: p.Deadline.Milliseconds(),
			})
		}
		for _, e := range g.Edges() {
			gj.Edges = append(gj.Edges, edgeJSON{
				Src:   g.Process(e.Src).Name,
				Dst:   g.Process(e.Dst).Name,
				Bytes: e.Bytes,
			})
		}
		out.Graphs = append(out.Graphs, gj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses an application from r and validates it.
func ReadJSON(r io.Reader) (*Application, error) {
	var in appJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding application: %w", err)
	}
	app := NewApplication(in.Name)
	for _, gj := range in.Graphs {
		g := app.AddGraph(gj.Name, msToTime(gj.PeriodMs), msToTime(gj.DeadlineMs))
		byName := make(map[string]*Process, len(gj.Processes))
		for _, pj := range gj.Processes {
			if _, dup := byName[pj.Name]; dup {
				return nil, fmt.Errorf("model: graph %q has duplicate process name %q", gj.Name, pj.Name)
			}
			p := app.AddProcess(g, pj.Name)
			p.Release = msToTime(pj.ReleaseMs)
			p.Deadline = msToTime(pj.DeadlineMs)
			byName[pj.Name] = p
		}
		for _, ej := range gj.Edges {
			src, ok := byName[ej.Src]
			if !ok {
				return nil, fmt.Errorf("model: graph %q edge references unknown process %q", gj.Name, ej.Src)
			}
			dst, ok := byName[ej.Dst]
			if !ok {
				return nil, fmt.Errorf("model: graph %q edge references unknown process %q", gj.Name, ej.Dst)
			}
			g.AddEdge(src, dst, ej.Bytes)
		}
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}
