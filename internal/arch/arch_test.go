package arch

import (
	"testing"

	"repro/ftdse/internal/model"
)

func TestArchitectureBasics(t *testing.T) {
	a := New(3)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", a.NumNodes())
	}
	if a.Node(0).Name != "N1" || a.Node(2).Name != "N3" {
		t.Errorf("unexpected node names %v %v", a.Node(0), a.Node(2))
	}
	if a.Node(5) != nil || a.Node(-1) != nil {
		t.Error("out-of-range Node lookup should return nil")
	}
	named := NewNamed("ETM", "ABS", "TCM")
	if named.Node(1).Name != "ABS" {
		t.Errorf("named node 1 = %q, want ABS", named.Node(1).Name)
	}
	empty := &Architecture{}
	if err := empty.Validate(); err == nil {
		t.Error("Validate accepted empty architecture")
	}
}

func TestWCETTable(t *testing.T) {
	w := NewWCET()
	p := model.ProcID(0)
	w.Set(p, 0, model.Ms(40))
	w.Set(p, 1, model.Ms(50))

	if c, ok := w.Get(p, 0); !ok || c != model.Ms(40) {
		t.Errorf("Get(p,0) = %v,%v", c, ok)
	}
	if _, ok := w.Get(p, 2); ok {
		t.Error("Get on unmapped node should report !ok")
	}
	if c := w.MustGet(p, 1); c != model.Ms(50) {
		t.Errorf("MustGet = %v, want 50ms", c)
	}
	nodes := w.AllowedNodes(p)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("AllowedNodes = %v, want [0 1]", nodes)
	}
	if avg, ok := w.Average(p); !ok || avg != model.Ms(45) {
		t.Errorf("Average = %v,%v, want 45ms", avg, ok)
	}
	if _, ok := w.Average(model.ProcID(9)); ok {
		t.Error("Average of unknown process should report !ok")
	}
}

func TestWCETMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on unmapped pair should panic")
		}
	}()
	NewWCET().MustGet(model.ProcID(0), 0)
}

func TestWCETSetRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set with zero WCET should panic")
		}
	}()
	NewWCET().Set(model.ProcID(0), 0, 0)
}

func TestWCETValidate(t *testing.T) {
	app := model.NewApplication("a")
	g := app.AddGraph("G", model.Ms(100), model.Ms(100))
	p := app.AddProcess(g, "P")
	q := app.AddProcess(g, "Q")
	g.AddEdge(p, q, 1)
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	a := New(2)
	w := NewWCET()
	w.Set(p.ID, 0, model.Ms(10))
	if err := w.Validate(merged, a); err == nil {
		t.Error("Validate accepted process with no allowed node")
	}
	w.Set(q.ID, 1, model.Ms(10))
	if err := w.Validate(merged, a); err != nil {
		t.Errorf("Validate: %v", err)
	}
	w.Set(q.ID, 7, model.Ms(10))
	if err := w.Validate(merged, a); err == nil {
		t.Error("Validate accepted WCET entry for unknown node")
	}
}
