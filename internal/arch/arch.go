// Package arch models the distributed hardware architecture of the
// paper's Section 2.1: a set of nodes, each with a CPU and a TTP
// communication controller, sharing a broadcast bus. The package also
// holds the worst-case execution time (WCET) table C_Pi^Nk, which is the
// only architecture-dependent parameter of processes.
package arch

import (
	"fmt"
	"sort"

	"repro/ftdse/internal/model"
)

// NodeID identifies a computation node. IDs are dense, starting at 0.
type NodeID int

// NoNode is the zero-value sentinel for "no node".
const NoNode NodeID = -1

// Node is one computation node of the architecture.
type Node struct {
	ID   NodeID
	Name string
}

func (n *Node) String() string {
	if n == nil {
		return "<nil node>"
	}
	return fmt.Sprintf("%s(N%d)", n.Name, n.ID)
}

// Architecture is the set of nodes sharing the broadcast TTP bus. The
// bus-access configuration itself lives in package ttp.
type Architecture struct {
	nodes []*Node
}

// New returns an architecture with n anonymous nodes named N1..Nn.
func New(n int) *Architecture {
	a := &Architecture{}
	for i := 0; i < n; i++ {
		a.AddNode(fmt.Sprintf("N%d", i+1))
	}
	return a
}

// NewNamed returns an architecture with one node per name.
func NewNamed(names ...string) *Architecture {
	a := &Architecture{}
	for _, name := range names {
		a.AddNode(name)
	}
	return a
}

// AddNode appends a node with the given name and returns it.
func (a *Architecture) AddNode(name string) *Node {
	n := &Node{ID: NodeID(len(a.nodes)), Name: name}
	a.nodes = append(a.nodes, n)
	return n
}

// Nodes returns the nodes ordered by ID. The slice must not be modified.
func (a *Architecture) Nodes() []*Node { return a.nodes }

// NumNodes returns the number of nodes.
func (a *Architecture) NumNodes() int { return len(a.nodes) }

// Node returns the node with the given ID or nil.
func (a *Architecture) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(a.nodes) {
		return nil
	}
	return a.nodes[id]
}

// Validate checks structural invariants.
func (a *Architecture) Validate() error {
	if len(a.nodes) == 0 {
		return fmt.Errorf("arch: architecture has no nodes")
	}
	for i, n := range a.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("arch: node %q has id %d at index %d", n.Name, n.ID, i)
		}
	}
	return nil
}

// WCET is the worst-case execution time table C_Pi^Nk. A missing entry
// means the process cannot be mapped on that node (the "X" entries of
// Figure 5 in the paper). The table is keyed by the origin ProcID, so it
// applies to all hyper-period instances of a process.
type WCET struct {
	c map[model.ProcID]map[NodeID]model.Time
}

// NewWCET returns an empty table.
func NewWCET() *WCET {
	return &WCET{c: make(map[model.ProcID]map[NodeID]model.Time)}
}

// Set records the WCET of process p on node n.
func (w *WCET) Set(p model.ProcID, n NodeID, c model.Time) {
	if c <= 0 {
		panic(fmt.Sprintf("arch: non-positive WCET %v for process %d on node %d", c, p, n))
	}
	row := w.c[p]
	if row == nil {
		row = make(map[NodeID]model.Time)
		w.c[p] = row
	}
	row[n] = c
}

// Get returns the WCET of process p on node n; ok is false when the
// process cannot be mapped there.
func (w *WCET) Get(p model.ProcID, n NodeID) (c model.Time, ok bool) {
	c, ok = w.c[p][n]
	return c, ok
}

// MustGet is Get for mappings already known to be legal.
func (w *WCET) MustGet(p model.ProcID, n NodeID) model.Time {
	c, ok := w.Get(p, n)
	if !ok {
		panic(fmt.Sprintf("arch: process %d not mappable on node %d", p, n))
	}
	return c
}

// AllowedNodes returns, in ascending order, the nodes process p can be
// mapped to (the set N_Pi of the paper).
func (w *WCET) AllowedNodes(p model.ProcID) []NodeID {
	row := w.c[p]
	out := make([]NodeID, 0, len(row))
	for n := range row {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Average returns the mean WCET of p over its allowed nodes; it is used
// by mapping-independent priority functions. ok is false when p has no
// allowed node.
func (w *WCET) Average(p model.ProcID) (model.Time, bool) {
	row := w.c[p]
	if len(row) == 0 {
		return 0, false
	}
	var sum model.Time
	for _, c := range row {
		sum += c
	}
	return sum / model.Time(len(row)), true
}

// Validate checks that every process of the merged graph can be mapped
// on at least one node of the architecture.
func (w *WCET) Validate(g *model.Graph, a *Architecture) error {
	for _, p := range g.Processes() {
		nodes := w.AllowedNodes(p.Origin)
		if len(nodes) == 0 {
			return fmt.Errorf("arch: process %s has no allowed node", p)
		}
		for _, n := range nodes {
			if a.Node(n) == nil {
				return fmt.Errorf("arch: process %s allows unknown node %d", p, n)
			}
		}
	}
	return nil
}
