package sysio

import (
	"encoding/json"
	"io"

	"repro/ftdse/internal/sched"
)

// The schedule export is the deployment artifact of the synthesis: the
// static schedule table of every node (what the paper's real-time
// kernel executes) and the MEDL (what the TTP controllers execute),
// together with the worst-case analysis results. It is write-only: the
// consumer is a target system or an external analysis, not this library.

type scheduleJSON struct {
	Schedulable bool      `json:"schedulable"`
	MakespanMs  float64   `json:"makespan_ms"`
	TardinessMs float64   `json:"tardiness_ms,omitempty"`
	FaultModel  faultJSON `json:"fault_model"`

	Nodes []nodeTableJSON `json:"nodes"`
	MEDL  []medlJSON      `json:"medl"`
}

type nodeTableJSON struct {
	Node  string      `json:"node"`
	Table []entryJSON `json:"table"`
}

type entryJSON struct {
	Process     string  `json:"process"`
	Replica     int     `json:"replica"`
	StartMs     float64 `json:"start_ms"`
	EndMs       float64 `json:"end_ms"`
	WorstCaseMs float64 `json:"worst_case_ms"`
	Reexec      int     `json:"reexec,omitempty"`
	Checkpoints int     `json:"checkpoints,omitempty"`
}

type medlJSON struct {
	Label     string  `json:"label"`
	Round     int     `json:"round"`
	Slot      int     `json:"slot"`
	Bytes     int     `json:"bytes"`
	StartMs   float64 `json:"start_ms"`
	ArrivalMs float64 `json:"arrival_ms"`
}

// WriteSchedule serializes a synthesized schedule.
func WriteSchedule(w io.Writer, s *sched.Schedule) error {
	out := scheduleJSON{
		Schedulable: s.Schedulable(),
		MakespanMs:  s.Makespan.Milliseconds(),
		TardinessMs: s.Tardiness.Milliseconds(),
		FaultModel:  faultJSON{K: s.In.Faults.K, MuMs: s.In.Faults.Mu.Milliseconds()},
	}
	for _, n := range s.In.Arch.Nodes() {
		nt := nodeTableJSON{Node: n.Name}
		for _, it := range s.NodeSequence(n.ID) {
			nt.Table = append(nt.Table, entryJSON{
				Process:     it.Inst.Proc.Name,
				Replica:     it.Inst.Replica + 1,
				StartMs:     it.NominalStart.Milliseconds(),
				EndMs:       it.NominalFinish.Milliseconds(),
				WorstCaseMs: it.WCFinish.Milliseconds(),
				Reexec:      it.Inst.Reexec,
				Checkpoints: it.Inst.Checkpoints,
			})
		}
		out.Nodes = append(out.Nodes, nt)
	}
	for _, tr := range s.MEDL() {
		out.MEDL = append(out.MEDL, medlJSON{
			Label:     tr.Label,
			Round:     tr.Round,
			Slot:      tr.Slot,
			Bytes:     tr.Bytes,
			StartMs:   tr.Start.Milliseconds(),
			ArrivalMs: tr.Arrival.Milliseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
