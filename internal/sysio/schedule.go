package sysio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/ftdse/internal/sched"
)

// The schedule export is the deployment artifact of the synthesis: the
// static schedule table of every node (what the paper's real-time
// kernel executes) and the MEDL (what the TTP controllers execute),
// together with the worst-case analysis results. WriteSchedule produces
// it from a built schedule; ReadSchedule parses it back into a
// ScheduleDoc so external tooling (and the round-trip fuzz targets) can
// consume the artifact without re-running the synthesis.

// ScheduleDoc is the parsed form of the schedule export. It mirrors the
// JSON document field by field: re-serializing an unmodified doc with
// WriteScheduleDoc reproduces the input bytes exactly (the document
// format is canonical — fixed key order, two-space indent, trailing
// newline).
//
//ftdse:wire
type ScheduleDoc struct {
	Schedulable bool          `json:"schedulable"`
	MakespanMs  float64       `json:"makespan_ms"`
	TardinessMs float64       `json:"tardiness_ms,omitempty"`
	FaultModel  ScheduleFault `json:"fault_model"`

	Nodes []NodeTable `json:"nodes"`
	MEDL  []MEDLEntry `json:"medl"`
}

// ScheduleFault is the fault hypothesis the schedule was built under.
type ScheduleFault struct {
	K    int     `json:"k"`
	MuMs float64 `json:"mu_ms"`
}

// NodeTable is the static schedule table of one computation node.
type NodeTable struct {
	Node  string       `json:"node"`
	Table []TableEntry `json:"table"`
}

// TableEntry is one activation in a node's schedule table.
type TableEntry struct {
	Process     string  `json:"process"`
	Replica     int     `json:"replica"`
	StartMs     float64 `json:"start_ms"`
	EndMs       float64 `json:"end_ms"`
	WorstCaseMs float64 `json:"worst_case_ms"`
	Reexec      int     `json:"reexec,omitempty"`
	Checkpoints int     `json:"checkpoints,omitempty"`
}

// MEDLEntry is one scheduled message occurrence of the bus MEDL.
type MEDLEntry struct {
	Label     string  `json:"label"`
	Round     int     `json:"round"`
	Slot      int     `json:"slot"`
	Bytes     int     `json:"bytes"`
	StartMs   float64 `json:"start_ms"`
	ArrivalMs float64 `json:"arrival_ms"`
}

// WriteSchedule serializes a synthesized schedule.
func WriteSchedule(w io.Writer, s *sched.Schedule) error {
	out := ScheduleDoc{
		Schedulable: s.Schedulable(),
		MakespanMs:  s.Makespan.Milliseconds(),
		TardinessMs: s.Tardiness.Milliseconds(),
		FaultModel:  ScheduleFault{K: s.In.Faults.K, MuMs: s.In.Faults.Mu.Milliseconds()},
	}
	for _, n := range s.In.Arch.Nodes() {
		nt := NodeTable{Node: n.Name}
		for _, it := range s.NodeSequence(n.ID) {
			nt.Table = append(nt.Table, TableEntry{
				Process:     it.Inst.Proc.Name,
				Replica:     it.Inst.Replica + 1,
				StartMs:     it.NominalStart.Milliseconds(),
				EndMs:       it.NominalFinish.Milliseconds(),
				WorstCaseMs: it.WCFinish.Milliseconds(),
				Reexec:      it.Inst.Reexec,
				Checkpoints: it.Inst.Checkpoints,
			})
		}
		out.Nodes = append(out.Nodes, nt)
	}
	for _, tr := range s.MEDL() {
		out.MEDL = append(out.MEDL, MEDLEntry{
			Label:     tr.Label,
			Round:     tr.Round,
			Slot:      tr.Slot,
			Bytes:     tr.Bytes,
			StartMs:   tr.Start.Milliseconds(),
			ArrivalMs: tr.Arrival.Milliseconds(),
		})
	}
	return WriteScheduleDoc(w, out)
}

// WriteScheduleDoc serializes a schedule document in the canonical
// export form: the exact bytes WriteSchedule would produce for the
// schedule the doc describes.
func WriteScheduleDoc(w io.Writer, d ScheduleDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadSchedule parses a schedule export. The parse is strict: unknown
// fields, trailing content and structurally invalid documents (negative
// times, empty names, inverted intervals) are rejected, so any document
// ReadSchedule accepts re-serializes with WriteScheduleDoc to the
// canonical form and is stable under further round trips.
func ReadSchedule(r io.Reader) (ScheduleDoc, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d ScheduleDoc
	if err := dec.Decode(&d); err != nil {
		return ScheduleDoc{}, fmt.Errorf("sysio: parsing schedule: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return ScheduleDoc{}, errors.New("sysio: trailing content after schedule document")
	}
	if err := d.validate(); err != nil {
		return ScheduleDoc{}, fmt.Errorf("sysio: invalid schedule: %w", err)
	}
	return d, nil
}

// validate checks the structural invariants of a schedule document.
func (d *ScheduleDoc) validate() error {
	if d.MakespanMs < 0 {
		return fmt.Errorf("negative makespan %v", d.MakespanMs)
	}
	if d.TardinessMs < 0 {
		return fmt.Errorf("negative tardiness %v", d.TardinessMs)
	}
	if d.FaultModel.K < 0 || d.FaultModel.MuMs < 0 {
		return fmt.Errorf("invalid fault model k=%d mu=%v", d.FaultModel.K, d.FaultModel.MuMs)
	}
	for ni, n := range d.Nodes {
		if n.Node == "" {
			return fmt.Errorf("node %d has no name", ni)
		}
		for ti, e := range n.Table {
			switch {
			case e.Process == "":
				return fmt.Errorf("node %s entry %d has no process", n.Node, ti)
			case e.Replica < 1:
				return fmt.Errorf("node %s entry %d: replica %d < 1", n.Node, ti, e.Replica)
			case e.StartMs < 0 || e.EndMs < e.StartMs || e.WorstCaseMs < e.EndMs:
				return fmt.Errorf("node %s entry %d: inverted interval [%v, %v, %v]",
					n.Node, ti, e.StartMs, e.EndMs, e.WorstCaseMs)
			case e.Reexec < 0 || e.Checkpoints < 0:
				return fmt.Errorf("node %s entry %d: negative redundancy", n.Node, ti)
			}
		}
	}
	for mi, m := range d.MEDL {
		switch {
		case m.Label == "":
			return fmt.Errorf("medl entry %d has no label", mi)
		case m.Round < 0 || m.Slot < 0:
			return fmt.Errorf("medl entry %d: negative slot occurrence r%d/s%d", mi, m.Round, m.Slot)
		case m.Bytes < 1:
			return fmt.Errorf("medl entry %d: %d bytes", mi, m.Bytes)
		case m.StartMs < 0 || m.ArrivalMs < m.StartMs:
			return fmt.Errorf("medl entry %d: inverted interval [%v, %v]", mi, m.StartMs, m.ArrivalMs)
		}
	}
	return nil
}
