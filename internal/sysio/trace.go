package sysio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/ftdse/internal/core"
)

// The trace export is the flight recorder's durable form: JSON Lines —
// one header object followed by one event object per line — because a
// trace is an append-shaped sequence, tools stream it line by line
// (cmd/fttrace, grep), and the cluster ships it inside job results.
// Like the problem, schedule and checkpoint exports the format is
// canonical and ReadTrace is strict: unknown fields, unknown event
// kinds, out-of-order sequence numbers and non-monotone elapsed stamps
// are all rejected, so any accepted document re-serializes through
// WriteTrace to identical bytes (pinned by FuzzReadTrace).

// TraceVersion is the current trace document version.
const TraceVersion = 1

// traceHeader is the first line of a trace document. Dropped is always
// serialized (not omitempty) so the header is self-describing and the
// canonical form of every trace has the same shape.
//
//ftdse:wire
type traceHeader struct {
	Version int `json:"version"`
	Dropped int `json:"dropped"`
}

// WriteTrace serializes a trace in the canonical JSONL form: the
// header line, then every event on its own line in recorded order.
func WriteTrace(w io.Writer, t *core.Trace) error {
	if t == nil {
		return errors.New("sysio: nil trace")
	}
	if err := validateTrace(t); err != nil {
		return fmt.Errorf("sysio: invalid trace: %w", err)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Version: TraceVersion, Dropped: t.Dropped}); err != nil {
		return err
	}
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace document written by WriteTrace. The parse
// is strict — unknown fields, trailing content on a line, an
// unsupported version, unknown event kinds and broken monotonicity are
// rejected — so any accepted document reaches a byte-identical fixed
// point after one normalizing write.
func ReadTrace(r io.Reader) (*core.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sysio: reading trace: %w", err)
		}
		return nil, errors.New("sysio: empty trace document (no header line)")
	}
	var hdr traceHeader
	if err := strictUnmarshalLine(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("sysio: parsing trace header: %w", err)
	}
	if hdr.Version != TraceVersion {
		return nil, fmt.Errorf("sysio: unsupported trace version %d (want %d)", hdr.Version, TraceVersion)
	}
	t := &core.Trace{Dropped: hdr.Dropped}
	line := 1
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("sysio: trace line %d: blank line inside document", line)
		}
		var ev core.SearchEvent
		if err := strictUnmarshalLine(raw, &ev); err != nil {
			return nil, fmt.Errorf("sysio: trace line %d: %w", line, err)
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sysio: reading trace: %w", err)
	}
	if err := validateTrace(t); err != nil {
		return nil, fmt.Errorf("sysio: invalid trace: %w", err)
	}
	return t, nil
}

// strictUnmarshalLine decodes one JSONL line with unknown fields and
// trailing content rejected.
func strictUnmarshalLine(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("trailing content after JSON object")
	}
	return nil
}

// validateTrace checks the structural invariants the recorder
// guarantees: known kinds, sequence numbers strictly increasing,
// elapsed stamps non-negative and non-decreasing, sane sweep and cost
// fields.
func validateTrace(t *core.Trace) error {
	if t.Dropped < 0 {
		return fmt.Errorf("negative dropped count %d", t.Dropped)
	}
	prevSeq, prevElapsed := 0, 0.0
	for i := range t.Events {
		ev := &t.Events[i]
		if !core.ValidEventKind(ev.Kind) {
			return fmt.Errorf("event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.Seq <= prevSeq {
			return fmt.Errorf("event %d: sequence %d not increasing (previous %d)", i, ev.Seq, prevSeq)
		}
		if ev.ElapsedMs < prevElapsed {
			return fmt.Errorf("event %d: elapsed %vms before previous %vms", i, ev.ElapsedMs, prevElapsed)
		}
		if ev.Iteration < 0 {
			return fmt.Errorf("event %d: negative iteration %d", i, ev.Iteration)
		}
		if ev.MakespanUs < 0 || ev.TardinessUs < 0 {
			return fmt.Errorf("event %d: negative cost (makespan %d, tardiness %d)", i, ev.MakespanUs, ev.TardinessUs)
		}
		if ev.Moves < 0 || ev.Evaluated < 0 || ev.CacheHits < 0 {
			return fmt.Errorf("event %d: negative sweep stats", i)
		}
		if ev.Evaluated+ev.CacheHits > ev.Moves {
			return fmt.Errorf("event %d: sweep stats exceed neighborhood (%d evaluated + %d hits > %d moves)",
				i, ev.Evaluated, ev.CacheHits, ev.Moves)
		}
		prevSeq, prevElapsed = ev.Seq, ev.ElapsedMs
	}
	return nil
}
