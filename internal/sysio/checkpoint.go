package sysio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

// The checkpoint export is the durability artifact of a running search:
// the incumbent design together with where the search stood when it was
// taken (phase, iteration, cost, elapsed time). A node pushes one to
// its coordinator every few improvements; after the node dies, the
// checkpoint warm-starts the resumed solve on another node, so the
// search continues from the incumbent instead of restarting. Like the
// problem and schedule exports the format is canonical — fixed key
// order, sorted design entries (Go serializes map keys sorted),
// two-space indent, trailing newline — and ReadCheckpoint is strict, so
// any accepted document reaches a byte-identical fixed point after one
// normalizing write (pinned by FuzzReadCheckpoint).

// CheckpointVersion is the current checkpoint document version.
const CheckpointVersion = 1

// CheckpointDoc is the parsed form of a search checkpoint. Design maps
// process names to their replica policies; names (not IDs) make the
// document portable across re-parses of the same problem document and
// across *similar* problems that keep the structure but perturb WCETs —
// the warm-start use case.
//
//ftdse:wire
type CheckpointDoc struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Phase and Iteration locate the search when the checkpoint was
	// taken (the Improvement that produced the incumbent).
	Phase     string `json:"phase,omitempty"`
	Iteration int    `json:"iteration"`

	Schedulable bool    `json:"schedulable"`
	MakespanMs  float64 `json:"makespan_ms"`
	TardinessMs float64 `json:"tardiness_ms,omitempty"`
	ElapsedMs   float64 `json:"elapsed_ms,omitempty"`

	Design map[string][]CheckpointReplica `json:"design"`
}

// CheckpointReplica is one replica of one process in a checkpointed
// design: the node it is mapped to and its time redundancy.
type CheckpointReplica struct {
	Node        string `json:"node"`
	Reexec      int    `json:"reexec,omitempty"`
	Checkpoints int    `json:"checkpoints,omitempty"`
}

// WriteCheckpoint serializes a checkpoint document in the canonical
// form.
func WriteCheckpoint(w io.Writer, d CheckpointDoc) error {
	if err := d.validate(); err != nil {
		return fmt.Errorf("sysio: invalid checkpoint: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadCheckpoint parses a checkpoint document. The parse is strict —
// unknown fields, trailing content, an unsupported version and
// structurally invalid designs are rejected — so any document it
// accepts re-serializes with WriteCheckpoint to the canonical form and
// is stable under further round trips.
func ReadCheckpoint(r io.Reader) (CheckpointDoc, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d CheckpointDoc
	if err := dec.Decode(&d); err != nil {
		return CheckpointDoc{}, fmt.Errorf("sysio: parsing checkpoint: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return CheckpointDoc{}, errors.New("sysio: trailing content after checkpoint document")
	}
	if err := d.validate(); err != nil {
		return CheckpointDoc{}, fmt.Errorf("sysio: invalid checkpoint: %w", err)
	}
	return d, nil
}

// validate checks the structural invariants of a checkpoint document.
func (d *CheckpointDoc) validate() error {
	if d.Version != CheckpointVersion {
		return fmt.Errorf("unsupported version %d (want %d)", d.Version, CheckpointVersion)
	}
	if d.Iteration < 0 {
		return fmt.Errorf("negative iteration %d", d.Iteration)
	}
	if d.MakespanMs < 0 || d.TardinessMs < 0 || d.ElapsedMs < 0 {
		return fmt.Errorf("negative timing (makespan %v, tardiness %v, elapsed %v)",
			d.MakespanMs, d.TardinessMs, d.ElapsedMs)
	}
	if d.Schedulable && d.TardinessMs > 0 {
		return fmt.Errorf("schedulable checkpoint with tardiness %v", d.TardinessMs)
	}
	if len(d.Design) == 0 {
		return errors.New("empty design")
	}
	for _, name := range sortedKeys(d.Design) {
		reps := d.Design[name]
		if name == "" {
			return errors.New("design entry with empty process name")
		}
		if len(reps) == 0 {
			return fmt.Errorf("process %q has no replicas", name)
		}
		for ri, rep := range reps {
			switch {
			case rep.Node == "":
				return fmt.Errorf("process %q replica %d has no node", name, ri)
			case rep.Reexec < 0 || rep.Checkpoints < 0:
				return fmt.Errorf("process %q replica %d: negative redundancy", name, ri)
			}
		}
	}
	return nil
}

// NewCheckpoint builds a checkpoint document for an incumbent design of
// a problem, filling the version and the design from the assignment;
// the caller provides the search metadata (fingerprint, phase,
// iteration, cost) in shell.
func NewCheckpoint(p core.Problem, shell CheckpointDoc, asgn policy.Assignment) (CheckpointDoc, error) {
	names, err := uniqueNames(p.App)
	if err != nil {
		return CheckpointDoc{}, err
	}
	shell.Version = CheckpointVersion
	shell.Design = make(map[string][]CheckpointReplica, len(asgn))
	ids := make([]model.ProcID, 0, len(asgn))
	for id := range asgn {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pol := asgn[id]
		name, ok := names[id]
		if !ok {
			return CheckpointDoc{}, fmt.Errorf("sysio: design references unknown process %d", id)
		}
		reps := make([]CheckpointReplica, 0, len(pol.Replicas))
		for _, rep := range pol.Replicas {
			n := p.Arch.Node(rep.Node)
			if n == nil {
				return CheckpointDoc{}, fmt.Errorf("sysio: design maps %q to unknown node %d", name, rep.Node)
			}
			reps = append(reps, CheckpointReplica{
				Node:        n.Name,
				Reexec:      rep.Reexec,
				Checkpoints: rep.Checkpoints,
			})
		}
		shell.Design[name] = reps
	}
	if err := shell.validate(); err != nil {
		return CheckpointDoc{}, fmt.Errorf("sysio: invalid checkpoint: %w", err)
	}
	return shell, nil
}

// CheckpointAssignment resolves a checkpoint's design against a problem,
// returning the policy assignment that warm-starts a solve. Every
// checkpointed process and node must exist in the problem; processes
// of the problem absent from the checkpoint are an error too — a
// partial design cannot seed a search.
func CheckpointAssignment(p core.Problem, d CheckpointDoc) (policy.Assignment, error) {
	names, err := uniqueNames(p.App)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]model.ProcID, len(names))
	for id, name := range names {
		byName[name] = id
	}
	nodeByName := make(map[string]arch.NodeID, p.Arch.NumNodes())
	for _, n := range p.Arch.Nodes() {
		nodeByName[n.Name] = n.ID
	}
	asgn := policy.Assignment{}
	for _, name := range sortedKeys(d.Design) {
		reps := d.Design[name]
		id, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("sysio: checkpoint references unknown process %q", name)
		}
		var pol policy.Policy
		for _, rep := range reps {
			nid, ok := nodeByName[rep.Node]
			if !ok {
				return nil, fmt.Errorf("sysio: checkpoint maps %q to unknown node %q", name, rep.Node)
			}
			pol.Replicas = append(pol.Replicas, policy.Replica{
				Node:        nid,
				Reexec:      rep.Reexec,
				Checkpoints: rep.Checkpoints,
			})
		}
		asgn[id] = pol
	}
	missing := make(map[model.ProcID]bool)
	for id := range names {
		if _, ok := asgn[id]; !ok {
			missing[id] = true
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("sysio: checkpoint misses process %q", sortedNames(missing, names)[0])
	}
	return asgn, nil
}
