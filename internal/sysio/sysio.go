// Package sysio serializes complete design-optimization problems —
// application, architecture, WCET table, fault model and designer
// constraints — to a single human-editable JSON document, used by the
// command-line tools.
package sysio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
)

//
//ftdse:wire
type problemJSON struct {
	Application      json.RawMessage               `json:"application"`
	Architecture     []string                      `json:"architecture"`
	WCETMs           map[string]map[string]float64 `json:"wcet_ms"`
	Faults           faultJSON                     `json:"faults"`
	FixedMapping     map[string]string             `json:"fixed_mapping,omitempty"`
	ForceReexecution []string                      `json:"force_reexecution,omitempty"`
	ForceReplication []string                      `json:"force_replication,omitempty"`
}

//
//ftdse:wire
type faultJSON struct {
	K    int     `json:"k"`
	MuMs float64 `json:"mu_ms"`
}

// WriteProblem serializes a problem. Process names must be unique
// across the whole application (they key the WCET table).
func WriteProblem(w io.Writer, p core.Problem) error {
	names, err := uniqueNames(p.App)
	if err != nil {
		return err
	}
	var appBuf bytes.Buffer
	if err := p.App.WriteJSON(&appBuf); err != nil {
		return err
	}
	out := problemJSON{
		Application: json.RawMessage(appBuf.Bytes()),
		Faults:      faultJSON{K: p.Faults.K, MuMs: p.Faults.Mu.Milliseconds()},
		WCETMs:      map[string]map[string]float64{},
	}
	for _, n := range p.Arch.Nodes() {
		out.Architecture = append(out.Architecture, n.Name)
	}
	for id, name := range names {
		row := map[string]float64{}
		for _, n := range p.WCET.AllowedNodes(id) {
			row[p.Arch.Node(n).Name] = p.WCET.MustGet(id, n).Milliseconds()
		}
		out.WCETMs[name] = row
	}
	if len(p.FixedMapping) > 0 {
		out.FixedMapping = map[string]string{}
		for id, n := range p.FixedMapping {
			out.FixedMapping[names[id]] = p.Arch.Node(n).Name
		}
	}
	out.ForceReexecution = sortedNames(p.ForceReexecution, names)
	out.ForceReplication = sortedNames(p.ForceReplication, names)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func sortedNames(set map[model.ProcID]bool, names map[model.ProcID]string) []string {
	var out []string
	for id, on := range set {
		if on {
			out = append(out, names[id])
		}
	}
	sort.Strings(out)
	return out
}

// sortedKeys returns the keys of m in ascending order, so document
// walks visit entries (and pick error messages) deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ReadProblem parses and validates a problem document.
func ReadProblem(r io.Reader) (core.Problem, error) {
	var in problemJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return core.Problem{}, fmt.Errorf("sysio: decoding problem: %w", err)
	}
	app, err := model.ReadJSON(bytes.NewReader(in.Application))
	if err != nil {
		return core.Problem{}, err
	}
	names, err := uniqueNames(app)
	if err != nil {
		return core.Problem{}, err
	}
	byName := make(map[string]model.ProcID, len(names))
	for id, name := range names {
		byName[name] = id
	}
	if len(in.Architecture) == 0 {
		return core.Problem{}, fmt.Errorf("sysio: empty architecture")
	}
	a := arch.NewNamed(in.Architecture...)
	nodeByName := map[string]arch.NodeID{}
	for _, n := range a.Nodes() {
		if _, dup := nodeByName[n.Name]; dup {
			return core.Problem{}, fmt.Errorf("sysio: duplicate node name %q", n.Name)
		}
		nodeByName[n.Name] = n.ID
	}
	w := arch.NewWCET()
	for _, pname := range sortedKeys(in.WCETMs) {
		row := in.WCETMs[pname]
		id, ok := byName[pname]
		if !ok {
			return core.Problem{}, fmt.Errorf("sysio: WCET for unknown process %q", pname)
		}
		for _, nname := range sortedKeys(row) {
			ms := row[nname]
			n, ok := nodeByName[nname]
			if !ok {
				return core.Problem{}, fmt.Errorf("sysio: WCET of %q on unknown node %q", pname, nname)
			}
			if ms <= 0 {
				return core.Problem{}, fmt.Errorf("sysio: non-positive WCET of %q on %q", pname, nname)
			}
			w.Set(id, n, model.Time(math.Round(ms*float64(model.Millisecond))))
		}
	}
	p := core.Problem{
		App:    app,
		Arch:   a,
		WCET:   w,
		Faults: fault.Model{K: in.Faults.K, Mu: model.Time(math.Round(in.Faults.MuMs * float64(model.Millisecond)))},
	}
	if len(in.FixedMapping) > 0 {
		p.FixedMapping = map[model.ProcID]arch.NodeID{}
		for _, pname := range sortedKeys(in.FixedMapping) {
			nname := in.FixedMapping[pname]
			id, ok := byName[pname]
			if !ok {
				return core.Problem{}, fmt.Errorf("sysio: fixed mapping of unknown process %q", pname)
			}
			n, ok := nodeByName[nname]
			if !ok {
				return core.Problem{}, fmt.Errorf("sysio: fixed mapping to unknown node %q", nname)
			}
			p.FixedMapping[id] = n
		}
	}
	p.ForceReexecution, err = nameSet(in.ForceReexecution, byName)
	if err != nil {
		return core.Problem{}, err
	}
	p.ForceReplication, err = nameSet(in.ForceReplication, byName)
	if err != nil {
		return core.Problem{}, err
	}
	if err := p.Validate(); err != nil {
		return core.Problem{}, err
	}
	return p, nil
}

func nameSet(names []string, byName map[string]model.ProcID) (map[model.ProcID]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := map[model.ProcID]bool{}
	for _, n := range names {
		id, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("sysio: constraint references unknown process %q", n)
		}
		out[id] = true
	}
	return out, nil
}

// uniqueNames returns the application-wide process-name table, failing
// on duplicates.
func uniqueNames(app *model.Application) (map[model.ProcID]string, error) {
	names := make(map[model.ProcID]string, app.NumProcesses())
	seen := map[string]bool{}
	for _, p := range app.Processes() {
		if seen[p.Name] {
			return nil, fmt.Errorf("sysio: duplicate process name %q (names must be unique application-wide)", p.Name)
		}
		seen[p.Name] = true
		names[p.ID] = p.Name
	}
	return names, nil
}
