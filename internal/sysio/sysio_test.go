package sysio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/ccapp"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/gen"
	"repro/ftdse/internal/model"
)

func TestRoundTripGenerated(t *testing.T) {
	p := gen.Problem(gen.Spec{Procs: 12, Nodes: 3, Seed: 4}, fault.Model{K: 2, Mu: model.Ms(5)})
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	back, err := ReadProblem(&buf)
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if back.App.NumProcesses() != p.App.NumProcesses() {
		t.Errorf("processes: %d vs %d", back.App.NumProcesses(), p.App.NumProcesses())
	}
	if back.Arch.NumNodes() != p.Arch.NumNodes() {
		t.Errorf("nodes: %d vs %d", back.Arch.NumNodes(), p.Arch.NumNodes())
	}
	if back.Faults != p.Faults {
		t.Errorf("faults: %v vs %v", back.Faults, p.Faults)
	}
	// WCETs survive (IDs are reassigned in creation order, names map).
	for _, proc := range p.App.Processes() {
		var backID model.ProcID = -1
		for _, bp := range back.App.Processes() {
			if bp.Name == proc.Name {
				backID = bp.ID
				break
			}
		}
		if backID < 0 {
			t.Fatalf("process %q lost", proc.Name)
		}
		for _, n := range p.WCET.AllowedNodes(proc.ID) {
			want := p.WCET.MustGet(proc.ID, n)
			got, ok := back.WCET.Get(backID, n)
			if !ok || got != want {
				t.Errorf("WCET of %q on %d: %v vs %v", proc.Name, n, got, want)
			}
		}
	}
}

func TestRoundTripCruiseController(t *testing.T) {
	p := ccapp.New()
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	back, err := ReadProblem(&buf)
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if len(back.FixedMapping) != len(p.FixedMapping) {
		t.Errorf("fixed mappings: %d vs %d", len(back.FixedMapping), len(p.FixedMapping))
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped CC invalid: %v", err)
	}
}

func TestReadProblemErrors(t *testing.T) {
	cases := map[string]string{
		"unknown wcet process": `{
			"application": {"name":"a","graphs":[{"name":"G","period_ms":100,
				"processes":[{"name":"P"}],"edges":[]}]},
			"architecture": ["N1"],
			"wcet_ms": {"Q": {"N1": 5}},
			"faults": {"k":0,"mu_ms":0}}`,
		"unknown wcet node": `{
			"application": {"name":"a","graphs":[{"name":"G","period_ms":100,
				"processes":[{"name":"P"}],"edges":[]}]},
			"architecture": ["N1"],
			"wcet_ms": {"P": {"N9": 5}},
			"faults": {"k":0,"mu_ms":0}}`,
		"no architecture": `{
			"application": {"name":"a","graphs":[{"name":"G","period_ms":100,
				"processes":[{"name":"P"}],"edges":[]}]},
			"architecture": [],
			"wcet_ms": {"P": {"N1": 5}},
			"faults": {"k":0,"mu_ms":0}}`,
		"negative wcet": `{
			"application": {"name":"a","graphs":[{"name":"G","period_ms":100,
				"processes":[{"name":"P"}],"edges":[]}]},
			"architecture": ["N1"],
			"wcet_ms": {"P": {"N1": -5}},
			"faults": {"k":0,"mu_ms":0}}`,
		"unknown fixed process": `{
			"application": {"name":"a","graphs":[{"name":"G","period_ms":100,
				"processes":[{"name":"P"}],"edges":[]}]},
			"architecture": ["N1"],
			"wcet_ms": {"P": {"N1": 5}},
			"faults": {"k":0,"mu_ms":0},
			"fixed_mapping": {"Q": "N1"}}`,
		"unknown constraint": `{
			"application": {"name":"a","graphs":[{"name":"G","period_ms":100,
				"processes":[{"name":"P"}],"edges":[]}]},
			"architecture": ["N1"],
			"wcet_ms": {"P": {"N1": 5}},
			"faults": {"k":0,"mu_ms":0},
			"force_reexecution": ["Q"]}`,
		"unmappable process": `{
			"application": {"name":"a","graphs":[{"name":"G","period_ms":100,
				"processes":[{"name":"P"}],"edges":[]}]},
			"architecture": ["N1"],
			"wcet_ms": {},
			"faults": {"k":0,"mu_ms":0}}`,
	}
	for name, doc := range cases {
		if _, err := ReadProblem(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted invalid document", name)
		}
	}
}

func TestWriteProblemRejectsDuplicateNames(t *testing.T) {
	app := model.NewApplication("dup")
	g := app.AddGraph("G", model.Ms(100), 0)
	app.AddProcess(g, "P")
	app.AddProcess(g, "P")
	w := arch.NewWCET()
	p := gen.Problem(gen.Spec{Procs: 2, Nodes: 1, Seed: 1}, fault.None)
	p.App = app
	p.WCET = w
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err == nil {
		t.Error("accepted duplicate process names")
	}
}

func TestWriteSchedule(t *testing.T) {
	p := gen.Problem(gen.Spec{Procs: 6, Nodes: 2, Seed: 2}, fault.Model{K: 1, Mu: model.Ms(5)})
	res, err := core.Optimize(p, func() core.Options {
		o := core.DefaultOptions(core.MXR)
		o.MaxIterations = 20
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc["schedulable"] != true {
		t.Errorf("schedulable = %v", doc["schedulable"])
	}
	nodes, ok := doc["nodes"].([]any)
	if !ok || len(nodes) != 2 {
		t.Fatalf("nodes = %v", doc["nodes"])
	}
	total := 0
	for _, n := range nodes {
		tbl, _ := n.(map[string]any)["table"].([]any)
		total += len(tbl)
	}
	if total != res.Schedule.Ex.NumInstances() {
		t.Errorf("exported %d table entries, want %d", total, res.Schedule.Ex.NumInstances())
	}
}
