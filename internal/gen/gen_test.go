package gen

import (
	"testing"
	"testing/quick"

	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Procs: 20, Nodes: 3, Shape: Random, Seed: 5}
	a1, _, w1 := Generate(spec)
	a2, _, w2 := Generate(spec)
	if a1.NumProcesses() != a2.NumProcesses() {
		t.Fatal("process counts differ")
	}
	g1, g2 := a1.Graphs()[0], a2.Graphs()[0]
	if len(g1.Edges()) != len(g2.Edges()) {
		t.Fatal("edge counts differ")
	}
	for i, e := range g1.Edges() {
		if g2.Edges()[i] != e {
			t.Fatal("edges differ")
		}
	}
	for _, p := range a1.Processes() {
		for _, n := range w1.AllowedNodes(p.ID) {
			if w1.MustGet(p.ID, n) != w2.MustGet(p.ID, n) {
				t.Fatal("WCETs differ")
			}
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	t.Run("tree", func(t *testing.T) {
		app, _, _ := Generate(Spec{Procs: 30, Nodes: 2, Shape: Tree, Seed: 1})
		g := app.Graphs()[0]
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every non-root has exactly one parent.
		roots := 0
		for _, p := range g.Processes() {
			switch len(g.Predecessors(p.ID)) {
			case 0:
				roots++
			case 1:
			default:
				t.Fatalf("tree process %v has %d parents", p, len(g.Predecessors(p.ID)))
			}
		}
		if roots != 1 {
			t.Errorf("tree has %d roots, want 1", roots)
		}
		if len(g.Edges()) != 29 {
			t.Errorf("tree has %d edges, want 29", len(g.Edges()))
		}
	})
	t.Run("chains", func(t *testing.T) {
		app, _, _ := Generate(Spec{Procs: 20, Nodes: 2, Shape: Chains, Seed: 1, ChainCount: 4})
		g := app.Graphs()[0]
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, p := range g.Processes() {
			if len(g.Predecessors(p.ID)) > 1 || len(g.Successors(p.ID)) > 1 {
				t.Fatalf("chain process %v has fan-in/out", p)
			}
		}
		if got := len(g.Sources()); got != 4 {
			t.Errorf("%d chains, want 4", got)
		}
	})
	t.Run("random", func(t *testing.T) {
		app, _, _ := Generate(Spec{Procs: 40, Nodes: 2, Shape: Random, Seed: 2})
		g := app.Graphs()[0]
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(g.Edges()) == 0 {
			t.Error("random graph has no edges")
		}
	})
}

func TestGenerateRanges(t *testing.T) {
	f := func(seed int64, shape8, dist8 uint8) bool {
		spec := Spec{
			Procs:    15,
			Nodes:    3,
			Shape:    Shape(shape8 % 3),
			WCETDist: Dist(dist8 % 2),
			Seed:     seed,
		}
		app, a, w := Generate(spec)
		if err := app.Validate(); err != nil {
			return false
		}
		if a.NumNodes() != 3 {
			return false
		}
		g := app.Graphs()[0]
		for _, p := range g.Processes() {
			nodes := w.AllowedNodes(p.ID)
			if len(nodes) != 3 {
				return false
			}
			for _, n := range nodes {
				c := w.MustGet(p.ID, n)
				if c < model.Ms(10) || c > model.Ms(100) {
					return false
				}
			}
		}
		for _, e := range g.Edges() {
			if e.Bytes < 1 || e.Bytes > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProblemBundles(t *testing.T) {
	fm := fault.Model{K: 3, Mu: model.Ms(5)}
	p := Problem(Spec{Procs: 10, Nodes: 2, Seed: 9}, fm)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated problem invalid: %v", err)
	}
	if p.Faults != fm {
		t.Error("fault model not propagated")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.withDefaults()
	if s.Procs != 20 || s.Nodes != 2 || s.WCETMin != model.Ms(10) || s.WCETMax != model.Ms(100) {
		t.Errorf("unexpected defaults: %+v", s)
	}
	if s.MsgMin != 1 || s.MsgMax != 4 {
		t.Errorf("unexpected message defaults: %+v", s)
	}
}
