// Package gen generates the synthetic workloads of the paper's
// evaluation (Section 6): applications of 20–100 processes on
// architectures of 2–6 nodes, with graphs of random structure as well as
// trees and groups of chains, execution times and message lengths drawn
// from uniform or exponential distributions within 10–100 ms and 1–4
// bytes. All randomness is seeded for reproducibility.
package gen

import (
	"fmt"
	"math/rand"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
)

// Shape selects the graph structure.
type Shape int

const (
	// Random graphs add forward edges between random process pairs.
	Random Shape = iota
	// Tree graphs give every process exactly one random parent.
	Tree
	// Chains builds groups of independent chains.
	Chains
)

func (s Shape) String() string {
	switch s {
	case Random:
		return "random"
	case Tree:
		return "tree"
	case Chains:
		return "chains"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Dist selects the sampling distribution for execution times.
type Dist int

const (
	// Uniform samples uniformly within [Min, Max].
	Uniform Dist = iota
	// Exponential samples an exponential clamped into [Min, Max].
	Exponential
)

func (d Dist) String() string {
	if d == Exponential {
		return "exponential"
	}
	return "uniform"
}

// Spec describes one synthetic application.
type Spec struct {
	Procs int
	Nodes int
	Shape Shape
	Seed  int64

	// EdgeProb is the probability of an extra forward edge between a
	// random pair (Random shape); <= 0 selects the default 0.15.
	EdgeProb float64

	// ChainCount is the number of chains for the Chains shape; <= 0
	// derives one chain per five processes.
	ChainCount int

	// WCETDist, WCETMin, WCETMax control execution times. Zero values
	// select the paper's 10–100 ms uniform range.
	WCETDist Dist
	WCETMin  model.Time
	WCETMax  model.Time

	// MsgMin, MsgMax bound message sizes in bytes; zero selects 1–4.
	MsgMin, MsgMax int

	// Deadline imposed on the graph; 0 leaves the application
	// unconstrained (the evaluation compares schedule lengths).
	Deadline model.Time
}

// withDefaults fills in the paper's parameters.
func (s Spec) withDefaults() Spec {
	if s.Procs <= 0 {
		s.Procs = 20
	}
	if s.Nodes <= 0 {
		s.Nodes = 2
	}
	if s.EdgeProb <= 0 {
		s.EdgeProb = 0.15
	}
	if s.ChainCount <= 0 {
		s.ChainCount = (s.Procs + 4) / 5
	}
	if s.WCETMin <= 0 {
		s.WCETMin = model.Ms(10)
	}
	if s.WCETMax <= s.WCETMin {
		s.WCETMax = model.Ms(100)
	}
	if s.MsgMin <= 0 {
		s.MsgMin = 1
	}
	if s.MsgMax < s.MsgMin {
		s.MsgMax = 4
	}
	return s
}

// Generate builds the application, architecture and WCET table of a
// specification. The same Spec always yields the same system.
func Generate(spec Spec) (*model.Application, *arch.Architecture, *arch.WCET) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	app := model.NewApplication(fmt.Sprintf("%s-%dp-%dn-s%d", spec.Shape, spec.Procs, spec.Nodes, spec.Seed))
	// A period large enough never to constrain the schedule; the
	// deadline (when given) is what matters.
	period := model.Time(spec.Procs+1)*spec.WCETMax*16 + model.Second
	deadline := spec.Deadline
	if deadline <= 0 || deadline > period {
		deadline = 0
	}
	g := app.AddGraph("G", period, deadline)

	procs := make([]*model.Process, spec.Procs)
	for i := range procs {
		procs[i] = app.AddProcess(g, fmt.Sprintf("P%d", i+1))
	}
	edges := make(map[[2]int]bool)
	addEdge := func(i, j int) {
		if i == j || edges[[2]int{i, j}] {
			return
		}
		edges[[2]int{i, j}] = true
		g.AddEdge(procs[i], procs[j], spec.MsgMin+rng.Intn(spec.MsgMax-spec.MsgMin+1))
	}

	switch spec.Shape {
	case Tree:
		for i := 1; i < spec.Procs; i++ {
			addEdge(rng.Intn(i), i)
		}
	case Chains:
		chains := spec.ChainCount
		if chains > spec.Procs {
			chains = spec.Procs
		}
		for i := chains; i < spec.Procs; i++ {
			// Process i continues the chain of process i-chains.
			addEdge(i-chains, i)
		}
	default: // Random
		for i := 1; i < spec.Procs; i++ {
			if rng.Float64() < 0.75 {
				addEdge(rng.Intn(i), i)
			}
		}
		extra := int(spec.EdgeProb * float64(spec.Procs) * 2)
		for e := 0; e < extra; e++ {
			i := rng.Intn(spec.Procs - 1)
			j := i + 1 + rng.Intn(spec.Procs-i-1)
			addEdge(i, j)
		}
	}

	a := arch.New(spec.Nodes)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < spec.Nodes; n++ {
			w.Set(p.ID, arch.NodeID(n), spec.sampleWCET(rng))
		}
	}
	return app, a, w
}

// sampleWCET draws one execution time, quantized to whole milliseconds
// as in the paper's tables.
func (s Spec) sampleWCET(rng *rand.Rand) model.Time {
	span := s.WCETMax - s.WCETMin
	var v model.Time
	switch s.WCETDist {
	case Exponential:
		// Mean at a quarter of the span, clamped into the range.
		v = model.Time(rng.ExpFloat64() * float64(span) / 4)
		if v > span {
			v = span
		}
	default:
		v = model.Time(rng.Int63n(int64(span) + 1))
	}
	ms := (s.WCETMin + v + model.Millisecond/2) / model.Millisecond
	return ms * model.Millisecond
}

// Problem bundles a generated system with a fault model into a
// design-optimization problem.
func Problem(spec Spec, fm fault.Model) core.Problem {
	app, a, w := Generate(spec)
	return core.Problem{App: app, Arch: a, WCET: w, Faults: fm}
}
