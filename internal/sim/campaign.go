package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/sched"
)

// Campaign configures a fault-injection campaign over a synthesized
// schedule: either exhaustive enumeration of all scenarios within the
// fault hypothesis (when their count does not exceed ExhaustiveLimit) or
// adversarial scenarios plus random sampling.
type Campaign struct {
	// ExhaustiveLimit bounds exhaustive enumeration; above it, sampling
	// is used. <= 0 selects 200000.
	ExhaustiveLimit int64
	// Samples is the number of random full-budget scenarios when not
	// exhaustive. <= 0 selects 10000.
	Samples int
	// Seed drives the sampling RNG.
	Seed int64
}

// CampaignResult aggregates a fault-injection campaign.
type CampaignResult struct {
	// Scenarios is the number of executed scenarios.
	Scenarios int64
	// Exhaustive reports whether every scenario of the hypothesis ran.
	Exhaustive bool
	// WorstMakespan is the latest observed completion of a whole cycle,
	// with the scenario that caused it.
	WorstMakespan model.Time
	WorstScenario Scenario
	// AnalysisBound is the scheduler's worst-case schedule length.
	AnalysisBound model.Time
	// Violations counts scenarios with deadline misses or failed
	// processes (none are expected for a schedulable design within the
	// hypothesis).
	Violations int64
	// FirstViolation records one offending scenario, when any.
	FirstViolation Scenario
	// ProcWorst is the worst observed completion per merged process.
	ProcWorst map[model.ProcID]model.Time
	// Histogram buckets the makespans of all scenarios into ten equal
	// bins of [0, AnalysisBound].
	Histogram [10]int64
}

// Run executes the campaign.
func (c Campaign) Run(s *sched.Schedule) *CampaignResult {
	limit := c.ExhaustiveLimit
	if limit <= 0 {
		limit = 200000
	}
	samples := c.Samples
	if samples <= 0 {
		samples = 10000
	}
	res := &CampaignResult{
		AnalysisBound: s.Makespan,
		ProcWorst:     make(map[model.ProcID]model.Time, s.In.Graph.NumProcesses()),
	}
	record := func(sc Scenario) {
		r := Run(s, sc)
		res.Scenarios++
		if r.Makespan > res.WorstMakespan {
			res.WorstMakespan = r.Makespan
			res.WorstScenario = cloneScenario(sc)
		}
		if !r.OK() {
			if res.Violations == 0 {
				res.FirstViolation = cloneScenario(sc)
			}
			res.Violations++
		}
		for id, done := range r.ProcDone {
			if done > res.ProcWorst[id] {
				res.ProcWorst[id] = done
			}
		}
		if res.AnalysisBound > 0 {
			b := int(int64(r.Makespan) * 10 / int64(res.AnalysisBound))
			if b > 9 {
				b = 9
			}
			if b < 0 {
				b = 0
			}
			res.Histogram[b]++
		}
	}
	if ScenarioCount(s) <= limit {
		res.Exhaustive = true
		ForEachScenario(s, func(sc Scenario) bool {
			record(sc)
			return true
		})
		return res
	}
	for _, sc := range AdversarialScenarios(s) {
		record(sc)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	for i := 0; i < samples; i++ {
		record(RandomScenario(rng, s))
	}
	return res
}

func cloneScenario(sc Scenario) Scenario {
	out := make(Scenario, len(sc))
	for id, f := range sc {
		out[id] = f
	}
	return out
}

// Format renders the campaign result as a human-readable report.
func (res *CampaignResult) Format(s *sched.Schedule) string {
	var b strings.Builder
	mode := "sampled"
	if res.Exhaustive {
		mode = "exhaustive"
	}
	fmt.Fprintf(&b, "fault-injection campaign: %d scenarios (%s)\n", res.Scenarios, mode)
	fmt.Fprintf(&b, "  worst observed cycle: %v (analysis bound %v)\n", res.WorstMakespan, res.AnalysisBound)
	if len(res.WorstScenario) > 0 {
		fmt.Fprintf(&b, "  worst scenario: %s\n", describeScenario(s, res.WorstScenario))
	}
	if res.Violations > 0 {
		fmt.Fprintf(&b, "  VIOLATIONS in %d scenarios, e.g. %s\n",
			res.Violations, describeScenario(s, res.FirstViolation))
	} else {
		b.WriteString("  no violations: every scenario met all deadlines\n")
	}
	b.WriteString("  makespan distribution (bins of analysis bound):\n")
	maxCount := int64(1)
	for _, n := range res.Histogram {
		if n > maxCount {
			maxCount = n
		}
	}
	for i, n := range res.Histogram {
		bar := strings.Repeat("#", int(n*40/maxCount))
		fmt.Fprintf(&b, "    %3d-%3d%% %8d %s\n", i*10, (i+1)*10, n, bar)
	}
	return b.String()
}

// describeScenario renders a scenario with instance names.
func describeScenario(s *sched.Schedule, sc Scenario) string {
	if len(sc) == 0 {
		return "fault-free"
	}
	type entry struct {
		name   string
		faults int
	}
	var entries []entry
	for id, f := range sc {
		entries = append(entries, entry{s.Item(id).Inst.Name(), f})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var parts []string
	for _, e := range entries {
		parts = append(parts, fmt.Sprintf("%d×%s", e.faults, e.name))
	}
	return strings.Join(parts, ", ")
}
