package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

// buildFigure7 reconstructs the paper's Figure 7 system: P1→P2→P3, P2
// replicated on both nodes, P1 and P3 re-executed on N1; k=1, µ=10ms.
func buildFigure7(t *testing.T) (*sched.Schedule, []model.ProcID) {
	t.Helper()
	app := model.NewApplication("fig7")
	g := app.AddGraph("G", model.Ms(1000), model.Ms(1000))
	p1 := app.AddProcess(g, "P1")
	p2 := app.AddProcess(g, "P2")
	p3 := app.AddProcess(g, "P3")
	g.AddEdge(p1, p2, 4)
	g.AddEdge(p2, p3, 4)
	a := arch.New(2)
	w := arch.NewWCET()
	for n := arch.NodeID(0); n < 2; n++ {
		w.Set(p1.ID, n, model.Ms(40))
		w.Set(p2.ID, n, model.Ms(80))
		w.Set(p3.ID, n, model.Ms(50))
	}
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	in := sched.Input{
		Graph:  merged,
		Arch:   a,
		WCET:   w,
		Faults: fault.Model{K: 1, Mu: model.Ms(10)},
		Assignment: policy.Assignment{
			p1.ID: policy.Reexecution(0, 1),
			p2.ID: policy.Replication(0, 1),
			p3.ID: policy.Reexecution(0, 1),
		},
		Bus:     ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options: sched.DefaultOptions(),
	}
	s, err := sched.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]model.ProcID, 3)
	for i, p := range merged.Processes() {
		ids[i] = p.ID
	}
	return s, ids
}

func TestFaultFreeRunMatchesNominal(t *testing.T) {
	s, ids := buildFigure7(t)
	r := Run(s, Scenario{})
	if !r.OK() {
		t.Fatalf("fault-free run has violations: %v", r.Violations)
	}
	for _, it := range s.Items() {
		if !r.Alive[it.Inst.ID] {
			t.Errorf("%v not alive in fault-free run", it.Inst)
		}
		if r.Finish[it.Inst.ID] != it.NominalFinish {
			t.Errorf("%v finish = %v, want nominal %v", it.Inst, r.Finish[it.Inst.ID], it.NominalFinish)
		}
	}
	for _, id := range ids {
		if r.ProcDone[id] != s.ProcNominalCompletion(id) {
			t.Errorf("proc %d done = %v, want nominal %v", id, r.ProcDone[id], s.ProcNominalCompletion(id))
		}
	}
}

// TestFigure7ContingencySimulation injects the fault of the paper's
// Figure 7 discussion: P2's replica on N1 fails, so P3 must wait for m2
// from the replica on N2 and run without re-execution slack.
func TestFigure7ContingencySimulation(t *testing.T) {
	s, ids := buildFigure7(t)
	p2 := ids[1]
	p3 := ids[2]
	var p2OnN1 policy.InstID = -1
	for _, inst := range s.Ex.Of(p2) {
		if inst.Node == 0 {
			p2OnN1 = inst.ID
		}
	}
	if p2OnN1 < 0 {
		t.Fatal("no replica of P2 on N1")
	}
	r := Run(s, Scenario{p2OnN1: 1})
	if !r.OK() {
		t.Fatalf("scenario has violations: %v", r.Violations)
	}
	if r.Alive[p2OnN1] {
		t.Fatal("P2/1 should be dead")
	}
	p3Inst := s.Ex.Of(p3)[0]
	// m2 from P2/2 arrives at 200 (see sched.TestFigure7); P3 starts
	// there (contingency) and, with the budget exhausted, finishes at
	// 250 — exactly the analysis worst case.
	if got := r.Finish[p3Inst.ID]; got != model.Ms(250) {
		t.Errorf("P3 finish = %v, want 250ms (contingency switch)", got)
	}
	if r.ProcDone[p3] != model.Ms(250) {
		t.Errorf("P3 completion = %v, want 250ms", r.ProcDone[p3])
	}
}

func TestOverBudgetScenarioFails(t *testing.T) {
	s, ids := buildFigure7(t)
	// Kill both replicas of P2: 2 faults, above the k=1 hypothesis.
	sc := Scenario{}
	for _, inst := range s.Ex.Of(ids[1]) {
		sc[inst.ID] = 1
	}
	r := Run(s, sc)
	if r.OK() {
		t.Fatal("killing all replicas must be reported")
	}
}

func TestScenarioHelpers(t *testing.T) {
	s, _ := buildFigure7(t)
	// 4 instances, k=1: C(5,1) = 5 scenarios.
	if n := ScenarioCount(s); n != 5 {
		t.Errorf("ScenarioCount = %d, want 5", n)
	}
	var count int
	ForEachScenario(s, func(sc Scenario) bool {
		if sc.TotalFaults() > 1 {
			t.Errorf("scenario %v exceeds budget", sc)
		}
		count++
		return true
	})
	if count != 5 {
		t.Errorf("enumerated %d scenarios, want 5", count)
	}
	rng := rand.New(rand.NewSource(1))
	sc := RandomScenario(rng, s)
	if sc.TotalFaults() != 1 {
		t.Errorf("RandomScenario faults = %d, want 1", sc.TotalFaults())
	}
	adv := AdversarialScenarios(s)
	if len(adv) == 0 {
		t.Error("no adversarial scenarios")
	}
	for _, a := range adv {
		if a.TotalFaults() > 1 {
			t.Errorf("adversarial scenario %v exceeds budget", a)
		}
	}
}

// TestAnalysisSoundness is the central validation of the reproduction:
// for random systems, every fault scenario within the hypothesis must
// (a) complete every process by its analyzed worst case and (b) meet all
// deadlines whenever the analysis declared the design schedulable.
func TestAnalysisSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, _ := randomSystem(rng, 3+rng.Intn(6), 2+rng.Intn(2), 1+rng.Intn(2))
		s, err := sched.Build(in)
		if err != nil {
			t.Logf("Build: %v", err)
			return false
		}
		ok := true
		check := func(sc Scenario) bool {
			r := Run(s, sc)
			if s.Schedulable() && !r.OK() {
				t.Logf("seed %d scenario %v: violations %v", seed, sc, r.Violations)
				ok = false
				return false
			}
			for _, it := range s.Items() {
				if r.Alive[it.Inst.ID] && r.Finish[it.Inst.ID] > it.WCFinish {
					t.Logf("seed %d scenario %v: %v finished %v after analysis bound %v",
						seed, sc, it.Inst, r.Finish[it.Inst.ID], it.WCFinish)
					ok = false
					return false
				}
			}
			for id, done := range r.ProcDone {
				if done > s.ProcCompletion(id) {
					t.Logf("seed %d scenario %v: proc %d done %v after bound %v",
						seed, sc, id, done, s.ProcCompletion(id))
					ok = false
					return false
				}
			}
			return true
		}
		if ScenarioCount(s) <= 4000 {
			ForEachScenario(s, check)
		} else {
			for _, sc := range AdversarialScenarios(s) {
				if !check(sc) {
					break
				}
			}
			for i := 0; i < 200 && ok; i++ {
				check(RandomScenario(rng, s))
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomSystem mirrors the sched test helper (kept local to avoid
// exporting test-only code across packages).
func randomSystem(rng *rand.Rand, nProcs, nNodes, k int) (sched.Input, *model.Application) {
	app := model.NewApplication("rand")
	g := app.AddGraph("G", model.Ms(100000), model.Ms(100000))
	procs := make([]*model.Process, nProcs)
	for i := range procs {
		procs[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < nProcs; i++ {
		for j := i + 1; j < nProcs; j++ {
			if rng.Intn(3) == 0 {
				g.AddEdge(procs[i], procs[j], 1+rng.Intn(4))
			}
		}
	}
	a := arch.New(nNodes)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < nNodes; n++ {
			w.Set(p.ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(91))))
		}
	}
	asgn := policy.Assignment{}
	for _, p := range procs {
		rmax := k + 1
		if nNodes < rmax {
			rmax = nNodes
		}
		r := 1 + rng.Intn(rmax)
		perm := rng.Perm(nNodes)[:r]
		nodes := make([]arch.NodeID, r)
		for i, n := range perm {
			nodes[i] = arch.NodeID(n)
		}
		asgn[p.ID] = policy.Distribute(nodes, k)
	}
	merged, err := app.Merge()
	if err != nil {
		panic(err)
	}
	return sched.Input{
		Graph:      merged,
		Arch:       a,
		WCET:       w,
		Faults:     fault.Model{K: k, Mu: model.Ms(5)},
		Assignment: asgn,
		Bus:        ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options:    sched.DefaultOptions(),
	}, app
}
