package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/ftdse/internal/sched"
)

func TestCampaignExhaustive(t *testing.T) {
	s, _ := buildFigure7(t)
	res := Campaign{}.Run(s)
	if !res.Exhaustive {
		t.Fatal("small system should be enumerated exhaustively")
	}
	if res.Scenarios != ScenarioCount(s) {
		t.Errorf("ran %d scenarios, want %d", res.Scenarios, ScenarioCount(s))
	}
	if res.Violations != 0 {
		t.Errorf("violations: %d (first %v)", res.Violations, res.FirstViolation)
	}
	if res.WorstMakespan > res.AnalysisBound {
		t.Errorf("worst observed %v beyond bound %v", res.WorstMakespan, res.AnalysisBound)
	}
	// Figure 7: the worst case 250ms is actually reached by the
	// P2/1-kill scenario, so the bound is tight here.
	if res.WorstMakespan != res.AnalysisBound {
		t.Errorf("bound should be tight on Figure 7: %v vs %v", res.WorstMakespan, res.AnalysisBound)
	}
	var total int64
	for _, n := range res.Histogram {
		total += n
	}
	if total != res.Scenarios {
		t.Errorf("histogram holds %d of %d scenarios", total, res.Scenarios)
	}
	out := res.Format(s)
	for _, want := range []string{"exhaustive", "no violations", "worst scenario"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, _ := randomSystem(rng, 10, 3, 2)
	s, err := sched.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	res := Campaign{ExhaustiveLimit: 10, Samples: 500, Seed: 7}.Run(s)
	if res.Exhaustive {
		t.Fatal("campaign should have sampled")
	}
	// adversarial scenarios + 500 samples
	if res.Scenarios <= 500 {
		t.Errorf("ran %d scenarios, want > 500", res.Scenarios)
	}
	if res.Violations != 0 {
		t.Errorf("violations: %d", res.Violations)
	}
	if res.WorstMakespan > res.AnalysisBound {
		t.Errorf("worst observed %v beyond bound %v", res.WorstMakespan, res.AnalysisBound)
	}
	out := res.Format(s)
	if !strings.Contains(out, "sampled") {
		t.Errorf("report should say sampled:\n%s", out)
	}
}

func TestDescribeScenario(t *testing.T) {
	s, ids := buildFigure7(t)
	if got := describeScenario(s, Scenario{}); got != "fault-free" {
		t.Errorf("empty scenario = %q", got)
	}
	inst := s.Ex.Of(ids[0])[0]
	got := describeScenario(s, Scenario{inst.ID: 1})
	if !strings.Contains(got, "P1") {
		t.Errorf("scenario description = %q", got)
	}
}
