// Package sim is a discrete-time execution simulator for synthesized
// fault-tolerant schedules: the counterpart of the real-time kernel and
// TTP controllers of the paper's Section 2.2. It executes the static
// schedule tables under a concrete transient-fault scenario, applying
// the runtime rules of the paper:
//
//   - a process starts at its table time, delayed only by its node being
//     busy (contingency switch after local faults) or by its inputs not
//     yet being valid (waiting for the first valid replica message);
//   - a faulty execution is detected at its end, costs µ of recovery,
//     and is re-executed if the replica has re-execution budget left,
//     otherwise the replica dies;
//   - messages leave in their fixed MEDL slots; a frame carries valid
//     data only if its sender replica completed before the slot starts.
//
// The simulator is the ground truth against which the scheduler's
// worst-case analysis is validated: for every scenario within the fault
// hypothesis, actual completions must stay below the analysis bounds and
// all deadlines of a schedulable design must hold.
package sim

import (
	"fmt"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// Scenario assigns a number of transient faults to replica instances;
// instances absent from the map run fault-free. Faults hit consecutive
// execution attempts of the instance (worst case: detection at the end
// of each attempt).
type Scenario map[policy.InstID]int

// TotalFaults returns the number of faults in the scenario.
func (sc Scenario) TotalFaults() int {
	n := 0
	for _, f := range sc {
		n += f
	}
	return n
}

// Result is the outcome of one simulated operation cycle.
type Result struct {
	// Finish is the completion time of every surviving instance.
	Finish map[policy.InstID]model.Time
	// Alive reports whether an instance produced valid output.
	Alive map[policy.InstID]bool
	// ProcDone is the first valid completion per merged-graph process.
	ProcDone map[model.ProcID]model.Time
	// Violations lists everything that went wrong: starved processes,
	// missed deadlines, messages sent before their data was ready.
	Violations []string
	// Makespan is the latest first-valid completion.
	Makespan model.Time
}

// OK reports whether the cycle completed with every process producing a
// result on time.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Run executes the schedule under the scenario and returns the observed
// timings.
func Run(s *sched.Schedule, sc Scenario) *Result {
	r := &Result{
		Finish:   make(map[policy.InstID]model.Time),
		Alive:    make(map[policy.InstID]bool),
		ProcDone: make(map[model.ProcID]model.Time),
	}
	in := s.In
	ex := s.Ex
	mu := in.Faults.Mu

	edgeIdx := make(map[[2]model.ProcID]int, len(in.Graph.Edges()))
	for i, e := range in.Graph.Edges() {
		edgeIdx[[2]model.ProcID{e.Src, e.Dst}] = i
	}

	// Dependencies: an instance can be simulated once its process
	// predecessors' instances and its node predecessor are done.
	blocked := make(map[policy.InstID]int, len(s.Items()))
	dependents := make(map[policy.InstID][]policy.InstID)
	nodeFree := make(map[arch.NodeID]model.Time, in.Arch.NumNodes())
	for _, it := range s.Items() {
		id := it.Inst.ID
		deps := 0
		for _, e := range in.Graph.Predecessors(it.Inst.Proc.ID) {
			for _, src := range ex.Of(e.Src) {
				deps++
				dependents[src.ID] = append(dependents[src.ID], id)
			}
		}
		if it.NodePos > 0 {
			prev := s.NodeSequence(it.Inst.Node)[it.NodePos-1]
			deps++
			dependents[prev.Inst.ID] = append(dependents[prev.Inst.ID], id)
		}
		blocked[id] = deps
	}
	var ready []policy.InstID
	for _, it := range s.Items() {
		if blocked[it.Inst.ID] == 0 {
			ready = append(ready, it.Inst.ID)
		}
	}

	simulated := 0
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		id := ready[0]
		ready = ready[1:]
		simulated++

		it := s.Item(id)
		inst := it.Inst
		start, starved := r.readyTime(s, it, edgeIdx)
		if starved {
			r.Violations = append(r.Violations,
				fmt.Sprintf("instance %s starved: no valid input in this scenario", inst))
			// The node stays idle for this instance; mark dead.
			r.Alive[id] = false
		} else {
			if nf := nodeFree[inst.Node]; nf > start {
				start = nf
			}
			if it.NominalStart > start {
				start = it.NominalStart
			}
			faults := sc[id]
			exec := inst.ExecTime(in.Faults.Chi)
			recover := inst.RecoverTime(mu)
			if faults <= inst.Reexec {
				// Survives after recovering from `faults` faults (each
				// re-executes the hit segment: the whole process without
				// checkpoints, one segment with them).
				fin := start + exec + model.Time(faults)*recover
				r.Finish[id] = fin
				r.Alive[id] = true
				nodeFree[inst.Node] = fin
			} else {
				// Dies after exhausting its recoveries: all but the last
				// segment complete, then the fatal fault chain occupies
				// the node for x·d + µ more.
				r.Alive[id] = false
				nodeFree[inst.Node] = start + exec + model.Time(inst.Reexec)*recover + mu
			}
		}
		for _, dep := range dependents[id] {
			blocked[dep]--
			if blocked[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if simulated != len(s.Items()) {
		r.Violations = append(r.Violations, "internal: dependency cycle in simulation order")
		return r
	}

	// Note on message discipline: a surviving sender may legitimately
	// miss its fixed MEDL slot when the faults hitting its node exceed
	// its own re-execution count (the transmission rule only guarantees
	// the slot under at most Reexec node-local faults). The frame then
	// carries invalid data and receivers ignore it — the sender simply
	// looks dead downstream, which the readiness rule above models, and
	// which the scheduler's kill-cost analysis charges the adversary
	// Reexec+1 faults for.

	// Per-process completion and deadlines.
	for _, p := range in.Graph.Processes() {
		first := model.Infinity
		for _, inst := range ex.Of(p.ID) {
			if r.Alive[inst.ID] {
				first = model.MinTime(first, r.Finish[inst.ID])
			}
		}
		if first == model.Infinity {
			r.Violations = append(r.Violations,
				fmt.Sprintf("process %s: all replicas failed", p))
			continue
		}
		r.ProcDone[p.ID] = first
		if first > r.Makespan {
			r.Makespan = first
		}
		if p.Deadline > 0 && first > p.Deadline {
			r.Violations = append(r.Violations,
				fmt.Sprintf("process %s finished at %v, deadline %v", p, first, p.Deadline))
		}
	}
	return r
}

// readyTime returns the time at which the instance has, per incoming
// edge, at least one valid input available, or starved=true when some
// edge never delivers in this scenario.
func (r *Result) readyTime(s *sched.Schedule, it *sched.Item, edgeIdx map[[2]model.ProcID]int) (t model.Time, starved bool) {
	in := s.In
	inst := it.Inst
	t = inst.Proc.Release
	for _, e := range in.Graph.Predecessors(inst.Proc.ID) {
		idx := edgeIdx[[2]model.ProcID{e.Src, e.Dst}]
		valid := model.Infinity
		for _, src := range s.Ex.Of(e.Src) {
			if !r.Alive[src.ID] {
				continue
			}
			if src.Node == inst.Node {
				valid = model.MinTime(valid, r.Finish[src.ID])
				continue
			}
			sit := s.Item(src.ID)
			tr, ok := sit.Msgs[idx]
			if !ok {
				continue
			}
			if r.Finish[src.ID] <= tr.Start {
				valid = model.MinTime(valid, tr.Arrival)
			}
		}
		if valid == model.Infinity {
			return 0, true
		}
		t = model.MaxTime(t, valid)
	}
	return t, false
}
