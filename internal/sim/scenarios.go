package sim

import (
	"math/rand"

	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// ForEachScenario enumerates every fault scenario with at most k faults
// over the instances of the schedule (including the fault-free one) and
// calls yield for each; enumeration stops early when yield returns
// false. The number of scenarios is C(n+k, k) for n instances — use
// ScenarioCount to decide whether enumeration is feasible.
func ForEachScenario(s *sched.Schedule, yield func(Scenario) bool) {
	insts := s.Ex.Instances
	fault.Enumerate(len(insts), s.In.Faults.K, func(d fault.Distribution) bool {
		sc := make(Scenario)
		for i, f := range d {
			if f > 0 {
				sc[insts[i].ID] = f
			}
		}
		return yield(sc)
	})
}

// ScenarioCount returns the number of scenarios ForEachScenario would
// yield (saturating).
func ScenarioCount(s *sched.Schedule) int64 {
	return fault.Count(s.Ex.NumInstances(), s.In.Faults.K)
}

// RandomScenario draws a scenario with exactly the full fault budget,
// uniformly over instance sequences.
func RandomScenario(rng *rand.Rand, s *sched.Schedule) Scenario {
	insts := s.Ex.Instances
	d := fault.Sample(rng, len(insts), s.In.Faults.K)
	sc := make(Scenario)
	for i, f := range d {
		if f > 0 {
			sc[insts[i].ID] = f
		}
	}
	return sc
}

// AdversarialScenarios returns a set of heuristically bad scenarios:
// the full budget concentrated on each single instance, and the budget
// spent killing instances along the schedule's critical path. These are
// the scenarios most likely to expose analysis optimism and are used by
// the validation tests alongside random sampling.
func AdversarialScenarios(s *sched.Schedule) []Scenario {
	k := s.In.Faults.K
	var out []Scenario
	for _, inst := range s.Ex.Instances {
		if k > 0 {
			out = append(out, Scenario{inst.ID: k})
		}
	}
	// Kill-the-critical-path: spend the budget killing the cheapest
	// replicas of the processes on the critical path, in order.
	cp := s.CriticalPath()
	budget := k
	sc := make(Scenario)
	for _, origin := range cp {
		if budget == 0 {
			break
		}
		for _, p := range s.In.Graph.Processes() {
			if p.Origin != origin {
				continue
			}
			var cheapest *policyInstRef
			for _, inst := range s.Ex.Of(p.ID) {
				cost := inst.Reexec + 1
				if cost <= budget && (cheapest == nil || cost < cheapest.cost) {
					cheapest = &policyInstRef{id: inst.ID, cost: cost}
				}
			}
			if cheapest != nil {
				sc[cheapest.id] = cheapest.cost
				budget -= cheapest.cost
			}
		}
	}
	if len(sc) > 0 {
		out = append(out, sc)
	}
	return out
}

type policyInstRef struct {
	id   policy.InstID
	cost int
}
