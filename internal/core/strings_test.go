package core

import (
	"strings"
	"testing"

	"repro/ftdse/internal/model"
)

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		MXR: "MXR", MX: "MX", MR: "MR", SFX: "SFX", NFT: "NFT",
		Strategy(42): "Strategy(42)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestCostString(t *testing.T) {
	ok := Cost{Makespan: model.Ms(120)}
	if got := ok.String(); got != "δ=120ms" {
		t.Errorf("schedulable cost = %q", got)
	}
	bad := Cost{Makespan: model.Ms(120), Tardiness: model.Ms(30)}
	if got := bad.String(); !strings.Contains(got, "tardy=30ms") {
		t.Errorf("tardy cost = %q", got)
	}
}

func TestCostLess(t *testing.T) {
	a := Cost{Tardiness: 0, Makespan: model.Ms(100)}
	b := Cost{Tardiness: 0, Makespan: model.Ms(110)}
	c := Cost{Tardiness: model.Ms(1), Makespan: model.Ms(50)}
	if !a.Less(b) || b.Less(a) {
		t.Error("makespan ordering wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("tardiness must dominate makespan")
	}
	if !b.Less(c) {
		t.Error("any schedulable cost beats any tardy one")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
	if !a.Schedulable() || c.Schedulable() {
		t.Error("Schedulable wrong")
	}
}

func TestMoveString(t *testing.T) {
	p := diamondProblem(t, 1, 0)
	st, err := newSearchState(p, DefaultOptions(MXR))
	if err != nil {
		t.Fatal(err)
	}
	asgn, err := st.initialMPA()
	if err != nil {
		t.Fatal(err)
	}
	moves := st.generateMoves(asgn, []model.ProcID{p.App.Processes()[0].ID})
	if len(moves) == 0 {
		t.Fatal("no moves")
	}
	if s := moves[0].String(); !strings.Contains(s, "P0") || !strings.Contains(s, "→") {
		t.Errorf("move string = %q", s)
	}
}
