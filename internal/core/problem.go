// Package core implements the paper's contribution: the design
// optimization strategy of Section 5 (Figure 6) that decides, for a hard
// real-time application on a TTP-based distributed architecture, the
// mapping of processes to nodes and the assignment of fault-tolerance
// policies (re-execution, active replication, or combinations) such that
// k transient faults are tolerated and all deadlines hold.
//
// The strategy has three steps: a fast constructive initial solution
// (InitialBusAccess + InitialMPA), a greedy improvement loop (GreedyMPA)
// and a tabu search (TabuSearchMPA, Figure 9). Besides the paper's MXR
// approach the package implements the evaluation baselines MX
// (re-execution only), MR (replication only), SFX (fault-oblivious
// mapping followed by re-execution) and NFT (the non-fault-tolerant
// reference).
package core

import (
	"fmt"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
)

// sortedProcIDs returns the keys of m in ascending order: constraint
// walks report the same error for the same problem on every run.
func sortedProcIDs[V any](m map[model.ProcID]V) []model.ProcID {
	ids := make([]model.ProcID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Problem is a design-optimization instance: the application, the
// architecture with its WCET table, the fault hypothesis, and the
// designer-imposed constraints (the sets P_X, P_R and P_M of Section 4).
type Problem struct {
	App    *model.Application
	Arch   *arch.Architecture
	WCET   *arch.WCET
	Faults fault.Model

	// ForceReexecution (P_X) pins the listed processes to the pure
	// re-execution policy; ForceReplication (P_R) pins them to pure
	// active replication. A process may appear in at most one set.
	ForceReexecution map[model.ProcID]bool
	ForceReplication map[model.ProcID]bool

	// FixedMapping (P_M) pins the first replica of a process to a node.
	FixedMapping map[model.ProcID]arch.NodeID
}

// Validate checks the problem for consistency.
func (p Problem) Validate() error {
	if p.App == nil || p.Arch == nil || p.WCET == nil {
		return fmt.Errorf("core: incomplete problem")
	}
	if err := p.App.Validate(); err != nil {
		return err
	}
	if err := p.Arch.Validate(); err != nil {
		return err
	}
	if err := p.Faults.Validate(); err != nil {
		return err
	}
	for _, id := range sortedProcIDs(p.ForceReexecution) {
		if p.ForceReplication[id] {
			return fmt.Errorf("core: process %d in both P_X and P_R", id)
		}
		if p.App.Process(id) == nil {
			return fmt.Errorf("core: P_X references unknown process %d", id)
		}
	}
	for _, id := range sortedProcIDs(p.ForceReplication) {
		if p.App.Process(id) == nil {
			return fmt.Errorf("core: P_R references unknown process %d", id)
		}
		if len(p.WCET.AllowedNodes(id)) < p.Faults.K+1 {
			return fmt.Errorf("core: process %d forced to replication but has only %d allowed nodes for k=%d",
				id, len(p.WCET.AllowedNodes(id)), p.Faults.K)
		}
	}
	for _, id := range sortedProcIDs(p.FixedMapping) {
		n := p.FixedMapping[id]
		if p.App.Process(id) == nil {
			return fmt.Errorf("core: P_M references unknown process %d", id)
		}
		if _, ok := p.WCET.Get(id, n); !ok {
			return fmt.Errorf("core: process %d fixed to node %d where it cannot run", id, n)
		}
	}
	// Every process must be mappable somewhere; replication-capable
	// checks are per strategy.
	for _, proc := range p.App.Processes() {
		if len(p.WCET.AllowedNodes(proc.ID)) == 0 {
			return fmt.Errorf("core: process %s has no allowed node", proc)
		}
	}
	return nil
}

// policyFreedom classifies what the optimizer may change for a process
// under a given strategy and the problem constraints.
type policyFreedom int

const (
	freeAny    policyFreedom = iota // policy and mapping moves
	freeReexec                      // pure re-execution, mapping moves only
	freeRepl                        // pure replication, replica remaps only
)

// freedomOf resolves the per-process freedom for a strategy.
func (p Problem) freedomOf(id model.ProcID, strat Strategy) policyFreedom {
	if p.ForceReexecution[id] {
		return freeReexec
	}
	if p.ForceReplication[id] {
		return freeRepl
	}
	switch strat {
	case MX, SFX, NFT:
		return freeReexec
	case MR:
		return freeRepl
	default:
		return freeAny
	}
}

// reexecCount is the number of re-executions a pure re-execution policy
// needs under this problem's fault model.
func (p Problem) reexecCount() int { return p.Faults.K }

// mergedGraph builds the merged application graph Γ.
func (p Problem) mergedGraph() (*model.Graph, error) {
	return p.App.Merge()
}
