package core

import (
	"context"
	"fmt"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

// searchState carries the immutable context of one optimization run.
// Everything except bus/static (swapped wholesale by the bus-access
// optimization) and the evaluator's memoization cache is read-only
// after construction, which is what allows the evaluator to fan
// sched.Build calls out over concurrent workers. Engines reach it
// through the Search handle; portfolio racers get a private state each
// (Search.Fork), so no searchState is ever shared between goroutines.
type searchState struct {
	p      Problem
	opts   Options
	merged *model.Graph
	bus    ttp.Config
	static *sched.Static // precomputed for the current bus configuration
	eval   *evaluator    // concurrent, memoizing move evaluation

	// rec is the run's flight recorder; nil (the default) disables
	// event capture. Forked racer states share the parent's recorder so
	// one trace covers the whole run.
	rec *flightRecorder

	// origins are the original (pre-merge) process IDs, sorted.
	origins []model.ProcID
	// prio is the priority of each origin: the maximum bottom level over
	// its merged instances. Used for the initial mapping order.
	prio map[model.ProcID]model.Time
}

// rebuildStatic revalidates and precomputes the scheduling context;
// called at construction and whenever the bus configuration changes.
// Memoized move evaluations are dropped: they are only valid for the
// bus configuration they were costed under.
func (st *searchState) rebuildStatic() error {
	s, err := sched.NewStatic(sched.Input{
		Graph:  st.merged,
		Arch:   st.p.Arch,
		WCET:   st.p.WCET,
		Faults: st.p.Faults,
		Bus:    st.bus,
	})
	if err != nil {
		return err
	}
	st.static = s
	if st.eval != nil {
		st.eval.invalidate()
	}
	return nil
}

func newSearchState(p Problem, opts Options) (*searchState, error) {
	merged, err := p.mergedGraph()
	if err != nil {
		return nil, err
	}
	bus := ttp.InitialConfig(p.Arch, merged.MaxMessageBytes(), ttp.DefaultPerByte)

	st := &searchState{p: p, opts: opts, merged: merged, bus: bus}
	if err := st.rebuildStatic(); err != nil {
		return nil, err
	}
	bl := sched.BottomLevels(sched.Input{Graph: merged, Arch: p.Arch, WCET: p.WCET, Bus: bus})
	st.prio = make(map[model.ProcID]model.Time)
	seen := make(map[model.ProcID]bool)
	for _, proc := range merged.Processes() {
		if bl[proc.ID] > st.prio[proc.Origin] {
			st.prio[proc.Origin] = bl[proc.ID]
		}
		if !seen[proc.Origin] {
			seen[proc.Origin] = true
			st.origins = append(st.origins, proc.Origin)
		}
	}
	sort.Slice(st.origins, func(i, j int) bool { return st.origins[i] < st.origins[j] })
	st.eval = newEvaluator(st, opts.Workers)
	return st, nil
}

// schedInput assembles the scheduler input for an assignment.
func (st *searchState) schedInput(asgn policy.Assignment) sched.Input {
	return sched.Input{
		Graph:      st.merged,
		Arch:       st.p.Arch,
		WCET:       st.p.WCET,
		Faults:     st.p.Faults,
		Assignment: asgn,
		Bus:        st.bus,
		Options:    sched.Options{SlackSharing: st.opts.SlackSharing},
		Static:     st.static,
	}
}

// evaluate schedules an assignment and returns its cost. The returned
// schedule is freshly allocated and may be retained (incumbents,
// materialized winners).
func (st *searchState) evaluate(asgn policy.Assignment) (*sched.Schedule, Cost, error) {
	s, err := sched.Build(st.schedInput(asgn))
	if err != nil {
		return nil, worstCost, err
	}
	return s, costOf(s), nil
}

// evaluateInto is the cost-only fast path of evaluate: the schedule is
// built into the reusable scratch arena and only its cost escapes, so
// sweeping a move neighborhood allocates nothing in steady state. The
// scheduler is deterministic, so the cost is bit-identical to
// evaluate's; ok is false when the scheduler rejected the assignment.
func (st *searchState) evaluateInto(sc *sched.Scratch, asgn policy.Assignment) (Cost, bool) {
	s, err := sched.BuildInto(sc, st.schedInput(asgn))
	if err != nil {
		return worstCost, false
	}
	return costOf(s), true
}

// initialMPA is the paper's step 1 (line 2 of Figure 6): assign the
// default policy of the strategy to every free process and derive a
// mapping that balances the utilization among the nodes. Processes are
// mapped in decreasing priority order; each replica goes to the allowed
// node with the least accumulated load.
func (st *searchState) initialMPA() (policy.Assignment, error) {
	p := st.p
	k := p.Faults.K

	order := append([]model.ProcID(nil), st.origins...)
	sort.Slice(order, func(i, j int) bool {
		if st.prio[order[i]] != st.prio[order[j]] {
			return st.prio[order[i]] > st.prio[order[j]]
		}
		return order[i] < order[j]
	})

	load := make(map[arch.NodeID]model.Time, p.Arch.NumNodes())
	asgn := policy.Assignment{}
	for _, id := range order {
		allowed := p.WCET.AllowedNodes(id)
		freedom := p.freedomOf(id, st.opts.Strategy)
		var pol policy.Policy
		switch freedom {
		case freeRepl:
			// Maximal space redundancy: k+1 replicas when the allowed
			// nodes permit; otherwise one replica per allowed node with
			// the k+1 executions spread over them (pure replication
			// cannot tolerate k faults on fewer than k+1 nodes).
			r := k + 1
			if len(allowed) < r {
				if p.ForceReplication[id] {
					return nil, fmt.Errorf("core: process %d forced to replication needs %d nodes, has %d allowed",
						id, r, len(allowed))
				}
				r = len(allowed)
			}
			nodes := st.pickNodes(id, allowed, r, load)
			pol = policy.Distribute(nodes, k)
		default:
			nodes := st.pickNodes(id, allowed, 1, load)
			pol = policy.Reexecution(nodes[0], k)
		}
		for _, rep := range pol.Replicas {
			load[rep.Node] += p.WCET.MustGet(id, rep.Node)
		}
		asgn[id] = pol
	}
	return asgn, nil
}

// pickNodes selects r allowed nodes with the least accumulated load,
// honoring a fixed mapping of the first replica.
func (st *searchState) pickNodes(id model.ProcID, allowed []arch.NodeID, r int, load map[arch.NodeID]model.Time) []arch.NodeID {
	fixed, hasFixed := st.p.FixedMapping[id]
	cands := append([]arch.NodeID(nil), allowed...)
	sort.Slice(cands, func(i, j int) bool {
		li := load[cands[i]] + st.p.WCET.MustGet(id, cands[i])
		lj := load[cands[j]] + st.p.WCET.MustGet(id, cands[j])
		if li != lj {
			return li < lj
		}
		return cands[i] < cands[j]
	})
	var nodes []arch.NodeID
	if hasFixed {
		nodes = append(nodes, fixed)
	}
	for _, n := range cands {
		if len(nodes) == r {
			break
		}
		if hasFixed && n == fixed {
			continue
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// stopped reports whether the run should end: the context was canceled
// or its deadline (including Options.TimeLimit) expired. For a context
// that never fires this is a nil-channel select — effectively free —
// which preserves the untimed path's determinism and speed.
func stopped(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
