package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

// searchState carries the immutable context of one optimization run.
// Everything except bus/static (swapped wholesale by the bus-access
// optimization) and the evaluator's memoization cache is read-only
// after construction, which is what allows the evaluator to fan
// sched.Build calls out over concurrent workers.
type searchState struct {
	p      Problem
	opts   Options
	merged *model.Graph
	bus    ttp.Config
	static *sched.Static // precomputed for the current bus configuration
	eval   *evaluator    // concurrent, memoizing move evaluation

	// origins are the original (pre-merge) process IDs, sorted.
	origins []model.ProcID
	// prio is the priority of each origin: the maximum bottom level over
	// its merged instances. Used for the initial mapping order.
	prio map[model.ProcID]model.Time

	// start anchors Improvement.Elapsed; iter is the global improvement-
	// loop iteration across greedy and tabu, reported to the observer.
	start time.Time
	iter  int
}

// improved reports a new incumbent to the observer, if any. The
// callback only observes — it never feeds back into the search, so
// runs are deterministic with or without it.
func (st *searchState) improved(phase string, c Cost) {
	if st.opts.OnImprovement == nil {
		return
	}
	st.opts.OnImprovement(Improvement{
		Phase:       phase,
		Iteration:   st.iter,
		Cost:        c,
		Schedulable: c.Schedulable(),
		Elapsed:     time.Since(st.start),
	})
}

// rebuildStatic revalidates and precomputes the scheduling context;
// called at construction and whenever the bus configuration changes.
// Memoized move evaluations are dropped: they are only valid for the
// bus configuration they were costed under.
func (st *searchState) rebuildStatic() error {
	s, err := sched.NewStatic(sched.Input{
		Graph:  st.merged,
		Arch:   st.p.Arch,
		WCET:   st.p.WCET,
		Faults: st.p.Faults,
		Bus:    st.bus,
	})
	if err != nil {
		return err
	}
	st.static = s
	if st.eval != nil {
		st.eval.invalidate()
	}
	return nil
}

func newSearchState(p Problem, opts Options) (*searchState, error) {
	merged, err := p.mergedGraph()
	if err != nil {
		return nil, err
	}
	bus := ttp.InitialConfig(p.Arch, merged.MaxMessageBytes(), ttp.DefaultPerByte)

	st := &searchState{p: p, opts: opts, merged: merged, bus: bus}
	if err := st.rebuildStatic(); err != nil {
		return nil, err
	}
	bl := sched.BottomLevels(sched.Input{Graph: merged, Arch: p.Arch, WCET: p.WCET, Bus: bus})
	st.prio = make(map[model.ProcID]model.Time)
	seen := make(map[model.ProcID]bool)
	for _, proc := range merged.Processes() {
		if bl[proc.ID] > st.prio[proc.Origin] {
			st.prio[proc.Origin] = bl[proc.ID]
		}
		if !seen[proc.Origin] {
			seen[proc.Origin] = true
			st.origins = append(st.origins, proc.Origin)
		}
	}
	sort.Slice(st.origins, func(i, j int) bool { return st.origins[i] < st.origins[j] })
	st.eval = newEvaluator(st, opts.Workers)
	return st, nil
}

// schedInput assembles the scheduler input for an assignment.
func (st *searchState) schedInput(asgn policy.Assignment) sched.Input {
	return sched.Input{
		Graph:      st.merged,
		Arch:       st.p.Arch,
		WCET:       st.p.WCET,
		Faults:     st.p.Faults,
		Assignment: asgn,
		Bus:        st.bus,
		Options:    sched.Options{SlackSharing: st.opts.SlackSharing},
		Static:     st.static,
	}
}

// evaluate schedules an assignment and returns its cost.
func (st *searchState) evaluate(asgn policy.Assignment) (*sched.Schedule, Cost, error) {
	s, err := sched.Build(st.schedInput(asgn))
	if err != nil {
		return nil, worstCost, err
	}
	return s, costOf(s), nil
}

// initialMPA is the paper's step 1 (line 2 of Figure 6): assign the
// default policy of the strategy to every free process and derive a
// mapping that balances the utilization among the nodes. Processes are
// mapped in decreasing priority order; each replica goes to the allowed
// node with the least accumulated load.
func (st *searchState) initialMPA() (policy.Assignment, error) {
	p := st.p
	k := p.Faults.K

	order := append([]model.ProcID(nil), st.origins...)
	sort.Slice(order, func(i, j int) bool {
		if st.prio[order[i]] != st.prio[order[j]] {
			return st.prio[order[i]] > st.prio[order[j]]
		}
		return order[i] < order[j]
	})

	load := make(map[arch.NodeID]model.Time, p.Arch.NumNodes())
	asgn := policy.Assignment{}
	for _, id := range order {
		allowed := p.WCET.AllowedNodes(id)
		freedom := p.freedomOf(id, st.opts.Strategy)
		var pol policy.Policy
		switch freedom {
		case freeRepl:
			// Maximal space redundancy: k+1 replicas when the allowed
			// nodes permit; otherwise one replica per allowed node with
			// the k+1 executions spread over them (pure replication
			// cannot tolerate k faults on fewer than k+1 nodes).
			r := k + 1
			if len(allowed) < r {
				if p.ForceReplication[id] {
					return nil, fmt.Errorf("core: process %d forced to replication needs %d nodes, has %d allowed",
						id, r, len(allowed))
				}
				r = len(allowed)
			}
			nodes := st.pickNodes(id, allowed, r, load)
			pol = policy.Distribute(nodes, k)
		default:
			nodes := st.pickNodes(id, allowed, 1, load)
			pol = policy.Reexecution(nodes[0], k)
		}
		for _, rep := range pol.Replicas {
			load[rep.Node] += p.WCET.MustGet(id, rep.Node)
		}
		asgn[id] = pol
	}
	return asgn, nil
}

// pickNodes selects r allowed nodes with the least accumulated load,
// honoring a fixed mapping of the first replica.
func (st *searchState) pickNodes(id model.ProcID, allowed []arch.NodeID, r int, load map[arch.NodeID]model.Time) []arch.NodeID {
	fixed, hasFixed := st.p.FixedMapping[id]
	cands := append([]arch.NodeID(nil), allowed...)
	sort.Slice(cands, func(i, j int) bool {
		li := load[cands[i]] + st.p.WCET.MustGet(id, cands[i])
		lj := load[cands[j]] + st.p.WCET.MustGet(id, cands[j])
		if li != lj {
			return li < lj
		}
		return cands[i] < cands[j]
	})
	var nodes []arch.NodeID
	if hasFixed {
		nodes = append(nodes, fixed)
	}
	for _, n := range cands {
		if len(nodes) == r {
			break
		}
		if hasFixed && n == fixed {
			continue
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// greedyMPA is the paper's step 2: repeatedly evaluate all moves on the
// critical path and apply the best one while it improves the design.
// Move evaluation is fanned out by the evaluator; the winner is the
// lowest-index move of minimal cost, exactly as the sequential sweep
// selected it.
func (st *searchState) greedyMPA(ctx context.Context, asgn policy.Assignment, cur *sched.Schedule, curCost Cost) (policy.Assignment, *sched.Schedule, Cost, int) {
	iters := 0
	for !stopped(ctx) {
		iters++
		st.iter++
		moves := st.generateMoves(asgn, cur.CriticalPath())
		var bestMove *move
		var bestSched *sched.Schedule
		bestCost := curCost
		for i, r := range st.eval.evalMoves(ctx, asgn, moves) {
			if r.ok && r.c.Less(bestCost) {
				bestMove, bestSched, bestCost = &moves[i], r.s, r.c
			}
		}
		if bestMove == nil {
			break
		}
		if bestSched == nil {
			// The winner's cost was memoized; materialize its schedule.
			s, err := st.eval.rebuild(asgn, bestMove)
			if err != nil {
				break
			}
			bestSched = s
		}
		asgn = bestMove.applyTo(asgn)
		cur, curCost = bestSched, bestCost
		st.improved("greedy", curCost)
		if st.opts.StopWhenSchedulable && curCost.Schedulable() {
			break
		}
	}
	return asgn, cur, curCost, iters
}

// tabuSearchMPA is the paper's step 3 (Figure 9): a tabu search over the
// critical-path moves with a selective history of Tabu and Wait
// counters, aspiration (tabu moves better than the best-so-far are
// accepted) and diversification (processes that waited longer than |Γ|
// iterations).
func (st *searchState) tabuSearchMPA(ctx context.Context, asgn policy.Assignment, xbest *sched.Schedule, bestCost Cost) (policy.Assignment, *sched.Schedule, Cost, int) {
	n := len(st.origins)
	tenure := st.opts.TabuTenure
	if tenure <= 0 {
		tenure = int(math.Sqrt(float64(n))) + 2
	}
	maxIters := st.opts.MaxIterations
	if maxIters <= 0 {
		maxIters = 50 + 10*n
	}
	diversifyAfter := st.merged.NumProcesses() // |Γ|

	tabu := make(map[model.ProcID]int, n)
	wait := make(map[model.ProcID]int, n)

	xnow := asgn.Clone()
	snow := xbest
	bestAsgn := asgn.Clone()

	iters := 0
	for iters < maxIters && !stopped(ctx) {
		if st.opts.StopWhenSchedulable && bestCost.Schedulable() {
			break
		}
		iters++
		st.iter++

		cp := snow.CriticalPath()
		moves := st.generateMoves(xnow, cp)
		if len(moves) == 0 {
			moves = st.generateMoves(xnow, st.origins)
		}
		if len(moves) == 0 {
			break
		}

		type evaluated struct {
			m     *move
			s     *sched.Schedule
			c     Cost
			isTab bool
			waits bool
		}
		var all []evaluated
		for i, r := range st.eval.evalMoves(ctx, xnow, moves) {
			if !r.ok {
				continue
			}
			all = append(all, evaluated{
				m:     &moves[i],
				s:     r.s,
				c:     r.c,
				isTab: tabu[moves[i].proc] > 0,
				waits: wait[moves[i].proc] > diversifyAfter,
			})
		}
		if len(all) == 0 {
			break
		}
		pick := func(filter func(evaluated) bool) *evaluated {
			var best *evaluated
			for i := range all {
				if !filter(all[i]) {
					continue
				}
				if best == nil || all[i].c.Less(best.c) {
					best = &all[i]
				}
			}
			return best
		}
		// Aspiration: any move better than the best-so-far is accepted,
		// tabu or not (line 17 of Figure 9).
		chosen := pick(func(e evaluated) bool { return true })
		if !chosen.c.Less(bestCost) {
			// Otherwise diversify with long-waiting moves (line 18)…
			if w := pick(func(e evaluated) bool { return e.waits && !e.isTab }); w != nil {
				chosen = w
			} else if nt := pick(func(e evaluated) bool { return !e.isTab }); nt != nil {
				// …or take the best non-tabu move (line 19).
				chosen = nt
			}
		}

		if chosen.s == nil {
			// The chosen move's cost was memoized; materialize its
			// schedule for the critical path of the next iteration.
			s, err := st.eval.rebuild(xnow, chosen.m)
			if err != nil {
				break
			}
			chosen.s = s
		}
		xnow = chosen.m.applyTo(xnow)
		snow = chosen.s
		if chosen.c.Less(bestCost) {
			bestAsgn, xbest, bestCost = xnow.Clone(), chosen.s, chosen.c
			st.improved("tabu", bestCost)
		}

		// Update the selective history (line 25).
		for _, id := range st.origins {
			if tabu[id] > 0 {
				tabu[id]--
			}
			wait[id]++
		}
		tabu[chosen.m.proc] = tenure
		wait[chosen.m.proc] = 0
	}
	return bestAsgn, xbest, bestCost, iters
}

// optimizeBus hill-climbs over the TDMA slot order (the final step of
// Figure 6; the paper defers the full treatment to [19]). Adjacent slot
// swaps are evaluated against the current best assignment until no swap
// improves the cost.
func (st *searchState) optimizeBus(ctx context.Context, asgn policy.Assignment, best *sched.Schedule, bestCost Cost) (policy.Assignment, *sched.Schedule, Cost) {
	n := len(st.bus.Slots)
	if n < 2 {
		return asgn, best, bestCost
	}
	improved := true
	for improved && !stopped(ctx) {
		improved = false
		// The context is re-checked per swap: each probe is a full
		// scheduling pass, and a round of n−1 swaps would otherwise
		// overshoot a tight time limit by the whole round.
		for i := 0; i+1 < n && !stopped(ctx); i++ {
			perm := make([]int, n)
			for j := range perm {
				perm[j] = j
			}
			perm[i], perm[i+1] = perm[i+1], perm[i]
			saved, savedStatic := st.bus, st.static
			st.bus = st.bus.WithSlotOrder(perm)
			if err := st.rebuildStatic(); err != nil {
				st.bus, st.static = saved, savedStatic
				continue
			}
			s, c, err := st.evaluate(asgn)
			if err != nil || !c.Less(bestCost) {
				st.bus, st.static = saved, savedStatic
				continue
			}
			best, bestCost = s, c
			st.improved("bus", bestCost)
			improved = true
		}
	}
	return asgn, best, bestCost
}

// stopped reports whether the run should end: the context was canceled
// or its deadline (including Options.TimeLimit) expired. For a context
// that never fires this is a nil-channel select — effectively free —
// which preserves the untimed path's determinism and speed.
func stopped(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
