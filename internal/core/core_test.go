package core

import (
	"math/rand"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

// diamondProblem builds the 4-process diamond used by several tests:
// P1→{P2,P3}→P4 with uniform 40ms WCETs on two nodes.
func diamondProblem(t *testing.T, k int, deadline model.Time) Problem {
	t.Helper()
	app := model.NewApplication("diamond")
	g := app.AddGraph("G", model.Ms(100000), deadline)
	p1 := app.AddProcess(g, "P1")
	p2 := app.AddProcess(g, "P2")
	p3 := app.AddProcess(g, "P3")
	p4 := app.AddProcess(g, "P4")
	g.AddEdge(p1, p2, 4)
	g.AddEdge(p1, p3, 4)
	g.AddEdge(p2, p4, 4)
	g.AddEdge(p3, p4, 4)
	a := arch.New(2)
	w := arch.NewWCET()
	for _, p := range []*model.Process{p1, p2, p3, p4} {
		w.Set(p.ID, 0, model.Ms(40))
		w.Set(p.ID, 1, model.Ms(40))
	}
	return Problem{
		App:    app,
		Arch:   a,
		WCET:   w,
		Faults: fault.Model{K: k, Mu: model.Ms(10)},
	}
}

func randomProblem(rng *rand.Rand, nProcs, nNodes, k int) Problem {
	app := model.NewApplication("rand")
	g := app.AddGraph("G", model.Ms(1000000), model.Ms(1000000))
	procs := make([]*model.Process, nProcs)
	for i := range procs {
		procs[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < nProcs; i++ {
		for j := i + 1; j < nProcs; j++ {
			if rng.Intn(4) == 0 {
				g.AddEdge(procs[i], procs[j], 1+rng.Intn(4))
			}
		}
	}
	a := arch.New(nNodes)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < nNodes; n++ {
			w.Set(p.ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(91))))
		}
	}
	return Problem{App: app, Arch: a, WCET: w, Faults: fault.Model{K: k, Mu: model.Ms(5)}}
}

func optimize(t *testing.T, p Problem, s Strategy) *Result {
	t.Helper()
	opts := DefaultOptions(s)
	opts.MaxIterations = 60
	res, err := Optimize(p, opts)
	if err != nil {
		t.Fatalf("Optimize(%v): %v", s, err)
	}
	return res
}

func TestOptimizeProducesValidDesigns(t *testing.T) {
	for _, s := range []Strategy{MXR, MX, MR, SFX, NFT} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			p := diamondProblem(t, 1, 0)
			res := optimize(t, p, s)
			if res.Schedule == nil {
				t.Fatal("nil schedule")
			}
			if res.Cost.Makespan <= 0 {
				t.Fatalf("non-positive makespan %v", res.Cost.Makespan)
			}
			wantK := p.Faults.K
			if s == NFT {
				wantK = 0
			}
			for _, proc := range p.App.Processes() {
				pol, ok := res.Assignment[proc.ID]
				if !ok {
					t.Fatalf("process %v missing from assignment", proc)
				}
				if pol.Executions() < wantK+1 {
					t.Errorf("process %v has %d executions, need %d", proc, pol.Executions(), wantK+1)
				}
				switch s {
				case MX, SFX, NFT:
					if pol.ReplicaCount() != 1 {
						t.Errorf("%v must not replicate, got %v", s, pol)
					}
				case MR:
					want := wantK + 1
					if n := p.Arch.NumNodes(); n < want {
						want = n
					}
					if pol.ReplicaCount() != want {
						t.Errorf("MR must use min(k+1, nodes) replicas, got %v", pol)
					}
				}
			}
		})
	}
}

// TestMXRDominatesSingles: on small instances with enough iterations the
// combined policy search must be at least as good as either pure policy
// (its move set is a superset).
func TestMXRDominatesSingles(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8, 3, 2)
		mxr := optimize(t, p, MXR)
		mx := optimize(t, p, MX)
		mr := optimize(t, p, MR)
		if mx.Cost.Less(mxr.Cost) {
			t.Errorf("seed %d: MX %v beats MXR %v", seed, mx.Cost, mxr.Cost)
		}
		if mr.Cost.Less(mxr.Cost) {
			t.Errorf("seed %d: MR %v beats MXR %v", seed, mr.Cost, mxr.Cost)
		}
	}
}

// TestFigure5MappingMustConsiderFaultTolerance reproduces the lesson of
// the paper's Figure 5: the best non-fault-tolerant mapping (spreading
// over the nodes) becomes a bad choice once re-execution is applied on
// top of it (SFX), while the fault-tolerance-aware search clusters the
// processes and wins.
func TestFigure5MappingMustConsiderFaultTolerance(t *testing.T) {
	p := diamondProblem(t, 1, 0)
	nft := optimize(t, p, NFT)
	sfx := optimize(t, p, SFX)
	mx := optimize(t, p, MX)

	// NFT prefers to spread: its makespan beats the serial chain 160ms.
	if nft.Cost.Makespan >= model.Ms(160) {
		t.Errorf("NFT makespan = %v, want < 160ms (parallel mapping)", nft.Cost.Makespan)
	}
	spread := false
	nodes := map[arch.NodeID]bool{}
	for _, pol := range nft.Assignment {
		nodes[pol.Replicas[0].Node] = true
	}
	spread = len(nodes) > 1
	if !spread {
		t.Error("NFT should use both nodes")
	}
	// Applying re-execution on the NFT mapping (SFX) is much worse than
	// the fault-tolerance-aware mapping (MX).
	if sfx.Cost.Makespan <= mx.Cost.Makespan {
		t.Errorf("SFX %v should lose to FT-aware MX %v (Figure 5)", sfx.Cost, mx.Cost)
	}
}

func TestOptimizeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 10, 3, 1)
	r1 := optimize(t, p, MXR)
	r2 := optimize(t, p, MXR)
	if r1.Cost != r2.Cost {
		t.Fatalf("non-deterministic optimization: %v vs %v", r1.Cost, r2.Cost)
	}
	for id, pol := range r1.Assignment {
		if !pol.Equal(r2.Assignment[id]) {
			t.Fatalf("assignment of %d differs: %v vs %v", id, pol, r2.Assignment[id])
		}
	}
}

func TestStopWhenSchedulable(t *testing.T) {
	p := diamondProblem(t, 1, model.Ms(100000)) // deadline trivially met
	opts := DefaultOptions(MXR)
	opts.StopWhenSchedulable = true
	res, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cost.Schedulable() {
		t.Fatal("design should be schedulable")
	}
	if res.Iterations != 0 {
		t.Errorf("initial solution already schedulable: want 0 search iterations, got %d", res.Iterations)
	}
}

func TestNFTUsesNoFaultTolerance(t *testing.T) {
	p := diamondProblem(t, 2, 0)
	res := optimize(t, p, NFT)
	for id, pol := range res.Assignment {
		if pol.Executions() != 1 {
			t.Errorf("NFT process %d has %d executions", id, pol.Executions())
		}
	}
	// NFT schedules ignore the fault model entirely.
	for _, it := range res.Schedule.Items() {
		if it.WCFinish != it.NominalFinish {
			t.Errorf("NFT item %v has slack: %v vs %v", it.Inst, it.WCFinish, it.NominalFinish)
		}
	}
}

func TestProblemValidate(t *testing.T) {
	base := diamondProblem(t, 1, 0)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	p1 := base.App.Processes()[0].ID

	p := base
	p.ForceReexecution = map[model.ProcID]bool{p1: true}
	p.ForceReplication = map[model.ProcID]bool{p1: true}
	if err := p.Validate(); err == nil {
		t.Error("accepted process in both P_X and P_R")
	}

	p = base
	p.FixedMapping = map[model.ProcID]arch.NodeID{p1: 9}
	if err := p.Validate(); err == nil {
		t.Error("accepted fixed mapping to unknown node")
	}

	p = base
	p.ForceReplication = map[model.ProcID]bool{model.ProcID(99): true}
	if err := p.Validate(); err == nil {
		t.Error("accepted P_R with unknown process")
	}

	p = base
	p.App = nil
	if err := p.Validate(); err == nil {
		t.Error("accepted nil application")
	}
}

func TestFixedMappingRespected(t *testing.T) {
	p := diamondProblem(t, 1, 0)
	p1 := p.App.Processes()[0].ID
	p.FixedMapping = map[model.ProcID]arch.NodeID{p1: 1}
	res := optimize(t, p, MXR)
	if res.Assignment[p1].Replicas[0].Node != 1 {
		t.Errorf("fixed mapping ignored: %v", res.Assignment[p1])
	}
}

func TestForcedPoliciesRespected(t *testing.T) {
	p := diamondProblem(t, 1, 0)
	ids := p.App.Processes()
	p.ForceReexecution = map[model.ProcID]bool{ids[0].ID: true}
	p.ForceReplication = map[model.ProcID]bool{ids[1].ID: true}
	res := optimize(t, p, MXR)
	if res.Assignment[ids[0].ID].ReplicaCount() != 1 {
		t.Errorf("P_X process replicated: %v", res.Assignment[ids[0].ID])
	}
	if res.Assignment[ids[1].ID].ReplicaCount() != p.Faults.K+1 {
		t.Errorf("P_R process not fully replicated: %v", res.Assignment[ids[1].ID])
	}
}

func TestGenerateMoves(t *testing.T) {
	p := diamondProblem(t, 1, 0)
	st, err := newSearchState(p, DefaultOptions(MXR))
	if err != nil {
		t.Fatal(err)
	}
	ids := p.App.Processes()
	asgn := policy.Assignment{}
	for _, proc := range ids {
		asgn[proc.ID] = policy.Reexecution(0, 1)
	}
	moves := st.generateMoves(asgn, []model.ProcID{ids[0].ID})
	// For a re-executed process on N1 of a 2-node architecture: one
	// remap (to N2) and one replica addition (N1+N2).
	if len(moves) != 2 {
		t.Fatalf("got %d moves, want 2: %v", len(moves), moves)
	}
	seenRemap, seenAdd := false, false
	for _, m := range moves {
		switch m.pol.ReplicaCount() {
		case 1:
			if m.pol.Replicas[0].Node == 1 {
				seenRemap = true
			}
		case 2:
			seenAdd = true
		}
	}
	if !seenRemap || !seenAdd {
		t.Errorf("moves missing remap or replica addition: %v", moves)
	}

	// From a fully replicated policy: drops and remaps but no adds
	// (already at k+1 replicas, no unused nodes on 2 nodes).
	asgn[ids[0].ID] = policy.Replication(0, 1)
	moves = st.generateMoves(asgn, []model.ProcID{ids[0].ID})
	for _, m := range moves {
		if m.pol.ReplicaCount() > 2 {
			t.Errorf("unexpected replica addition: %v", m)
		}
	}

	// MX strategy: only remaps.
	stMX, _ := newSearchState(p, DefaultOptions(MX))
	asgn[ids[0].ID] = policy.Reexecution(0, 1)
	for _, m := range stMX.generateMoves(asgn, []model.ProcID{ids[0].ID}) {
		if m.pol.ReplicaCount() != 1 {
			t.Errorf("MX generated policy move: %v", m)
		}
	}
}

func TestInitialMPABalances(t *testing.T) {
	// Eight independent identical processes on two nodes: the initial
	// mapping must split them 4/4.
	app := model.NewApplication("bal")
	g := app.AddGraph("G", model.Ms(100000), 0)
	w := arch.NewWCET()
	for i := 0; i < 8; i++ {
		p := app.AddProcess(g, "P")
		w.Set(p.ID, 0, model.Ms(40))
		w.Set(p.ID, 1, model.Ms(40))
	}
	prob := Problem{App: app, Arch: arch.New(2), WCET: w, Faults: fault.Model{K: 1, Mu: model.Ms(5)}}
	st, err := newSearchState(prob, DefaultOptions(MXR))
	if err != nil {
		t.Fatal(err)
	}
	asgn, err := st.initialMPA()
	if err != nil {
		t.Fatal(err)
	}
	count := map[arch.NodeID]int{}
	for _, pol := range asgn {
		count[pol.Replicas[0].Node]++
	}
	if count[0] != 4 || count[1] != 4 {
		t.Errorf("initial mapping unbalanced: %v", count)
	}
}

func TestBusAccessOptimization(t *testing.T) {
	// Bus optimization must never worsen the design.
	rng := rand.New(rand.NewSource(11))
	p := randomProblem(rng, 10, 3, 1)
	plain := optimize(t, p, MXR)
	opts := DefaultOptions(MXR)
	opts.MaxIterations = 60
	opts.OptimizeBusAccess = true
	withBus, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost.Less(withBus.Cost) {
		t.Errorf("bus optimization worsened the design: %v vs %v", withBus.Cost, plain.Cost)
	}
}

func TestMRFallsBackToMaximalReplication(t *testing.T) {
	// k=2 would need 3 replicas, but the architecture has only 2 nodes:
	// MR degrades to one replica per node with the k+1 executions
	// spread over them (re-executed replicas, Figure 2c).
	p := diamondProblem(t, 2, 0)
	res := optimize(t, p, MR)
	for id, pol := range res.Assignment {
		if pol.ReplicaCount() != 2 {
			t.Errorf("process %d: want 2 replicas, got %v", id, pol)
		}
		if pol.Executions() != 3 {
			t.Errorf("process %d: want 3 executions, got %v", id, pol)
		}
	}
	// An explicitly forced replication (P_R) stays strict and fails.
	p.ForceReplication = map[model.ProcID]bool{p.App.Processes()[0].ID: true}
	if err := p.Validate(); err == nil {
		t.Error("P_R with k+1 > allowed nodes should be rejected")
	}
}
