package core_test

// External test package: gen imports core, so these end-to-end tests
// of the parallel move evaluation live outside package core.

import (
	"reflect"
	"testing"
	"time"

	"repro/ftdse/internal/core"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/gen"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/sched"
)

// TestWorkersProduceIdenticalResults asserts the evaluator's
// determinism contract end to end: the same seeded instance optimized
// with Workers=1 (the sequential seed behavior) and Workers=8 yields
// the same assignment, cost and iteration count. Run with -race to
// exercise the concurrent scheduling path.
func TestWorkersProduceIdenticalResults(t *testing.T) {
	cases := []struct {
		spec  gen.Spec
		k     int
		strat core.Strategy
	}{
		{gen.Spec{Procs: 15, Nodes: 3, Seed: 42}, 2, core.MXR},
		{gen.Spec{Procs: 20, Nodes: 2, Seed: 7, Shape: gen.Tree}, 3, core.MX},
		{gen.Spec{Procs: 12, Nodes: 4, Seed: 11, Shape: gen.Chains}, 2, core.MR},
	}
	for _, tc := range cases {
		prob := gen.Problem(tc.spec, fault.Model{K: tc.k, Mu: model.Ms(5)})
		run := func(workers int) *core.Result {
			t.Helper()
			opts := core.DefaultOptions(tc.strat)
			opts.MaxIterations = 25
			opts.Workers = workers
			res, err := core.Optimize(prob, opts)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", tc.strat, workers, err)
			}
			return res
		}
		seq := run(1)
		par := run(8)
		if !reflect.DeepEqual(seq.Assignment, par.Assignment) {
			t.Errorf("%v seed %d: assignments differ between 1 and 8 workers\nseq: %v\npar: %v",
				tc.strat, tc.spec.Seed, seq.Assignment, par.Assignment)
		}
		if seq.Cost != par.Cost {
			t.Errorf("%v seed %d: cost %v (1 worker) != %v (8 workers)",
				tc.strat, tc.spec.Seed, seq.Cost, par.Cost)
		}
		if seq.Iterations != par.Iterations {
			t.Errorf("%v seed %d: %d iterations (1 worker) != %d (8 workers)",
				tc.strat, tc.spec.Seed, seq.Iterations, par.Iterations)
		}
	}
}

// TestTimeLimitReturnsPromptly is the regression test for deadline
// checks inside move sweeps: with a time limit far below one sweep of
// the 60-process instance, Optimize must return shortly after the limit
// (the seed only polled the deadline per outer iteration, overshooting
// by a full sweep of scheduling passes) and still deliver a valid
// best-so-far design.
func TestTimeLimitReturnsPromptly(t *testing.T) {
	prob := gen.Problem(gen.Spec{Procs: 60, Nodes: 4, Seed: 3}, fault.Model{K: 4, Mu: model.Ms(5)})
	for _, workers := range []int{1, 0} {
		opts := core.DefaultOptions(core.MXR)
		opts.TimeLimit = 50 * time.Millisecond
		opts.Workers = workers
		start := time.Now()
		res, err := core.Optimize(prob, opts)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Generous bound: the limit may be overshot by the scheduling
		// passes in flight, but never by a full sweep (~60 moves) or the
		// default iteration budget (650 sweeps).
		if elapsed > 5*time.Second {
			t.Errorf("workers=%d: Optimize took %v with a 50ms limit", workers, elapsed)
		}
		if res.Schedule == nil || res.Cost.Makespan <= 0 {
			t.Fatalf("workers=%d: no best-so-far result: %+v", workers, res)
		}
		if err := sched.ValidateSchedule(res.Schedule); err != nil {
			t.Errorf("workers=%d: best-so-far schedule invalid: %v", workers, err)
		}
	}
}
