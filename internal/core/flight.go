package core

import (
	"sync"
	"time"
)

// The flight recorder is the search's black box: a bounded ring of
// structured events (phase transitions, incumbent improvements,
// evaluator sweep statistics, warm-start adoption, stop cause) captured
// while a solve runs and surfaced afterwards as Result.Trace. It is
// observability-plane only — events are emitted from the same seams the
// progress observer uses, they never feed back into move selection, and
// a disabled recorder (the default) costs the hot path nothing beyond a
// nil check. Elapsed stamps come from the sanctioned clock wrappers
// (clock.go), so the determinism contract is untouched: two identical
// runs differ only in their elapsed_ms values.

// Event kinds recorded by the flight recorder. The set is closed:
// sysio.ReadTrace rejects documents with unknown kinds, which is what
// keeps the JSONL export strict enough to round-trip canonically.
//
//ftdse:wire event-kinds
const (
	// EventRunStart opens a trace: strategy and engine of the run.
	EventRunStart = "run_start"
	// EventPhaseEnter / EventPhaseExit bracket one engine phase
	// (pipeline stage, portfolio racer, or the top-level engine).
	EventPhaseEnter = "phase_enter"
	EventPhaseExit  = "phase_exit"
	// EventIncumbent is a run-global incumbent improvement: cost and
	// schedulability of a new best design.
	EventIncumbent = "incumbent"
	// EventWarmStart records the warm-start evaluation and whether the
	// prior design was adopted as the incumbent.
	EventWarmStart = "warm_start"
	// EventSweep summarizes one evaluator sweep: neighborhood size,
	// scheduling passes run, memo-cache hits.
	EventSweep = "sweep"
	// EventRunEnd closes a trace: total iterations and the stop cause.
	EventRunEnd = "run_end"
)

// ValidEventKind reports whether kind is one of the recorded kinds.
func ValidEventKind(kind string) bool {
	switch kind {
	case EventRunStart, EventPhaseEnter, EventPhaseExit, EventIncumbent,
		EventWarmStart, EventSweep, EventRunEnd:
		return true
	}
	return false
}

// SearchEvent is one flight-recorder entry. Seq and ElapsedMs are
// stamped by the recorder (Seq strictly increasing, ElapsedMs
// non-decreasing — both monotone under the recorder's lock); the
// remaining fields depend on Kind and stay zero otherwise. Cost fields
// are integral microseconds (the model's time base), so every field
// except ElapsedMs is bit-deterministic run to run.
//
//ftdse:wire
type SearchEvent struct {
	Seq       int     `json:"seq"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Kind      string  `json:"kind"`

	// Phase names the engine phase ("greedy", "r1:sa", "bus", ...).
	Phase string `json:"phase,omitempty"`
	// Iteration is the publishing handle's iteration counter on
	// incumbent events, and the run-wide total on phase_exit/run_end.
	Iteration int `json:"iteration,omitempty"`

	// Strategy and Engine identify the run (run_start only).
	Strategy string `json:"strategy,omitempty"`
	Engine   string `json:"engine,omitempty"`

	// Cost of the design on incumbent, warm_start and run_end events.
	MakespanUs  int64 `json:"makespan_us,omitempty"`
	TardinessUs int64 `json:"tardiness_us,omitempty"`
	Schedulable bool  `json:"schedulable,omitempty"`

	// Adopted reports whether the warm-start design became the
	// incumbent (warm_start only).
	Adopted bool `json:"adopted,omitempty"`

	// Sweep statistics (sweep only): Moves is the neighborhood size,
	// Evaluated the scheduling passes actually run, CacheHits the moves
	// served from the memo cache.
	Moves     int `json:"moves,omitempty"`
	Evaluated int `json:"evaluated,omitempty"`
	CacheHits int `json:"cache_hits,omitempty"`

	// Cause is the stop cause (run_end only).
	Cause string `json:"cause,omitempty"`
}

// Trace is the recorded event sequence of one run. When the run emitted
// more events than the ring holds, the oldest were overwritten and
// Dropped counts them; Events is always in emission order.
type Trace struct {
	Events  []SearchEvent
	Dropped int
}

// DefaultFlightRecorderEvents is the ring capacity selected when the
// facade enables the recorder without an explicit size. At ~200 bytes
// per event it bounds a trace near 1 MB while covering every event of
// typical corpus-size solves (a few hundred to a few thousand).
const DefaultFlightRecorderEvents = 4096

// flightRecorder is the bounded ring behind Options.FlightRecorder.
// record is safe for concurrent use (portfolio racers and their sweeps
// emit concurrently); the mutex also makes Seq/ElapsedMs monotone.
type flightRecorder struct {
	start time.Time
	limit int

	mu      sync.Mutex
	buf     []SearchEvent
	next    int // overwrite cursor once len(buf) == limit
	seq     int
	dropped int
}

func newFlightRecorder(capacity int, start time.Time) *flightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderEvents
	}
	return &flightRecorder{start: start, limit: capacity}
}

// record stamps and stores one event. A nil recorder drops it, so
// emission sites need no enabled-check of their own (the hot path still
// guards with an explicit nil test to skip building the event).
func (r *flightRecorder) record(ev SearchEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	ev.ElapsedMs = float64(wallElapsed(r.start)) / float64(time.Millisecond)
	if len(r.buf) < r.limit {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % r.limit
		r.dropped++
	}
	r.mu.Unlock()
}

// snapshot returns the recorded trace in emission order.
func (r *flightRecorder) snapshot() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	events := make([]SearchEvent, 0, len(r.buf))
	events = append(events, r.buf[r.next:]...)
	events = append(events, r.buf[:r.next]...)
	return &Trace{Events: events, Dropped: r.dropped}
}

// costEvent fills the cost fields of an event from a Cost.
func costEvent(ev SearchEvent, c Cost) SearchEvent {
	ev.MakespanUs = int64(c.Makespan)
	ev.TardinessUs = int64(c.Tardiness)
	ev.Schedulable = c.Schedulable()
	return ev
}
