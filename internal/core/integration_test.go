package core

import (
	"math/rand"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/sim"
)

// TestEndToEndAllStrategiesSimulated is the deepest integration test:
// small random problems are optimized with every strategy, and the
// synthesized schedules are executed by the runtime simulator under
// every fault scenario of the hypothesis. Every scenario must complete
// all processes within the analysis bounds.
func TestEndToEndAllStrategiesSimulated(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 6, 2, 1)
		for _, s := range []Strategy{MXR, MX, MR, SFX} {
			opts := DefaultOptions(s)
			opts.MaxIterations = 40
			res, err := Optimize(p, opts)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, s, err)
			}
			count := 0
			sim.ForEachScenario(res.Schedule, func(sc sim.Scenario) bool {
				count++
				r := sim.Run(res.Schedule, sc)
				for _, v := range r.Violations {
					// Deadline misses are impossible: the workloads are
					// unconstrained. Anything else is a soundness bug.
					t.Errorf("seed %d %v scenario %v: %s", seed, s, sc, v)
				}
				if r.Makespan > res.Schedule.Makespan {
					t.Errorf("seed %d %v scenario %v: simulated %v beyond analysis %v",
						seed, s, sc, r.Makespan, res.Schedule.Makespan)
				}
				return true
			})
			if count == 0 {
				t.Fatalf("seed %d %v: no scenarios enumerated", seed, s)
			}
		}
	}
}

// TestMultiRateApplication drives a two-rate application through the
// whole pipeline: merging, policy optimization and scheduling. Both
// instances of the fast graph must respect their own releases and
// deadlines.
func TestMultiRateApplication(t *testing.T) {
	app := model.NewApplication("multirate")
	fastG := app.AddGraph("fast", model.Ms(100), model.Ms(80))
	slowG := app.AddGraph("slow", model.Ms(200), model.Ms(180))
	fs := app.AddProcess(fastG, "FastSense")
	fa := app.AddProcess(fastG, "FastAct")
	fastG.AddEdge(fs, fa, 1)
	ss := app.AddProcess(slowG, "SlowPlan")
	sa := app.AddProcess(slowG, "SlowLog")
	slowG.AddEdge(ss, sa, 2)

	a := arch.New(2)
	w := arch.NewWCET()
	for _, pr := range []*model.Process{fs, fa, ss, sa} {
		w.Set(pr.ID, 0, model.Ms(10))
		w.Set(pr.ID, 1, model.Ms(12))
	}
	prob := Problem{App: app, Arch: a, WCET: w, Faults: fault.Model{K: 1, Mu: model.Ms(5)}}

	opts := DefaultOptions(MXR)
	opts.MaxIterations = 150
	res, err := Optimize(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cost.Schedulable() {
		t.Fatalf("multirate system should be schedulable: %v (violations %v)",
			res.Cost, res.Schedule.Violations())
	}
	merged := res.Schedule.In.Graph
	if merged.NumProcesses() != 2*2+2 {
		t.Fatalf("merged graph has %d processes, want 6", merged.NumProcesses())
	}
	// The second instance of the fast graph is released at 100ms and
	// must complete by 180ms; check the analysis respects the release.
	for _, p := range merged.Processes() {
		if p.Origin == fs.ID && p.Instance == 1 {
			for _, inst := range res.Schedule.Ex.Of(p.ID) {
				it := res.Schedule.Item(inst.ID)
				if it.NominalStart < model.Ms(100) {
					t.Errorf("instance 1 of FastSense starts at %v, before its release", it.NominalStart)
				}
			}
			if done := res.Schedule.ProcCompletion(p.ID); done > model.Ms(180) {
				t.Errorf("instance 1 of FastSense completes at %v, after 180ms", done)
			}
		}
	}
	// Simulate every scenario.
	sim.ForEachScenario(res.Schedule, func(sc sim.Scenario) bool {
		if r := sim.Run(res.Schedule, sc); !r.OK() {
			t.Errorf("scenario %v: %v", sc, r.Violations)
			return false
		}
		return true
	})
}

// TestOptimizerOutputsValidAssignments: every strategy must return an
// assignment that passes policy validation for the effective fault
// model.
func TestOptimizerOutputsValidAssignments(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		p := randomProblem(rng, 9, 3, 2)
		merged, err := p.App.Merge()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Strategy{MXR, MX, MR, SFX} {
			opts := DefaultOptions(s)
			opts.MaxIterations = 25
			res, err := Optimize(p, opts)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, s, err)
			}
			if err := res.Assignment.Validate(merged, p.WCET, p.Faults.K); err != nil {
				t.Errorf("seed %d %v: invalid assignment: %v", seed, s, err)
			}
		}
	}
}

// TestTimeLimitRespected: the optimizer must return promptly when given
// a tiny time budget, even with a huge iteration allowance.
func TestTimeLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 30, 3, 2)
	opts := DefaultOptions(MXR)
	opts.MaxIterations = 1 << 30
	opts.TimeLimit = 50 * 1e6 // 50ms
	res, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed > 20*1e9 {
		t.Fatalf("optimization ran %v despite 50ms limit", res.Elapsed)
	}
}

// TestCheckpointingExtension: enabling checkpoint moves must improve (or
// match) plain re-execution when the checkpoint overhead is small, the
// chosen assignments must carry checkpoints, and the synthesized
// schedules must stay sound under simulated fault scenarios.
func TestCheckpointingExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randomProblem(rng, 8, 2, 2)
	p.Faults = fault.Model{K: 2, Mu: model.Ms(5), Chi: model.Ms(1)}

	plain := DefaultOptions(MX)
	plain.MaxIterations = 80
	resPlain, err := Optimize(p, plain)
	if err != nil {
		t.Fatal(err)
	}
	ck := plain
	ck.EnableCheckpointing = true
	resCk, err := Optimize(p, ck)
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Cost.Less(resCk.Cost) {
		t.Errorf("checkpointing worsened the design: %v vs %v", resCk.Cost, resPlain.Cost)
	}
	if resCk.Cost.Makespan >= resPlain.Cost.Makespan {
		t.Errorf("cheap checkpoints (χ=1ms, k=2) should shorten the schedule: %v vs %v",
			resCk.Cost.Makespan, resPlain.Cost.Makespan)
	}
	usesCk := false
	for _, pol := range resCk.Assignment {
		for _, rep := range pol.Replicas {
			if rep.Checkpoints > 0 {
				usesCk = true
			}
		}
	}
	if !usesCk {
		t.Error("no checkpoints in the optimized assignment")
	}
	// Soundness under simulation.
	sim.ForEachScenario(resCk.Schedule, func(sc sim.Scenario) bool {
		r := sim.Run(resCk.Schedule, sc)
		if !r.OK() {
			t.Errorf("scenario %v: %v", sc, r.Violations)
			return false
		}
		if r.Makespan > resCk.Schedule.Makespan {
			t.Errorf("scenario %v: simulated %v beyond analysis %v", sc, r.Makespan, resCk.Schedule.Makespan)
			return false
		}
		return true
	})
}
