package core

import (
	"fmt"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
)

// Move is one design transformation (Figure 8 of the paper): it replaces
// the policy (and thereby the mapping) of a single process. Moves are
// produced by Search.Moves; the fields stay unexported so engines can
// only explore the problem's legal neighborhood.
type Move struct {
	proc model.ProcID
	pol  policy.Policy
}

// Proc is the process whose policy the move replaces.
func (m Move) Proc() model.ProcID { return m.proc }

// Policy is the policy the move assigns to its process.
func (m Move) Policy() policy.Policy { return m.pol }

// ApplyTo returns a copy of the assignment with the move applied; the
// input assignment is not modified.
func (m Move) ApplyTo(asgn policy.Assignment) policy.Assignment {
	out := asgn.Clone()
	out[m.proc] = m.pol.Clone()
	return out
}

func (m Move) String() string {
	return fmt.Sprintf("P%d→%v", m.proc, m.pol)
}

// generateMoves produces the neighborhood of the current assignment
// restricted to the given processes (normally those on the critical
// path, Section 5.2):
//
//   - remapping moves: move one replica to another allowed node;
//   - policy moves (MXR only): add a replica (redistributing the k+1
//     executions, Figure 2c) or drop one.
//
// Processes whose first replica is pinned by P_M keep that node; forced
// policies (P_X, P_R, or the strategy itself) suppress policy moves.
func (st *searchState) generateMoves(asgn policy.Assignment, procs []model.ProcID) []Move {
	k := st.p.Faults.K
	var out []Move
	for _, id := range procs {
		cur, ok := asgn[id]
		if !ok {
			continue
		}
		freedom := st.p.freedomOf(id, st.opts.Strategy)
		allowed := st.p.WCET.AllowedNodes(id)
		_, pinned := st.p.FixedMapping[id]

		used := make(map[arch.NodeID]bool, len(cur.Replicas))
		for _, rep := range cur.Replicas {
			used[rep.Node] = true
		}

		appendMove := func(pol policy.Policy) {
			if pol.Equal(cur) {
				return
			}
			out = append(out, Move{proc: id, pol: pol})
		}

		// Remap moves: each replica to each unused allowed node.
		for ri := range cur.Replicas {
			if ri == 0 && pinned {
				continue
			}
			for _, n := range allowed {
				if used[n] {
					continue
				}
				pol := cur.Clone()
				pol.Replicas[ri].Node = n
				appendMove(pol)
			}
		}

		// Checkpointing moves (extension): add or remove one checkpoint
		// on replicas that re-execute. Available to every strategy that
		// re-executes when the option is enabled.
		if st.opts.EnableCheckpointing && k > 0 && freedom != freeRepl {
			maxCk := st.opts.MaxCheckpoints
			if maxCk <= 0 {
				maxCk = 4
			}
			for ri := range cur.Replicas {
				rep := cur.Replicas[ri]
				if rep.Reexec == 0 {
					continue
				}
				if rep.Checkpoints < maxCk {
					pol := cur.Clone()
					pol.Replicas[ri].Checkpoints++
					appendMove(pol)
				}
				if rep.Checkpoints > 0 {
					pol := cur.Clone()
					pol.Replicas[ri].Checkpoints--
					appendMove(pol)
				}
			}
		}

		if freedom != freeAny || k == 0 {
			continue
		}

		// Add a replica on each unused allowed node, re-spreading the
		// k+1 executions.
		if len(cur.Replicas) < k+1 {
			for _, n := range allowed {
				if used[n] {
					continue
				}
				nodes := append(cur.Nodes(), n)
				appendMove(policy.Distribute(nodes, k))
			}
		}
		// Drop each replica (keeping a pinned first replica).
		if len(cur.Replicas) > 1 {
			for ri := range cur.Replicas {
				if ri == 0 && pinned {
					continue
				}
				nodes := make([]arch.NodeID, 0, len(cur.Replicas)-1)
				for rj, rep := range cur.Replicas {
					if rj != ri {
						nodes = append(nodes, rep.Node)
					}
				}
				appendMove(policy.Distribute(nodes, k))
			}
		}
	}
	return out
}
