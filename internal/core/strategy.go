package core

import (
	"context"
	"fmt"
	"time"

	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// Strategy selects the optimization approach evaluated in Section 6 of
// the paper.
type Strategy int

const (
	// MXR is the paper's contribution: mapping moves plus free policy
	// assignment mixing re-execution and replication.
	MXR Strategy = iota
	// MX considers only re-execution (plus mapping moves).
	MX
	// MR considers only active replication (plus replica remaps).
	MR
	// SFX first derives a mapping ignoring fault tolerance, then applies
	// re-execution on top of it ("straightforward" baseline).
	SFX
	// NFT is the optimized non-fault-tolerant reference implementation
	// (k = 0) against which overheads are measured.
	NFT
)

func (s Strategy) String() string {
	switch s {
	case MXR:
		return "MXR"
	case MX:
		return "MX"
	case MR:
		return "MR"
	case SFX:
		return "SFX"
	case NFT:
		return "NFT"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options tune the optimization run.
type Options struct {
	Strategy Strategy

	// Engine selects the search algorithm that explores the design
	// space after the initial solution; nil selects DefaultEngine (the
	// paper's greedy→tabu pipeline). Engines see the problem through a
	// Search handle, so any Engine implementation — built-in or caller
	// supplied — composes with every Strategy and option.
	Engine Engine

	// Seed seeds stochastic engines (simulated annealing, and any
	// caller-supplied engine that reads it); 0 selects the fixed seed 1,
	// so runs are deterministic either way. Deterministic engines
	// ignore it.
	Seed int64

	// TimeLimit bounds the whole optimization; <= 0 means no time limit
	// (MaxIterations still applies).
	TimeLimit time.Duration

	// MaxIterations bounds the tabu-search iterations; <= 0 selects a
	// size-dependent default.
	MaxIterations int

	// StopWhenSchedulable stops as soon as all deadlines hold in the
	// worst case (the paper's synthesis goal). Disable it to keep
	// minimizing the schedule length, as the evaluation experiments do.
	StopWhenSchedulable bool

	// TabuTenure is the number of iterations a moved process stays tabu;
	// <= 0 selects a size-dependent default.
	TabuTenure int

	// SlackSharing toggles the shared re-execution slack (ablation).
	// The default (via DefaultOptions) is on.
	SlackSharing bool

	// Workers bounds the number of concurrent scheduling passes used to
	// evaluate candidate moves; <= 0 selects runtime.GOMAXPROCS(0).
	// Workers == 1 evaluates moves sequentially on the calling
	// goroutine. Without a TimeLimit the search result is identical for
	// every value: the winning move is selected by (cost, move index)
	// regardless of the order in which workers finish. When a TimeLimit
	// expires mid-sweep, the subset of moves costed before the cutoff
	// depends on evaluation speed — and therefore on the worker count —
	// so timed runs are best-effort anytime results, reproducible only
	// when the budget is generous enough that the limit never strikes.
	Workers int

	// OptimizeBusAccess runs the final bus-access optimization step
	// (slot order hill climbing) after the search.
	OptimizeBusAccess bool

	// EnableCheckpointing adds checkpoint-count moves to the search:
	// re-executed replicas may take up to MaxCheckpoints state-saving
	// points (cost χ each, from the fault model) so a fault re-executes
	// only the hit segment. This is the reproduction's documented
	// extension beyond the paper (DESIGN.md §7); it is off by default.
	EnableCheckpointing bool

	// MaxCheckpoints caps the checkpoints per replica; <= 0 selects 4.
	MaxCheckpoints int

	// WarmStart, when non-empty, seeds the search with a previously
	// found design: it is evaluated right after the initial solution and
	// adopted as the incumbent (and the engines' starting point) when it
	// costs less. The run's result therefore never costs more than the
	// warm-start design — this is the checkpoint/resume guarantee the
	// cluster tier builds on. A warm start that does not fit the problem
	// (unknown processes, unmappable replicas, a policy the fault budget
	// rejects) is skipped silently: warm starts are best-effort hints
	// carried over from *similar* problems, and the cold path must
	// remain available. The run stays deterministic: the same problem,
	// options and warm start always produce the same result. Ignored by
	// SFX, whose design is derived structurally rather than searched.
	WarmStart policy.Assignment

	// FlightRecorder, when positive, enables the search flight recorder
	// with a ring capacity of that many events; once full, the oldest
	// events are overwritten (Trace.Dropped counts them). The recorder
	// is pure observability: it captures phase transitions, incumbents,
	// sweep statistics and the stop cause into Result.Trace without
	// influencing the search, and a zero value (the default) keeps
	// every emission site at a nil check.
	FlightRecorder int

	// OnImprovement, when non-nil, is called synchronously from the
	// search goroutine every time a new incumbent (best-so-far) design
	// is found, including the initial solution. The callback must be
	// fast; it observes the search but must not mutate the problem. It
	// never influences the search trajectory, so untimed runs stay
	// deterministic with or without an observer.
	OnImprovement func(Improvement)
}

// Improvement is one incumbent solution reported through
// Options.OnImprovement: the anytime signal of the search.
type Improvement struct {
	// Phase is the step that produced the incumbent: "initial", "bus",
	// "sfx", or an engine phase ("greedy", "tabu", "sa", …). Portfolio
	// racers prefix their phases with "r<i>:" (racer position), e.g.
	// "r1:sa".
	Phase string
	// Iteration is the improvement-loop iteration of the publishing
	// search handle (pipeline stages accumulate; portfolio racers count
	// independently; 0 for the initial solution).
	Iteration int
	// Cost is the incumbent's cost.
	Cost Cost
	// Design is a private snapshot of the incumbent design — the
	// observer owns it and may retain or mutate it freely. It is what
	// the service's checkpointer serializes so a killed node's solve can
	// resume elsewhere from the incumbent.
	Design policy.Assignment
	// Schedulable reports whether the incumbent meets all deadlines.
	Schedulable bool
	// Elapsed is the time since the optimization started.
	Elapsed time.Duration
}

// StopCause reports why an optimization run ended.
type StopCause int

const (
	// StopCompleted: the search exhausted its iteration budget or
	// converged (including StopWhenSchedulable hits).
	StopCompleted StopCause = iota
	// StopTimeLimit: the context deadline (Options.TimeLimit or a
	// caller-supplied deadline) expired; the result is the best design
	// found so far.
	StopTimeLimit
	// StopCanceled: the caller canceled the context; the result is the
	// best design found so far.
	StopCanceled
)

func (c StopCause) String() string {
	switch c {
	case StopCompleted:
		return "completed"
	case StopTimeLimit:
		return "time limit"
	case StopCanceled:
		return "canceled"
	}
	return fmt.Sprintf("StopCause(%d)", int(c))
}

// stopCause maps the context state at the end of a run to a cause.
func stopCause(ctx context.Context) StopCause {
	switch ctx.Err() {
	case context.Canceled:
		return StopCanceled
	case context.DeadlineExceeded:
		return StopTimeLimit
	}
	return StopCompleted
}

// DefaultOptions returns the paper's configuration for a strategy.
func DefaultOptions(s Strategy) Options {
	return Options{
		Strategy:            s,
		MaxIterations:       0,
		StopWhenSchedulable: false,
		SlackSharing:        true,
	}
}

// Result is the outcome of an optimization run.
type Result struct {
	Strategy Strategy
	// Engine is the name of the search engine that produced the design.
	Engine     string
	Assignment policy.Assignment
	Schedule   *sched.Schedule
	Cost       Cost
	Iterations int
	Elapsed    time.Duration

	// Stopped records why the run ended: a completed search, an expired
	// time limit, or caller cancellation (the design is then the best
	// found before the interruption).
	Stopped StopCause

	// Trace is the flight-recorder capture of the run; nil unless
	// Options.FlightRecorder enabled it.
	Trace *Trace
}

// Optimize runs the paper's OptimizationStrategy (Figure 6) for the
// selected strategy:
//
//	Step 1: B0 = InitialBusAccess; ψ0 = InitialMPA
//	Step 2: ψ  = GreedyMPA(ψ0)
//	Step 3: ψ  = TabuSearchMPA(ψ)
//	finally the optional bus-access optimization.
//
// With StopWhenSchedulable the run returns at the first step that yields
// a schedulable design; otherwise it uses the full budget to minimize
// the worst-case schedule length.
//
// Optimize is the untimed-by-default entry point; it is equivalent to
// OptimizeContext with context.Background().
func Optimize(p Problem, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), p, opts)
}

// OptimizeContext runs the optimization strategy under a context. The
// context is polled before every scheduling pass — the unit of work of
// the search — so cancellation and deadlines take effect within one
// sched.Build call. A positive Options.TimeLimit is merged into the
// context as a deadline relative to the start of the run.
//
// Cancellation is an anytime interruption, not a failure: once the
// initial solution exists, OptimizeContext returns the best design
// found so far with Result.Stopped recording the cause, and a nil
// error. An error is returned only when the problem is invalid or no
// design could be constructed at all.
//
// With a context that never fires (and no TimeLimit), the run takes
// exactly the legacy untimed path: the result is bit-for-bit
// deterministic and independent of Options.Workers.
func OptimizeContext(ctx context.Context, p Problem, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := wallStart()
	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(opts.TimeLimit))
		defer cancel()
	}

	// SFX is a two-phase pipeline rather than a search of its own.
	if opts.Strategy == SFX {
		return optimizeSFX(ctx, p, opts, start)
	}

	eff := p
	if opts.Strategy == NFT {
		eff.Faults = fault.None
	}

	st, err := newSearchState(eff, opts)
	if err != nil {
		return nil, err
	}
	// The engine is resolved before the first event so run_start can
	// name it; the flight recorder attaches to the search state (sweep
	// events) and, via newSearch, to the incumbent board.
	eng := opts.Engine
	if eng == nil {
		eng = DefaultEngine()
	}
	if opts.FlightRecorder > 0 {
		st.rec = newFlightRecorder(opts.FlightRecorder, start)
		st.rec.record(SearchEvent{Kind: EventRunStart,
			Strategy: opts.Strategy.String(), Engine: eng.Name()})
	}

	// Step 1: initial bus access, mapping and policy assignment.
	asgn, err := st.initialMPA()
	if err != nil {
		return nil, err
	}
	best, bestCost, err := st.evaluate(asgn)
	if err != nil {
		return nil, err
	}
	s := newSearch(st, start)
	s.Publish("initial", asgn, best, bestCost)

	// Warm start: adopt a prior incumbent when it beats the initial
	// solution, so a resumed or re-submitted solve continues from where
	// a previous search stood instead of from scratch. Publish's
	// monotone gate makes this safe: a stale or worse warm start is
	// simply ignored, and an invalid one (evaluate fails) falls back to
	// the cold path.
	if len(opts.WarmStart) > 0 && !s.ShouldStop() {
		if wsch, wc, werr := st.evaluate(opts.WarmStart); werr == nil {
			adopted := s.Publish("warmstart", opts.WarmStart, wsch, wc)
			st.rec.record(costEvent(SearchEvent{Kind: EventWarmStart,
				Phase: "warmstart", Adopted: adopted}, wc))
		}
	}

	// Steps 2+3: hand the run to the search engine (the paper's
	// greedy→tabu pipeline unless the caller plugged in another one).
	if !s.ShouldStop() {
		s.startFromBest()
		s.enterPhase(eng.Name())
		if err := eng.Explore(ctx, s); err != nil {
			return nil, err
		}
		s.exitPhase(eng.Name())
	}

	if opts.OptimizeBusAccess {
		s.enterPhase("bus")
		s.optimizeBus(ctx)
		s.exitPhase("bus")
	}

	d, sch, c, _ := s.Best()
	st.rec.record(costEvent(SearchEvent{Kind: EventRunEnd,
		Iteration: int(s.total.Load()), Cause: stopCause(ctx).String()}, c))
	return &Result{
		Strategy:   opts.Strategy,
		Engine:     eng.Name(),
		Assignment: d,
		Schedule:   sch,
		Cost:       c,
		Iterations: int(s.total.Load()),
		Elapsed:    wallElapsed(start),
		Stopped:    stopCause(ctx),
		Trace:      st.rec.snapshot(),
	}, nil
}

// optimizeSFX implements the straightforward baseline: derive the best
// mapping while ignoring fault tolerance (an NFT run), then assign
// re-execution to every process on that mapping and schedule once.
func optimizeSFX(ctx context.Context, p Problem, opts Options, start time.Time) (*Result, error) {
	nftOpts := opts
	nftOpts.Strategy = NFT
	nftOpts.StopWhenSchedulable = false
	// SFX derives its design structurally from the NFT mapping; a warm
	// start (a fault-tolerant design) has no meaning for either phase.
	nftOpts.WarmStart = nil
	// The caller already merged TimeLimit into ctx; clearing it here
	// avoids stacking a second (later, and therefore inert) deadline.
	nftOpts.TimeLimit = 0
	// The outer SFX run keeps the single trace of the job; the inner
	// NFT run would otherwise record a run of its own.
	nftOpts.FlightRecorder = 0
	nft, err := OptimizeContext(ctx, p, nftOpts)
	if err != nil {
		return nil, err
	}

	asgn := policy.Assignment{}
	for _, proc := range p.App.Processes() {
		node := nft.Assignment[proc.ID].Replicas[0].Node
		asgn[proc.ID] = policy.Reexecution(node, p.Faults.K)
	}
	st, err := newSearchState(p, opts)
	if err != nil {
		return nil, err
	}
	if opts.FlightRecorder > 0 {
		st.rec = newFlightRecorder(opts.FlightRecorder, start)
		st.rec.record(SearchEvent{Kind: EventRunStart,
			Strategy: SFX.String(), Engine: nft.Engine})
	}
	sch, cost, err := st.evaluate(asgn)
	if err != nil {
		return nil, err
	}
	newSearch(st, start).Publish("sfx", asgn, sch, cost)
	st.rec.record(costEvent(SearchEvent{Kind: EventRunEnd,
		Iteration: nft.Iterations, Cause: stopCause(ctx).String()}, cost))
	return &Result{
		Strategy:   SFX,
		Engine:     nft.Engine,
		Assignment: asgn,
		Schedule:   sch,
		Cost:       cost,
		Iterations: nft.Iterations,
		Elapsed:    wallElapsed(start),
		Stopped:    stopCause(ctx),
		Trace:      st.rec.snapshot(),
	}, nil
}
