package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// DefaultEngine returns the paper's optimization pipeline — greedy
// improvement followed by tabu search (steps 2 and 3 of Figure 6) — as
// a composed engine. It is what a run uses when Options.Engine is nil,
// and it reproduces the pre-engine solver bit for bit.
func DefaultEngine() Engine {
	return PipelineEngine{Label: "default", Stages: []Engine{GreedyEngine{}, TabuEngine{}}}
}

// GreedyEngine is the paper's step 2 (GreedyMPA): repeatedly evaluate
// all moves on the critical path and apply the best one while it
// improves the design. Move evaluation is fanned out by the evaluator;
// the winner is the lowest-index move of minimal cost, exactly as the
// sequential sweep selected it.
type GreedyEngine struct{}

func (GreedyEngine) Name() string { return "greedy" }

func (GreedyEngine) Explore(ctx context.Context, s *Search) error {
	opts := s.Options()
	asgn, cur, curCost := s.Current()
	if cur == nil {
		return errors.New("core: greedy engine needs an evaluated starting design")
	}
	for !stopped(ctx) {
		s.Tick()
		moves := s.Moves(asgn, cur.CriticalPath())
		best := -1
		bestCost := curCost
		for i, r := range s.Evaluate(ctx, asgn, moves) {
			if r.OK && r.Cost.Less(bestCost) {
				best, bestCost = i, r.Cost
			}
		}
		if best < 0 {
			break
		}
		// The sweep costs candidates into scratch arenas and keeps no
		// schedules; materialize the winner's (one extra deterministic
		// scheduling pass per accepted move, amortized over the sweep).
		bestSched, err := s.Materialize(asgn, moves[best])
		if err != nil {
			break
		}
		asgn = moves[best].ApplyTo(asgn)
		cur, curCost = bestSched, bestCost
		s.Publish("greedy", asgn, cur, curCost)
		if opts.StopWhenSchedulable && curCost.Schedulable() {
			break
		}
	}
	return nil
}

// TabuEngine is the paper's step 3 (TabuSearchMPA, Figure 9): a tabu
// search over the critical-path moves with a selective history of Tabu
// and Wait counters, aspiration (tabu moves better than the best-so-far
// are accepted) and diversification (processes that waited longer than
// |Γ| iterations).
type TabuEngine struct{}

func (TabuEngine) Name() string { return "tabu" }

func (TabuEngine) Explore(ctx context.Context, s *Search) error {
	opts := s.Options()
	origins := s.st.origins
	n := len(origins)
	tenure := opts.TabuTenure
	if tenure <= 0 {
		tenure = int(math.Sqrt(float64(n))) + 2
	}
	maxIters := opts.MaxIterations
	if maxIters <= 0 {
		maxIters = 50 + 10*n
	}
	diversifyAfter := s.st.merged.NumProcesses() // |Γ|

	tabu := make(map[model.ProcID]int, n)
	wait := make(map[model.ProcID]int, n)

	start, snow, bestCost := s.Current()
	if snow == nil {
		return errors.New("core: tabu engine needs an evaluated starting design")
	}
	xnow := start.Clone()

	iters := 0
	for iters < maxIters && !stopped(ctx) {
		if opts.StopWhenSchedulable && bestCost.Schedulable() {
			break
		}
		iters++
		s.Tick()

		cp := snow.CriticalPath()
		moves := s.Moves(xnow, cp)
		if len(moves) == 0 {
			moves = s.Moves(xnow, origins)
		}
		if len(moves) == 0 {
			break
		}

		type evaluated struct {
			i     int
			c     Cost
			isTab bool
			waits bool
		}
		var all []evaluated
		for i, r := range s.Evaluate(ctx, xnow, moves) {
			if !r.OK {
				continue
			}
			all = append(all, evaluated{
				i:     i,
				c:     r.Cost,
				isTab: tabu[moves[i].proc] > 0,
				waits: wait[moves[i].proc] > diversifyAfter,
			})
		}
		if len(all) == 0 {
			break
		}
		pick := func(filter func(evaluated) bool) *evaluated {
			var best *evaluated
			for i := range all {
				if !filter(all[i]) {
					continue
				}
				if best == nil || all[i].c.Less(best.c) {
					best = &all[i]
				}
			}
			return best
		}
		// Aspiration: any move better than the best-so-far is accepted,
		// tabu or not (line 17 of Figure 9).
		chosen := pick(func(e evaluated) bool { return true })
		if !chosen.c.Less(bestCost) {
			// Otherwise diversify with long-waiting moves (line 18)…
			if w := pick(func(e evaluated) bool { return e.waits && !e.isTab }); w != nil {
				chosen = w
			} else if nt := pick(func(e evaluated) bool { return !e.isTab }); nt != nil {
				// …or take the best non-tabu move (line 19).
				chosen = nt
			}
		}

		// Materialize the chosen move's schedule for the critical path of
		// the next iteration (sweeps keep no schedules).
		sch, err := s.Materialize(xnow, moves[chosen.i])
		if err != nil {
			break
		}
		xnow = moves[chosen.i].ApplyTo(xnow)
		snow = sch
		if chosen.c.Less(bestCost) {
			bestCost = chosen.c
			s.Publish("tabu", xnow, sch, chosen.c)
		}

		// Update the selective history (line 25).
		for _, id := range origins {
			if tabu[id] > 0 {
				tabu[id]--
			}
			wait[id]++
		}
		tabu[moves[chosen.i].proc] = tenure
		wait[moves[chosen.i].proc] = 0
	}
	return nil
}

// SimulatedAnnealingEngine explores the move neighborhood with a
// seeded, deterministic geometric cooling schedule: each iteration
// draws one random critical-path move, always accepts improvements,
// and accepts degradations with probability exp(−Δ/T). Because every
// random draw comes from the explicit seed and move evaluation is
// deterministic, two runs with equal configuration produce identical
// trajectories — so SA results cache and reproduce like the
// deterministic engines.
//
// The zero value is ready to use: seed 1 (or Options.Seed when set)
// and size-derived iteration count, temperature and cooling rate.
type SimulatedAnnealingEngine struct {
	// Seed seeds the random stream; 0 falls back to Options.Seed, then
	// to the fixed seed 1, so the engine is deterministic either way.
	Seed int64
	// Iterations bounds the annealing steps; <= 0 derives a budget from
	// Options.MaxIterations (or the problem size), scaled up because
	// each SA step costs one scheduling pass where greedy and tabu
	// sweep a whole neighborhood.
	Iterations int
	// InitialTemp is the starting temperature in cost-energy units;
	// <= 0 derives it from the starting design's energy.
	InitialTemp float64
	// Cooling is the per-iteration geometric cooling factor in (0, 1);
	// out-of-range values select 0.995.
	Cooling float64
}

func (SimulatedAnnealingEngine) Name() string { return "sa" }

// saEnergy flattens the lexicographic (tardiness, makespan) cost into
// the scalar the acceptance probability needs. The tardiness weight
// keeps feasibility dominant: trading 1 time unit of tardiness is worth
// 1000 units of makespan.
func saEnergy(c Cost) float64 {
	return 1000*float64(c.Tardiness) + float64(c.Makespan)
}

func (e SimulatedAnnealingEngine) Explore(ctx context.Context, s *Search) error {
	opts := s.Options()
	cur, sch, cost := s.Current()
	if sch == nil {
		return errors.New("core: sa engine needs an evaluated starting design")
	}

	iters := e.Iterations
	if iters <= 0 {
		base := opts.MaxIterations
		if base <= 0 {
			base = 50 + 10*len(s.st.origins)
		}
		iters = 8 * base
	}
	seed := e.Seed
	if seed == 0 {
		seed = opts.Seed
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	temp := e.InitialTemp
	if temp <= 0 {
		temp = 0.05 * saEnergy(cost)
		if temp < 1 {
			temp = 1
		}
	}
	cooling := e.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}

	// The neighborhood only changes when a move is accepted (cur and
	// sch move), so it is regenerated lazily: at low temperature most
	// proposals are rejected, and recomputing the identical move slice
	// every iteration would dominate SA's non-scheduling cost.
	var moves []Move
	stale := true
	for it := 0; it < iters && !stopped(ctx); it++ {
		s.Tick()
		if stale {
			moves = s.Moves(cur, sch.CriticalPath())
			if len(moves) == 0 {
				moves = s.Moves(cur, s.st.origins)
			}
			stale = false
		}
		if len(moves) == 0 {
			break
		}
		m := moves[rng.Intn(len(moves))]
		ev := s.Evaluate(ctx, cur, []Move{m})[0]
		temp *= cooling
		if temp < 1e-3 {
			temp = 1e-3
		}
		if !ev.OK {
			continue
		}
		delta := saEnergy(ev.Cost) - saEnergy(cost)
		if delta >= 0 && rng.Float64() >= math.Exp(-delta/temp) {
			continue
		}
		nsch, err := s.Materialize(cur, m)
		if err != nil {
			continue
		}
		cur, sch, cost = m.ApplyTo(cur), nsch, ev.Cost
		stale = true
		s.Publish("sa", cur, sch, cost)
		if s.ShouldStop() {
			break
		}
	}
	return nil
}

// PipelineEngine runs its stages sequentially: each stage starts from
// the incumbent the previous stages produced. With StopWhenSchedulable
// set, remaining stages are skipped once the incumbent is schedulable.
// The paper's greedy→tabu strategy is the pipeline DefaultEngine
// returns.
type PipelineEngine struct {
	// Label overrides the composed name ("greedy+tabu") when set.
	Label  string
	Stages []Engine
}

func (p PipelineEngine) Name() string {
	if p.Label != "" {
		return p.Label
	}
	names := make([]string, len(p.Stages))
	for i, e := range p.Stages {
		names[i] = e.Name()
	}
	return strings.Join(names, "+")
}

func (p PipelineEngine) Explore(ctx context.Context, s *Search) error {
	if len(p.Stages) == 0 {
		return errors.New("core: pipeline engine has no stages")
	}
	for _, e := range p.Stages {
		if s.ShouldStop() {
			break
		}
		s.startFromBest()
		s.enterPhase(e.Name())
		if err := e.Explore(ctx, s); err != nil {
			return err
		}
		s.exitPhase(e.Name())
	}
	return nil
}

// PortfolioEngine races its engines concurrently over the same problem,
// each on a forked Search with a private scheduling context and memo
// cache, splitting the configured move-evaluation workers between them.
// Racers exchange incumbents through the shared board: every
// improvement streams to the observer with an "r<i>:" phase prefix, and
// with StopWhenSchedulable the first schedulable incumbent stops the
// whole race.
//
// The winner is selected deterministically after the race — lowest
// cost, ties broken by racer order — so an untimed portfolio returns a
// cost at least as good as its best racer would alone, and returns it
// reproducibly. (Like timed solo runs, a race truncated by a deadline
// or an early stop keeps the best design found but may vary between
// runs in which racer got further.)
type PortfolioEngine struct {
	// Label overrides the composed name ("portfolio(tabu,sa)") when set.
	Label  string
	Racers []Engine
}

func (p PortfolioEngine) Name() string {
	if p.Label != "" {
		return p.Label
	}
	names := make([]string, len(p.Racers))
	for i, e := range p.Racers {
		names[i] = e.Name()
	}
	return "portfolio(" + strings.Join(names, ",") + ")"
}

func (p PortfolioEngine) Explore(ctx context.Context, s *Search) error {
	if len(p.Racers) == 0 {
		return errors.New("core: portfolio engine has no racers")
	}
	if len(p.Racers) == 1 {
		return p.Racers[0].Explore(ctx, s)
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Split the machine: each racer's evaluator gets an equal share of
	// the configured workers so N racers don't oversubscribe N-fold.
	workers := s.Options().Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	per := workers / len(p.Racers)
	if per < 1 {
		per = 1
	}
	// First schedulable incumbent ends the race (incumbent exchange).
	// Registration is per-race, so nested portfolios each get canceled
	// and an enclosing race's hook survives this race ending quietly.
	remove := s.board.addSchedHook(cancel)
	defer remove()

	type outcome struct {
		d   policy.Assignment
		sch *sched.Schedule
		c   Cost
		ok  bool
		err error
	}
	outs := make([]outcome, len(p.Racers))
	var wg sync.WaitGroup
	for i, e := range p.Racers {
		f, err := s.Fork(fmt.Sprintf("r%d:", i), per)
		if err != nil {
			outs[i] = outcome{err: err}
			continue
		}
		wg.Add(1)
		go func(i int, e Engine, f *Search) {
			defer wg.Done()
			f.enterPhase(e.Name())
			err := e.Explore(raceCtx, f)
			f.exitPhase(e.Name())
			d, sch, c, ok := f.Best()
			outs[i] = outcome{d: d, sch: sch, c: c, ok: ok, err: err}
		}(i, e, f)
	}
	wg.Wait()

	win := -1
	var firstErr error
	for i := range outs {
		if outs[i].err != nil {
			if firstErr == nil {
				firstErr = outs[i].err
			}
			continue
		}
		if !outs[i].ok {
			continue
		}
		if win < 0 || outs[i].c.Less(outs[win].c) {
			win = i
		}
	}
	if win < 0 {
		return firstErr
	}
	s.adopt(outs[win].d, outs[win].sch, outs[win].c)
	return nil
}
