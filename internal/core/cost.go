package core

import (
	"fmt"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/sched"
)

// Cost orders design alternatives lexicographically: first by the degree
// of unschedulability (the sum of worst-case deadline violations), then
// by the worst-case schedule length δ. The search thus drives designs to
// feasibility first and then compresses them, which is what the paper's
// evaluation measures (the shortest schedule within a time limit).
type Cost struct {
	Tardiness model.Time
	Makespan  model.Time
}

// costOf extracts the cost of a built schedule.
func costOf(s *sched.Schedule) Cost {
	return Cost{Tardiness: s.Tardiness, Makespan: s.Makespan}
}

// Less reports whether c is strictly better than o.
func (c Cost) Less(o Cost) bool {
	if c.Tardiness != o.Tardiness {
		return c.Tardiness < o.Tardiness
	}
	return c.Makespan < o.Makespan
}

// Schedulable reports whether the cost corresponds to a design meeting
// all deadlines.
func (c Cost) Schedulable() bool { return c.Tardiness == 0 }

func (c Cost) String() string {
	if c.Schedulable() {
		return fmt.Sprintf("δ=%v", c.Makespan)
	}
	return fmt.Sprintf("δ=%v tardy=%v", c.Makespan, c.Tardiness)
}

// worstCost is an upper bound used to initialize searches.
var worstCost = Cost{Tardiness: model.Infinity, Makespan: model.Infinity}
