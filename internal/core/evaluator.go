package core

import (
	"context"
	"crypto/sha256"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// MoveEval is the outcome of evaluating one candidate move: the
// schedule and cost of the assignment with the move applied. OK is
// false when the scheduler rejected the move or the context fired
// before the move could be evaluated. Schedule is nil when the cost
// came from the memo cache — the cache keeps only costs, not schedules,
// so that long runs do not retain thousands of full schedule tables;
// callers materialize the schedule of the (rare) memoized winner with
// Search.Materialize.
type MoveEval struct {
	Schedule *sched.Schedule
	Cost     Cost
	OK       bool
}

// cachedCost is the memoized part of a MoveEval.
type cachedCost struct {
	c  Cost
	ok bool
}

// fingerprint is the fixed-size cache key of an assignment: a SHA-256
// over its canonical serialization. Hashing keeps the memo table at
// ~40 bytes per entry regardless of application size (the serialized
// form is O(processes × replicas) bytes, which at paper scale would
// retain hundreds of megabytes over a long tabu run).
type fingerprint [sha256.Size]byte

// maxCacheEntries bounds the memo table within one bus configuration;
// beyond it new results are still returned but no longer remembered.
// 2^20 entries (~40 MB) is far above any configured search budget.
const maxCacheEntries = 1 << 20

// evaluator runs the per-move scheduling passes shared by every engine.
// Moves are fanned out over a bounded worker pool and results are
// memoized by assignment fingerprint, so a search loop never
// re-schedules an assignment it has already costed.
//
// Concurrent evaluation relies on the read-only invariants of the
// scheduling context: the merged graph (frozen by sched.NewStatic), the
// architecture, the WCET table, the bus configuration and the
// precomputed sched.Static are all shared across workers and must not
// be mutated while evalMoves runs. Each evaluation builds its own
// assignment clone and sched.Build allocates a fresh builder and bus
// allocator per call, so no mutable state crosses goroutines.
type evaluator struct {
	st      *searchState
	workers int

	cache map[fingerprint]cachedCost
	buf   []byte // scratch for fingerprint serialization
	// hits/misses instrument the memoization for tests and tuning.
	hits, misses int
}

func newEvaluator(st *searchState, workers int) *evaluator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &evaluator{st: st, workers: workers, cache: make(map[fingerprint]cachedCost)}
}

// invalidate drops the memoized results. Called whenever the bus
// configuration changes: the fingerprint covers only the assignment, so
// cached costs are valid for a single scheduling context.
func (ev *evaluator) invalidate() {
	clear(ev.cache)
}

// fingerprint serializes the assignment with pol substituted for proc
// in the sorted origin order — so equal assignments always produce
// equal serializations — and hashes it into a fixed-size key.
func (ev *evaluator) fingerprint(base policy.Assignment, proc model.ProcID, pol policy.Policy) fingerprint {
	buf := ev.buf[:0]
	for _, id := range ev.st.origins {
		p, ok := base[id]
		if id == proc {
			p, ok = pol, true
		}
		if !ok {
			buf = append(buf, '-', '|')
			continue
		}
		for _, r := range p.Replicas {
			buf = strconv.AppendInt(buf, int64(r.Node), 10)
			buf = append(buf, '+')
			buf = strconv.AppendInt(buf, int64(r.Reexec), 10)
			buf = append(buf, '/')
			buf = strconv.AppendInt(buf, int64(r.Checkpoints), 10)
			buf = append(buf, ' ')
		}
		buf = append(buf, '|')
	}
	ev.buf = buf
	return sha256.Sum256(buf)
}

// evalMoves evaluates every move against the base assignment and
// returns the results indexed by move position. The base assignment is
// only read; each evaluation applies its move to a private clone, which
// the resulting schedule then owns. The context is checked before
// every scheduling pass, so a sweep over many moves stops promptly when
// it is canceled or its deadline expires (remaining entries report
// OK == false).
//
// With a context that never fires mid-sweep the result is independent
// of the worker count: callers pick winners by (cost, move index), and
// memoized entries are resolved before the fan-out so cache state never
// influences scheduling order. A context firing mid-sweep cuts the
// evaluated subset at a speed-dependent point, so only uninterrupted
// runs are bit-reproducible across worker counts (see Options.Workers).
func (ev *evaluator) evalMoves(ctx context.Context, base policy.Assignment, moves []Move) []MoveEval {
	out := make([]MoveEval, len(moves))
	if len(moves) == 0 {
		return out
	}

	// Resolve memoized results first; only cache misses hit the pool.
	keys := make([]fingerprint, len(moves))
	evaluated := make([]bool, len(moves))
	pending := make([]int, 0, len(moves))
	for i := range moves {
		keys[i] = ev.fingerprint(base, moves[i].proc, moves[i].pol)
		if r, hit := ev.cache[keys[i]]; hit {
			out[i] = MoveEval{Cost: r.c, OK: r.ok}
			ev.hits++
		} else {
			pending = append(pending, i)
			ev.misses++
		}
	}
	if len(pending) == 0 {
		return out
	}

	evalOne := func(i int) {
		m := &moves[i]
		asgn := base.Clone()
		asgn[m.proc] = m.pol.Clone()
		s, c, err := ev.st.evaluate(asgn)
		evaluated[i] = true
		if err == nil {
			out[i] = MoveEval{Schedule: s, Cost: c, OK: true}
		}
	}

	if workers := min(ev.workers, len(pending)); workers <= 1 {
		for _, i := range pending {
			if stopped(ctx) {
				break
			}
			evalOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(pending) || stopped(ctx) {
						return
					}
					evalOne(pending[n])
				}
			}()
		}
		wg.Wait()
	}

	// Memoize everything that actually ran, including scheduler
	// rejections (they are deterministic per assignment). Moves skipped
	// by a fired context are not cached: they were never costed.
	for _, i := range pending {
		if evaluated[i] && len(ev.cache) < maxCacheEntries {
			ev.cache[keys[i]] = cachedCost{c: out[i].Cost, ok: out[i].OK}
		}
	}
	return out
}

// rebuild schedules the assignment with the move applied; used to
// materialize the schedule of a winner whose cost was memoized. The
// scheduler is deterministic, so the result matches the original
// evaluation of the same assignment.
func (ev *evaluator) rebuild(base policy.Assignment, m Move) (*sched.Schedule, error) {
	s, _, err := ev.st.evaluate(m.ApplyTo(base))
	return s, err
}
