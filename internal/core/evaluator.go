package core

import (
	"context"
	"crypto/sha256"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// MoveEval is the outcome of evaluating one candidate move: the cost of
// the assignment with the move applied. OK is false when the scheduler
// rejected the move or the context fired before the move could be
// evaluated.
//
// Schedule is always nil for batch evaluations: the hot path schedules
// candidates into per-worker scratch arenas (allocation-free, never
// retained) and the memo cache keeps only costs, so neither produces a
// schedule that could outlive the sweep. Callers materialize the
// schedule of the (rare) winning move with Search.Materialize. The
// field is kept so custom engines written against the earlier contract
// — check Schedule, fall back to Materialize — keep compiling and
// working.
type MoveEval struct {
	Schedule *sched.Schedule
	Cost     Cost
	OK       bool
}

// cachedCost is the memoized part of a MoveEval.
type cachedCost struct {
	c  Cost
	ok bool
}

// fingerprint is the fixed-size cache key of an assignment: a SHA-256
// over its canonical serialization. Hashing keeps the memo table at
// ~40 bytes per entry regardless of application size (the serialized
// form is O(processes × replicas) bytes, which at paper scale would
// retain hundreds of megabytes over a long tabu run).
type fingerprint [sha256.Size]byte

// maxCacheEntries bounds the memo table within one bus configuration;
// beyond it new results are still returned but no longer remembered.
// 2^20 entries (~40 MB) is far above any configured search budget.
const maxCacheEntries = 1 << 20

// evaluator runs the per-move scheduling passes shared by every engine.
// Moves are fanned out over a bounded worker pool and results are
// memoized by assignment fingerprint, so a search loop never
// re-schedules an assignment it has already costed.
//
// Concurrent evaluation relies on the read-only invariants of the
// scheduling context: the merged graph (frozen by sched.NewStatic), the
// architecture, the WCET table, the bus configuration and the
// precomputed sched.Static are all shared across workers and must not
// be mutated while evalMoves runs. Each worker costs candidates through
// a private evalScratch — a reusable working assignment plus a
// sched.Scratch arena — so the hot path is allocation-free in steady
// state and no mutable state crosses goroutines.
type evaluator struct {
	st      *searchState
	workers int

	cache map[fingerprint]cachedCost
	buf   []byte // scratch for fingerprint serialization
	// hits/misses instrument the memoization for tests and tuning.
	hits, misses int

	// scratch pools the per-worker evaluation arenas. A sync.Pool (not a
	// fixed per-worker array) because sweeps spawn min(workers, pending)
	// goroutines and sequential sweeps run on the caller's goroutine.
	scratch sync.Pool
}

// evalScratch is one worker's reusable evaluation state: the candidate
// assignment (the base with one move substituted, rebuilt by shallow
// copy per candidate — safe because scheduling never mutates policies)
// and the schedule arena.
type evalScratch struct {
	asgn policy.Assignment
	sc   *sched.Scratch
	used bool // set after the first checkout, for the reuse counter
}

// getScratch checks a worker arena out of the pool, counting reuses so
// the scratch-pool effectiveness is observable (see EvaluatorMetrics).
func (ev *evaluator) getScratch() *evalScratch {
	es := ev.scratch.Get().(*evalScratch)
	if es.used {
		evalMetrics.scratchReuses.Add(1)
	} else {
		es.used = true
	}
	return es
}

func newEvaluator(st *searchState, workers int) *evaluator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ev := &evaluator{st: st, workers: workers, cache: make(map[fingerprint]cachedCost)}
	ev.scratch.New = func() any {
		evalMetrics.scratchAllocs.Add(1)
		return &evalScratch{asgn: policy.Assignment{}, sc: sched.NewScratch()}
	}
	return ev
}

// invalidate drops the memoized results. Called whenever the bus
// configuration changes: the fingerprint covers only the assignment, so
// cached costs are valid for a single scheduling context.
func (ev *evaluator) invalidate() {
	clear(ev.cache)
}

// fingerprint serializes the assignment with pol substituted for proc
// in the sorted origin order — so equal assignments always produce
// equal serializations — and hashes it into a fixed-size key.
func (ev *evaluator) fingerprint(base policy.Assignment, proc model.ProcID, pol policy.Policy) fingerprint {
	buf := ev.buf[:0]
	for _, id := range ev.st.origins {
		p, ok := base[id]
		if id == proc {
			p, ok = pol, true
		}
		if !ok {
			buf = append(buf, '-', '|')
			continue
		}
		for _, r := range p.Replicas {
			buf = strconv.AppendInt(buf, int64(r.Node), 10)
			buf = append(buf, '+')
			buf = strconv.AppendInt(buf, int64(r.Reexec), 10)
			buf = append(buf, '/')
			buf = strconv.AppendInt(buf, int64(r.Checkpoints), 10)
			buf = append(buf, ' ')
		}
		buf = append(buf, '|')
	}
	ev.buf = buf
	return sha256.Sum256(buf)
}

// evalMoves evaluates every move against the base assignment and
// returns the results indexed by move position. The base assignment is
// only read; each evaluation applies its move to a private clone, which
// the resulting schedule then owns. The context is checked before
// every scheduling pass, so a sweep over many moves stops promptly when
// it is canceled or its deadline expires (remaining entries report
// OK == false).
//
// With a context that never fires mid-sweep the result is independent
// of the worker count: callers pick winners by (cost, move index), and
// memoized entries are resolved before the fan-out so cache state never
// influences scheduling order. A context firing mid-sweep cuts the
// evaluated subset at a speed-dependent point, so only uninterrupted
// runs are bit-reproducible across worker counts (see Options.Workers).
func (ev *evaluator) evalMoves(ctx context.Context, base policy.Assignment, moves []Move) []MoveEval {
	out := make([]MoveEval, len(moves))
	if len(moves) == 0 {
		return out
	}

	// Resolve memoized results first; only cache misses hit the pool.
	keys := make([]fingerprint, len(moves))
	evaluated := make([]bool, len(moves))
	pending := make([]int, 0, len(moves))
	for i := range moves {
		keys[i] = ev.fingerprint(base, moves[i].proc, moves[i].pol)
		if r, hit := ev.cache[keys[i]]; hit {
			out[i] = MoveEval{Cost: r.c, OK: r.ok}
			ev.hits++
		} else {
			pending = append(pending, i)
			ev.misses++
		}
	}
	evalMetrics.cacheHits.Add(int64(len(moves) - len(pending)))
	evalMetrics.cacheMisses.Add(int64(len(pending)))
	if len(pending) == 0 {
		// The explicit nil guard (rather than relying on record's own)
		// keeps the disabled path free of event construction — part of
		// the recorder's zero-cost-when-off contract.
		if rec := ev.st.rec; rec != nil {
			rec.record(SearchEvent{Kind: EventSweep,
				Moves: len(moves), CacheHits: len(moves)})
		}
		return out
	}

	sw := &sweep{base: base, moves: moves, pending: pending, out: out, evaluated: evaluated}
	if workers := min(ev.workers, len(pending)); workers <= 1 {
		es := ev.getScratch()
		ev.primeScratch(es, base)
		for _, i := range pending {
			if stopped(ctx) {
				break
			}
			ev.evalOne(es, sw, i)
		}
		ev.scratch.Put(es)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				ev.worker(ctx, sw)
			}()
		}
		wg.Wait()
	}

	// Memoize everything that actually ran, including scheduler
	// rejections (they are deterministic per assignment). Moves skipped
	// by a fired context are not cached: they were never costed.
	ran := 0
	for _, i := range pending {
		if !evaluated[i] {
			continue
		}
		ran++
		if len(ev.cache) < maxCacheEntries {
			ev.cache[keys[i]] = cachedCost{c: out[i].Cost, ok: out[i].OK}
		}
	}
	evalMetrics.passes.Add(int64(ran))
	if rec := ev.st.rec; rec != nil {
		rec.record(SearchEvent{Kind: EventSweep, Moves: len(moves),
			Evaluated: ran, CacheHits: len(moves) - len(pending)})
	}
	return out
}

// sweep is the shared state of one evalMoves fan-out: the immutable
// inputs (base, moves, pending) and the result slots each index owns
// exclusively. next is the work-stealing cursor of the worker pool.
type sweep struct {
	base      policy.Assignment
	moves     []Move
	pending   []int
	out       []MoveEval
	evaluated []bool
	next      atomic.Int64
}

// primeScratch rebuilds the worker's candidate assignment as a shallow
// copy of base: policies are never mutated by scheduling, so sharing
// the Replicas backing is safe, and the map keeps its capacity across
// checkouts.
//
//ftdse:hotpath
func (ev *evaluator) primeScratch(es *evalScratch, base policy.Assignment) {
	clear(es.asgn)
	for id, p := range base {
		es.asgn[id] = p
	}
}

// evalOne costs one candidate into the worker's scratch: it substitutes
// the move's policy, schedules into the arena, and restores the base
// entry — O(1) map work per candidate, no allocations, no schedule
// retained. Moves always target processes present in base (the
// neighborhood is generated from its entries), so the restore never
// leaves a stale key.
//
//ftdse:hotpath
func (ev *evaluator) evalOne(es *evalScratch, sw *sweep, i int) {
	m := &sw.moves[i]
	es.asgn[m.proc] = m.pol
	c, ok := ev.st.evaluateInto(es.sc, es.asgn)
	es.asgn[m.proc] = sw.base[m.proc]
	sw.evaluated[i] = true
	if ok {
		sw.out[i] = MoveEval{Cost: c, OK: true}
	}
}

// worker is the body of one pool goroutine: it checks a scratch arena
// out once and drains the sweep's cursor until the work or the context
// runs out.
//
//ftdse:hotpath
func (ev *evaluator) worker(ctx context.Context, sw *sweep) {
	es := ev.getScratch()
	defer ev.scratch.Put(es)
	ev.primeScratch(es, sw.base)
	for {
		n := int(sw.next.Add(1)) - 1
		if n >= len(sw.pending) || stopped(ctx) {
			return
		}
		ev.evalOne(es, sw, sw.pending[n])
	}
}

// rebuild schedules the assignment with the move applied; used to
// materialize the schedule of a winner whose cost was memoized. The
// scheduler is deterministic, so the result matches the original
// evaluation of the same assignment.
func (ev *evaluator) rebuild(base policy.Assignment, m Move) (*sched.Schedule, error) {
	s, _, err := ev.st.evaluate(m.ApplyTo(base))
	return s, err
}
