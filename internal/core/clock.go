package core

import "time"

// This file holds the deterministic core's only sanctioned wall-clock
// reads. Wall time enters an optimization run in exactly two ways, both
// documented as outside the determinism contract: the TimeLimit/context
// deadline (an anytime interruption) and the Elapsed stamps on results,
// improvement events, and flight-recorder events (observability).
// Neither steers move selection; with no deadline the run is
// bit-reproducible. Everything else in internal/... must not read the
// clock — the ftlint determinism pass enforces this, and the
// //ftdse:clock annotations below are the sanctioned escape hatch it
// recognizes.

// wallStart stamps the beginning of a run.
//
//ftdse:clock run start feeds the anytime deadline and Elapsed stamps, never move selection
func wallStart() time.Time {
	return time.Now()
}

// wallElapsed measures observability durations relative to wallStart;
// flight-recorder event stamps route through here.
//
//ftdse:clock elapsed stamps are reporting only; search decisions cannot observe them
func wallElapsed(start time.Time) time.Duration {
	return time.Since(start)
}
