package core

import "time"

// This file holds the deterministic core's only sanctioned wall-clock
// reads. Wall time enters an optimization run in exactly two ways, both
// documented as outside the determinism contract: the TimeLimit/context
// deadline (an anytime interruption) and the Elapsed stamps on results
// and improvement events (observability). Neither steers move
// selection; with no deadline the run is bit-reproducible. Everything
// else in internal/... must not read the clock — the ftlint determinism
// pass enforces this.

// wallStart stamps the beginning of a run.
func wallStart() time.Time {
	return time.Now() //ftlint:allow determinism run start feeds the anytime deadline and Elapsed stamps, never move selection
}

// wallElapsed measures observability durations relative to wallStart.
func wallElapsed(start time.Time) time.Duration {
	return time.Since(start) //ftlint:allow determinism elapsed stamps are reporting only; search decisions cannot observe them
}
