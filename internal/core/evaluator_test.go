package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/ftdse/internal/policy"
)

// evalState builds a searchState plus an initial assignment and its
// move neighborhood for evaluator tests.
func evalState(t *testing.T, workers int) (*searchState, policy.Assignment, []Move) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	p := randomProblem(rng, 10, 3, 2)
	opts := DefaultOptions(MXR)
	opts.Workers = workers
	st, err := newSearchState(p, opts)
	if err != nil {
		t.Fatalf("newSearchState: %v", err)
	}
	asgn, err := st.initialMPA()
	if err != nil {
		t.Fatalf("initialMPA: %v", err)
	}
	moves := st.generateMoves(asgn, st.origins)
	if len(moves) == 0 {
		t.Fatal("no moves generated")
	}
	return st, asgn, moves
}

func TestEvaluatorFingerprintCanonical(t *testing.T) {
	st, base, moves := evalState(t, 1)
	ev := st.eval

	// Substituting a move's policy must fingerprint identically to
	// actually applying the move.
	m := moves[0]
	applied := m.ApplyTo(base)
	want := ev.fingerprint(applied, m.proc, applied[m.proc])
	if got := ev.fingerprint(base, m.proc, m.pol); got != want {
		t.Errorf("substituted fingerprint %x != applied fingerprint %x", got, want)
	}
	// Different moves must not collide with the base fingerprint.
	baseKey := ev.fingerprint(base, m.proc, base[m.proc])
	for i := range moves {
		if key := ev.fingerprint(base, moves[i].proc, moves[i].pol); key == baseKey {
			t.Errorf("move %v fingerprints like the unchanged assignment", moves[i])
		}
	}
}

func TestEvaluatorMemoization(t *testing.T) {
	st, base, moves := evalState(t, 1)
	ev := st.eval

	first := ev.evalMoves(context.Background(), base, moves)
	misses := ev.misses
	if ev.hits != 0 {
		t.Fatalf("first sweep had %d cache hits, want 0", ev.hits)
	}
	second := ev.evalMoves(context.Background(), base, moves)
	if ev.misses != misses {
		t.Errorf("second sweep missed the cache %d times", ev.misses-misses)
	}
	if ev.hits != len(moves) {
		t.Errorf("second sweep hit the cache %d times, want %d", ev.hits, len(moves))
	}
	for i := range first {
		if first[i].OK != second[i].OK || first[i].Cost != second[i].Cost {
			t.Errorf("move %d: memoized cost differs", i)
		}
		if second[i].Schedule != nil {
			t.Errorf("move %d: memoized result retains a schedule", i)
		}
	}

	// A bus change invalidates the cache.
	if err := st.rebuildStatic(); err != nil {
		t.Fatalf("rebuildStatic: %v", err)
	}
	if len(ev.cache) != 0 {
		t.Errorf("cache holds %d entries after bus rebuild, want 0", len(ev.cache))
	}
}

func TestEvaluatorCanceledContext(t *testing.T) {
	st, base, moves := evalState(t, 1)
	ev := st.eval

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range ev.evalMoves(ctx, base, moves) {
		if r.OK {
			t.Errorf("move %d evaluated despite canceled context", i)
		}
	}
	if len(ev.cache) != 0 {
		t.Errorf("context-skipped moves were cached (%d entries)", len(ev.cache))
	}
}

// TestEvaluatorScratchMatchesFreshBuild pins the bit-identical contract
// of the allocation-free hot path: every cost coming out of a sweep
// (scratch arenas, shallow-copied assignments) equals the cost of a
// fresh, allocating scheduling pass over the applied move.
func TestEvaluatorScratchMatchesFreshBuild(t *testing.T) {
	st, base, moves := evalState(t, 4)
	results := st.eval.evalMoves(context.Background(), base, moves)
	for i, r := range results {
		if r.Schedule != nil {
			t.Errorf("move %d: sweep retained a schedule", i)
		}
		sch, c, err := st.evaluate(moves[i].ApplyTo(base))
		if (err == nil) != r.OK {
			t.Fatalf("move %d: sweep OK=%v, fresh err=%v", i, r.OK, err)
		}
		if !r.OK {
			continue
		}
		if c != r.Cost {
			t.Errorf("move %d: sweep cost %v != fresh cost %v", i, r.Cost, c)
		}
		if got := costOf(sch); got != r.Cost {
			t.Errorf("move %d: fresh schedule cost %v != sweep cost %v", i, got, r.Cost)
		}
	}
}

// TestEvaluatorMetricsAdvance: the process-wide hot-path counters must
// observe scheduling passes, cache traffic and scratch reuse.
func TestEvaluatorMetricsAdvance(t *testing.T) {
	before := ReadEvaluatorMetrics()
	st, base, moves := evalState(t, 2)
	st.eval.evalMoves(context.Background(), base, moves) // all misses
	st.eval.evalMoves(context.Background(), base, moves) // all hits
	after := ReadEvaluatorMetrics()
	if got := after.SchedulingPasses - before.SchedulingPasses; got < int64(len(moves)) {
		t.Errorf("scheduling passes advanced by %d, want >= %d", got, len(moves))
	}
	if got := after.CacheHits - before.CacheHits; got < int64(len(moves)) {
		t.Errorf("cache hits advanced by %d, want >= %d", got, len(moves))
	}
	if got := after.CacheMisses - before.CacheMisses; got < int64(len(moves)) {
		t.Errorf("cache misses advanced by %d, want >= %d", got, len(moves))
	}
	if after.ScratchAllocs == 0 {
		t.Error("no scratch arena was ever allocated")
	}
}

func TestEvaluatorWorkerCountsAgree(t *testing.T) {
	st1, base1, moves := evalState(t, 1)
	st8, base8, moves8 := evalState(t, 8)
	if len(moves) != len(moves8) {
		t.Fatalf("move sets differ: %d vs %d", len(moves), len(moves8))
	}
	seq := st1.eval.evalMoves(context.Background(), base1, moves)
	par := st8.eval.evalMoves(context.Background(), base8, moves8)
	for i := range seq {
		if seq[i].OK != par[i].OK || seq[i].Cost != par[i].Cost {
			t.Errorf("move %d: sequential %+v vs parallel %+v", i, seq[i].Cost, par[i].Cost)
		}
	}
}
