package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// solveWith runs one optimization with the given engine (nil = default).
func solveWith(t *testing.T, p Problem, eng Engine, tune func(*Options)) *Result {
	t.Helper()
	opts := DefaultOptions(MXR)
	opts.MaxIterations = 40
	opts.Engine = eng
	if tune != nil {
		tune(&opts)
	}
	res, err := Optimize(p, opts)
	if err != nil {
		t.Fatalf("Optimize(%v): %v", engName(eng), err)
	}
	return res
}

func engName(e Engine) string {
	if e == nil {
		return "<default>"
	}
	return e.Name()
}

// TestDefaultEngineIsGoldenPipeline pins the refactor's central
// guarantee: a run with no engine configured, a run with the named
// "default" engine, and a run with an explicitly composed greedy→tabu
// pipeline all produce the identical Result — same design, cost and
// iteration count.
func TestDefaultEngineIsGoldenPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		p := randomProblem(rng, 12, 3, 2)
		base := solveWith(t, p, nil, nil)
		if base.Engine != "default" {
			t.Fatalf("nil engine reports %q, want default", base.Engine)
		}
		named := solveWith(t, p, DefaultEngine(), nil)
		composed := solveWith(t, p, PipelineEngine{Stages: []Engine{GreedyEngine{}, TabuEngine{}}}, nil)
		for name, res := range map[string]*Result{"named": named, "composed": composed} {
			if !reflect.DeepEqual(base.Assignment, res.Assignment) {
				t.Errorf("trial %d: %s engine diverges from default in design", trial, name)
			}
			if base.Cost != res.Cost || base.Iterations != res.Iterations {
				t.Errorf("trial %d: %s engine: cost/iters %v/%d, want %v/%d",
					trial, name, res.Cost, res.Iterations, base.Cost, base.Iterations)
			}
		}
	}
}

// TestEnginesProduceValidDesigns runs every built-in engine across
// every strategy and validates the synthesized schedules.
func TestEnginesProduceValidDesigns(t *testing.T) {
	engines := []Engine{
		GreedyEngine{},
		TabuEngine{},
		SimulatedAnnealingEngine{},
		DefaultEngine(),
		PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}},
	}
	p := diamondProblem(t, 1, 0)
	for _, eng := range engines {
		for _, s := range []Strategy{MXR, MX, MR, SFX, NFT} {
			res := solveWith(t, p, eng, func(o *Options) { o.Strategy = s })
			if res.Schedule == nil || len(res.Assignment) == 0 {
				t.Fatalf("%s/%v: empty result", eng.Name(), s)
			}
			if res.Stopped != StopCompleted {
				t.Errorf("%s/%v: stopped %v, want completed", eng.Name(), s, res.Stopped)
			}
		}
	}
}

// TestSimulatedAnnealingDeterministicPerSeed: equal seeds reproduce the
// run bit for bit; a different seed is allowed to (and here does)
// explore a different trajectory.
func TestSimulatedAnnealingDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomProblem(rng, 12, 3, 2)
	a := solveWith(t, p, SimulatedAnnealingEngine{Seed: 5}, nil)
	b := solveWith(t, p, SimulatedAnnealingEngine{Seed: 5}, nil)
	if !reflect.DeepEqual(a.Assignment, b.Assignment) || a.Cost != b.Cost || a.Iterations != b.Iterations {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", a.Cost, a.Iterations, b.Cost, b.Iterations)
	}
	// Options.Seed is the fallback when the engine carries no seed.
	c := solveWith(t, p, SimulatedAnnealingEngine{}, func(o *Options) { o.Seed = 5 })
	if !reflect.DeepEqual(a.Assignment, c.Assignment) || a.Cost != c.Cost {
		t.Fatalf("Options.Seed fallback diverged from explicit engine seed")
	}
}

// TestSimulatedAnnealingImprovesOnInitial: SA must at least return the
// initial design and normally improves on it.
func TestSimulatedAnnealingImprovesOnInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomProblem(rng, 12, 3, 2)
	sa := solveWith(t, p, SimulatedAnnealingEngine{}, nil)
	if sa.Schedule == nil {
		t.Fatal("no schedule")
	}
	// Greedy-only is a cheap baseline for "did SA move at all".
	greedy := solveWith(t, p, GreedyEngine{}, nil)
	if greedy.Cost.Less(sa.Cost) && sa.Iterations == 0 {
		t.Fatalf("SA never iterated: %v vs greedy %v", sa.Cost, greedy.Cost)
	}
}

// TestPortfolioAtLeastAsGoodAsRacers pins the acceptance criterion:
// an untimed Portfolio(tabu, sa) returns a cost no worse than the best
// of its racers run alone, and does so deterministically.
func TestPortfolioAtLeastAsGoodAsRacers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		p := randomProblem(rng, 10+2*trial, 3, 2)
		tabu := solveWith(t, p, TabuEngine{}, nil)
		sa := solveWith(t, p, SimulatedAnnealingEngine{}, nil)
		port := solveWith(t, p, PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}}, nil)

		single := tabu.Cost
		if sa.Cost.Less(single) {
			single = sa.Cost
		}
		if single.Less(port.Cost) {
			t.Errorf("trial %d: portfolio %v worse than best single %v", trial, port.Cost, single)
		}
		again := solveWith(t, p, PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}}, nil)
		if !reflect.DeepEqual(port.Assignment, again.Assignment) || port.Cost != again.Cost {
			t.Errorf("trial %d: portfolio result not deterministic", trial)
		}
	}
}

// TestPortfolioWinnerTieBreaksByRacerOrder: racing an engine against
// itself ties on cost, and the deterministic selection must keep the
// first racer's design — which equals the solo run's design.
func TestPortfolioWinnerTieBreaksByRacerOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := randomProblem(rng, 10, 3, 2)
	solo := solveWith(t, p, TabuEngine{}, nil)
	port := solveWith(t, p, PortfolioEngine{Racers: []Engine{TabuEngine{}, TabuEngine{}}}, nil)
	if !reflect.DeepEqual(solo.Assignment, port.Assignment) || solo.Cost != port.Cost {
		t.Fatalf("self-race diverged from solo run: %v vs %v", port.Cost, solo.Cost)
	}
}

// TestPortfolioStreamsPrefixedIncumbents: racer improvements arrive on
// the shared board with their racer prefix, and the observer never
// sees a cost regression from any single racer's stream.
func TestPortfolioStreamsPrefixedIncumbents(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomProblem(rng, 12, 3, 2)
	var phases []string
	solveWith(t, p, PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}},
		func(o *Options) {
			o.OnImprovement = func(imp Improvement) { phases = append(phases, imp.Phase) }
		})
	if len(phases) == 0 || phases[0] != "initial" {
		t.Fatalf("phases = %v, want initial first", phases)
	}
	sawRacer := false
	for _, ph := range phases[1:] {
		if ph == "r0:tabu" || ph == "r1:sa" {
			sawRacer = true
		}
	}
	if !sawRacer {
		t.Errorf("no racer-prefixed phase in %v", phases)
	}
}

// TestPortfolioCancellationReturnsBestSoFar: canceling mid-race still
// yields a design (the anytime contract holds through forks).
func TestPortfolioCancellationReturnsBestSoFar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := randomProblem(rng, 14, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions(MXR)
	opts.MaxIterations = 2000
	opts.Engine = PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}}
	opts.OnImprovement = func(Improvement) { cancel() } // fire at the initial incumbent
	res, err := OptimizeContext(ctx, p, opts)
	if err != nil {
		t.Fatalf("OptimizeContext: %v", err)
	}
	if res.Schedule == nil {
		t.Fatal("canceled portfolio lost its best-so-far design")
	}
	if res.Stopped != StopCanceled {
		t.Errorf("stopped %v, want canceled", res.Stopped)
	}
}

// TestPipelineAndPortfolioRejectEmpty: composite engines with nothing
// to run fail loudly instead of silently returning the initial design.
func TestPipelineAndPortfolioRejectEmpty(t *testing.T) {
	p := diamondProblem(t, 1, 0)
	for _, eng := range []Engine{PipelineEngine{}, PortfolioEngine{}} {
		opts := DefaultOptions(MXR)
		opts.Engine = eng
		if _, err := Optimize(p, opts); err == nil {
			t.Errorf("%T: empty composite engine did not error", eng)
		}
	}
}

// TestEngineNames pins the canonical names used by flags, the service
// wire format and metrics.
func TestEngineNames(t *testing.T) {
	want := map[string]Engine{
		"default":            DefaultEngine(),
		"greedy":             GreedyEngine{},
		"tabu":               TabuEngine{},
		"sa":                 SimulatedAnnealingEngine{},
		"greedy+tabu":        PipelineEngine{Stages: []Engine{GreedyEngine{}, TabuEngine{}}},
		"portfolio(tabu,sa)": PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}},
	}
	for name, eng := range want {
		if eng.Name() != name {
			t.Errorf("Name() = %q, want %q", eng.Name(), name)
		}
	}
}

// TestPortfolioObserverStreamMonotone: the board relays an improvement
// to the observer only when it beats the run-global best, so even
// concurrent racers with private incumbents produce a monotone event
// stream (the contract the service's SSE relay republishes).
func TestPortfolioObserverStreamMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		p := randomProblem(rng, 12, 3, 2)
		var mu sync.Mutex
		var costs []Cost
		solveWith(t, p, PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}},
			func(o *Options) {
				o.OnImprovement = func(imp Improvement) {
					mu.Lock()
					costs = append(costs, imp.Cost)
					mu.Unlock()
				}
			})
		for i := 1; i < len(costs); i++ {
			if !costs[i].Less(costs[i-1]) {
				t.Fatalf("trial %d: observer stream not monotone: %v then %v", trial, costs[i-1], costs[i])
			}
		}
	}
}

// TestNestedPortfolioStopWhenSchedulable: the first schedulable
// incumbent must stop every registered race, including an enclosing
// one — the board keeps one hook per running portfolio, not a single
// slot the innermost race would consume.
func TestNestedPortfolioStopWhenSchedulable(t *testing.T) {
	// Pick a deadline between the initial design's makespan and the
	// optimum, so the run starts unschedulable (the engines must
	// actually explore) but a schedulable design exists.
	probe := diamondProblem(t, 1, 0)
	var initial Cost
	res := solveWith(t, probe, nil, func(o *Options) {
		o.OnImprovement = func(imp Improvement) {
			if imp.Phase == "initial" {
				initial = imp.Cost
			}
		}
	})
	if res.Cost.Makespan >= initial.Makespan {
		t.Skipf("search does not improve the initial design (%v vs %v)", res.Cost, initial)
	}
	deadline := (res.Cost.Makespan + initial.Makespan) / 2

	p := diamondProblem(t, 1, deadline)
	nested := PortfolioEngine{Racers: []Engine{
		PortfolioEngine{Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}}},
		TabuEngine{},
	}}
	got := solveWith(t, p, nested, func(o *Options) {
		o.StopWhenSchedulable = true
		o.MaxIterations = 100000 // the early stop, not the budget, must end the run
	})
	if !got.Cost.Schedulable() {
		t.Fatalf("nested early-stop race returned unschedulable %v", got.Cost)
	}
	if got.Iterations >= 100000 {
		t.Fatalf("race was not stopped early: %d iterations", got.Iterations)
	}
}
