package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// Engine is a pluggable search algorithm. An engine receives a Search
// handle — the problem's move neighborhood, the memoizing parallel
// evaluator, and the run's incumbent channel — and drives exploration
// however it likes until it converges or the context fires.
//
// The contract an engine must honor:
//
//   - Determinism: with a context that never fires, Explore must be a
//     pure function of the Search state and the engine's own
//     configuration (stochastic engines derive all randomness from an
//     explicit seed). This is what keeps solver results reproducible
//     and the service's result cache sound.
//   - Anytime behavior: Explore must poll ctx at least once per
//     scheduling pass (Search.Evaluate does this internally) and return
//     promptly — never an error — when it fires; the best design found
//     so far survives on the incumbent board.
//   - Incumbents: every strictly-better design must be reported through
//     Search.Publish, which is also what makes it the run's result.
//     Publish never feeds back into the engine's trajectory.
//
// Explore returns an error only when the engine cannot run at all (for
// example a portfolio with no racers); an interrupted or fruitless
// exploration is a normal return.
type Engine interface {
	// Name is the engine's canonical lower-case identifier, used in
	// flag values, the service wire format and metrics.
	Name() string
	// Explore searches from the Search's current working point.
	Explore(ctx context.Context, s *Search) error
}

// board is the incumbent channel shared by every Search of one
// optimization run: it keeps the run-global best so the observer
// stream stays monotone across portfolio racers, serializes observer
// callbacks, and propagates the stop-when-schedulable signal between
// racers.
type board struct {
	start time.Time
	onImp func(Improvement)
	// rec mirrors the run's flight recorder (nil when disabled):
	// run-global incumbent improvements are recorded from the same
	// monotone gate that fires the observer.
	rec *flightRecorder

	mu sync.Mutex
	// best is the best cost any handle has published; the observer only
	// sees strict improvements on it, so the event stream (and the
	// service's SSE relay) is monotone even while racers with private
	// incumbents publish concurrently.
	best    Cost
	hasBest bool
	// schedHooks are fired — all of them, once — when any racer
	// publishes a schedulable incumbent and the run wants to stop at
	// the first schedulable design. Every running portfolio registers
	// its race-cancel here (nested races each keep their own entry),
	// so this is the only cross-racer feedback: it ends races early,
	// it never steers a racer's trajectory.
	schedHooks  map[int]func()
	hookSeq     int
	stopOnSched bool
}

// publish reports one incumbent: the observer fires only when the cost
// improves the run-global best (keeping the stream monotone), while
// the first-schedulable hooks fire regardless of the monotone gate.
// Serialized so portfolio racers can publish concurrently. The design
// is cloned into the Improvement only when the observer actually fires,
// so the observer owns its snapshot and non-improving publishes stay
// allocation-free.
func (b *board) publish(phase string, iter int, d policy.Assignment, c Cost) {
	b.mu.Lock()
	var hooks []func()
	if b.stopOnSched && c.Schedulable() && len(b.schedHooks) > 0 {
		ids := make([]int, 0, len(b.schedHooks))
		for id := range b.schedHooks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			hooks = append(hooks, b.schedHooks[id])
		}
		b.schedHooks = nil
	}
	if !b.hasBest || c.Less(b.best) {
		b.best, b.hasBest = c, true
		b.rec.record(costEvent(SearchEvent{Kind: EventIncumbent,
			Phase: phase, Iteration: iter}, c))
		if b.onImp != nil {
			b.onImp(Improvement{
				Phase:       phase,
				Iteration:   iter,
				Cost:        c,
				Design:      d.Clone(),
				Schedulable: c.Schedulable(),
				Elapsed:     wallElapsed(b.start),
			})
		}
	}
	b.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// addSchedHook registers one first-schedulable hook and returns its
// deregistration func (a no-op once the hooks have fired).
func (b *board) addSchedHook(fn func()) (remove func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.schedHooks == nil {
		b.schedHooks = make(map[int]func())
	}
	b.hookSeq++
	id := b.hookSeq
	b.schedHooks[id] = fn
	return func() {
		b.mu.Lock()
		delete(b.schedHooks, id)
		b.mu.Unlock()
	}
}

// Search is the handle an Engine explores through. It bundles the
// problem's move neighborhood (Moves), the memoizing parallel evaluator
// (Evaluate, Materialize), the run's incumbent board (Publish, Best)
// and a working point (Current) that pipeline stages hand from one
// engine to the next.
//
// A Search is confined to one goroutine: engines that race (Portfolio)
// give each racer its own handle via Fork. Publishing through forked
// handles is safe concurrently; everything else is not.
type Search struct {
	st    *searchState
	board *board
	label string // phase prefix for portfolio racers ("" at top level)

	iter  int           // this handle's iteration counter (Improvement.Iteration)
	total *atomic.Int64 // run-wide tick count across forks (Result.Iterations)

	// Working point: where the next engine (stage) starts exploring.
	cur     policy.Assignment
	curSch  *sched.Schedule
	curCost Cost

	// Local incumbent: the best design this handle has seen. Racers
	// keep private incumbents so the portfolio winner is selected
	// deterministically after the race, not by publish order.
	bestD   policy.Assignment
	bestSch *sched.Schedule
	bestC   Cost
	hasBest bool
}

// newSearch wraps a constructed searchState for one optimization run.
func newSearch(st *searchState, start time.Time) *Search {
	return &Search{
		st: st,
		board: &board{
			start:       start,
			onImp:       st.opts.OnImprovement,
			rec:         st.rec,
			stopOnSched: st.opts.StopWhenSchedulable,
		},
		total: new(atomic.Int64),
	}
}

// enterPhase / exitPhase record the phase brackets of the flight
// recorder: the driver wraps the top-level engine (and the bus step),
// the pipeline wraps each stage, the portfolio each racer. Phases nest
// and racer phases carry their "r<i>:" label prefix, mirroring the
// progress stream. No-ops when the recorder is disabled.
func (s *Search) enterPhase(name string) {
	s.st.rec.record(SearchEvent{Kind: EventPhaseEnter, Phase: s.label + name})
}

func (s *Search) exitPhase(name string) {
	s.st.rec.record(SearchEvent{Kind: EventPhaseExit, Phase: s.label + name,
		Iteration: int(s.total.Load())})
}

// Options returns the run's configuration.
func (s *Search) Options() Options { return s.st.opts }

// Origins returns the (pre-merge) process IDs of the application in
// sorted order — the index set of every Design.
func (s *Search) Origins() []model.ProcID {
	return append([]model.ProcID(nil), s.st.origins...)
}

// Current is the working point the engine starts from: a design, its
// schedule, and its cost. Pipeline stages reset it to the incumbent
// before each engine runs. The returned design is a private copy the
// engine owns — mutating it cannot corrupt the incumbent.
func (s *Search) Current() (policy.Assignment, *sched.Schedule, Cost) {
	return s.cur.Clone(), s.curSch, s.curCost
}

// Best returns this handle's incumbent. ok is false before the first
// Publish (which the driver issues for the initial design, so engines
// always see an incumbent). The returned design is a private copy —
// like Current, mutating it cannot corrupt the incumbent.
func (s *Search) Best() (d policy.Assignment, sch *sched.Schedule, c Cost, ok bool) {
	if !s.hasBest {
		return nil, nil, Cost{}, false
	}
	return s.bestD.Clone(), s.bestSch, s.bestC, true
}

// Moves generates the legal move neighborhood of a design restricted
// to the given processes (typically a schedule's CriticalPath; pass
// Origins for the full neighborhood).
func (s *Search) Moves(d policy.Assignment, procs []model.ProcID) []Move {
	return s.st.generateMoves(d, procs)
}

// Evaluate costs every move against the base design through the
// memoizing parallel evaluator; results are indexed by move position.
// The winner-by-(cost, index) convention keeps results independent of
// the worker count — see Options.Workers for the determinism contract.
//
// Evaluate returns costs only (MoveEval.Schedule is nil): candidates
// are scheduled into reusable per-worker arenas, so a sweep allocates
// nothing in steady state. Materialize the winning move's schedule with
// Materialize.
func (s *Search) Evaluate(ctx context.Context, base policy.Assignment, moves []Move) []MoveEval {
	return s.st.eval.evalMoves(ctx, base, moves)
}

// Materialize builds the schedule of a move costed by Evaluate. The
// scheduler is deterministic, so the schedule matches the evaluation
// bit for bit; unlike the sweep's scratch schedules it is freshly
// allocated and safe to retain (Publish it, hand it to the next stage).
func (s *Search) Materialize(base policy.Assignment, m Move) (*sched.Schedule, error) {
	return s.st.eval.rebuild(base, m)
}

// Publish proposes a new incumbent. When c improves on the handle's
// best, the design is adopted and reported on the run's incumbent
// board (phase-prefixed for portfolio racers; the observer fires only
// when the run-global best also improves, so the event stream stays
// monotone across racers), and Publish returns true; otherwise the
// proposal is ignored. Publishing never influences any engine's
// trajectory.
func (s *Search) Publish(phase string, d policy.Assignment, sch *sched.Schedule, c Cost) bool {
	if s.hasBest && !c.Less(s.bestC) {
		return false
	}
	// Clone defensively: engines may keep mutating their working design
	// after publishing, and the incumbent must not move with it.
	s.bestD, s.bestSch, s.bestC, s.hasBest = d.Clone(), sch, c, true
	s.board.publish(s.label+phase, s.iter, s.bestD, c)
	return true
}

// Tick counts one engine iteration for progress reporting and the
// run's Result.Iterations, returning the handle's iteration number.
func (s *Search) Tick() int {
	s.iter++
	s.total.Add(1)
	return s.iter
}

// ShouldStop reports whether the run wants to end because a schedulable
// design was found and Options.StopWhenSchedulable is set. Engines
// should check it after every improvement; the pipeline driver checks
// it between stages.
func (s *Search) ShouldStop() bool {
	return s.st.opts.StopWhenSchedulable && s.hasBest && s.bestC.Schedulable()
}

// startFromBest resets the working point to the incumbent; the pipeline
// driver calls it before each stage.
func (s *Search) startFromBest() {
	if s.hasBest {
		s.cur, s.curSch, s.curCost = s.bestD, s.bestSch, s.bestC
	}
}

// Fork derives an independent handle for one portfolio racer: a private
// scheduling context and memo cache (so racers never contend), a
// private incumbent seeded from the parent's, and the shared incumbent
// board. label prefixes the racer's phases in progress events; workers,
// when positive, overrides the racer's move-evaluation parallelism so
// the portfolio can split the machine between racers.
func (s *Search) Fork(label string, workers int) (*Search, error) {
	opts := s.st.opts
	if workers > 0 {
		opts.Workers = workers
	}
	st, err := newSearchState(s.st.p, opts)
	if err != nil {
		return nil, err
	}
	// Racers share the run's flight recorder: one trace covers the
	// whole race, with phases attributed through the label prefixes.
	st.rec = s.st.rec
	// Labels nest: a racer inside a nested portfolio streams as e.g.
	// "r1:r0:tabu", so phases stay attributable at any depth.
	f := &Search{st: st, board: s.board, label: s.label + label, total: s.total}
	f.cur, f.curSch, f.curCost = s.cur, s.curSch, s.curCost
	f.bestD, f.bestSch, f.bestC, f.hasBest = s.bestD, s.bestSch, s.bestC, s.hasBest
	return f, nil
}

// adopt installs a racer's deterministically selected winning incumbent
// into this handle without re-publishing it (every improvement was
// already streamed when the racer found it).
func (s *Search) adopt(d policy.Assignment, sch *sched.Schedule, c Cost) {
	if s.hasBest && !c.Less(s.bestC) {
		return
	}
	s.bestD, s.bestSch, s.bestC, s.hasBest = d, sch, c, true
}

// optimizeBus hill-climbs over the TDMA slot order (the final step of
// Figure 6; the paper defers the full treatment to [19]). Adjacent slot
// swaps are evaluated against the incumbent design until no swap
// improves the cost. It runs after the engine because it mutates the
// scheduling context (the bus configuration), which engines share.
func (s *Search) optimizeBus(ctx context.Context) {
	st := s.st
	if !s.hasBest {
		return
	}
	asgn, bestCost := s.bestD, s.bestC
	n := len(st.bus.Slots)
	if n < 2 {
		return
	}
	improved := true
	for improved && !stopped(ctx) {
		improved = false
		// The context is re-checked per swap: each probe is a full
		// scheduling pass, and a round of n−1 swaps would otherwise
		// overshoot a tight time limit by the whole round.
		for i := 0; i+1 < n && !stopped(ctx); i++ {
			perm := make([]int, n)
			for j := range perm {
				perm[j] = j
			}
			perm[i], perm[i+1] = perm[i+1], perm[i]
			saved, savedStatic := st.bus, st.static
			st.bus = st.bus.WithSlotOrder(perm)
			if err := st.rebuildStatic(); err != nil {
				st.bus, st.static = saved, savedStatic
				continue
			}
			sch, c, err := st.evaluate(asgn)
			if err != nil || !c.Less(bestCost) {
				st.bus, st.static = saved, savedStatic
				continue
			}
			bestCost = c
			s.Publish("bus", asgn, sch, c)
			improved = true
		}
	}
}
