package core

import "sync/atomic"

// evalMetrics aggregates process-wide counters of the move-evaluation
// hot path. They are cumulative over every optimization run in the
// process (the evaluator itself is per-run), cheap to maintain (one
// batched atomic add per sweep, one per scratch checkout), and exposed
// through ReadEvaluatorMetrics for the service's expvar page and the
// ftbench harness.
var evalMetrics struct {
	passes        atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	scratchAllocs atomic.Int64
	scratchReuses atomic.Int64
}

// EvaluatorMetrics is a snapshot of the process-wide counters of the
// candidate-move evaluation hot path.
type EvaluatorMetrics struct {
	// SchedulingPasses counts candidate schedules actually built by move
	// sweeps (memo hits and context-skipped moves excluded).
	SchedulingPasses int64 `json:"scheduling_passes"`
	// CacheHits / CacheMisses instrument the per-run memoization of move
	// costs across all runs.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// ScratchAllocs counts evaluation arenas created; ScratchReuses
	// counts checkouts served by the pool without allocating. A healthy
	// hot path reuses orders of magnitude more than it allocates.
	ScratchAllocs int64 `json:"scratch_allocs"`
	ScratchReuses int64 `json:"scratch_reuses"`
}

// ReadEvaluatorMetrics returns the current counter values. Safe for
// concurrent use; counters only grow.
func ReadEvaluatorMetrics() EvaluatorMetrics {
	return EvaluatorMetrics{
		SchedulingPasses: evalMetrics.passes.Load(),
		CacheHits:        evalMetrics.cacheHits.Load(),
		CacheMisses:      evalMetrics.cacheMisses.Load(),
		ScratchAllocs:    evalMetrics.scratchAllocs.Load(),
		ScratchReuses:    evalMetrics.scratchReuses.Load(),
	}
}
