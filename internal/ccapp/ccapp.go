// Package ccapp reconstructs the real-life example of the paper's
// Section 6: a vehicle cruise controller (CC) with 32 processes mapped
// on an architecture of three nodes — the Electronic Throttle Module
// (ETM), the Anti-lock Braking System (ABS) and the Transmission Control
// Module (TCM). The paper references the process graph to Pop's PhD
// thesis [18] without reproducing it; this package rebuilds a CC of the
// same size and style: sensor acquisition → filtering → fusion →
// control law → actuation-preparation → actuation stages, with the
// sensor and actuator processes pinned to their host units.
//
// The paper's setting: deadline 250 ms, k = 2 transient faults per
// cycle, µ = 2 ms.
package ccapp

import (
	"fmt"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
)

// Node indices of the CC architecture.
const (
	ETM = arch.NodeID(0)
	ABS = arch.NodeID(1)
	TCM = arch.NodeID(2)
)

// Paper parameters for the CC experiment.
const (
	Deadline = 250 * model.Millisecond
	K        = 2
	Mu       = 2 * model.Millisecond
	Period   = 500 * model.Millisecond
)

// FaultModel returns the CC fault hypothesis (k=2, µ=2 ms).
func FaultModel() fault.Model { return fault.Model{K: K, Mu: Mu} }

// ccProc describes one process: WCETs on ETM/ABS/TCM in milliseconds
// and an optional pinned node (home < 0 means unpinned).
type ccProc struct {
	name          string
	etm, abs, tcm int64
	home          arch.NodeID
	inputs        []string
	msgBytes      int
}

const unpinned = arch.NodeID(-1)

// ccProcs is the 32-process cruise controller. Message sizes are 1–2
// bytes (sensor words and commands).
var ccProcs = []ccProc{
	// Acquisition (7): sensors pinned to their host units.
	{name: "ReadSpeedFL", etm: 6, abs: 4, tcm: 6, home: ABS},
	{name: "ReadSpeedFR", etm: 6, abs: 4, tcm: 6, home: ABS},
	{name: "ReadThrottlePos", etm: 4, abs: 6, tcm: 6, home: ETM},
	{name: "ReadButtons", etm: 6, abs: 6, tcm: 4, home: TCM},
	{name: "ReadBrakePedal", etm: 6, abs: 4, tcm: 6, home: ABS},
	{name: "ReadGear", etm: 6, abs: 6, tcm: 4, home: TCM},
	{name: "ReadEngineRPM", etm: 4, abs: 6, tcm: 5, home: ETM},

	// Filtering / validation (6).
	{name: "FilterSpeedFL", etm: 7, abs: 6, tcm: 7, home: unpinned, inputs: []string{"ReadSpeedFL"}, msgBytes: 2},
	{name: "FilterSpeedFR", etm: 7, abs: 6, tcm: 7, home: unpinned, inputs: []string{"ReadSpeedFR"}, msgBytes: 2},
	{name: "FilterThrottle", etm: 6, abs: 7, tcm: 7, home: unpinned, inputs: []string{"ReadThrottlePos"}, msgBytes: 2},
	{name: "DebounceButtons", etm: 6, abs: 6, tcm: 5, home: unpinned, inputs: []string{"ReadButtons"}, msgBytes: 1},
	{name: "ValidateBrake", etm: 6, abs: 5, tcm: 6, home: unpinned, inputs: []string{"ReadBrakePedal"}, msgBytes: 1},
	{name: "ValidateGear", etm: 6, abs: 6, tcm: 5, home: unpinned, inputs: []string{"ReadGear"}, msgBytes: 1},

	// Fusion (4): moderately heavy state estimation.
	{name: "VehicleSpeed", etm: 14, abs: 13, tcm: 14, home: unpinned, inputs: []string{"FilterSpeedFL", "FilterSpeedFR"}, msgBytes: 2},
	{name: "ModeLogic", etm: 10, abs: 10, tcm: 9, home: unpinned, inputs: []string{"DebounceButtons", "ValidateBrake", "ValidateGear"}, msgBytes: 1},
	{name: "TargetSpeed", etm: 10, abs: 10, tcm: 10, home: unpinned, inputs: []string{"ModeLogic", "VehicleSpeed"}, msgBytes: 2},
	{name: "Plausibility", etm: 10, abs: 10, tcm: 10, home: unpinned, inputs: []string{"VehicleSpeed", "FilterThrottle"}, msgBytes: 1},

	// Control law (5): the heavy tail of the pipeline.
	{name: "SpeedError", etm: 8, abs: 8, tcm: 8, home: unpinned, inputs: []string{"TargetSpeed", "VehicleSpeed"}, msgBytes: 2},
	{name: "PIDControl", etm: 26, abs: 28, tcm: 28, home: unpinned, inputs: []string{"SpeedError"}, msgBytes: 2},
	{name: "GainSchedule", etm: 16, abs: 17, tcm: 16, home: unpinned, inputs: []string{"PIDControl", "ReadEngineRPM"}, msgBytes: 2},
	{name: "TorqueLimit", etm: 14, abs: 15, tcm: 15, home: unpinned, inputs: []string{"GainSchedule", "Plausibility"}, msgBytes: 2},
	{name: "FaultMonitor", etm: 9, abs: 9, tcm: 9, home: unpinned, inputs: []string{"Plausibility", "ModeLogic"}, msgBytes: 1},

	// Actuation preparation (5).
	{name: "ThrottleSetpoint", etm: 12, abs: 13, tcm: 13, home: unpinned, inputs: []string{"TorqueLimit"}, msgBytes: 2},
	{name: "ThrottleRamp", etm: 14, abs: 15, tcm: 15, home: unpinned, inputs: []string{"ThrottleSetpoint", "FaultMonitor"}, msgBytes: 2},
	{name: "GearHint", etm: 9, abs: 9, tcm: 8, home: unpinned, inputs: []string{"GainSchedule"}, msgBytes: 1},
	{name: "ShiftSchedule", etm: 11, abs: 11, tcm: 10, home: unpinned, inputs: []string{"GearHint", "ValidateGear"}, msgBytes: 1},
	{name: "DisplayData", etm: 6, abs: 6, tcm: 6, home: unpinned, inputs: []string{"ModeLogic", "VehicleSpeed"}, msgBytes: 2},

	// Actuation / outputs (5): actuators pinned.
	{name: "ActuateThrottle", etm: 11, abs: 13, tcm: 13, home: ETM, inputs: []string{"ThrottleRamp"}, msgBytes: 2},
	{name: "ActuateShift", etm: 11, abs: 11, tcm: 9, home: TCM, inputs: []string{"ShiftSchedule"}, msgBytes: 1},
	{name: "UpdateDisplay", etm: 6, abs: 6, tcm: 5, home: TCM, inputs: []string{"DisplayData"}, msgBytes: 2},
	{name: "LogDiagnostics", etm: 6, abs: 6, tcm: 6, home: unpinned, inputs: []string{"FaultMonitor"}, msgBytes: 1},
	{name: "WatchdogKick", etm: 4, abs: 4, tcm: 4, home: unpinned, inputs: []string{"ModeLogic"}, msgBytes: 1},
}

// New builds the cruise-controller design problem.
func New() core.Problem {
	app := model.NewApplication("cruise-controller")
	g := app.AddGraph("CC", Period, Deadline)
	a := arch.NewNamed("ETM", "ABS", "TCM")
	w := arch.NewWCET()
	fixed := make(map[model.ProcID]arch.NodeID)

	byName := make(map[string]*model.Process, len(ccProcs))
	for _, cp := range ccProcs {
		p := app.AddProcess(g, cp.name)
		byName[cp.name] = p
		w.Set(p.ID, ETM, model.Ms(cp.etm))
		w.Set(p.ID, ABS, model.Ms(cp.abs))
		w.Set(p.ID, TCM, model.Ms(cp.tcm))
		if cp.home != unpinned {
			fixed[p.ID] = cp.home
		}
	}
	for _, cp := range ccProcs {
		for _, in := range cp.inputs {
			src, ok := byName[in]
			if !ok {
				panic(fmt.Sprintf("ccapp: unknown input %q of %q", in, cp.name))
			}
			bytes := cp.msgBytes
			if bytes <= 0 {
				bytes = 1
			}
			g.AddEdge(src, byName[cp.name], bytes)
		}
	}
	return core.Problem{
		App:          app,
		Arch:         a,
		WCET:         w,
		Faults:       FaultModel(),
		FixedMapping: fixed,
	}
}
