package ccapp

import (
	"testing"

	"repro/ftdse/internal/core"
)

func TestCCStructure(t *testing.T) {
	p := New()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.App.NumProcesses(); got != 32 {
		t.Fatalf("CC has %d processes, want 32 (paper)", got)
	}
	if p.Arch.NumNodes() != 3 {
		t.Fatalf("CC architecture has %d nodes, want 3", p.Arch.NumNodes())
	}
	names := map[string]bool{"ETM": false, "ABS": false, "TCM": false}
	for _, n := range p.Arch.Nodes() {
		names[n.Name] = true
	}
	for n, ok := range names {
		if !ok {
			t.Errorf("missing node %s", n)
		}
	}
	if p.Faults.K != 2 || p.Faults.Mu != Mu {
		t.Errorf("fault model %v, want k=2 µ=2ms", p.Faults)
	}
	g := p.App.Graphs()[0]
	if g.Deadline != Deadline {
		t.Errorf("deadline %v, want 250ms", g.Deadline)
	}
	if _, err := g.TopologicalOrder(); err != nil {
		t.Fatalf("CC graph not acyclic: %v", err)
	}
	// Sensors and actuators are pinned to their home units.
	if len(p.FixedMapping) != 10 {
		t.Errorf("%d pinned processes, want 10", len(p.FixedMapping))
	}
}

// TestCCExperiment reproduces the qualitative result of the paper's CC
// evaluation: MXR finds a schedulable fault-tolerant implementation
// within the 250 ms deadline, while the single-policy approaches MX and
// MR miss it.
func TestCCExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CC optimization runs several seconds")
	}
	p := New()
	run := func(s core.Strategy) *core.Result {
		t.Helper()
		opts := core.DefaultOptions(s)
		// The mixed-policy search needs a real budget to find the
		// combined solution (the paper gave every instance minutes to
		// hours; ~15s suffices here).
		opts.MaxIterations = 1500
		res, err := core.Optimize(p, opts)
		if err != nil {
			t.Fatalf("Optimize(%v): %v", s, err)
		}
		return res
	}
	nftP := p
	nftP.Faults.K = 0
	nft := run(core.NFT)
	mxr := run(core.MXR)
	mx := run(core.MX)
	mr := run(core.MR)

	t.Logf("NFT: %v", nft.Cost)
	t.Logf("MXR: %v", mxr.Cost)
	t.Logf("MX:  %v", mx.Cost)
	t.Logf("MR:  %v", mr.Cost)

	if !nft.Cost.Schedulable() {
		t.Errorf("NFT must trivially meet the deadline, got %v", nft.Cost)
	}
	if !mxr.Cost.Schedulable() {
		t.Errorf("MXR should meet the 250ms deadline (paper: 229ms), got %v", mxr.Cost)
	}
	if mx.Cost.Schedulable() {
		t.Errorf("MX should miss the 250ms deadline (paper: 253ms), got %v", mx.Cost)
	}
	if mr.Cost.Schedulable() {
		t.Errorf("MR should miss the 250ms deadline (paper: 301ms), got %v", mr.Cost)
	}
	if !(mxr.Cost.Makespan < mx.Cost.Makespan) {
		t.Errorf("MXR (%v) should beat MX (%v)", mxr.Cost.Makespan, mx.Cost.Makespan)
	}
	if !(mx.Cost.Makespan < mr.Cost.Makespan) {
		t.Errorf("MX (%v) should beat MR (%v)", mx.Cost.Makespan, mr.Cost.Makespan)
	}
}
