// Package gantt renders synthesized schedules as ASCII charts and
// schedule tables, for the CLI tools and the examples.
package gantt

import (
	"fmt"
	"sort"
	"strings"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/sched"
)

// Render draws the fault-free (nominal) schedule of every node plus the
// bus MEDL as an ASCII Gantt chart of the given width (minimum 40
// columns). The horizon is the worst-case schedule length, so the
// re-execution slack after the nominal schedule is visible as empty
// space.
func Render(s *sched.Schedule, width int) string {
	if width < 40 {
		width = 40
	}
	horizon := s.Makespan
	if h := s.Bus().Horizon(); h > horizon {
		horizon = h
	}
	if horizon <= 0 {
		return "(empty schedule)\n"
	}
	labelW := 5
	for _, n := range s.In.Arch.Nodes() {
		if len(n.Name) > labelW {
			labelW = len(n.Name)
		}
	}
	chartW := width - labelW - 2
	scale := func(t model.Time) int {
		c := int(int64(t) * int64(chartW) / int64(horizon))
		if c >= chartW {
			c = chartW - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	var b strings.Builder
	// Ruler.
	fmt.Fprintf(&b, "%*s  ", labelW, "")
	ruler := make([]byte, chartW)
	for i := range ruler {
		ruler[i] = ' '
	}
	for t := model.Time(0); t <= horizon; t += horizon / 4 {
		pos := scale(t)
		lbl := t.String()
		for i := 0; i < len(lbl) && pos+i < chartW; i++ {
			ruler[pos+i] = lbl[i]
		}
		if horizon/4 == 0 {
			break
		}
	}
	b.Write(ruler)
	b.WriteByte('\n')

	for _, n := range s.In.Arch.Nodes() {
		row := make([]byte, chartW)
		for i := range row {
			row[i] = '.'
		}
		for _, it := range s.NodeSequence(n.ID) {
			from, to := scale(it.NominalStart), scale(it.NominalFinish)
			if to <= from {
				to = from + 1
			}
			name := it.Inst.Name()
			for i := from; i < to && i < chartW; i++ {
				off := i - from
				switch {
				case off == 0:
					row[i] = '|'
				case off-1 < len(name):
					row[i] = name[off-1]
				default:
					row[i] = '='
				}
			}
		}
		fmt.Fprintf(&b, "%*s  %s\n", labelW, n.Name, row)
	}

	// Bus row.
	row := make([]byte, chartW)
	for i := range row {
		row[i] = '.'
	}
	for _, tr := range s.MEDL() {
		from, to := scale(tr.Start), scale(tr.Arrival)
		if to <= from {
			to = from + 1
		}
		for i := from; i < to && i < chartW; i++ {
			if i == from {
				row[i] = '|'
			} else {
				row[i] = 'm'
			}
		}
	}
	fmt.Fprintf(&b, "%*s  %s\n", labelW, "bus", row)
	return b.String()
}

// Table prints the synthesized schedule tables: per node the ordered
// process activations with nominal window and worst-case completion,
// and the MEDL of the bus.
func Table(s *sched.Schedule) string {
	var b strings.Builder
	for _, n := range s.In.Arch.Nodes() {
		fmt.Fprintf(&b, "node %s:\n", n.Name)
		seq := s.NodeSequence(n.ID)
		if len(seq) == 0 {
			b.WriteString("  (idle)\n")
			continue
		}
		for _, it := range seq {
			fmt.Fprintf(&b, "  %-18s start %8s  end %8s  worst-case %8s\n",
				it.Inst.Name(), it.NominalStart, it.NominalFinish, it.WCFinish)
		}
	}
	medl := s.MEDL()
	fmt.Fprintf(&b, "bus MEDL (%d transmissions):\n", len(medl))
	for _, tr := range medl {
		fmt.Fprintf(&b, "  %-22s round %3d slot %d  [%8s, %8s)\n",
			tr.Label, tr.Round, tr.Slot, tr.Start, tr.Arrival)
	}
	return b.String()
}

// Summary prints the per-process worst-case completions against their
// deadlines, ordered by completion time.
func Summary(s *sched.Schedule) string {
	type row struct {
		name     string
		done     model.Time
		deadline model.Time
	}
	var rows []row
	for _, p := range s.In.Graph.Processes() {
		rows = append(rows, row{p.Name, s.ProcCompletion(p.ID), p.Deadline})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].done != rows[j].done {
			return rows[i].done < rows[j].done
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	for _, r := range rows {
		mark := ""
		if r.deadline > 0 && r.done > r.deadline {
			mark = "  MISSED (deadline " + r.deadline.String() + ")"
		}
		fmt.Fprintf(&b, "  %-18s completes by %8s%s\n", r.name, r.done, mark)
	}
	fmt.Fprintf(&b, "worst-case schedule length δ = %s", s.Makespan)
	if s.Schedulable() {
		b.WriteString("  (all deadlines met)\n")
	} else {
		fmt.Fprintf(&b, "  (UNSCHEDULABLE, tardiness %s)\n", s.Tardiness)
	}
	return b.String()
}
