package gantt

import (
	"strings"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

func buildSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	app := model.NewApplication("g")
	g := app.AddGraph("G", model.Ms(1000), model.Ms(300))
	p1 := app.AddProcess(g, "P1")
	p2 := app.AddProcess(g, "P2")
	g.AddEdge(p1, p2, 4)
	a := arch.New(2)
	w := arch.NewWCET()
	for n := arch.NodeID(0); n < 2; n++ {
		w.Set(p1.ID, n, model.Ms(40))
		w.Set(p2.ID, n, model.Ms(30))
	}
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Build(sched.Input{
		Graph:  merged,
		Arch:   a,
		WCET:   w,
		Faults: fault.Model{K: 1, Mu: model.Ms(10)},
		Assignment: policy.Assignment{
			p1.ID: policy.Reexecution(0, 1),
			p2.ID: policy.Reexecution(1, 1),
		},
		Bus:     ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options: sched.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRender(t *testing.T) {
	s := buildSchedule(t)
	out := Render(s, 80)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Ruler + 2 nodes + bus.
	if len(lines) != 4 {
		t.Fatalf("render has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "N1") || !strings.Contains(lines[2], "N2") {
		t.Errorf("missing node labels:\n%s", out)
	}
	if !strings.Contains(lines[3], "m") {
		t.Errorf("bus row missing transmission:\n%s", out)
	}
	// Narrow widths are clamped, not crashed.
	if small := Render(s, 1); small == "" {
		t.Error("narrow render empty")
	}
}

func TestTable(t *testing.T) {
	s := buildSchedule(t)
	out := Table(s)
	for _, want := range []string{"node N1", "node N2", "P1", "P2", "bus MEDL", "round"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	s := buildSchedule(t)
	out := Summary(s)
	if !strings.Contains(out, "P2") || !strings.Contains(out, "schedule length") {
		t.Errorf("summary: %s", out)
	}
	if !strings.Contains(out, "all deadlines met") {
		t.Errorf("summary should report schedulability: %s", out)
	}
}
