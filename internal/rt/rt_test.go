package rt

import (
	"math/rand"
	"sort"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/sim"
	"repro/ftdse/internal/ttp"
)

// randomSystem mirrors the sim test helper.
func randomSystem(rng *rand.Rand, nProcs, nNodes, k int) sched.Input {
	app := model.NewApplication("rand")
	g := app.AddGraph("G", model.Ms(100000), model.Ms(100000))
	procs := make([]*model.Process, nProcs)
	for i := range procs {
		procs[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < nProcs; i++ {
		for j := i + 1; j < nProcs; j++ {
			if rng.Intn(3) == 0 {
				g.AddEdge(procs[i], procs[j], 1+rng.Intn(4))
			}
		}
	}
	a := arch.New(nNodes)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < nNodes; n++ {
			w.Set(p.ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(91))))
		}
	}
	asgn := policy.Assignment{}
	for _, p := range procs {
		rmax := k + 1
		if nNodes < rmax {
			rmax = nNodes
		}
		r := 1 + rng.Intn(rmax)
		perm := rng.Perm(nNodes)[:r]
		nodes := make([]arch.NodeID, r)
		for i, n := range perm {
			nodes[i] = arch.NodeID(n)
		}
		pol := policy.Distribute(nodes, k)
		if r == 1 && rng.Intn(2) == 0 {
			pol.Replicas[0].Checkpoints = rng.Intn(3)
		}
		asgn[p.ID] = pol
	}
	merged, err := app.Merge()
	if err != nil {
		panic(err)
	}
	return sched.Input{
		Graph:      merged,
		Arch:       a,
		WCET:       w,
		Faults:     fault.Model{K: k, Mu: model.Ms(5), Chi: model.Ms(1)},
		Assignment: asgn,
		Bus:        ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options:    sched.DefaultOptions(),
	}
}

// agree compares the two simulators' results field by field, failing
// the test on any difference.
func agree(t *testing.T, s *sched.Schedule, sc sim.Scenario) bool {
	t.Helper()
	a := sim.Run(s, sc)
	b := Run(s, sc)
	ok := true
	defer func() {
		if !ok {
			t.Errorf("simulators disagree on scenario %v", sc)
		}
	}()
	for _, it := range s.Items() {
		id := it.Inst.ID
		if a.Alive[id] != b.Alive[id] {
			t.Logf("scenario %v: %v alive %v (sim) vs %v (rt)", sc, it.Inst, a.Alive[id], b.Alive[id])
			ok = false
		}
		if a.Alive[id] && a.Finish[id] != b.Finish[id] {
			t.Logf("scenario %v: %v finish %v (sim) vs %v (rt)", sc, it.Inst, a.Finish[id], b.Finish[id])
			ok = false
		}
	}
	for id, done := range a.ProcDone {
		if b.ProcDone[id] != done {
			t.Logf("scenario %v: proc %d done %v (sim) vs %v (rt)", sc, id, done, b.ProcDone[id])
			ok = false
		}
	}
	if a.Makespan != b.Makespan {
		t.Logf("scenario %v: makespan %v (sim) vs %v (rt)", sc, a.Makespan, b.Makespan)
		ok = false
	}
	if a.OK() != b.OK() {
		t.Logf("scenario %v: OK %v (sim: %v) vs %v (rt: %v)", sc, a.OK(), a.Violations, b.OK(), b.Violations)
		ok = false
	}
	if !ok {
		return false
	}
	// Violations must agree as sets (ordering may differ).
	av := append([]string(nil), a.Violations...)
	bv := append([]string(nil), b.Violations...)
	sort.Strings(av)
	sort.Strings(bv)
	if len(av) != len(bv) {
		t.Logf("scenario %v: %d violations (sim) vs %d (rt)", sc, len(av), len(bv))
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Logf("scenario %v: violation %q vs %q", sc, av[i], bv[i])
			return false
		}
	}
	return true
}

// TestCrossValidation runs the event-driven runtime against the
// dependency-ordered simulator on randomized systems over every fault
// scenario of the hypothesis (or samples when too many): the two
// implementations must agree exactly on every field.
func TestCrossValidation(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomSystem(rng, 3+rng.Intn(7), 2+rng.Intn(2), 1+rng.Intn(2))
		s, err := sched.Build(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checked := 0
		if sim.ScenarioCount(s) <= 3000 {
			sim.ForEachScenario(s, func(sc sim.Scenario) bool {
				checked++
				return agree(t, s, sc)
			})
		} else {
			for _, sc := range sim.AdversarialScenarios(s) {
				checked++
				if !agree(t, s, sc) {
					break
				}
			}
			for i := 0; i < 150; i++ {
				checked++
				if !agree(t, s, sim.RandomScenario(rng, s)) {
					break
				}
			}
		}
		_ = checked
	}
}

// TestFigure7EventDriven replays the Figure 7 contingency scenario in
// the event-driven runtime.
func TestFigure7EventDriven(t *testing.T) {
	app := model.NewApplication("fig7")
	g := app.AddGraph("G", model.Ms(1000), model.Ms(1000))
	p1 := app.AddProcess(g, "P1")
	p2 := app.AddProcess(g, "P2")
	p3 := app.AddProcess(g, "P3")
	g.AddEdge(p1, p2, 4)
	g.AddEdge(p2, p3, 4)
	a := arch.New(2)
	w := arch.NewWCET()
	for n := arch.NodeID(0); n < 2; n++ {
		w.Set(p1.ID, n, model.Ms(40))
		w.Set(p2.ID, n, model.Ms(80))
		w.Set(p3.ID, n, model.Ms(50))
	}
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Build(sched.Input{
		Graph: merged, Arch: a, WCET: w,
		Faults: fault.Model{K: 1, Mu: model.Ms(10)},
		Assignment: policy.Assignment{
			p1.ID: policy.Reexecution(0, 1),
			p2.ID: policy.Replication(0, 1),
			p3.ID: policy.Reexecution(0, 1),
		},
		Bus:     ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options: sched.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var p2OnN1 policy.InstID = -1
	for _, inst := range s.Ex.Instances {
		if inst.Proc.Origin == p2.ID && inst.Node == 0 {
			p2OnN1 = inst.ID
		}
	}
	r := Run(s, sim.Scenario{p2OnN1: 1})
	if !r.OK() {
		t.Fatalf("violations: %v", r.Violations)
	}
	mergedP3 := merged.Processes()[2].ID
	if r.ProcDone[mergedP3] != model.Ms(250) {
		t.Errorf("P3 completion = %v, want 250ms (contingency via event-driven kernel)", r.ProcDone[mergedP3])
	}
}
