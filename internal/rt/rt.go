// Package rt is a discrete-event implementation of the runtime described
// in the paper's Section 2.2: a real-time kernel per node dispatching
// processes from the static schedule table, and TTP controllers
// transmitting frames in their MEDL slots. It executes a synthesized
// schedule under a concrete fault scenario with an event queue over the
// global TDMA time line.
//
// The package deliberately duplicates the semantics of package sim with
// a completely different mechanism (event-driven kernels and controllers
// instead of a dependency-ordered sweep): the two implementations are
// cross-validated against each other in the tests, which protects the
// load-bearing runtime rules — contingency delaying, first-valid replica
// inputs, frame validity at slot start — against implementation bugs in
// either simulator.
package rt

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/sim"
)

// Result mirrors sim.Result for cross-validation.
type Result struct {
	Finish     map[policy.InstID]model.Time
	Alive      map[policy.InstID]bool
	ProcDone   map[model.ProcID]model.Time
	Violations []string
	Makespan   model.Time
}

// OK reports whether the cycle completed without violations.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// event is one entry of the global event queue. Same-instant events are
// ordered by phase so the runtime matches the reference simulator's
// semantics exactly: instance completions commit first, then the TTP
// controllers build their frames (a sender finishing exactly at the slot
// start still makes the frame), then payloads are delivered, then the
// kernels re-evaluate dispatching.
type event struct {
	at    model.Time
	phase int
	seq   int // deterministic tie-breaking
	fn    func()
}

// event phases at one instant.
const (
	phaseComplete = iota
	phaseFrame
	phaseDeliver
	phaseDispatch
)

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].phase != h[j].phase {
		return h[i].phase < h[j].phase
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// delivery tracks one potential input source of (instance, edge).
type delivery struct {
	valid    bool
	resolved bool // true once known valid or known dead/invalid
	at       model.Time
}

// engine executes one cycle.
type engine struct {
	s  *sched.Schedule
	sc sim.Scenario

	pq  eventHeap
	seq int
	now model.Time

	// kernel state per node
	head     map[arch.NodeID]int // next position in the node table
	nodeFree map[arch.NodeID]model.Time
	running  map[arch.NodeID]bool

	// instance state
	finish map[policy.InstID]model.Time
	alive  map[policy.InstID]bool
	done   map[policy.InstID]bool

	// input bookkeeping: per (receiver instance, edge index, source
	// instance) one delivery record.
	inputs map[policy.InstID]map[int]map[policy.InstID]*delivery

	edgeIdx map[[2]model.ProcID]int

	res *Result
}

// Run executes the schedule under the scenario with the event-driven
// kernel/controller machinery.
func Run(s *sched.Schedule, sc sim.Scenario) *Result {
	e := &engine{
		s:        s,
		sc:       sc,
		head:     make(map[arch.NodeID]int),
		nodeFree: make(map[arch.NodeID]model.Time),
		running:  make(map[arch.NodeID]bool),
		finish:   make(map[policy.InstID]model.Time),
		alive:    make(map[policy.InstID]bool),
		done:     make(map[policy.InstID]bool),
		inputs:   make(map[policy.InstID]map[int]map[policy.InstID]*delivery),
		edgeIdx:  make(map[[2]model.ProcID]int),
		res: &Result{
			Finish:   make(map[policy.InstID]model.Time),
			Alive:    make(map[policy.InstID]bool),
			ProcDone: make(map[model.ProcID]model.Time),
		},
	}
	for i, ed := range s.In.Graph.Edges() {
		e.edgeIdx[[2]model.ProcID{ed.Src, ed.Dst}] = i
	}
	e.setupInputs()
	e.scheduleTransmissions()

	// Kick every kernel at time zero and at each instance's table time.
	for _, n := range s.In.Arch.Nodes() {
		node := n.ID
		e.post(0, phaseDispatch, func() { e.tryDispatch(node) })
		for _, it := range s.NodeSequence(node) {
			at := it.NominalStart
			e.post(at, phaseDispatch, func() { e.tryDispatch(node) })
		}
	}
	e.drain()
	e.finalize()
	return e.res
}

// setupInputs builds the delivery matrix: for every instance, per
// incoming edge, one record per source (the local replica of the
// predecessor, and each remote replica's broadcast).
func (e *engine) setupInputs() {
	g := e.s.In.Graph
	for _, it := range e.s.Items() {
		recv := it.Inst
		m := make(map[int]map[policy.InstID]*delivery)
		for _, ed := range g.Predecessors(recv.Proc.ID) {
			idx := e.edgeIdx[[2]model.ProcID{ed.Src, ed.Dst}]
			srcs := make(map[policy.InstID]*delivery)
			for _, src := range e.s.Ex.Of(ed.Src) {
				if src.Node == recv.Node {
					srcs[src.ID] = &delivery{}
					continue
				}
				if _, ok := e.s.Item(src.ID).Msgs[idx]; ok {
					srcs[src.ID] = &delivery{}
				}
				// Remote replicas without a broadcast cannot deliver
				// here (they only had local receivers elsewhere); they
				// are not potential sources.
			}
			m[idx] = srcs
		}
		e.inputs[recv.ID] = m
	}
}

// scheduleTransmissions posts the TTP controller events: at each slot
// start the frame is built (valid only if the producer has finished),
// and at the slot end the payload reaches every receiver.
func (e *engine) scheduleTransmissions() {
	for _, it := range e.s.Items() {
		sender := it.Inst
		// Post in edge order: event-queue ties break on insertion
		// sequence, so map order here would leak into the trace.
		idxs := make([]int, 0, len(it.Msgs))
		for idx := range it.Msgs {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			idx, tr := idx, it.Msgs[idx]
			e.post(tr.Start, phaseFrame, func() {
				valid := e.done[sender.ID] && e.alive[sender.ID] && e.finish[sender.ID] <= e.now
				at := tr.Arrival
				e.post(at, phaseDeliver, func() { e.deliver(idx, sender.ID, valid, at) })
			})
		}
	}
}

// deliver resolves the (edge, source) record of every REMOTE receiver
// of the broadcast and re-triggers the kernels. Same-node receivers
// consume the sender's local output (resolved at its completion), never
// the bus frame — their records must not be touched here.
func (e *engine) deliver(edgeIdx int, src policy.InstID, valid bool, at model.Time) {
	edge := e.s.In.Graph.Edges()[edgeIdx]
	senderNode := e.s.Item(src).Inst.Node
	for _, recv := range e.s.Ex.Of(edge.Dst) {
		if recv.Node == senderNode {
			continue
		}
		srcs := e.inputs[recv.ID][edgeIdx]
		d, ok := srcs[src]
		if !ok || d.resolved {
			continue
		}
		d.resolved = true
		d.valid = valid
		d.at = at
		e.post(at, phaseDispatch, func() { e.tryDispatch(recv.Node) })
	}
}

// resolveLocal marks the local-output record of a completed (or dead)
// instance for its same-node receivers.
func (e *engine) resolveLocal(src *policy.Instance, valid bool, at model.Time) {
	g := e.s.In.Graph
	for _, ed := range g.Successors(src.Proc.ID) {
		idx := e.edgeIdx[[2]model.ProcID{ed.Src, ed.Dst}]
		for _, recv := range e.s.Ex.Of(ed.Dst) {
			if recv.Node != src.Node {
				continue
			}
			d, ok := e.inputs[recv.ID][idx][src.ID]
			if !ok || d.resolved {
				continue
			}
			d.resolved = true
			d.valid = valid
			d.at = at
		}
	}
}

// inputState classifies the head instance's inputs: ready when every
// edge has a valid delivery (returning the latest first-valid time),
// starved when some edge can never deliver, waiting otherwise.
type inputState int

const (
	inputsReady inputState = iota
	inputsWaiting
	inputsStarved
)

func (e *engine) inputStatus(inst *policy.Instance) (inputState, model.Time) {
	ready := inst.Proc.Release
	// Classify edges in index order: an instance with one waiting and
	// one starved edge must report the same state on every run.
	edges := make([]int, 0, len(e.inputs[inst.ID]))
	for idx := range e.inputs[inst.ID] {
		edges = append(edges, idx)
	}
	sort.Ints(edges)
	for _, idx := range edges {
		srcs := e.inputs[inst.ID][idx]
		firstValid := model.Infinity
		pending := false
		for _, d := range srcs {
			if !d.resolved {
				pending = true
				continue
			}
			if d.valid {
				firstValid = model.MinTime(firstValid, d.at) //ftlint:allow determinism min over a delivery set is commutative
			}
		}
		switch {
		case firstValid < model.Infinity:
			ready = model.MaxTime(ready, firstValid)
		case pending:
			return inputsWaiting, 0
		default:
			return inputsStarved, 0
		}
	}
	return inputsReady, ready
}

// tryDispatch is the kernel loop of one node: while the head instance of
// the table is dispatchable, run it.
func (e *engine) tryDispatch(node arch.NodeID) {
	if e.running[node] {
		return
	}
	seq := e.s.NodeSequence(node)
	for e.head[node] < len(seq) {
		it := seq[e.head[node]]
		inst := it.Inst
		state, ready := e.inputStatus(inst)
		if state == inputsWaiting {
			return
		}
		if state == inputsStarved {
			// The instance can never run in this scenario: it looks
			// dead to everyone downstream; the node moves on.
			e.head[node]++
			e.done[inst.ID] = true
			e.alive[inst.ID] = false
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("instance %s starved: no valid input in this scenario", inst))
			e.resolveLocal(inst, false, e.now)
			continue
		}
		start := model.MaxTime(model.MaxTime(ready, it.NominalStart), e.nodeFree[node])
		if start > e.now {
			e.post(start, phaseDispatch, func() { e.tryDispatch(node) })
			return
		}
		// Dispatch now.
		faults := e.sc[inst.ID]
		exec := inst.ExecTime(e.s.In.Faults.Chi)
		recover := inst.RecoverTime(e.s.In.Faults.Mu)
		e.running[node] = true
		e.head[node]++
		if faults <= inst.Reexec {
			fin := start + exec + model.Time(faults)*recover
			e.post(fin, phaseComplete, func() {
				e.running[node] = false
				e.nodeFree[node] = fin
				e.done[inst.ID] = true
				e.alive[inst.ID] = true
				e.finish[inst.ID] = fin
				e.resolveLocal(inst, true, fin)
				e.tryDispatch(node)
			})
		} else {
			busyUntil := start + exec + model.Time(inst.Reexec)*recover + e.s.In.Faults.Mu
			e.post(busyUntil, phaseComplete, func() {
				e.running[node] = false
				e.nodeFree[node] = busyUntil
				e.done[inst.ID] = true
				e.alive[inst.ID] = false
				e.resolveLocal(inst, false, busyUntil)
				e.tryDispatch(node)
			})
		}
		return
	}
}

func (e *engine) post(at model.Time, phase int, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: at, phase: phase, seq: e.seq, fn: fn})
}

func (e *engine) drain() {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
	}
}

func (e *engine) finalize() {
	for id, fin := range e.finish {
		e.res.Finish[id] = fin
	}
	for _, it := range e.s.Items() {
		e.res.Alive[it.Inst.ID] = e.alive[it.Inst.ID]
	}
	for _, p := range e.s.In.Graph.Processes() {
		first := model.Infinity
		for _, inst := range e.s.Ex.Of(p.ID) {
			if e.alive[inst.ID] {
				first = model.MinTime(first, e.finish[inst.ID])
			}
		}
		if first == model.Infinity {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("process %s: all replicas failed", p))
			continue
		}
		e.res.ProcDone[p.ID] = first
		if first > e.res.Makespan {
			e.res.Makespan = first
		}
		if p.Deadline > 0 && first > p.Deadline {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("process %s finished at %v, deadline %v", p, first, p.Deadline))
		}
	}
}
