package rt

import (
	"math/rand"
	"testing"

	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/sim"
)

func TestDebugMismatch(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomSystem(rng, 3+rng.Intn(7), 2+rng.Intn(2), 1+rng.Intn(2))
		s, err := sched.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		if sim.ScenarioCount(s) > 3000 {
			continue
		}
		sim.ForEachScenario(s, func(sc sim.Scenario) bool {
			a := sim.Run(s, sc)
			b := Run(s, sc)
			if a.Makespan != b.Makespan {
				t.Logf("seed %d scenario %v", seed, sc)
				for _, it := range s.Items() {
					id := it.Inst.ID
					t.Logf("  %-6s node %d pos %d nomStart %v | sim alive=%v fin=%v | rt alive=%v fin=%v",
						it.Inst.Name(), it.Inst.Node, it.NodePos, it.NominalStart,
						a.Alive[id], a.Finish[id], b.Alive[id], b.Finish[id])
					for idx, tr := range it.Msgs {
						t.Logf("      msg e%d %v", idx, tr)
					}
				}
				for _, e := range s.In.Graph.Edges() {
					t.Logf("  edge %v", e)
				}
				return false
			}
			return true
		})
		if t.Failed() {
			return
		}
		_ = s
	}
	t.Log("no mismatch found?!")
}
