package ttp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
)

func twoNodeConfig() (*arch.Architecture, Config) {
	a := arch.New(2)
	cfg := InitialConfig(a, 4, DefaultPerByte) // two 10ms slots
	return a, cfg
}

func TestInitialConfig(t *testing.T) {
	a, cfg := twoNodeConfig()
	if err := cfg.Validate(a); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := cfg.RoundLength(); got != model.Ms(20) {
		t.Errorf("RoundLength = %v, want 20ms", got)
	}
	if cfg.SlotIndex(0) != 0 || cfg.SlotIndex(1) != 1 {
		t.Error("initial config must assign Si = Ni")
	}
	if cfg.SlotIndex(9) != -1 {
		t.Error("SlotIndex of unknown node should be -1")
	}
	if cfg.SlotOffset(1) != model.Ms(10) {
		t.Errorf("SlotOffset(1) = %v, want 10ms", cfg.SlotOffset(1))
	}
	if cfg.SlotCapacity(0) != 4 {
		t.Errorf("SlotCapacity = %d, want 4", cfg.SlotCapacity(0))
	}
}

func TestInitialConfigDefaults(t *testing.T) {
	a := arch.New(1)
	cfg := InitialConfig(a, 0, 0)
	if cfg.PerByte != DefaultPerByte {
		t.Errorf("PerByte = %v, want default", cfg.PerByte)
	}
	if cfg.Slots[0].Length != DefaultPerByte {
		t.Errorf("slot length = %v, want 1 byte worth", cfg.Slots[0].Length)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	a := arch.New(2)
	good := InitialConfig(a, 4, DefaultPerByte)

	bad := good.Clone()
	bad.PerByte = 0
	if err := bad.Validate(a); err == nil {
		t.Error("accepted zero per-byte time")
	}

	bad = good.Clone()
	bad.Slots = bad.Slots[:1]
	if err := bad.Validate(a); err == nil {
		t.Error("accepted missing slot")
	}

	bad = good.Clone()
	bad.Slots[1].Node = 0
	if err := bad.Validate(a); err == nil {
		t.Error("accepted duplicate slot ownership")
	}

	bad = good.Clone()
	bad.Slots[0].Length = 0
	if err := bad.Validate(a); err == nil {
		t.Error("accepted zero-length slot")
	}

	bad = good.Clone()
	bad.Slots[0].Node = 7
	if err := bad.Validate(a); err == nil {
		t.Error("accepted unknown slot owner")
	}
}

func TestReserveBasics(t *testing.T) {
	_, cfg := twoNodeConfig()
	bus := NewBus(cfg)

	// Node 0 owns slot 0 ([0,10) in round 0). A message ready at t=0 goes
	// out in round 0 and arrives at slot end.
	tr, err := bus.Reserve(0, 0, 2, "m1")
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if tr.Round != 0 || tr.Slot != 0 || tr.Start != 0 || tr.Arrival != model.Ms(10) {
		t.Errorf("unexpected transmission %v", tr)
	}

	// Ready just after slot start: must wait for round 1.
	tr, err = bus.Reserve(0, model.Us(1), 2, "m2")
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if tr.Round != 1 || tr.Start != model.Ms(20) {
		t.Errorf("late-ready message should use round 1, got %v", tr)
	}

	// Node 1 owns slot 1 ([10,20) in round 0).
	tr, err = bus.Reserve(1, model.Ms(5), 4, "m3")
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if tr.Round != 0 || tr.Slot != 1 || tr.Start != model.Ms(10) || tr.Arrival != model.Ms(20) {
		t.Errorf("unexpected transmission %v", tr)
	}
}

func TestReserveFramePacking(t *testing.T) {
	_, cfg := twoNodeConfig() // capacity 4 bytes per slot
	bus := NewBus(cfg)
	// Two 2-byte messages fit in the same frame.
	tr1, _ := bus.Reserve(0, 0, 2, "a")
	tr2, _ := bus.Reserve(0, 0, 2, "b")
	if tr1.Round != tr2.Round || tr1.Slot != tr2.Slot {
		t.Errorf("2+2 bytes should share a frame: %v vs %v", tr1, tr2)
	}
	// A third message overflows into the next round.
	tr3, _ := bus.Reserve(0, 0, 1, "c")
	if tr3.Round != tr1.Round+1 {
		t.Errorf("overflow message should use next round, got %v", tr3)
	}
}

func TestReserveTooLarge(t *testing.T) {
	_, cfg := twoNodeConfig()
	bus := NewBus(cfg)
	if _, err := bus.Reserve(0, 0, 5, "huge"); err == nil {
		t.Error("Reserve accepted a message larger than the slot")
	}
	if _, err := bus.Reserve(7, 0, 1, "x"); err == nil {
		t.Error("Reserve accepted a node without slot")
	}
}

func TestReserveNegativeReady(t *testing.T) {
	_, cfg := twoNodeConfig()
	bus := NewBus(cfg)
	tr, err := bus.Reserve(0, -model.Ms(5), 1, "m")
	if err != nil || tr.Start != 0 {
		t.Errorf("negative ready should clamp to 0, got %v err %v", tr, err)
	}
}

func TestMEDLOrderingAndHorizon(t *testing.T) {
	_, cfg := twoNodeConfig()
	bus := NewBus(cfg)
	bus.Reserve(1, model.Ms(15), 1, "late")
	bus.Reserve(0, 0, 1, "early")
	medl := bus.MEDL()
	if len(medl) != 2 {
		t.Fatalf("MEDL has %d entries, want 2", len(medl))
	}
	if medl[0].Label != "early" || medl[1].Label != "late" {
		t.Errorf("MEDL not time ordered: %v", medl)
	}
	if h := bus.Horizon(); h != medl[1].Arrival {
		t.Errorf("Horizon = %v, want %v", h, medl[1].Arrival)
	}
	if NewBus(cfg).Horizon() != 0 {
		t.Error("empty bus should have zero horizon")
	}
}

func TestWithSlotOrder(t *testing.T) {
	a, cfg := twoNodeConfig()
	rev := cfg.WithSlotOrder([]int{1, 0})
	if err := rev.Validate(a); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rev.Slots[0].Node != 1 || rev.Slots[1].Node != 0 {
		t.Errorf("WithSlotOrder did not permute: %v", rev.Slots)
	}
	// original unchanged
	if cfg.Slots[0].Node != 0 {
		t.Error("WithSlotOrder mutated the receiver")
	}
}

func TestWithSlotLength(t *testing.T) {
	a, cfg := twoNodeConfig()
	big := cfg.WithSlotLength(0, model.Ms(20))
	if err := big.Validate(a); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if big.Slots[0].Length != model.Ms(20) || cfg.Slots[0].Length != model.Ms(10) {
		t.Error("WithSlotLength wrong or mutated receiver")
	}
	if big.RoundLength() != model.Ms(30) {
		t.Errorf("RoundLength = %v, want 30ms", big.RoundLength())
	}
}

// Property: a reserved transmission always starts at or after the ready
// time, lies inside a slot owned by the requested node, and frames never
// exceed capacity.
func TestReserveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := arch.New(2 + rng.Intn(4))
		cfg := InitialConfig(a, 4, DefaultPerByte)
		bus := NewBus(cfg)
		used := make(map[[2]int]int)
		for i := 0; i < 50; i++ {
			n := arch.NodeID(rng.Intn(a.NumNodes()))
			ready := model.Time(rng.Int63n(int64(model.Ms(200))))
			bytes := 1 + rng.Intn(4)
			tr, err := bus.Reserve(n, ready, bytes, "m")
			if err != nil {
				return false
			}
			if tr.Start < ready {
				return false
			}
			si := cfg.SlotIndex(n)
			if tr.Slot != si {
				return false
			}
			wantStart := model.Time(tr.Round)*cfg.RoundLength() + cfg.SlotOffset(si)
			if tr.Start != wantStart || tr.Arrival != wantStart+cfg.Slots[si].Length {
				return false
			}
			key := [2]int{tr.Round, tr.Slot}
			used[key] += bytes
			if used[key] > cfg.SlotCapacity(si) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
