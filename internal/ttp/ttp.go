// Package ttp models the time-triggered protocol bus of the paper's
// Section 2.1: a broadcast channel accessed in a TDMA scheme. Each node
// owns exactly one slot per TDMA round; in its slot a node sends one
// frame into which several messages can be packed. Rounds repeat
// cyclically. The message descriptor list (MEDL) assigns every message a
// slot occurrence; it is the schedule table of the TTP controllers.
package ttp

import (
	"fmt"
	"sort"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
)

// DefaultPerByte is the default transmission time for one byte of
// payload. With 2.5 ms/byte a 4-byte slot lasts 10 ms, matching the
// figures of the paper (slots S1, S2 of 10 ms each).
const DefaultPerByte = 2500 * model.Microsecond

// Slot is one TDMA slot, owned by a node, with a fixed length.
type Slot struct {
	Node   arch.NodeID
	Length model.Time
}

// Config is a bus-access configuration: the slot sequence of one TDMA
// round plus the physical byte transmission time. The paper's step 1
// (InitialBusAccess) assigns slots in node order with the minimal
// allowed length, equal to the largest message of the application.
type Config struct {
	Slots   []Slot
	PerByte model.Time
}

// InitialConfig builds the paper's initial bus-access configuration B0:
// slot i belongs to node i (Si = Ni) and every slot length is the
// transmission time of the largest message in the application.
func InitialConfig(a *arch.Architecture, maxMessageBytes int, perByte model.Time) Config {
	if perByte <= 0 {
		perByte = DefaultPerByte
	}
	if maxMessageBytes < 1 {
		maxMessageBytes = 1
	}
	cfg := Config{PerByte: perByte}
	for _, n := range a.Nodes() {
		cfg.Slots = append(cfg.Slots, Slot{Node: n.ID, Length: model.Time(maxMessageBytes) * perByte})
	}
	return cfg
}

// Validate checks that every node of the architecture owns exactly one
// slot and that all lengths are positive.
func (c Config) Validate(a *arch.Architecture) error {
	if c.PerByte <= 0 {
		return fmt.Errorf("ttp: non-positive per-byte time %v", c.PerByte)
	}
	if len(c.Slots) != a.NumNodes() {
		return fmt.Errorf("ttp: %d slots for %d nodes", len(c.Slots), a.NumNodes())
	}
	seen := make(map[arch.NodeID]bool, len(c.Slots))
	for i, s := range c.Slots {
		if a.Node(s.Node) == nil {
			return fmt.Errorf("ttp: slot %d owned by unknown node %d", i, s.Node)
		}
		if seen[s.Node] {
			return fmt.Errorf("ttp: node %d owns more than one slot", s.Node)
		}
		seen[s.Node] = true
		if s.Length <= 0 {
			return fmt.Errorf("ttp: slot %d has non-positive length", i)
		}
	}
	return nil
}

// RoundLength returns the duration of one TDMA round.
func (c Config) RoundLength() model.Time {
	var sum model.Time
	for _, s := range c.Slots {
		sum += s.Length
	}
	return sum
}

// SlotIndex returns the position of the slot owned by node n in the
// round, or -1 when the node owns no slot.
func (c Config) SlotIndex(n arch.NodeID) int {
	for i, s := range c.Slots {
		if s.Node == n {
			return i
		}
	}
	return -1
}

// SlotOffset returns the start offset of slot i within a round.
func (c Config) SlotOffset(i int) model.Time {
	var off model.Time
	for j := 0; j < i; j++ {
		off += c.Slots[j].Length
	}
	return off
}

// SlotCapacity returns how many payload bytes fit into slot i.
func (c Config) SlotCapacity(i int) int {
	return int(c.Slots[i].Length / c.PerByte)
}

// WithSlotOrder returns a copy of the configuration with the slot
// sequence permuted: perm[i] is the index (into c.Slots) of the slot
// placed at position i. Used by the bus-access optimization.
func (c Config) WithSlotOrder(perm []int) Config {
	if len(perm) != len(c.Slots) {
		panic("ttp: permutation length mismatch")
	}
	out := Config{PerByte: c.PerByte, Slots: make([]Slot, len(c.Slots))}
	for i, p := range perm {
		out.Slots[i] = c.Slots[p]
	}
	return out
}

// WithSlotLength returns a copy with slot i resized to length.
func (c Config) WithSlotLength(i int, length model.Time) Config {
	out := Config{PerByte: c.PerByte, Slots: append([]Slot(nil), c.Slots...)}
	out.Slots[i].Length = length
	return out
}

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	return Config{PerByte: c.PerByte, Slots: append([]Slot(nil), c.Slots...)}
}

// Transmission describes one scheduled message occurrence in the MEDL.
type Transmission struct {
	Label   string // message identity, for display and the MEDL
	Bytes   int
	Round   int        // TDMA round index
	Slot    int        // slot index within the round
	Start   model.Time // start of the slot occurrence
	Arrival model.Time // end of the slot occurrence: data available at all nodes
}

func (t Transmission) String() string {
	return fmt.Sprintf("%s@r%d/s%d[%v,%v)", t.Label, t.Round, t.Slot, t.Start, t.Arrival)
}

// frame tracks the bytes already packed into one slot occurrence.
type frame struct {
	used int
	msgs []Transmission
}

// Bus allocates messages onto slot occurrences, building the MEDL. It is
// the scheduling-time view of the bus; a fresh Bus (or one recycled with
// Reset) is used for every schedule construction.
type Bus struct {
	cfg    Config
	frames map[[2]int]*frame // key: {round, slot}
	// free recycles frame structs (and their msgs backing) across
	// Resets, so a reused Bus reserves messages without allocating.
	free []*frame
}

// NewBus returns an empty allocator over the given configuration.
func NewBus(cfg Config) *Bus {
	return &Bus{cfg: cfg, frames: make(map[[2]int]*frame)}
}

// Reset empties the allocator for a new schedule construction over the
// given configuration, recycling the frame storage of the previous one.
// Reservation behaviour after Reset is identical to a fresh NewBus(cfg).
//
//ftdse:hotpath
func (b *Bus) Reset(cfg Config) {
	b.cfg = cfg
	for key, f := range b.frames {
		f.used = 0
		f.msgs = f.msgs[:0]
		//ftlint:allow hotpath the free list grows to one configuration's frame count, then stays
		b.free = append(b.free, f) //ftlint:allow determinism recycled frames are reset to identical state; free-list order varies only backing capacity, never results
		delete(b.frames, key)
	}
}

// newFrame takes a recycled frame when one is available.
func (b *Bus) newFrame() *frame {
	if n := len(b.free); n > 0 {
		f := b.free[n-1]
		b.free = b.free[:n-1]
		return f
	}
	return &frame{}
}

// Config returns the bus-access configuration of the allocator.
func (b *Bus) Config() Config { return b.cfg }

// Reserve schedules a message of the given size from node n into the
// earliest slot occurrence of n that starts at or after ready and still
// has capacity. It returns the resulting transmission. Reserve fails
// only when the message is larger than the slot (the initial
// configuration sizes slots for the largest message, so this indicates a
// mis-configured bus).
func (b *Bus) Reserve(n arch.NodeID, ready model.Time, bytes int, label string) (Transmission, error) {
	si := b.cfg.SlotIndex(n)
	if si < 0 {
		return Transmission{}, fmt.Errorf("ttp: node %d owns no slot", n)
	}
	if bytes > b.cfg.SlotCapacity(si) {
		return Transmission{}, fmt.Errorf("ttp: message %q (%d bytes) exceeds capacity %d of slot %d",
			label, bytes, b.cfg.SlotCapacity(si), si)
	}
	if ready < 0 {
		ready = 0
	}
	round := b.cfg.RoundLength()
	offset := b.cfg.SlotOffset(si)
	// First round whose occurrence of slot si starts at or after ready.
	r := int((ready - offset + round - 1) / round)
	if r < 0 {
		r = 0
	}
	for {
		start := model.Time(r)*round + offset
		if start >= ready {
			key := [2]int{r, si}
			f := b.frames[key]
			if f == nil {
				f = b.newFrame()
				b.frames[key] = f
			}
			if f.used+bytes <= b.cfg.SlotCapacity(si) {
				tr := Transmission{
					Label:   label,
					Bytes:   bytes,
					Round:   r,
					Slot:    si,
					Start:   start,
					Arrival: start + b.cfg.Slots[si].Length,
				}
				f.used += bytes
				f.msgs = append(f.msgs, tr)
				return tr, nil
			}
		}
		r++
	}
}

// MEDL returns all scheduled transmissions ordered by time, i.e. the
// message descriptor list of the synthesized system.
func (b *Bus) MEDL() []Transmission {
	var out []Transmission
	for _, f := range b.frames {
		out = append(out, f.msgs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Horizon returns the end of the last reserved slot occurrence, or 0
// when the bus is empty.
func (b *Bus) Horizon() model.Time {
	var h model.Time
	for _, f := range b.frames {
		for _, m := range f.msgs {
			if m.Arrival > h {
				h = m.Arrival
			}
		}
	}
	return h
}
