package dot

import (
	"bytes"
	"strings"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

func buildSystem(t *testing.T) (*model.Graph, *sched.Schedule) {
	t.Helper()
	app := model.NewApplication("dot test")
	g := app.AddGraph("G", model.Ms(1000), model.Ms(400))
	p1 := app.AddProcess(g, "P1")
	p2 := app.AddProcess(g, "P2")
	p1.Release = model.Ms(5)
	p2.Deadline = model.Ms(300)
	g.AddEdge(p1, p2, 3)
	a := arch.New(2)
	w := arch.NewWCET()
	for n := arch.NodeID(0); n < 2; n++ {
		w.Set(p1.ID, n, model.Ms(40))
		w.Set(p2.ID, n, model.Ms(30))
	}
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Build(sched.Input{
		Graph:  merged,
		Arch:   a,
		WCET:   w,
		Faults: fault.Model{K: 1, Mu: model.Ms(10)},
		Assignment: policy.Assignment{
			p1.ID: policy.Distribute([]arch.NodeID{0, 1}, 1),
			p2.ID: policy.Checkpointed(1, 1, 2),
		},
		Bus:     ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options: sched.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return merged, s
}

func TestWriteGraph(t *testing.T) {
	g, _ := buildSystem(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "P1", "P2", "3B", "release 5ms", "deadline", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("graph dot missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDesign(t *testing.T) {
	_, s := buildSystem(t)
	var buf bytes.Buffer
	if err := WriteDesign(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cluster_n0", "cluster_n1", // one cluster per node
		"P1/1", "P1/2", // replica instances
		"2 ckpt",       // checkpoint annotation
		"style=dashed", // bus edge
		"bus [",        // MEDL slot label
	} {
		if !strings.Contains(out, want) {
			t.Errorf("design dot missing %q:\n%s", want, out)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a\"b\nc"); got != "a_b_c" {
		t.Errorf("sanitize = %q", got)
	}
}
