// Package dot exports application graphs and synthesized fault-tolerant
// designs in Graphviz DOT format, for documentation and debugging.
package dot

import (
	"fmt"
	"io"
	"strings"

	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
)

// WriteGraph emits a process graph: processes as nodes (annotated with
// release/deadline when set) and messages as labelled edges.
func WriteGraph(w io.Writer, g *model.Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitize(g.Name))
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, p := range g.Processes() {
		label := p.Name
		if p.Release > 0 {
			label += fmt.Sprintf("\\nrelease %v", p.Release)
		}
		if p.Deadline > 0 {
			label += fmt.Sprintf("\\ndeadline %v", p.Deadline)
		}
		fmt.Fprintf(&b, "  p%d [label=\"%s\"];\n", p.ID, label)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  p%d -> p%d [label=\"%dB\"];\n", e.Src, e.Dst, e.Bytes)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDesign emits a synthesized design: one cluster per node holding
// the replica instances in schedule order (annotated with their policy
// and nominal window), plus the data-flow edges between instances (bus
// messages labelled with their MEDL slot times).
func WriteDesign(w io.Writer, s *sched.Schedule) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitize(s.In.Graph.Name))
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, n := range s.In.Arch.Nodes() {
		fmt.Fprintf(&b, "  subgraph cluster_n%d {\n    label=%q;\n", n.ID, n.Name)
		for _, it := range s.NodeSequence(n.ID) {
			fmt.Fprintf(&b, "    i%d [label=\"%s\\n[%v,%v)%s\"];\n",
				it.Inst.ID, it.Inst.Name(), it.NominalStart, it.NominalFinish,
				policyNote(it.Inst))
		}
		b.WriteString("  }\n")
	}
	edgeIdx := make(map[[2]model.ProcID]int, len(s.In.Graph.Edges()))
	for i, e := range s.In.Graph.Edges() {
		edgeIdx[[2]model.ProcID{e.Src, e.Dst}] = i
	}
	for _, e := range s.In.Graph.Edges() {
		idx := edgeIdx[[2]model.ProcID{e.Src, e.Dst}]
		for _, src := range s.Ex.Of(e.Src) {
			sit := s.Item(src.ID)
			for _, dst := range s.Ex.Of(e.Dst) {
				if src.Node == dst.Node {
					fmt.Fprintf(&b, "  i%d -> i%d;\n", src.ID, dst.ID)
					continue
				}
				if tr, ok := sit.Msgs[idx]; ok {
					fmt.Fprintf(&b, "  i%d -> i%d [style=dashed, label=\"bus [%v,%v)\"];\n",
						src.ID, dst.ID, tr.Start, tr.Arrival)
				}
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func policyNote(in *policy.Instance) string {
	var parts []string
	if in.Reexec > 0 {
		parts = append(parts, fmt.Sprintf("%dx re-exec", in.Reexec))
	}
	if in.Checkpoints > 0 {
		parts = append(parts, fmt.Sprintf("%d ckpt", in.Checkpoints))
	}
	if len(parts) == 0 {
		return ""
	}
	return "\\n" + strings.Join(parts, ", ")
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
