package policy

import (
	"testing"
	"testing/quick"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
)

func testWCET(procs int, nodes int) *arch.WCET {
	w := arch.NewWCET()
	for p := 0; p < procs; p++ {
		for n := 0; n < nodes; n++ {
			w.Set(model.ProcID(p), arch.NodeID(n), model.Ms(int64(10+10*p+n)))
		}
	}
	return w
}

func TestExecutions(t *testing.T) {
	cases := []struct {
		p    Policy
		want int
	}{
		{Reexecution(0, 2), 3},
		{Replication(0, 1, 2), 3},
		{Distribute([]arch.NodeID{0, 1}, 2), 3},
		{Policy{Replicas: []Replica{{Node: 0, Reexec: 1}, {Node: 1}}}, 3},
	}
	for _, c := range cases {
		if got := c.p.Executions(); got != c.want {
			t.Errorf("%v.Executions() = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestDistribute(t *testing.T) {
	// k=2 on two nodes: Figure 2c — replica 1 re-executed once, replica 2 not.
	p := Distribute([]arch.NodeID{0, 1}, 2)
	if p.ReplicaCount() != 2 || p.Executions() != 3 {
		t.Fatalf("Distribute = %v", p)
	}
	if p.Replicas[0].Reexec != 1 || p.Replicas[1].Reexec != 0 {
		t.Errorf("Distribute spread = %v, want reexec [1 0]", p)
	}
	// one node degenerates to pure re-execution
	if q := Distribute([]arch.NodeID{3}, 4); q.Replicas[0].Reexec != 4 {
		t.Errorf("Distribute single node = %v", q)
	}
	// k+1 nodes degenerate to pure replication
	q := Distribute([]arch.NodeID{0, 1, 2}, 2)
	for _, r := range q.Replicas {
		if r.Reexec != 0 {
			t.Errorf("Distribute over k+1 nodes should not re-execute: %v", q)
		}
	}
	// more replicas than k+1 still gives one execution each
	q = Distribute([]arch.NodeID{0, 1, 2}, 1)
	if q.Executions() != 3 {
		t.Errorf("Distribute over 3 nodes with k=1 = %v", q)
	}
}

func TestDistributePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Distribute with no nodes should panic")
		}
	}()
	Distribute(nil, 1)
}

func TestPolicyValidate(t *testing.T) {
	w := testWCET(1, 3)
	p0 := model.ProcID(0)
	if err := Reexecution(0, 2).Validate(2, w, p0); err != nil {
		t.Errorf("re-execution policy rejected: %v", err)
	}
	if err := Replication(0, 1, 2).Validate(2, w, p0); err != nil {
		t.Errorf("replication policy rejected: %v", err)
	}
	// not enough executions
	if err := Replication(0, 1).Validate(2, w, p0); err == nil {
		t.Error("accepted 2 executions for k=2")
	}
	// duplicate node
	dup := Policy{Replicas: []Replica{{Node: 0, Reexec: 1}, {Node: 0, Reexec: 1}}}
	if err := dup.Validate(2, w, p0); err == nil {
		t.Error("accepted two replicas on the same node")
	}
	// unmappable node
	if err := Reexecution(7, 2).Validate(2, w, p0); err == nil {
		t.Error("accepted replica on unmappable node")
	}
	// negative reexec
	neg := Policy{Replicas: []Replica{{Node: 0, Reexec: -1}}}
	if err := neg.Validate(0, w, p0); err == nil {
		t.Error("accepted negative re-execution count")
	}
	// empty
	if err := (Policy{}).Validate(0, w, p0); err == nil {
		t.Error("accepted empty policy")
	}
}

func TestPolicyHelpers(t *testing.T) {
	p := Distribute([]arch.NodeID{2, 0}, 2)
	if !p.UsesNode(2) || !p.UsesNode(0) || p.UsesNode(1) {
		t.Error("UsesNode wrong")
	}
	nodes := p.Nodes()
	if len(nodes) != 2 || nodes[0] != 2 || nodes[1] != 0 {
		t.Errorf("Nodes = %v", nodes)
	}
	c := p.Canonical()
	if c.Replicas[0].Node != 0 || c.Replicas[1].Node != 2 {
		t.Errorf("Canonical = %v", c)
	}
	if !p.Equal(p.Clone()) {
		t.Error("clone should be Equal")
	}
	if p.Equal(c) {
		t.Error("different order should not be Equal")
	}
	q := p.Clone()
	q.Replicas[0].Reexec++
	if p.Equal(q) {
		t.Error("Clone must be deep")
	}
	if s := Reexecution(0, 2).String(); s != "{N0+2x}" {
		t.Errorf("String = %q", s)
	}
}

func TestAssignmentCloneValidate(t *testing.T) {
	app := model.NewApplication("a")
	g := app.AddGraph("G", model.Ms(100), model.Ms(100))
	p := app.AddProcess(g, "P")
	q := app.AddProcess(g, "Q")
	g.AddEdge(p, q, 1)
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	w := testWCET(2, 2)
	asgn := Assignment{
		p.ID: Reexecution(0, 1),
		q.ID: Replication(0, 1),
	}
	if err := asgn.Validate(merged, w, 1); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cl := asgn.Clone()
	cl[p.ID].Replicas[0].Reexec = 0
	if asgn[p.ID].Replicas[0].Reexec != 1 {
		t.Error("Clone must be deep")
	}
	delete(asgn, q.ID)
	if err := asgn.Validate(merged, w, 1); err == nil {
		t.Error("Validate accepted missing policy")
	}
}

func TestExpand(t *testing.T) {
	app := model.NewApplication("a")
	g := app.AddGraph("G", model.Ms(100), model.Ms(100))
	p := app.AddProcess(g, "P1")
	q := app.AddProcess(g, "P2")
	g.AddEdge(p, q, 2)
	merged, err := app.Merge()
	if err != nil {
		t.Fatal(err)
	}
	w := testWCET(2, 2)
	asgn := Assignment{
		p.ID: Distribute([]arch.NodeID{0, 1}, 2),
		q.ID: Reexecution(1, 2),
	}
	ex, err := Expand(merged, asgn, w)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if ex.NumInstances() != 3 {
		t.Fatalf("NumInstances = %d, want 3", ex.NumInstances())
	}
	mp := merged.Processes()
	pis := ex.Of(mp[0].ID)
	if len(pis) != 2 {
		t.Fatalf("P1 instances = %d, want 2", len(pis))
	}
	if pis[0].Name() != "P1/1" || pis[1].Name() != "P1/2" {
		t.Errorf("replica names = %q %q", pis[0].Name(), pis[1].Name())
	}
	if pis[0].Reexec != 1 || pis[1].Reexec != 0 {
		t.Errorf("replica reexec = %d %d", pis[0].Reexec, pis[1].Reexec)
	}
	if pis[0].WCET != model.Ms(10) || pis[1].WCET != model.Ms(11) {
		t.Errorf("replica WCET = %v %v", pis[0].WCET, pis[1].WCET)
	}
	qis := ex.Of(mp[1].ID)
	if len(qis) != 1 || qis[0].Name() != "P2" {
		t.Errorf("single replica should keep plain name, got %v", qis)
	}
	if ex.Graph() != merged {
		t.Error("Graph() should return the merged graph")
	}
}

func TestExpandErrors(t *testing.T) {
	app := model.NewApplication("a")
	g := app.AddGraph("G", model.Ms(100), model.Ms(100))
	p := app.AddProcess(g, "P")
	merged, _ := app.Merge()
	w := testWCET(1, 1)
	if _, err := Expand(merged, Assignment{}, w); err == nil {
		t.Error("Expand accepted missing policy")
	}
	if _, err := Expand(merged, Assignment{p.ID: Reexecution(5, 0)}, w); err == nil {
		t.Error("Expand accepted unmappable replica")
	}
}

// Property: Distribute always yields exactly max(k+1, r) executions on
// pairwise distinct nodes, with re-executions differing by at most one.
func TestDistributeProperty(t *testing.T) {
	f := func(r8, k8 uint8) bool {
		r := int(r8%5) + 1
		k := int(k8 % 8)
		nodes := make([]arch.NodeID, r)
		for i := range nodes {
			nodes[i] = arch.NodeID(i)
		}
		p := Distribute(nodes, k)
		want := k + 1
		if want < r {
			want = r
		}
		if p.Executions() != want {
			return false
		}
		minX, maxX := p.Replicas[0].Reexec, p.Replicas[0].Reexec
		for _, rep := range p.Replicas {
			if rep.Reexec < minX {
				minX = rep.Reexec
			}
			if rep.Reexec > maxX {
				maxX = rep.Reexec
			}
		}
		return maxX-minX <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointedPolicy(t *testing.T) {
	p := Checkpointed(1, 2, 3)
	if p.ReplicaCount() != 1 || p.Executions() != 3 {
		t.Fatalf("Checkpointed = %v", p)
	}
	if p.Replicas[0].Checkpoints != 3 {
		t.Errorf("checkpoints = %d, want 3", p.Replicas[0].Checkpoints)
	}
	if s := p.String(); s != "{N1+2x/3c}" {
		t.Errorf("String = %q", s)
	}
	w := testWCET(1, 2)
	if err := p.Validate(2, w, model.ProcID(0)); err != nil {
		t.Errorf("valid checkpointed policy rejected: %v", err)
	}
	neg := Policy{Replicas: []Replica{{Node: 0, Reexec: 2, Checkpoints: -1}}}
	if err := neg.Validate(2, w, model.ProcID(0)); err == nil {
		t.Error("accepted negative checkpoint count")
	}
}

func TestInstanceCheckpointTimes(t *testing.T) {
	in := &Instance{WCET: model.Ms(40), Reexec: 2, Checkpoints: 3}
	if got := in.ExecTime(model.Ms(1)); got != model.Ms(43) {
		t.Errorf("ExecTime = %v, want 43ms", got)
	}
	if got := in.RecoverTime(model.Ms(5)); got != model.Ms(15) {
		t.Errorf("RecoverTime = %v, want 15ms (10ms segment + µ)", got)
	}
	// Without checkpoints the whole process is re-executed.
	plain := &Instance{WCET: model.Ms(40), Reexec: 2}
	if got := plain.ExecTime(model.Ms(1)); got != model.Ms(40) {
		t.Errorf("plain ExecTime = %v, want 40ms", got)
	}
	if got := plain.RecoverTime(model.Ms(5)); got != model.Ms(45) {
		t.Errorf("plain RecoverTime = %v, want 45ms", got)
	}
	// Segment length rounds up at microsecond granularity.
	odd := &Instance{WCET: model.Us(40000), Checkpoints: 2}
	if got := odd.RecoverTime(0); got != model.Us(13334) {
		t.Errorf("odd RecoverTime = %v, want 13.334ms", got)
	}
}
