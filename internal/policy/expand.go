package policy

import (
	"fmt"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
)

// InstID identifies one replica instance in the expanded fault-tolerant
// graph. IDs are dense in expansion order.
type InstID int

// Instance is one replica of one (merged-graph) process: the schedulable
// unit of the fault-tolerant system. P1's policy {N1+1x N2} expands into
// the instances P1/1 on N1 (one re-execution) and P1/2 on N2.
type Instance struct {
	ID          InstID
	Proc        *model.Process // process of the merged graph
	Replica     int            // replica index within the policy
	Node        arch.NodeID
	Reexec      int        // faults this replica recovers from
	Checkpoints int        // state-saving points (segment recovery)
	WCET        model.Time // C of the process on Node

	singleReplica bool // set during expansion; affects Name only
}

// ExecTime returns the fault-free execution time including the
// checkpointing overhead: C + Checkpoints·χ.
func (in *Instance) ExecTime(chi model.Time) model.Time {
	return in.WCET + model.Time(in.Checkpoints)*chi
}

// RecoverTime returns the worst-case cost of one fault: re-executing the
// longest segment plus the recovery overhead µ. Without checkpoints the
// whole process is re-executed (C + µ).
func (in *Instance) RecoverTime(mu model.Time) model.Time {
	segs := model.Time(in.Checkpoints + 1)
	seg := (in.WCET + segs - 1) / segs // ceil
	return seg + mu
}

// Name returns the paper-style replica name, e.g. "P1/2". A process with
// a single replica keeps its plain name.
func (in *Instance) Name() string {
	if in.Replica == 0 && in.singleReplica {
		return in.Proc.Name
	}
	return fmt.Sprintf("%s/%d", in.Proc.Name, in.Replica+1)
}

func (in *Instance) String() string { return in.Name() }

// Expansion is the fault-tolerant instance graph: all replica instances
// plus the per-process grouping needed to resolve edges (every replica
// of a successor consumes the output of every replica of a predecessor).
type Expansion struct {
	Instances []*Instance
	byProc    map[model.ProcID][]*Instance // keyed by merged-graph ProcID
	graph     *model.Graph
}

// Expand instantiates the replica instances of every process of the
// merged graph according to the assignment. WCETs are resolved from the
// table; unmappable replicas are an error.
func Expand(g *model.Graph, asgn Assignment, w *arch.WCET) (*Expansion, error) {
	ex := &Expansion{byProc: make(map[model.ProcID][]*Instance, g.NumProcesses()), graph: g}
	var next InstID
	for _, proc := range g.Processes() {
		pol, ok := asgn[proc.Origin]
		if !ok {
			return nil, fmt.Errorf("policy: process %s has no policy", proc)
		}
		single := len(pol.Replicas) == 1
		for ri, rep := range pol.Replicas {
			c, ok := w.Get(proc.Origin, rep.Node)
			if !ok {
				return nil, fmt.Errorf("policy: process %s replica %d not mappable on node %d", proc, ri, rep.Node)
			}
			in := &Instance{
				ID:          next,
				Proc:        proc,
				Replica:     ri,
				Node:        rep.Node,
				Reexec:      rep.Reexec,
				Checkpoints: rep.Checkpoints,
				WCET:        c,
			}
			in.singleReplica = single
			next++
			ex.Instances = append(ex.Instances, in)
			ex.byProc[proc.ID] = append(ex.byProc[proc.ID], in)
		}
	}
	return ex, nil
}

// ExpandScratch makes Expand reusable without allocating: instances are
// laid out in a value arena and the Expansion shell (instance slice and
// per-process index) is recycled between calls. One scratch serves one
// goroutine; the Expansion returned by its Expand is valid only until
// the next call on the same scratch. The optimizer's move evaluator
// keeps one per worker so costing thousands of candidate assignments
// over the same graph allocates nothing in steady state.
type ExpandScratch struct {
	insts []Instance
	ex    Expansion
}

// Expand is the scratch-reusing variant of the package-level Expand. It
// produces an Expansion with identical contents (same instance order,
// IDs, WCETs and names) — pointer identity aside — so scheduling results
// are bit-identical to the allocating path.
//
//ftdse:hotpath
func (sc *ExpandScratch) Expand(g *model.Graph, asgn Assignment, w *arch.WCET) (*Expansion, error) {
	// Count first so the arena never reallocates while instance pointers
	// are being handed out.
	total := 0
	for _, proc := range g.Processes() {
		pol, ok := asgn[proc.Origin]
		if !ok {
			return nil, fmt.Errorf("policy: process %s has no policy", proc)
		}
		total += len(pol.Replicas)
	}
	if cap(sc.insts) < total {
		sc.insts = make([]Instance, total) //ftlint:allow hotpath grow-once arena: reallocates only when a larger assignment arrives
	}
	sc.insts = sc.insts[:total]

	ex := &sc.ex
	ex.graph = g
	ex.Instances = ex.Instances[:0]
	if ex.byProc == nil {
		ex.byProc = make(map[model.ProcID][]*Instance, g.NumProcesses()) //ftlint:allow hotpath first call on this scratch; the index map is recycled afterwards
	} else {
		for id := range ex.byProc {
			ex.byProc[id] = ex.byProc[id][:0]
		}
	}

	var next InstID
	for _, proc := range g.Processes() {
		pol := asgn[proc.Origin]
		single := len(pol.Replicas) == 1
		for ri, rep := range pol.Replicas {
			c, ok := w.Get(proc.Origin, rep.Node)
			if !ok {
				return nil, fmt.Errorf("policy: process %s replica %d not mappable on node %d", proc, ri, rep.Node)
			}
			in := &sc.insts[next]
			*in = Instance{
				ID:          next,
				Proc:        proc,
				Replica:     ri,
				Node:        rep.Node,
				Reexec:      rep.Reexec,
				Checkpoints: rep.Checkpoints,
				WCET:        c,
			}
			in.singleReplica = single
			next++
			ex.Instances = append(ex.Instances, in)             //ftlint:allow hotpath amortized growth: the recycled shell keeps its capacity
			ex.byProc[proc.ID] = append(ex.byProc[proc.ID], in) //ftlint:allow hotpath amortized growth: per-process buckets keep their capacity
		}
	}
	return ex, nil
}

// Of returns the replica instances of the merged-graph process id, in
// replica order.
func (ex *Expansion) Of(id model.ProcID) []*Instance { return ex.byProc[id] }

// Graph returns the merged graph the expansion was built from.
func (ex *Expansion) Graph() *model.Graph { return ex.graph }

// NumInstances returns the total number of replica instances.
func (ex *Expansion) NumInstances() int { return len(ex.Instances) }
