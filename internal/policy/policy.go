// Package policy implements the fault-tolerance policy assignment of the
// paper's Sections 3 and 4.1. The combination of policies applied to a
// process is captured by the two functions FR (replication) and FX
// (re-execution, applicable also to replicas): a process runs as r ≥ 1
// replicas, each on its own node, and each replica may additionally be
// re-executed a number of times. The total number of executions
// Σ (1 + reexec_j) must reach k+1 so that k transient faults are
// tolerated (Figure 2 of the paper: pure re-execution is r=1 with k
// re-executions; pure replication is r=k+1; the combined policy spreads
// k+1 executions over fewer replicas).
//
// The mapping decision M is folded into the policy: each replica carries
// the node it is mapped to.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/model"
)

// Replica is one active replica of a process: a node plus the number of
// faults this replica recovers from (FX applied to it), and optionally a
// number of checkpoints.
type Replica struct {
	Node   arch.NodeID
	Reexec int

	// Checkpoints splits the replica's execution into Checkpoints+1
	// segments separated by state-saving points (each costing the fault
	// model's χ). A fault then re-executes only the current segment
	// instead of the whole process, which shrinks the recovery slack
	// from Reexec·(C+µ) to Reexec·(C/(Checkpoints+1)+µ). This is the
	// checkpointing technique the paper lists among the software
	// fault-tolerance mechanisms; the optimization over checkpoint
	// counts is this reproduction's extension (see DESIGN.md §7).
	Checkpoints int
}

// Policy is the fault-tolerance decision for one process: its replicas
// (FR) with their re-execution counts (FX) and their mapping (M).
type Policy struct {
	Replicas []Replica
}

// Executions returns the total number of executions the policy provides,
// Σ (1 + reexec_j). A policy tolerates k faults iff Executions() ≥ k+1.
func (p Policy) Executions() int {
	n := 0
	for _, r := range p.Replicas {
		n += 1 + r.Reexec
	}
	return n
}

// ReplicaCount returns the number of active replicas r.
func (p Policy) ReplicaCount() int { return len(p.Replicas) }

// Nodes returns the nodes used by the policy in replica order.
func (p Policy) Nodes() []arch.NodeID {
	out := make([]arch.NodeID, len(p.Replicas))
	for i, r := range p.Replicas {
		out[i] = r.Node
	}
	return out
}

// UsesNode reports whether any replica is mapped on node n.
func (p Policy) UsesNode(n arch.NodeID) bool {
	for _, r := range p.Replicas {
		if r.Node == n {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the policy.
func (p Policy) Clone() Policy {
	return Policy{Replicas: append([]Replica(nil), p.Replicas...)}
}

// Equal reports whether two policies are identical (same replicas in the
// same order).
func (p Policy) Equal(q Policy) bool {
	if len(p.Replicas) != len(q.Replicas) {
		return false
	}
	for i := range p.Replicas {
		if p.Replicas[i] != q.Replicas[i] {
			return false
		}
	}
	return true
}

// Canonical returns a copy with replicas sorted by node, which gives
// policies a unique representation for hashing and comparison.
func (p Policy) Canonical() Policy {
	c := p.Clone()
	sort.Slice(c.Replicas, func(i, j int) bool { return c.Replicas[i].Node < c.Replicas[j].Node })
	return c
}

// Validate checks the policy against the fault budget k and the allowed
// nodes of process proc: at least one replica, replicas on pairwise
// distinct allowed nodes, non-negative re-execution counts, and enough
// total executions to tolerate k faults.
func (p Policy) Validate(k int, w *arch.WCET, proc model.ProcID) error {
	if len(p.Replicas) == 0 {
		return fmt.Errorf("policy: process %d has no replicas", proc)
	}
	seen := make(map[arch.NodeID]bool, len(p.Replicas))
	for _, r := range p.Replicas {
		if r.Reexec < 0 {
			return fmt.Errorf("policy: process %d has negative re-execution count", proc)
		}
		if r.Checkpoints < 0 {
			return fmt.Errorf("policy: process %d has negative checkpoint count", proc)
		}
		if seen[r.Node] {
			return fmt.Errorf("policy: process %d has two replicas on node %d", proc, r.Node)
		}
		seen[r.Node] = true
		if _, ok := w.Get(proc, r.Node); !ok {
			return fmt.Errorf("policy: process %d cannot be mapped on node %d", proc, r.Node)
		}
	}
	if p.Executions() < k+1 {
		return fmt.Errorf("policy: process %d provides %d executions, need %d to tolerate %d faults",
			proc, p.Executions(), k+1, k)
	}
	return nil
}

func (p Policy) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range p.Replicas {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "N%d", r.Node)
		if r.Reexec > 0 {
			fmt.Fprintf(&b, "+%dx", r.Reexec)
		}
		if r.Checkpoints > 0 {
			fmt.Fprintf(&b, "/%dc", r.Checkpoints)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Checkpointed returns a re-execution policy with checkpoints: one
// replica on node n recovering from k faults, re-executing only the
// failed segment thanks to checkpoints state-saving points.
func Checkpointed(n arch.NodeID, k, checkpoints int) Policy {
	return Policy{Replicas: []Replica{{Node: n, Reexec: k, Checkpoints: checkpoints}}}
}

// Reexecution returns the pure re-execution policy of Figure 2a: one
// replica on node n, re-executed k times.
func Reexecution(n arch.NodeID, k int) Policy {
	return Policy{Replicas: []Replica{{Node: n, Reexec: k}}}
}

// Replication returns the pure active-replication policy of Figure 2b:
// one replica per given node, no re-executions. To tolerate k faults,
// k+1 nodes must be supplied.
func Replication(nodes ...arch.NodeID) Policy {
	p := Policy{Replicas: make([]Replica, len(nodes))}
	for i, n := range nodes {
		p.Replicas[i] = Replica{Node: n}
	}
	return p
}

// Distribute returns the combined policy of Figure 2c: k+1 executions
// spread as evenly as possible over one replica per given node (earlier
// nodes receive the extra re-executions). With one node it degenerates
// to Reexecution, with k+1 nodes to Replication.
func Distribute(nodes []arch.NodeID, k int) Policy {
	if len(nodes) == 0 {
		panic("policy: Distribute with no nodes")
	}
	r := len(nodes)
	total := k + 1
	if total < r {
		total = r // more replicas than needed: one execution each
	}
	base := total / r
	rem := total % r
	p := Policy{Replicas: make([]Replica, r)}
	for i, n := range nodes {
		exec := base
		if i < rem {
			exec++
		}
		p.Replicas[i] = Replica{Node: n, Reexec: exec - 1}
	}
	return p
}

// Assignment maps every process (by origin ProcID) to its policy. It is
// the tuple <F, M> = <FR, FX, M> of the paper for the whole application.
type Assignment map[model.ProcID]Policy

// Clone returns a deep copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for id, p := range a {
		out[id] = p.Clone()
	}
	return out
}

// Validate checks that every process of the merged graph has a valid
// policy for fault budget k.
func (a Assignment) Validate(g *model.Graph, w *arch.WCET, k int) error {
	for _, proc := range g.Processes() {
		p, ok := a[proc.Origin]
		if !ok {
			return fmt.Errorf("policy: process %s has no policy assigned", proc)
		}
		if err := p.Validate(k, w, proc.Origin); err != nil {
			return err
		}
	}
	return nil
}
