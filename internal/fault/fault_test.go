package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/ftdse/internal/model"
)

func TestModelValidate(t *testing.T) {
	good := []Model{{K: 0, Mu: 0}, {K: 2, Mu: model.Ms(10)}, {K: 3, Mu: 0}}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", m, err)
		}
	}
	bad := []Model{{K: -1, Mu: 0}, {K: 1, Mu: -model.Ms(1)}}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted invalid model", m)
		}
	}
}

func TestModelString(t *testing.T) {
	m := Model{K: 2, Mu: model.Ms(10)}
	if s := m.String(); s != "k=2 µ=10ms" {
		t.Errorf("String = %q", s)
	}
}

func TestEnumerateSmall(t *testing.T) {
	var got []Distribution
	Enumerate(2, 2, func(d Distribution) bool {
		got = append(got, d.Clone())
		return true
	})
	// C(2+2,2) = 6 distributions over 2 sites with budget <= 2.
	if len(got) != 6 {
		t.Fatalf("enumerated %d distributions, want 6: %v", len(got), got)
	}
	seen := make(map[[2]int]bool)
	for _, d := range got {
		if d.Sum() > 2 {
			t.Errorf("distribution %v exceeds budget", d)
		}
		key := [2]int{d[0], d[1]}
		if seen[key] {
			t.Errorf("duplicate distribution %v", d)
		}
		seen[key] = true
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	calls := 0
	Enumerate(3, 3, func(d Distribution) bool {
		calls++
		return calls < 4
	})
	if calls != 4 {
		t.Errorf("yield called %d times, want 4 (early stop)", calls)
	}
}

func TestEnumerateZeroSites(t *testing.T) {
	calls := 0
	Enumerate(0, 5, func(d Distribution) bool {
		calls++
		if len(d) != 0 {
			t.Errorf("distribution over 0 sites has length %d", len(d))
		}
		return true
	})
	if calls != 1 {
		t.Errorf("zero sites should yield exactly the empty distribution, got %d calls", calls)
	}
}

func TestCountMatchesEnumerate(t *testing.T) {
	for n := 0; n <= 4; n++ {
		for k := 0; k <= 4; k++ {
			var got int64
			Enumerate(n, k, func(Distribution) bool { got++; return true })
			if want := Count(n, k); got != want {
				t.Errorf("Count(%d,%d) = %d, Enumerate yields %d", n, k, want, got)
			}
		}
	}
}

func TestCountSaturates(t *testing.T) {
	if Count(1000000, 1000) <= 0 {
		t.Error("Count must saturate, not overflow")
	}
}

func TestSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := Sample(rng, 5, 3)
		if len(d) != 5 || d.Sum() != 3 {
			t.Fatalf("Sample returned %v", d)
		}
	}
	if d := Sample(rng, 0, 3); len(d) != 0 {
		t.Errorf("Sample over zero sites = %v", d)
	}
}

// Property: every enumerated distribution respects the budget and
// cloning is deep.
func TestEnumerateProperty(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8%4) + 1
		k := int(k8 % 4)
		ok := true
		Enumerate(n, k, func(d Distribution) bool {
			if d.Sum() > k || len(d) != n {
				ok = false
				return false
			}
			c := d.Clone()
			c[0]++
			if d[0] == c[0] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
