// Package fault holds the transient-fault hypothesis of the paper's
// Section 2.1: at most k transient faults may occur anywhere in the
// system during one operation cycle, each with a worst-case duration µ
// from detection until the system is back to normal operation. Faults
// are confined to a single process execution; k may exceed the number of
// processors, and several faults may hit the same processor or even the
// same process.
//
// The package also provides generic helpers to enumerate and sample
// distributions of a fault budget over a set of fault sites, used by the
// fault-injection simulator and the validation tests.
package fault

import (
	"fmt"
	"math/rand"

	"repro/ftdse/internal/model"
)

// Model is the fault hypothesis (k, µ) plus the checkpointing overhead χ
// used by the checkpointing extension.
type Model struct {
	// K is the maximum number of transient faults per operation cycle.
	K int
	// Mu is the worst-case recovery overhead per fault (detection until
	// normal operation resumes).
	Mu model.Time
	// Chi is the overhead of taking one checkpoint (saving the process
	// state so a fault re-executes only the current segment instead of
	// the whole process). Zero when checkpointing is not used; the DATE
	// 2005 paper evaluates only re-execution and replication, and
	// checkpointing is this reproduction's documented extension.
	Chi model.Time
}

// None is the fault-free model used for the NFT reference implementation.
var None = Model{K: 0, Mu: 0}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.K < 0 {
		return fmt.Errorf("fault: negative fault count k=%d", m.K)
	}
	if m.Mu < 0 {
		return fmt.Errorf("fault: negative fault duration µ=%v", m.Mu)
	}
	if m.Chi < 0 {
		return fmt.Errorf("fault: negative checkpoint overhead χ=%v", m.Chi)
	}
	return nil
}

func (m Model) String() string {
	if m.Chi > 0 {
		return fmt.Sprintf("k=%d µ=%v χ=%v", m.K, m.Mu, m.Chi)
	}
	return fmt.Sprintf("k=%d µ=%v", m.K, m.Mu)
}

// Distribution assigns a number of faults to each of a set of fault
// sites; Sum() never exceeds the budget it was generated for.
type Distribution []int

// Sum returns the total number of faults in the distribution.
func (d Distribution) Sum() int {
	s := 0
	for _, f := range d {
		s += f
	}
	return s
}

// Clone returns a copy of the distribution.
func (d Distribution) Clone() Distribution {
	return append(Distribution(nil), d...)
}

// Enumerate calls yield for every distribution of at most budget faults
// over n sites, including the all-zero distribution. The slice passed to
// yield is reused; clone it to retain. Enumeration stops early when
// yield returns false. The number of distributions is C(n+budget,
// budget); callers are responsible for keeping n and budget small (the
// validation tests use Count to decide between Enumerate and Sample).
func Enumerate(n, budget int, yield func(Distribution) bool) {
	if n < 0 || budget < 0 {
		panic("fault: negative site count or budget")
	}
	d := make(Distribution, n)
	var rec func(i, left int) bool
	rec = func(i, left int) bool {
		if i == n {
			return yield(d)
		}
		for f := 0; f <= left; f++ {
			d[i] = f
			if !rec(i+1, left-f) {
				return false
			}
		}
		d[i] = 0
		return true
	}
	rec(0, budget)
}

// Count returns the number of distributions Enumerate would yield for n
// sites and the given budget: C(n+budget, budget). It saturates at
// math.MaxInt64 to stay safe for large inputs.
func Count(n, budget int) int64 {
	const maxInt64 = int64(1<<63 - 1)
	var c int64 = 1
	for i := 1; i <= budget; i++ {
		num := int64(n + i)
		if c > maxInt64/num {
			return maxInt64
		}
		c = c * num / int64(i)
	}
	return c
}

// Sample draws a random distribution of exactly faults faults over n
// sites, uniformly over site sequences (sites may repeat).
func Sample(rng *rand.Rand, n, faults int) Distribution {
	d := make(Distribution, n)
	if n == 0 {
		return d
	}
	for i := 0; i < faults; i++ {
		d[rng.Intn(n)]++
	}
	return d
}
