// Package exact is a brute-force reference optimizer for small design
// problems: it enumerates the complete mapping × fault-tolerance-policy
// space, schedules every design, and returns a provably optimal
// configuration (within the policy space of the paper: one replica per
// node subset, the k+1 executions spread over the replicas in every
// possible way). It exists to measure the optimality gap of the tabu
// search on instances where enumeration is feasible — an evaluation the
// paper itself could not run — and as an oracle for tests.
package exact

import (
	"fmt"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/model"
	"repro/ftdse/internal/policy"
	"repro/ftdse/internal/sched"
	"repro/ftdse/internal/ttp"
)

// Options bound the enumeration.
type Options struct {
	// MaxDesigns aborts when the design space is larger; <= 0 selects
	// one million.
	MaxDesigns int64
	// SlackSharing mirrors the scheduler option.
	SlackSharing bool
}

// Result is the outcome of an exhaustive search.
type Result struct {
	Assignment policy.Assignment
	Schedule   *sched.Schedule
	Cost       core.Cost
	// Designs is the number of complete designs evaluated.
	Designs int64
}

// Search enumerates every design of the problem and returns the best.
// The search honors the problem's P_X/P_R/P_M constraints.
func Search(p core.Problem, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxDesigns := opts.MaxDesigns
	if maxDesigns <= 0 {
		maxDesigns = 1_000_000
	}
	merged, err := p.App.Merge()
	if err != nil {
		return nil, err
	}
	bus := ttp.InitialConfig(p.Arch, merged.MaxMessageBytes(), ttp.DefaultPerByte)
	static, err := sched.NewStatic(sched.Input{
		Graph: merged, Arch: p.Arch, WCET: p.WCET, Faults: p.Faults, Bus: bus,
	})
	if err != nil {
		return nil, err
	}

	// Candidate policies per process.
	procs := p.App.Processes()
	cands := make([][]policy.Policy, len(procs))
	var space int64 = 1
	for i, proc := range procs {
		cands[i] = candidatePolicies(p, proc.ID)
		if len(cands[i]) == 0 {
			return nil, fmt.Errorf("exact: process %v has no feasible policy", proc)
		}
		space *= int64(len(cands[i]))
		if space > maxDesigns {
			return nil, fmt.Errorf("exact: design space exceeds %d designs", maxDesigns)
		}
	}

	res := &Result{Cost: core.Cost{Tardiness: model.Infinity, Makespan: model.Infinity}}
	asgn := policy.Assignment{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(procs) {
			res.Designs++
			s, err := sched.Build(sched.Input{
				Graph:      merged,
				Arch:       p.Arch,
				WCET:       p.WCET,
				Faults:     p.Faults,
				Assignment: asgn,
				Bus:        bus,
				Options:    sched.Options{SlackSharing: opts.SlackSharing},
				Static:     static,
			})
			if err != nil {
				return err
			}
			c := core.Cost{Tardiness: s.Tardiness, Makespan: s.Makespan}
			if c.Less(res.Cost) {
				res.Cost = c
				res.Schedule = s
				res.Assignment = asgn.Clone()
			}
			return nil
		}
		for _, pol := range cands[i] {
			asgn[procs[i].ID] = pol
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(asgn, procs[i].ID)
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return res, nil
}

// candidatePolicies enumerates the canonical policy space of one
// process: every non-empty subset of its allowed nodes up to size k+1,
// with every way of choosing which replicas receive the extra
// re-executions when k+1 does not divide evenly. Pinned processes keep
// their fixed node in every subset; forced sets restrict the shapes.
func candidatePolicies(p core.Problem, id model.ProcID) []policy.Policy {
	k := p.Faults.K
	allowed := p.WCET.AllowedNodes(id)
	fixed, pinned := p.FixedMapping[id]

	maxR := k + 1
	if maxR > len(allowed) {
		maxR = len(allowed)
	}
	forceX := p.ForceReexecution[id]
	forceR := p.ForceReplication[id]

	var out []policy.Policy
	forEachSubset(allowed, maxR, func(nodes []arch.NodeID) {
		if pinned && !containsNode(nodes, fixed) {
			return
		}
		r := len(nodes)
		if forceX && r != 1 {
			return
		}
		if forceR && r != k+1 {
			return
		}
		total := k + 1
		if total < r {
			total = r
		}
		base := total / r
		extras := total % r
		forEachChoice(r, extras, func(extraIdx map[int]bool) {
			pol := policy.Policy{Replicas: make([]policy.Replica, r)}
			for i, n := range nodes {
				exec := base
				if extraIdx[i] {
					exec++
				}
				pol.Replicas[i] = policy.Replica{Node: n, Reexec: exec - 1}
			}
			out = append(out, pol)
		})
	})
	return out
}

func containsNode(nodes []arch.NodeID, n arch.NodeID) bool {
	for _, m := range nodes {
		if m == n {
			return true
		}
	}
	return false
}

// forEachSubset enumerates the non-empty subsets of nodes up to maxR
// elements, in ascending node order.
func forEachSubset(nodes []arch.NodeID, maxR int, visit func([]arch.NodeID)) {
	var cur []arch.NodeID
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 && len(cur) <= maxR {
			visit(cur)
		}
		if len(cur) == maxR {
			return
		}
		for i := start; i < len(nodes); i++ {
			cur = append(cur, nodes[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
}

// forEachChoice enumerates every way to pick `pick` indices out of n.
func forEachChoice(n, pick int, visit func(map[int]bool)) {
	if pick == 0 {
		visit(nil)
		return
	}
	chosen := map[int]bool{}
	var rec func(start, left int)
	rec = func(start, left int) {
		if left == 0 {
			visit(chosen)
			return
		}
		for i := start; i <= n-left; i++ {
			chosen[i] = true
			rec(i+1, left-1)
			delete(chosen, i)
		}
	}
	rec(0, pick)
}
