// Benchmark of the tabu search against the exact brute-force optimum on
// instances small enough to enumerate — an evaluation the paper could
// not run. Lives next to the exact optimizer because it is a substrate
// measurement; the experiment benchmarks at the module root use the
// public ftdse API.
package exact_test

import (
	"math/rand"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/exact"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
)

// BenchmarkOptimalityGap reports the average percentage gap of MXR's
// schedule length over the enumerated optimum.
func BenchmarkOptimalityGap(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		gap = 0
		const seeds = 5
		for seed := int64(0); seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p := randomTinyProblem(rng)
			ex, err := exact.Search(p, exact.Options{SlackSharing: true})
			if err != nil {
				b.Fatal(err)
			}
			opts := core.DefaultOptions(core.MXR)
			opts.MaxIterations = 200
			heur, err := core.Optimize(p, opts)
			if err != nil {
				b.Fatal(err)
			}
			gap += 100 * (float64(heur.Cost.Makespan) - float64(ex.Cost.Makespan)) /
				float64(ex.Cost.Makespan) / seeds
		}
	}
	b.ReportMetric(gap, "gap%")
}

func randomTinyProblem(rng *rand.Rand) core.Problem {
	app := model.NewApplication("tiny")
	g := app.AddGraph("G", model.Ms(1000000), model.Ms(1000000))
	procs := make([]*model.Process, 5)
	for i := range procs {
		procs[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			if rng.Intn(3) == 0 {
				g.AddEdge(procs[i], procs[j], 1+rng.Intn(4))
			}
		}
	}
	a := arch.New(2)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < 2; n++ {
			w.Set(p.ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(91))))
		}
	}
	return core.Problem{App: app, Arch: a, WCET: w, Faults: fault.Model{K: 1, Mu: model.Ms(5)}}
}
