package exact

import (
	"math/rand"
	"testing"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/fault"
	"repro/ftdse/internal/model"
)

func randomProblem(rng *rand.Rand, nProcs, nNodes, k int) core.Problem {
	app := model.NewApplication("rand")
	g := app.AddGraph("G", model.Ms(1000000), model.Ms(1000000))
	procs := make([]*model.Process, nProcs)
	for i := range procs {
		procs[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < nProcs; i++ {
		for j := i + 1; j < nProcs; j++ {
			if rng.Intn(4) == 0 {
				g.AddEdge(procs[i], procs[j], 1+rng.Intn(4))
			}
		}
	}
	a := arch.New(nNodes)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < nNodes; n++ {
			w.Set(p.ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(91))))
		}
	}
	return core.Problem{App: app, Arch: a, WCET: w, Faults: fault.Model{K: k, Mu: model.Ms(5)}}
}

func TestCandidatePolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 1, 3, 2)
	id := p.App.Processes()[0].ID
	cands := candidatePolicies(p, id)
	// 3 singletons (reexec 2) + 3 pairs × 2 extra-placements (3 execs
	// over 2 replicas) + 1 triple (even 1/1/1) = 3 + 6 + 1 = 10.
	if len(cands) != 10 {
		t.Fatalf("got %d candidates, want 10: %v", len(cands), cands)
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if err := c.Validate(p.Faults.K, p.WCET, id); err != nil {
			t.Errorf("candidate %v invalid: %v", c, err)
		}
		key := c.String()
		if seen[key] {
			t.Errorf("duplicate candidate %v", c)
		}
		seen[key] = true
	}
}

func TestCandidatePoliciesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomProblem(rng, 1, 3, 1)
	id := p.App.Processes()[0].ID

	p.ForceReexecution = map[model.ProcID]bool{id: true}
	for _, c := range candidatePolicies(p, id) {
		if c.ReplicaCount() != 1 {
			t.Errorf("P_X candidate %v not pure re-execution", c)
		}
	}
	p.ForceReexecution = nil
	p.ForceReplication = map[model.ProcID]bool{id: true}
	for _, c := range candidatePolicies(p, id) {
		if c.ReplicaCount() != 2 {
			t.Errorf("P_R candidate %v not k+1 replicas", c)
		}
	}
	p.ForceReplication = nil
	p.FixedMapping = map[model.ProcID]arch.NodeID{id: 1}
	for _, c := range candidatePolicies(p, id) {
		if !c.UsesNode(1) {
			t.Errorf("pinned candidate %v does not use node 1", c)
		}
	}
}

func TestSearchSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 4, 2, 1)
	res, err := Search(p, Options{SlackSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	// 2 singletons + 1 pair = 3 candidates per process, 4 processes.
	if res.Designs != 81 {
		t.Errorf("evaluated %d designs, want 81", res.Designs)
	}
	if res.Schedule == nil || res.Cost.Makespan <= 0 {
		t.Fatal("no best design")
	}
	if err := res.Assignment.Validate(res.Schedule.In.Graph, p.WCET, p.Faults.K); err != nil {
		t.Errorf("optimal assignment invalid: %v", err)
	}
}

func TestSearchRespectsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomProblem(rng, 10, 3, 2)
	if _, err := Search(p, Options{MaxDesigns: 100, SlackSharing: true}); err == nil {
		t.Error("search accepted a design space above the limit")
	}
}

// TestHeuristicNeverBeatsExact is the oracle test: the tabu search can
// never produce a better cost than exhaustive enumeration, and with a
// generous budget on tiny instances it should usually match it.
func TestHeuristicNeverBeatsExact(t *testing.T) {
	matched := 0
	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(10 + seed))
		p := randomProblem(rng, 5, 2, 1)
		ex, err := Search(p, Options{SlackSharing: true})
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions(core.MXR)
		opts.MaxIterations = 300
		heur, err := core.Optimize(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if heur.Cost.Less(ex.Cost) {
			t.Errorf("seed %d: heuristic %v beats exact %v — exact space incomplete",
				seed, heur.Cost, ex.Cost)
		}
		if !ex.Cost.Less(heur.Cost) {
			matched++
		} else {
			t.Logf("seed %d: gap %v vs %v", seed, heur.Cost, ex.Cost)
		}
	}
	if matched < seeds/2 {
		t.Errorf("tabu search matched the optimum on only %d of %d tiny instances", matched, seeds)
	}
}
