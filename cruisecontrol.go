package ftdse

import (
	"repro/ftdse/internal/ccapp"
)

// Cruise-controller constants of the paper's real-life example
// (Section 6): 32 processes on the ETM/ABS/TCM nodes, activated every
// CruiseControlPeriod with a CruiseControlDeadline, under k=2 transient
// faults with µ=2 ms recovery.
const (
	CruiseControlDeadline = ccapp.Deadline
	CruiseControlPeriod   = ccapp.Period
)

// CruiseControl reconstructs the paper's vehicle cruise-controller
// case study as a ready-to-solve Problem.
func CruiseControl() Problem { return Problem{core: ccapp.New()} }
