package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/ftdse"
	"repro/ftdse/obs"
)

// Node mode: a standalone ftdsed becomes a cluster solver node the
// moment a coordinator registers with it (POST /cluster/register).
// Registration only adds behavior — every standalone endpoint keeps
// working — and consists of an identity (the coordinator's name for
// this node), a push target, and a cadence: while a solve runs, the
// node pushes its latest incumbent design as a checkpoint document to
// the coordinator, so the search survives this process dying. The push
// loop is deliberately fire-and-forget (a dead coordinator costs a
// counter increment, never a slow solve): durability is the
// coordinator's job, the node only feeds it.

// defaultCheckpointInterval is the push cadence when the registration
// does not name one.
const defaultCheckpointInterval = time.Second

// clusterState is the node-mode identity, set by registration and read
// by the checkpoint push loops and /readyz.
type clusterState struct {
	mu          sync.Mutex
	node        string
	coordinator string
	interval    time.Duration
	client      *http.Client
}

func (c *clusterState) snapshot() (node, coordinator string, interval time.Duration, client *http.Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node, c.coordinator, c.interval, c.client
}

// clusterNode returns the registered node name ("" when standalone).
func (s *Service) clusterNode() string {
	s.cluster.mu.Lock()
	defer s.cluster.mu.Unlock()
	return s.cluster.node
}

// handleReady answers GET /readyz: 200 with Ready true when the node
// can accept new work right now (not draining, queue not full), 503
// with the same document otherwise. The body always carries the queue
// backlog and the registered node name, so the coordinator's health
// pass doubles as its load probe and its restart detector.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	depth := len(s.pending)
	draining := s.draining || s.closed
	s.mu.Unlock()
	st := ReadyStatus{
		Ready:          !draining && depth < s.cfg.QueueSize,
		Draining:       draining,
		QueueDepth:     depth,
		QueueCapacity:  s.cfg.QueueSize,
		SolvesInFlight: int(s.met.solvesInFlight.Value()),
		Node:           s.clusterNode(),
	}
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleRegister answers POST /cluster/register: the coordinator hands
// the node its cluster identity and the checkpoint push target. A later
// registration replaces the previous one, so a restarted (or replaced)
// coordinator heals on its first health pass.
func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Node == "" {
		writeError(w, errors.New("missing node name"))
		return
	}
	u, err := url.Parse(req.Coordinator)
	if err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, fmt.Errorf("invalid coordinator URL %q", req.Coordinator))
		return
	}
	interval := time.Duration(req.CheckpointMs * float64(time.Millisecond))
	if interval <= 0 {
		interval = defaultCheckpointInterval
	}
	s.cluster.mu.Lock()
	s.cluster.node = req.Node
	s.cluster.coordinator = u.String()
	s.cluster.interval = interval
	if s.cluster.client == nil {
		// Pushes must never outlive their usefulness: by the next tick a
		// fresher incumbent exists, so a stuck coordinator just drops
		// this one.
		s.cluster.client = &http.Client{Timeout: 10 * time.Second}
	}
	s.cluster.mu.Unlock()
	writeJSON(w, http.StatusOK, RegisterResponse{Node: req.Node})
}

// startCheckpoints launches the checkpoint push loop for one running
// job and returns its stop function. Standalone services (no
// registration) get a no-op. The loop snapshots the job's latest
// incumbent every interval and pushes it when it changed; it runs
// entirely off the solve goroutine, so a slow or dead coordinator never
// slows the search.
func (s *Service) startCheckpoints(j *job) (stop func()) {
	node, coordinator, interval, client := s.cluster.snapshot()
	if node == "" {
		return func() {}
	}
	// The solve owns j.problem until terminality; the loop keeps its own
	// handle so a push racing the job's conclusion still has the problem
	// to name processes and nodes with.
	prob := j.problem
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		pushed := -1
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			imp, seq, ok := j.latest()
			if !ok || seq == pushed || len(imp.Design) == 0 {
				continue
			}
			if s.pushCheckpoint(client, coordinator, node, j, prob, imp) {
				pushed = seq
			}
		}
	}()
	return func() { close(done); <-finished }
}

// pushCheckpoint encodes one incumbent as a checkpoint document and
// posts it to the coordinator, reporting success. Failures count and
// log (with the job's trace ID) but never slow the search: the next
// improvement brings the next push.
func (s *Service) pushCheckpoint(client *http.Client, coordinator, node string, j *job, prob ftdse.Problem, imp ftdse.Improvement) bool {
	fail := func(err error) bool {
		s.met.checkpointPushErrors.Inc()
		s.log.Warn("checkpoint push failed", obs.TraceIDKey, j.traceID,
			"job", j.id, "node", node, "error", err.Error())
		return false
	}
	ck, err := ftdse.NewCheckpoint(prob, j.fingerprint, imp)
	if err != nil {
		return fail(err)
	}
	var doc bytes.Buffer
	if err := ftdse.WriteCheckpoint(&doc, ck); err != nil {
		return fail(err)
	}
	body, err := json.Marshal(CheckpointPush{
		Node:        node,
		JobID:       j.id,
		Fingerprint: j.fingerprint,
		Checkpoint:  json.RawMessage(doc.Bytes()),
	})
	if err != nil {
		return fail(err)
	}
	req, err := http.NewRequest(http.MethodPost, coordinator+"/cluster/checkpoints", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, j.traceID)
	resp, err := client.Do(req)
	if err != nil {
		return fail(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("coordinator answered %s", resp.Status))
	}
	s.met.checkpointsPushed.Inc()
	return true
}
