package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/ftdse"
)

// job is one submitted solve. Its lifecycle is queued → running →
// {done, failed, canceled}; cache hits are born terminal. All mutable
// state is guarded by mu; terminality is additionally signaled by the
// done channel so waiters need not poll.
type job struct {
	id          string
	fingerprint string
	// traceID is the request identity of the submission that created the
	// job (immutable — later coalesced submissions share it). It tags
	// the job's log lines, SSE events, status and result.
	traceID string
	opts    SolveOptions // normalized
	problem ftdse.Problem
	// warm optionally seeds the solve with a prior incumbent (from a
	// checkpoint); it rides outside the fingerprint, see
	// SubmitRequest.WarmStart.
	warm      ftdse.Design
	submitted time.Time

	// ctx governs the solve; cancel fires on DELETE /jobs/{id}, on
	// wait-mode client disconnect, and on drain.
	ctx    context.Context //ftlint:allow boundary the job owns its solve's lifecycle; this ctx is born with the job and only handed down to the worker
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	cached   bool
	refs     int // submissions attached to this job (coalescing)
	started  *time.Time
	finished *time.Time
	events   []ProgressEvent
	lastImp  ftdse.Improvement // latest incumbent incl. design (checkpoint source)
	notify   chan struct{}     // closed and replaced on every event/transition
	done     chan struct{}     // closed once, on reaching a terminal state
	result   []byte            // encoded JobResult, set at terminality when available
	errMsg   string
}

func newJob(id, fp, traceID string, opts SolveOptions, p ftdse.Problem) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id:          id,
		fingerprint: fp,
		traceID:     traceID,
		opts:        opts,
		problem:     p,
		submitted:   time.Now(),
		ctx:         ctx,
		cancel:      cancel,
		state:       StateQueued,
		notify:      make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// newCachedJob creates a job already completed from a cached result.
func newCachedJob(id, fp, traceID string, opts SolveOptions, body []byte) *job {
	j := newJob(id, fp, traceID, opts, ftdse.Problem{})
	j.cancel()
	now := time.Now()
	j.mu.Lock()
	j.state = StateDone
	j.cached = true
	j.finished = &now
	j.result = body
	close(j.done)
	j.mu.Unlock()
	return j
}

// attach records one more submission sharing this job (identical
// in-flight submissions coalesce onto one solve).
func (j *job) attach() {
	j.mu.Lock()
	j.refs++
	j.mu.Unlock()
}

// release drops one submission's interest — a ?wait=1 client that
// disconnected — and reports whether no interest remains, in which case
// the caller should cancel the solve.
func (j *job) release() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.refs--
	return j.refs <= 0
}

// wake closes and replaces the notify channel; callers hold mu.
func (j *job) wakeLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// run marks the job running; it reports false when the job already left
// the queued state (e.g. canceled while queued).
func (j *job) run() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	now := time.Now()
	j.state = StateRunning
	j.started = &now
	j.wakeLocked()
	return true
}

// publish appends one incumbent to the event history and wakes
// subscribers. It runs synchronously on the search goroutine (the
// WithProgress contract), so it only appends and signals.
func (j *job) publish(imp ftdse.Improvement) {
	ev := ProgressEvent{
		Phase:       imp.Phase,
		Iteration:   imp.Iteration,
		MakespanMs:  imp.Cost.Makespan.Milliseconds(),
		TardinessMs: imp.Cost.Tardiness.Milliseconds(),
		Schedulable: imp.Schedulable,
		ElapsedMs:   float64(imp.Elapsed) / float64(time.Millisecond),
		TraceID:     j.traceID,
	}
	j.mu.Lock()
	j.events = append(j.events, ev)
	// The observer owns imp.Design (a private clone), so retaining it
	// for the checkpoint loop is safe.
	j.lastImp = imp
	j.wakeLocked()
	j.mu.Unlock()
}

// latest snapshots the newest incumbent for the checkpoint push loop:
// the improvement, a sequence number (the event count) to dedupe
// pushes, and whether any incumbent exists yet.
func (j *job) latest() (ftdse.Improvement, int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastImp, len(j.events), len(j.events) > 0
}

// finish moves the job to a terminal state exactly once, reporting
// whether this call made the transition; later calls are no-ops (e.g. a
// cancel racing the worker's own completion).
func (j *job) finish(state string, result []byte, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if TerminalState(j.state) {
		return false
	}
	j.finishLocked(state, result, errMsg)
	return true
}

// finishQueued cancels a job that never left the queue, reporting
// whether it was still queued (running jobs are finished by their
// worker instead). It shares finish's terminal transition, so the two
// paths cannot drift.
func (j *job) finishQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.finishLocked(StateCanceled, nil, "")
	return true
}

// finishLocked is the single terminal transition; callers hold mu and
// have checked the current state.
func (j *job) finishLocked(state string, result []byte, errMsg string) {
	now := time.Now()
	j.state = state
	j.finished = &now
	j.result = result
	j.errMsg = errMsg
	// The solve has consumed the problem; drop it so retained terminal
	// jobs (up to Config.MaxJobs) hold only their result bytes.
	j.problem = ftdse.Problem{}
	close(j.done)
	j.wakeLocked()
}

// terminal reports whether the job reached a terminal state.
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// status snapshots the public view.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:           j.id,
		State:        j.state,
		Fingerprint:  j.fingerprint,
		TraceID:      j.traceID,
		Cached:       j.cached,
		Improvements: len(j.events),
		SubmittedAt:  j.submitted,
		StartedAt:    j.started,
		FinishedAt:   j.finished,
		Error:        j.errMsg,
		Result:       json.RawMessage(j.result),
	}
}

// follow snapshots the events not yet seen by a subscriber positioned
// at from, together with the channel that will signal the next change
// and whether the job is already terminal.
func (j *job) follow(from int) (news []ProgressEvent, next chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		news = append(news, j.events[from:]...)
	}
	return news, j.notify, TerminalState(j.state)
}
