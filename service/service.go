// Package service is the embeddable ftdsed solve service: an HTTP API
// that runs the ftdse optimizer behind a bounded job queue and worker
// pool, streams incumbent solutions to clients while the search runs,
// and answers repeated submissions of the same problem from an LRU
// result cache keyed by a canonical problem fingerprint.
//
// The API (all bodies JSON; see wire.go for the exact types):
//
//	POST   /solve            submit one problem; 202 queued, 200 on a
//	                         cache hit, 429 + Retry-After when the queue
//	                         is full. A submission identical to an
//	                         in-flight one coalesces onto that job (same
//	                         id): solves are deterministic per
//	                         fingerprint, so one solve answers them all.
//	                         ?wait=1 blocks until the job is terminal;
//	                         if the client disconnects first the job is
//	                         canceled unless other submissions share it.
//	POST   /solve/batch      submit several problems atomically: either
//	                         every non-cached job is enqueued or the
//	                         whole batch is rejected with 429.
//	GET    /jobs/{id}        job status (result embedded once terminal).
//	DELETE /jobs/{id}        cancel (for every client attached to the
//	                         job); a running solve stops within one
//	                         scheduling pass and the answer carries the
//	                         terminal status with its best-so-far design.
//	GET    /jobs/{id}/events SSE stream: one "improvement" event per
//	                         incumbent solution, then a closing "done"
//	                         event carrying the final JobStatus.
//	GET    /metrics          Prometheus text exposition (queue depth,
//	                         cache hit rate, solve latency and queue
//	                         wait histograms…); the legacy expvar JSON
//	                         view stays available through Vars() (the
//	                         daemon publishes it at /debug/vars).
//	GET    /healthz          liveness ("ok", or 503 while draining).
//	GET    /readyz           readiness: 200 when the queue has room and
//	                         the service is not draining, 503 otherwise;
//	                         the JSON body carries the backlog and the
//	                         cluster node name (see cluster.go).
//	POST   /cluster/register node mode: a coordinator registers itself;
//	                         the service then pushes periodic search
//	                         checkpoints of running solves to it.
//
// A submission may carry a warm start (a checkpoint document from a
// previous solve); see SubmitRequest.WarmStart.
//
// Everything is stdlib-only. Use New + Handler to embed the service in
// any mux; cmd/ftdsed wraps it in a daemon. The cluster package builds
// the sharded coordinator on top of this API.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/ftdse"
	"repro/ftdse/obs"
)

// Config tunes a Service. The zero value selects sensible defaults.
type Config struct {
	// QueueSize bounds the jobs waiting for a worker; submissions beyond
	// it are rejected with 429 (default 64).
	QueueSize int
	// PoolWorkers is the number of concurrent solves (default
	// runtime.GOMAXPROCS(0)). Each solve may itself use
	// SolveOptions.Workers goroutines for move evaluation.
	PoolWorkers int
	// CacheSize bounds the LRU result cache entries (default 128;
	// negative disables caching).
	CacheSize int
	// MaxJobs bounds the terminal jobs retained for status queries;
	// the oldest are forgotten first (default 4096).
	MaxJobs int
	// MaxTimeLimit, when positive, caps the per-request time limit so a
	// client cannot occupy a worker forever (0 = uncapped).
	MaxTimeLimit time.Duration
	// Logger receives the service's structured log records (job
	// lifecycle, backpressure rejections, checkpoint push failures),
	// each tagged with the job's trace ID. nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.PoolWorkers <= 0 {
		c.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Service is a concurrent solve service. Create with New, mount
// Handler, and Close to drain.
type Service struct {
	cfg     Config
	solver  *ftdse.Solver // shared base; per-job variants derived With()
	cache   *resultCache
	met     *metrics
	vars    *expvar.Map
	log     *slog.Logger
	cluster clusterState // node-mode identity (set by registration)

	mu       sync.Mutex // guards pending, jobs, inflight, retired, closed
	workCond *sync.Cond // signaled on new pending work and on Close
	pending  []*job     // the job queue, oldest first (bounded by cfg.QueueSize)
	jobs     map[string]*job
	inflight map[string]*job // fingerprint → non-terminal solve (coalescing)
	retired  []string        // terminal job ids, oldest first
	closed   bool
	draining bool

	nextID uint64
	wg     sync.WaitGroup
}

// New starts a service: the worker pool begins consuming the queue
// immediately.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		solver:   ftdse.NewSolver(),
		cache:    newResultCache(cfg.CacheSize),
		log:      cfg.Logger,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
	}
	if s.log == nil {
		s.log = obs.Discard()
	}
	s.workCond = sync.NewCond(&s.mu)
	s.met = newMetrics(s.queueDepth, cfg.QueueSize, s.cache.len)
	s.vars = s.met.expvarMap(s.queueDepth, cfg.QueueSize, s.cache.len, s.clusterNode)
	s.wg.Add(cfg.PoolWorkers)
	for i := 0; i < cfg.PoolWorkers; i++ {
		go s.worker()
	}
	return s
}

func (s *Service) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Vars returns the service's metrics as an expvar.Map, suitable for
// expvar.Publish in a daemon.
func (s *Service) Vars() *expvar.Map { return s.vars }

// Close drains the service: new submissions are rejected with 503,
// running solves are canceled — each completes within one scheduling
// pass and keeps its best-so-far design as its result — queued jobs
// that never started are marked canceled, and Close returns when every
// worker has exited or ctx fires.
//
//ftdse:shutdown
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	var never []*job
	if !s.closed {
		s.closed = true
		s.draining = true
		never, s.pending = s.pending, nil
	}
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j) //ftlint:allow determinism drain cancels every job; cancellation order is immaterial
	}
	s.mu.Unlock()
	s.workCond.Broadcast()

	// Queued jobs that never started have no best-so-far to return.
	for _, j := range never {
		s.conclude(j, StateCanceled, nil, "service shutting down before the job started")
	}
	for _, j := range jobs {
		j.cancel()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker consumes the queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.workCond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one queued job end to end.
func (s *Service) runJob(j *job) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		// Popped just as the drain began: never started, no best-so-far.
		s.conclude(j, StateCanceled, nil, "service shutting down before the job started")
		return
	}
	if !j.run() {
		// Canceled between the pop and here; cancelJob concluded it.
		return
	}

	queueWait := time.Since(j.submitted)
	s.met.observeQueueWait(queueWait)
	s.met.solvesInFlight.Add(1)
	s.met.solvesTotal.Inc()
	s.met.engines.With(j.opts.Engine).Inc()
	s.log.Info("solve started", obs.TraceIDKey, j.traceID, "job", j.id,
		"fingerprint", j.fingerprint, "engine", j.opts.Engine,
		"queue_wait_ms", durMs(queueWait))
	opts := append(j.opts.solverOptions(), ftdse.WithProgress(j.publish))
	if len(j.warm) > 0 {
		opts = append(opts, ftdse.WithWarmStart(j.warm))
		s.met.warmStarts.Inc()
	}
	stopCk := s.startCheckpoints(j)
	start := time.Now()
	solver := s.solver.With(opts...)
	res, err := solver.Solve(j.ctx, j.problem)
	stopCk()
	solveDur := time.Since(start)
	s.met.solvesInFlight.Add(-1)
	s.met.observeSolve(solveDur)

	if err != nil {
		s.log.Warn("solve failed", obs.TraceIDKey, j.traceID, "job", j.id, "error", err.Error())
		s.conclude(j, StateFailed, nil, err.Error())
		return
	}
	node := s.clusterNode()
	spans := []obs.Span{
		{Name: "queue_wait", StartMs: 0, DurationMs: durMs(queueWait), Node: node},
		{Name: "solve", StartMs: durMs(queueWait), DurationMs: durMs(solveDur), Node: node},
	}
	body, encErr := encodeResult(res, j.traceID, spans)
	if encErr != nil {
		s.conclude(j, StateFailed, nil, encErr.Error())
		return
	}
	s.log.Info("solve finished", obs.TraceIDKey, j.traceID, "job", j.id,
		"stopped", res.Stopped.String(), "schedulable", res.Schedulable(),
		"solve_ms", durMs(solveDur))
	if res.Stopped == ftdse.StopCanceled {
		// Anytime contract: a canceled job still carries its
		// best-so-far design, but a truncated search must not poison
		// the cache.
		s.conclude(j, StateCanceled, body, "")
	} else {
		// Completed and time-limited runs are cached: the fingerprint
		// includes the budget, so a budget-bound result is the answer
		// to exactly that budgeted question. The put precedes conclude
		// so an identical submission always finds either the in-flight
		// job or the cached result, never a gap between them.
		s.cache.put(j.fingerprint, body)
		s.conclude(j, StateDone, body, "")
	}
}

// conclude moves a job to a terminal state, removes it from the
// in-flight index (so identical submissions stop coalescing onto it),
// and retires it. Safe to call on an already-terminal job.
func (s *Service) conclude(j *job, state string, result []byte, errMsg string) {
	first := j.finish(state, result, errMsg)
	s.mu.Lock()
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	if first {
		s.retireLocked(j)
	}
	s.mu.Unlock()
}

// durMs renders a duration in float milliseconds (the wire convention).
func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// encodeResult renders a solver result as the wire JobResult document,
// carrying the executing request's trace identity and server-side spans
// (and the flight-recorder trace when the job asked for one).
func encodeResult(res *ftdse.Result, traceID string, spans []obs.Span) ([]byte, error) {
	var sched bytes.Buffer
	if err := ftdse.WriteSchedule(&sched, res.Schedule); err != nil {
		return nil, fmt.Errorf("service: encoding schedule: %w", err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, sched.Bytes()); err != nil {
		return nil, fmt.Errorf("service: compacting schedule: %w", err)
	}
	jr := JobResult{
		Strategy:    res.Strategy.String(),
		Engine:      res.Engine,
		Schedulable: res.Schedulable(),
		MakespanMs:  res.Cost.Makespan.Milliseconds(),
		TardinessMs: res.Cost.Tardiness.Milliseconds(),
		Iterations:  res.Iterations,
		ElapsedMs:   float64(res.Elapsed) / float64(time.Millisecond),
		Stopped:     res.Stopped.String(),
		TraceID:     traceID,
		Spans:       spans,
		Schedule:    json.RawMessage(compact.Bytes()),
	}
	if res.Trace != nil {
		var tr bytes.Buffer
		if err := ftdse.WriteTrace(&tr, res.Trace); err != nil {
			return nil, fmt.Errorf("service: encoding trace: %w", err)
		}
		jr.TraceJSONL = tr.String()
	}
	return json.Marshal(jr)
}

// Submission errors surfaced to the HTTP layer.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("service draining")
)

// submitErr wraps a submission failure with its HTTP classification;
// queue-full rejections additionally carry the fingerprint that needed
// the unavailable slot and the backlog at rejection time.
type submitErr struct {
	code        int
	retryAfter  time.Duration
	fingerprint string
	queueDepth  int
	err         error
}

func (e *submitErr) Error() string { return e.err.Error() }

// prepare validates one request and computes its fingerprint. The
// request's trace ID is validated (or minted when absent), so every
// admitted submission is traceable.
func (s *Service) prepare(req SubmitRequest) (prepared, error) {
	opts, err := req.Options.normalized()
	if err != nil {
		return prepared{}, err
	}
	traceID := req.TraceID
	switch {
	case traceID == "":
		traceID = obs.NewTraceID()
	case !obs.ValidTraceID(traceID):
		return prepared{}, fmt.Errorf("invalid trace id %q", traceID)
	}
	if s.cfg.MaxTimeLimit > 0 && (opts.timeLimit() <= 0 || opts.timeLimit() > s.cfg.MaxTimeLimit) {
		opts.TimeLimitMs = float64(s.cfg.MaxTimeLimit) / float64(time.Millisecond)
	}
	if len(req.Problem) == 0 {
		return prepared{}, errors.New("missing problem document")
	}
	prob, err := ftdse.ReadProblem(bytes.NewReader(req.Problem))
	if err != nil {
		return prepared{}, err
	}
	fp, err := Fingerprint(prob, opts)
	if err != nil {
		return prepared{}, err
	}
	p := prepared{opts: opts, problem: prob, fp: fp, traceID: traceID}
	if len(req.WarmStart) > 0 {
		// A malformed checkpoint is a client bug (reject); one that
		// parses but does not fit this problem is a stale best-effort
		// hint (ignore) — the warm-start contract of WithWarmStart.
		ck, err := ftdse.ReadCheckpoint(bytes.NewReader(req.WarmStart))
		if err != nil {
			return prepared{}, fmt.Errorf("warm start: %w", err)
		}
		if d, err := ftdse.CheckpointDesign(prob, ck); err == nil {
			p.warm = d
		}
	}
	return p, nil
}

// submit enqueues one prepared request (or answers it from the cache).
func (s *Service) submit(req SubmitRequest) (*job, error) {
	p, err := s.prepare(req)
	if err != nil {
		return nil, &submitErr{code: http.StatusBadRequest, err: err}
	}
	jobs, err := s.enqueue([]prepared{p})
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// prepared is one validated submission ready to enqueue.
type prepared struct {
	opts    SolveOptions
	problem ftdse.Problem
	fp      string
	traceID string       // request identity (minted when the client sent none)
	warm    ftdse.Design // optional warm start (outside the fingerprint)
}

// enqueue atomically admits a set of prepared submissions: cache hits
// are answered in place, submissions whose fingerprint is already in
// flight coalesce onto the existing job (same id — solves are
// deterministic per fingerprint, so one solve answers them all), and
// either every genuinely new job fits the queue or the whole set is
// rejected with queue-full (backpressure is all-or-nothing so a batch
// cannot be half-admitted).
func (s *Service) enqueue(reqs []prepared) ([]*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return nil, &submitErr{code: http.StatusServiceUnavailable, err: errDraining}
	}
	// Pass 1: cache and in-flight lookups and the queue-capacity check
	// for the rest — no metrics, IDs, or registrations yet, so a
	// rejected batch leaves no trace beyond its rejection count.
	bodies := make([][]byte, len(reqs))
	shared := make([]*job, len(reqs))
	fresh := make(map[string]struct{})
	need := 0
	firstFresh := ""
	for i, r := range reqs {
		if body, ok := s.cache.get(r.fp); ok {
			bodies[i] = body
			continue
		}
		// Coalesce only onto jobs not already canceled: a submission
		// arriving after a cancel deserves a fresh solve, not the
		// winding-down job's truncated result.
		if j := s.inflight[r.fp]; j != nil && j.ctx.Err() == nil {
			shared[i] = j
			continue
		}
		if _, dup := fresh[r.fp]; dup {
			continue // coalesces onto its batch-mate in pass 2
		}
		fresh[r.fp] = struct{}{}
		if firstFresh == "" {
			firstFresh = r.fp
		}
		need++
	}
	if need > s.cfg.QueueSize-len(s.pending) {
		// Only the jobs that needed queue space count as rejected: the
		// batch's cache hits and coalesced submissions were answerable.
		s.met.jobsRejected.Add(int64(need))
		s.log.Warn("job queue full", "fingerprint", firstFresh,
			"queue_depth", len(s.pending), "rejected", need)
		return nil, &submitErr{
			code:        http.StatusTooManyRequests,
			retryAfter:  s.retryAfterLocked(),
			fingerprint: firstFresh,
			queueDepth:  len(s.pending),
			err:         errQueueFull,
		}
	}
	// Pass 2: count, register and enqueue — all under the same lock as
	// the capacity check, so admission is atomic.
	jobs := make([]*job, len(reqs))
	for i, r := range reqs {
		switch {
		case bodies[i] != nil:
			s.met.cacheHits.Inc()
			j := newCachedJob(s.newIDLocked(), r.fp, r.traceID, r.opts, bodies[i])
			jobs[i] = j
			s.jobs[j.id] = j
			s.retireLocked(j)
			continue
		case shared[i] != nil:
			s.met.jobsCoalesced.Inc()
			jobs[i] = shared[i]
		case s.inflight[r.fp] != nil: // batch-mate created below
			s.met.jobsCoalesced.Inc()
			jobs[i] = s.inflight[r.fp]
		default:
			s.met.cacheMisses.Inc()
			s.met.jobsSubmitted.Inc()
			j := newJob(s.newIDLocked(), r.fp, r.traceID, r.opts, r.problem)
			// When identical submissions coalesce, the first one's warm
			// start wins: later hints could only steer the same
			// deterministic search from a different (never worse for the
			// submitter) starting point, and a job must not change under
			// clients already attached to it.
			j.warm = r.warm
			jobs[i] = j
			s.jobs[j.id] = j
			s.inflight[r.fp] = j
			s.pending = append(s.pending, j)
			s.workCond.Signal()
		}
		jobs[i].attach()
	}
	return jobs, nil
}

// retireLocked is retire for callers already holding mu.
func (s *Service) retireLocked(j *job) {
	s.retired = append(s.retired, j.id)
	for len(s.jobs) > s.cfg.MaxJobs && len(s.retired) > 0 {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

func (s *Service) newIDLocked() string {
	s.nextID++
	return fmt.Sprintf("j%06d", s.nextID)
}

// retryAfterLocked estimates when queue space should free up: the
// median solve latency (from the latency histogram) times the jobs
// ahead per worker, clamped to [1s, 60s].
func (s *Service) retryAfterLocked() time.Duration {
	p50 := s.met.solveLatency.Quantile(0.50)
	est := time.Duration(p50 * float64(len(s.pending)) / float64(s.cfg.PoolWorkers) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /solve/batch", s.handleBatch)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("POST /cluster/register", s.handleRegister)
	return mux
}

// maxBody bounds request bodies (problem documents are small).
const maxBody = 16 << 20

// writeJSON emits a compact response. Compactness is load-bearing for
// the cache contract: an embedded json.RawMessage result passes through
// encoding byte-for-byte only when no re-indentation happens, keeping
// REST answers and the SSE "done" event (also compact) identical.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var se *submitErr
	if errors.As(err, &se) {
		resp := ErrorResponse{Error: se.err.Error()}
		if se.code == http.StatusTooManyRequests {
			secs := int(se.retryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			resp.RetryAfterS = secs
			resp.Fingerprint = se.fingerprint
			resp.QueueDepth = se.queueDepth
		}
		writeJSON(w, se.code, resp)
		return
	}
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	// The Ftdse-Trace-Id header is the out-of-band carrier of the same
	// identity; an explicit body field wins.
	if req.TraceID == "" {
		req.TraceID = r.Header.Get(obs.TraceHeader)
	}
	j, err := s.submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	// Echo the solve's trace identity so callers that let the server
	// mint it can pick it up without parsing the body.
	w.Header().Set(obs.TraceHeader, j.traceID)
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait && !j.terminal() {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Cancel-on-disconnect (or client deadline): drop this
			// submission's interest, and stop the solve only when no
			// other submission coalesced onto the job — other clients
			// still want its result. Nobody reads the response of a
			// disconnected request, so return without writing one.
			if j.release() {
				s.cancelJob(j)
			}
			return
		}
	}
	code := http.StatusAccepted
	if j.terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, j.status())
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, errors.New("empty batch"))
		return
	}
	preps := make([]prepared, len(req.Jobs))
	for i, jr := range req.Jobs {
		p, err := s.prepare(jr)
		if err != nil {
			writeError(w, fmt.Errorf("batch job %d: %w", i, err))
			return
		}
		preps[i] = p
	}
	jobs, err := s.enqueue(preps)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := BatchResponse{Jobs: make([]JobStatus, len(jobs))}
	for i, j := range jobs {
		resp.Jobs[i] = j.status()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// lookup resolves {id}, answering 404 itself when absent.
func (s *Service) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown job " + r.PathValue("id")})
	}
	return j
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// cancelJob cancels a job's context and immediately finishes it when it
// never started running (a running job is finished by its worker).
func (s *Service) cancelJob(j *job) {
	j.cancel()
	// Stop answering identical submissions from this job right away,
	// even while a running solve winds down to its terminal state.
	s.mu.Lock()
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	s.mu.Unlock()
	if j.finishQueued() {
		s.mu.Lock()
		// Drop the dead entry so its queue slot frees up immediately
		// (it may already be gone if a worker popped it concurrently).
		for i, p := range s.pending {
			if p == j {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		s.retireLocked(j)
		s.mu.Unlock()
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.cancelJob(j)
	// A canceled solve reaches a terminal state within one scheduling
	// pass; wait for that so the answer carries the final state and the
	// best-so-far result, not a still-running snapshot. The client's own
	// request timeout bounds the wait.
	select {
	case <-j.done:
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's incumbents as Server-Sent Events: the
// full history first (late subscribers replay every improvement), then
// live events, then one closing "done" event with the final status.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{Error: "streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	seen := 0
	for {
		news, next, terminal := j.follow(seen)
		for _, ev := range news {
			writeSSE(w, "improvement", ev)
		}
		seen += len(news)
		if terminal {
			writeSSE(w, "done", j.status())
			fl.Flush()
			return
		}
		fl.Flush()
		select {
		case <-next:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event; data is marshaled compactly so it stays a
// single data: line.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"encoding event"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleMetrics serves the Prometheus text exposition. The legacy
// expvar JSON view remains available through Vars() — cmd/ftdsed
// publishes it at /debug/vars.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.met.reg.WriteText(w)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
