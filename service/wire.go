package service

import (
	"encoding/json"
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/ftdse"
	"repro/ftdse/obs"
)

// This file defines the wire format of the ftdsed HTTP API. The types
// are shared verbatim by the server and the typed client package, so
// the two cannot drift apart.

// SolveOptions is the per-request solver configuration. The zero value
// selects the solver defaults (MXR, size-dependent budget, slack
// sharing on). All durations are given in milliseconds, matching the
// problem document's convention.
//
//ftdse:wire
type SolveOptions struct {
	// Strategy names the optimization strategy ("mxr", "mx", "mr",
	// "sfx", "nft", case-insensitive); empty selects "mxr".
	Strategy string `json:"strategy,omitempty"`
	// Engine names the search engine (one of ftdse.Engines():
	// "default", "greedy", "tabu", "sa", "portfolio",
	// case-insensitive); empty selects "default", the paper's
	// greedy→tabu pipeline.
	Engine string `json:"engine,omitempty"`
	// Seed seeds stochastic engines ("sa", and the "sa" racer of
	// "portfolio"); 0 selects the fixed seed 1, so results are
	// deterministic — and cacheable — either way.
	Seed int64 `json:"seed,omitempty"`
	// MaxIterations bounds the tabu search; <= 0 selects a
	// problem-size-dependent default.
	MaxIterations int `json:"max_iterations,omitempty"`
	// TimeLimitMs bounds the solve; <= 0 means no limit. It doubles as
	// the client deadline: the job's context expires when it elapses and
	// the job completes with its best-so-far design.
	TimeLimitMs float64 `json:"time_limit_ms,omitempty"`
	// Workers bounds the concurrent move evaluations inside the solve;
	// 0 uses all CPUs. Untimed results are identical for every value.
	Workers int `json:"workers,omitempty"`
	// BusOptimization enables the final TDMA slot-order hill climbing.
	BusOptimization bool `json:"bus_optimization,omitempty"`
	// Checkpointing enables checkpoint-count moves (the reproduction's
	// extension); MaxCheckpoints caps checkpoints per replica.
	Checkpointing  bool `json:"checkpointing,omitempty"`
	MaxCheckpoints int  `json:"max_checkpoints,omitempty"`
	// StopWhenSchedulable stops at the first design meeting all
	// deadlines instead of minimizing the schedule length.
	StopWhenSchedulable bool `json:"stop_when_schedulable,omitempty"`
	// SlackSharing toggles the shared re-execution slack; nil means the
	// default (on).
	SlackSharing *bool `json:"slack_sharing,omitempty"`
	// TabuTenure sets the tabu tenure; <= 0 selects the default.
	TabuTenure int `json:"tabu_tenure,omitempty"`
	// FlightRecorder enables the search flight recorder: the JobResult
	// then carries the run's trace as a JSONL document (render with
	// fttrace). Part of the fingerprint — a traced job never coalesces
	// with (or answers from the cache of) an untraced one, because their
	// result documents differ.
	FlightRecorder bool `json:"flight_recorder,omitempty"`
}

// normalized returns the options with defaults applied and negative
// knobs clamped, validating the strategy name. Normalization runs
// before fingerprinting, so equivalent spellings of a request ("",
// "mxr" and "MXR"; -1 and 0 iterations) share one cache entry.
func (o SolveOptions) normalized() (SolveOptions, error) {
	if o.Strategy == "" {
		o.Strategy = "mxr"
	}
	s, err := ftdse.ParseStrategy(o.Strategy)
	if err != nil {
		return o, err
	}
	o.Strategy = strings.ToLower(s.String())
	if o.Engine == "" {
		o.Engine = "default"
	}
	if _, err := ftdse.ParseEngine(o.Engine); err != nil {
		return o, err
	}
	o.Engine = strings.ToLower(o.Engine)
	// The seed only matters to stochastic engines, and for those 0 is
	// documented to select the fixed seed 1 — collapse both facts so
	// provably identical requests share one cache entry.
	if stochasticEngine(o.Engine) {
		if o.Seed == 0 {
			o.Seed = 1
		}
	} else {
		o.Seed = 0
	}
	if o.MaxIterations < 0 {
		o.MaxIterations = 0
	}
	if o.TimeLimitMs < 0 {
		o.TimeLimitMs = 0
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.MaxCheckpoints < 0 {
		o.MaxCheckpoints = 0
	}
	if o.TabuTenure < 0 {
		o.TabuTenure = 0
	}
	if o.SlackSharing == nil {
		on := true
		o.SlackSharing = &on
	}
	return o, nil
}

// timeLimit converts TimeLimitMs to a duration.
func (o SolveOptions) timeLimit() time.Duration {
	return time.Duration(o.TimeLimitMs * float64(time.Millisecond))
}

// solverOptions lowers normalized options to ftdse functional options.
func (o SolveOptions) solverOptions() []ftdse.Option {
	strat, _ := ftdse.ParseStrategy(o.Strategy)
	eng, _ := ftdse.ParseEngine(o.Engine)
	out := []ftdse.Option{
		ftdse.WithStrategy(strat),
		ftdse.WithEngine(eng),
		ftdse.WithSeed(o.Seed),
		ftdse.WithMaxIterations(o.MaxIterations),
		ftdse.WithTimeLimit(o.timeLimit()),
		ftdse.WithWorkers(o.Workers),
		ftdse.WithBusOptimization(o.BusOptimization),
		ftdse.WithCheckpointing(o.Checkpointing),
		ftdse.WithMaxCheckpoints(o.MaxCheckpoints),
		ftdse.WithStopWhenSchedulable(o.StopWhenSchedulable),
		ftdse.WithSlackSharing(*o.SlackSharing),
		ftdse.WithTabuTenure(o.TabuTenure),
	}
	if o.FlightRecorder {
		out = append(out, ftdse.WithFlightRecorder(ftdse.DefaultFlightRecorderEvents))
	}
	return out
}

// stochasticEngine reports whether the (normalized) engine name draws
// from the seed; the fact lives on the facade (ftdse.StochasticEngines)
// so it cannot drift from ParseEngine.
func stochasticEngine(name string) bool {
	return slices.Contains(ftdse.StochasticEngines(), name)
}

// canonical renders normalized options as the fixed-order string mixed
// into the problem fingerprint. Workers is normalized to 0 for untimed
// requests: without a time limit the result is identical for every
// worker count (the solver's determinism contract), so those requests
// share a cache entry. The one exception is a portfolio race with
// StopWhenSchedulable: the first schedulable incumbent cancels the
// race mid-flight, so the outcome is timing-dependent — like a timed
// run — and the worker count stays in the key rather than coalescing
// requests whose answers may legitimately differ.
func (o SolveOptions) canonical() string {
	w := o.Workers
	if o.TimeLimitMs == 0 && !(o.StopWhenSchedulable && o.Engine == "portfolio") {
		w = 0
	}
	// The limit is keyed at full nanosecond resolution: a sub-microsecond
	// TimeLimitMs is still a real (immediately truncating) budget and
	// must never collide with the untimed request's key.
	return fmt.Sprintf(
		"strategy=%s;engine=%s;seed=%d;iters=%d;limit_ns=%d;workers=%d;bus=%t;ckpt=%t;maxckpt=%d;stopsched=%t;slack=%t;tenure=%d;flight=%t",
		o.Strategy, o.Engine, o.Seed, o.MaxIterations, o.timeLimit().Nanoseconds(), w,
		o.BusOptimization, o.Checkpointing, o.MaxCheckpoints,
		o.StopWhenSchedulable, *o.SlackSharing, o.TabuTenure, o.FlightRecorder)
}

// SubmitRequest is the body of POST /solve: the problem document (the
// ftdse.WriteProblem JSON format) plus the solver configuration.
//
//ftdse:wire
type SubmitRequest struct {
	Problem json.RawMessage `json:"problem"`
	Options SolveOptions    `json:"options"`
	// TraceID propagates a caller-minted request identity end to end:
	// it appears in the service's logs, the job's SSE events and status,
	// and (through the coordinator) the cluster journal. Empty means the
	// server mints one; the Ftdse-Trace-Id header is an equivalent
	// carrier for single submissions. When identical submissions
	// coalesce, the first one's trace ID identifies the shared solve.
	TraceID string `json:"trace_id,omitempty"`
	// WarmStart optionally carries a checkpoint document (the
	// ftdse.WriteCheckpoint JSON format) whose design seeds the solve:
	// the result never costs more than a warm start that fits the
	// problem, and one that does not fit is skipped silently. The warm
	// start is deliberately NOT part of the job fingerprint. That keeps
	// coalescing and caching working across failover — a resubmission
	// carrying a checkpoint coalesces with (and answers) plain
	// duplicates of the same problem, and an identical later submission
	// is a cache hit — at the price that a warm-started result may
	// reflect a different (never worse) search trajectory than a cold
	// solve of the same fingerprint. DESIGN.md §13 spells out the trade.
	WarmStart json.RawMessage `json:"warm_start,omitempty"`
}

// BatchRequest is the body of POST /solve/batch.
//
//ftdse:wire
type BatchRequest struct {
	Jobs []SubmitRequest `json:"jobs"`
}

// BatchResponse answers a batch submission; Jobs aligns 1:1 with the
// request.
//
//ftdse:wire
type BatchResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// Job states reported in JobStatus.State. Done, failed and canceled are
// terminal.
//
//ftdse:wire job-states
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// TerminalState reports whether a job state is terminal.
func TerminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobStatus is the public view of a job, returned by submissions,
// GET /jobs/{id}, DELETE /jobs/{id} and the closing SSE event.
//
//ftdse:wire
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// TraceID is the job's request identity (see SubmitRequest.TraceID).
	TraceID string `json:"trace_id,omitempty"`
	// Cached marks a submission answered from the result cache without
	// re-solving.
	Cached bool `json:"cached,omitempty"`
	// Improvements counts the incumbent solutions found so far (the
	// events delivered on the job's SSE stream).
	Improvements int        `json:"improvements"`
	SubmittedAt  time.Time  `json:"submitted_at"`
	StartedAt    *time.Time `json:"started_at,omitempty"`
	FinishedAt   *time.Time `json:"finished_at,omitempty"`
	Error        string     `json:"error,omitempty"`
	// Result carries the JobResult document once the job is terminal.
	// For canceled jobs it holds the best-so-far design when one exists.
	Result json.RawMessage `json:"result,omitempty"`
}

// JobResult is the outcome document of a solved job. Cache hits return
// the stored document byte-for-byte.
//
//ftdse:wire
type JobResult struct {
	Strategy string `json:"strategy"`
	// Engine names the search engine that produced the design.
	Engine      string  `json:"engine,omitempty"`
	Schedulable bool    `json:"schedulable"`
	MakespanMs  float64 `json:"makespan_ms"`
	TardinessMs float64 `json:"tardiness_ms,omitempty"`
	Iterations  int     `json:"iterations"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	// Stopped records why the solve ended: "completed", "time limit" or
	// "canceled". Use StopCause for the typed view.
	Stopped string `json:"stopped"`
	// TraceID names the request that executed this solve. A cached
	// result keeps the original solve's trace ID (the document is stored
	// byte-for-byte); the per-submission identity is JobStatus.TraceID.
	TraceID string `json:"trace_id,omitempty"`
	// Spans are the solve's server-side timings (queue_wait, solve; the
	// coordinator prepends submit and dispatch spans), with StartMs
	// relative to the submission the span set was recorded under.
	Spans []obs.Span `json:"spans,omitempty"`
	// TraceJSONL carries the flight-recorder trace document (the
	// ftdse.WriteTrace JSONL form) when the job ran with
	// SolveOptions.FlightRecorder; render it with fttrace.
	TraceJSONL string `json:"trace_jsonl,omitempty"`
	// Schedule is the deployment artifact (the ftdse.WriteSchedule JSON
	// format, compacted).
	Schedule json.RawMessage `json:"schedule"`
}

// StopCause converts the Stopped string to the typed ftdse.StopCause,
// so a client can tell a converged solve (StopCompleted) from a
// deadline-truncated one (StopTimeLimit) without string comparisons.
func (r JobResult) StopCause() (ftdse.StopCause, error) {
	return ftdse.ParseStopCause(r.Stopped)
}

// ProgressEvent is one incumbent solution streamed on
// GET /jobs/{id}/events as an SSE "improvement" event.
//
//ftdse:wire
type ProgressEvent struct {
	Phase       string  `json:"phase"`
	Iteration   int     `json:"iteration"`
	MakespanMs  float64 `json:"makespan_ms"`
	TardinessMs float64 `json:"tardiness_ms"`
	Schedulable bool    `json:"schedulable"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	// TraceID identifies the job the incumbent belongs to, so a client
	// multiplexing several streams can attribute events.
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
//
//ftdse:wire
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterS mirrors the Retry-After header on 429 answers.
	RetryAfterS int `json:"retry_after_s,omitempty"`
	// Fingerprint and QueueDepth detail queue-full rejections: the
	// fingerprint of the submission that needed the unavailable slot and
	// the backlog at rejection time, mirrored into the server's log line.
	Fingerprint string `json:"fingerprint,omitempty"`
	QueueDepth  int    `json:"queue_depth,omitempty"`
}

// ReadyStatus is the body of GET /readyz: whether the node is able to
// accept new work right now (the queue has room and the service is not
// draining). The coordinator's health checker polls it; the Node field
// doubles as the re-registration signal — a node that restarted comes
// back with an empty Node and is re-registered by the next health pass.
//
//ftdse:wire
type ReadyStatus struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining,omitempty"`
	// QueueDepth and QueueCapacity expose the backlog that decides
	// readiness; the coordinator also uses them to pick steal targets.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// SolvesInFlight counts running solves (load signal for stealing).
	SolvesInFlight int `json:"solves_in_flight"`
	// Node is the cluster name this service was registered under, empty
	// when the service runs standalone (or restarted and lost it).
	Node string `json:"node,omitempty"`
}

// RegisterRequest is the body of POST /cluster/register: the
// coordinator introduces itself to a solver node. Registration turns on
// node mode: the service pushes a checkpoint of every running solve's
// incumbent design to {coordinator}/cluster/checkpoints every
// CheckpointMs, so an in-flight solve can resume elsewhere if this
// process dies. Re-registration (a later request) replaces the previous
// identity, so a coordinator restart heals itself on its first health
// pass.
//
//ftdse:wire
type RegisterRequest struct {
	// Node is the coordinator's name for this solver node.
	Node string `json:"node"`
	// Coordinator is the base URL checkpoints are pushed to.
	Coordinator string `json:"coordinator"`
	// CheckpointMs is the push cadence; <= 0 selects 1000.
	CheckpointMs float64 `json:"checkpoint_ms,omitempty"`
}

// RegisterResponse acknowledges a registration.
//
//ftdse:wire
type RegisterResponse struct {
	Node string `json:"node"`
}

// CheckpointPush is the body of POST /cluster/checkpoints on the
// coordinator: one solve's latest incumbent, pushed by the node that
// runs it. The checkpoint document embeds the fingerprint, but it is
// repeated here so the coordinator can index without parsing the
// document.
//
//ftdse:wire
type CheckpointPush struct {
	Node        string          `json:"node"`
	JobID       string          `json:"job_id"`
	Fingerprint string          `json:"fingerprint"`
	Checkpoint  json.RawMessage `json:"checkpoint"`
}
