package service

import (
	"expvar"
	"time"

	"repro/ftdse"
	"repro/ftdse/obs"
)

// metrics aggregates the service's operational counters on an
// obs.Registry. Each Service owns its own registry (nothing is
// registered process-globally, so tests can build many services),
// exposed twice: GET /metrics renders the Prometheus text format, and
// expvarMap keeps the legacy expvar JSON view for /debug/vars.
//
// Solve latency and queue wait are cumulative histograms — every
// observation since start, replacing the earlier 512-sample sliding
// window — so scrapers get bucketed distributions and the service's
// own Retry-After estimate (retryAfterLocked) derives its median from
// the same data a dashboard would show.
type metrics struct {
	reg *obs.Registry

	solvesTotal    *obs.Counter
	engines        *obs.CounterVec
	solvesInFlight *obs.Gauge
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	jobsSubmitted  *obs.Counter
	jobsRejected   *obs.Counter // backpressure 429s
	jobsCoalesced  *obs.Counter // submissions attached to an identical in-flight solve
	solveLatency   *obs.Histogram
	queueWait      *obs.Histogram

	// Cluster tier (see cluster.go): solves seeded from a checkpoint,
	// and incumbent checkpoints pushed to (or dropped on the way to)
	// the coordinator.
	warmStarts           *obs.Counter
	checkpointsPushed    *obs.Counter
	checkpointPushErrors *obs.Counter
}

// latencyBuckets spans 1ms to ~17min exponentially — solves range from
// cache-warm milliseconds to budgeted minutes.
func latencyBuckets() []float64 { return obs.ExponentialBuckets(0.001, 2, 21) }

// newMetrics builds the registry. queueDepth and cacheLen are read live
// at every scrape.
func newMetrics(queueDepth func() int, queueCap int, cacheLen func() int) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg:            r,
		solvesTotal:    r.NewCounter("ftdse_solves_total", "Solves actually executed (cache hits excluded)."),
		engines:        r.NewCounterVec("ftdse_solves_by_engine_total", "Solves executed per search engine.", "engine"),
		solvesInFlight: r.NewGauge("ftdse_solves_in_flight", "Solves currently running."),
		cacheHits:      r.NewCounter("ftdse_cache_hits_total", "Submissions answered from the result cache."),
		cacheMisses:    r.NewCounter("ftdse_cache_misses_total", "Submissions that required a solve."),
		jobsSubmitted:  r.NewCounter("ftdse_jobs_submitted_total", "Jobs enqueued for solving."),
		jobsRejected:   r.NewCounter("ftdse_jobs_rejected_total", "Submissions rejected by queue backpressure (429)."),
		jobsCoalesced:  r.NewCounter("ftdse_jobs_coalesced_total", "Submissions coalesced onto an identical in-flight job."),
		solveLatency: r.NewHistogram("ftdse_solve_latency_seconds",
			"Wall-clock latency of completed solves.", latencyBuckets()),
		queueWait: r.NewHistogram("ftdse_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", latencyBuckets()),
		warmStarts:           r.NewCounter("ftdse_warm_starts_total", "Solves seeded from a warm-start checkpoint."),
		checkpointsPushed:    r.NewCounter("ftdse_checkpoints_pushed_total", "Incumbent checkpoints pushed to the coordinator."),
		checkpointPushErrors: r.NewCounter("ftdse_checkpoint_push_errors_total", "Checkpoint pushes that failed."),
	}
	r.NewGaugeFunc("ftdse_queue_depth", "Jobs waiting for a worker.",
		func() float64 { return float64(queueDepth()) })
	r.NewGaugeFunc("ftdse_queue_capacity", "Queue slots before submissions are rejected.",
		func() float64 { return float64(queueCap) })
	r.NewGaugeFunc("ftdse_cache_len", "Entries in the LRU result cache.",
		func() float64 { return float64(cacheLen()) })
	// The solver's move-evaluation hot path: scheduling passes, memo
	// cache traffic, and scratch-arena allocs vs. reuses. Process-wide
	// (the evaluator is per-run, the counters are global), so services
	// sharing a process see combined numbers.
	evals := []struct {
		name, help string
		read       func(ftdse.EvaluatorMetrics) int64
	}{
		{"ftdse_evaluator_scheduling_passes_total", "Scheduling passes run by the move evaluator.",
			func(e ftdse.EvaluatorMetrics) int64 { return e.SchedulingPasses }},
		{"ftdse_evaluator_cache_hits_total", "Move evaluations answered from the memo cache.",
			func(e ftdse.EvaluatorMetrics) int64 { return e.CacheHits }},
		{"ftdse_evaluator_cache_misses_total", "Move evaluations that required a scheduling pass.",
			func(e ftdse.EvaluatorMetrics) int64 { return e.CacheMisses }},
		{"ftdse_evaluator_scratch_allocs_total", "Evaluation scratch arenas allocated.",
			func(e ftdse.EvaluatorMetrics) int64 { return e.ScratchAllocs }},
		{"ftdse_evaluator_scratch_reuses_total", "Evaluation scratch arenas reused from the pool.",
			func(e ftdse.EvaluatorMetrics) int64 { return e.ScratchReuses }},
	}
	for _, ev := range evals {
		read := ev.read
		//ftlint:allow metrics the names are string literals in the evals table just above; the loop only threads them through
		r.NewCounterFunc(ev.name, ev.help,
			func() float64 { return float64(read(ftdse.ReadEvaluatorMetrics())) })
	}
	return m
}

// observeSolve records one completed solve's wall-clock latency.
func (m *metrics) observeSolve(d time.Duration) { m.solveLatency.Observe(d.Seconds()) }

// observeQueueWait records how long one job waited for a worker.
func (m *metrics) observeQueueWait(d time.Duration) { m.queueWait.Observe(d.Seconds()) }

// expvarMap builds the legacy exported view with the historical key
// names, rendering from the same registry state. queueDepth, cacheLen
// and clusterNode are read live on every render.
func (m *metrics) expvarMap(queueDepth func() int, queueCap int, cacheLen func() int, clusterNode func() string) *expvar.Map {
	out := new(expvar.Map).Init()
	intVar := func(name string, read func() int64) {
		out.Set(name, expvar.Func(func() any { return read() }))
	}
	intVar("solves_total", m.solvesTotal.Value)
	out.Set("solves_by_engine", expvar.Func(func() any { return m.engines.Values() }))
	intVar("solves_in_flight", m.solvesInFlight.Value)
	intVar("cache_hits", m.cacheHits.Value)
	intVar("cache_misses", m.cacheMisses.Value)
	intVar("jobs_submitted", m.jobsSubmitted.Value)
	intVar("jobs_rejected", m.jobsRejected.Value)
	intVar("jobs_coalesced", m.jobsCoalesced.Value)
	out.Set("queue_depth", expvar.Func(func() any { return queueDepth() }))
	out.Set("queue_capacity", expvar.Func(func() any { return queueCap }))
	out.Set("cache_len", expvar.Func(func() any { return cacheLen() }))
	out.Set("cache_hit_rate", expvar.Func(func() any {
		h, miss := m.cacheHits.Value(), m.cacheMisses.Value()
		if h+miss == 0 {
			return 0.0
		}
		return float64(h) / float64(h+miss)
	}))
	out.Set("solve_latency_p50_ms", expvar.Func(func() any { return 1000 * m.solveLatency.Quantile(0.50) }))
	out.Set("solve_latency_p99_ms", expvar.Func(func() any { return 1000 * m.solveLatency.Quantile(0.99) }))
	intVar("warm_starts", m.warmStarts.Value)
	intVar("checkpoints_pushed", m.checkpointsPushed.Value)
	intVar("checkpoint_push_errors", m.checkpointPushErrors.Value)
	out.Set("cluster_node", expvar.Func(func() any { return clusterNode() }))
	out.Set("evaluator", expvar.Func(func() any { return ftdse.ReadEvaluatorMetrics() }))
	return out
}
