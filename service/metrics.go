package service

import (
	"expvar"
	"math"
	"sort"
	"sync"

	"repro/ftdse"
)

// metrics aggregates the service's operational counters. Each Service
// owns its own set (nothing is registered in the process-global expvar
// namespace, so tests can build many services), exposed as an
// expvar.Map: GET /metrics serves its JSON rendering, and a daemon may
// additionally expvar.Publish the map under /debug/vars.
type metrics struct {
	solvesTotal    expvar.Int // solves actually executed (cache hits excluded)
	solvesInFlight expvar.Int
	cacheHits      expvar.Int
	cacheMisses    expvar.Int
	jobsSubmitted  expvar.Int
	jobsRejected   expvar.Int // backpressure 429s
	jobsCoalesced  expvar.Int // submissions attached to an identical in-flight solve
	engines        expvar.Map // solves executed per engine name

	// Cluster tier (see cluster.go): solves seeded from a checkpoint,
	// and incumbent checkpoints pushed to (or dropped on the way to)
	// the coordinator.
	warmStarts           expvar.Int
	checkpointsPushed    expvar.Int
	checkpointPushErrors expvar.Int

	mu  sync.Mutex
	lat []float64 // sliding window of solve latencies in ms
	idx int
}

// latencyWindow bounds the quantile estimation window.
const latencyWindow = 512

// observeLatency records one completed solve's wall-clock latency.
func (m *metrics) observeLatency(ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lat) < latencyWindow {
		m.lat = append(m.lat, ms)
		return
	}
	m.lat[m.idx] = ms
	m.idx = (m.idx + 1) % latencyWindow
}

// quantile returns the nearest-rank q-quantile (0..1) of the latency
// window in ms, 0 when empty. Nearest-rank (ceiling) keeps upper
// quantiles honest on small windows: the p99 of two samples is the
// larger one, not the minimum a floored index would select.
func (m *metrics) quantile(q float64) float64 {
	m.mu.Lock()
	window := append([]float64(nil), m.lat...)
	m.mu.Unlock()
	if len(window) == 0 {
		return 0
	}
	sort.Float64s(window)
	i := int(math.Ceil(q*float64(len(window)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(window) {
		i = len(window) - 1
	}
	return window[i]
}

// expvarMap builds the exported view. queueDepth, cacheLen and
// clusterNode are read live on every render.
func (m *metrics) expvarMap(queueDepth func() int, queueCap int, cacheLen func() int, clusterNode func() string) *expvar.Map {
	out := new(expvar.Map).Init()
	m.engines.Init()
	out.Set("solves_total", &m.solvesTotal)
	out.Set("solves_by_engine", &m.engines)
	out.Set("solves_in_flight", &m.solvesInFlight)
	out.Set("cache_hits", &m.cacheHits)
	out.Set("cache_misses", &m.cacheMisses)
	out.Set("jobs_submitted", &m.jobsSubmitted)
	out.Set("jobs_rejected", &m.jobsRejected)
	out.Set("jobs_coalesced", &m.jobsCoalesced)
	out.Set("queue_depth", expvar.Func(func() any { return queueDepth() }))
	out.Set("queue_capacity", expvar.Func(func() any { return queueCap }))
	out.Set("cache_len", expvar.Func(func() any { return cacheLen() }))
	out.Set("cache_hit_rate", expvar.Func(func() any {
		h, miss := m.cacheHits.Value(), m.cacheMisses.Value()
		if h+miss == 0 {
			return 0.0
		}
		return float64(h) / float64(h+miss)
	}))
	out.Set("solve_latency_p50_ms", expvar.Func(func() any { return m.quantile(0.50) }))
	out.Set("solve_latency_p99_ms", expvar.Func(func() any { return m.quantile(0.99) }))
	out.Set("warm_starts", &m.warmStarts)
	out.Set("checkpoints_pushed", &m.checkpointsPushed)
	out.Set("checkpoint_push_errors", &m.checkpointPushErrors)
	out.Set("cluster_node", expvar.Func(func() any { return clusterNode() }))
	// The solver's move-evaluation hot path: scheduling passes, memo
	// cache traffic, and scratch-arena allocs vs. reuses. Process-wide
	// (the evaluator is per-run, the counters are global), so services
	// sharing a process see combined numbers.
	out.Set("evaluator", expvar.Func(func() any { return ftdse.ReadEvaluatorMetrics() }))
	return out
}
