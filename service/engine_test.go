package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/ftdse"
	"repro/ftdse/service"
)

// decodeResult unmarshals a terminal status's embedded JobResult.
func decodeResult(t *testing.T, st service.JobStatus) service.JobResult {
	t.Helper()
	if len(st.Result) == 0 {
		t.Fatalf("job %s (%s) has no result", st.ID, st.State)
	}
	var res service.JobResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	return res
}

// TestEngineSelectionOverWire drives each named engine through the
// HTTP API: the solve runs with the requested engine, the result
// document names it, and the per-engine metric counts it.
func TestEngineSelectionOverWire(t *testing.T) {
	_, srv := newService(t, service.Config{QueueSize: 8, PoolWorkers: 2})
	prob := genProblem(8, 42)
	for _, name := range ftdse.Engines() {
		body := submitBody(t, prob, service.SolveOptions{Engine: name, MaxIterations: 10})
		st := postSolve(t, srv.URL, body, http.StatusOK, "wait")
		if st.State != service.StateDone {
			t.Fatalf("engine %s: state %q", name, st.State)
		}
		res := decodeResult(t, st)
		if res.Engine != name {
			t.Errorf("engine %s: result names %q", name, res.Engine)
		}
		cause, err := res.StopCause()
		if err != nil || cause != ftdse.StopCompleted {
			t.Errorf("engine %s: stop cause %v (%v), want completed", name, cause, err)
		}
	}
	if got := metric(t, srv.URL, "ftdse_solves_total"); got != float64(len(ftdse.Engines())) {
		t.Errorf("solves_total = %v, want %d", got, len(ftdse.Engines()))
	}
	// The per-engine breakdown is a labeled counter family.
	m := scrapeMetrics(t, srv.URL)
	for _, name := range ftdse.Engines() {
		key := fmt.Sprintf("ftdse_solves_by_engine_total{engine=%q}", name)
		if m[key] != 1 {
			t.Errorf("%s = %v, want 1", key, m[key])
		}
	}
}

// TestEngineInFingerprint: the engine (and seed) are part of the result
// identity, so different engines never share a cache entry while
// equivalent spellings of the default do.
func TestEngineInFingerprint(t *testing.T) {
	prob := genProblem(8, 42)
	fp := func(o service.SolveOptions) string {
		t.Helper()
		s, err := service.Fingerprint(prob, o)
		if err != nil {
			t.Fatalf("Fingerprint: %v", err)
		}
		return s
	}
	def := fp(service.SolveOptions{})
	if fp(service.SolveOptions{Engine: "default"}) != def ||
		fp(service.SolveOptions{Engine: "DEFAULT"}) != def {
		t.Error("default-engine spellings do not share a fingerprint")
	}
	seen := map[string]string{"": def}
	for _, name := range []string{"greedy", "tabu", "sa", "portfolio"} {
		h := fp(service.SolveOptions{Engine: name})
		for prev, ph := range seen {
			if ph == h {
				t.Errorf("engines %q and %q share a fingerprint", prev, name)
			}
		}
		seen[name] = h
	}
	if fp(service.SolveOptions{Engine: "sa", Seed: 1}) == fp(service.SolveOptions{Engine: "sa", Seed: 2}) {
		t.Error("different seeds share a fingerprint")
	}
	// Seed normalization: 0 means "the fixed seed 1" for stochastic
	// engines, and nothing at all for deterministic ones — equivalent
	// spellings must share one cache entry.
	if fp(service.SolveOptions{Engine: "sa"}) != fp(service.SolveOptions{Engine: "sa", Seed: 1}) {
		t.Error("sa seed 0 and seed 1 (the documented default) do not share a fingerprint")
	}
	if fp(service.SolveOptions{Seed: 42}) != def {
		t.Error("seed changes the fingerprint of a deterministic engine that ignores it")
	}
	// A portfolio race with StopWhenSchedulable is timing-dependent, so
	// the worker count must stay in the key instead of coalescing
	// requests whose answers may differ.
	if fp(service.SolveOptions{Engine: "portfolio", StopWhenSchedulable: true, Workers: 1}) ==
		fp(service.SolveOptions{Engine: "portfolio", StopWhenSchedulable: true, Workers: 8}) {
		t.Error("early-stop portfolio races with different worker counts share a fingerprint")
	}
	// A sub-microsecond time limit is a real (immediately truncating)
	// budget; its truncated result must never be served to untimed
	// submissions of the same problem.
	if fp(service.SolveOptions{TimeLimitMs: 0.0005}) == def {
		t.Error("sub-microsecond time limit shares the untimed fingerprint")
	}
}

// TestUnknownEngineRejected: a bad engine name is a 400 whose message
// enumerates the valid names.
func TestUnknownEngineRejected(t *testing.T) {
	_, srv := newService(t, service.Config{QueueSize: 4, PoolWorkers: 1})
	body := submitBody(t, genProblem(6, 1), service.SolveOptions{Engine: "bogus"})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	for _, name := range ftdse.Engines() {
		if !strings.Contains(e.Error, name) {
			t.Errorf("error %q does not enumerate engine %q", e.Error, name)
		}
	}
}

// TestStopCauseSurfacedForTimeLimitedSolve: a budget-truncated solve is
// distinguishable from a converged one through the typed accessor.
func TestStopCauseSurfacedForTimeLimitedSolve(t *testing.T) {
	_, srv := newService(t, service.Config{QueueSize: 4, PoolWorkers: 1})
	// A huge iteration budget with a tiny time limit always truncates.
	body := submitBody(t, genProblem(20, 7), service.SolveOptions{
		MaxIterations: 1_000_000,
		TimeLimitMs:   50,
		Workers:       1,
	})
	st := postSolve(t, srv.URL, body, http.StatusOK, "wait")
	if st.State != service.StateDone {
		t.Fatalf("state %q, want done (time-limited solves complete with best-so-far)", st.State)
	}
	res := decodeResult(t, st)
	cause, err := res.StopCause()
	if err != nil {
		t.Fatalf("StopCause: %v", err)
	}
	if cause != ftdse.StopTimeLimit {
		t.Errorf("stop cause %v, want time limit", cause)
	}
}
