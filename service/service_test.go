package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/ftdse"
	"repro/ftdse/obs"
	"repro/ftdse/service"
)

// newService spins up a service behind an httptest server and tears
// both down at the end of the test.
func newService(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := svc.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return svc, srv
}

// genProblem builds a deterministic test problem.
func genProblem(procs int, seed int64) ftdse.Problem {
	return ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: procs, Nodes: 2, Seed: seed},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
}

// submitBody builds a POST /solve body.
func submitBody(t *testing.T, p ftdse.Problem, opts service.SolveOptions) []byte {
	t.Helper()
	var doc bytes.Buffer
	if err := ftdse.WriteProblem(&doc, p); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	body, err := json.Marshal(service.SubmitRequest{Problem: doc.Bytes(), Options: opts})
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	return body
}

// postSolve submits and decodes the answer, failing on unexpected
// codes; passing "wait" as the trailing flag uses the blocking
// ?wait=1 form.
func postSolve(t *testing.T, url string, body []byte, wantCode int, wait ...string) service.JobStatus {
	t.Helper()
	path := "/solve"
	if len(wait) > 0 {
		path = "/solve?wait=1"
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, wantCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// getJob fetches a job's status.
func getJob(t *testing.T, url, id string) service.JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// waitState polls until the job reaches a state matching ok.
func waitState(t *testing.T, url, id string, timeout time.Duration, ok func(service.JobStatus) bool) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getJob(t, url, id)
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%d improvements)", id, st.State, st.Improvements)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metric reads one sample from the Prometheus text exposition at
// GET /metrics. Labeled samples key as name{label="value"}.
func metric(t *testing.T, url, name string) float64 {
	t.Helper()
	m := scrapeMetrics(t, url)
	f, ok := m[name]
	if !ok {
		t.Fatalf("metric %q absent from /metrics", name)
	}
	return f
}

// scrapeMetrics fetches and parses the full exposition, validating the
// text format on every scrape.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("GET /metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	m, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	return m
}

// slowOpts keeps a solve running until canceled: a generous iteration
// budget on a problem large enough that the budget never finishes
// within the test.
var slowOpts = service.SolveOptions{MaxIterations: 1_000_000, Workers: 1}

// TestBackpressureQueueFull pins the 429 + Retry-After contract: with a
// single worker occupied and the one queue slot taken, the next
// submission is rejected and carries a retry hint.
func TestBackpressureQueueFull(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 1, QueueSize: 1})
	slow := submitBody(t, genProblem(24, 1), slowOpts)

	a := postSolve(t, srv.URL, slow, http.StatusAccepted)
	waitState(t, srv.URL, a.ID, 30*time.Second, func(st service.JobStatus) bool {
		return st.State == service.StateRunning
	})
	b := postSolve(t, srv.URL, submitBody(t, genProblem(24, 2), slowOpts), http.StatusAccepted)

	resp, err := http.Post(srv.URL+"/solve", "application/json",
		bytes.NewReader(submitBody(t, genProblem(24, 3), slowOpts)))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var er service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.RetryAfterS < 1 {
		t.Errorf("429 body = %+v, %v; want retry_after_s >= 1", er, err)
	}
	if got := metric(t, srv.URL, "ftdse_jobs_rejected_total"); got < 1 {
		t.Errorf("jobs_rejected = %v, want >= 1", got)
	}

	// Unblock the teardown drain quickly.
	for _, id := range []string{a.ID, b.ID} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatalf("DELETE: %v", err)
		}
	}
}

// TestCancelStopsPromptly pins the cancellation latency contract
// inherited from the solver: a canceled running job reaches a terminal
// state within 250ms and keeps its best-so-far design.
func TestCancelStopsPromptly(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 1, QueueSize: 4})
	st := postSolve(t, srv.URL, submitBody(t, genProblem(24, 4), slowOpts), http.StatusAccepted)
	// Wait until the search is genuinely under way (initial incumbent
	// found), so the cancel interrupts a live tabu search.
	waitState(t, srv.URL, st.ID, 30*time.Second, func(s service.JobStatus) bool {
		return s.State == service.StateRunning && s.Improvements >= 1
	})

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	final := waitState(t, srv.URL, st.ID, time.Second, func(s service.JobStatus) bool {
		return service.TerminalState(s.State)
	})
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("cancellation took %v, want <= 250ms", elapsed)
	}
	if final.State != service.StateCanceled {
		t.Errorf("state = %q, want canceled", final.State)
	}
	if len(final.Result) == 0 {
		t.Error("canceled running job lost its best-so-far result")
	}
}

// parseSSE reads one job's event stream to completion.
func parseSSE(t *testing.T, url, id string) ([]service.ProgressEvent, service.JobStatus) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []service.ProgressEvent
	var final service.JobStatus
	var event, data string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			switch event {
			case "improvement":
				var ev service.ProgressEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad improvement event %q: %v", data, err)
				}
				events = append(events, ev)
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				return events, final
			}
			event, data = "", ""
		}
	}
	t.Fatalf("stream ended without done event (scan err %v)", sc.Err())
	return nil, final
}

// TestSSEStreamsMonotonicImprovements verifies the anytime interface:
// the event stream delivers every incumbent in order, each strictly
// better than the last in the (tardiness, makespan) order, and closes
// with the final status.
func TestSSEStreamsMonotonicImprovements(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 1, QueueSize: 4})
	st := postSolve(t, srv.URL,
		submitBody(t, genProblem(16, 5), service.SolveOptions{MaxIterations: 60, Workers: 1}),
		http.StatusAccepted)

	events, final := parseSSE(t, srv.URL, st.ID)
	if len(events) == 0 {
		t.Fatal("no improvement events")
	}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		better := cur.TardinessMs < prev.TardinessMs ||
			(cur.TardinessMs == prev.TardinessMs && cur.MakespanMs < prev.MakespanMs)
		if !better {
			t.Errorf("event %d (%+v) does not improve on event %d (%+v)", i, cur, i-1, prev)
		}
	}
	if final.State != service.StateDone {
		t.Fatalf("final state = %q (%s)", final.State, final.Error)
	}
	if final.Improvements != len(events) {
		t.Errorf("final status counts %d improvements, stream delivered %d", final.Improvements, len(events))
	}
	var res service.JobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("final result: %v", err)
	}
	last := events[len(events)-1]
	if res.MakespanMs != last.MakespanMs {
		t.Errorf("final makespan %.3f != last incumbent %.3f", res.MakespanMs, last.MakespanMs)
	}

	// A late subscriber replays the identical history.
	replay, final2 := parseSSE(t, srv.URL, st.ID)
	if len(replay) != len(events) || final2.State != service.StateDone {
		t.Errorf("replay delivered %d events (state %s), want %d", len(replay), final2.State, len(events))
	}
}

// TestCacheHitServesIdenticalResultWithoutResolving pins the cache
// contract: an identical resubmission is answered from the cache — the
// solve-count metric does not move — with a byte-identical result.
func TestCacheHitServesIdenticalResultWithoutResolving(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 2, QueueSize: 8})
	prob := genProblem(10, 6)
	opts := service.SolveOptions{MaxIterations: 20, Workers: 2}

	first := postSolve(t, srv.URL, submitBody(t, prob, opts), http.StatusOK, "wait")
	if first.State != service.StateDone || first.Cached {
		t.Fatalf("first solve: state %q cached %v", first.State, first.Cached)
	}
	solves := metric(t, srv.URL, "ftdse_solves_total")
	if solves != 1 {
		t.Fatalf("solves_total = %v after one solve", solves)
	}

	second := postSolve(t, srv.URL, submitBody(t, prob, opts), http.StatusOK)
	if !second.Cached || second.State != service.StateDone {
		t.Fatalf("resubmission: state %q cached %v, want done from cache", second.State, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Errorf("cached result is not byte-identical:\nfirst:  %.200s\nsecond: %.200s", first.Result, second.Result)
	}
	if got := metric(t, srv.URL, "ftdse_solves_total"); got != solves {
		t.Errorf("cache hit re-solved: solves_total %v -> %v", solves, got)
	}
	if hits := metric(t, srv.URL, "ftdse_cache_hits_total"); hits != 1 {
		t.Errorf("cache_hits = %v, want 1", hits)
	}

	// Equivalent spellings share the entry: strategy case and an
	// explicit worker count (irrelevant without a time limit) must not
	// produce a new fingerprint.
	respelled := opts
	respelled.Strategy = "MXR"
	respelled.Workers = 7
	third := postSolve(t, srv.URL, submitBody(t, prob, respelled), http.StatusOK)
	if !third.Cached {
		t.Error("normalized-equivalent options missed the cache")
	}
	if third.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprint changed across equivalent spellings:\n%s\n%s", first.Fingerprint, third.Fingerprint)
	}
}

// TestBatchSubmission covers POST /solve/batch: cache hits answered in
// place, the rest enqueued, and all-or-nothing backpressure.
func TestBatchSubmission(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 1, QueueSize: 2})
	prob := genProblem(8, 7)
	opts := service.SolveOptions{MaxIterations: 8, Workers: 1}

	// Prime the cache.
	postSolve(t, srv.URL, submitBody(t, prob, opts), http.StatusOK, "wait")

	mk := func(p ftdse.Problem) service.SubmitRequest {
		var doc bytes.Buffer
		if err := ftdse.WriteProblem(&doc, p); err != nil {
			t.Fatal(err)
		}
		return service.SubmitRequest{Problem: doc.Bytes(), Options: opts}
	}
	batch := service.BatchRequest{Jobs: []service.SubmitRequest{
		mk(prob), mk(genProblem(8, 8)), mk(genProblem(8, 9)),
	}}
	raw, _ := json.Marshal(batch)
	resp, err := http.Post(srv.URL+"/solve/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /solve/batch: %v", err)
	}
	var br service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(br.Jobs) != 3 {
		t.Fatalf("batch = %d with %d jobs", resp.StatusCode, len(br.Jobs))
	}
	if !br.Jobs[0].Cached || br.Jobs[0].State != service.StateDone {
		t.Errorf("batch job 0 should be a cache hit, got %+v", br.Jobs[0])
	}
	for i, j := range br.Jobs[1:] {
		if j.Cached {
			t.Errorf("batch job %d unexpectedly cached", i+1)
		}
		waitState(t, srv.URL, j.ID, 30*time.Second, func(st service.JobStatus) bool {
			return st.State == service.StateDone
		})
	}

	// A batch larger than the queue is rejected whole.
	var big service.BatchRequest
	for i := 0; i < 4; i++ {
		big.Jobs = append(big.Jobs, mk(genProblem(8, int64(20+i))))
	}
	raw, _ = json.Marshal(big)
	resp, err = http.Post(srv.URL+"/solve/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST big batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("oversized batch = %d, want 429", resp.StatusCode)
	}
}

// TestDrainReturnsBestSoFar pins the graceful-drain contract: running
// jobs complete with their best-so-far design, queued jobs are
// canceled, and new submissions are refused with 503.
func TestDrainReturnsBestSoFar(t *testing.T) {
	svc := service.New(service.Config{PoolWorkers: 1, QueueSize: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	running := postSolve(t, srv.URL, submitBody(t, genProblem(24, 10), slowOpts), http.StatusAccepted)
	waitState(t, srv.URL, running.ID, 30*time.Second, func(st service.JobStatus) bool {
		return st.State == service.StateRunning && st.Improvements >= 1
	})
	queued := postSolve(t, srv.URL, submitBody(t, genProblem(24, 11), slowOpts), http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ran := getJob(t, srv.URL, running.ID)
	if ran.State != service.StateCanceled || len(ran.Result) == 0 {
		t.Errorf("running job after drain: state %q, result %d bytes; want canceled with best-so-far",
			ran.State, len(ran.Result))
	}
	q := getJob(t, srv.URL, queued.ID)
	if !service.TerminalState(q.State) {
		t.Errorf("queued job after drain: state %q, want terminal", q.State)
	}

	resp, err := http.Post(srv.URL+"/solve", "application/json",
		bytes.NewReader(submitBody(t, genProblem(8, 12), service.SolveOptions{MaxIterations: 5})))
	if err != nil {
		t.Fatalf("POST after drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission after drain = %d, want 503", resp.StatusCode)
	}
}

// TestSustains100ConcurrentSubmissions is the headline acceptance
// check, run under -race in CI: 100 concurrent submissions against one
// instance, every job reaching a terminal state, duplicate problems
// eventually served from cache.
func TestSustains100ConcurrentSubmissions(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 8, QueueSize: 128, CacheSize: 64})
	const clients = 100
	const distinct = 8
	probs := make([][]byte, distinct)
	for i := range probs {
		probs[i] = submitBody(t, genProblem(5, int64(100+i)),
			service.SolveOptions{MaxIterations: 3, Workers: 1})
	}

	var wg sync.WaitGroup
	states := make([]string, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/solve?wait=1", "application/json",
				bytes.NewReader(probs[i%distinct]))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d", resp.StatusCode)
				return
			}
			var st service.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				errs[i] = err
				return
			}
			states[i] = st.State
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if states[i] != service.StateDone {
			t.Errorf("client %d: state %q, want done", i, states[i])
		}
	}
	solves := metric(t, srv.URL, "ftdse_solves_total")
	if solves < distinct || solves > clients {
		t.Errorf("solves_total = %v, want within [%d, %d]", solves, distinct, clients)
	}
	// Once every result is cached, an identical resubmission must not
	// solve again.
	before := metric(t, srv.URL, "ftdse_solves_total")
	st := postSolve(t, srv.URL, probs[0], http.StatusOK)
	if !st.Cached {
		t.Error("post-storm resubmission missed the cache")
	}
	if after := metric(t, srv.URL, "ftdse_solves_total"); after != before {
		t.Errorf("resubmission re-solved: %v -> %v", before, after)
	}
	hits := metric(t, srv.URL, "ftdse_cache_hits_total")
	misses := metric(t, srv.URL, "ftdse_cache_misses_total")
	t.Logf("100 concurrent submissions: %v solves, cache hit rate %.2f",
		solves, hits/(hits+misses))
}

// TestCoalescesIdenticalInFlightSubmissions pins the singleflight
// contract: a submission identical to an in-flight one attaches to the
// existing job (same id, no extra queue slot), a canceled-while-queued
// job's dead channel slot is not counted as load, and DELETE cancels
// the shared job for every attached client.
func TestCoalescesIdenticalInFlightSubmissions(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 1, QueueSize: 1})
	body := submitBody(t, genProblem(24, 30), slowOpts)

	a := postSolve(t, srv.URL, body, http.StatusAccepted)
	waitState(t, srv.URL, a.ID, 30*time.Second, func(st service.JobStatus) bool {
		return st.State == service.StateRunning
	})
	b := postSolve(t, srv.URL, body, http.StatusAccepted)
	if b.ID != a.ID {
		t.Fatalf("identical in-flight submission got a fresh job %s, want %s", b.ID, a.ID)
	}
	if got := metric(t, srv.URL, "ftdse_jobs_coalesced_total"); got != 1 {
		t.Errorf("jobs_coalesced = %v, want 1", got)
	}

	// A distinct problem takes the one queue slot; canceling it while
	// queued must hand the slot back even before a worker pops the dead
	// entry (the worker is still busy with the shared job).
	q := postSolve(t, srv.URL, submitBody(t, genProblem(24, 31), slowOpts), http.StatusAccepted)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+q.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE queued: %v", err)
	}
	postSolve(t, srv.URL, submitBody(t, genProblem(24, 32), slowOpts), http.StatusAccepted)

	// One DELETE cancels the shared job for both submissions.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+a.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE shared: %v", err)
	}
	var final service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatalf("decoding DELETE answer: %v", err)
	}
	resp.Body.Close()
	if final.State != service.StateCanceled || len(final.Result) == 0 {
		t.Errorf("DELETE answered state %q with %d result bytes; want canceled with best-so-far",
			final.State, len(final.Result))
	}
}

// TestSharedJobSurvivesOneWaiterDisconnect pins cancel-on-disconnect
// under coalescing: a ?wait=1 client abandoning a shared job must not
// cancel it while another submission still wants the result.
func TestSharedJobSurvivesOneWaiterDisconnect(t *testing.T) {
	_, srv := newService(t, service.Config{PoolWorkers: 1, QueueSize: 4})
	body := submitBody(t, genProblem(24, 33), slowOpts)

	a := postSolve(t, srv.URL, body, http.StatusAccepted)
	waitState(t, srv.URL, a.ID, 30*time.Second, func(st service.JobStatus) bool {
		return st.State == service.StateRunning
	})

	// A second, waiting submission coalesces onto the job, then its
	// client disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/solve?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for metric(t, srv.URL, "ftdse_jobs_coalesced_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced onto the running job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-waiterDone

	// The original submission still holds interest: the job must keep
	// running rather than being canceled by the waiter's disconnect.
	time.Sleep(150 * time.Millisecond)
	if st := getJob(t, srv.URL, a.ID); st.State != service.StateRunning {
		t.Fatalf("shared job state %q after one waiter left, want running", st.State)
	}

	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+a.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	final := waitState(t, srv.URL, a.ID, time.Second, func(st service.JobStatus) bool {
		return service.TerminalState(st.State)
	})
	if final.State != service.StateCanceled {
		t.Errorf("state = %q, want canceled", final.State)
	}
}

// TestFingerprintStability pins the fingerprint definition itself.
func TestFingerprintStability(t *testing.T) {
	p := genProblem(10, 13)
	base := service.SolveOptions{MaxIterations: 50}
	fp1, err := service.Fingerprint(p, base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fp1, "sha256:") || len(fp1) != len("sha256:")+64 {
		t.Errorf("fingerprint shape: %q", fp1)
	}
	// Same problem after an encode/decode round trip: same fingerprint
	// (the canonical-encoding guarantee).
	var doc bytes.Buffer
	if err := ftdse.WriteProblem(&doc, p); err != nil {
		t.Fatal(err)
	}
	back, err := ftdse.ReadProblem(&doc)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := service.Fingerprint(back, base)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("round-tripped problem changed fingerprint:\n%s\n%s", fp1, fp2)
	}
	// Equivalent option spellings collapse; meaningful changes do not.
	eq := service.SolveOptions{Strategy: "MXR", MaxIterations: 50, Workers: 9}
	fp3, err := service.Fingerprint(p, eq)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fp1 {
		t.Error("equivalent options changed the fingerprint")
	}
	timed := service.SolveOptions{MaxIterations: 50, Workers: 9, TimeLimitMs: 100}
	fp4, err := service.Fingerprint(p, timed)
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp1 {
		t.Error("a time limit (and timed worker count) must change the fingerprint")
	}
	other := service.SolveOptions{MaxIterations: 51}
	fp5, err := service.Fingerprint(p, other)
	if err != nil {
		t.Fatal(err)
	}
	if fp5 == fp1 {
		t.Error("a different iteration budget must change the fingerprint")
	}
	if _, err := service.Fingerprint(p, service.SolveOptions{Strategy: "bogus"}); err == nil {
		t.Error("Fingerprint accepted an unknown strategy")
	}
}
