package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/ftdse"
	"repro/ftdse/service"
)

// getReady fetches /readyz, returning the status and the HTTP code.
func getReady(t *testing.T, url string) (service.ReadyStatus, int) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var st service.ReadyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding readyz: %v", err)
	}
	return st, resp.StatusCode
}

// register registers a coordinator on the service.
func register(t *testing.T, url string, req service.RegisterRequest) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /cluster/register: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d", resp.StatusCode)
	}
}

func TestReadyzTracksQueueAndDrain(t *testing.T) {
	svc, srv := newService(t, service.Config{QueueSize: 1, PoolWorkers: 1})
	if st, code := getReady(t, srv.URL); code != http.StatusOK || !st.Ready {
		t.Fatalf("fresh service not ready: %+v (code %d)", st, code)
	}

	// Occupy the worker and fill the single queue slot: readiness must
	// flip to 503 while liveness stays 200.
	running := postSolve(t, srv.URL, submitBody(t, genProblem(12, 1), slowOpts), http.StatusAccepted)
	waitState(t, srv.URL, running.ID, 10*time.Second, func(st service.JobStatus) bool {
		return st.State == service.StateRunning
	})
	postSolve(t, srv.URL, submitBody(t, genProblem(12, 2), slowOpts), http.StatusAccepted)
	st, code := getReady(t, srv.URL)
	if code != http.StatusServiceUnavailable || st.Ready {
		t.Fatalf("full queue still ready: %+v (code %d)", st, code)
	}
	if st.QueueDepth != 1 || st.QueueCapacity != 1 {
		t.Fatalf("queue backlog = %d/%d, want 1/1", st.QueueDepth, st.QueueCapacity)
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz should stay 200 while merely busy: %v", err)
	} else {
		resp.Body.Close()
	}

	// Draining flips readiness regardless of queue room.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st, code := getReady(t, srv.URL); code != http.StatusServiceUnavailable || !st.Draining {
		t.Fatalf("draining service still ready: %+v (code %d)", st, code)
	}
}

func TestRegisterThenCheckpointsArriveAtCoordinator(t *testing.T) {
	var (
		mu     sync.Mutex
		pushes []service.CheckpointPush
	)
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/cluster/checkpoints" {
			http.NotFound(w, r)
			return
		}
		var p service.CheckpointPush
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		pushes = append(pushes, p)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer coord.Close()

	_, srv := newService(t, service.Config{QueueSize: 4, PoolWorkers: 1})
	register(t, srv.URL, service.RegisterRequest{
		Node: "n1", Coordinator: coord.URL, CheckpointMs: 20,
	})
	if st, _ := getReady(t, srv.URL); st.Node != "n1" {
		t.Fatalf("readyz node = %q after registration", st.Node)
	}

	prob := genProblem(14, 3)
	job := postSolve(t, srv.URL, submitBody(t, prob, slowOpts), http.StatusAccepted)

	deadline := time.Now().Add(15 * time.Second)
	var got service.CheckpointPush
	for {
		mu.Lock()
		n := len(pushes)
		if n > 0 {
			got = pushes[n-1]
		}
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint reached the coordinator")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Node != "n1" || got.JobID != job.ID || got.Fingerprint != job.Fingerprint {
		t.Fatalf("push metadata = %+v, want node n1 job %s fp %s", got, job.ID, job.Fingerprint)
	}
	ck, err := ftdse.ReadCheckpoint(bytes.NewReader(got.Checkpoint))
	if err != nil {
		t.Fatalf("pushed checkpoint does not parse: %v\n%s", err, got.Checkpoint)
	}
	if ck.Fingerprint != job.Fingerprint {
		t.Fatalf("checkpoint fingerprint %q, want %q", ck.Fingerprint, job.Fingerprint)
	}
	if _, err := ftdse.CheckpointDesign(prob, ck); err != nil {
		t.Fatalf("pushed design does not resolve against the problem: %v", err)
	}
	// The node increments only after its push POST returns, while the
	// fake coordinator records the push before responding — poll briefly
	// instead of racing that window.
	for n := metric(t, srv.URL, "ftdse_checkpoints_pushed_total"); n < 1; {
		if time.Now().After(deadline) {
			t.Fatalf("checkpoints_pushed = %v", n)
		}
		time.Sleep(10 * time.Millisecond)
		n = metric(t, srv.URL, "ftdse_checkpoints_pushed_total")
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+job.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

func TestWarmStartSubmission(t *testing.T) {
	prob := genProblem(10, 4)

	// Build a checkpoint the way a coordinator would have stored one:
	// from a local solve's last incumbent.
	var last ftdse.Improvement
	res, err := ftdse.NewSolver(ftdse.WithProgress(func(imp ftdse.Improvement) {
		last = imp
	})).Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("local solve: %v", err)
	}
	ck, err := ftdse.NewCheckpoint(prob, "", last)
	if err != nil {
		t.Fatalf("NewCheckpoint: %v", err)
	}
	var ckDoc bytes.Buffer
	if err := ftdse.WriteCheckpoint(&ckDoc, ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	_, srv := newService(t, service.Config{QueueSize: 4, PoolWorkers: 1})
	var probDoc bytes.Buffer
	if err := ftdse.WriteProblem(&probDoc, prob); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	body, _ := json.Marshal(service.SubmitRequest{
		Problem:   probDoc.Bytes(),
		WarmStart: ckDoc.Bytes(),
	})
	st := postSolve(t, srv.URL, body, http.StatusOK, "wait")
	if st.State != service.StateDone {
		t.Fatalf("warm-started job ended %q (%s)", st.State, st.Error)
	}
	var jr service.JobResult
	if err := json.Unmarshal(st.Result, &jr); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	// The warm-start guarantee: never worse than the checkpointed
	// incumbent (here the converged design, so exactly equal).
	if jr.MakespanMs > res.Cost.Makespan.Milliseconds() || jr.TardinessMs > res.Cost.Tardiness.Milliseconds() {
		t.Fatalf("warm-started result (%v, %v) regressed past checkpoint (%v, %v)",
			jr.TardinessMs, jr.MakespanMs,
			res.Cost.Tardiness.Milliseconds(), res.Cost.Makespan.Milliseconds())
	}
	if n := metric(t, srv.URL, "ftdse_warm_starts_total"); n != 1 {
		t.Fatalf("warm_starts = %v, want 1", n)
	}

	// A malformed warm start is a client error...
	bad, _ := json.Marshal(service.SubmitRequest{
		Problem:   probDoc.Bytes(),
		WarmStart: json.RawMessage(`{"version":99}`),
	})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed warm start = %d, want 400", resp.StatusCode)
	}

	// ...but a well-formed checkpoint that does not fit the problem is a
	// best-effort hint from a similar instance: the solve proceeds cold.
	other := genProblem(6, 99)
	var otherLast ftdse.Improvement
	if _, err := ftdse.NewSolver(ftdse.WithProgress(func(imp ftdse.Improvement) {
		otherLast = imp
	})).Solve(context.Background(), other); err != nil {
		t.Fatalf("other solve: %v", err)
	}
	otherCk, err := ftdse.NewCheckpoint(other, "", otherLast)
	if err != nil {
		t.Fatalf("other checkpoint: %v", err)
	}
	var otherDoc bytes.Buffer
	if err := ftdse.WriteCheckpoint(&otherDoc, otherCk); err != nil {
		t.Fatalf("other WriteCheckpoint: %v", err)
	}
	mismatched, _ := json.Marshal(service.SubmitRequest{
		Problem:   probDoc.Bytes(),
		WarmStart: otherDoc.Bytes(),
	})
	if st := postSolve(t, srv.URL, mismatched, http.StatusOK, "wait"); st.State != service.StateDone && !st.Cached {
		t.Fatalf("mismatched warm start broke the solve: %+v", st)
	}
}
