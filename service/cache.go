package service

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU over fingerprint → encoded
// JobResult document. Values are the exact bytes served to clients, so
// a hit returns a byte-identical result without re-solving.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached document and marks it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores a document, evicting the least recently used entry when
// over capacity. Re-putting an existing key refreshes its recency but
// keeps the first body: solves are deterministic per fingerprint, and
// keeping the original preserves byte-identity with results already
// handed out.
func (c *resultCache) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
