package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/ftdse"
)

// Fingerprint computes the canonical identity of one solve request: a
// SHA-256 over the canonical ftdse.WriteProblem encoding of the problem
// and the fixed-order rendering of the normalized solver options. It is
// the key of the service's result cache.
//
// The scheme leans on two guarantees pinned by tests elsewhere in the
// module: the problem encoding is canonical (WriteProblem → ReadProblem
// → WriteProblem is byte-identical, so re-submissions of a document and
// of its round-tripped form hash alike), and untimed solves are
// deterministic — for every engine, including the seeded stochastic
// ones and the racing portfolio, whose winner is selected by (cost,
// racer order) after the race — so a cached result is exactly what a
// re-solve would produce. Options are part of the key because they
// change the answer: the engine name and seed participate, while the
// worker count is excluded for untimed requests, which are
// worker-independent by the solver's determinism contract. A portfolio
// race with StopWhenSchedulable is the timing-dependent exception —
// the first schedulable incumbent cancels the race mid-flight — so,
// like a timed request, it keeps its worker count in the key and its
// cached answer is best-effort for exactly that configuration.
//
// A submission's warm start (SubmitRequest.WarmStart) is deliberately
// NOT part of the fingerprint: it only changes the search's starting
// point, never what the submitter asked for, so failover resubmissions
// carrying a checkpoint coalesce with plain duplicates and later
// identical submissions hit the cache. The price is that a cached
// warm-started result may reflect a different — by construction never
// worse than the warm start — trajectory than a cold solve; DESIGN.md
// §13 documents the trade.
func Fingerprint(p ftdse.Problem, o SolveOptions) (string, error) {
	no, err := o.normalized()
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := ftdse.WriteProblem(&buf, p); err != nil {
		return "", fmt.Errorf("service: fingerprinting problem: %w", err)
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	io.WriteString(h, "\x00"+no.canonical())
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
