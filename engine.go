package ftdse

import (
	"fmt"
	"strings"

	"repro/ftdse/internal/core"
)

// Engine is a pluggable search algorithm: it receives a Search handle —
// the problem's move neighborhood, the memoizing parallel evaluator and
// the run's incumbent channel — and drives exploration however it likes
// under the caller's context. Select one with WithEngine; the default
// is the paper's greedy→tabu pipeline (DefaultEngine).
//
// Engines must be deterministic given their configuration (stochastic
// ones derive all randomness from an explicit seed), must honor context
// cancellation within one scheduling pass, and must report every
// strictly-better design through Search.Publish. See DESIGN.md §10 for
// the full contract.
type Engine = core.Engine

// Search is the handle an Engine explores through: the legal move
// neighborhood (Moves), the memoizing parallel evaluator (Evaluate,
// Materialize), the incumbent board (Publish, Best) and the working
// point (Current) that pipeline stages hand from engine to engine.
type Search = core.Search

// Move is one design transformation: it replaces the fault-tolerance
// policy (and thereby the mapping) of a single process. Moves come from
// Search.Moves and are applied with ApplyTo.
type Move = core.Move

// MoveEval is the outcome of evaluating one candidate move. Evaluate
// returns costs only — candidates are scheduled into reusable arenas
// and Schedule is always nil — so engines materialize the schedule of
// the winning move with Search.Materialize.
type MoveEval = core.MoveEval

// GreedyEngine is the paper's greedy improvement loop (GreedyMPA,
// step 2 of Figure 6): apply the best critical-path move while it
// improves the design.
type GreedyEngine = core.GreedyEngine

// TabuEngine is the paper's tabu search (TabuSearchMPA, Figure 9) with
// selective history, aspiration and diversification.
type TabuEngine = core.TabuEngine

// SimulatedAnnealingEngine explores with a seeded, deterministic
// geometric cooling schedule — a genuinely different algorithm over the
// same move neighborhood. The zero value is ready to use; see WithSeed.
type SimulatedAnnealingEngine = core.SimulatedAnnealingEngine

// PipelineEngine runs its stages sequentially, each starting from the
// incumbent the previous stages produced.
type PipelineEngine = core.PipelineEngine

// PortfolioEngine races its engines concurrently, each on a private
// scheduling context with an equal share of the configured workers,
// exchanging incumbents through the shared progress board. The winner
// is selected deterministically: lowest cost, ties broken by racer
// order — so an untimed portfolio is at least as good as its best
// racer, reproducibly.
type PortfolioEngine = core.PortfolioEngine

// DefaultEngine returns the paper's optimization pipeline (greedy
// improvement, then tabu search) — the engine used when WithEngine is
// not given. It reproduces the pre-engine solver bit for bit.
func DefaultEngine() Engine { return core.DefaultEngine() }

// Portfolio composes engines into a racing PortfolioEngine.
func Portfolio(racers ...Engine) Engine { return PortfolioEngine{Racers: racers} }

// Engines returns the canonical engine names accepted by ParseEngine,
// in documentation order. Use it for flag usage strings so every tool
// lists the same set.
func Engines() []string {
	return []string{"default", "greedy", "tabu", "sa", "portfolio"}
}

// StochasticEngines returns the subset of Engines whose results depend
// on WithSeed ("sa", and "portfolio" whose racers include it). The
// service layer uses it to normalize seeds out of requests that cannot
// be affected by them. Keep it in sync with ParseEngine when adding a
// seeded engine — TestStochasticEnginesSubset guards the subset
// relation.
func StochasticEngines() []string {
	return []string{"sa", "portfolio"}
}

// ParseEngine converts an engine name (case-insensitive) to a ready
// engine:
//
//	default    the paper's greedy→tabu pipeline
//	greedy     greedy improvement only
//	tabu       tabu search only
//	sa         simulated annealing (seeded via WithSeed)
//	portfolio  Portfolio(tabu, sa): race both, keep the better design
//
// It is the inverse of Engine.Name for every listed name.
func ParseEngine(name string) (Engine, error) {
	switch strings.ToLower(name) {
	case "default":
		return DefaultEngine(), nil
	case "greedy":
		return GreedyEngine{}, nil
	case "tabu":
		return TabuEngine{}, nil
	case "sa":
		return SimulatedAnnealingEngine{}, nil
	case "portfolio":
		return PortfolioEngine{
			Label:  "portfolio",
			Racers: []Engine{TabuEngine{}, SimulatedAnnealingEngine{}},
		}, nil
	}
	return nil, fmt.Errorf("ftdse: unknown engine %q (want one of %s)",
		name, strings.Join(Engines(), ", "))
}
