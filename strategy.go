package ftdse

import (
	"fmt"
	"strings"

	"repro/ftdse/internal/core"
)

// Strategy selects the optimization approach. The zero value is MXR,
// the paper's contribution; the others are the evaluation baselines.
type Strategy = core.Strategy

const (
	// MXR optimizes mapping and policy assignment together, mixing
	// re-execution and replication (the paper's approach).
	MXR Strategy = core.MXR
	// MX considers only re-execution (plus mapping moves).
	MX Strategy = core.MX
	// MR considers only active replication (plus replica remaps).
	MR Strategy = core.MR
	// SFX derives a fault-oblivious mapping first, then applies
	// re-execution on top of it (the "straightforward" baseline).
	SFX Strategy = core.SFX
	// NFT is the optimized non-fault-tolerant reference (k = 0).
	NFT Strategy = core.NFT
)

// Strategies returns all strategies in the paper's evaluation order.
func Strategies() []Strategy { return []Strategy{MXR, MX, MR, SFX, NFT} }

// ParseStrategy converts a strategy name ("mxr", "mx", "mr", "sfx",
// "nft", case-insensitive) to its Strategy. It is the inverse of
// Strategy.String, so ParseStrategy(s.String()) round-trips for every
// strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if strings.EqualFold(name, s.String()) {
			return s, nil
		}
	}
	return MXR, fmt.Errorf("ftdse: unknown strategy %q (want one of %s)",
		name, strings.Join(StrategyNames(), ", "))
}

// StrategyNames returns the canonical lower-case names accepted by
// ParseStrategy, for flag usage strings.
func StrategyNames() []string {
	out := make([]string, 0, len(Strategies()))
	for _, s := range Strategies() {
		out = append(out, strings.ToLower(s.String()))
	}
	return out
}

// StopCauses returns all stop causes in declaration order.
func StopCauses() []StopCause { return []StopCause{StopCompleted, StopTimeLimit, StopCanceled} }

// ParseStopCause converts a stop-cause name ("completed", "time limit",
// "canceled" — the StopCause.String values carried in the service wire
// format) back to its typed StopCause, so API consumers can tell a
// converged solve from a deadline-truncated one without string
// comparisons. It is the inverse of StopCause.String.
func ParseStopCause(name string) (StopCause, error) {
	for _, c := range StopCauses() {
		if strings.EqualFold(name, c.String()) {
			return c, nil
		}
	}
	names := make([]string, 0, len(StopCauses()))
	for _, c := range StopCauses() {
		names = append(names, c.String())
	}
	return StopCompleted, fmt.Errorf("ftdse: unknown stop cause %q (want one of %s)",
		name, strings.Join(names, ", "))
}
