package ftdse_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/ftdse"
)

// checkpointProblem builds a small three-process pipeline used by the
// checkpoint and warm-start tests.
func checkpointProblem(t testing.TB) ftdse.Problem {
	t.Helper()
	b := ftdse.NewProblem("ckpt").Nodes(2)
	g := b.Graph("G", ftdse.Ms(1000), ftdse.Ms(400))
	p1 := g.Process("P1", ftdse.Ms(10), ftdse.Ms(12))
	p2 := g.Process("P2", ftdse.Ms(20), ftdse.Ms(22))
	p3 := g.Process("P3", ftdse.Ms(30), ftdse.Ms(32))
	g.Edge(p1, p2, 2).Edge(p2, p3, 2)
	p, err := b.Faults(1, ftdse.Ms(5)).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestCheckpointRoundTrip(t *testing.T) {
	p := checkpointProblem(t)
	var last ftdse.Improvement
	res, err := ftdse.NewSolver(ftdse.WithProgress(func(imp ftdse.Improvement) {
		last = imp
	})).Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(last.Design) == 0 {
		t.Fatal("progress observer saw no design snapshot")
	}

	c, err := ftdse.NewCheckpoint(p, "fp-123", last)
	if err != nil {
		t.Fatalf("NewCheckpoint: %v", err)
	}
	if c.Version != ftdse.CheckpointVersion || c.Fingerprint != "fp-123" {
		t.Fatalf("checkpoint header = %+v", c)
	}
	if len(c.Design) != p.NumProcesses() {
		t.Fatalf("checkpoint covers %d processes, want %d", len(c.Design), p.NumProcesses())
	}

	var first bytes.Buffer
	if err := ftdse.WriteCheckpoint(&first, c); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	c2, err := ftdse.ReadCheckpoint(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v\ndoc:\n%s", err, first.Bytes())
	}
	var second bytes.Buffer
	if err := ftdse.WriteCheckpoint(&second, c2); err != nil {
		t.Fatalf("re-serializing: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("checkpoint round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
			first.Bytes(), second.Bytes())
	}

	// The design must resolve back to the exact incumbent assignment.
	d, err := ftdse.CheckpointDesign(p, c2)
	if err != nil {
		t.Fatalf("CheckpointDesign: %v", err)
	}
	if !reflect.DeepEqual(d, res.Design) {
		t.Fatalf("resolved design differs from incumbent:\ngot  %v\nwant %v", d, res.Design)
	}
}

func TestCheckpointRejectsInvalid(t *testing.T) {
	p := checkpointProblem(t)
	cases := []struct{ name, doc string }{
		{"empty", `{}`},
		{"bad version", `{"version":2,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P1":[{"node":"N1"}]}}`},
		{"unknown field", `{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P1":[{"node":"N1"}]},"extra":1}`},
		{"no design", `{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{}}`},
		{"no replicas", `{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P1":[]}}`},
		{"trailing", `{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P1":[{"node":"N1"}]}}{}`},
		{"schedulable with tardiness", `{"version":1,"iteration":0,"schedulable":true,"makespan_ms":1,"tardiness_ms":3,"design":{"P1":[{"node":"N1"}]}}`},
	}
	for _, tc := range cases {
		if _, err := ftdse.ReadCheckpoint(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: ReadCheckpoint accepted %s", tc.name, tc.doc)
		}
	}

	// A checkpoint that parses but does not fit the problem must be
	// rejected by CheckpointDesign, not silently mis-resolved.
	for _, tc := range []struct{ name, doc string }{
		{"unknown process", `{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P1":[{"node":"N1"}],"P2":[{"node":"N1"}],"P3":[{"node":"N1"}],"P9":[{"node":"N1"}]}}`},
		{"unknown node", `{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P1":[{"node":"N9"}],"P2":[{"node":"N1"}],"P3":[{"node":"N1"}]}}`},
		{"missing process", `{"version":1,"iteration":0,"schedulable":false,"makespan_ms":1,"design":{"P1":[{"node":"N1"}]}}`},
	} {
		c, err := ftdse.ReadCheckpoint(strings.NewReader(tc.doc))
		if err != nil {
			t.Fatalf("%s: doc does not parse: %v", tc.name, err)
		}
		if _, err := ftdse.CheckpointDesign(p, c); err == nil {
			t.Errorf("%s: CheckpointDesign resolved an ill-fitting checkpoint", tc.name)
		}
	}
}

func TestWarmStartNeverWorse(t *testing.T) {
	p := checkpointProblem(t)
	full, err := ftdse.NewSolver().Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}

	// A warm start from the cold incumbent with almost no search budget
	// must still end at or below the incumbent's cost: the warm start is
	// adopted through the monotone publish gate before the engines run.
	warm, err := ftdse.NewSolver(
		ftdse.WithMaxIterations(1),
		ftdse.WithWarmStart(full.Design),
	).Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if full.Cost.Less(warm.Cost) {
		t.Fatalf("warm-started cost %v regressed past warm start %v", warm.Cost, full.Cost)
	}

	// Determinism: the same problem, options and warm start twice.
	again, err := ftdse.NewSolver(
		ftdse.WithMaxIterations(1),
		ftdse.WithWarmStart(full.Design),
	).Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("second warm solve: %v", err)
	}
	if !reflect.DeepEqual(warm.Design, again.Design) || warm.Cost != again.Cost {
		t.Fatalf("warm-started solve is not deterministic:\nfirst  %v %v\nsecond %v %v",
			warm.Cost, warm.Design, again.Cost, again.Design)
	}
}

func TestWarmStartInvalidIsSkipped(t *testing.T) {
	p := checkpointProblem(t)
	cold, err := ftdse.NewSolver().Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}

	// An ill-fitting warm start (unknown node) degrades to a cold start
	// instead of failing the solve.
	bad := ftdse.Design{}
	for _, proc := range p.Processes() {
		bad[proc.ID] = ftdse.Reexecution(99, p.Faults().K)
	}
	got, err := ftdse.NewSolver(ftdse.WithWarmStart(bad)).Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("solve with invalid warm start: %v", err)
	}
	if !reflect.DeepEqual(got.Design, cold.Design) {
		t.Fatalf("invalid warm start changed the result:\ngot  %v\nwant %v", got.Design, cold.Design)
	}
}

func TestWarmStartObserverOwnsDesign(t *testing.T) {
	p := checkpointProblem(t)
	// Mutating the snapshot delivered to the observer must not disturb
	// the search: the Improvement carries a private clone.
	res, err := ftdse.NewSolver(ftdse.WithProgress(func(imp ftdse.Improvement) {
		for id := range imp.Design {
			imp.Design[id] = ftdse.Policy{}
		}
	})).Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ref, err := ftdse.NewSolver().Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if !reflect.DeepEqual(res.Design, ref.Design) {
		t.Fatal("observer mutation of Improvement.Design leaked into the search")
	}
}
