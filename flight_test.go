package ftdse_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/ftdse"
)

// solveWithRecorder runs a small deterministic solve with the flight
// recorder enabled and returns the captured trace.
func solveWithRecorder(t *testing.T, events int) *ftdse.Trace {
	t.Helper()
	prob := testProblem(12, 3, 2)
	solver := ftdse.NewSolver(
		ftdse.WithMaxIterations(8),
		ftdse.WithFlightRecorder(events))
	res, err := solver.Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Trace == nil {
		t.Fatal("WithFlightRecorder enabled but Result.Trace is nil")
	}
	return res.Trace
}

// TestFlightRecorderCapturesRun pins the shape of a captured trace: it
// opens with run_start, closes with run_end carrying the stop cause,
// brackets every phase, reports monotonically improving incumbents, and
// round-trips byte-identically through the JSONL document form.
func TestFlightRecorderCapturesRun(t *testing.T) {
	tr := solveWithRecorder(t, ftdse.DefaultFlightRecorderEvents)
	if tr.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (ring far larger than the run)", tr.Dropped)
	}
	if len(tr.Events) < 4 {
		t.Fatalf("trace has %d events, want at least run_start, phases, run_end", len(tr.Events))
	}
	if first := tr.Events[0]; first.Kind != ftdse.EventRunStart {
		t.Errorf("first event kind = %q, want %q", first.Kind, ftdse.EventRunStart)
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != ftdse.EventRunEnd {
		t.Errorf("last event kind = %q, want %q", last.Kind, ftdse.EventRunEnd)
	}
	if last.Cause != ftdse.StopCompleted.String() {
		t.Errorf("run_end cause = %q, want %q", last.Cause, ftdse.StopCompleted)
	}

	var (
		prevSeq     int
		prevElapsed float64
		incumbents  int
		hasInc      bool
		prevCost    ftdse.Cost
		open        = map[string]int{}
	)
	for i, ev := range tr.Events {
		if !ftdse.ValidEventKind(ev.Kind) {
			t.Fatalf("event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.Seq <= prevSeq {
			t.Fatalf("event %d: seq %d not increasing after %d", i, ev.Seq, prevSeq)
		}
		if ev.ElapsedMs < prevElapsed {
			t.Fatalf("event %d: elapsed %v before %v", i, ev.ElapsedMs, prevElapsed)
		}
		prevSeq, prevElapsed = ev.Seq, ev.ElapsedMs
		switch ev.Kind {
		case ftdse.EventPhaseEnter:
			open[ev.Phase]++
		case ftdse.EventPhaseExit:
			if open[ev.Phase] == 0 {
				t.Fatalf("event %d: phase_exit %q without matching enter", i, ev.Phase)
			}
			open[ev.Phase]--
		case ftdse.EventIncumbent:
			incumbents++
			c := ftdse.Cost{Tardiness: ftdse.Us(ev.TardinessUs), Makespan: ftdse.Us(ev.MakespanUs)}
			if hasInc && prevCost.Less(c) {
				t.Fatalf("event %d: incumbent cost %v worse than previous %v", i, c, prevCost)
			}
			prevCost, hasInc = c, true
		}
	}
	for phase, n := range open {
		if n != 0 {
			t.Errorf("phase %q entered %d more times than exited", phase, n)
		}
	}
	if incumbents == 0 {
		t.Error("trace records no incumbent events (the initial solution must appear)")
	}

	var first bytes.Buffer
	if err := ftdse.WriteTrace(&first, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !strings.HasPrefix(first.String(), `{"version":1,"dropped":0}`) {
		t.Errorf("trace header not canonical: %q", firstLine(first.String()))
	}
	tr2, err := ftdse.ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace on canonical form: %v", err)
	}
	var second bytes.Buffer
	if err := ftdse.WriteTrace(&second, tr2); err != nil {
		t.Fatalf("re-serializing trace: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("trace round trip is not a fixed point")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestFlightRecorderDisabled pins the off-by-default contract: without
// WithFlightRecorder the result carries no trace.
func TestFlightRecorderDisabled(t *testing.T) {
	prob := testProblem(12, 3, 2)
	res, err := ftdse.NewSolver(ftdse.WithMaxIterations(4)).Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Trace != nil {
		t.Fatalf("recorder disabled but Result.Trace has %d events", len(res.Trace.Events))
	}
}

// TestFlightRecorderRingBounds pins the bounded-ring contract: a tiny
// capacity keeps the newest events, counts the overwritten ones, and
// the truncated trace still validates and round-trips (sequence numbers
// keep increasing across the drop point).
func TestFlightRecorderRingBounds(t *testing.T) {
	const capacity = 8
	tr := solveWithRecorder(t, capacity)
	if len(tr.Events) != capacity {
		t.Fatalf("ring of %d kept %d events", capacity, len(tr.Events))
	}
	if tr.Dropped == 0 {
		t.Fatal("tiny ring over a full solve dropped nothing")
	}
	if last := tr.Events[len(tr.Events)-1]; last.Kind != ftdse.EventRunEnd {
		t.Errorf("last event kind = %q, want %q (newest events win)", last.Kind, ftdse.EventRunEnd)
	}
	var buf bytes.Buffer
	if err := ftdse.WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace on truncated trace: %v", err)
	}
	if _, err := ftdse.ReadTrace(&buf); err != nil {
		t.Fatalf("ReadTrace on truncated trace: %v", err)
	}
}

// TestReadTraceRejects pins the strict-parse contract of the trace
// document reader.
func TestReadTraceRejects(t *testing.T) {
	cases := map[string]string{
		"empty document":    "",
		"unknown version":   `{"version":99,"dropped":0}` + "\n",
		"unknown header":    `{"version":1,"dropped":0,"x":1}` + "\n",
		"negative dropped":  `{"version":1,"dropped":-1}` + "\n",
		"unknown kind":      "{\"version\":1,\"dropped\":0}\n{\"seq\":1,\"elapsed_ms\":0,\"kind\":\"bogus\"}\n",
		"unknown field":     "{\"version\":1,\"dropped\":0}\n{\"seq\":1,\"elapsed_ms\":0,\"kind\":\"run_start\",\"x\":1}\n",
		"seq not monotone":  "{\"version\":1,\"dropped\":0}\n{\"seq\":2,\"elapsed_ms\":0,\"kind\":\"run_start\"}\n{\"seq\":2,\"elapsed_ms\":0,\"kind\":\"run_end\"}\n",
		"elapsed regresses": "{\"version\":1,\"dropped\":0}\n{\"seq\":1,\"elapsed_ms\":5,\"kind\":\"run_start\"}\n{\"seq\":2,\"elapsed_ms\":1,\"kind\":\"run_end\"}\n",
		"sweep overflow":    "{\"version\":1,\"dropped\":0}\n{\"seq\":1,\"elapsed_ms\":0,\"kind\":\"sweep\",\"moves\":2,\"evaluated\":2,\"cache_hits\":1}\n",
		"trailing garbage":  "{\"version\":1,\"dropped\":0} junk\n",
		"blank line":        "{\"version\":1,\"dropped\":0}\n\n{\"seq\":1,\"elapsed_ms\":0,\"kind\":\"run_start\"}\n",
	}
	for name, doc := range cases {
		if _, err := ftdse.ReadTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadTrace accepted invalid document", name)
		}
	}
}
