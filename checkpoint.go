package ftdse

import (
	"io"

	"repro/ftdse/internal/sysio"
)

// Checkpoint is the parsed form of a search checkpoint: the incumbent
// design plus where the search stood when the snapshot was taken
// (phase, iteration, cost, elapsed time). The cluster tier pushes one
// per checkpoint interval so a killed node's solve resumes elsewhere
// via WithWarmStart; the document is also a durable, human-readable
// record of an incumbent. Like the problem and schedule exports the
// encoding is canonical, so an accepted document round-trips through
// WriteCheckpoint bit-identically.
type Checkpoint = sysio.CheckpointDoc

// CheckpointReplica is one replica of one process in a checkpointed
// design.
type CheckpointReplica = sysio.CheckpointReplica

// CheckpointVersion is the current checkpoint document version.
const CheckpointVersion = sysio.CheckpointVersion

// ReadCheckpoint parses a checkpoint document written by
// WriteCheckpoint. The parse is strict — unknown fields, trailing
// content and structurally invalid documents are rejected — so an
// accepted document re-serializes to identical bytes.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	return sysio.ReadCheckpoint(r)
}

// WriteCheckpoint serializes a checkpoint in the canonical form.
func WriteCheckpoint(w io.Writer, c Checkpoint) error {
	return sysio.WriteCheckpoint(w, c)
}

// NewCheckpoint snapshots an incumbent improvement (as delivered to a
// WithProgress observer) of a solve over p as a checkpoint document.
// The improvement must carry its design. The fingerprint — typically
// service.Fingerprint of the job — identifies which solve the
// checkpoint belongs to; it may be empty.
func NewCheckpoint(p Problem, fingerprint string, imp Improvement) (Checkpoint, error) {
	shell := Checkpoint{
		Fingerprint: fingerprint,
		Phase:       imp.Phase,
		Iteration:   imp.Iteration,
		Schedulable: imp.Schedulable,
		MakespanMs:  float64(imp.Cost.Makespan) / float64(Millisecond),
		TardinessMs: float64(imp.Cost.Tardiness) / float64(Millisecond),
		ElapsedMs:   float64(imp.Elapsed.Milliseconds()),
	}
	return sysio.NewCheckpoint(p.core, shell, imp.Design)
}

// CheckpointDesign resolves a checkpoint's design against a problem,
// returning the Design that warm-starts a solve (WithWarmStart).
// Processes and nodes are matched by name, so the checkpoint may come
// from a *similar* problem — same structure, perturbed WCETs — not
// only from a byte-identical one. Unknown or missing processes and
// unknown nodes are errors.
func CheckpointDesign(p Problem, c Checkpoint) (Design, error) {
	return sysio.CheckpointAssignment(p.core, c)
}
