module repro/ftdse

go 1.22
