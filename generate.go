package ftdse

import (
	"fmt"
	"strings"

	"repro/ftdse/internal/gen"
)

// GenSpec describes one synthetic application for GenerateProblem,
// following the paper's evaluation setup (random/tree/chain graphs,
// 10–100 ms WCETs, 1–4 byte messages). The same spec always generates
// the same problem.
type GenSpec = gen.Spec

// GraphShape selects the generated graph structure.
type GraphShape = gen.Shape

const (
	// ShapeRandom generates a layered random DAG.
	ShapeRandom GraphShape = gen.Random
	// ShapeTree generates an in-tree (sensor fan-in).
	ShapeTree GraphShape = gen.Tree
	// ShapeChains generates independent process chains.
	ShapeChains GraphShape = gen.Chains
)

// WCETDist selects the execution-time distribution.
type WCETDist = gen.Dist

const (
	// DistUniform draws WCETs uniformly from the configured range.
	DistUniform WCETDist = gen.Uniform
	// DistExponential draws WCETs exponentially, clamped to the range.
	DistExponential WCETDist = gen.Exponential
)

// GenerateProblem builds a synthetic design problem from a spec and a
// fault hypothesis, as the paper's evaluation does.
func GenerateProblem(spec GenSpec, fm FaultModel) Problem {
	return Problem{core: gen.Problem(spec, fm)}
}

// ShapeNames returns the canonical lower-case names accepted by
// ParseShape, for flag usage strings.
func ShapeNames() []string {
	out := make([]string, 0, 3)
	for _, s := range []GraphShape{ShapeRandom, ShapeTree, ShapeChains} {
		out = append(out, strings.ToLower(s.String()))
	}
	return out
}

// ParseShape converts a shape name ("random", "tree", "chains") to its
// GraphShape; the inverse of GraphShape.String.
func ParseShape(name string) (GraphShape, error) {
	for _, s := range []GraphShape{ShapeRandom, ShapeTree, ShapeChains} {
		if strings.EqualFold(name, s.String()) {
			return s, nil
		}
	}
	return ShapeRandom, fmt.Errorf("ftdse: unknown graph shape %q (want one of %s)",
		name, strings.Join(ShapeNames(), ", "))
}

// WCETDistNames returns the canonical lower-case names accepted by
// ParseWCETDist, for flag usage strings.
func WCETDistNames() []string {
	out := make([]string, 0, 2)
	for _, d := range []WCETDist{DistUniform, DistExponential} {
		out = append(out, strings.ToLower(d.String()))
	}
	return out
}

// ParseWCETDist converts a distribution name ("uniform", "exponential")
// to its WCETDist; the inverse of WCETDist.String.
func ParseWCETDist(name string) (WCETDist, error) {
	for _, d := range []WCETDist{DistUniform, DistExponential} {
		if strings.EqualFold(name, d.String()) {
			return d, nil
		}
	}
	return DistUniform, fmt.Errorf("ftdse: unknown WCET distribution %q (want one of %s)",
		name, strings.Join(WCETDistNames(), ", "))
}
