package ftdse

import (
	"fmt"

	"repro/ftdse/internal/arch"
	"repro/ftdse/internal/core"
	"repro/ftdse/internal/model"
)

// ProblemBuilder assembles a Problem fluently: declare the
// architecture, add process graphs with their processes and data
// dependencies, fill the WCET table, state the fault hypothesis, and
// optionally constrain the design space (P_X, P_R, P_M). Build
// validates everything at once, so intermediate calls never fail.
type ProblemBuilder struct {
	app    *model.Application
	arch   *arch.Architecture
	wcet   *arch.WCET
	faults FaultModel

	forceX map[ProcID]bool
	forceR map[ProcID]bool
	pins   map[ProcID]NodeID

	errs []error
}

// NewProblem starts a problem with the given application name.
func NewProblem(name string) *ProblemBuilder {
	return &ProblemBuilder{
		app:    model.NewApplication(name),
		wcet:   arch.NewWCET(),
		forceX: map[ProcID]bool{},
		forceR: map[ProcID]bool{},
		pins:   map[ProcID]NodeID{},
	}
}

// Nodes declares an architecture of n identically named nodes
// (N0..Nn-1) on a TTP bus.
func (b *ProblemBuilder) Nodes(n int) *ProblemBuilder {
	b.arch = arch.New(n)
	return b
}

// NamedNodes declares the architecture with explicit node names; node
// IDs follow the argument order.
func (b *ProblemBuilder) NamedNodes(names ...string) *ProblemBuilder {
	b.arch = arch.NewNamed(names...)
	return b
}

// Faults states the fault hypothesis: tolerate up to k transient
// faults per operation cycle, each costing mu of recovery overhead.
func (b *ProblemBuilder) Faults(k int, mu Time) *ProblemBuilder {
	b.faults.K = k
	b.faults.Mu = mu
	return b
}

// CheckpointCost sets χ, the state-saving cost per checkpoint, used by
// the checkpointing extension (WithCheckpointing).
func (b *ProblemBuilder) CheckpointCost(chi Time) *ProblemBuilder {
	b.faults.Chi = chi
	return b
}

// Graph adds a process graph activated every period with the given
// deadline, and returns its builder.
func (b *ProblemBuilder) Graph(name string, period, deadline Time) *GraphBuilder {
	return &GraphBuilder{b: b, g: b.app.AddGraph(name, period, deadline)}
}

// WCET records the worst-case execution time of a process on a node. A
// process may only run on nodes it has a WCET entry for.
func (b *ProblemBuilder) WCET(p Proc, n NodeID, c Time) *ProblemBuilder {
	b.wcet.Set(p.ID, n, c)
	return b
}

// ForceReexecution pins processes to the pure re-execution policy (the
// paper's P_X set).
func (b *ProblemBuilder) ForceReexecution(ps ...Proc) *ProblemBuilder {
	for _, p := range ps {
		b.forceX[p.ID] = true
	}
	return b
}

// ForceReplication pins processes to pure active replication (P_R).
func (b *ProblemBuilder) ForceReplication(ps ...Proc) *ProblemBuilder {
	for _, p := range ps {
		b.forceR[p.ID] = true
	}
	return b
}

// Pin fixes the first replica of a process to a node (P_M) — for
// example a sensor that owns node-local hardware.
func (b *ProblemBuilder) Pin(p Proc, n NodeID) *ProblemBuilder {
	b.pins[p.ID] = n
	return b
}

// Build validates the accumulated problem and returns it.
func (b *ProblemBuilder) Build() (Problem, error) {
	if len(b.errs) > 0 {
		return Problem{}, b.errs[0]
	}
	if b.arch == nil {
		return Problem{}, fmt.Errorf("ftdse: no architecture declared (call Nodes or NamedNodes)")
	}
	p := Problem{core: core.Problem{
		App:              b.app,
		Arch:             b.arch,
		WCET:             b.wcet,
		Faults:           b.faults,
		ForceReexecution: b.forceX,
		ForceReplication: b.forceR,
		FixedMapping:     b.pins,
	}}
	if err := p.core.Validate(); err != nil {
		return Problem{}, err
	}
	return p, nil
}

// MustBuild is Build for hard-coded problems: it panics on error.
func (b *ProblemBuilder) MustBuild() Problem {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// GraphBuilder adds processes and data dependencies to one process
// graph.
type GraphBuilder struct {
	b *ProblemBuilder
	g *model.Graph
}

// Process adds a process. Optional WCETs are assigned to nodes 0, 1, …
// in order — a shorthand for calling ProblemBuilder.WCET per node; a
// single value applies to node 0 only.
func (g *GraphBuilder) Process(name string, wcet ...Time) Proc {
	p := g.b.app.AddProcess(g.g, name)
	for i, c := range wcet {
		g.b.wcet.Set(p.ID, NodeID(i), c)
	}
	return Proc{ID: p.ID, Name: p.Name}
}

// Edge adds a data dependency carrying a message of the given payload
// size in bytes. When source and destination map to different nodes the
// message is scheduled on the bus.
func (g *GraphBuilder) Edge(from, to Proc, bytes int) *GraphBuilder {
	src := g.b.app.Process(from.ID)
	dst := g.b.app.Process(to.ID)
	if src == nil || dst == nil {
		g.b.errs = append(g.b.errs,
			fmt.Errorf("ftdse: edge %v -> %v references an unknown process", from, to))
		return g
	}
	g.g.AddEdge(src, dst, bytes)
	return g
}
