package ftdse_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/ftdse"
)

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range ftdse.Strategies() {
		got, err := ftdse.ParseStrategy(s.String())
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", s.String(), err)
			continue
		}
		if got != s {
			t.Errorf("ParseStrategy(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := ftdse.ParseStrategy("mxr"); err != nil {
		t.Errorf("ParseStrategy is not case-insensitive: %v", err)
	}
	if _, err := ftdse.ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
	if len(ftdse.StrategyNames()) != len(ftdse.Strategies()) {
		t.Error("StrategyNames and Strategies disagree")
	}
}

func TestParseShapeAndDistRoundTrip(t *testing.T) {
	for _, sh := range []ftdse.GraphShape{ftdse.ShapeRandom, ftdse.ShapeTree, ftdse.ShapeChains} {
		got, err := ftdse.ParseShape(sh.String())
		if err != nil || got != sh {
			t.Errorf("ParseShape(%q) = %v, %v", sh.String(), got, err)
		}
	}
	for _, d := range []ftdse.WCETDist{ftdse.DistUniform, ftdse.DistExponential} {
		got, err := ftdse.ParseWCETDist(d.String())
		if err != nil || got != d {
			t.Errorf("ParseWCETDist(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ftdse.ParseShape("star"); err == nil {
		t.Error("ParseShape accepted an unknown shape")
	}
}

// TestProblemBuilder exercises the fluent construction path end to end:
// build, constrain, solve, and verify the constraints in the design.
func TestProblemBuilder(t *testing.T) {
	b := ftdse.NewProblem("builder").Nodes(2)
	g := b.Graph("G", ftdse.Ms(1000), ftdse.Ms(500))
	p1 := g.Process("P1", ftdse.Ms(10), ftdse.Ms(12))
	p2 := g.Process("P2", ftdse.Ms(20), ftdse.Ms(22))
	p3 := g.Process("P3", ftdse.Ms(30), ftdse.Ms(32))
	g.Edge(p1, p2, 2).Edge(p2, p3, 2)
	prob, err := b.Faults(1, ftdse.Ms(5)).
		Pin(p1, 1).
		ForceReexecution(p2).
		ForceReplication(p3).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if prob.NumProcesses() != 3 || prob.NumNodes() != 2 {
		t.Fatalf("problem shape: %d processes on %d nodes", prob.NumProcesses(), prob.NumNodes())
	}
	if prob.Name() != "builder" {
		t.Errorf("Name = %q", prob.Name())
	}
	names := []string{"P1", "P2", "P3"}
	for i, p := range prob.Processes() {
		if p.Name != names[i] {
			t.Errorf("process %d = %q, want %q", i, p.Name, names[i])
		}
	}

	res, err := ftdse.NewSolver(ftdse.WithMaxIterations(30)).Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Design[p1.ID].Replicas[0].Node != 1 {
		t.Errorf("P1 pinned to node 1, mapped to %v", res.Design[p1.ID])
	}
	if res.Design[p2.ID].ReplicaCount() != 1 {
		t.Errorf("P2 forced to re-execution, got %v", res.Design[p2.ID])
	}
	if res.Design[p3.ID].ReplicaCount() != 2 {
		t.Errorf("P3 forced to replication, got %v", res.Design[p3.ID])
	}
}

func TestProblemBuilderRejectsInvalid(t *testing.T) {
	// No architecture.
	if _, err := ftdse.NewProblem("x").Build(); err == nil {
		t.Error("Build accepted a problem without an architecture")
	}
	// A process with no WCET anywhere.
	b := ftdse.NewProblem("x").Nodes(2)
	b.Graph("G", ftdse.Ms(100), ftdse.Ms(100)).Process("orphan")
	if _, err := b.Faults(1, ftdse.Ms(1)).Build(); err == nil {
		t.Error("Build accepted a process with no allowed node")
	}
	// A process in both P_X and P_R.
	b2 := ftdse.NewProblem("x").Nodes(2)
	p := b2.Graph("G", ftdse.Ms(100), ftdse.Ms(100)).Process("P", ftdse.Ms(1), ftdse.Ms(1))
	if _, err := b2.Faults(1, ftdse.Ms(1)).ForceReexecution(p).ForceReplication(p).Build(); err == nil {
		t.Error("Build accepted a process in both P_X and P_R")
	}
}

// TestEvaluateFixedDesign checks the no-search evaluation path used by
// the motivating examples.
func TestEvaluateFixedDesign(t *testing.T) {
	b := ftdse.NewProblem("fixed").Nodes(2)
	g := b.Graph("G", ftdse.Ms(1000), ftdse.Ms(1000))
	p1 := g.Process("P1", ftdse.Ms(30), ftdse.Ms(30))
	prob, err := b.Faults(2, ftdse.Ms(10)).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := prob.Evaluate(ftdse.Design{p1.ID: ftdse.Reexecution(0, 2)})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// 30ms + 2 × (10ms recovery + 30ms re-run) = 110ms (Figure 2a).
	if s.Makespan != ftdse.Ms(110) {
		t.Errorf("re-execution worst case = %v, want 110ms", s.Makespan)
	}
	r, err := prob.Evaluate(ftdse.Design{p1.ID: ftdse.ReplicatedReexecution([]ftdse.NodeID{0, 1}, 2)})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// Re-executed replicas complete by 70ms in the worst case (Figure 2c).
	if r.Makespan != ftdse.Ms(70) {
		t.Errorf("replicated re-execution worst case = %v, want 70ms", r.Makespan)
	}
}

// TestIOAndRenderRoundTrip writes a problem, reads it back, solves it,
// and exercises the export surfaces.
func TestIOAndRenderRoundTrip(t *testing.T) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 8, Nodes: 2, Seed: 3},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
	var buf bytes.Buffer
	if err := ftdse.WriteProblem(&buf, prob); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	back, err := ftdse.ReadProblem(&buf)
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if back.NumProcesses() != prob.NumProcesses() || back.NumNodes() != prob.NumNodes() {
		t.Fatalf("round trip changed the problem shape")
	}

	res, err := ftdse.NewSolver(ftdse.WithMaxIterations(10)).Solve(context.Background(), back)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := ftdse.ValidateSchedule(res.Schedule); err != nil {
		t.Fatalf("ValidateSchedule: %v", err)
	}
	if rows := ftdse.CompileTables(res.Schedule).TotalRows(); rows <= 0 {
		t.Errorf("CompileTables reports %d rows", rows)
	}
	for name, out := range map[string]string{
		"GanttTable":   ftdse.GanttTable(res.Schedule),
		"GanttChart":   ftdse.GanttChart(res.Schedule, 80),
		"GanttSummary": ftdse.GanttSummary(res.Schedule),
	} {
		if strings.TrimSpace(out) == "" {
			t.Errorf("%s produced no output", name)
		}
	}
	var sched, dot bytes.Buffer
	if err := ftdse.WriteSchedule(&sched, res.Schedule); err != nil {
		t.Errorf("WriteSchedule: %v", err)
	}
	if err := ftdse.WriteDesignDOT(&dot, res.Schedule); err != nil {
		t.Errorf("WriteDesignDOT: %v", err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Errorf("DOT output missing digraph header")
	}
}

// TestSimulationFacade runs every scenario of a small synthesized
// design and checks the analysis bound holds.
func TestSimulationFacade(t *testing.T) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 6, Nodes: 2, Seed: 1},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
	res, err := ftdse.NewSolver(ftdse.WithMaxIterations(10)).Solve(context.Background(), prob)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	n := 0
	ftdse.ForEachScenario(res.Schedule, func(sc ftdse.Scenario) bool {
		n++
		r := ftdse.RunScenario(res.Schedule, sc)
		if r.Makespan > res.Schedule.Makespan {
			t.Errorf("scenario %v exceeded the analysis bound: %v > %v",
				sc, r.Makespan, res.Schedule.Makespan)
		}
		return true
	})
	if int64(n) != ftdse.ScenarioCount(res.Schedule) {
		t.Errorf("enumerated %d scenarios, ScenarioCount says %d", n, ftdse.ScenarioCount(res.Schedule))
	}
	cr := ftdse.Campaign{Samples: 100, Seed: 1}.Run(res.Schedule)
	if cr.Violations != 0 {
		t.Errorf("campaign found %d violations of the analysis", cr.Violations)
	}
}

func TestCruiseControlFacade(t *testing.T) {
	prob := ftdse.CruiseControl()
	if prob.NumProcesses() != 32 || prob.NumNodes() != 3 {
		t.Fatalf("CC = %d processes on %d nodes", prob.NumProcesses(), prob.NumNodes())
	}
	if prob.Faults().K != 2 {
		t.Errorf("CC fault hypothesis k = %d, want 2", prob.Faults().K)
	}
	if ftdse.CruiseControlDeadline != ftdse.Ms(250) {
		t.Errorf("CC deadline = %v", ftdse.CruiseControlDeadline)
	}
}
