// Benchmarks regenerating the paper's evaluation (Section 6): one
// benchmark per table and figure, plus ablations of the design choices
// and micro-benchmarks of the scheduling substrate.
//
// The table/figure benchmarks report the paper's metrics (overhead and
// deviation percentages, schedule lengths) via b.ReportMetric; the shape
// to compare against the paper is recorded in EXPERIMENTS.md. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/ccapp"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ttp"
)

// benchConfig is the per-run search budget of the table benchmarks:
// large enough to show the paper's shapes, small enough for a default
// benchmark run. ftexp -paper runs the full protocol.
func benchConfig() bench.Config {
	return bench.Config{Seeds: 1, MaxIterations: 40, TimeLimit: 60 * time.Second}
}

// BenchmarkTable1a regenerates Table 1a: fault-tolerance overhead of
// MXR vs NFT as the application grows from 20 to 100 processes.
func BenchmarkTable1a(b *testing.B) {
	cfg := benchConfig()
	for _, d := range bench.Table1aDims() {
		d := d
		b.Run(bench.Table1aLabel(d), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				costs, err := cfg.RunPoint(d, 0, []core.Strategy{core.NFT, core.MXR})
				if err != nil {
					b.Fatal(err)
				}
				nft := float64(costs[core.NFT].Makespan)
				overhead = 100 * (float64(costs[core.MXR].Makespan) - nft) / nft
			}
			b.ReportMetric(overhead, "overhead%")
		})
	}
}

// BenchmarkTable1b regenerates Table 1b: overhead as the number of
// faults k grows (60 processes, 4 nodes, µ=5ms).
func BenchmarkTable1b(b *testing.B) {
	cfg := benchConfig()
	for _, d := range bench.Table1bDims() {
		d := d
		b.Run(bench.Table1bLabel(d), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				costs, err := cfg.RunPoint(d, 0, []core.Strategy{core.NFT, core.MXR})
				if err != nil {
					b.Fatal(err)
				}
				nft := float64(costs[core.NFT].Makespan)
				overhead = 100 * (float64(costs[core.MXR].Makespan) - nft) / nft
			}
			b.ReportMetric(overhead, "overhead%")
		})
	}
}

// BenchmarkTable1c regenerates Table 1c: overhead as the fault duration
// µ grows (20 processes, 2 nodes, k=3).
func BenchmarkTable1c(b *testing.B) {
	cfg := benchConfig()
	for _, d := range bench.Table1cDims() {
		d := d
		b.Run(bench.Table1cLabel(d), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				costs, err := cfg.RunPoint(d, 0, []core.Strategy{core.NFT, core.MXR})
				if err != nil {
					b.Fatal(err)
				}
				nft := float64(costs[core.NFT].Makespan)
				overhead = 100 * (float64(costs[core.MXR].Makespan) - nft) / nft
			}
			b.ReportMetric(overhead, "overhead%")
		})
	}
}

// BenchmarkFigure10 regenerates Figure 10: the average % deviation of
// the single-policy approaches MX and MR and the straightforward SFX
// from the combined MXR.
func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	strategies := []core.Strategy{core.MXR, core.MX, core.MR, core.SFX}
	for _, d := range bench.Table1aDims() {
		d := d
		b.Run(bench.Table1aLabel(d), func(b *testing.B) {
			var devMX, devMR, devSFX float64
			for i := 0; i < b.N; i++ {
				costs, err := cfg.RunPoint(d, 0, strategies)
				if err != nil {
					b.Fatal(err)
				}
				mxr := float64(costs[core.MXR].Makespan)
				devMX = 100 * (float64(costs[core.MX].Makespan) - mxr) / mxr
				devMR = 100 * (float64(costs[core.MR].Makespan) - mxr) / mxr
				devSFX = 100 * (float64(costs[core.SFX].Makespan) - mxr) / mxr
			}
			b.ReportMetric(devMX, "devMX%")
			b.ReportMetric(devMR, "devMR%")
			b.ReportMetric(devSFX, "devSFX%")
		})
	}
}

// BenchmarkCruiseController regenerates the real-life example: the CC
// must be schedulable with MXR within the 250 ms deadline while MX and
// MR miss it (paper: 229 vs 253 and 301 ms).
func BenchmarkCruiseController(b *testing.B) {
	cfg := bench.Config{Seeds: 1, MaxIterations: 1500, TimeLimit: 2 * time.Minute}
	var rows []bench.CCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cfg.CruiseController()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Makespan.Milliseconds(), "δ_"+r.Strategy.String()+"_ms")
	}
}

// BenchmarkAblationSlackSharing quantifies the shared re-execution slack
// of [11] (Figure 3b2): scheduling the same re-execution design with
// private per-process slack instead.
func BenchmarkAblationSlackSharing(b *testing.B) {
	prob := gen.Problem(gen.Spec{Procs: 20, Nodes: 2, Seed: 7}, fault.Model{K: 3, Mu: model.Ms(5)})
	run := func(b *testing.B, sharing bool) model.Time {
		opts := core.DefaultOptions(core.MX)
		opts.MaxIterations = 60
		opts.SlackSharing = sharing
		var m model.Time
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Cost.Makespan
		}
		return m
	}
	b.Run("shared", func(b *testing.B) {
		b.ReportMetric(run(b, true).Milliseconds(), "δ_ms")
	})
	b.Run("private", func(b *testing.B) {
		b.ReportMetric(run(b, false).Milliseconds(), "δ_ms")
	})
}

// BenchmarkAblationTabu quantifies step 3 of the strategy: greedy-only
// (tabu search capped at one iteration) against the full tabu search.
func BenchmarkAblationTabu(b *testing.B) {
	prob := gen.Problem(gen.Spec{Procs: 40, Nodes: 3, Seed: 3}, fault.Model{K: 4, Mu: model.Ms(5)})
	run := func(b *testing.B, iters int) model.Time {
		opts := core.DefaultOptions(core.MXR)
		opts.MaxIterations = iters
		var m model.Time
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Cost.Makespan
		}
		return m
	}
	b.Run("greedy-only", func(b *testing.B) {
		b.ReportMetric(run(b, 1).Milliseconds(), "δ_ms")
	})
	b.Run("greedy+tabu", func(b *testing.B) {
		b.ReportMetric(run(b, 200).Milliseconds(), "δ_ms")
	})
}

// BenchmarkAblationBusOpt quantifies the final bus-access optimization
// step (slot-order hill climbing).
func BenchmarkAblationBusOpt(b *testing.B) {
	prob := gen.Problem(gen.Spec{Procs: 20, Nodes: 4, Seed: 11}, fault.Model{K: 2, Mu: model.Ms(5)})
	run := func(b *testing.B, busOpt bool) model.Time {
		opts := core.DefaultOptions(core.MXR)
		opts.MaxIterations = 60
		opts.OptimizeBusAccess = busOpt
		var m model.Time
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Cost.Makespan
		}
		return m
	}
	b.Run("off", func(b *testing.B) {
		b.ReportMetric(run(b, false).Milliseconds(), "δ_ms")
	})
	b.Run("on", func(b *testing.B) {
		b.ReportMetric(run(b, true).Milliseconds(), "δ_ms")
	})
}

// BenchmarkParallelSearch measures the parallel candidate-move
// evaluation on the 100-process synthetic instance of Table 1a: the
// same MXR search run with one worker (the sequential baseline) and
// with one worker per CPU. The searches are deterministic, so both
// sub-benchmarks do identical scheduling work and the ratio is the
// fan-out speedup.
func BenchmarkParallelSearch(b *testing.B) {
	prob := gen.Problem(gen.Spec{Procs: 100, Nodes: 6, Seed: 1},
		fault.Model{K: 7, Mu: model.Ms(5)})
	run := func(b *testing.B, workers int) {
		opts := core.DefaultOptions(core.MXR)
		opts.MaxIterations = 10
		opts.Workers = workers
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(prob, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { run(b, 0) })
}

// schedulerInput builds one representative scheduling input per size for
// the micro-benchmarks: a deterministic mixed policy assignment (every
// third process replicated over min(k+1, nodes) nodes, the rest
// re-executed) on a generated application.
func schedulerInput(b *testing.B, procs, nodes, k int) sched.Input {
	b.Helper()
	prob := gen.Problem(gen.Spec{Procs: procs, Nodes: nodes, Seed: 5},
		fault.Model{K: k, Mu: model.Ms(5)})
	merged, err := prob.App.Merge()
	if err != nil {
		b.Fatal(err)
	}
	asgn := policy.Assignment{}
	for i, p := range prob.App.Processes() {
		if i%3 == 0 {
			r := k + 1
			if nodes < r {
				r = nodes
			}
			replicaNodes := make([]arch.NodeID, r)
			for j := range replicaNodes {
				replicaNodes[j] = arch.NodeID((i + j) % nodes)
			}
			asgn[p.ID] = policy.Distribute(replicaNodes, k)
		} else {
			asgn[p.ID] = policy.Reexecution(arch.NodeID(i%nodes), k)
		}
	}
	in := sched.Input{
		Graph:      merged,
		Arch:       prob.Arch,
		WCET:       prob.WCET,
		Faults:     prob.Faults,
		Assignment: asgn,
		Bus:        ttp.InitialConfig(prob.Arch, merged.MaxMessageBytes(), ttp.DefaultPerByte),
		Options:    sched.DefaultOptions(),
	}
	st, err := sched.NewStatic(in)
	if err != nil {
		b.Fatal(err)
	}
	in.Static = st
	return in
}

// BenchmarkScheduler measures the throughput of one fault-tolerant list
// scheduling + worst-case analysis pass, the inner loop of the
// optimization.
func BenchmarkScheduler(b *testing.B) {
	for _, dim := range []struct{ procs, nodes, k int }{
		{20, 2, 3}, {60, 4, 5}, {100, 6, 7},
	} {
		in := schedulerInput(b, dim.procs, dim.nodes, dim.k)
		b.Run(bench.Table1aLabel(bench.Dimension{Procs: dim.procs}), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Build(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures one simulated operation cycle of the
// synthesized cruise controller under a random fault scenario.
func BenchmarkSimulator(b *testing.B) {
	prob := ccapp.New()
	opts := core.DefaultOptions(core.MXR)
	opts.MaxIterations = 50
	res, err := core.Optimize(prob, opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sc := sim.RandomScenario(rng, res.Schedule)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.Run(res.Schedule, sc)
		if len(r.Finish) == 0 {
			b.Fatal("empty simulation")
		}
	}
}

// BenchmarkExtensionCheckpointing quantifies the checkpointing extension
// (DESIGN.md §7): re-execution with cheap checkpoints (χ=1ms) against
// plain re-execution under k=3 faults.
func BenchmarkExtensionCheckpointing(b *testing.B) {
	prob := gen.Problem(gen.Spec{Procs: 20, Nodes: 2, Seed: 13},
		fault.Model{K: 3, Mu: model.Ms(5), Chi: model.Ms(1)})
	run := func(b *testing.B, enable bool) model.Time {
		opts := core.DefaultOptions(core.MX)
		opts.MaxIterations = 60
		opts.EnableCheckpointing = enable
		var m model.Time
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Cost.Makespan
		}
		return m
	}
	b.Run("re-execution", func(b *testing.B) {
		b.ReportMetric(run(b, false).Milliseconds(), "δ_ms")
	})
	b.Run("checkpointed", func(b *testing.B) {
		b.ReportMetric(run(b, true).Milliseconds(), "δ_ms")
	})
}

// BenchmarkOptimalityGap measures the tabu search against the exact
// brute-force optimum on instances small enough to enumerate — an
// evaluation the paper could not run. The reported metric is the average
// percentage gap of MXR's schedule length over the optimum.
func BenchmarkOptimalityGap(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		gap = 0
		const seeds = 5
		for seed := int64(0); seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p := randomTinyProblem(rng)
			ex, err := exact.Search(p, exact.Options{SlackSharing: true})
			if err != nil {
				b.Fatal(err)
			}
			opts := core.DefaultOptions(core.MXR)
			opts.MaxIterations = 200
			heur, err := core.Optimize(p, opts)
			if err != nil {
				b.Fatal(err)
			}
			gap += 100 * (float64(heur.Cost.Makespan) - float64(ex.Cost.Makespan)) /
				float64(ex.Cost.Makespan) / seeds
		}
	}
	b.ReportMetric(gap, "gap%")
}

func randomTinyProblem(rng *rand.Rand) core.Problem {
	app := model.NewApplication("tiny")
	g := app.AddGraph("G", model.Ms(1000000), model.Ms(1000000))
	procs := make([]*model.Process, 5)
	for i := range procs {
		procs[i] = app.AddProcess(g, "P")
	}
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			if rng.Intn(3) == 0 {
				g.AddEdge(procs[i], procs[j], 1+rng.Intn(4))
			}
		}
	}
	a := arch.New(2)
	w := arch.NewWCET()
	for _, p := range procs {
		for n := 0; n < 2; n++ {
			w.Set(p.ID, arch.NodeID(n), model.Ms(int64(10+rng.Intn(91))))
		}
	}
	return core.Problem{App: app, Arch: a, WCET: w, Faults: fault.Model{K: 1, Mu: model.Ms(5)}}
}
