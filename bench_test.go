// Benchmarks regenerating the paper's evaluation (Section 6) through
// the public ftdse API: one benchmark per table and figure, plus
// ablations of the design choices. Micro-benchmarks of the scheduling
// substrate live next to it in internal/sched and internal/exact.
//
// The table/figure benchmarks report the paper's metrics (overhead and
// deviation percentages, schedule lengths) via b.ReportMetric; the shape
// to compare against the paper is recorded in EXPERIMENTS.md. Run with:
//
//	go test -bench=. -benchmem
package ftdse_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/ftdse"
	"repro/ftdse/bench"
)

// benchConfig is the per-run search budget of the table benchmarks:
// large enough to show the paper's shapes, small enough for a default
// benchmark run. ftexp -paper runs the full protocol.
func benchConfig() bench.Config {
	return bench.Config{Seeds: 1, MaxIterations: 40, TimeLimit: 60 * time.Second}
}

// overheadBenchmark runs the MXR-vs-NFT overhead measurement of one
// dimension, the shared shape of the Table 1 benchmarks.
func overheadBenchmark(b *testing.B, cfg bench.Config, d bench.Dimension) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		costs, err := cfg.RunPoint(context.Background(), d, 0, []ftdse.Strategy{ftdse.NFT, ftdse.MXR})
		if err != nil {
			b.Fatal(err)
		}
		nft := float64(costs[ftdse.NFT].Makespan)
		overhead = 100 * (float64(costs[ftdse.MXR].Makespan) - nft) / nft
	}
	b.ReportMetric(overhead, "overhead%")
}

// BenchmarkTable1a regenerates Table 1a: fault-tolerance overhead of
// MXR vs NFT as the application grows from 20 to 100 processes.
func BenchmarkTable1a(b *testing.B) {
	cfg := benchConfig()
	for _, d := range bench.Table1aDims() {
		d := d
		b.Run(bench.Table1aLabel(d), func(b *testing.B) { overheadBenchmark(b, cfg, d) })
	}
}

// BenchmarkTable1b regenerates Table 1b: overhead as the number of
// faults k grows (60 processes, 4 nodes, µ=5ms).
func BenchmarkTable1b(b *testing.B) {
	cfg := benchConfig()
	for _, d := range bench.Table1bDims() {
		d := d
		b.Run(bench.Table1bLabel(d), func(b *testing.B) { overheadBenchmark(b, cfg, d) })
	}
}

// BenchmarkTable1c regenerates Table 1c: overhead as the fault duration
// µ grows (20 processes, 2 nodes, k=3).
func BenchmarkTable1c(b *testing.B) {
	cfg := benchConfig()
	for _, d := range bench.Table1cDims() {
		d := d
		b.Run(bench.Table1cLabel(d), func(b *testing.B) { overheadBenchmark(b, cfg, d) })
	}
}

// BenchmarkFigure10 regenerates Figure 10: the average % deviation of
// the single-policy approaches MX and MR and the straightforward SFX
// from the combined MXR.
func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	strategies := []ftdse.Strategy{ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX}
	for _, d := range bench.Table1aDims() {
		d := d
		b.Run(bench.Table1aLabel(d), func(b *testing.B) {
			var devMX, devMR, devSFX float64
			for i := 0; i < b.N; i++ {
				costs, err := cfg.RunPoint(context.Background(), d, 0, strategies)
				if err != nil {
					b.Fatal(err)
				}
				mxr := float64(costs[ftdse.MXR].Makespan)
				devMX = 100 * (float64(costs[ftdse.MX].Makespan) - mxr) / mxr
				devMR = 100 * (float64(costs[ftdse.MR].Makespan) - mxr) / mxr
				devSFX = 100 * (float64(costs[ftdse.SFX].Makespan) - mxr) / mxr
			}
			b.ReportMetric(devMX, "devMX%")
			b.ReportMetric(devMR, "devMR%")
			b.ReportMetric(devSFX, "devSFX%")
		})
	}
}

// BenchmarkCruiseController regenerates the real-life example: the CC
// must be schedulable with MXR within the 250 ms deadline while MX and
// MR miss it (paper: 229 vs 253 and 301 ms).
func BenchmarkCruiseController(b *testing.B) {
	cfg := bench.Config{Seeds: 1, MaxIterations: 1500, TimeLimit: 2 * time.Minute}
	var rows []bench.CCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cfg.CruiseController(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Makespan.Milliseconds(), "δ_"+r.Strategy.String()+"_ms")
	}
}

// solveOnce runs one configured solve and returns the makespan.
func solveOnce(b *testing.B, prob ftdse.Problem, opts ...ftdse.Option) ftdse.Time {
	b.Helper()
	res, err := ftdse.NewSolver(opts...).Solve(context.Background(), prob)
	if err != nil {
		b.Fatal(err)
	}
	return res.Cost.Makespan
}

// BenchmarkAblationSlackSharing quantifies the shared re-execution slack
// of [11] (Figure 3b2): scheduling the same re-execution design with
// private per-process slack instead.
func BenchmarkAblationSlackSharing(b *testing.B) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 20, Nodes: 2, Seed: 7},
		ftdse.FaultModel{K: 3, Mu: ftdse.Ms(5)})
	run := func(b *testing.B, sharing bool) ftdse.Time {
		var m ftdse.Time
		for i := 0; i < b.N; i++ {
			m = solveOnce(b, prob,
				ftdse.WithStrategy(ftdse.MX),
				ftdse.WithMaxIterations(60),
				ftdse.WithSlackSharing(sharing))
		}
		return m
	}
	b.Run("shared", func(b *testing.B) {
		b.ReportMetric(run(b, true).Milliseconds(), "δ_ms")
	})
	b.Run("private", func(b *testing.B) {
		b.ReportMetric(run(b, false).Milliseconds(), "δ_ms")
	})
}

// BenchmarkAblationTabu quantifies step 3 of the strategy: greedy-only
// (tabu search capped at one iteration) against the full tabu search.
func BenchmarkAblationTabu(b *testing.B) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 40, Nodes: 3, Seed: 3},
		ftdse.FaultModel{K: 4, Mu: ftdse.Ms(5)})
	run := func(b *testing.B, iters int) ftdse.Time {
		var m ftdse.Time
		for i := 0; i < b.N; i++ {
			m = solveOnce(b, prob, ftdse.WithMaxIterations(iters))
		}
		return m
	}
	b.Run("greedy-only", func(b *testing.B) {
		b.ReportMetric(run(b, 1).Milliseconds(), "δ_ms")
	})
	b.Run("greedy+tabu", func(b *testing.B) {
		b.ReportMetric(run(b, 200).Milliseconds(), "δ_ms")
	})
}

// BenchmarkAblationBusOpt quantifies the final bus-access optimization
// step (slot-order hill climbing).
func BenchmarkAblationBusOpt(b *testing.B) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 20, Nodes: 4, Seed: 11},
		ftdse.FaultModel{K: 2, Mu: ftdse.Ms(5)})
	run := func(b *testing.B, busOpt bool) ftdse.Time {
		var m ftdse.Time
		for i := 0; i < b.N; i++ {
			m = solveOnce(b, prob,
				ftdse.WithMaxIterations(60),
				ftdse.WithBusOptimization(busOpt))
		}
		return m
	}
	b.Run("off", func(b *testing.B) {
		b.ReportMetric(run(b, false).Milliseconds(), "δ_ms")
	})
	b.Run("on", func(b *testing.B) {
		b.ReportMetric(run(b, true).Milliseconds(), "δ_ms")
	})
}

// BenchmarkParallelSearch measures the parallel candidate-move
// evaluation on the 100-process synthetic instance of Table 1a: the
// same MXR search run with one worker (the sequential baseline) and
// with one worker per CPU. The searches are deterministic, so both
// sub-benchmarks do identical scheduling work and the ratio is the
// fan-out speedup.
func BenchmarkParallelSearch(b *testing.B) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 100, Nodes: 6, Seed: 1},
		ftdse.FaultModel{K: 7, Mu: ftdse.Ms(5)})
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			solveOnce(b, prob, ftdse.WithMaxIterations(10), ftdse.WithWorkers(workers))
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { run(b, 0) })
}

// BenchmarkSimulator measures one simulated operation cycle of the
// synthesized cruise controller under a random fault scenario.
func BenchmarkSimulator(b *testing.B) {
	res, err := ftdse.NewSolver(ftdse.WithMaxIterations(50)).
		Solve(context.Background(), ftdse.CruiseControl())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sc := ftdse.RandomScenario(rng, res.Schedule)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ftdse.RunScenario(res.Schedule, sc)
		if len(r.Finish) == 0 {
			b.Fatal("empty simulation")
		}
	}
}

// BenchmarkExtensionCheckpointing quantifies the checkpointing extension
// (DESIGN.md §7): re-execution with cheap checkpoints (χ=1ms) against
// plain re-execution under k=3 faults.
func BenchmarkExtensionCheckpointing(b *testing.B) {
	prob := ftdse.GenerateProblem(ftdse.GenSpec{Procs: 20, Nodes: 2, Seed: 13},
		ftdse.FaultModel{K: 3, Mu: ftdse.Ms(5), Chi: ftdse.Ms(1)})
	run := func(b *testing.B, enable bool) ftdse.Time {
		var m ftdse.Time
		for i := 0; i < b.N; i++ {
			m = solveOnce(b, prob,
				ftdse.WithStrategy(ftdse.MX),
				ftdse.WithMaxIterations(60),
				ftdse.WithCheckpointing(enable))
		}
		return m
	}
	b.Run("re-execution", func(b *testing.B) {
		b.ReportMetric(run(b, false).Milliseconds(), "δ_ms")
	})
	b.Run("checkpointed", func(b *testing.B) {
		b.ReportMetric(run(b, true).Milliseconds(), "δ_ms")
	})
}
