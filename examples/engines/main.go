// Engines: solve the same generated problem with every built-in search
// engine — the paper's greedy→tabu pipeline, its two phases alone,
// simulated annealing, and the portfolio that races tabu against SA —
// then plug in a custom engine written against the public Search API.
// The comparison table shows why the engine is an API concern: same
// problem, same options, different algorithms, directly comparable
// results.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro/ftdse"
)

// randomRestartGreedy is a caller-supplied engine: it runs the greedy
// hill climber, then restarts it from the incumbent a fixed number of
// times. It demonstrates that external engines compose from built-ins
// plus the Search handle, with no access to solver internals.
type randomRestartGreedy struct{ restarts int }

func (randomRestartGreedy) Name() string { return "restart-greedy" }

func (e randomRestartGreedy) Explore(ctx context.Context, s *ftdse.Search) error {
	stages := make([]ftdse.Engine, 0, e.restarts)
	for i := 0; i < e.restarts; i++ {
		stages = append(stages, ftdse.GreedyEngine{}, ftdse.SimulatedAnnealingEngine{Seed: int64(i + 1), Iterations: 40})
	}
	return ftdse.PipelineEngine{Stages: stages}.Explore(ctx, s)
}

func main() {
	prob := ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: 16, Nodes: 3, Seed: 4},
		ftdse.FaultModel{K: 2, Mu: ftdse.Ms(5)})

	engines := make([]ftdse.Engine, 0, len(ftdse.Engines())+1)
	for _, name := range ftdse.Engines() {
		eng, err := ftdse.ParseEngine(name)
		if err != nil {
			log.Fatal(err)
		}
		engines = append(engines, eng)
	}
	engines = append(engines, randomRestartGreedy{restarts: 3})

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "ENGINE\tCOST\tITERS\tTIME")
	for _, eng := range engines {
		start := time.Now()
		res, err := ftdse.NewSolver(
			ftdse.WithEngine(eng),
			ftdse.WithMaxIterations(60),
		).Solve(context.Background(), prob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%v\t%d\t%v\n",
			res.Engine, res.Cost, res.Iterations, time.Since(start).Round(time.Millisecond))
	}
	w.Flush()
}
