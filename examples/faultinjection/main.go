// Faultinjection synthesizes the replica-descendant system of the
// paper's Figure 7, then executes the resulting schedule tables in the
// runtime simulator under every fault scenario of the hypothesis,
// demonstrating transparent recovery: the contingency switch after a
// replica failure, and that every scenario stays within the worst-case
// analysis bounds.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ttp"
)

func main() {
	// Figure 7: P1 → P2 → P3; P2 actively replicated on both nodes, P1
	// and P3 re-executed on N1; k=1 fault, µ=10 ms.
	app := model.NewApplication("fig7")
	g := app.AddGraph("G", model.Ms(1000), model.Ms(1000))
	p1 := app.AddProcess(g, "P1")
	p2 := app.AddProcess(g, "P2")
	p3 := app.AddProcess(g, "P3")
	g.AddEdge(p1, p2, 4)
	g.AddEdge(p2, p3, 4)
	a := arch.New(2)
	w := arch.NewWCET()
	for n := arch.NodeID(0); n < 2; n++ {
		w.Set(p1.ID, n, model.Ms(40))
		w.Set(p2.ID, n, model.Ms(80))
		w.Set(p3.ID, n, model.Ms(50))
	}
	merged, err := app.Merge()
	if err != nil {
		log.Fatal(err)
	}
	s, err := sched.Build(sched.Input{
		Graph: merged, Arch: a, WCET: w,
		Faults: fault.Model{K: 1, Mu: model.Ms(10)},
		Assignment: policy.Assignment{
			p1.ID: policy.Reexecution(0, 1),
			p2.ID: policy.Replication(0, 1),
			p3.ID: policy.Reexecution(0, 1),
		},
		Bus:     ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
		Options: sched.DefaultOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("synthesized schedule (Figure 7):")
	fmt.Println(gantt.Table(s))
	fmt.Println(gantt.Render(s, 90))

	fmt.Println("executing every fault scenario of the hypothesis (k=1):")
	var scenarios []sim.Scenario
	sim.ForEachScenario(s, func(sc sim.Scenario) bool {
		cp := make(sim.Scenario, len(sc))
		for id, f := range sc {
			cp[id] = f
		}
		scenarios = append(scenarios, cp)
		return true
	})
	sort.Slice(scenarios, func(i, j int) bool { return len(scenarios[i]) < len(scenarios[j]) })

	for _, sc := range scenarios {
		r := sim.Run(s, sc)
		label := "fault-free"
		if len(sc) > 0 {
			label = ""
			for id, f := range sc {
				label += fmt.Sprintf("%d fault(s) in %s ", f, s.Item(id).Inst.Name())
			}
		}
		status := "ok"
		if !r.OK() {
			status = fmt.Sprintf("VIOLATIONS: %v", r.Violations)
		}
		fmt.Printf("  %-28s finished at %-8v (analysis bound %v)  %s\n",
			label, r.Makespan, s.Makespan, status)
		if r.Makespan > s.Makespan {
			log.Fatal("simulation exceeded the worst-case analysis!")
		}
	}
	fmt.Println("\nall scenarios within the analysis bound — transparent recovery works:")
	fmt.Println("when P2's replica on N1 fails, P3 switches to the contingency start")
	fmt.Println("(the arrival of m2 from the replica on N2) and, with the fault budget")
	fmt.Println("exhausted, runs without re-execution slack of its own.")
}
