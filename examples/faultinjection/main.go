// Faultinjection builds the replica-descendant system of the paper's
// Figure 7 as a fixed design, then executes the resulting schedule
// tables in the runtime simulator under every fault scenario of the
// hypothesis, demonstrating transparent recovery: the contingency
// switch after a replica failure, and that every scenario stays within
// the worst-case analysis bounds.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/ftdse"
)

func main() {
	// Figure 7: P1 → P2 → P3; P2 actively replicated on both nodes, P1
	// and P3 re-executed on N1; k=1 fault, µ=10 ms.
	b := ftdse.NewProblem("fig7").Nodes(2)
	g := b.Graph("G", ftdse.Ms(1000), ftdse.Ms(1000))
	p1 := g.Process("P1", ftdse.Ms(40), ftdse.Ms(40))
	p2 := g.Process("P2", ftdse.Ms(80), ftdse.Ms(80))
	p3 := g.Process("P3", ftdse.Ms(50), ftdse.Ms(50))
	g.Edge(p1, p2, 4)
	g.Edge(p2, p3, 4)
	prob, err := b.Faults(1, ftdse.Ms(10)).Build()
	if err != nil {
		log.Fatal(err)
	}
	s, err := prob.Evaluate(ftdse.Design{
		p1.ID: ftdse.Reexecution(0, 1),
		p2.ID: ftdse.Replication(0, 1),
		p3.ID: ftdse.Reexecution(0, 1),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("synthesized schedule (Figure 7):")
	fmt.Println(ftdse.GanttTable(s))
	fmt.Println(ftdse.GanttChart(s, 90))

	fmt.Println("executing every fault scenario of the hypothesis (k=1):")
	var scenarios []ftdse.Scenario
	ftdse.ForEachScenario(s, func(sc ftdse.Scenario) bool {
		cp := make(ftdse.Scenario, len(sc))
		for id, f := range sc {
			cp[id] = f
		}
		scenarios = append(scenarios, cp)
		return true
	})
	sort.Slice(scenarios, func(i, j int) bool { return len(scenarios[i]) < len(scenarios[j]) })

	for _, sc := range scenarios {
		r := ftdse.RunScenario(s, sc)
		label := "fault-free"
		if len(sc) > 0 {
			var parts []string
			for id, f := range sc {
				parts = append(parts, fmt.Sprintf("%d fault(s) in %s ", f, s.Item(id).Inst.Name()))
			}
			sort.Strings(parts)
			label = strings.Join(parts, "")
		}
		status := "ok"
		if !r.OK() {
			status = fmt.Sprintf("VIOLATIONS: %v", r.Violations)
		}
		fmt.Printf("  %-28s finished at %-8v (analysis bound %v)  %s\n",
			label, r.Makespan, s.Makespan, status)
		if r.Makespan > s.Makespan {
			log.Fatal("simulation exceeded the worst-case analysis!")
		}
	}
	fmt.Println("\nall scenarios within the analysis bound — transparent recovery works:")
	fmt.Println("when P2's replica on N1 fails, P3 switches to the contingency start")
	fmt.Println("(the arrival of m2 from the replica on N2) and, with the fault budget")
	fmt.Println("exhausted, runs without re-execution slack of its own.")
}
