// Policytradeoff walks through the paper's motivating examples: the
// worst-case fault scenarios of the three fault-tolerance policies
// (Figure 2) and the application-dependent trade-off between
// re-execution and replication (Figure 3, applications A1 and A2).
package main

import (
	"fmt"
	"log"

	"repro/ftdse"
)

func main() {
	figure2()
	figure3()
}

// figure2 shows the guaranteed completion of a single 30 ms process
// under k=2 faults (µ=10 ms) for the three policies of Figure 2.
func figure2() {
	fmt.Println("Figure 2: worst-case fault scenarios, P1 with C=30ms, k=2, µ=10ms")
	for _, c := range []struct {
		name string
		pol  ftdse.Policy
	}{
		{"re-execution (P1, P1/2, P1/3 on N1)", ftdse.Reexecution(0, 2)},
		{"replication (replicas on N1,N2,N3)", ftdse.Replication(0, 1, 2)},
		{"re-executed replicas (N1 re-executes)",
			ftdse.ReplicatedReexecution([]ftdse.NodeID{0, 1}, 2)},
	} {
		b := ftdse.NewProblem("fig2").Nodes(3)
		g := b.Graph("G", ftdse.Ms(1000), ftdse.Ms(1000))
		p1 := g.Process("P1", ftdse.Ms(30), ftdse.Ms(30), ftdse.Ms(30))
		prob, err := b.Faults(2, ftdse.Ms(10)).Build()
		if err != nil {
			log.Fatal(err)
		}
		s, err := prob.Evaluate(ftdse.Design{p1.ID: c.pol})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s guaranteed completion %v\n", c.name, s.Makespan)
	}
	fmt.Println()
}

// figure3 builds the paper's A1 (P1→P2 plus independent P3) and A2
// (chain P1→P2→P3) and schedules both applications under pure
// re-execution and pure replication, showing that the better policy
// flips with the application structure.
func figure3() {
	fmt.Println("Figure 3: re-execution vs replication, deadline 160ms, k=1, µ=10ms")
	for _, chain := range []bool{false, true} {
		name := "A1 (P1→P2, P3 independent)"
		if chain {
			name = "A2 (chain P1→P2→P3)"
		}
		fmt.Printf("  %s:\n", name)
		for _, mode := range []string{"re-execution", "replication"} {
			b := ftdse.NewProblem("fig3").Nodes(2)
			g := b.Graph("G", ftdse.Ms(1000), ftdse.Ms(160))
			p1 := g.Process("P1", ftdse.Ms(40), ftdse.Ms(50))
			p2 := g.Process("P2", ftdse.Ms(40), ftdse.Ms(60))
			p3 := g.Process("P3", ftdse.Ms(50), ftdse.Ms(70))
			g.Edge(p1, p2, 4)
			if chain {
				g.Edge(p2, p3, 4)
			}
			prob, err := b.Faults(1, ftdse.Ms(10)).Build()
			if err != nil {
				log.Fatal(err)
			}

			design := ftdse.Design{}
			if mode == "re-execution" {
				design[p1.ID] = ftdse.Reexecution(0, 1)
				design[p2.ID] = ftdse.Reexecution(0, 1)
				if chain {
					design[p3.ID] = ftdse.Reexecution(0, 1)
				} else {
					design[p3.ID] = ftdse.Reexecution(1, 1)
				}
			} else {
				for _, p := range []ftdse.Proc{p1, p2, p3} {
					design[p.ID] = ftdse.Replication(0, 1)
				}
			}
			s, err := prob.Evaluate(design)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "deadline met"
			if !s.Schedulable() {
				verdict = "deadline MISSED"
			}
			fmt.Printf("    %-14s δ=%-8v %s\n", mode, s.Makespan, verdict)
		}
	}
	fmt.Println("\n  → A1 favors re-execution, A2 favors replication: the optimal")
	fmt.Println("    policy assignment depends on the application structure, which")
	fmt.Println("    is why MXR optimizes both together with the mapping.")
}
