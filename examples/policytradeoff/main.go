// Policytradeoff walks through the paper's motivating examples: the
// worst-case fault scenarios of the three fault-tolerance policies
// (Figure 2) and the application-dependent trade-off between
// re-execution and replication (Figure 3, applications A1 and A2).
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/ttp"
)

func main() {
	figure2()
	figure3()
}

// figure2 shows the guaranteed completion of a single 30 ms process
// under k=2 faults (µ=10 ms) for the three policies of Figure 2.
func figure2() {
	fmt.Println("Figure 2: worst-case fault scenarios, P1 with C=30ms, k=2, µ=10ms")
	fm := fault.Model{K: 2, Mu: model.Ms(10)}
	for _, c := range []struct {
		name string
		pol  func() policy.Policy
	}{
		{"re-execution (P1, P1/2, P1/3 on N1)", func() policy.Policy { return policy.Reexecution(0, 2) }},
		{"replication (replicas on N1,N2,N3)", func() policy.Policy { return policy.Replication(0, 1, 2) }},
		{"re-executed replicas (N1 re-executes)", func() policy.Policy {
			return policy.Distribute([]arch.NodeID{0, 1}, 2)
		}},
	} {
		app := model.NewApplication("fig2")
		g := app.AddGraph("G", model.Ms(1000), model.Ms(1000))
		p1 := app.AddProcess(g, "P1")
		a := arch.New(3)
		w := arch.NewWCET()
		for n := arch.NodeID(0); n < 3; n++ {
			w.Set(p1.ID, n, model.Ms(30))
		}
		merged, err := app.Merge()
		if err != nil {
			log.Fatal(err)
		}
		s, err := sched.Build(sched.Input{
			Graph: merged, Arch: a, WCET: w, Faults: fm,
			Assignment: policy.Assignment{p1.ID: c.pol()},
			Bus:        ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
			Options:    sched.DefaultOptions(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s guaranteed completion %v\n", c.name, s.Makespan)
	}
	fmt.Println()
}

// figure3 builds the paper's A1 (P1→P2 plus independent P3) and A2
// (chain P1→P2→P3) and schedules both applications under pure
// re-execution and pure replication, showing that the better policy
// flips with the application structure.
func figure3() {
	fmt.Println("Figure 3: re-execution vs replication, deadline 160ms, k=1, µ=10ms")
	fm := fault.Model{K: 1, Mu: model.Ms(10)}
	for _, chain := range []bool{false, true} {
		name := "A1 (P1→P2, P3 independent)"
		if chain {
			name = "A2 (chain P1→P2→P3)"
		}
		fmt.Printf("  %s:\n", name)
		for _, mode := range []string{"re-execution", "replication"} {
			app := model.NewApplication("fig3")
			g := app.AddGraph("G", model.Ms(1000), model.Ms(160))
			p1 := app.AddProcess(g, "P1")
			p2 := app.AddProcess(g, "P2")
			p3 := app.AddProcess(g, "P3")
			g.AddEdge(p1, p2, 4)
			if chain {
				g.AddEdge(p2, p3, 4)
			}
			a := arch.New(2)
			w := arch.NewWCET()
			w.Set(p1.ID, 0, model.Ms(40))
			w.Set(p1.ID, 1, model.Ms(50))
			w.Set(p2.ID, 0, model.Ms(40))
			w.Set(p2.ID, 1, model.Ms(60))
			w.Set(p3.ID, 0, model.Ms(50))
			w.Set(p3.ID, 1, model.Ms(70))

			asgn := policy.Assignment{}
			if mode == "re-execution" {
				asgn[p1.ID] = policy.Reexecution(0, 1)
				asgn[p2.ID] = policy.Reexecution(0, 1)
				if chain {
					asgn[p3.ID] = policy.Reexecution(0, 1)
				} else {
					asgn[p3.ID] = policy.Reexecution(1, 1)
				}
			} else {
				for _, p := range []*model.Process{p1, p2, p3} {
					asgn[p.ID] = policy.Replication(0, 1)
				}
			}
			merged, err := app.Merge()
			if err != nil {
				log.Fatal(err)
			}
			s, err := sched.Build(sched.Input{
				Graph: merged, Arch: a, WCET: w, Faults: fm,
				Assignment: asgn,
				Bus:        ttp.InitialConfig(a, 4, ttp.DefaultPerByte),
				Options:    sched.DefaultOptions(),
			})
			if err != nil {
				log.Fatal(err)
			}
			verdict := "deadline met"
			if !s.Schedulable() {
				verdict = "deadline MISSED"
			}
			fmt.Printf("    %-14s δ=%-8v %s\n", mode, s.Makespan, verdict)
		}
	}
	fmt.Println("\n  → A1 favors re-execution, A2 favors replication: the optimal")
	fmt.Println("    policy assignment depends on the application structure, which")
	fmt.Println("    is why MXR optimizes both together with the mapping.")
}
