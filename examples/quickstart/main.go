// Quickstart: build a small application with the ftdse ProblemBuilder,
// synthesize a fault-tolerant implementation with the paper's MXR
// strategy — streaming incumbent solutions as they are found — and
// print the resulting policies, schedule tables and Gantt chart.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/ftdse"
)

func main() {
	// Application: a sensor-filter-control-actuate chain plus a logger,
	// running every 200 ms with a 150 ms deadline, on two nodes sharing
	// a TTP bus. Process WCETs are listed per node (node 0, node 1).
	b := ftdse.NewProblem("quickstart").Nodes(2)
	g := b.Graph("loop", ftdse.Ms(200), ftdse.Ms(150))
	sensor := g.Process("Sensor", ftdse.Ms(8), ftdse.Ms(10))
	filter := g.Process("Filter", ftdse.Ms(12), ftdse.Ms(14))
	control := g.Process("Control", ftdse.Ms(20), ftdse.Ms(22))
	actuate := g.Process("Actuate", ftdse.Ms(8), ftdse.Ms(10))
	logger := g.Process("Logger", ftdse.Ms(6), ftdse.Ms(6))
	g.Edge(sensor, filter, 2)
	g.Edge(filter, control, 2)
	g.Edge(control, actuate, 2)
	g.Edge(control, logger, 1)

	// Tolerate k=1 transient fault per cycle with µ=5 ms recovery; the
	// sensor must stay on node N0 (it owns the hardware).
	prob, err := b.Faults(1, ftdse.Ms(5)).Pin(sensor, 0).Build()
	if err != nil {
		log.Fatal(err)
	}

	solver := ftdse.NewSolver(
		ftdse.WithStrategy(ftdse.MXR),
		ftdse.WithMaxIterations(300),
		ftdse.WithProgress(func(imp ftdse.Improvement) {
			fmt.Fprintf(os.Stderr, "%-7s iter %-4d %v (%v)\n",
				imp.Phase, imp.Iteration, imp.Cost, imp.Elapsed.Round(time.Millisecond))
		}),
	)
	res, err := solver.Solve(context.Background(), prob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("synthesized with %v in %d iterations: %v\n\n", res.Strategy, res.Iterations, res.Cost)
	fmt.Println("policy assignment (node + re-executions per replica):")
	for _, p := range prob.Processes() {
		fmt.Printf("  %-8s %v\n", p.Name, res.Design[p.ID])
	}
	fmt.Println()
	fmt.Println(ftdse.GanttTable(res.Schedule))
	fmt.Println(ftdse.GanttChart(res.Schedule, 90))
	fmt.Println(ftdse.GanttSummary(res.Schedule))
}
