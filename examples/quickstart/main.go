// Quickstart: build a small application in code, synthesize a
// fault-tolerant implementation with the paper's MXR strategy, and print
// the resulting policies, schedule tables and Gantt chart.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gantt"
	"repro/internal/model"
)

func main() {
	// Application: a sensor-filter-control-actuate chain plus a logger,
	// running every 200 ms with a 150 ms deadline.
	app := model.NewApplication("quickstart")
	g := app.AddGraph("loop", model.Ms(200), model.Ms(150))
	sensor := app.AddProcess(g, "Sensor")
	filter := app.AddProcess(g, "Filter")
	control := app.AddProcess(g, "Control")
	actuate := app.AddProcess(g, "Actuate")
	logger := app.AddProcess(g, "Logger")
	g.AddEdge(sensor, filter, 2)
	g.AddEdge(filter, control, 2)
	g.AddEdge(control, actuate, 2)
	g.AddEdge(control, logger, 1)

	// Architecture: two nodes on a TTP bus; WCETs per node.
	a := arch.New(2)
	w := arch.NewWCET()
	for _, row := range []struct {
		p      *model.Process
		n1, n2 int64
	}{
		{sensor, 8, 10},
		{filter, 12, 14},
		{control, 20, 22},
		{actuate, 8, 10},
		{logger, 6, 6},
	} {
		w.Set(row.p.ID, 0, model.Ms(row.n1))
		w.Set(row.p.ID, 1, model.Ms(row.n2))
	}

	// Tolerate k=1 transient fault per cycle with µ=5 ms recovery; the
	// sensor must stay on node N1 (it owns the hardware).
	prob := core.Problem{
		App:          app,
		Arch:         a,
		WCET:         w,
		Faults:       fault.Model{K: 1, Mu: model.Ms(5)},
		FixedMapping: map[model.ProcID]arch.NodeID{sensor.ID: 0},
	}

	opts := core.DefaultOptions(core.MXR)
	opts.MaxIterations = 300
	res, err := core.Optimize(prob, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("synthesized with %v in %d iterations: %v\n\n", res.Strategy, res.Iterations, res.Cost)
	fmt.Println("policy assignment (node + re-executions per replica):")
	for _, p := range app.Processes() {
		fmt.Printf("  %-8s %v\n", p.Name, res.Assignment[p.ID])
	}
	fmt.Println()
	fmt.Println(gantt.Table(res.Schedule))
	fmt.Println(gantt.Render(res.Schedule, 90))
	fmt.Println(gantt.Summary(res.Schedule))
}
