// serviceclient is the smoke test of the ftdsed service path, run by CI
// against a freshly started daemon: it submits a generated problem,
// streams the incumbent solutions while the search runs, fetches the
// final result, then resubmits the identical problem and verifies the
// answer comes from the result cache (the solve-count metric must not
// move) with a byte-identical result document.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/service"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8385", "ftdsed base URL")
	flag.Parse()
	log.SetFlags(0)

	c := client.New(*addr, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The daemon may still be starting (CI launches it in the
	// background); wait for the liveness probe.
	deadline := time.Now().Add(15 * time.Second)
	for !c.Healthy(ctx) {
		if time.Now().After(deadline) {
			log.Fatalf("serviceclient: %s did not become healthy within 15s", *addr)
		}
		time.Sleep(200 * time.Millisecond)
	}

	prob := ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: 12, Nodes: 3, Seed: 11},
		ftdse.FaultModel{K: 2, Mu: ftdse.Ms(5)})
	opts := service.SolveOptions{MaxIterations: 40, Workers: 1}

	st, err := c.Submit(ctx, prob, opts)
	if err != nil {
		log.Fatalf("serviceclient: submit: %v", err)
	}
	if st.TraceID == "" {
		log.Fatalf("serviceclient: submission came back without a trace id")
	}
	fmt.Printf("submitted %s (fingerprint %.24s…, trace %s)\n", st.ID, st.Fingerprint, st.TraceID)

	final, err := c.Stream(ctx, st.ID, func(ev service.ProgressEvent) {
		if ev.TraceID != st.TraceID {
			log.Fatalf("serviceclient: event trace id %q, want %q", ev.TraceID, st.TraceID)
		}
		fmt.Printf("  %-8s iter %3d  δ=%.3fms  schedulable=%v\n",
			ev.Phase, ev.Iteration, ev.MakespanMs, ev.Schedulable)
	})
	if err != nil {
		log.Fatalf("serviceclient: stream: %v", err)
	}
	if final.State != service.StateDone {
		log.Fatalf("serviceclient: job ended %s (%s)", final.State, final.Error)
	}
	res, err := client.Result(final)
	if err != nil {
		log.Fatalf("serviceclient: result: %v", err)
	}
	if res.TraceID != st.TraceID {
		log.Fatalf("serviceclient: result trace id %q, want %q", res.TraceID, st.TraceID)
	}
	fmt.Printf("done: %s δ=%.3fms schedulable=%v after %d iterations (trace %s, %d spans)\n",
		res.Strategy, res.MakespanMs, res.Schedulable, res.Iterations, res.TraceID, len(res.Spans))

	before, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("serviceclient: metrics: %v", err)
	}
	again, err := c.SubmitWait(ctx, prob, opts)
	if err != nil {
		log.Fatalf("serviceclient: resubmit: %v", err)
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("serviceclient: metrics: %v", err)
	}
	if !again.Cached {
		log.Fatalf("serviceclient: resubmission was not served from cache")
	}
	if after["ftdse_solves_total"] != before["ftdse_solves_total"] {
		log.Fatalf("serviceclient: cache hit re-solved (ftdse_solves_total %v → %v)",
			before["ftdse_solves_total"], after["ftdse_solves_total"])
	}
	if !bytes.Equal(final.Result, again.Result) {
		log.Fatalf("serviceclient: cached result differs from the original")
	}
	fmt.Printf("cache hit confirmed: identical result, ftdse_solves_total steady at %v\n",
		after["ftdse_solves_total"])
	os.Exit(0)
}
