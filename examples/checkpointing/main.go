// Checkpointing demonstrates the reproduction's extension beyond the
// paper: re-execution with checkpoints. A fault then re-executes only
// the hit segment instead of the whole process, trading χ of state-
// saving overhead per checkpoint against much smaller recovery slack.
// The example sweeps the checkpoint count on a control pipeline and
// compares the resulting worst-case schedules, then lets the optimizer
// pick checkpoint counts on its own.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/ttp"
)

func buildSystem() (core.Problem, []*model.Process) {
	app := model.NewApplication("checkpointing")
	g := app.AddGraph("pipeline", model.Ms(1000), model.Ms(500))
	stages := make([]*model.Process, 4)
	names := []string{"Acquire", "Estimate", "Control", "Actuate"}
	for i, n := range names {
		stages[i] = app.AddProcess(g, n)
		if i > 0 {
			g.AddEdge(stages[i-1], stages[i], 2)
		}
	}
	a := arch.New(2)
	w := arch.NewWCET()
	for _, p := range stages {
		w.Set(p.ID, 0, model.Ms(60))
		w.Set(p.ID, 1, model.Ms(60))
	}
	prob := core.Problem{
		App:  app,
		Arch: a,
		WCET: w,
		// k=3 faults, µ=5ms recovery, χ=2ms per checkpoint.
		Faults: fault.Model{K: 3, Mu: model.Ms(5), Chi: model.Ms(2)},
	}
	return prob, stages
}

func main() {
	prob, stages := buildSystem()
	merged, err := prob.App.Merge()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pipeline of four 60ms stages on one node, k=3, µ=5ms, χ=2ms")
	fmt.Println("worst-case schedule length by checkpoints per stage:")
	for ck := 0; ck <= 5; ck++ {
		asgn := policy.Assignment{}
		for _, p := range stages {
			asgn[p.ID] = policy.Checkpointed(0, prob.Faults.K, ck)
		}
		s, err := sched.Build(sched.Input{
			Graph:      merged,
			Arch:       prob.Arch,
			WCET:       prob.WCET,
			Faults:     prob.Faults,
			Assignment: asgn,
			Bus:        ttp.InitialConfig(prob.Arch, 2, ttp.DefaultPerByte),
			Options:    sched.DefaultOptions(),
		})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if ck == 0 {
			note = "  (plain re-execution: 3 whole re-runs of the longest stage)"
		}
		fmt.Printf("  %d checkpoints: δ = %v%s\n", ck, s.Makespan, note)
	}

	fmt.Println("\nletting the optimizer choose mapping + checkpoints (MX + extension):")
	opts := core.DefaultOptions(core.MX)
	opts.MaxIterations = 300
	opts.EnableCheckpointing = true
	res, err := core.Optimize(prob, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range prob.App.Processes() {
		fmt.Printf("  %-10s %v\n", p.Name, res.Assignment[p.ID])
	}
	fmt.Printf("  optimized δ = %v\n", res.Cost.Makespan)

	plain := core.DefaultOptions(core.MX)
	plain.MaxIterations = 300
	resPlain, err := core.Optimize(prob, plain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  without checkpointing δ = %v\n", resPlain.Cost.Makespan)
	fmt.Printf("  saving: %.0f%%\n",
		100*float64(resPlain.Cost.Makespan-res.Cost.Makespan)/float64(resPlain.Cost.Makespan))
}
