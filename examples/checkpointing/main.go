// Checkpointing demonstrates the reproduction's extension beyond the
// paper: re-execution with checkpoints. A fault then re-executes only
// the hit segment instead of the whole process, trading χ of state-
// saving overhead per checkpoint against much smaller recovery slack.
// The example sweeps the checkpoint count on a control pipeline and
// compares the resulting worst-case schedules, then lets the optimizer
// pick checkpoint counts on its own.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/ftdse"
)

func buildSystem() (ftdse.Problem, []ftdse.Proc) {
	b := ftdse.NewProblem("checkpointing").Nodes(2)
	g := b.Graph("pipeline", ftdse.Ms(1000), ftdse.Ms(500))
	names := []string{"Acquire", "Estimate", "Control", "Actuate"}
	stages := make([]ftdse.Proc, len(names))
	for i, n := range names {
		stages[i] = g.Process(n, ftdse.Ms(60), ftdse.Ms(60))
		if i > 0 {
			g.Edge(stages[i-1], stages[i], 2)
		}
	}
	// k=3 faults, µ=5ms recovery, χ=2ms per checkpoint.
	prob, err := b.Faults(3, ftdse.Ms(5)).CheckpointCost(ftdse.Ms(2)).Build()
	if err != nil {
		log.Fatal(err)
	}
	return prob, stages
}

func main() {
	prob, stages := buildSystem()

	fmt.Println("pipeline of four 60ms stages on one node, k=3, µ=5ms, χ=2ms")
	fmt.Println("worst-case schedule length by checkpoints per stage:")
	for ck := 0; ck <= 5; ck++ {
		design := ftdse.Design{}
		for _, p := range stages {
			design[p.ID] = ftdse.Checkpointed(0, prob.Faults().K, ck)
		}
		s, err := prob.Evaluate(design)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if ck == 0 {
			note = "  (plain re-execution: 3 whole re-runs of the longest stage)"
		}
		fmt.Printf("  %d checkpoints: δ = %v%s\n", ck, s.Makespan, note)
	}

	fmt.Println("\nletting the optimizer choose mapping + checkpoints (MX + extension):")
	res, err := ftdse.NewSolver(
		ftdse.WithStrategy(ftdse.MX),
		ftdse.WithMaxIterations(300),
		ftdse.WithCheckpointing(true),
	).Solve(context.Background(), prob)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range prob.Processes() {
		fmt.Printf("  %-10s %v\n", p.Name, res.Design[p.ID])
	}
	fmt.Printf("  optimized δ = %v\n", res.Cost.Makespan)

	resPlain, err := ftdse.NewSolver(
		ftdse.WithStrategy(ftdse.MX),
		ftdse.WithMaxIterations(300),
	).Solve(context.Background(), prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  without checkpointing δ = %v\n", resPlain.Cost.Makespan)
	fmt.Printf("  saving: %.0f%%\n",
		100*float64(resPlain.Cost.Makespan-res.Cost.Makespan)/float64(resPlain.Cost.Makespan))
}
