// clustersmoke is the end-to-end smoke test of the cluster tier, run by
// CI against a freshly started ftclusterd + two ftdsed nodes: it
// submits a batch of solve jobs through the coordinator with the
// retrying client, SIGKILLs one solver node mid-batch (when -kill-pid
// is given), then waits for every job and verifies drain-free recovery:
// zero lost jobs — every submission reaches "done" with a result —
// plus at least one live shard left standing. It exits non-zero on any
// violation and writes the shard-stats document to -shards-out for CI
// to upload as an artifact. With -trace-out it additionally submits one
// flight-recorded solve through the coordinator, verifies the single
// trace ID contract (submission status, every SSE event, and the final
// result carry the same id), and writes the search trace JSONL there.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/ftdse"
	"repro/ftdse/client"
	"repro/ftdse/service"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8390", "ftclusterd base URL")
	jobs := flag.Int("jobs", 6, "distinct problems to submit")
	killPid := flag.Int("kill-pid", 0, "solver node PID to SIGKILL mid-batch (0 = no kill)")
	shardsOut := flag.String("shards-out", "", "write the final /cluster/shards document here")
	traceOut := flag.String("trace-out", "", "run one flight-recorded solve and write its trace JSONL here")
	flag.Parse()
	log.SetFlags(0)

	c := client.New(*addr, nil, client.WithRetry(5, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	deadline := time.Now().Add(20 * time.Second)
	for !c.Healthy(ctx) {
		if time.Now().After(deadline) {
			log.Fatalf("clustersmoke: %s did not become healthy within 20s", *addr)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// A batch of distinct problems, slow enough (bounded by the time
	// limit) that the node kill lands mid-solve.
	reqs := make([]service.SubmitRequest, *jobs)
	for i := range reqs {
		prob := ftdse.GenerateProblem(
			ftdse.GenSpec{Procs: 12, Nodes: 3, Seed: int64(100 + i)},
			ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
		req, err := client.NewRequest(prob, service.SolveOptions{
			MaxIterations: 1_000_000, Workers: 1, TimeLimitMs: 5000,
		})
		if err != nil {
			log.Fatalf("clustersmoke: building request: %v", err)
		}
		reqs[i] = req
	}
	sts, err := c.SubmitBatch(ctx, reqs)
	if err != nil {
		log.Fatalf("clustersmoke: batch submit: %v", err)
	}
	fmt.Printf("submitted %d jobs\n", len(sts))

	if *killPid != 0 {
		// Let the batch spread onto the shards, then kill one node hard.
		time.Sleep(1 * time.Second)
		proc, err := os.FindProcess(*killPid)
		if err == nil {
			err = proc.Kill()
		}
		if err != nil {
			log.Fatalf("clustersmoke: SIGKILL pid %d: %v", *killPid, err)
		}
		fmt.Printf("SIGKILLed node pid %d mid-batch\n", *killPid)
	}

	// Zero lost jobs: every submission must reach "done" with a result,
	// even the ones that were in flight on the killed node.
	lost := 0
	for _, st := range sts {
		final := st
		for !service.TerminalState(final.State) {
			time.Sleep(250 * time.Millisecond)
			final, err = c.Job(ctx, st.ID)
			if err != nil {
				log.Fatalf("clustersmoke: polling %s: %v", st.ID, err)
			}
		}
		if final.State != service.StateDone || len(final.Result) == 0 {
			fmt.Printf("LOST: job %s ended %q (%s)\n", final.ID, final.State, final.Error)
			lost++
			continue
		}
		res, err := client.Result(final)
		if err != nil {
			log.Fatalf("clustersmoke: result of %s: %v", final.ID, err)
		}
		fmt.Printf("  %s done: δ=%.3fms schedulable=%v\n", final.ID, res.MakespanMs, res.Schedulable)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("clustersmoke: metrics: %v", err)
	}
	fmt.Printf("dispatches=%v redispatches=%v steals=%v warm_dispatches=%v nodes_alive=%v\n",
		m["ftcluster_dispatches_total"], m["ftcluster_redispatches_total"],
		m["ftcluster_steals_total"], m["ftcluster_warm_dispatches_total"],
		m["ftcluster_nodes_alive"])

	shards, err := fetchShards(ctx, *addr)
	if err != nil {
		log.Fatalf("clustersmoke: shards: %v", err)
	}
	fmt.Printf("shard map: %s\n", shards)
	if *shardsOut != "" {
		if err := os.WriteFile(*shardsOut, shards, 0o644); err != nil {
			log.Fatalf("clustersmoke: writing %s: %v", *shardsOut, err)
		}
	}

	if lost > 0 {
		log.Fatalf("clustersmoke: %d of %d jobs lost", lost, len(sts))
	}
	if *killPid != 0 {
		if m["ftcluster_redispatches_total"] < 1 {
			log.Fatalf("clustersmoke: node killed but redispatches = %v", m["ftcluster_redispatches_total"])
		}
		if m["ftcluster_nodes_alive"] < 1 {
			log.Fatalf("clustersmoke: no live nodes left")
		}
	}
	if *traceOut != "" {
		traceRun(ctx, c, *traceOut)
	}
	fmt.Printf("ok: %d/%d jobs done, zero lost\n", len(sts), len(sts))
}

// traceRun submits one flight-recorded solve through the coordinator,
// verifies the single-trace-ID contract across the submission status,
// every SSE event and the final result, and writes the search trace
// JSONL to path for CI to upload.
func traceRun(ctx context.Context, c *client.Client, path string) {
	prob := ftdse.GenerateProblem(
		ftdse.GenSpec{Procs: 12, Nodes: 3, Seed: 7},
		ftdse.FaultModel{K: 1, Mu: ftdse.Ms(5)})
	st, err := c.Submit(ctx, prob, service.SolveOptions{
		MaxIterations: 60, Workers: 1, FlightRecorder: true,
	})
	if err != nil {
		log.Fatalf("clustersmoke: trace submit: %v", err)
	}
	if st.TraceID == "" {
		log.Fatalf("clustersmoke: trace submission came back without a trace id")
	}
	final, err := c.Stream(ctx, st.ID, func(ev service.ProgressEvent) {
		if ev.TraceID != st.TraceID {
			log.Fatalf("clustersmoke: event trace id %q, want %q", ev.TraceID, st.TraceID)
		}
	})
	if err != nil {
		log.Fatalf("clustersmoke: trace stream: %v", err)
	}
	if final.State != service.StateDone {
		log.Fatalf("clustersmoke: trace job ended %q (%s)", final.State, final.Error)
	}
	res, err := client.Result(final)
	if err != nil {
		log.Fatalf("clustersmoke: trace result: %v", err)
	}
	if res.TraceID != st.TraceID {
		log.Fatalf("clustersmoke: result trace id %q, want %q", res.TraceID, st.TraceID)
	}
	if res.TraceJSONL == "" {
		log.Fatalf("clustersmoke: flight-recorded solve returned no trace document")
	}
	if err := os.WriteFile(path, []byte(res.TraceJSONL), 0o644); err != nil {
		log.Fatalf("clustersmoke: writing %s: %v", path, err)
	}
	fmt.Printf("trace %s: %d spans, flight recording written to %s\n",
		st.TraceID, len(res.Spans), path)
}

// fetchShards grabs the raw /cluster/shards document (pretty-printed).
func fetchShards(ctx context.Context, base string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/cluster/shards", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var pretty json.RawMessage = raw
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		return raw, nil
	}
	return out, nil
}
