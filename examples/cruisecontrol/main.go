// Cruisecontrol reproduces the paper's real-life example: a 32-process
// vehicle cruise controller on the ETM/ABS/TCM architecture with a
// 250 ms deadline under k=2 transient faults (µ=2 ms). It optimizes the
// design with every strategy of the evaluation and shows that only the
// combined re-execution + replication search (MXR) meets the deadline.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/ftdse"
)

func main() {
	prob := ftdse.CruiseControl()
	fmt.Printf("cruise controller: %d processes on %d nodes, deadline %v, %v\n\n",
		prob.NumProcesses(), prob.NumNodes(), ftdse.CruiseControlDeadline, prob.Faults())

	var nft, best *ftdse.Result
	for _, s := range []ftdse.Strategy{ftdse.NFT, ftdse.MXR, ftdse.MX, ftdse.MR, ftdse.SFX} {
		solver := ftdse.NewSolver(
			ftdse.WithStrategy(s),
			ftdse.WithMaxIterations(1500),
			ftdse.WithTimeLimit(60*time.Second),
		)
		res, err := solver.Solve(context.Background(), prob)
		if err != nil {
			log.Fatalf("%v: %v", s, err)
		}
		verdict := "meets the deadline"
		if !res.Schedulable() {
			verdict = "MISSES the deadline"
		}
		overhead := ""
		if s == ftdse.NFT {
			nft = res
		} else if nft != nil {
			overhead = fmt.Sprintf(" (overhead vs NFT: %.0f%%)",
				100*float64(res.Cost.Makespan-nft.Cost.Makespan)/float64(nft.Cost.Makespan))
		}
		fmt.Printf("%-4v δ=%-10v %s%s\n", s, res.Cost.Makespan, verdict, overhead)
		if s == ftdse.MXR {
			best = res
		}
	}

	fmt.Println("\nMXR implementation:")
	replicated := 0
	for _, p := range prob.Processes() {
		pol := best.Design[p.ID]
		if pol.ReplicaCount() > 1 {
			replicated++
			fmt.Printf("  %-18s replicated: %v\n", p.Name, pol)
		}
	}
	fmt.Printf("  (%d of %d processes replicated, the rest re-executed)\n\n",
		replicated, prob.NumProcesses())
	fmt.Println(ftdse.GanttChart(best.Schedule, 110))
	fmt.Println(ftdse.GanttSummary(best.Schedule))
}
