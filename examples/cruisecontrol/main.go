// Cruisecontrol reproduces the paper's real-life example: a 32-process
// vehicle cruise controller on the ETM/ABS/TCM architecture with a
// 250 ms deadline under k=2 transient faults (µ=2 ms). It optimizes the
// design with every strategy of the evaluation and shows that only the
// combined re-execution + replication search (MXR) meets the deadline.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/ccapp"
	"repro/internal/core"
	"repro/internal/gantt"
)

func main() {
	prob := ccapp.New()
	fmt.Printf("cruise controller: %d processes on %d nodes, deadline %v, %v\n\n",
		prob.App.NumProcesses(), prob.Arch.NumNodes(), ccapp.Deadline, prob.Faults)

	var nft, best *core.Result
	for _, s := range []core.Strategy{core.NFT, core.MXR, core.MX, core.MR, core.SFX} {
		opts := core.DefaultOptions(s)
		opts.MaxIterations = 1500
		opts.TimeLimit = 60 * time.Second
		res, err := core.Optimize(prob, opts)
		if err != nil {
			log.Fatalf("%v: %v", s, err)
		}
		verdict := "meets the deadline"
		if !res.Cost.Schedulable() {
			verdict = "MISSES the deadline"
		}
		overhead := ""
		if s == core.NFT {
			nft = res
		} else if nft != nil {
			overhead = fmt.Sprintf(" (overhead vs NFT: %.0f%%)",
				100*float64(res.Cost.Makespan-nft.Cost.Makespan)/float64(nft.Cost.Makespan))
		}
		fmt.Printf("%-4v δ=%-10v %s%s\n", s, res.Cost.Makespan, verdict, overhead)
		if s == core.MXR {
			best = res
		}
	}

	fmt.Println("\nMXR implementation:")
	replicated := 0
	for _, p := range prob.App.Processes() {
		pol := best.Assignment[p.ID]
		if pol.ReplicaCount() > 1 {
			replicated++
			fmt.Printf("  %-18s replicated: %v\n", p.Name, pol)
		}
	}
	fmt.Printf("  (%d of %d processes replicated, the rest re-executed)\n\n",
		replicated, prob.App.NumProcesses())
	fmt.Println(gantt.Render(best.Schedule, 110))
	fmt.Println(gantt.Summary(best.Schedule))
}
