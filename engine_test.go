package ftdse_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/ftdse"
)

// engineProblem is a small generated instance shared by the engine
// facade tests.
func engineProblem() ftdse.Problem {
	return ftdse.GenerateProblem(ftdse.GenSpec{Procs: 12, Nodes: 3, Seed: 3},
		ftdse.FaultModel{K: 2, Mu: ftdse.Ms(5)})
}

func TestParseEngineRoundTrip(t *testing.T) {
	for _, name := range ftdse.Engines() {
		eng, err := ftdse.ParseEngine(name)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("ParseEngine(%q).Name() = %q", name, eng.Name())
		}
		// Case-insensitive, like ParseStrategy.
		if _, err := ftdse.ParseEngine(strings.ToUpper(name)); err != nil {
			t.Errorf("ParseEngine(%q) (upper-case): %v", strings.ToUpper(name), err)
		}
	}
}

// TestParseErrorsEnumerateValidNames: every Parse* error names the full
// set of accepted values, so a typo in a flag or API request is
// self-correcting.
func TestParseErrorsEnumerateValidNames(t *testing.T) {
	cases := []struct {
		err   error
		names []string
	}{
		{errOf(ftdse.ParseEngine("bogus")), ftdse.Engines()},
		{errOf(ftdse.ParseStrategy("bogus")), ftdse.StrategyNames()},
		{errOf(ftdse.ParseShape("bogus")), ftdse.ShapeNames()},
		{errOf(ftdse.ParseWCETDist("bogus")), ftdse.WCETDistNames()},
		{errOf(ftdse.ParseStopCause("bogus")), []string{"completed", "time limit", "canceled"}},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatal("unknown name did not error")
		}
		for _, name := range c.names {
			if !strings.Contains(c.err.Error(), name) {
				t.Errorf("error %q does not enumerate %q", c.err, name)
			}
		}
	}
}

func errOf[T any](_ T, err error) error { return err }

// TestStochasticEnginesSubset guards the facade invariant the service
// relies on: every stochastic engine name parses, and the subset stays
// within the canonical list.
func TestStochasticEnginesSubset(t *testing.T) {
	all := ftdse.Engines()
	for _, name := range ftdse.StochasticEngines() {
		if _, err := ftdse.ParseEngine(name); err != nil {
			t.Errorf("stochastic engine %q does not parse: %v", name, err)
		}
		found := false
		for _, n := range all {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("stochastic engine %q missing from Engines()", name)
		}
	}
}

func TestParseStopCauseRoundTrip(t *testing.T) {
	for _, c := range ftdse.StopCauses() {
		got, err := ftdse.ParseStopCause(c.String())
		if err != nil {
			t.Fatalf("ParseStopCause(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseStopCause(%q) = %v", c.String(), got)
		}
	}
}

// TestWithEngineGolden pins the facade-level golden guarantee: the
// default solver and an explicit WithEngine(default) produce identical
// results, and the result reports its engine.
func TestWithEngineGolden(t *testing.T) {
	prob := engineProblem()
	base, err := ftdse.NewSolver(ftdse.WithMaxIterations(30)).Solve(context.Background(), prob)
	if err != nil {
		t.Fatal(err)
	}
	if base.Engine != "default" {
		t.Fatalf("Result.Engine = %q, want default", base.Engine)
	}
	eng, _ := ftdse.ParseEngine("default")
	explicit, err := ftdse.NewSolver(ftdse.WithMaxIterations(30), ftdse.WithEngine(eng)).
		Solve(context.Background(), prob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Design, explicit.Design) || base.Cost != explicit.Cost ||
		base.Iterations != explicit.Iterations {
		t.Fatal("WithEngine(default) diverges from the default solver")
	}
}

// TestPortfolioEngineFacade races tabu against simulated annealing
// through the public facade and checks the anytime/quality contract.
// It runs under -race in CI, which is what makes the portfolio's
// concurrency claims checkable.
func TestPortfolioEngineFacade(t *testing.T) {
	prob := engineProblem()
	solve := func(name string) *ftdse.Result {
		t.Helper()
		eng, err := ftdse.ParseEngine(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ftdse.NewSolver(
			ftdse.WithEngine(eng),
			ftdse.WithMaxIterations(30),
		).Solve(context.Background(), prob)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tabu, sa, port := solve("tabu"), solve("sa"), solve("portfolio")
	single := tabu.Cost
	if sa.Cost.Less(single) {
		single = sa.Cost
	}
	if single.Less(port.Cost) {
		t.Errorf("portfolio %v worse than best single engine %v", port.Cost, single)
	}
	if port.Engine != "portfolio" {
		t.Errorf("Result.Engine = %q, want portfolio", port.Engine)
	}
	// Determinism: the race's winner selection must be reproducible.
	if again := solve("portfolio"); again.Cost != port.Cost || !reflect.DeepEqual(again.Design, port.Design) {
		t.Error("portfolio result not deterministic across runs")
	}
}

// TestCustomEngineComposes: a caller-supplied Engine — here a trivial
// first-improvement hill climber written against the public Search
// API — plugs into the solver like a built-in.
type firstImprovement struct{}

func (firstImprovement) Name() string { return "first-improvement" }

func (firstImprovement) Explore(ctx context.Context, s *ftdse.Search) error {
	cur, sch, cost := s.Current()
	for {
		s.Tick()
		moves := s.Moves(cur, sch.CriticalPath())
		applied := false
		for i, ev := range s.Evaluate(ctx, cur, moves) {
			if !ev.OK || !ev.Cost.Less(cost) {
				continue
			}
			nsch := ev.Schedule
			if nsch == nil {
				var err error
				if nsch, err = s.Materialize(cur, moves[i]); err != nil {
					continue
				}
			}
			cur, sch, cost = moves[i].ApplyTo(cur), nsch, ev.Cost
			s.Publish("first", cur, sch, cost)
			applied = true
			break
		}
		if !applied {
			return nil
		}
	}
}

func TestCustomEngineComposes(t *testing.T) {
	prob := engineProblem()
	res, err := ftdse.NewSolver(ftdse.WithEngine(firstImprovement{})).
		Solve(context.Background(), prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "first-improvement" {
		t.Errorf("Result.Engine = %q", res.Engine)
	}
	if err := ftdse.ValidateSchedule(res.Schedule); err != nil {
		t.Errorf("custom engine produced invalid schedule: %v", err)
	}
}
