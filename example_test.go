package ftdse_test

import (
	"context"
	"fmt"
	"log"

	"repro/ftdse"
)

// Example synthesizes a fault-tolerant implementation of a small
// control application: two processing chains on two nodes, tolerating
// one transient fault per cycle. The solver decides mapping and
// fault-tolerance policies so the 150 ms deadline holds even in the
// worst fault scenario. Untimed runs are deterministic, so the output
// is stable.
func Example() {
	b := ftdse.NewProblem("example").Nodes(2)
	g := b.Graph("loop", ftdse.Ms(200), ftdse.Ms(150))
	sensor := g.Process("Sensor", ftdse.Ms(8), ftdse.Ms(10))
	filter := g.Process("Filter", ftdse.Ms(12), ftdse.Ms(14))
	control := g.Process("Control", ftdse.Ms(20), ftdse.Ms(22))
	actuate := g.Process("Actuate", ftdse.Ms(8), ftdse.Ms(10))
	g.Edge(sensor, filter, 2)
	g.Edge(filter, control, 2)
	g.Edge(control, actuate, 2)
	prob, err := b.Faults(1, ftdse.Ms(5)).Pin(sensor, 0).Build()
	if err != nil {
		log.Fatal(err)
	}

	solver := ftdse.NewSolver(
		ftdse.WithStrategy(ftdse.MXR),
		ftdse.WithMaxIterations(100),
	)
	res, err := solver.Solve(context.Background(), prob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedulable: %v\n", res.Schedulable())
	fmt.Printf("worst-case schedule length: %v\n", res.Cost.Makespan)
	for _, p := range prob.Processes() {
		fmt.Printf("%s: %v\n", p.Name, res.Design[p.ID])
	}

	// Output:
	// schedulable: true
	// worst-case schedule length: 73ms
	// Sensor: {N0+1x}
	// Filter: {N0+1x}
	// Control: {N0+1x}
	// Actuate: {N0+1x}
}
