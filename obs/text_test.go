package obs

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// TestParseTextEscapedLabels pins the Prometheus text-format escaping
// rules on the parse side: values containing backslashes, escaped
// quotes, newlines and — the historical bug — a literal '}' must parse,
// and the normalized key must re-render with the same escaping
// WriteText uses.
func TestParseTextEscapedLabels(t *testing.T) {
	cases := []struct {
		line string
		key  string
		val  float64
	}{
		{`m_total{l="plain"} 1`, `m_total{l="plain"}`, 1},
		{`m_total{l="back\\slash"} 2`, `m_total{l="back\\slash"}`, 2},
		{`m_total{l="say \"hi\""} 3`, `m_total{l="say \"hi\""}`, 3},
		{`m_total{l="line\nbreak"} 4`, `m_total{l="line\nbreak"}`, 4},
		{`m_total{l="brace}inside"} 5`, `m_total{l="brace}inside"}`, 5},
		{`m_total{ l = "spaced" , } 6`, `m_total{l="spaced"}`, 6},
		{`m_total{a="x",b="y}z"} 7`, `m_total{a="x",b="y}z"}`, 7},
	}
	for _, c := range cases {
		got, err := ParseText(strings.NewReader(c.line))
		if err != nil {
			t.Errorf("ParseText(%q): %v", c.line, err)
			continue
		}
		v, ok := got[c.key]
		if !ok {
			t.Errorf("ParseText(%q): key %q missing, got %v", c.line, c.key, got)
			continue
		}
		if v != c.val {
			t.Errorf("ParseText(%q)[%q] = %v, want %v", c.line, c.key, v, c.val)
		}
	}
	for _, bad := range []string{
		`m_total{l="unterminated} 1`,
		`m_total{l="bad \escape"} 1`,
		`m_total{l=unquoted} 1`,
		`m_total{l="v"`,
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted a malformed line", bad)
		}
	}
}

// TestExpositionRoundTripGnarlyLabels drives the registry's own
// exposition through ParseText with label values that exercise every
// escape (this is the pair ftpromlint relies on agreeing).
func TestExpositionRoundTripGnarlyLabels(t *testing.T) {
	r := NewRegistry()
	vec := r.NewCounterVec("ftdse_gnarly_total", "escaping torture", "engine")
	values := []string{
		`plain`,
		`back\slash`,
		`quote"inside`,
		"line\nbreak",
		`brace}inside`,
		`all\of"it}` + "\n",
	}
	for i, v := range values {
		vec.With(v).Add(int64(i + 1))
	}

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("registry's own exposition fails validation: %v", err)
	}
	parsed, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("registry's own exposition fails ParseText: %v", err)
	}
	for i, v := range values {
		key := `ftdse_gnarly_total{engine="` + escapeLabelValue(v) + `"}`
		got, ok := parsed[key]
		if !ok {
			t.Errorf("parsed exposition lacks %q; keys: %v", key, keysOf(parsed))
			continue
		}
		if want := float64(i + 1); got != want {
			t.Errorf("parsed[%q] = %v, want %v", key, got, want)
		}
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// renderSamples re-renders a parsed sample map the way WriteText spells
// sample lines (keys are already normalized), giving the fuzz target
// its fixed-point form.
func renderSamples(m map[string]float64) string {
	var b strings.Builder
	for _, k := range keysOf(m) {
		b.WriteString(k)
		b.WriteByte(' ')
		b.WriteString(formatFloat(m[k]))
		b.WriteByte('\n')
	}
	return b.String()
}

// FuzzParseText asserts parse→render→parse is a fixed point: whatever
// exposition ParseText accepts, its normalized form must parse to the
// same samples — and nothing may panic along the way.
func FuzzParseText(f *testing.F) {
	f.Add("ftdse_solves_total 42\n")
	f.Add(`ftdse_gnarly_total{engine="brace}inside"} 2` + "\n")
	f.Add(`m_total{a="x\\y",b="say \"hi\""} 3.5 1700000000` + "\n")
	f.Add("# HELP m m\n# TYPE m counter\nm_bucket{le=\"+Inf\"} 1\n")
	f.Add(`m{l="line\nbreak"} NaN` + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		first, err := ParseText(strings.NewReader(data))
		if err != nil {
			return
		}
		rendered := renderSamples(first)
		second, err := ParseText(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("normalized exposition failed to re-parse: %v\ninput: %q\nrendered: %q", err, data, rendered)
		}
		if len(first) != len(second) {
			t.Fatalf("round trip changed sample count: %d -> %d\ninput: %q\nrendered: %q", len(first), len(second), data, rendered)
		}
		for k, v := range first {
			v2, ok := second[k]
			if !ok {
				t.Fatalf("round trip lost key %q\ninput: %q\nrendered: %q", k, data, rendered)
			}
			if v != v2 && !(math.IsNaN(v) && math.IsNaN(v2)) {
				t.Fatalf("round trip changed %q: %v -> %v", k, v, v2)
			}
		}
	})
}
