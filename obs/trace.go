package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader is the HTTP header that carries a job's trace ID across
// processes: client → coordinator → node, on dispatches, failover
// re-dispatches and checkpoint pushes. The same ID appears in journal
// entries, SSE events, log lines and the final JobResult, so one grep
// over any of those reconstructs the job's life end to end.
const TraceHeader = "Ftdse-Trace-Id"

// NewTraceID mints a 128-bit random trace ID in lower-case hex. IDs are
// correlation handles only — nothing derives meaning from their bytes —
// so crypto/rand is used purely for collision resistance across
// processes that share no state.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy source is broken;
		// a degraded constant ID keeps solves working and is visibly
		// wrong in any trace view.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is usable as a trace ID: non-empty,
// bounded, and free of characters that would break headers, JSON-line
// greps or log fields. Inbound IDs that fail this are replaced, not
// rejected — correlation is best-effort.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Span is one timed step of a job's life (queue wait, dispatch attempt,
// solve, checkpoint push), offset-based so spans from one process need
// no clock agreement with any other: StartMs is measured from the
// owning process's first sight of the job, and durations come from the
// monotonic clock.
//
//ftdse:wire
type Span struct {
	// Name identifies the step: "queue_wait", "solve", "dispatch",
	// "redispatch", "checkpoint_push", ...
	Name string `json:"name"`
	// StartMs is the span's start, in milliseconds since the owning
	// process accepted the job.
	StartMs float64 `json:"start_ms"`
	// DurationMs is the span's monotonic duration. Open spans (a solve
	// still running when a status is taken) report 0 and are stamped
	// when they close.
	DurationMs float64 `json:"duration_ms"`
	// Node is the cluster member the step ran on, when dispatched.
	Node string `json:"node,omitempty"`
	// Attempt numbers dispatch retries (1 = first dispatch); 0 for
	// spans that cannot repeat.
	Attempt int `json:"attempt,omitempty"`
}
