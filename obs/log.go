package obs

import (
	"context"
	"io"
	"log/slog"
)

// TraceIDKey is the slog attribute key log lines carry the trace ID
// under, chosen to match the JSON field name of journal entries and
// job results so one grep covers logs and documents alike.
const TraceIDKey = "trace_id"

// NewLogger builds the structured JSON logger the daemons write to
// stderr: one JSON object per line, so log streams are greppable and
// machine-parsable alongside the journal.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard returns a logger that drops everything — the default for
// library components (service, cluster) constructed without an explicit
// logger, so embedding them stays silent like before.
func Discard() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler is a no-op slog.Handler (the stdlib gains one only in
// later Go versions than go.mod pins).
type discardHandler struct{}

func (discardHandler) Enabled(ctx context.Context, level slog.Level) bool { return false }
func (discardHandler) Handle(ctx context.Context, r slog.Record) error    { return nil }
func (d discardHandler) WithAttrs(attrs []slog.Attr) slog.Handler         { return d }
func (d discardHandler) WithGroup(name string) slog.Handler               { return d }
