package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text exposition for the format
// guarantees the repo's /metrics endpoints promise (DESIGN.md §14):
//
//   - every sample line parses (valid metric and label names, numeric
//     value, optional integer timestamp);
//   - # TYPE declares a known type before the family's first sample,
//     and at most once; # HELP, when present, appears at most once and
//     before # TYPE;
//   - a family's lines are contiguous — no interleaving;
//   - no duplicate sample (same name and label set);
//   - histograms are complete and coherent: bucket counts are
//     cumulative (non-decreasing as le increases), the +Inf bucket is
//     present, and it equals <name>_count.
//
// CI pipes live daemon scrapes through this via cmd/ftpromlint; the
// exposition golden tests use it as a cross-check on WriteText.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type famState struct {
		typ       string
		hasHelp   bool
		sawSample bool
		closed    bool // a later family started; more lines = interleaving
		buckets   map[float64]float64
		hasInf    bool
		infCount  float64
		count     float64
		hasCount  bool
	}
	fams := make(map[string]*famState)
	order := []string{}
	var current string

	open := func(name string) *famState {
		f, ok := fams[name]
		if !ok {
			f = &famState{}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	enter := func(name string, line int) (*famState, error) {
		f := open(name)
		if f.closed {
			return nil, fmt.Errorf("line %d: family %q interleaved with other families", line, name)
		}
		if current != "" && current != name {
			fams[current].closed = true
		}
		current = name
		return f, nil
	}

	seen := make(map[string]int) // sample key -> first line
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("obs: line %d: invalid metric name %q in %s comment", line, name, fields[1])
			}
			f, err := enter(name, line)
			if err != nil {
				return fmt.Errorf("obs: %w", err)
			}
			switch fields[1] {
			case "HELP":
				if f.hasHelp {
					return fmt.Errorf("obs: line %d: second HELP for %q", line, name)
				}
				if f.typ != "" || f.sawSample {
					return fmt.Errorf("obs: line %d: HELP for %q after its TYPE or samples", line, name)
				}
				f.hasHelp = true
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("obs: line %d: second TYPE for %q", line, name)
				}
				if f.sawSample {
					return fmt.Errorf("obs: line %d: TYPE for %q after its samples", line, name)
				}
				typ := ""
				if len(fields) >= 4 {
					typ = strings.TrimSpace(fields[3])
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = typ
				default:
					return fmt.Errorf("obs: line %d: unknown type %q for %q", line, typ, name)
				}
			}
			continue
		}

		key, val, err := parseSampleLine(text)
		if err != nil {
			return fmt.Errorf("obs: line %d: %w", line, err)
		}
		if first, dup := seen[key]; dup {
			return fmt.Errorf("obs: line %d: duplicate sample %s (first at line %d)", line, key, first)
		}
		seen[key] = line

		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		famName := name
		f := fams[famName]
		// Histogram/summary series belong to the family their suffix
		// strips to, when that family was declared.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name {
				if bf, ok := fams[base]; ok && (bf.typ == "histogram" || bf.typ == "summary") {
					famName, f = base, bf
					break
				}
			}
		}
		if f == nil {
			return fmt.Errorf("obs: line %d: sample %s has no preceding TYPE", line, key)
		}
		if f.typ == "" {
			return fmt.Errorf("obs: line %d: sample %s precedes its TYPE", line, key)
		}
		if _, err := enter(famName, line); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		f.sawSample = true

		if f.typ == "histogram" {
			switch {
			case strings.HasPrefix(key, famName+"_bucket{"):
				le, perr := bucketBound(key)
				if perr != nil {
					return fmt.Errorf("obs: line %d: %w", line, perr)
				}
				if f.buckets == nil {
					f.buckets = make(map[float64]float64)
				}
				if strings.Contains(key, `le="+Inf"`) {
					f.hasInf, f.infCount = true, val
				} else {
					f.buckets[le] = val
				}
			case key == famName+"_count":
				f.count, f.hasCount = val, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading exposition: %w", err)
	}

	for _, name := range order {
		f := fams[name]
		if f.typ == "" {
			return fmt.Errorf("obs: family %q has HELP but no TYPE", name)
		}
		if f.typ != "histogram" {
			continue
		}
		if !f.sawSample {
			continue
		}
		if !f.hasInf {
			return fmt.Errorf("obs: histogram %q has no +Inf bucket", name)
		}
		if !f.hasCount {
			return fmt.Errorf("obs: histogram %q has no _count", name)
		}
		if f.infCount != f.count {
			return fmt.Errorf("obs: histogram %q +Inf bucket %v != count %v", name, f.infCount, f.count)
		}
		bounds := make([]float64, 0, len(f.buckets))
		for le := range f.buckets {
			bounds = append(bounds, le)
		}
		sort.Float64s(bounds)
		prev := 0.0
		for _, le := range bounds {
			if f.buckets[le] < prev {
				return fmt.Errorf("obs: histogram %q buckets not cumulative at le=%v (%v < %v)",
					name, le, f.buckets[le], prev)
			}
			prev = f.buckets[le]
		}
		if f.infCount < prev {
			return fmt.Errorf("obs: histogram %q +Inf bucket %v below le=%v bucket %v",
				name, f.infCount, bounds[len(bounds)-1], prev)
		}
	}
	return nil
}

// bucketBound extracts the le bound from a _bucket sample key.
func bucketBound(key string) (float64, error) {
	i := strings.Index(key, `le="`)
	if i < 0 {
		return 0, fmt.Errorf("bucket sample %s has no le label", key)
	}
	rest := key[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, fmt.Errorf("bucket sample %s has malformed le label", key)
	}
	bound := rest[:j]
	if bound == "+Inf" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(bound, 64)
	if err != nil {
		return 0, fmt.Errorf("bucket sample %s has non-numeric le %q", key, bound)
	}
	return v, nil
}
