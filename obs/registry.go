package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Registry holds the metrics of one process component (a service, a
// coordinator) and renders them in the Prometheus text exposition
// format. Metrics are created once at construction time through the
// New* constructors; observation methods (Add, Set, Observe) are safe
// for concurrent use with each other and with WriteText, so scrapes
// never block the serving path.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
}

// family is one metric family: a name, its HELP/TYPE metadata and the
// collector that renders its samples.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	coll collector
}

// collector renders the samples of one family. Implementations must be
// safe for concurrent use with observations.
type collector interface {
	samples() []sample
}

// sample is one exposition line: name suffix (for histogram _bucket /
// _sum / _count), optional label pair, and the value.
type sample struct {
	suffix     string // appended to the family name ("" for plain metrics)
	labelName  string
	labelValue string
	value      float64
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on duplicates or invalid names —
// both are programmer errors caught by the first scrape in any test.
func (r *Registry) register(name, help, typ string, c collector) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.byName[name] = &family{name: name, help: help, typ: typ, coll: c}
}

// families returns the registered families sorted by name, so the
// exposition is deterministic scrape to scrape.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// NewCounter registers a counter with the registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only grow).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) samples() []sample {
	return []sample{{value: float64(c.v.Load())}}
}

// CounterVec is a counter family partitioned by one label (for example
// solves by engine). Children are created on first use and live for the
// life of the registry.
type CounterVec struct {
	label string

	mu       sync.Mutex
	children map[string]*Counter
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	v := &CounterVec{label: label, children: make(map[string]*Counter)}
	r.register(name, help, "counter", v)
	return v
}

// With returns the child counter for one label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Values snapshots the child counters by label value (the legacy
// expvar view renders from this).
func (v *CounterVec) Values() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.children))
	for val, c := range v.children {
		out[val] = c.Value()
	}
	return out
}

func (v *CounterVec) samples() []sample {
	v.mu.Lock()
	defer v.mu.Unlock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	out := make([]sample, 0, len(values))
	for _, val := range values {
		out = append(out, sample{labelName: v.label, labelValue: val,
			value: float64(v.children[val].Value())})
	}
	return out
}

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// NewGauge registers a gauge with the registry.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", g)
	return g
}

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) samples() []sample {
	return []sample{{value: float64(g.v.Load())}}
}

// gaugeFunc evaluates a callback at scrape time — for values another
// data structure already owns (queue depth, cache length).
type gaugeFunc func() float64

func (f gaugeFunc) samples() []sample {
	return []sample{{value: f()}}
}

// NewGaugeFunc registers a gauge whose value is computed by fn at every
// scrape. fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", gaugeFunc(fn))
}

// counterFunc evaluates a callback at scrape time for monotonic values
// another component already owns (for example the solver's
// process-global evaluator counters).
type counterFunc func() float64

func (f counterFunc) samples() []sample {
	return []sample{{value: f()}}
}

// NewCounterFunc registers a counter whose value is computed by fn at
// every scrape. fn must be monotonically non-decreasing and safe for
// concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", counterFunc(fn))
}

// Histogram is a cumulative histogram of float64 observations with
// fixed upper bounds, exposed Prometheus-style: one cumulative _bucket
// per bound plus +Inf, _sum and _count. Observations are lock-free
// (atomic per-bucket counters); Quantile estimates percentiles from the
// bucket counts, replacing the service's earlier 512-sample window —
// the estimate covers every observation since start, not a sliding
// sample.
type Histogram struct {
	bounds  []float64      // strictly increasing upper bounds, +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram registers a histogram with the given strictly increasing
// bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.register(name, help, "histogram", h)
	return h
}

// ExponentialBuckets returns n bounds starting at start and multiplying
// by factor — the standard shape for latency histograms.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the target bucket, like the
// Prometheus histogram_quantile function. It returns 0 with no
// observations; an estimate landing in the +Inf bucket reports the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) samples() []sample {
	// Snapshot counts first so the rendered buckets are monotone even
	// while observations land concurrently: _count is derived from the
	// same snapshot, never from the live counter.
	snap := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	out := make([]sample, 0, len(h.bounds)+3)
	var cum int64
	for i, b := range h.bounds {
		cum += snap[i]
		out = append(out, sample{suffix: "_bucket", labelName: "le",
			labelValue: formatFloat(b), value: float64(cum)})
	}
	out = append(out,
		sample{suffix: "_bucket", labelName: "le", labelValue: "+Inf", value: float64(total)},
		sample{suffix: "_sum", value: h.Sum()},
		sample{suffix: "_count", value: float64(total)})
	return out
}
