package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestWriteTextGolden pins the exposition byte for byte: families
// sorted by name, HELP before TYPE, labeled samples sorted by label
// value, cumulative buckets, integer-rendered integral values.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	solves := r.NewCounter("ftdse_solves_total", "Solve jobs executed.")
	byEngine := r.NewCounterVec("ftdse_solves_by_engine_total", "Solve jobs by engine.", "engine")
	depth := r.NewGauge("ftdse_queue_depth", "Jobs queued or running.")
	r.NewGaugeFunc("ftdse_cache_len", "Cached results.", func() float64 { return 7 })
	lat := r.NewHistogram("ftdse_solve_latency_seconds", "Solve wall time.", []float64{0.1, 1, 10})

	solves.Add(3)
	byEngine.With("tabu").Add(2)
	byEngine.With("default").Inc()
	depth.Set(4)
	lat.Observe(0.05)
	lat.Observe(0.5)
	lat.Observe(0.25)
	lat.Observe(99)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := `# HELP ftdse_cache_len Cached results.
# TYPE ftdse_cache_len gauge
ftdse_cache_len 7
# HELP ftdse_queue_depth Jobs queued or running.
# TYPE ftdse_queue_depth gauge
ftdse_queue_depth 4
# HELP ftdse_solve_latency_seconds Solve wall time.
# TYPE ftdse_solve_latency_seconds histogram
ftdse_solve_latency_seconds_bucket{le="0.1"} 1
ftdse_solve_latency_seconds_bucket{le="1"} 3
ftdse_solve_latency_seconds_bucket{le="10"} 3
ftdse_solve_latency_seconds_bucket{le="+Inf"} 4
ftdse_solve_latency_seconds_sum 99.8
ftdse_solve_latency_seconds_count 4
# HELP ftdse_solves_by_engine_total Solve jobs by engine.
# TYPE ftdse_solves_by_engine_total counter
ftdse_solves_by_engine_total{engine="default"} 1
ftdse_solves_by_engine_total{engine="tabu"} 2
# HELP ftdse_solves_total Solve jobs executed.
# TYPE ftdse_solves_total counter
ftdse_solves_total 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := ValidateExposition(strings.NewReader(buf.String())); err != nil {
		t.Errorf("golden exposition fails its own validator: %v", err)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("jobs_total", "jobs").Add(41)
	r.NewCounterVec("by_node_total", "per node", "node").With("n1").Add(5)
	h := r.NewHistogram("wait_seconds", "queue wait", []float64{0.5, 5})
	h.Observe(0.1)
	h.Observe(7)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	m, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for key, want := range map[string]float64{
		"jobs_total":                     41,
		`by_node_total{node="n1"}`:       5,
		`wait_seconds_bucket{le="0.5"}`:  1,
		`wait_seconds_bucket{le="+Inf"}`: 2,
		"wait_seconds_count":             2,
		"wait_seconds_sum":               7.1,
	} {
		if got := m[key]; got != want {
			t.Errorf("parsed %s = %v, want %v", key, got, want)
		}
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"9leading_digit 1\n",
		"name{le=\"0.1\" 3\n",   // unterminated label block
		"name{le=unquoted} 3\n", // unquoted label value
		"name{0bad=\"x\"} 3\n",  // invalid label name
		"name notanumber\n",     // non-numeric value
		"name\n",                // no value
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

// TestHistogramBucketsMonotone drives a histogram hard and checks the
// rendered buckets are always cumulative and coherent with _count —
// the exposition-format guarantee ValidateExposition enforces on live
// scrapes.
func TestHistogramBucketsMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("m_seconds", "m", ExponentialBuckets(0.001, 4, 8))
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i%997) / 400)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("validator rejects histogram exposition: %v", err)
	}
	m, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if m["m_seconds_count"] != 10000 {
		t.Errorf("count = %v, want 10000", m["m_seconds_count"])
	}
	prev := 0.0
	for _, b := range ExponentialBuckets(0.001, 4, 8) {
		key := `m_seconds_bucket{le="` + formatFloat(b) + `"}`
		v, ok := m[key]
		if !ok {
			t.Fatalf("bucket %s missing", key)
		}
		if v < prev {
			t.Errorf("bucket %s = %v < previous %v", key, v, prev)
		}
		prev = v
	}
	if inf := m[`m_seconds_bucket{le="+Inf"}`]; inf != m["m_seconds_count"] {
		t.Errorf("+Inf bucket %v != count %v", inf, m["m_seconds_count"])
	}
}

// TestConcurrentScrape races observations against scrapes: every
// exposition captured mid-flight must still validate (monotone buckets,
// +Inf == count). Run under -race this also proves the registry's
// concurrency contract.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "ops")
	v := r.NewCounterVec("ops_by_kind_total", "ops by kind", "kind")
	g := r.NewGauge("depth", "depth")
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kinds := []string{"a", "b", "c"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				v.With(kinds[i%3]).Inc()
				g.Set(int64(i % 10))
				h.Observe(float64(i%200) / 100)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d invalid mid-flight: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "q", []float64{1, 2, 4, 8, 16})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10) // 0.1 .. 10.0
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.5 || p50 > 8 {
		t.Errorf("p50 = %v, want within [0.5, 8]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	// Everything beyond the last bound collapses to it.
	h2 := r.NewHistogram("q2_seconds", "q2", []float64{1})
	for i := 0; i < 10; i++ {
		h2.Observe(100)
	}
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("overflow p50 = %v, want last bound 1", got)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":         "a_total 1\n",
		"TYPE after":      "a_total 1\n# TYPE a_total counter\n",
		"dup sample":      "# TYPE a_total counter\na_total 1\na_total 2\n",
		"dup TYPE":        "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n",
		"HELP after TYPE": "# TYPE a_total counter\n# HELP a_total x\na_total 1\n",
		"unknown type":    "# TYPE a_total enum\na_total 1\n",
		"interleaved":     "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na{k=\"v\"} 2\n",
		"non-monotone":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"no +Inf":         "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: validator accepted:\n%s", name, text)
		}
	}
	ok := "# HELP a_total fine\n# TYPE a_total counter\na_total 1\n" +
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 12.5\nh_count 5\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("validator rejected a valid exposition: %v", err)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Errorf("two minted trace IDs collide: %s", a)
	}
	if len(a) != 32 {
		t.Errorf("trace ID %q is not 32 hex chars", a)
	}
	if !ValidTraceID(a) {
		t.Errorf("minted trace ID %q fails ValidTraceID", a)
	}
	for _, bad := range []string{"", strings.Repeat("x", 129), "has space", "semi;colon", "new\nline"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID accepted %q", bad)
		}
	}
	for _, good := range []string{"abc", "A-b_c.9"} {
		if !ValidTraceID(good) {
			t.Errorf("ValidTraceID rejected %q", good)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		0:      "0",
		3:      "3",
		-2:     "-2",
		0.25:   "0.25",
		1e9:    "1000000000",
		1.5e-7: "1.5e-07",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.Inf(1)); got != "+Inf" && got != "Inf" {
		// strconv renders +Inf as "+Inf"; pin that it at least parses back.
		t.Logf("formatFloat(+Inf) = %q", got)
	}
}
