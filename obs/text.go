package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// the daemons' /metrics endpoints.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE lines followed by its samples, labeled samples
// sorted by label value, histogram buckets cumulative. The output is a
// deterministic function of the metric values, so golden tests can pin
// it byte for byte.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.coll.samples() {
			bw.WriteString(f.name)
			bw.WriteString(s.suffix)
			if s.labelName != "" {
				bw.WriteByte('{')
				bw.WriteString(s.labelName)
				bw.WriteString(`="`)
				bw.WriteString(escapeLabelValue(s.labelValue))
				bw.WriteString(`"}`)
			}
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ParseText parses a Prometheus text exposition into a flat map from
// sample key to value. The key is the sample name exactly as exposed —
// including the label part, e.g. `ftdse_solves_by_engine_total{engine="tabu"}`
// — so plain metrics are addressed by bare name and labeled ones by
// their full line prefix. Comment and empty lines are skipped; a
// malformed sample line is an error. It is the inverse of WriteText for
// every registry and also accepts any exposition ValidateExposition
// accepts.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, err := parseSampleLine(text)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return out, nil
}

// parseSampleLine splits one sample line into its key (name plus
// optional label block, normalized without whitespace) and value.
func parseSampleLine(text string) (string, float64, error) {
	name, rest := splitName(text)
	if name == "" {
		return "", 0, fmt.Errorf("no metric name in %q", text)
	}
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	key := name
	rest = strings.TrimLeft(rest, " \t")
	if strings.HasPrefix(rest, "{") {
		labels, remainder, err := scanLabelBlock(rest)
		if err != nil {
			return "", 0, fmt.Errorf("%w in %q", err, text)
		}
		key += "{" + labels + "}"
		rest = strings.TrimLeft(remainder, " \t")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", 0, fmt.Errorf("malformed sample %q", text)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return key, val, nil
}

// splitName splits the leading metric name off a sample line.
func splitName(text string) (name, rest string) {
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return text[:i], text[i:]
	}
	return text, ""
}

// scanLabelBlock consumes a {...} label block, scanning quote-aware so
// values containing '}' or escaped quotes parse per the Prometheus text
// format, and re-renders it without inter-pair whitespace (values
// re-escaped), so parsed keys match the compact form WriteText emits.
// Returns the normalized body and the input after the closing brace.
func scanLabelBlock(s string) (labels, rest string, err error) {
	var pairs []string
	r := strings.TrimLeft(s[1:], " \t")
	for {
		if r == "" {
			return "", "", fmt.Errorf("unterminated label block")
		}
		if r[0] == '}' {
			return strings.Join(pairs, ","), r[1:], nil
		}
		eq := strings.Index(r, "=")
		if eq < 0 {
			return "", "", fmt.Errorf("label pair without '='")
		}
		name := strings.TrimSpace(r[:eq])
		if !validLabelName(name) {
			return "", "", fmt.Errorf("invalid label name %q", name)
		}
		r = strings.TrimLeft(r[eq+1:], " \t")
		if !strings.HasPrefix(r, `"`) {
			return "", "", fmt.Errorf("unquoted value of label %q", name)
		}
		value, remainder, err := scanQuoted(r)
		if err != nil {
			return "", "", err
		}
		pairs = append(pairs, name+`="`+escapeLabelValue(value)+`"`)
		r = strings.TrimLeft(remainder, " \t")
		if strings.HasPrefix(r, ",") {
			r = strings.TrimLeft(r[1:], " \t")
		}
	}
}

// scanQuoted consumes a double-quoted, backslash-escaped label value
// and returns the unescaped value plus the remainder of the input.
func scanQuoted(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("truncated escape in label value")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c in label value", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// formatFloat renders a sample value the way Prometheus clients do:
// integers without an exponent or decimal point, everything else in
// shortest round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName reports whether s matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
