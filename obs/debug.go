package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/trace"
	"strconv"
	"sync/atomic"
	"time"
)

// RegisterDebug mounts the profiling endpoints on mux; the daemons call
// it behind their -pprof flag so production deployments opt in:
//
//	/debug/pprof/...   the standard net/http/pprof handlers
//	/debug/rtrace      on-demand runtime/trace capture:
//	                   GET /debug/rtrace?seconds=5 streams a trace file
//
// runtime/trace captures are process-global and exclusive, so
// concurrent /debug/rtrace requests beyond the first are rejected with
// 409 Conflict.
func RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/rtrace", handleRuntimeTrace)
}

// rtraceActive guards the process-global runtime tracer.
var rtraceActive atomic.Bool

// handleRuntimeTrace captures a runtime execution trace for ?seconds
// (default 1, max 60) and streams it to the response; feed the file to
// `go tool trace`.
func handleRuntimeTrace(w http.ResponseWriter, r *http.Request) {
	secs := 1.0
	if v := r.URL.Query().Get("seconds"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			http.Error(w, "obs: seconds must be a positive number", http.StatusBadRequest)
			return
		}
		secs = f
	}
	if secs > 60 {
		secs = 60
	}
	if !rtraceActive.CompareAndSwap(false, true) {
		http.Error(w, "obs: a runtime trace capture is already running", http.StatusConflict)
		return
	}
	defer rtraceActive.Store(false)

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="rtrace.out"`)
	if err := trace.Start(w); err != nil {
		http.Error(w, fmt.Sprintf("obs: starting runtime trace: %v", err), http.StatusInternalServerError)
		return
	}
	select {
	case <-time.After(time.Duration(secs * float64(time.Second))):
	case <-r.Context().Done():
	}
	trace.Stop()
}
