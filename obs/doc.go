// Package obs is the repo's stdlib-only observability kit, shared by
// the service and cluster tiers and their daemons. It provides:
//
//   - a metrics Registry (counters, labeled counters, gauges and
//     histograms) with a hand-rolled Prometheus text-format exposition
//     (WriteText), a matching parser (ParseText, used by the typed
//     client) and a format checker (ValidateExposition, used by CI and
//     cmd/ftpromlint);
//   - trace correlation: NewTraceID mints the job trace IDs the cluster
//     carries in the TraceHeader header through dispatch, failover,
//     journal entries, SSE events and results, and Span records one
//     timed step of a job's life;
//   - structured logging helpers: NewLogger builds the slog JSON logger
//     the daemons write, Discard the no-op logger libraries default to;
//   - profiling hooks: RegisterDebug mounts net/http/pprof and an
//     on-demand runtime/trace capture endpoint behind a daemon's
//     -pprof flag.
//
// Everything here is observability-plane only: nothing in this package
// influences a search trajectory, so the solver's determinism contract
// is untouched.
package obs
