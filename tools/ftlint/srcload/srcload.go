// Package srcload type-checks every package of a Go module directly
// from source, with no build system and no export data — the loader
// behind `ftlint -wirelock`, which must see the whole module's
// annotated declarations in one process. Imports within the module
// resolve to the corresponding directories; everything else resolves to
// the standard library, type-checked from GOROOT source. _test.go
// files, testdata trees and nested modules are skipped: the wire
// schema lives in shipped code.
package srcload

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Package is one type-checked module package.
type Package struct {
	Path  string
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info
}

// A Module is a loaded module: its path, its file set, and its
// packages sorted by import path.
type Module struct {
	Path     string
	Fset     *token.FileSet
	Packages []*Package
}

var moduleRx = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Load type-checks the module rooted at dir (the directory holding
// go.mod).
func Load(dir string) (*Module, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("srcload: %v", err)
	}
	m := moduleRx.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("srcload: no module directive in %s/go.mod", dir)
	}
	modPath := string(m[1])

	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}

	l := &loader{
		root:    dir,
		module:  modPath,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.stdlib = importer.ForCompiler(l.fset, "source", nil)

	mod := &Module{Path: modPath, Fset: l.fset}
	for _, rel := range dirs {
		ip := modPath
		if rel != "." {
			ip = path.Join(modPath, filepath.ToSlash(rel))
		}
		p, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		if p != nil {
			mod.Packages = append(mod.Packages, p)
		}
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].Path < mod.Packages[j].Path })
	return mod, nil
}

// packageDirs walks the module for directories containing non-test Go
// files, skipping hidden and underscore directories, testdata, and
// nested modules.
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				out = append(out, rel)
				break
			}
		}
		return nil
	})
	return out, err
}

type loader struct {
	root    string
	module  string
	fset    *token.FileSet
	pkgs    map[string]*Package
	loading map[string]bool
	stdlib  types.Importer
}

// Import implements types.Importer: module paths map to directories,
// the rest is standard library.
func (l *loader) Import(ip string) (*types.Package, error) {
	if ip == l.module || strings.HasPrefix(ip, l.module+"/") {
		p, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("srcload: no Go files for %s", ip)
		}
		return p.Pkg, nil
	}
	return l.stdlib.Import(ip)
}

// load type-checks one module package (nil if the directory has no
// shipped Go files, e.g. a main package excluded elsewhere).
func (l *loader) load(ip string) (*Package, error) {
	if p, ok := l.pkgs[ip]; ok {
		return p, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("srcload: import cycle through %s", ip)
	}
	l.loading[ip] = true
	defer delete(l.loading, ip)

	rel := strings.TrimPrefix(strings.TrimPrefix(ip, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[ip] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(ip, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("srcload: type-checking %s: %v", ip, err)
	}
	p := &Package{Path: ip, Pkg: pkg, Files: files, Info: info}
	l.pkgs[ip] = p
	return p, nil
}
