// Command ftlint is the multichecker binary bundling the repository's
// invariant passes. It speaks the "go vet -vettool" protocol and is
// normally driven by the build system:
//
//	go build -o /tmp/ftlint repro/ftdse/tools/ftlint/cmd/ftlint
//	go vet -vettool=/tmp/ftlint ./...                  # all passes
//	go vet -vettool=/tmp/ftlint -boundary ./...        # one pass
//	go vet -vettool=/tmp/ftlint -staleallows ./...     # + rot check
//
// One mode runs standalone, outside the vet protocol:
//
//	ftlint -wirelock [-root dir]          # regenerate wire.lock
//	ftlint -wirelock -check [-root dir]   # exit 1 on any drift
//
// See DESIGN.md §12 for the invariant catalog, the //ftdse:hotpath,
// //ftdse:shutdown and //ftdse:wire annotations, and the
// //ftlint:allow suppression convention.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/ftdse/tools/ftlint/passes/boundary"
	"repro/ftdse/tools/ftlint/passes/concurrency"
	"repro/ftdse/tools/ftlint/passes/determinism"
	"repro/ftdse/tools/ftlint/passes/hotpath"
	"repro/ftdse/tools/ftlint/passes/metrics"
	"repro/ftdse/tools/ftlint/passes/stdlibonly"
	"repro/ftdse/tools/ftlint/passes/wirecompat"
	"repro/ftdse/tools/ftlint/vetdriver"
	"repro/ftdse/tools/ftlint/wirelock"
)

func main() {
	// -wirelock is a standalone generator, not a vet pass: it needs the
	// whole module in one process. Dispatch before the vet protocol's
	// flag handling.
	if len(os.Args) > 1 && os.Args[1] == "-wirelock" {
		os.Exit(wirelockMain(os.Args[2:]))
	}
	vetdriver.Main(
		boundary.Analyzer,
		concurrency.Analyzer,
		determinism.Analyzer,
		hotpath.Analyzer,
		metrics.Analyzer,
		stdlibonly.Analyzer,
		wirecompat.Analyzer,
	)
}

func wirelockMain(args []string) int {
	fs := flag.NewFlagSet("ftlint -wirelock", flag.ExitOnError)
	check := fs.Bool("check", false, "verify wire.lock instead of rewriting it; exit 1 on drift")
	root := fs.String("root", ".", "module root (the directory holding go.mod and wire.lock)")
	fs.Parse(args)

	if *check {
		breaking, stale, err := wirelock.Check(*root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlint -wirelock:", err)
			return 2
		}
		for _, b := range breaking {
			fmt.Fprintln(os.Stderr, "breaking:", b)
		}
		for _, s := range stale {
			fmt.Fprintln(os.Stderr, "stale:", s)
		}
		if len(breaking) > 0 || len(stale) > 0 {
			return 1
		}
		return 0
	}
	if err := wirelock.Write(*root); err != nil {
		fmt.Fprintln(os.Stderr, "ftlint -wirelock:", err)
		return 2
	}
	return 0
}
