// Command ftlint is the multichecker binary bundling the repository's
// invariant passes. It speaks the "go vet -vettool" protocol and is
// not meant to be invoked directly:
//
//	go build -o /tmp/ftlint repro/ftdse/tools/ftlint/cmd/ftlint
//	go vet -vettool=/tmp/ftlint ./...              # all passes
//	go vet -vettool=/tmp/ftlint -boundary ./...    # one pass
//
// See DESIGN.md §12 for the invariant catalog, the //ftdse:hotpath
// annotation, and the //ftlint:allow suppression convention.
package main

import (
	"repro/ftdse/tools/ftlint/passes/boundary"
	"repro/ftdse/tools/ftlint/passes/determinism"
	"repro/ftdse/tools/ftlint/passes/hotpath"
	"repro/ftdse/tools/ftlint/passes/stdlibonly"
	"repro/ftdse/tools/ftlint/vetdriver"
)

func main() {
	vetdriver.Main(
		boundary.Analyzer,
		determinism.Analyzer,
		hotpath.Analyzer,
		stdlibonly.Analyzer,
	)
}
