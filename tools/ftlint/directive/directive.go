// Package directive parses the two source-comment conventions of
// ftlint:
//
//	//ftdse:hotpath
//	    on a function's doc comment: the function body is a guarded
//	    allocation-free hot path; the hotpath pass checks it.
//
//	//ftlint:allow <analyzer> <reason>
//	    on (or immediately above) a flagged line: suppresses findings
//	    of the named analyzer on that line. The reason is mandatory —
//	    a suppression without a stated reason is itself a finding.
//
// Suppressions are deliberately line-scoped and analyzer-scoped: there
// is no file-wide or package-wide escape hatch, so every sanctioned
// violation is visible (and justified) exactly where it happens.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
)

const (
	allowPrefix   = "//ftlint:allow"
	hotpathMarker = "//ftdse:hotpath"
)

// Allow is one parsed //ftlint:allow directive.
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
}

// Sheet indexes the directives of one package's files.
type Sheet struct {
	// allows maps file name → line → directives on that line.
	allows map[string]map[int][]Allow
	// malformed directives (missing analyzer or reason) are findings in
	// their own right; the driver reports them unconditionally.
	malformed []analysis.Diagnostic
}

// ParseSheet scans every comment of every file for ftlint directives.
func ParseSheet(fset *token.FileSet, files []*ast.File) *Sheet {
	s := &Sheet{allows: make(map[string]map[int][]Allow)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.parseComment(fset, c)
			}
		}
	}
	return s
}

func (s *Sheet) parseComment(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, allowPrefix) {
		return
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return // e.g. //ftlint:allowed — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		s.malformed = append(s.malformed, analysis.Diagnostic{
			Pos:     c.Pos(),
			Message: "malformed directive: //ftlint:allow requires an analyzer name and a reason",
		})
		return
	}
	name := fields[0]
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
	if reason == "" {
		s.malformed = append(s.malformed, analysis.Diagnostic{
			Pos:     c.Pos(),
			Message: "//ftlint:allow " + name + " requires a reason: //ftlint:allow " + name + " <why this is sanctioned>",
		})
		return
	}
	pos := fset.Position(c.Pos())
	byLine := s.allows[pos.Filename]
	if byLine == nil {
		byLine = make(map[int][]Allow)
		s.allows[pos.Filename] = byLine
	}
	byLine[pos.Line] = append(byLine[pos.Line], Allow{Analyzer: name, Reason: reason, Pos: c.Pos()})
}

// Suppressed reports whether a diagnostic of the named analyzer at pos
// is covered by an //ftlint:allow on the same line or on the line
// immediately above.
func (s *Sheet) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine := s.allows[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, a := range byLine[line] {
			if a.Analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// Malformed returns the findings for directives that name no analyzer
// or state no reason.
func (s *Sheet) Malformed() []analysis.Diagnostic { return s.malformed }

// IsHotpath reports whether fn's doc comment carries the
// //ftdse:hotpath annotation.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := c.Text
		if text == hotpathMarker || strings.HasPrefix(text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}
