// Package directive parses the two source-comment conventions of
// ftlint:
//
//	//ftdse:hotpath
//	    on a function's doc comment: the function body is a guarded
//	    allocation-free hot path; the hotpath pass checks it.
//
//	//ftlint:allow <analyzer> <reason>
//	    on (or immediately above) a flagged line: suppresses findings
//	    of the named analyzer on that line. The reason is mandatory —
//	    a suppression without a stated reason is itself a finding.
//
// Suppressions are deliberately line-scoped and analyzer-scoped: there
// is no file-wide or package-wide escape hatch, so every sanctioned
// violation is visible (and justified) exactly where it happens.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
)

const (
	allowPrefix    = "//ftlint:allow"
	hotpathMarker  = "//ftdse:hotpath"
	shutdownMarker = "//ftdse:shutdown"
	wireMarker     = "//ftdse:wire"
)

// Allow is one parsed //ftlint:allow directive.
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	// used records whether the directive suppressed at least one
	// finding in this run; Stale reports the ones that never fired.
	used bool
}

// Sheet indexes the directives of one package's files.
type Sheet struct {
	// allows maps file name → line → directives on that line.
	allows map[string]map[int][]*Allow
	// malformed directives (missing analyzer or reason) are findings in
	// their own right; the driver reports them unconditionally.
	malformed []analysis.Diagnostic
}

// ParseSheet scans every comment of every file for ftlint directives.
func ParseSheet(fset *token.FileSet, files []*ast.File) *Sheet {
	s := &Sheet{allows: make(map[string]map[int][]*Allow)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.parseComment(fset, c)
			}
		}
	}
	return s
}

func (s *Sheet) parseComment(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, allowPrefix) {
		return
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return // e.g. //ftlint:allowed — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		s.malformed = append(s.malformed, analysis.Diagnostic{
			Pos:     c.Pos(),
			Message: "malformed directive: //ftlint:allow requires an analyzer name and a reason",
		})
		return
	}
	name := fields[0]
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
	if reason == "" {
		s.malformed = append(s.malformed, analysis.Diagnostic{
			Pos:     c.Pos(),
			Message: "//ftlint:allow " + name + " requires a reason: //ftlint:allow " + name + " <why this is sanctioned>",
		})
		return
	}
	pos := fset.Position(c.Pos())
	byLine := s.allows[pos.Filename]
	if byLine == nil {
		byLine = make(map[int][]*Allow)
		s.allows[pos.Filename] = byLine
	}
	byLine[pos.Line] = append(byLine[pos.Line], &Allow{Analyzer: name, Reason: reason, Pos: c.Pos()})
}

// Suppressed reports whether a diagnostic of the named analyzer at pos
// is covered by an //ftlint:allow on the same line or on the line
// immediately above.
func (s *Sheet) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine := s.allows[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, a := range byLine[line] {
			if a.Analyzer == analyzer {
				a.used = true
				return true
			}
		}
	}
	return false
}

// Malformed returns the findings for directives that name no analyzer
// or state no reason.
func (s *Sheet) Malformed() []analysis.Diagnostic { return s.malformed }

// Stale returns one finding per //ftlint:allow directive that
// suppressed nothing during the run, restricted to directives naming an
// analyzer in ran (an allow for a deselected pass is not stale, it was
// simply not tested). Call after every analyzer has reported.
func (s *Sheet) Stale(ran map[string]bool) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, byLine := range s.allows {
		for _, allows := range byLine {
			for _, a := range allows {
				if !a.used && ran[a.Analyzer] {
					out = append(out, analysis.Diagnostic{
						Pos: a.Pos,
						Message: "stale //ftlint:allow " + a.Analyzer +
							": the directive suppresses no finding; delete it",
					})
				}
			}
		}
	}
	return out
}

// IsHotpath reports whether fn's doc comment carries the
// //ftdse:hotpath annotation.
func IsHotpath(fn *ast.FuncDecl) bool {
	return docHasMarker(fn.Doc, hotpathMarker)
}

// IsShutdown reports whether fn's doc comment carries the
// //ftdse:shutdown annotation: the function is a drain/close path, and
// the concurrency pass requires every channel send in it to have a
// ctx/default escape so shutdown can never hang on a full channel.
func IsShutdown(fn *ast.FuncDecl) bool {
	return docHasMarker(fn.Doc, shutdownMarker)
}

// WireLabel reports whether doc carries the //ftdse:wire annotation
// marking a persisted/wire-format declaration, and returns the optional
// label argument (`//ftdse:wire <label>`) used to name const groups in
// wire.lock.
func WireLabel(doc *ast.CommentGroup) (label string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := c.Text
		if text == wireMarker {
			return "", true
		}
		if strings.HasPrefix(text, wireMarker+" ") {
			return strings.TrimSpace(strings.TrimPrefix(text, wireMarker+" ")), true
		}
	}
	return "", false
}

// docHasMarker reports whether the comment group contains the marker
// comment, bare or with trailing arguments.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}
