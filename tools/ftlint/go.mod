module repro/ftdse/tools/ftlint

go 1.22
