package vetdriver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrossPackageFactsViaGoVet proves the vetx fact plumbing end to
// end with a stock `go vet -vettool` run, not the ftltest harness: it
// builds the real ftlint binary, lays out a temp module whose service
// package spawns goroutines running functions from a *different*
// package, and asserts that the one governed by its context escapes a
// finding while the leak is flagged. The governed case only passes if
// dep's concurrency summary crossed the package boundary through the
// vetx file go vet hands back to the driver.
func TestCrossPackageFactsViaGoVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds ftlint and shells out to go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	bin := filepath.Join(t.TempDir(), "ftlint")
	build := exec.Command(goTool, "build", "-o", bin, "./cmd/ftlint")
	build.Dir = ".." // module root of repro/ftdse/tools/ftlint
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ftlint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The module must be named repro/ftdse so the service/ tree is in
	// the concurrency pass's report scope.
	write("go.mod", "module repro/ftdse\n\ngo 1.22\n")
	write("internal/dep/dep.go", `package dep

import "context"

// Loop is context-governed: spawning it with a live context is fine.
func Loop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// Leak ignores every lifecycle signal.
func Leak() {
	for {
	}
}
`)
	write("service/spawn/spawn.go", `package spawn

import (
	"context"

	"repro/ftdse/internal/dep"
)

func Spawn(ctx context.Context) {
	go dep.Loop(ctx)
	go dep.Leak()
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+bin, "-concurrency", "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet exited 0; expected the dep.Leak goroutine to be flagged\noutput:\n%s", out)
	}
	text := string(out)
	const msg = "goroutine is not lifecycle-bound"
	if n := strings.Count(text, msg); n != 1 {
		t.Fatalf("want exactly 1 %q finding, got %d:\n%s", msg, n, text)
	}
	// The finding must be the Leak spawn (spawn.go line 11), proving
	// the governed dep.Loop summary was imported, not just absent.
	if !strings.Contains(text, "spawn.go:11") {
		t.Fatalf("finding not anchored at the go dep.Leak() statement:\n%s", text)
	}
}
