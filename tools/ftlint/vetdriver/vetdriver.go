// Package vetdriver implements the command-line protocol that "go vet
// -vettool" speaks to an analysis tool, using only the standard
// library. The protocol (normally provided by x/tools' unitchecker,
// which this module cannot depend on) is:
//
//	tool -V=full      print "<tool> version devel ... buildID=<hex>"
//	                  (the build system's cache key for the tool)
//	tool -flags       print the tool's flags as JSON
//	                  (the build system validates user flags against it)
//	tool foo.cfg      analyze the one compilation unit described by the
//	                  JSON config file: parse its Go files, type-check
//	                  against the export data the build system already
//	                  produced, run the passes, print diagnostics as
//	                  "file:line:col: message" on stderr, exit non-zero
//	                  on findings, and write the (empty — ftlint has no
//	                  cross-package facts) VetxOutput file
//
// Selection flags named after each pass (-determinism, -boundary, ...)
// restrict the run, mirroring multichecker semantics: any flag set true
// runs only those passes; flags set false run all but those.
package vetdriver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/directive"
)

// Config mirrors the JSON compilation-unit description written by
// cmd/go for vet tools. Field names are the wire format; unused fields
// are kept so the whole file round-trips during debugging.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the protocol for the given passes and does not return.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "ftlint"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, for the build system)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (for the build system)")
	enabled := make(map[*analysis.Analyzer]*bool)
	for _, a := range analyzers {
		enabled[a] = flag.Bool(a.Name, false, "enable "+a.Name+" analysis")
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `ftlint statically enforces this repository's invariants.

Usage (driven by the build system, not directly):
	go vet -vettool=$(command -v ftlint) ./...
	go vet -vettool=... -boundary ./...      # one pass only

Passes:
`)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "	%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		os.Exit(1)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	// Multichecker-style selection: explicit true flags win; with none,
	// everything runs. (go vet passes -NAME=false for deselection.)
	var anyTrue bool
	for _, a := range analyzers {
		if *enabled[a] {
			anyTrue = true
		}
	}
	if anyTrue {
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if *enabled[a] {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
	}
	os.Exit(Run(args[0], analyzers))
}

// Run analyzes the unit described by cfgFile and returns the process
// exit code.
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}

	// ftlint exports no facts, but the build system caches the vetx
	// output file as this action's artifact; write it unconditionally.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("ftlint has no facts\n"), 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, and we have none
	}

	diags, err := analyze(cfg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyze parses, type-checks and runs the passes over one unit,
// returning rendered diagnostics.
func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	module := &analysis.Module{Path: cfg.ModulePath}
	return RunAnalyzers(fset, files, pkg, info, module, analyzers), nil
}

// RunAnalyzers executes the passes over one type-checked package,
// applies //ftlint:allow suppression, appends malformed-directive
// findings, and returns rendered, position-sorted diagnostics. Shared
// by the vet protocol and by in-process callers (the fixture harness
// and the repo's boundary test).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module *analysis.Module, analyzers []*analysis.Analyzer) []string {
	sheet := directive.ParseSheet(fset, files)

	type located struct {
		pos  token.Position
		text string
	}
	var out []located
	report := func(name string, d analysis.Diagnostic) {
		out = append(out, located{fset.Position(d.Pos), fmt.Sprintf("%s [ftlint:%s]", d.Message, name)})
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Module:    module,
			Report: func(d analysis.Diagnostic) {
				if !sheet.Suppressed(fset, a.Name, d.Pos) {
					report(a.Name, d)
				}
			},
		}
		if _, err := a.Run(pass); err != nil {
			report(a.Name, analysis.Diagnostic{Pos: token.NoPos, Message: "analyzer failed: " + err.Error()})
		}
	}
	for _, d := range sheet.Malformed() {
		report("directive", d)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	rendered := make([]string, len(out))
	for i, d := range out {
		rendered[i] = fmt.Sprintf("%s: %s", d.pos, d.text)
	}
	return rendered
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full contract of cmd/go's toolID: the
// output must be "<name> version devel ... buildID=<content-id>" so the
// build cache invalidates vet results when the tool binary changes.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
