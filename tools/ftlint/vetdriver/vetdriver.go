// Package vetdriver implements the command-line protocol that "go vet
// -vettool" speaks to an analysis tool, using only the standard
// library. The protocol (normally provided by x/tools' unitchecker,
// which this module cannot depend on) is:
//
//	tool -V=full      print "<tool> version devel ... buildID=<hex>"
//	                  (the build system's cache key for the tool)
//	tool -flags       print the tool's flags as JSON
//	                  (the build system validates user flags against it)
//	tool foo.cfg      analyze the one compilation unit described by the
//	                  JSON config file: parse its Go files, type-check
//	                  against the export data the build system already
//	                  produced, run the passes, print diagnostics as
//	                  "file:line:col: message" on stderr, exit non-zero
//	                  on findings, and write the VetxOutput file
//	                  carrying the passes' cross-package facts
//
// Facts (analysis.FactStore) ride the vetx files: before analyzing a
// unit the driver merges the vetx documents of every import listed in
// PackageVetx, and afterwards it persists the union of imported and
// newly exported facts to VetxOutput. Dependency-only units (VetxOnly)
// run the passes with diagnostics disabled purely to compute their
// facts, mirroring x/tools' unitchecker.
//
// Selection flags named after each pass (-determinism, -boundary, ...)
// restrict the run, mirroring multichecker semantics: any flag set true
// runs only those passes; flags set false run all but those. The extra
// -staleallows flag additionally reports every //ftlint:allow directive
// that suppressed nothing, so sanctioned-violation lists cannot rot.
package vetdriver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/directive"
)

// Config mirrors the JSON compilation-unit description written by
// cmd/go for vet tools. Field names are the wire format; unused fields
// are kept so the whole file round-trips during debugging.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the protocol for the given passes and does not return.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "ftlint"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, for the build system)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (for the build system)")
	staleallows := flag.Bool("staleallows", false, "also report //ftlint:allow directives that suppress no finding")
	enabled := make(map[*analysis.Analyzer]*bool)
	for _, a := range analyzers {
		enabled[a] = flag.Bool(a.Name, false, "enable "+a.Name+" analysis")
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `ftlint statically enforces this repository's invariants.

Usage (driven by the build system, not directly):
	go vet -vettool=$(command -v ftlint) ./...
	go vet -vettool=... -boundary ./...      # one pass only

Passes:
`)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "	%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		os.Exit(1)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	// Multichecker-style selection: explicit true flags win; with none,
	// everything runs. (go vet passes -NAME=false for deselection.)
	var anyTrue bool
	for _, a := range analyzers {
		if *enabled[a] {
			anyTrue = true
		}
	}
	if anyTrue {
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if *enabled[a] {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
	}
	os.Exit(RunOpts(args[0], analyzers, Options{StaleAllows: *staleallows}))
}

// Options tunes one driver run beyond pass selection.
type Options struct {
	// StaleAllows also reports //ftlint:allow directives that suppressed
	// nothing, restricted to the analyzers that actually ran.
	StaleAllows bool
	// Facts seeds the run with pre-merged facts and receives the
	// exported ones; nil lets the driver build a store from the unit's
	// PackageVetx files.
	Facts *analysis.FactStore
	// FactsOnly runs the passes purely for their fact exports,
	// discarding diagnostics (dependency units).
	FactsOnly bool
}

// Run analyzes the unit described by cfgFile and returns the process
// exit code.
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	return RunOpts(cfgFile, analyzers, Options{})
}

// RunOpts is Run with explicit Options.
func RunOpts(cfgFile string, analyzers []*analysis.Analyzer, opts Options) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}

	// Merge the facts of every import whose vetx the build system
	// provided. Files from fact-free tool versions decode to nothing.
	facts := opts.Facts
	if facts == nil {
		facts = analysis.NewFactStore()
	}
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing vetx for an unanalyzed dep: no facts there
		}
		analysis.DecodeFacts(facts, data)
	}
	opts.Facts = facts
	opts.FactsOnly = opts.FactsOnly || cfg.VetxOnly

	// Dependency-only units exist purely to surface facts. Restrict them
	// to the fact-exporting passes, and skip analysis entirely outside
	// the analyzed module (standard library and external dependencies
	// carry no ftlint facts) — their vetx is just the pass-through union
	// of their own imports' facts.
	var diags []string
	if opts.FactsOnly {
		var factful []*analysis.Analyzer
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				factful = append(factful, a)
			}
		}
		analyzers = factful
	}
	if !opts.FactsOnly || (len(analyzers) > 0 && cfg.ModulePath != "" && !cfg.Standard[cfg.ImportPath]) {
		diags, err = analyze(cfg, analyzers, opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Persist the fact union as this action's cacheable artifact. The
	// build system demands the file exist even when empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, facts.EncodeFacts(), 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if opts.FactsOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyze parses, type-checks and runs the passes over one unit,
// returning rendered diagnostics.
func analyze(cfg *Config, analyzers []*analysis.Analyzer, opts Options) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	module := &analysis.Module{Path: cfg.ModulePath}
	return RunAnalyzersOpts(fset, files, pkg, info, module, analyzers, opts), nil
}

// RunAnalyzers executes the passes over one type-checked package,
// applies //ftlint:allow suppression, appends malformed-directive
// findings, and returns rendered, position-sorted diagnostics. Shared
// by the vet protocol and by in-process callers (the fixture harness
// and the repo's boundary test).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module *analysis.Module, analyzers []*analysis.Analyzer) []string {
	return RunAnalyzersOpts(fset, files, pkg, info, module, analyzers, Options{})
}

// RunAnalyzersOpts is RunAnalyzers with fact plumbing, facts-only mode
// and stale-allow reporting.
func RunAnalyzersOpts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module *analysis.Module, analyzers []*analysis.Analyzer, opts Options) []string {
	sheet := directive.ParseSheet(fset, files)

	type located struct {
		pos  token.Position
		text string
	}
	var out []located
	report := func(name string, d analysis.Diagnostic) {
		out = append(out, located{fset.Position(d.Pos), fmt.Sprintf("%s [ftlint:%s]", d.Message, name)})
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Module:    module,
			Facts:     opts.Facts,
			Report: func(d analysis.Diagnostic) {
				if !sheet.Suppressed(fset, a.Name, d.Pos) {
					report(a.Name, d)
				}
			},
		}
		if _, err := a.Run(pass); err != nil {
			report(a.Name, analysis.Diagnostic{Pos: token.NoPos, Message: "analyzer failed: " + err.Error()})
		}
	}
	if opts.FactsOnly {
		return nil
	}
	for _, d := range sheet.Malformed() {
		report("directive", d)
	}
	if opts.StaleAllows {
		for _, d := range sheet.Stale(ran) {
			report("staleallows", d)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	rendered := make([]string, len(out))
	for i, d := range out {
		rendered[i] = fmt.Sprintf("%s: %s", d.pos, d.text)
	}
	return rendered
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full contract of cmd/go's toolID: the
// output must be "<name> version devel ... buildID=<content-id>" so the
// build cache invalidates vet results when the tool binary changes.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
