package wirelock

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/ftdse/tools/ftlint/srcload"
)

// LockName is the lock file's name at the module root.
const LockName = "wire.lock"

// Generate derives the current wire schema of the module rooted at
// root by type-checking it from source and collecting every annotated
// declaration.
func Generate(root string) (*Lock, error) {
	mod, err := srcload.Load(root)
	if err != nil {
		return nil, err
	}
	lock := NewLock()
	for _, p := range mod.Packages {
		Collect(p.Files, p.Info, p.Pkg, lock)
	}
	return lock, nil
}

// Write regenerates root's wire.lock in place.
func Write(root string) error {
	lock, err := Generate(root)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(root, LockName), lock.Encode(), 0o644)
}

// Check compares root's checked-in wire.lock against the schema the
// source currently defines. breaking lists policy violations (the
// format shrank or mutated — including entries deleted outright, which
// the vet-time pass cannot see); stale lists additive drift that a
// `ftlint -wirelock` run would absorb. A missing lock file is reported
// as stale ("everything is new").
func Check(root string) (breaking, stale []string, err error) {
	cur, err := Generate(root)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, LockName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, []string{LockName + " does not exist; run `ftlint -wirelock`"}, nil
		}
		return nil, nil, err
	}
	locked, err := Decode(data)
	if err != nil {
		return nil, nil, err
	}

	for _, key := range locked.Keys() {
		if ls, ok := locked.Structs[key]; ok {
			cs, exists := cur.Structs[key]
			if !exists {
				breaking = append(breaking, fmt.Sprintf("%s: wire struct deleted; persisted documents still carry it", key))
				continue
			}
			for _, d := range DiffStruct(ls, cs) {
				breaking = append(breaking, key+": "+d)
			}
			continue
		}
		lv := locked.Enums[key]
		cv, exists := cur.Enums[key]
		if !exists {
			breaking = append(breaking, fmt.Sprintf("%s: enum registry deleted; persisted documents still carry its values", key))
			continue
		}
		for _, d := range DiffEnum(lv, cv) {
			breaking = append(breaking, key+": "+d)
		}
	}
	if len(breaking) == 0 && !bytes.Equal(data, cur.Encode()) {
		stale = append(stale, LockName+" is stale (additive drift); run `ftlint -wirelock` and commit the result")
	}
	return breaking, stale, nil
}
