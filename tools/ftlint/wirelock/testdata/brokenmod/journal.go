// Package wiremod is a frozen fixture: relative to its wire.lock, the
// Record struct dropped the Seq field, the record-kind registry lost a
// value, and the Legacy struct was deleted outright — three distinct
// breaking edits for wirelock.Check to catch.
package wiremod

// Record is one durable journal entry.
//
//ftdse:wire
type Record struct {
	Kind string `json:"kind"`
	Data []byte `json:"data,omitempty"`
}

// The record-kind registry: order is the format.
//
//ftdse:wire record-kinds
const (
	recSubmit = "submit"
	recDone   = "done"
)
