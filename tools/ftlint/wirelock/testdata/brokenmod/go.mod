module example/wiremod

go 1.22
