package wirelock_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/ftdse/tools/ftlint/wirelock"
)

// TestBreakingEdits checks the static fixture module, whose lock
// records a richer format than the source now defines: a dropped
// field, a removed enum value, and a deleted struct must all surface
// as breaking.
func TestBreakingEdits(t *testing.T) {
	breaking, _, err := wirelock.Check(filepath.Join("testdata", "brokenmod"))
	if err != nil {
		t.Fatal(err)
	}
	wantFragments := []string{
		"example/wiremod.Record: field 1 renamed or reordered",
		"example/wiremod#record-kinds: value 1 changed or reordered",
		"example/wiremod.Legacy: wire struct deleted",
	}
	for _, frag := range wantFragments {
		found := false
		for _, b := range breaking {
			if strings.Contains(b, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("breaking diffs %q lack expected %q", breaking, frag)
		}
	}
}

const goodSource = `package wiremod

// Record is one durable journal entry.
//
//ftdse:wire
type Record struct {
	Kind string ` + "`json:\"kind\"`" + `
	Seq  uint64 ` + "`json:\"seq\"`" + `
	Data []byte ` + "`json:\"data,omitempty\"`" + `
}

//ftdse:wire record-kinds
const (
	recSubmit = "submit"
	recDone   = "done"
)
`

// editedSource drops the Seq field: the canonical "deliberate breaking
// edit to a journal wire struct" from the acceptance criteria.
const editedSource = `package wiremod

//ftdse:wire
type Record struct {
	Kind string ` + "`json:\"kind\"`" + `
	Data []byte ` + "`json:\"data,omitempty\"`" + `
}

//ftdse:wire record-kinds
const (
	recSubmit = "submit"
	recDone   = "done"
)
`

// TestGenerateEditCheck drives the full life cycle in a scratch
// module: generate a lock, verify the module checks clean, make a
// breaking edit, and verify the check turns red.
func TestGenerateEditCheck(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example/wiremod\n\ngo 1.22\n")
	write("journal.go", goodSource)

	if err := wirelock.Write(dir); err != nil {
		t.Fatal(err)
	}
	breaking, stale, err := wirelock.Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaking) != 0 || len(stale) != 0 {
		t.Fatalf("freshly generated lock should check clean, got breaking=%q stale=%q", breaking, stale)
	}

	write("journal.go", editedSource)
	breaking, _, err = wirelock.Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaking) == 0 {
		t.Fatal("dropping a locked field must be a breaking diff")
	}
}

// TestAdditiveIsStaleNotBreaking: appending a field is sanctioned
// evolution — the lock is merely stale.
func TestAdditiveIsStaleNotBreaking(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example/wiremod\n\ngo 1.22\n")
	write("journal.go", editedSource)
	if err := wirelock.Write(dir); err != nil {
		t.Fatal(err)
	}
	// goodSource inserts Seq *between* the locked fields: breaking.
	write("journal.go", goodSource)
	breaking, _, err := wirelock.Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaking) == 0 {
		t.Fatal("inserting a field mid-struct reorders the suffix and must be breaking")
	}

	// A true append keeps the locked prefix intact: stale only.
	appended := strings.Replace(editedSource, "Data []byte `json:\"data,omitempty\"`\n}",
		"Data []byte `json:\"data,omitempty\"`\n\tNode string `json:\"node\"`\n}", 1)
	if appended == editedSource {
		t.Fatal("test bug: append replacement did not apply")
	}
	write("journal.go", editedSource)
	if err := wirelock.Write(dir); err != nil {
		t.Fatal(err)
	}
	write("journal.go", appended)
	breaking, stale, err := wirelock.Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaking) != 0 {
		t.Fatalf("appending a field must not be breaking, got %q", breaking)
	}
	if len(stale) == 0 {
		t.Fatal("appending a field must leave the lock stale")
	}
}
