// Package dep exercises cross-package facts: the spawn fixture imports
// it, and the concurrency pass must learn from exported summaries —
// not local syntax — that Loop is ctx-governed and Leak is not.
package dep

import "context"

// Loop observes cancellation; its summary is exported as a fact.
func Loop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

// Indirect is governed only transitively, through Loop.
func Indirect(ctx context.Context) {
	Loop(ctx)
}

// Leak ignores its arguments and never terminates on its own.
func Leak() {
	for {
	}
}
