// Package spawn is the concurrency fixture: one case per goroutine
// lifecycle-binding rule, positive and negative.
package spawn

import (
	"context"
	"sync"

	"repro/ftdse/internal/dep"
)

type job struct{}

type server struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	stop  chan struct{}
	jobs  chan job
	peers map[string]int
	order []string
}

// --- go statements ---

func fireAndForget() {
	go func() { // want `goroutine is not lifecycle-bound`
		println("leaked")
	}()
}

func namedLeak() {
	go idle() // want `goroutine is not lifecycle-bound`
}

func crossPkgLeak() {
	go dep.Leak() // want `goroutine is not lifecycle-bound`
}

func dynamicLeak(f func()) {
	go f() // want `goroutine is not lifecycle-bound`
}

func idle() {}

func wgBound(s *server) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		println("working")
	}()
}

func namedWgBound(s *server) {
	s.wg.Add(1)
	go s.worker()
}

func (s *server) worker() {
	defer s.wg.Done()
	for range s.jobs {
	}
}

func ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func ctxCalleeBound(ctx context.Context) {
	go governed(ctx)
}

func governed(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

// crossPkgBound relies on the fact exported by the dep package: Loop's
// governance is invisible syntactically from here.
func crossPkgBound(ctx context.Context) {
	go dep.Loop(ctx)
}

// transitiveBound stacks both hops: Indirect is governed only because
// it forwards its context to Loop.
func transitiveBound(ctx context.Context) {
	go dep.Indirect(ctx)
}

// ungovernedCtxCall passes a context to a callee that ignores
// cancellation entirely; the context alone does not bind the goroutine.
func ungovernedCtxCall(ctx context.Context) {
	go deaf(ctx) // want `goroutine is not lifecycle-bound`
}

func deaf(ctx context.Context) {
	_ = ctx.Value("k")
	for {
	}
}

func quitBound(s *server) {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()
}

func waiterBound(ctx context.Context, wg *sync.WaitGroup) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// closerLeak closes a channel nobody waits on; that is not the waiter
// idiom, just a leak with extra steps.
func closerLeak() {
	done := make(chan struct{})
	go func() { // want `goroutine is not lifecycle-bound`
		close(done)
	}()
}

func sanctioned() {
	go idle() //ftlint:allow concurrency fixture-sanctioned leak
}

// --- shutdown sends ---

//ftdse:shutdown
func (s *server) Close(ctx context.Context) {
	s.jobs <- job{} // want `channel send in shutdown path can block forever`
	select {
	case s.jobs <- job{}:
	default:
	}
	select {
	case s.jobs <- job{}:
	case <-ctx.Done():
	}
}

// drain has no annotation: bare sends are its own business.
func (s *server) drain() {
	s.jobs <- job{}
}

// --- locked-field escape ---

func (s *server) snapshotLeak() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peers // want `returns the guarded map peers itself`
}

func (s *server) orderLeak() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order // want `returns the guarded slice order itself`
}

func (s *server) lookup(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peers[k]
}

func (s *server) snapshotCopy() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.peers))
	for k, v := range s.peers {
		out[k] = v
	}
	return out
}

// unguarded never locks, so returning the map is not this pass's
// concern.
func (s *server) unguarded() map[string]int {
	return s.peers
}
