// Package concurrency enforces the repo's goroutine-lifecycle
// invariants in the long-running tiers (service/, cluster/, obs/):
//
//   - Every `go` statement must be lifecycle-bound: the goroutine joins
//     a sync.WaitGroup (Done on a dominant path), is governed by a
//     context (observes ctx.Done/ctx.Err itself or hands its context to
//     a governed callee), watches a quit channel, or is the waiter
//     idiom (closes a channel the spawner then receives from).
//     Fire-and-forget goroutines outlive Close and turn shutdown into a
//     race; the engines are single-threaded by design (DESIGN.md §2),
//     so the only sanctioned concurrency is the supervised kind.
//
//   - In functions annotated //ftdse:shutdown, every channel send must
//     sit in a select with a default or a cancellation escape. A bare
//     send on a full channel during drain deadlocks Close forever.
//
//   - A method that locks its receiver's mutex must not return a
//     guarded map or slice field itself — that aliases the protected
//     structure past the critical section. Returning an element or a
//     copy is fine.
//
// Whether a named callee is governed is decided interprocedurally: the
// pass computes a per-function summary (package-locally via the
// dataflow call graph, cross-package via exported facts riding the vetx
// files), so `go dep.Loop(ctx)` is recognized as bound when dep.Loop
// selects on ctx.Done three packages away.
package concurrency

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/ftdse/tools/ftlint/analysis"
	"repro/ftdse/tools/ftlint/analysis/dataflow"
	"repro/ftdse/tools/ftlint/directive"
)

// Summary is the exported per-function concurrency fact.
type Summary struct {
	// CtxGoverned: the function observes cancellation of a context it
	// receives — directly (<-ctx.Done(), ctx.Err()) or by passing its
	// context to a governed callee.
	CtxGoverned bool `json:",omitempty"`
	// SignalsDone: the function calls Done on a sync.WaitGroup, so a
	// spawner pairing it with Add+Wait joins it.
	SignalsDone bool `json:",omitempty"`
	// SelectsQuit: the function receives on a struct{} channel it does
	// not own (a field or captured variable) — a quit/stop channel.
	SelectsQuit bool `json:",omitempty"`
}

func (s Summary) bound() bool { return s.CtxGoverned || s.SignalsDone || s.SelectsQuit }

var Analyzer = &analysis.Analyzer{
	Name:      "concurrency",
	Doc:       "goroutines in service/, cluster/ and obs/ must be lifecycle-bound\n\nEvery go statement needs a WaitGroup join, context governance, or a quit channel; shutdown-annotated functions may not block on bare sends; locked methods may not leak guarded maps/slices.",
	Run:       run,
	FactTypes: []any{(*Summary)(nil)},
}

func run(pass *analysis.Pass) (any, error) {
	g := dataflow.New(pass)
	summaries := computeSummaries(pass, g)

	// Publish every non-trivial summary for importing units.
	for _, n := range g.Nodes() {
		if s := summaries[n.Fn]; s.bound() {
			pass.ExportObjectFact(n.Fn, s)
		}
	}

	if !inReportScope(pass) {
		return nil, nil
	}

	summaryOf := func(fn *types.Func) Summary {
		if _, local := summaries[fn]; local || g.Node(fn) != nil {
			return summaries[fn]
		}
		var s Summary
		pass.ImportObjectFact(fn, &s)
		return s
	}

	for _, n := range g.Nodes() {
		if pass.IsTestFile(n.Decl.Pos()) {
			continue
		}
		checkGoStmts(pass, n, summaryOf)
		if directive.IsShutdown(n.Decl) {
			checkShutdownSends(pass, n.Decl)
		}
		checkLockedFieldEscape(pass, n.Decl)
	}
	return nil, nil
}

// inReportScope limits findings to the long-running tiers. Summaries
// are still computed and exported everywhere so governance established
// in internal/ packages is visible from the tiers that spawn.
func inReportScope(pass *analysis.Pass) bool {
	if pass.Module == nil || pass.Module.Path == "" {
		return false
	}
	rel, ok := strings.CutPrefix(normPath(pass.Pkg.Path()), pass.Module.Path+"/")
	if !ok {
		return false
	}
	seg, _, _ := strings.Cut(rel, "/")
	return seg == "service" || seg == "cluster" || seg == "obs"
}

func normPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// computeSummaries derives each declared function's Summary: the direct
// properties by scanning its body, then context governance closed over
// the call graph (a function that hands its context to a governed
// callee — local or imported — is governed too).
func computeSummaries(pass *analysis.Pass, g *dataflow.Graph) map[*types.Func]Summary {
	info := pass.TypesInfo
	direct := make(map[*types.Func]Summary, len(g.Nodes()))
	for _, n := range g.Nodes() {
		var s Summary
		body := n.Decl.Body
		ast.Inspect(body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.CallExpr:
				if isWaitGroupDone(info, nd) {
					s.SignalsDone = true
				}
				if isCtxObservation(info, nd) {
					s.CtxGoverned = true
				}
			case *ast.UnaryExpr:
				if isQuitRecv(info, nd, body) {
					s.SelectsQuit = true
				}
			}
			return true
		})
		direct[n.Fn] = s
	}

	governed := g.Fixpoint(
		func(n *dataflow.Node) bool { return direct[n.Fn].CtxGoverned },
		func(n *dataflow.Node, c *dataflow.Call, calleeHolds func(*types.Func) bool) bool {
			if !callPassesContext(info, c.Site) {
				return false
			}
			if g.Node(c.Callee) != nil {
				return calleeHolds(c.Callee)
			}
			var s Summary
			return pass.ImportObjectFact(c.Callee, &s) && s.CtxGoverned
		},
	)

	out := make(map[*types.Func]Summary, len(direct))
	for fn, s := range direct {
		s.CtxGoverned = s.CtxGoverned || governed[fn]
		out[fn] = s
	}
	return out
}

// checkGoStmts flags `go` statements whose goroutine no lifecycle
// mechanism binds.
func checkGoStmts(pass *analysis.Pass, n *dataflow.Node, summaryOf func(*types.Func) Summary) {
	info := pass.TypesInfo
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		gs, ok := nd.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goStmtBound(info, n.Decl, gs, summaryOf) {
			return true
		}
		pass.Reportf(gs.Pos(), "goroutine is not lifecycle-bound: join it with a WaitGroup, govern it with a context, or give it a quit channel")
		return true
	})
}

func goStmtBound(info *types.Info, enclosing *ast.FuncDecl, gs *ast.GoStmt, summaryOf func(*types.Func) Summary) bool {
	// Named callee: its summary decides. Context governance only counts
	// when this spawn actually hands it a context.
	if fn := dataflow.Callee(info, gs.Call); fn != nil {
		s := summaryOf(fn)
		if s.SignalsDone || s.SelectsQuit {
			return true
		}
		return s.CtxGoverned && callPassesContext(info, gs.Call)
	}
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		// A dynamic callee (function value, interface method): nothing is
		// known, treat as unbound and let //ftlint:allow arbitrate.
		return false
	}
	body := lit.Body
	bound := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if bound {
			return false
		}
		switch nd := nd.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(info, nd) || isCtxObservation(info, nd) {
				bound = true
				return false
			}
			if fn := dataflow.Callee(info, nd); fn != nil {
				s := summaryOf(fn)
				if s.SignalsDone || s.SelectsQuit || (s.CtxGoverned && callPassesContext(info, nd)) {
					bound = true
					return false
				}
			}
			// Waiter idiom: the goroutine closes a channel declared in the
			// spawning function, which in turn waits on that channel.
			if v := closedChan(info, nd); v != nil && spawnerWaitsOn(info, enclosing, lit, v) {
				bound = true
				return false
			}
		case *ast.UnaryExpr:
			if isQuitRecv(info, nd, body) {
				bound = true
				return false
			}
		}
		return true
	})
	return bound
}

// checkShutdownSends requires every channel send inside a
// //ftdse:shutdown function to carry an escape: be a select case in a
// select that also has a default or a cancellation receive.
func checkShutdownSends(pass *analysis.Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	covered := make(map[*ast.SendStmt]bool)
	ast.Inspect(decl.Body, func(nd ast.Node) bool {
		sel, ok := nd.(*ast.SelectStmt)
		if !ok {
			return true
		}
		escape := false
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil || isEscapeRecvStmt(info, cc.Comm) {
				escape = true
			}
		}
		if !escape {
			return true
		}
		for _, clause := range sel.Body.List {
			if send, ok := clause.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
				covered[send] = true
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(nd ast.Node) bool {
		send, ok := nd.(*ast.SendStmt)
		if !ok || covered[send] {
			return true
		}
		pass.Reportf(send.Pos(), "channel send in shutdown path can block forever: select with a default or cancellation case")
		return true
	})
}

// isEscapeRecvStmt reports whether a select comm statement receives
// from a cancellation source (ctx.Done() or a quit-shaped channel).
func isEscapeRecvStmt(info *types.Info, comm ast.Stmt) bool {
	var expr ast.Expr
	switch comm := comm.(type) {
	case *ast.ExprStmt:
		expr = comm.X
	case *ast.AssignStmt:
		if len(comm.Rhs) == 1 {
			expr = comm.Rhs[0]
		}
	}
	ue, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || ue.Op.String() != "<-" {
		return false
	}
	if call, ok := ast.Unparen(ue.X).(*ast.CallExpr); ok && isCtxDoneCall(info, call) {
		return true
	}
	return isStructChan(info.Types[ue.X].Type)
}

// checkLockedFieldEscape flags methods that lock the receiver's mutex
// yet return a guarded map or slice field directly.
func checkLockedFieldEscape(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return
	}
	info := pass.TypesInfo
	recv := receiverVar(info, decl)
	if recv == nil || !methodLocksReceiver(info, decl, recv) {
		return
	}
	ast.Inspect(decl.Body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
			if !ok || !isReceiverExpr(info, sel.X, recv) {
				continue
			}
			switch info.Types[res].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(res.Pos(), "method locks the receiver's mutex but returns the guarded map %s itself, aliasing it past the lock: return a copy or an element", sel.Sel.Name)
			case *types.Slice:
				pass.Reportf(res.Pos(), "method locks the receiver's mutex but returns the guarded slice %s itself, aliasing it past the lock: return a copy or an element", sel.Sel.Name)
			}
		}
		return true
	})
}

func receiverVar(info *types.Info, decl *ast.FuncDecl) *types.Var {
	names := decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := info.Defs[names[0]].(*types.Var)
	return v
}

// methodLocksReceiver reports whether the body calls Lock or RLock on a
// mutex reached through the receiver (r.mu.Lock(), or r.Lock() via an
// embedded mutex).
func methodLocksReceiver(info *types.Info, decl *ast.FuncDecl, recv *types.Var) bool {
	locks := false
	ast.Inspect(decl.Body, func(nd ast.Node) bool {
		if locks {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if !isSyncLocker(info.Types[sel.X].Type) {
			return true
		}
		// Chase the selector chain to its base: r.mu → r.
		base := sel.X
		for {
			if inner, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
				base = inner.X
				continue
			}
			break
		}
		if isReceiverExpr(info, base, recv) {
			locks = true
		}
		return !locks
	})
	return locks
}

func isReceiverExpr(info *types.Info, e ast.Expr, recv *types.Var) bool {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == recv
}

func isSyncLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// --- shared type/AST predicates ---

// isWaitGroupDone matches wg.Done() for a sync.WaitGroup-typed wg.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.String() == "sync.WaitGroup"
}

// isCtxObservation matches the direct cancellation observations
// ctx.Done() and ctx.Err() on a context.Context value.
func isCtxObservation(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
		return false
	}
	return isContextType(info.Types[sel.X].Type)
}

func isCtxDoneCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(info.Types[sel.X].Type)
}

func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// callPassesContext reports whether any argument of the call has type
// context.Context.
func callPassesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(info.Types[arg].Type) {
			return true
		}
	}
	return false
}

// isQuitRecv matches `<-ch` where ch is a struct{} channel the body
// does not own — a field, or a variable declared outside body. Ticker
// and data channels have non-struct{} elements and never match.
func isQuitRecv(info *types.Info, ue *ast.UnaryExpr, body *ast.BlockStmt) bool {
	if ue.Op.String() != "<-" {
		return false
	}
	x := ast.Unparen(ue.X)
	if call, ok := x.(*ast.CallExpr); ok {
		return isCtxDoneCall(info, call)
	}
	if !isStructChan(info.Types[x].Type) {
		return false
	}
	switch x := x.(type) {
	case *ast.SelectorExpr:
		return true // field or captured struct's channel
	case *ast.Ident:
		obj := info.Uses[x]
		return obj != nil && (obj.Pos() < body.Pos() || obj.Pos() > body.End())
	}
	return false
}

// isStructChan reports whether t is a channel of empty structs (the
// quit-channel shape, which ctx.Done shares).
func isStructChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// closedChan returns the channel variable a `close(ch)` call closes,
// nil for any other call.
func closedChan(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[arg].(*types.Var)
	return v
}

// spawnerWaitsOn reports whether the enclosing function, outside the
// goroutine literal, receives from v — completing the waiter idiom.
func spawnerWaitsOn(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit, v *types.Var) bool {
	waits := false
	ast.Inspect(enclosing.Body, func(nd ast.Node) bool {
		if nd == lit || waits {
			return false
		}
		ue, ok := nd.(*ast.UnaryExpr)
		if !ok || ue.Op.String() != "<-" {
			return true
		}
		if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok && info.Uses[id] == v {
			waits = true
		}
		return !waits
	})
	return waits
}
