package concurrency_test

import (
	"testing"

	"repro/ftdse/tools/ftlint/ftltest"
	"repro/ftdse/tools/ftlint/passes/concurrency"
)

func TestConcurrency(t *testing.T) {
	ftltest.Run(t, ftltest.TestData(), "repro/ftdse", "repro/ftdse/service/spawn", concurrency.Analyzer)
}

// TestDetection fails if the fixture stops depending on the analyzer:
// without the pass, its expectations must go unmatched.
func TestDetection(t *testing.T) {
	mismatches, err := ftltest.Check(ftltest.TestData(), "repro/ftdse", "repro/ftdse/service/spawn")
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) == 0 {
		t.Fatal("fixture passes without the concurrency analyzer; it no longer tests detection")
	}
}
