package boundary_test

import (
	"testing"

	"repro/ftdse/tools/ftlint/ftltest"
	"repro/ftdse/tools/ftlint/passes/boundary"
)

func TestFacade(t *testing.T) {
	ftltest.Run(t, ftltest.TestData(), "repro/ftdse", "repro/ftdse", boundary.Analyzer)
}

func TestOutsideConsumer(t *testing.T) {
	ftltest.Run(t, ftltest.TestData(), "repro/ftdse", "repro/ftdse/cmdbad", boundary.Analyzer)
}

func TestInternalToInternal(t *testing.T) {
	ftltest.Run(t, ftltest.TestData(), "repro/ftdse", "repro/ftdse/internal/deeper", boundary.Analyzer)
}

// TestDetection fails if the fixtures stop depending on the analyzer:
// without the pass, their expectations must go unmatched.
func TestDetection(t *testing.T) {
	for _, pkg := range []string{"repro/ftdse", "repro/ftdse/cmdbad"} {
		mismatches, err := ftltest.Check(ftltest.TestData(), "repro/ftdse", pkg)
		if err != nil {
			t.Fatal(err)
		}
		if len(mismatches) == 0 {
			t.Fatalf("fixture %s passes without the boundary analyzer; it no longer tests detection", pkg)
		}
	}
}
