// Package guts is the internal dependency of the boundary fixtures.
package guts

// Answer is the only export.
func Answer() int { return 42 }
