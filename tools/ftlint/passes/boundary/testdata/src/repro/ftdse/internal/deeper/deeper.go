// Package deeper shows that internal packages import each other
// freely: no findings.
package deeper

import "repro/ftdse/internal/guts"

// Double uses the sibling internal package.
func Double() int { return 2 * guts.Answer() }
