package ftdse

import "repro/ftdse/internal/guts" // want `facade tests must exercise the public API`

// testAnswer makes the import used.
func testAnswer() int { return guts.Answer() }
